# Same targets CI runs (.github/workflows/ci.yml), so local dev and CI
# execute identical commands.

GO ?= go

# Coverage floor (%) enforced on the concurrency-critical packages.
COVER_FLOOR ?= 70
COVER_PKGS  ?= internal/cache internal/loader

.PHONY: all build test cover lint bench benchjson suite experiments-md clean

all: lint build test

build:
	$(GO) build ./...

# -count=2 reruns every test with a warm cache bypassed: the second run of
# the race battery gets different goroutine interleavings for free.
test:
	$(GO) test -race -count=2 ./...

# Per-package coverage floor on the packages the concurrent pipeline lives
# in; a refactor that strands their tests fails here, not in review.
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		out=cover-$$(basename $$pkg).out; \
		$(GO) test -coverprofile=$$out ./$$pkg; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p=$$pct -v f=$(COVER_FLOOR) 'BEGIN{exit !(p>=f)}' || \
			{ echo "FAIL: $$pkg below coverage floor"; exit 1; }; \
	done

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# One iteration of every benchmark, no unit tests: a compile-and-run smoke
# of the full reproduction harness.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Concurrent-loader benchmark: sharded vs single-mutex lookup throughput and
# pipeline epoch wall time at 1/2/4/8 workers, written to BENCH_1.json.
benchjson:
	$(GO) run ./cmd/stallbench -bench -bench-out BENCH_1.json

# Full experiment suite, fanned across all CPUs; one run emits both the
# JSON report (for artifacts) and EXPERIMENTS.md.
suite:
	$(GO) run ./cmd/runsuite -parallel 0 -json -md EXPERIMENTS.md > suite-report.json
	@echo "wrote suite-report.json"

experiments-md:
	$(GO) run ./cmd/runsuite -md EXPERIMENTS.md

clean:
	rm -f suite-report.json cover-*.out
