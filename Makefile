# Same targets CI runs (.github/workflows/ci.yml), so local dev and CI
# execute identical commands.

GO ?= go

.PHONY: all build test lint bench suite experiments-md clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# One iteration of every benchmark, no unit tests: a compile-and-run smoke
# of the full reproduction harness.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Full experiment suite, fanned across all CPUs; one run emits both the
# JSON report (for artifacts) and EXPERIMENTS.md.
suite:
	$(GO) run ./cmd/runsuite -parallel 0 -json -md EXPERIMENTS.md > suite-report.json
	@echo "wrote suite-report.json"

experiments-md:
	$(GO) run ./cmd/runsuite -md EXPERIMENTS.md

clean:
	rm -f suite-report.json
