# Same targets CI runs (.github/workflows/ci.yml), so local dev and CI
# execute identical commands.

GO ?= go

# Coverage floor (%) enforced on the concurrency-critical packages.
COVER_FLOOR ?= 70
COVER_PKGS  ?= internal/cache internal/loader internal/server internal/query internal/wal internal/memo internal/obs

# Scratch directory for generated build artifacts (coverage profiles, smoke
# binaries); git-ignored, removed by clean.
BUILD_DIR ?= build

.PHONY: all build test cover lint bench benchjson bench2 bench3 bench4 bench5 allocguard profile suite speccheck querycheck servesmoke distsmoke crashsmoke memosmoke tracesmoke experiments-md clean

all: lint build test

build:
	$(GO) build ./...

# -count=2 reruns every test with a warm cache bypassed: the second run of
# the race battery gets different goroutine interleavings for free.
test:
	$(GO) test -race -count=2 ./...

# Per-package coverage floor on the packages the concurrent pipeline and
# the job service live in; a refactor that strands their tests fails here,
# not in review. Profiles land in $(BUILD_DIR), not the repo root.
cover:
	@mkdir -p $(BUILD_DIR)
	@set -e; for pkg in $(COVER_PKGS); do \
		out=$(BUILD_DIR)/cover-$$(basename $$pkg).out; \
		$(GO) test -coverprofile=$$out ./$$pkg; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p=$$pct -v f=$(COVER_FLOOR) 'BEGIN{exit !(p>=f)}' || \
			{ echo "FAIL: $$pkg below coverage floor"; exit 1; }; \
	done

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# One iteration of every benchmark, no unit tests: a compile-and-run smoke
# of the full reproduction harness.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Concurrent-loader benchmark: sharded vs single-mutex lookup throughput and
# pipeline epoch wall time at 1/2/4/8 workers, written to BENCH_1.json.
benchjson:
	$(GO) run ./cmd/stallbench -bench -bench-out BENCH_1.json

# Old-vs-new hot-path comparison: event dispatch on the frozen boxed-heap
# engine vs the slice-heap engine (goroutine and callback flavours), the
# cache fetch loop on map-backed vs dense MinIO, and full-suite wall time,
# written to BENCH_2.json. Allocation counts are host-independent, so the
# reduction ratios are comparable across machines.
bench2:
	$(GO) run ./cmd/stallbench -bench2 -bench2-out BENCH_2.json

# Zero-allocation guards on the hot paths (steady-state cache Lookup, page
# cache churn, sim event dispatch). Run WITHOUT -race: the detector
# allocates shadow state on paths that are allocation-free in normal
# builds, so the guards skip themselves under instrumentation.
allocguard:
	$(GO) test -count=1 -run 'TestAllocs' ./internal/sim ./internal/cache ./internal/pagecache ./internal/obs

# CPU + allocation profiles of one serial full-suite run -> cpu.pprof,
# mem.pprof. Inspect with `go tool pprof -top cpu.pprof` (or mem.pprof
# with -sample_index=alloc_objects for allocation counts).
profile:
	$(GO) run ./cmd/stallbench -run all -parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof mem.pprof"

# Full experiment suite, fanned across all CPUs; one run emits both the
# JSON report (for artifacts) and EXPERIMENTS.md.
suite:
	$(GO) run ./cmd/runsuite -parallel 0 -json -md EXPERIMENTS.md > suite-report.json
	@echo "wrote suite-report.json"

# Declarative-spec gate: every registry experiment expressible as a Spec is
# round-tripped through JSON marshal -> unmarshal -> run and byte-compared
# against the direct registry run, and the committed example scenario
# (testdata/specs/cache-sweep.json — a sweep that exists nowhere in compiled
# code) must load and run clean.
speccheck:
	$(GO) test -count=1 -run 'TestSpec|TestLoadSpec' ./internal/experiments
	$(GO) run ./cmd/runsuite -spec testdata/specs/cache-sweep.json > /dev/null

# Query gate: the committed example queries run against the committed
# fig18-style scenario (testdata/specs/fig18-query.json) and their NDJSON
# must be byte-identical to the goldens — same no-reblessing discipline as
# the suite goldens. Catches drift anywhere in the chain: simulation,
# case capture, report round-trip, query operators, NDJSON rendering.
querycheck:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/runsuite -spec testdata/specs/fig18-query.json -query testdata/queries/best-cache.json > $(BUILD_DIR)/best-cache.ndjson
	cmp testdata/queries/best-cache.golden $(BUILD_DIR)/best-cache.ndjson
	$(GO) run ./cmd/runsuite -spec testdata/specs/fig18-query.json -query testdata/queries/epoch-stalls.json > $(BUILD_DIR)/epoch-stalls.ndjson
	cmp testdata/queries/epoch-stalls.golden $(BUILD_DIR)/epoch-stalls.ndjson
	@echo "querycheck: example query output matches goldens"

# Job-service bench: HTTP submit->complete latency and /events fan-out
# delivery throughput at 1/4/16 concurrent subscribers, written to
# BENCH_3.json.
bench3:
	$(GO) run ./cmd/stallbench -bench3 -bench3-out BENCH_3.json

# End-to-end smoke of the HTTP job service: boot stallserved, submit the
# committed example scenario, stream its events to completion, cancel a
# second job mid-run, reconcile /metrics, and SIGTERM-drain cleanly.
servesmoke:
	BUILD_DIR=$(BUILD_DIR) ./scripts/servesmoke.sh

# Coordinator-mode bench: one spec grid on a single node vs scattered
# across 1/2/4 in-process workers, every fleet report byte-checked against
# the single-node one, written to BENCH_4.json.
bench4:
	$(GO) run ./cmd/stallbench -bench4 -bench4-out BENCH_4.json

# Distributed-mode smoke: a coordinator plus two real stallserved worker
# processes run the same sweep as a single node; the scattered report —
# including one gathered while a worker is kill -9'd mid-sweep — must
# byte-match the single-node golden.
distsmoke:
	BUILD_DIR=$(BUILD_DIR) ./scripts/distsmoke.sh

# Crash-safety smoke: the same sweep uninterrupted, killed at a
# deterministic WAL append (STALLWAL_CRASH self-SIGKILL), and killed -9
# untimed mid-sweep; both restarts must resume from the WAL and serve
# /v1/query bytes identical to the uninterrupted golden.
crashsmoke:
	BUILD_DIR=$(BUILD_DIR) ./scripts/crashsmoke.sh

# Memoization smoke: runsuite runs three experiments cold then warm against
# one cache directory (warm must simulate nothing, report byte-identical),
# a stallserved on the CLI-warmed directory must serve the same spec purely
# from disk (shared on-disk format), and a corrupted entry must degrade to
# a counted miss with unchanged output.
memosmoke:
	BUILD_DIR=$(BUILD_DIR) ./scripts/memosmoke.sh

# Tracing smoke: boot stallserved with -trace-dir, run fig5 twice, and
# require the served Chrome trace to validate strictly, agree with the
# on-disk dump, and — timestamps stripped — byte-match itself across reruns
# and the committed golden (testdata/traces/fig5-topology.golden).
tracesmoke:
	BUILD_DIR=$(BUILD_DIR) ./scripts/tracesmoke.sh

# Memoization bench: cold-vs-warm suite wall and a 100-case sweep against a
# 90%-primed cache vs a single case, written to BENCH_5.json.
bench5:
	$(GO) run ./cmd/stallbench -bench5 -bench5-out BENCH_5.json

experiments-md:
	$(GO) run ./cmd/runsuite -md EXPERIMENTS.md

clean:
	rm -f suite-report.json cover-*.out cpu.pprof mem.pprof
	rm -rf $(BUILD_DIR)
