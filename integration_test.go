package datastall_test

import (
	"math"
	"testing"
	"testing/quick"

	"datastall"
)

// TestConservationInvariants checks accounting identities that must hold for
// any run: stall fractions in [0,1], samples conserved across epochs, and
// steady-state disk I/O bounded by the uncached share of the dataset.
func TestConservationInvariants(t *testing.T) {
	r, err := datastall.Train(datastall.TrainConfig{
		Model: "resnet18", Dataset: "openimages",
		Loader: datastall.LoaderCoorDL, CacheFraction: 0.5,
		Scale: 0.004, Epochs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) != 4 {
		t.Fatalf("epochs %d", len(r.Epochs))
	}
	samples := r.Epochs[0].Samples
	for i, e := range r.Epochs {
		if e.StallFraction < 0 || e.StallFraction > 1 {
			t.Fatalf("epoch %d stall fraction %v", i, e.StallFraction)
		}
		if e.Samples != samples {
			t.Fatalf("samples changed across epochs: %d vs %d", e.Samples, samples)
		}
		if e.Seconds <= 0 {
			t.Fatalf("epoch %d non-positive duration", i)
		}
	}
	// MinIO steady state: exactly the uncached share hits disk, and every
	// steady epoch reads the same amount.
	d1, d2 := r.Epochs[2].DiskGiB, r.Epochs[3].DiskGiB
	if math.Abs(d1-d2)/d1 > 0.02 {
		t.Fatalf("MinIO steady-state disk not stable: %v vs %v", d1, d2)
	}
}

// TestThroughputBoundedByIngestion: no configuration may exceed the GPU
// ingestion rate measured with synthetic data.
func TestThroughputBoundedByIngestion(t *testing.T) {
	for _, model := range []string{"alexnet", "resnet50", "audio-m5"} {
		p, err := datastall.AnalyzeStalls(datastall.TrainConfig{
			Model: model, CacheFraction: 0.5, Scale: 0.004,
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.FetchRate > p.GPURate*1.001 {
			t.Fatalf("%s: actual rate %v exceeds ingestion rate %v",
				model, p.FetchRate, p.GPURate)
		}
	}
}

// TestCoorDLNeverReadsMoreDisk: across random configurations, CoorDL's
// steady-state disk I/O never exceeds the page-cache baseline's — MinIO's
// core guarantee.
func TestCoorDLNeverReadsMoreDisk(t *testing.T) {
	f := func(cacheRaw, modelRaw uint8, seed int64) bool {
		models := []string{"shufflenetv2", "resnet18", "mobilenetv2"}
		cacheFrac := 0.2 + 0.6*float64(cacheRaw)/255
		model := models[int(modelRaw)%len(models)]
		if seed == 0 {
			seed = 1
		}
		run := func(l datastall.Loader) *datastall.TrainResult {
			r, err := datastall.Train(datastall.TrainConfig{
				Model: model, Dataset: "openimages", Loader: l,
				CacheFraction: cacheFrac, Scale: 0.002, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		coordl := run(datastall.LoaderCoorDL)
		dali := run(datastall.LoaderDALIShuffle)
		return coordl.DiskGiBPerEpoch <= dali.DiskGiBPerEpoch*1.001 &&
			coordl.EpochSeconds <= dali.EpochSeconds*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMinIOHitRateEqualsCapacityProperty: for any cache fraction, MinIO's
// steady-state hit rate equals the capacity ratio (within item-size noise).
func TestMinIOHitRateEqualsCapacityProperty(t *testing.T) {
	f := func(cacheRaw uint8) bool {
		frac := 0.1 + 0.8*float64(cacheRaw)/255
		r, err := datastall.Train(datastall.TrainConfig{
			Model: "resnet18", Dataset: "imagenet-1k",
			Loader: datastall.LoaderCoorDL, CacheFraction: frac,
			Scale: 0.004,
		})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(r.CacheHitRate-frac) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleInvariance: the ratios the library reports (stall fraction, hit
// rate, speedups) must be stable across dataset scales.
func TestScaleInvariance(t *testing.T) {
	measure := func(scale float64) (stall, hit float64) {
		r, err := datastall.Train(datastall.TrainConfig{
			Model: "shufflenetv2", Dataset: "openimages",
			Loader: datastall.LoaderCoorDL, CacheFraction: 0.65,
			Scale: scale,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.StallFraction, r.CacheHitRate
	}
	s1, h1 := measure(0.002)
	s2, h2 := measure(0.008)
	if math.Abs(h1-h2) > 0.02 {
		t.Fatalf("hit rate not scale-invariant: %v vs %v", h1, h2)
	}
	if math.Abs(s1-s2) > 0.08 {
		t.Fatalf("stall fraction drifted with scale: %v vs %v", s1, s2)
	}
}

// TestEndToEndDeterminism: the public API is bit-deterministic.
func TestEndToEndDeterminism(t *testing.T) {
	cfg := datastall.TrainConfig{
		Model: "alexnet", Dataset: "openimages",
		Loader: datastall.LoaderCoorDL, NumServers: 2,
		Server: datastall.ServerHDD1080Ti, Batch: 128,
		CacheFraction: 0.65, Scale: 0.003, Seed: 42,
	}
	a, err := datastall.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datastall.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochSeconds != b.EpochSeconds ||
		a.DiskGiBPerEpoch != b.DiskGiBPerEpoch ||
		a.NetGiBPerEpoch != b.NetGiBPerEpoch {
		t.Fatalf("nondeterministic results: %+v vs %+v", a, b)
	}
}

// TestHPSearchJobsFinishTogether: coordinated HP jobs complete their epochs
// in lockstep (§4.3: epochs complete synchronized across jobs).
func TestHPSearchJobsFinishTogether(t *testing.T) {
	r, err := datastall.HPSearch(datastall.HPSearchConfig{
		Job: datastall.TrainConfig{
			Model: "alexnet", Dataset: "openimages",
			CacheFraction: 0.65, Batch: 128, Scale: 0.002,
		},
		NumJobs: 8, Coordinated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := r.PerJob[0].EpochSeconds
	for j, jr := range r.PerJob {
		if math.Abs(jr.EpochSeconds-ref)/ref > 0.05 {
			t.Fatalf("job %d epoch %v diverges from %v", j, jr.EpochSeconds, ref)
		}
	}
}

// TestLanguageModelsViaPublicAPI: the §3.1 exclusion reproduces through the
// public API too.
func TestLanguageModelsViaPublicAPI(t *testing.T) {
	r, err := datastall.Train(datastall.TrainConfig{
		Model: "bert-large", CacheFraction: 0.35, Scale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.StallFraction > 0.02 {
		t.Fatalf("bert-large stall %.3f, want ~0 (§3.1)", r.StallFraction)
	}
}
