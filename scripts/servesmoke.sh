#!/bin/sh
# End-to-end smoke of the stallserved HTTP job service, run by
# `make servesmoke` locally and in CI. It exercises the full service story:
# boot, health, spec listing, submitting the committed example scenario,
# live event streaming to job_done, result retrieval, cancelling a second
# job mid-run, /metrics reconciliation against what actually happened, and
# a clean SIGTERM drain.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
PORT=${SERVESMOKE_PORT:-18080}
BASE=http://127.0.0.1:$PORT
LOG=$BUILD_DIR/servesmoke.log

fail() { echo "servesmoke: FAIL: $*" >&2; sed 's/^/servesmoke: log: /' "$LOG" >&2 || true; exit 1; }

mkdir -p "$BUILD_DIR"
go build -o "$BUILD_DIR/stallserved" ./cmd/stallserved

"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Boot + health.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "server never became healthy"
  sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"ok"' || fail "healthz"

# Built-in specs are listed and fetchable by name.
curl -sf "$BASE/v1/specs" | grep -q '"fig5"' || fail "/v1/specs does not list fig5"
curl -sf "$BASE/v1/specs/fig5" | grep -q '"name": "fig5"' || fail "/v1/specs/fig5"

# Park the single worker on a long job so the scenario below stays queued
# while its event stream attaches; the blocker then doubles as the
# cancel-mid-run subject.
ID2=$(curl -sf -X POST -d '{"job": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.2, "epochs": 50, "batch": 16, "loader": "coordl", "cache_fraction": 0.35}}' \
  "$BASE/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID2" ] || fail "blocker submit returned no job id"
i=0
until curl -sf "$BASE/v1/jobs/$ID2" | grep -q '"status": "running"'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "$ID2 never started running"
  sleep 0.05
done

# Submit the committed example scenario (queued behind the blocker) and
# attach its event stream before it starts: nothing can be missed.
printf '{"spec": %s}' "$(cat testdata/specs/cache-sweep.json)" >"$BUILD_DIR/servesmoke-submit.json"
ID=$(curl -sf -X POST --data-binary @"$BUILD_DIR/servesmoke-submit.json" "$BASE/v1/jobs" |
  sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit returned no job id"
echo "servesmoke: submitted $ID (queued behind $ID2)"
: >"$BUILD_DIR/servesmoke-events.ndjson"
curl -sfN "$BASE/v1/jobs/$ID/events" >"$BUILD_DIR/servesmoke-events.ndjson" &
CURLPID=$!
i=0
until grep -q '"type":"status"' "$BUILD_DIR/servesmoke-events.ndjson"; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "event stream never attached"
  sleep 0.05
done

# Cancel the blocker mid-run; the worker frees up and runs the scenario.
curl -sf -X DELETE "$BASE/v1/jobs/$ID2" | grep -q '"status": "cancelled"' || fail "DELETE did not report cancelled"
i=0
until curl -sf "$BASE/v1/jobs/$ID2" | grep -q '"status": "cancelled"'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "$ID2 never settled cancelled"
  sleep 0.05
done
echo "servesmoke: $ID2 cancelled mid-run"

wait "$CURLPID" || fail "event stream"
grep -q '"type":"case_started"' "$BUILD_DIR/servesmoke-events.ndjson" || fail "no case_started events streamed"
grep -q '"type":"epoch_ended"' "$BUILD_DIR/servesmoke-events.ndjson" || fail "no epoch_ended events streamed"
tail -n 1 "$BUILD_DIR/servesmoke-events.ndjson" | grep -q '"type":"job_done".*"status":"completed"' ||
  fail "stream did not end in a completed job_done"
curl -sf "$BASE/v1/jobs/$ID" | grep -q '"status": "completed"' || fail "job record not completed"
curl -sf "$BASE/v1/jobs/$ID" | grep -q '"table"' || fail "completed job has no result table"
echo "servesmoke: $ID completed with a fully streamed result"

# Metrics reconcile with the two jobs above. The cancelled status flips at
# DELETE time while the worker is still unwinding the engine, so give the
# running gauge a bounded moment to settle before the exact asserts.
i=0
until curl -sf "$BASE/metrics" | grep -q '^stallserved_jobs_running 0$'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "running gauge never settled to 0"
  sleep 0.05
done
curl -sf "$BASE/metrics" >"$BUILD_DIR/servesmoke-metrics.txt"
for want in \
  'stallserved_jobs_submitted_total 2' \
  'stallserved_jobs_completed_total 1' \
  'stallserved_jobs_cancelled_total 1' \
  'stallserved_jobs_failed_total 0' \
  'stallserved_jobs_queued 0' \
  'stallserved_jobs_running 0' \
  'stallserved_queue_depth 0'; do
  grep -q "^$want\$" "$BUILD_DIR/servesmoke-metrics.txt" ||
    fail "metrics: wanted '$want', got: $(grep "^${want%% *}" "$BUILD_DIR/servesmoke-metrics.txt" || echo missing)"
done
grep -q '^stallserved_events_published_total [1-9]' "$BUILD_DIR/servesmoke-metrics.txt" ||
  fail "metrics: no events published"
echo "servesmoke: metrics reconcile"

# Graceful drain on SIGTERM: exit 0 and the farewell line.
kill -TERM "$PID"
if wait "$PID"; then :; else fail "server exited non-zero on SIGTERM"; fi
grep -q 'bye' "$LOG" || fail "no clean-shutdown marker in log"
echo "servesmoke: PASS (clean SIGTERM drain)"
