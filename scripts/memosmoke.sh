#!/bin/sh
# End-to-end smoke of result memoization, run by `make memosmoke` locally
# and in CI. Three legs on real binaries sharing one cache directory:
#
#   1. CLI: runsuite runs fig5+fig9a+fig18 cold into a fresh -memo dir,
#      then warm — the warm run must simulate nothing (100% hits, >= the
#      90% floor) and emit a byte-identical JSON report.
#   2. Daemon: a cold stallserved runs fig5 into its own dir; a second
#      server opened on the CLI-warmed directory must serve the same spec
#      entirely from the CLI's entries (zero misses) with /v1/query bytes
#      identical to the cold server's — the two binaries share one on-disk
#      format.
#   3. Corruption: one entry in the warm directory is bit-flipped; the
#      rerun must count a load error, quietly re-simulate that case, and
#      still produce the identical report.
#
# DATASTALL_MEMO_SALT pins the engine salt so both binaries address the
# same entries even on dirty builds.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
PORT=${MEMOSMOKE_PORT:-18096}
URL=http://127.0.0.1:$PORT
MEMO=$BUILD_DIR/memosmoke-cache
SRVLOGA=$BUILD_DIR/memosmoke-servera.log
SRVLOGB=$BUILD_DIR/memosmoke-serverb.log
QUERY='{"order_by":[{"col":"case_id"}]}'
SRVPID=
export DATASTALL_MEMO_SALT=memosmoke

fail() {
  echo "memosmoke: FAIL: $*" >&2
  for f in "$SRVLOGA" "$SRVLOGB"; do
    [ -f "$f" ] && sed "s|^|memosmoke: $(basename "$f"): |" "$f" >&2 || true
  done
  exit 1
}

wait_healthy() {
  i=0
  until curl -sf "$URL/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server never became healthy ($1)"
    sleep 0.1
  done
}

# Submit {"spec_name": "fig5"} and wait for completion; sets JOB_ID.
run_fig5() {
  JOB_ID=$(curl -sf -X POST "$URL/v1/jobs" -d '{"spec_name": "fig5"}' |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  [ -n "$JOB_ID" ] || fail "submit returned no job id ($1)"
  i=0
  until curl -sf "$URL/v1/jobs/$JOB_ID" 2>/dev/null | grep -q '"status": "completed"'; do
    i=$((i + 1))
    [ "$i" -lt 600 ] || fail "job $JOB_ID never completed ($1)"
    sleep 0.1
  done
}

# metric NAME LOGLABEL -> value of the metric on the current server.
metric() {
  curl -sf "$URL/metrics" | sed -n "s/^$1 //p"
}

# memo_field LINE FIELD -> numeric value of FIELD=N on a slog memo-summary
# line (msg="memo summary" hits=N misses=N evictions=N load_errors=N).
memo_field() {
  echo "$1" | sed -n "s/.*[[:space:]]$2=\([0-9][0-9]*\).*/\1/p"
}

mkdir -p "$BUILD_DIR"
go build -o "$BUILD_DIR/runsuite" ./cmd/runsuite
go build -o "$BUILD_DIR/stallserved" ./cmd/stallserved
rm -rf "$MEMO"

# --- Leg 1: CLI cold then warm. ---
"$BUILD_DIR/runsuite" -ids fig5,fig9a,fig18 -json -cases -memo "$MEMO" \
  >"$BUILD_DIR/memosmoke-cold.json" 2>"$BUILD_DIR/memosmoke-cold.err" ||
  fail "cold runsuite failed: $(cat "$BUILD_DIR/memosmoke-cold.err")"
COLD_LINE=$(grep 'msg="memo summary"' "$BUILD_DIR/memosmoke-cold.err") ||
  fail "cold run printed no memo summary"
COLD_MISSES=$(memo_field "$COLD_LINE" misses)
[ "$COLD_MISSES" -gt 0 ] || fail "cold run missed nothing: $COLD_LINE"

"$BUILD_DIR/runsuite" -ids fig5,fig9a,fig18 -json -cases -memo "$MEMO" \
  >"$BUILD_DIR/memosmoke-warm.json" 2>"$BUILD_DIR/memosmoke-warm.err" ||
  fail "warm runsuite failed: $(cat "$BUILD_DIR/memosmoke-warm.err")"
WARM_LINE=$(grep 'msg="memo summary"' "$BUILD_DIR/memosmoke-warm.err") ||
  fail "warm run printed no memo summary"
WARM_HITS=$(memo_field "$WARM_LINE" hits)
WARM_MISSES=$(memo_field "$WARM_LINE" misses)
[ "$WARM_MISSES" -eq 0 ] || fail "warm run re-simulated $WARM_MISSES case(s): $WARM_LINE"
[ "$WARM_HITS" -eq "$COLD_MISSES" ] ||
  fail "warm hits $WARM_HITS != cold misses $COLD_MISSES"
# The >= 90% hit-rate floor; with zero misses the warm rate is 100%.
[ $((WARM_HITS * 10)) -ge $(((WARM_HITS + WARM_MISSES) * 9)) ] || fail "hit rate below 90%"
cmp -s "$BUILD_DIR/memosmoke-cold.json" "$BUILD_DIR/memosmoke-warm.json" ||
  fail "warm suite report differs from cold:
$(diff "$BUILD_DIR/memosmoke-cold.json" "$BUILD_DIR/memosmoke-warm.json" | head -20)"
echo "memosmoke: CLI warm rerun served $WARM_HITS/$COLD_MISSES cases from cache, report byte-identical"

# --- Leg 2: cold daemon vs a daemon on the CLI-warmed directory. ---
rm -rf "$BUILD_DIR/memosmoke-cache-daemon"
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 2 \
  -memo "$BUILD_DIR/memosmoke-cache-daemon" >"$SRVLOGA" 2>&1 &
SRVPID=$!
trap 'kill "$SRVPID" 2>/dev/null || true' EXIT
wait_healthy daemon-cold
run_fig5 daemon-cold
DAEMON_MISSES=$(metric stallserved_memo_misses_total)
[ -n "$DAEMON_MISSES" ] && [ "$DAEMON_MISSES" -gt 0 ] ||
  fail "cold daemon reported no memo misses"
curl -sf -X POST "$URL/v1/query" -d "$QUERY" >"$BUILD_DIR/memosmoke-daemon-cold.ndjson" ||
  fail "cold daemon query"
kill -TERM "$SRVPID"
wait "$SRVPID" || fail "cold daemon exited non-zero on SIGTERM"

"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 2 \
  -memo "$MEMO" >"$SRVLOGB" 2>&1 &
SRVPID=$!
wait_healthy daemon-warm
run_fig5 daemon-warm
[ "$(metric stallserved_memo_misses_total)" = "0" ] ||
  fail "daemon on the CLI-warmed dir re-simulated $(metric stallserved_memo_misses_total) case(s): the binaries do not share a format"
[ "$(metric stallserved_memo_hits_total)" = "$DAEMON_MISSES" ] ||
  fail "daemon hits $(metric stallserved_memo_hits_total) != cold daemon misses $DAEMON_MISSES"
curl -sf -X POST "$URL/v1/query" -d "$QUERY" >"$BUILD_DIR/memosmoke-daemon-warm.ndjson" ||
  fail "warm daemon query"
cmp -s "$BUILD_DIR/memosmoke-daemon-cold.ndjson" "$BUILD_DIR/memosmoke-daemon-warm.ndjson" ||
  fail "/v1/query from CLI-warmed entries differs from the cold daemon:
$(diff "$BUILD_DIR/memosmoke-daemon-cold.ndjson" "$BUILD_DIR/memosmoke-daemon-warm.ndjson" | head -20)"
kill -TERM "$SRVPID"
wait "$SRVPID" || fail "warm daemon exited non-zero on SIGTERM"
echo "memosmoke: daemon served fig5 from CLI-written entries ($DAEMON_MISSES cases), /v1/query byte-identical"

# --- Leg 3: a corrupted entry degrades to a counted miss, same bytes. ---
VICTIM=$(find "$MEMO" -name '*.memo' | head -1)
[ -n "$VICTIM" ] || fail "no .memo entries on disk to corrupt"
printf '\377' | dd of="$VICTIM" bs=1 seek=$(($(wc -c <"$VICTIM") - 1)) conv=notrunc 2>/dev/null
"$BUILD_DIR/runsuite" -ids fig5,fig9a,fig18 -json -cases -memo "$MEMO" \
  >"$BUILD_DIR/memosmoke-corrupt.json" 2>"$BUILD_DIR/memosmoke-corrupt.err" ||
  fail "runsuite failed on a corrupt entry: $(cat "$BUILD_DIR/memosmoke-corrupt.err")"
CORRUPT_LINE=$(grep 'msg="memo summary"' "$BUILD_DIR/memosmoke-corrupt.err") ||
  fail "corrupt run printed no memo summary"
LOAD_ERRS=$(memo_field "$CORRUPT_LINE" load_errors)
CORRUPT_MISSES=$(memo_field "$CORRUPT_LINE" misses)
[ "$LOAD_ERRS" -ge 1 ] || fail "corrupt entry was not counted as a load error: $CORRUPT_LINE"
[ "$CORRUPT_MISSES" -ge 1 ] || fail "corrupt entry was not treated as a miss: $CORRUPT_LINE"
cmp -s "$BUILD_DIR/memosmoke-cold.json" "$BUILD_DIR/memosmoke-corrupt.json" ||
  fail "report after corruption-induced re-simulation differs from cold"
echo "memosmoke: corrupt entry degraded to $CORRUPT_MISSES counted miss(es), report byte-identical"
echo "memosmoke: PASS"
