#!/bin/sh
# End-to-end smoke of stallserved's distributed (coordinator) mode, run by
# `make distsmoke` locally and in CI. Three real processes: a coordinator
# and two ordinary stallserved workers. The same sweep is run three ways —
# single-node (the golden), scattered across the healthy fleet, and
# scattered again while one worker is kill -9'd mid-sweep — and every
# result table must byte-match the golden: distribution, including failure
# recovery, must be invisible in the output.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
P1=${DISTSMOKE_PORT:-18090}
P2=$((P1 + 1))
P3=$((P1 + 2))
W1=http://127.0.0.1:$P1
W2=http://127.0.0.1:$P2
COORD=http://127.0.0.1:$P3
LOG1=$BUILD_DIR/distsmoke-w1.log
LOG2=$BUILD_DIR/distsmoke-w2.log
LOGC=$BUILD_DIR/distsmoke-coord.log
SPEC=$BUILD_DIR/distsmoke-spec.json

fail() {
  echo "distsmoke: FAIL: $*" >&2
  for f in "$LOGC" "$LOG1" "$LOG2"; do
    sed "s|^|distsmoke: $(basename "$f"): |" "$f" >&2 || true
  done
  exit 1
}

wait_healthy() {
  i=0
  until curl -sf "$1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "$1 never became healthy"
    sleep 0.1
  done
}

mkdir -p "$BUILD_DIR"
go build -o "$BUILD_DIR/stallserved" ./cmd/stallserved
go build -o "$BUILD_DIR/stallclient" ./examples/client

# A 10-cell grid sized so the sweep takes a few seconds — long enough to
# kill a worker while cases are still in flight.
cat >"$SPEC" <<'EOF'
{
  "name": "distsmoke",
  "title": "distsmoke cache sweep",
  "row_header": ["cache"],
  "base": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.5, "epochs": 2, "seed": 7, "batch": 16, "loader": "coordl"},
  "rows": {"param": "cache_fraction", "values": [0.1, 0.25, 0.4, 0.55, 0.7]},
  "sweep": {"param": "loader", "values": ["dali-shuffle", "coordl"]},
  "columns": [
    {"label": "dali s", "metric": "epoch_s", "of": "dali-shuffle"},
    {"label": "coordl s", "metric": "epoch_s", "of": "coordl"}
  ]
}
EOF

# --- Golden: the same sweep on a plain single-node server. ---
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$P1" -workers 2 >"$LOG1" 2>&1 &
SINGLEPID=$!
trap 'kill "$SINGLEPID" 2>/dev/null || true' EXIT
wait_healthy "$W1"
"$BUILD_DIR/stallclient" -addr 127.0.0.1:"$P1" -table-only -spec "$SPEC" >"$BUILD_DIR/distsmoke-golden.txt" ||
  fail "single-node sweep"
kill -TERM "$SINGLEPID"
wait "$SINGLEPID" || fail "single-node server exited non-zero"
echo "distsmoke: single-node golden captured"

# --- Fleet: two workers plus a coordinator. ---
COORDPID=
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$P1" -workers 2 >"$LOG1" 2>&1 &
W1PID=$!
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$P2" -workers 2 >"$LOG2" 2>&1 &
W2PID=$!
trap 'kill "$W1PID" "$W2PID" "$COORDPID" 2>/dev/null || true' EXIT
wait_healthy "$W1"
wait_healthy "$W2"
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$P3" -coordinator \
  -workers "$W1,$W2" -backoff 50ms >"$LOGC" 2>&1 &
COORDPID=$!
wait_healthy "$COORD"
curl -sf "$COORD/healthz" | grep -q '"healthy": 2' || fail "coordinator does not report 2 healthy workers"

# Sweep 1: healthy fleet. Byte-identical to single-node.
"$BUILD_DIR/stallclient" -addr 127.0.0.1:"$P3" -table-only -spec "$SPEC" >"$BUILD_DIR/distsmoke-fleet.txt" ||
  fail "fleet sweep"
cmp -s "$BUILD_DIR/distsmoke-golden.txt" "$BUILD_DIR/distsmoke-fleet.txt" ||
  fail "fleet report differs from single-node golden:
$(diff "$BUILD_DIR/distsmoke-golden.txt" "$BUILD_DIR/distsmoke-fleet.txt" || true)"
echo "distsmoke: fleet sweep byte-matches the single-node golden"

# Sweep 2: kill -9 a worker mid-sweep. The coordinator must mark it
# unhealthy, re-route its cases to the survivor, and still gather the
# byte-identical report.
"$BUILD_DIR/stallclient" -addr 127.0.0.1:"$P3" -table-only -spec "$SPEC" >"$BUILD_DIR/distsmoke-fleet2.txt" &
CLIENTPID=$!
i=0
until curl -sf "$W2/v1/jobs" 2>/dev/null | grep -q '"status": "running"'; do
  i=$((i + 1))
  [ "$i" -lt 200 ] || fail "worker 2 never received a case to kill mid-flight"
  sleep 0.05
done
kill -9 "$W2PID"
echo "distsmoke: killed worker 2 mid-sweep"
wait "$CLIENTPID" || fail "fleet sweep with worker death"
cmp -s "$BUILD_DIR/distsmoke-golden.txt" "$BUILD_DIR/distsmoke-fleet2.txt" ||
  fail "post-kill fleet report differs from single-node golden:
$(diff "$BUILD_DIR/distsmoke-golden.txt" "$BUILD_DIR/distsmoke-fleet2.txt" || true)"
grep -q 'unhealthy' "$LOGC" || fail "coordinator never marked the dead worker unhealthy"
curl -sf "$COORD/healthz" | grep -q '"healthy": 1' || fail "coordinator still counts the dead worker healthy"
echo "distsmoke: sweep survived kill -9 with a byte-identical report"

# Clean drain of the survivors.
kill -TERM "$COORDPID" "$W1PID"
wait "$COORDPID" || fail "coordinator exited non-zero on SIGTERM"
wait "$W1PID" || fail "worker 1 exited non-zero on SIGTERM"
echo "distsmoke: PASS"
