#!/bin/sh
# End-to-end smoke of the tracing pipeline, run by `make tracesmoke` locally
# and in CI, on real binaries:
#
#   1. Boot stallserved with -trace-dir, submit the fig5 spec over HTTP,
#      and fetch GET /v1/jobs/{id}/trace when it completes. The trace must
#      pass tracetool's strict schema check, and the -trace-dir dump must
#      canonicalize to the same topology as the HTTP response.
#   2. Determinism: run the same spec again on the same server; the second
#      job's stripped topology must be byte-identical to the first, and
#      both must match the committed golden
#      (testdata/traces/fig5-topology.golden — regenerate deliberately
#      with TRACESMOKE_UPDATE=1 ./scripts/tracesmoke.sh).
#   3. Drain: SIGTERM must still exit cleanly with tracing on.
#
# On failure everything needed to debug — server log, fetched traces,
# topologies — is left under $BUILD_DIR/tracesmoke-* (uploaded as a CI
# artifact).
set -eu

BUILD_DIR=${BUILD_DIR:-build}
PORT=${TRACESMOKE_PORT:-18097}
URL=http://127.0.0.1:$PORT
TRACEDIR=$BUILD_DIR/tracesmoke-traces
SRVLOG=$BUILD_DIR/tracesmoke-server.log
GOLDEN=testdata/traces/fig5-topology.golden
SRVPID=

fail() {
  echo "tracesmoke: FAIL: $*" >&2
  [ -f "$SRVLOG" ] && sed 's/^/tracesmoke: server: /' "$SRVLOG" >&2 || true
  exit 1
}

wait_healthy() {
  i=0
  until curl -sf "$URL/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server never became healthy"
    sleep 0.1
  done
}

# Submit {"spec_name": "fig5"} and wait for completion; sets JOB_ID.
run_fig5() {
  JOB_ID=$(curl -sf -X POST "$URL/v1/jobs" -d '{"spec_name": "fig5"}' |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  [ -n "$JOB_ID" ] || fail "submit returned no job id ($1)"
  i=0
  until curl -sf "$URL/v1/jobs/$JOB_ID" 2>/dev/null | grep -q '"status": "completed"'; do
    i=$((i + 1))
    [ "$i" -lt 600 ] || fail "job $JOB_ID never completed ($1)"
    sleep 0.1
  done
}

mkdir -p "$BUILD_DIR"
go build -o "$BUILD_DIR/stallserved" ./cmd/stallserved
go build -o "$BUILD_DIR/tracetool" ./cmd/tracetool
rm -rf "$TRACEDIR"

"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 2 \
  -trace-dir "$TRACEDIR" >"$SRVLOG" 2>&1 &
SRVPID=$!
trap 'kill "$SRVPID" 2>/dev/null || true' EXIT
wait_healthy

# --- Leg 1: fetch, validate, and reconcile HTTP vs -trace-dir. ---
run_fig5 first
curl -sf "$URL/v1/jobs/$JOB_ID/trace" >"$BUILD_DIR/tracesmoke-1.json" ||
  fail "GET trace (first)"
"$BUILD_DIR/tracetool" -validate "$BUILD_DIR/tracesmoke-1.json" ||
  fail "served trace failed validation"
"$BUILD_DIR/tracetool" -topology "$BUILD_DIR/tracesmoke-1.json" \
  >"$BUILD_DIR/tracesmoke-1.topo" || fail "topology (first)"
DUMP=$TRACEDIR/$JOB_ID.trace.json
i=0
until [ -f "$DUMP" ]; do # the dump lands just after the job turns terminal
  i=$((i + 1))
  [ "$i" -lt 50 ] || fail "no -trace-dir dump at $DUMP"
  sleep 0.1
done
"$BUILD_DIR/tracetool" -validate "$DUMP" || fail "-trace-dir dump failed validation"
"$BUILD_DIR/tracetool" -topology "$DUMP" >"$BUILD_DIR/tracesmoke-dump.topo" ||
  fail "topology (dump)"
cmp -s "$BUILD_DIR/tracesmoke-1.topo" "$BUILD_DIR/tracesmoke-dump.topo" ||
  fail "HTTP trace and -trace-dir dump disagree on topology"
SPANS=$("$BUILD_DIR/tracetool" -validate "$BUILD_DIR/tracesmoke-1.json" 2>&1 |
  sed -n 's/.*valid (\([0-9]*\) spans).*/\1/p')
echo "tracesmoke: fig5 trace valid ($SPANS spans), HTTP and -trace-dir dumps agree"

# --- Leg 2: rerun identity + committed golden. ---
run_fig5 second
curl -sf "$URL/v1/jobs/$JOB_ID/trace" >"$BUILD_DIR/tracesmoke-2.json" ||
  fail "GET trace (second)"
"$BUILD_DIR/tracetool" -topology "$BUILD_DIR/tracesmoke-2.json" \
  >"$BUILD_DIR/tracesmoke-2.topo" || fail "topology (second)"
cmp -s "$BUILD_DIR/tracesmoke-1.topo" "$BUILD_DIR/tracesmoke-2.topo" ||
  fail "trace topology differs across reruns of the same spec:
$(diff "$BUILD_DIR/tracesmoke-1.topo" "$BUILD_DIR/tracesmoke-2.topo" | head -20)"
if [ -n "${TRACESMOKE_UPDATE:-}" ]; then
  mkdir -p "$(dirname "$GOLDEN")"
  cp "$BUILD_DIR/tracesmoke-1.topo" "$GOLDEN"
  echo "tracesmoke: wrote $GOLDEN"
fi
[ -f "$GOLDEN" ] || fail "no committed golden at $GOLDEN (TRACESMOKE_UPDATE=1 creates it)"
cmp -s "$BUILD_DIR/tracesmoke-1.topo" "$GOLDEN" ||
  fail "trace topology drifted from $GOLDEN (TRACESMOKE_UPDATE=1 regenerates after deliberate changes):
$(diff "$GOLDEN" "$BUILD_DIR/tracesmoke-1.topo" | head -20)"
echo "tracesmoke: rerun topology byte-identical and matches the committed golden"

# --- Leg 3: clean drain with tracing on. ---
kill -TERM "$SRVPID"
i=0
while kill -0 "$SRVPID" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "server did not exit within 10s of SIGTERM"
  sleep 0.1
done
wait "$SRVPID" || fail "server exited non-zero on SIGTERM"
grep -q "bye" "$SRVLOG" || fail "no clean shutdown message in server log"
echo "tracesmoke: PASS"
