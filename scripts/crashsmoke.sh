#!/bin/sh
# End-to-end crash-safety smoke of stallserved's WAL, run by
# `make crashsmoke` locally and in CI. One sweep is run three ways on real
# processes: uninterrupted (the golden), killed at a deterministic WAL
# append via the STALLWAL_CRASH self-SIGKILL injection, and killed with a
# plain untimed kill -9 mid-sweep. Both crashed servers are restarted on
# their WAL directories and must resume — serving already-simulated cells
# from the log — and finish with /v1/query bytes identical to the golden:
# a kill -9 must be invisible in the results.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
PORT=${CRASHSMOKE_PORT:-18095}
URL=http://127.0.0.1:$PORT
LOGG=$BUILD_DIR/crashsmoke-golden.log
LOG1=$BUILD_DIR/crashsmoke-crash1.log
LOG1R=$BUILD_DIR/crashsmoke-recover1.log
LOG2=$BUILD_DIR/crashsmoke-crash2.log
LOG2R=$BUILD_DIR/crashsmoke-recover2.log
SPEC=$BUILD_DIR/crashsmoke-spec.json
QUERY='{"order_by":[{"col":"case_id"}]}'
SRVPID=

fail() {
  echo "crashsmoke: FAIL: $*" >&2
  for f in "$LOGG" "$LOG1" "$LOG1R" "$LOG2" "$LOG2R"; do
    [ -f "$f" ] && sed "s|^|crashsmoke: $(basename "$f"): |" "$f" >&2 || true
  done
  exit 1
}

wait_healthy() {
  i=0
  until curl -sf "$URL/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server never became healthy ($1)"
    sleep 0.1
  done
}

wait_dead() {
  i=0
  while kill -0 "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 600 ] || fail "$2"
    sleep 0.1
  done
}

# Submit the sweep and wait for the job to complete; sets JOB_ID.
run_sweep() {
  JOB_ID=$(curl -sf -X POST "$URL/v1/jobs" -d @"$SPEC" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  [ -n "$JOB_ID" ] || fail "submit returned no job id ($1)"
  wait_completed "$1"
}

wait_completed() {
  i=0
  until curl -sf "$URL/v1/jobs/$JOB_ID" 2>/dev/null | grep -q '"status": "completed"'; do
    i=$((i + 1))
    [ "$i" -lt 600 ] || fail "job $JOB_ID never completed ($1)"
    sleep 0.1
  done
}

mkdir -p "$BUILD_DIR"
go build -o "$BUILD_DIR/stallserved" ./cmd/stallserved

# A 10-cell grid sized so the sweep runs for a few seconds — enough WAL
# appends to kill the server mid-case with most of the grid outstanding.
cat >"$SPEC" <<'EOF'
{
  "name": "crashsmoke",
  "title": "crashsmoke cache sweep",
  "row_header": ["cache"],
  "base": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.5, "epochs": 2, "seed": 7, "batch": 16, "loader": "coordl"},
  "rows": {"param": "cache_fraction", "values": [0.1, 0.25, 0.4, 0.55, 0.7]},
  "sweep": {"param": "loader", "values": ["dali-shuffle", "coordl"]},
  "columns": [
    {"label": "dali s", "metric": "epoch_s", "of": "dali-shuffle"},
    {"label": "coordl s", "metric": "epoch_s", "of": "coordl"}
  ]
}
EOF

# --- Golden: the sweep uninterrupted on a WAL-enabled server. ---
GOLD_WAL=$BUILD_DIR/crashsmoke-wal-golden
rm -rf "$GOLD_WAL"
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 -wal "$GOLD_WAL" >"$LOGG" 2>&1 &
SRVPID=$!
trap 'kill "$SRVPID" 2>/dev/null || true' EXIT
wait_healthy golden
run_sweep golden
curl -sf -X POST "$URL/v1/query" -d "$QUERY" >"$BUILD_DIR/crashsmoke-golden.ndjson" || fail "golden query"
kill -TERM "$SRVPID"
wait "$SRVPID" || fail "golden server exited non-zero on SIGTERM"
echo "crashsmoke: golden captured ($JOB_ID, $(wc -l <"$BUILD_DIR/crashsmoke-golden.ndjson") rows)"

# --- Phase 1: deterministic crash at the 6th WAL append. ---
# Appends 1-2 are the submitted/started records, 3-6 the first four
# case_done records; the injected SIGKILL lands mid-sweep with six cells
# still unsimulated. fsync defaults to always, so appends 1-6 are durable.
WAL1=$BUILD_DIR/crashsmoke-wal-1
rm -rf "$WAL1"
STALLWAL_CRASH=append:6 "$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 -wal "$WAL1" >"$LOG1" 2>&1 &
SRVPID=$!
wait_healthy crash1
grep -q 'crash injection armed' "$LOG1" || fail "crash injection never armed"
curl -sf -X POST "$URL/v1/jobs" -d @"$SPEC" >/dev/null || fail "crash1 submit"
wait_dead "$SRVPID" "server survived its armed crash point"
echo "crashsmoke: server self-killed at WAL append 6"

"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 -wal "$WAL1" >"$LOG1R" 2>&1 &
SRVPID=$!
wait_healthy recover1
grep -q '1 interrupted job(s) to resume' "$LOG1R" || fail "restart logged no recovery summary"
curl -sf "$URL/metrics" | grep -q 'stallserved_wal_resumed_jobs_total 1' ||
  fail "restarted server did not re-enqueue the interrupted job"
JOB_ID=job-000001
wait_completed recover1
curl -sf "$URL/metrics" | grep -q 'stallserved_wal_resumed_cases_total 4' ||
  fail "resumed sweep did not serve the four logged cells from the WAL"
curl -sf -X POST "$URL/v1/query" -d "$QUERY" >"$BUILD_DIR/crashsmoke-recover1.ndjson" || fail "recover1 query"
cmp -s "$BUILD_DIR/crashsmoke-golden.ndjson" "$BUILD_DIR/crashsmoke-recover1.ndjson" ||
  fail "resumed /v1/query differs from the no-crash golden:
$(diff "$BUILD_DIR/crashsmoke-golden.ndjson" "$BUILD_DIR/crashsmoke-recover1.ndjson" || true)"
kill -TERM "$SRVPID"
wait "$SRVPID" || fail "recovered server exited non-zero on SIGTERM"
echo "crashsmoke: deterministic crash resumed to a byte-identical golden (4 cells from the log)"

# --- Phase 2: plain untimed kill -9 mid-sweep. ---
WAL2=$BUILD_DIR/crashsmoke-wal-2
rm -rf "$WAL2"
"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 -wal "$WAL2" >"$LOG2" 2>&1 &
SRVPID=$!
wait_healthy crash2
curl -sf -X POST "$URL/v1/jobs" -d @"$SPEC" >/dev/null || fail "crash2 submit"
i=0
until curl -sf "$URL/metrics" 2>/dev/null | grep -Eq 'stallserved_wal_appends_total ([4-9]|1[0-2])$'; do
  i=$((i + 1))
  [ "$i" -lt 600 ] || fail "sweep never reached four WAL appends to kill against"
  sleep 0.05
done
kill -9 "$SRVPID"
wait_dead "$SRVPID" "kill -9 did not kill the server"
echo "crashsmoke: server killed -9 mid-sweep"

"$BUILD_DIR/stallserved" -addr 127.0.0.1:"$PORT" -workers 1 -wal "$WAL2" >"$LOG2R" 2>&1 &
SRVPID=$!
wait_healthy recover2
grep -q 'persist: recovered' "$LOG2R" || fail "post-kill restart logged no recovery summary"
JOB_ID=job-000001
wait_completed recover2
curl -sf -X POST "$URL/v1/query" -d "$QUERY" >"$BUILD_DIR/crashsmoke-recover2.ndjson" || fail "recover2 query"
cmp -s "$BUILD_DIR/crashsmoke-golden.ndjson" "$BUILD_DIR/crashsmoke-recover2.ndjson" ||
  fail "post-kill /v1/query differs from the no-crash golden:
$(diff "$BUILD_DIR/crashsmoke-golden.ndjson" "$BUILD_DIR/crashsmoke-recover2.ndjson" || true)"
kill -TERM "$SRVPID"
wait "$SRVPID" || fail "post-kill server exited non-zero on SIGTERM"
echo "crashsmoke: untimed kill -9 resumed to a byte-identical golden"
echo "crashsmoke: PASS"
