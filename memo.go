package datastall

import "datastall/internal/memo"

// ResultCache is the content-addressed simulation-result cache
// (internal/memo): every fully-resolved case is stored once under the
// sha256 of its canonical config (salted with an engine-version
// fingerprint, so caches self-invalidate across builds) and replayed
// byte-identically on any later run that resolves to the same case.
// Attach one to ExperimentOptions.Memo or SuiteOptions.Memo; `runsuite
// -memo dir` and `stallserved -memo dir` share the same on-disk layout.
type ResultCache = memo.Cache

// ResultCacheStats is a point-in-time snapshot of a ResultCache's
// counters and occupancy.
type ResultCacheStats = memo.Stats

// OpenResultCache opens (creating if needed) a persisted result cache in
// dir, bounded by maxBytes on disk and in memory independently (0: 256
// MiB; the bound is enforced at open too, so shrinking it trims an
// existing directory immediately). An empty dir yields a memory-only
// cache.
func OpenResultCache(dir string, maxBytes int64) (*ResultCache, error) {
	return memo.Open(memo.Options{Dir: dir, MaxBytes: maxBytes})
}
