// Benchmarks regenerate every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). Each benchmark runs the full
// simulated experiment and reports its headline metric via b.ReportMetric,
// so `go test -bench=. -benchmem` doubles as the reproduction harness:
//
//	go test -bench=Fig9a -benchmem
//
// Scales are small (ratios are scale-invariant; see DESIGN.md §2); pass the
// paper-scale path through cmd/stallbench -scale 1 when you have hours.
package datastall_test

import (
	"context"
	"testing"

	"datastall"
)

// benchExperiment runs one registered experiment per iteration and reports
// the named values as benchmark metrics.
func benchExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	var rep *datastall.ExperimentReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = datastall.RunExperiment(context.Background(), id, datastall.ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for key, unit := range metrics {
		if v, ok := rep.Values[key]; ok {
			b.ReportMetric(v, unit)
		} else {
			b.Fatalf("experiment %s missing metric %s", id, key)
		}
	}
}

func BenchmarkFig1PipelineRates(b *testing.B) {
	benchExperiment(b, "fig1", map[string]string{
		"gpu_demand_mbps": "gpu-MB/s",
		"cpu_prep_mbps":   "prep-MB/s",
	})
}

func BenchmarkFig2FetchStalls(b *testing.B) {
	benchExperiment(b, "fig2", map[string]string{
		"fetch_stall_audio-m5": "audio-stall-%",
		"fetch_stall_resnet50": "rn50-stall-%",
	})
}

func BenchmarkFig3CacheSweep(b *testing.B) {
	benchExperiment(b, "fig3", map[string]string{
		"fetched_pct_at_35": "fetched-%",
	})
}

func BenchmarkFig4CPUSweep(b *testing.B) {
	benchExperiment(b, "fig4", map[string]string{
		"throughput24_alexnet": "alexnet-24core-samp/s",
	})
}

func BenchmarkFig5DALIPrep(b *testing.B) {
	benchExperiment(b, "fig5", map[string]string{
		"prep_stall_gpuprep_v100":   "v100-stall-%",
		"prep_stall_gpuprep_1080ti": "1080ti-stall-%",
	})
}

func BenchmarkFig6PrepStalls(b *testing.B) {
	benchExperiment(b, "fig6", map[string]string{
		"prep_stall_resnet18": "rn18-stall-%",
	})
}

func BenchmarkTable3TFRecord(b *testing.B) {
	benchExperiment(b, "table3", map[string]string{
		"miss_pct_at_35": "miss-%",
		"read_amp_at_35": "read-amp-x",
	})
}

func BenchmarkFig9aSingleServer(b *testing.B) {
	benchExperiment(b, "fig9a", map[string]string{
		"speedup_seq_shufflenetv2":     "shufflenet-vs-seq-x",
		"speedup_shuffle_shufflenetv2": "shufflenet-vs-shuffle-x",
	})
}

func BenchmarkFig9bDistributed(b *testing.B) {
	benchExperiment(b, "fig9b", map[string]string{
		"speedup_alexnet":  "alexnet-hdd-x",
		"speedup_audio-m5": "m5-ssd-x",
	})
}

func BenchmarkFig9dHPSearch(b *testing.B) {
	benchExperiment(b, "fig9d", map[string]string{
		"speedup_alexnet":  "alexnet-x",
		"speedup_audio-m5": "m5-x",
	})
}

func BenchmarkFig9eHPConfigs(b *testing.B) {
	benchExperiment(b, "fig9e", map[string]string{
		"speedup_8x1": "8x1-x",
		"speedup_1x8": "1x8-x",
	})
}

func BenchmarkFig10TimeToAccuracy(b *testing.B) {
	benchExperiment(b, "fig10", map[string]string{
		"speedup":      "tta-speedup-x",
		"coordl_hours": "coordl-hours",
	})
}

func BenchmarkFig11IOPattern(b *testing.B) {
	benchExperiment(b, "fig11", map[string]string{
		"coordl_total_gib": "coordl-GiB",
		"dali_total_gib":   "dali-GiB",
	})
}

func BenchmarkTable5Prediction(b *testing.B) {
	benchExperiment(b, "table5", map[string]string{
		"error_pct_35": "pred-err-%",
	})
}

func BenchmarkTable6CacheMisses(b *testing.B) {
	benchExperiment(b, "table6", map[string]string{
		"miss_coordl":       "coordl-miss-%",
		"miss_dali-shuffle": "shuffle-miss-%",
		"miss_dali-seq":     "seq-miss-%",
	})
}

func BenchmarkTable7FullyCachedHP(b *testing.B) {
	benchExperiment(b, "table7", map[string]string{
		"speedup_alexnet":  "alexnet-x",
		"speedup_resnet50": "rn50-x",
	})
}

func BenchmarkFig12VCPUSweep(b *testing.B) {
	benchExperiment(b, "fig12", map[string]string{
		"prep_stall_8vcpu": "8vcpu-stall-%",
	})
}

func BenchmarkFig13LoaderCompare(b *testing.B) {
	benchExperiment(b, "fig13", map[string]string{
		"pytorch_over_dali_resnet18": "pytorch-over-dali-x",
	})
}

func BenchmarkFig14BatchSize(b *testing.B) {
	benchExperiment(b, "fig14", map[string]string{
		"epoch_s_b64":  "b64-epoch-s",
		"epoch_s_b512": "b512-epoch-s",
	})
}

func BenchmarkFig16OptimalCache(b *testing.B) {
	benchExperiment(b, "fig16", map[string]string{
		"optimal_cache_pct": "optimal-cache-%",
	})
}

func BenchmarkFig17HPIN22k(b *testing.B) {
	benchExperiment(b, "fig17", map[string]string{
		"speedup_shufflenetv2": "shufflenet-x",
	})
}

func BenchmarkFig18Scalability(b *testing.B) {
	benchExperiment(b, "fig18", map[string]string{
		"speedup_n2":   "n2-x",
		"speedup_n4":   "n4-x",
		"dali_disk_n2": "dali-n2-GiB",
	})
}

func BenchmarkFig19CPUUtil(b *testing.B) {
	benchExperiment(b, "fig19", map[string]string{
		"dali_avg_util":   "dali-cpu-%",
		"coordl_avg_util": "coordl-cpu-%",
	})
}

func BenchmarkFig20MemOverhead(b *testing.B) {
	benchExperiment(b, "fig20", map[string]string{
		"staging_peak_gib": "staging-GiB",
	})
}

func BenchmarkFig21PyCoorDL(b *testing.B) {
	benchExperiment(b, "fig21", map[string]string{
		"speedup_hdd_35": "hdd-x",
		"speedup_ssd_35": "ssd-x",
	})
}

func BenchmarkFig22CoordPrepMicro(b *testing.B) {
	benchExperiment(b, "fig22", map[string]string{
		"speedup_8jobs": "8jobs-x",
	})
}

func BenchmarkFig23EndToEnd(b *testing.B) {
	benchExperiment(b, "fig23", map[string]string{
		"speedup_hdd_pycoordlcoordminio": "hdd-full-x",
		"speedup_hdd_coordinatedprep":    "hdd-coordonly-x",
	})
}

func BenchmarkAppD5HighCPUHP(b *testing.B) {
	benchExperiment(b, "appd5", map[string]string{
		"speedup": "highcpu-x",
	})
}

func BenchmarkSec3LanguageModels(b *testing.B) {
	benchExperiment(b, "sec3-lang", map[string]string{
		"stall_bert-large": "bert-stall-%",
		"stall_resnet18":   "rn18-stall-%",
	})
}

func BenchmarkAblationCachePolicy(b *testing.B) {
	benchExperiment(b, "ablation-cache", map[string]string{
		"hit_coordl":       "minio-hit-%",
		"hit_dali-shuffle": "pagecache-hit-%",
	})
}

func BenchmarkAblationRemoteFetch(b *testing.B) {
	benchExperiment(b, "ablation-remote", map[string]string{
		"remote_epoch_s": "remote-epoch-s",
		"local_epoch_s":  "local-epoch-s",
	})
}

func BenchmarkAblationStagingDepth(b *testing.B) {
	benchExperiment(b, "ablation-staging", map[string]string{
		"epoch_s_cap50": "cap5gib-epoch-s",
	})
}

func BenchmarkAblationPrefetchDepth(b *testing.B) {
	benchExperiment(b, "ablation-prefetch", map[string]string{
		"epoch_s_depth1": "depth1-epoch-s",
		"epoch_s_depth6": "depth6-epoch-s",
	})
}
