//go:build !race

package datastall_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
