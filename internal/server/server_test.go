package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/trainer"
)

// newTestServer starts a Server with the given config behind an httptest
// listener and tears both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func getJSON(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func doMethod(t *testing.T, method, url string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// submitID submits body and returns the accepted job ID.
func submitID(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, got := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, got)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(got), &v); err != nil || v.ID == "" {
		t.Fatalf("submit response %q: %v", got, err)
	}
	return v.ID
}

// waitTerminal blocks until the job leaves the queued/running states.
func waitTerminal(t *testing.T, srv *Server, id string, timeout time.Duration) Status {
	t.Helper()
	j := srv.store.get(id)
	if j == nil {
		t.Fatalf("job %s not in store", id)
	}
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s still %s after %s", id, j.StatusNow(), timeout)
	}
	return j.StatusNow()
}

// tinyJob completes in well under a second.
const tinyJob = `{"job": {"model": "resnet18", "scale": 0.005, "epochs": 2}}`

// blockingRunner returns a runJob seam that parks every job until release
// is closed (or its context dies), then reports success.
func blockingRunner(release <-chan struct{}) func(context.Context, *Job) (*experiments.Report, *trainer.Result, error) {
	return func(ctx context.Context, j *Job) (*experiments.Report, *trainer.Result, error) {
		select {
		case <-release:
			return nil, &trainer.Result{TotalTime: 1}, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

func TestSubmitRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
		code       int
		contains   string
	}{
		{"syntax", `{not json`, 400, "not a submit request"},
		{"unknown field", `{"jbo": {}}`, 400, "unknown field"},
		{"empty selector", `{}`, 400, "exactly one of"},
		{"two selectors", `{"spec_name": "fig5", "job": {"model": "resnet18", "scale": 0.01}}`, 400, "exactly one of"},
		{"unknown model", `{"job": {"model": "nope", "scale": 0.01}}`, 400, "unknown model"},
		{"missing scale", `{"job": {"model": "resnet18"}}`, 400, "no dataset scale"},
		{"typed field error", `{"job": {"model": "resnet18", "scale": 0.01, "gpus": -1}}`, 400, "GPUsPerServer"},
		{"bad spec shape", `{"spec": {"name": "x", "base": {}, "rows": {"cases": [{"set": {}}]}, "columns": []}}`, 400, "at least one column"},
		{"trailing data", `{"spec_name": "fig5"}{"spec_name": "fig18"}`, 400, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.code, body)
			}
			if !strings.Contains(body, tc.contains) {
				t.Fatalf("body %q does not mention %q", body, tc.contains)
			}
		})
	}
}

// TestSubmitTypedFieldError pins the full trainer.FieldError surface: the
// 400 body carries the field name and the sentinel's message, exactly as
// errors.Is callers see them in-process.
func TestSubmitTypedFieldError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"job": {"model": "resnet18", "scale": 0.01, "gpus": -1}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("400 body is not JSON: %q", body)
	}
	// The body must carry the same text the in-process *FieldError renders:
	// the offending field name plus its sentinel's message.
	for _, frag := range []string{"GPUsPerServer", "GPU count outside the server's range"} {
		if !strings.Contains(body, frag) {
			t.Fatalf("400 body %q missing FieldError fragment %q", body, frag)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-999999"},
		{"DELETE", "/v1/jobs/job-999999"},
		{"GET", "/v1/jobs/job-999999/events"},
		{"GET", "/v1/specs/not-a-spec"},
	} {
		resp, body := doMethod(t, probe.method, ts.URL+probe.path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404 (body %s)", probe.method, probe.path, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"spec_name": "not-a-spec"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown spec_name: status %d (body %s)", resp.StatusCode, body)
	}
}

func TestSpecsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := getJSON(t, ts.URL+"/v1/specs")
	if resp.StatusCode != 200 {
		t.Fatalf("specs: %d", resp.StatusCode)
	}
	var list struct {
		Specs []struct {
			Name string `json:"name"`
		} `json:"specs"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range list.Specs {
		names[sp.Name] = true
	}
	for _, want := range []string{"fig5", "fig9a", "fig18"} {
		if !names[want] {
			t.Fatalf("built-in spec %q missing from /v1/specs (%v)", want, names)
		}
	}
	resp, body = getJSON(t, ts.URL+"/v1/specs/fig5")
	if resp.StatusCode != 200 || !strings.Contains(body, `"fig5"`) {
		t.Fatalf("spec detail: %d %s", resp.StatusCode, body)
	}
	// The detail document must round-trip through LoadSpec: what the API
	// serves is directly re-submittable.
	if _, err := experiments.LoadSpec([]byte(body)); err != nil {
		t.Fatalf("served spec does not reload: %v", err)
	}
}

func TestQueueFullRejects503(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, runJob: blockingRunner(release),
	})
	id1 := submitID(t, ts, tinyJob) // occupies the worker
	waitStatus(t, srv, id1, StatusRunning, 5*time.Second)
	submitID(t, ts, tinyJob) // fills the 1-slot queue
	resp, body := postJSON(t, ts.URL+"/v1/jobs", tinyJob)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "queue full") {
		t.Fatalf("503 body %q does not say queue full", body)
	}
	// The rejected job must not linger in the store.
	if n := len(srv.store.list()); n != 2 {
		t.Fatalf("store holds %d jobs after rejection, want 2", n)
	}
}

// waitStatus polls until the job reaches the wanted (non-terminal) status.
func waitStatus(t *testing.T, srv *Server, id string, want Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if srv.store.get(id).StatusNow() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", id, want, srv.store.get(id).StatusNow())
}

// TestCancelRaces drives the DELETE state machine through every arm:
// cancel-while-running wins over late completion, cancel-while-queued
// finalizes immediately, and cancel-after-terminal is a 409.
func TestCancelRaces(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, runJob: blockingRunner(release),
	})

	running := submitID(t, ts, tinyJob)
	waitStatus(t, srv, running, StatusRunning, 5*time.Second)
	queued := submitID(t, ts, tinyJob)

	// Cancel the queued job: terminal immediately, no worker involved.
	resp, body := doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+queued)
	if resp.StatusCode != 200 || !strings.Contains(body, string(StatusCancelled)) {
		t.Fatalf("cancel queued: %d %s", resp.StatusCode, body)
	}
	if st := waitTerminal(t, srv, queued, time.Second); st != StatusCancelled {
		t.Fatalf("queued job ended %s, want cancelled", st)
	}

	// Cancel the running job, then let the (blocked) run return a
	// success: the DELETE verdict must win the race.
	resp, body = doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+running)
	if resp.StatusCode != 200 || !strings.Contains(body, string(StatusCancelled)) {
		t.Fatalf("cancel running: %d %s", resp.StatusCode, body)
	}
	close(release)
	if st := waitTerminal(t, srv, running, 5*time.Second); st != StatusCancelled {
		t.Fatalf("running job ended %s, want cancelled", st)
	}
	_, got := getJSON(t, ts.URL+"/v1/jobs/"+running)
	var v jobJSON
	if err := json.Unmarshal([]byte(got), &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCancelled || v.Result != nil {
		t.Fatalf("cancelled job record: status %s result %v; the run's late success must be discarded", v.Status, v.Result)
	}

	// A completed job cannot be cancelled.
	done := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, done, 5*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s, want completed", st)
	}
	resp, body = doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+done)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(body, "already completed") {
		t.Fatalf("cancel completed: %d %s, want 409 already completed", resp.StatusCode, body)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	id := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	_, before := getJSON(t, ts.URL+"/v1/jobs/"+id)

	// A fresh server over the same directory serves the same record.
	srv2, ts2 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	_, after := getJSON(t, ts2.URL+"/v1/jobs/"+id)
	var b, a jobJSON
	if err := json.Unmarshal([]byte(before), &b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(after), &a); err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusCompleted || a.Result == nil {
		t.Fatalf("reloaded job: %+v", a)
	}
	if fmt.Sprint(a.Result.EpochTime) != fmt.Sprint(b.Result.EpochTime) {
		t.Fatalf("reloaded EpochTime %v != original %v", a.Result.EpochTime, b.Result.EpochTime)
	}
	// New submissions on the reloaded server must not collide with the
	// persisted ID space.
	id2 := submitID(t, ts2, tinyJob)
	if id2 == id {
		t.Fatalf("reloaded server reissued id %s", id)
	}
	if st := waitTerminal(t, srv2, id2, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job on reloaded server ended %s", st)
	}
}

// TestStoreEvictsTerminalRecords: the in-memory store is bounded — oldest
// finished records are evicted past MaxRecords, counters keep counting.
func TestStoreEvictsTerminalRecords(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxRecords: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id := submitID(t, ts, tinyJob)
		if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
			t.Fatalf("job %s ended %s", id, st)
		}
		ids = append(ids, id)
	}
	if n := srv.store.count(); n != 2 {
		t.Fatalf("store holds %d records, want 2", n)
	}
	for _, gone := range ids[:2] {
		if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+gone); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted job %s still served (%d)", gone, resp.StatusCode)
		}
	}
	for _, kept := range ids[2:] {
		if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+kept); resp.StatusCode != 200 {
			t.Fatalf("recent job %s not served (%d)", kept, resp.StatusCode)
		}
	}
	_, text := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(text, "stallserved_jobs_submitted_total 4") ||
		!strings.Contains(text, "stallserved_jobs_completed_total 4") {
		t.Fatalf("counters must survive eviction:\n%s", text)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if !srv.Drain(ctx) {
		t.Fatal("idle drain reported forced cancellation")
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", tinyJob)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("submit while draining: %d %s", resp.StatusCode, body)
	}
}
