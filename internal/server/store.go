// Job records and the in-memory job store. A Job moves through a strict
// state machine — queued -> running -> {completed, failed, cancelled}, with
// the queued -> cancelled shortcut for jobs killed before a worker picks
// them up — and every transition happens under the job's own mutex, so the
// cancel-vs-completion race resolves to exactly one terminal state.
// Completed records optionally snapshot to JSON files (Config.PersistDir)
// and are reloaded on startup.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/obs"
	"datastall/internal/stats"
	"datastall/internal/trainer"
	"datastall/internal/wal"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	// StatusQueued: accepted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is executing the simulation.
	StatusRunning Status = "running"
	// StatusCompleted: finished with a result.
	StatusCompleted Status = "completed"
	// StatusFailed: the run returned an error or panicked.
	StatusFailed Status = "failed"
	// StatusCancelled: killed by DELETE (or server drain) before finishing.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusCancelled
}

// Job kinds.
const (
	// KindSpec: a declarative sweep (experiments.Spec) producing a Report.
	KindSpec = "spec"
	// KindJob: a single training job (experiments.JobSpec) producing a
	// trainer.Result.
	KindJob = "job"
)

// Job is one submitted workload and its live state.
type Job struct {
	// ID, Kind and Name are immutable after submission.
	ID   string
	Kind string
	// Name is the spec name (KindSpec) or the model name (KindJob).
	Name string

	// Workload, resolved at submission time (immutable). jobSpec is the
	// original KindJob submission, retained so coordinator mode can
	// forward it to a worker verbatim; tenant is the submitting X-Tenant
	// (empty: anonymous), counted against Config.TenantQuota.
	spec    *experiments.Spec
	cfg     trainer.Config
	opts    experiments.Options
	jobSpec *experiments.JobSpec
	tenant  string

	// bc fans the run's Observer events out to /events subscribers; nil
	// only for terminal jobs reloaded from a persist snapshot.
	bc *Broadcaster

	// cases is the rehydrated case capture of a job reloaded from a
	// persist snapshot (live jobs serve cases straight from their
	// report/result); nil for snapshots that predate case persistence.
	cases []*experiments.CaseResult

	mu        sync.Mutex
	status    Status
	submitted time.Time
	started   time.Time
	finished  time.Time
	wall      float64
	errMsg    string
	report    *experiments.Report
	result    *trainer.Result
	cancel    func()

	// resume holds per-cell results recovered from the WAL: the executor
	// serves these cells from the log instead of re-simulating them.
	// walCases mirrors every cell result logged (or recovered) so far —
	// it is the source a compaction gather snapshots, and it is always
	// updated before the corresponding record is appended. cancelRequested
	// marks that a DELETE verdict was returned to a client (and logged);
	// quotaHeld marks that submit counted this job against its tenant's
	// quota (recovered jobs never re-acquire it).
	resume          map[int]*trainer.Result
	walCases        map[int]*trainer.Result
	cancelRequested bool
	quotaHeld       bool
	// walFinal is set (under mu, before the terminal record is appended —
	// the mutate-before-append rule) once the job's history is fully
	// captured by a terminal record; compaction gathers it as terminal from
	// that point even though done has not closed yet.
	walFinal bool

	// done closes exactly once, when the job reaches a terminal state and
	// its event stream has been closed.
	done chan struct{}

	// tracer records the job's span tree (nil for jobs rehydrated from
	// persistence — their execution predates this process). span is the
	// root "job" span; queueSpan covers submission to worker pickup. log
	// carries the job-scoped structured fields (job_id, trace_id, tenant).
	// All are set before the job is enqueued and immutable after.
	tracer    *obs.Tracer
	span      obs.Span
	queueSpan obs.Span
	log       *slog.Logger
}

// discardLog backs logger() for jobs that never got a scoped logger
// (rehydrated terminal records).
var discardLog = slog.New(slog.DiscardHandler)

// logger returns the job-scoped logger, never nil.
func (j *Job) logger() *slog.Logger {
	if j.log != nil {
		return j.log
	}
	return discardLog
}

// Broadcaster is the trainer's fan-out observer; aliased so the API
// surface of this package reads without the trainer import.
type Broadcaster = trainer.Broadcaster

// StatusNow returns the job's current state.
func (j *Job) StatusNow() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// markRunning transitions queued -> running, recording the start time and
// the run's cancel hook; it fails (false) when a DELETE already cancelled
// the job out of the queue.
func (j *Job) markRunning(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// jobJSON is the wire form of a Job.
type jobJSON struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	Name        string     `json:"name,omitempty"`
	Tenant      string     `json:"tenant,omitempty"`
	Status      Status     `json:"status"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	Error       string     `json:"error,omitempty"`
	// Report is the KindSpec result; Result the KindJob one.
	Report *reportJSON     `json:"report,omitempty"`
	Result *trainer.Result `json:"result,omitempty"`
}

// persistJSON is the snapshot form: the wire form plus the per-case
// capture, so a restart keeps the job queryable through /v1/query. A
// strict superset of jobJSON — HTTP responses are unchanged, and
// pre-existing snapshots (no "cases") still load.
type persistJSON struct {
	jobJSON
	Cases []*experiments.CaseResult `json:"cases,omitempty"`
}

// reportJSON is the wire form of an experiments.Report (the Table rendered
// through its pre-formatted string cells, so values match the CLI tables
// digit-for-digit).
type reportJSON struct {
	ID     string             `json:"id,omitempty"`
	Title  string             `json:"title,omitempty"`
	Paper  string             `json:"paper,omitempty"`
	Notes  string             `json:"notes,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
	Table  *stats.TableJSON   `json:"table,omitempty"`
}

func toReportJSON(r *experiments.Report) *reportJSON {
	if r == nil {
		return nil
	}
	out := &reportJSON{ID: r.ID, Title: r.Title, Paper: r.Paper, Notes: r.Notes, Values: r.Values}
	if r.Table != nil {
		out.Table = r.Table.JSON()
	}
	return out
}

// view renders the job's wire form; withOutput false omits the (possibly
// large) report/result payloads for listings.
func (j *Job) view(withOutput bool) *jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := &jobJSON{
		ID: j.ID, Kind: j.Kind, Name: j.Name, Tenant: j.tenant,
		Status: j.status, SubmittedAt: j.submitted,
		WallSeconds: j.wall, Error: j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if withOutput {
		v.Report = toReportJSON(j.report)
		v.Result = j.result
	}
	return v
}

// store is the in-memory job index, insertion-ordered.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int
}

func newStore() *store { return &store{jobs: map[string]*Job{}} }

// nextID allocates the next job ID.
func (st *store) nextID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return fmt.Sprintf("job-%06d", st.seq)
}

// insert registers a successfully enqueued job.
func (st *store) insert(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
}

// count returns the number of registered jobs.
func (st *store) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// evictable reports whether the job is safe to drop from the store: fully
// finished (Done closed), not merely marked terminal — a DELETE-cancelled
// job whose worker is still unwinding stays visible until finalize.
func (j *Job) evictable() bool {
	if !j.StatusNow().Terminal() {
		return false
	}
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// evictTerminal drops the oldest finished records beyond max, bounding a
// long-running service's memory: counters on /metrics are totals and keep
// counting, but the store retains at most max finished jobs (queued,
// running, and still-unwinding cancelled jobs are never evicted; persisted
// snapshots on disk are not touched).
func (st *store) evictTerminal(max int) {
	if max <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	finished := 0
	for _, id := range st.order {
		if st.jobs[id].evictable() {
			finished++
		}
	}
	if finished <= max {
		return
	}
	kept := st.order[:0]
	for _, id := range st.order {
		if finished > max && st.jobs[id].evictable() {
			delete(st.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
}

// get looks a job up by ID.
func (st *store) get(id string) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

// list returns every job in submission order.
func (st *store) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	return out
}

// insertLoaded re-registers a persisted terminal job under its original ID,
// bumping the sequence counter past it so new IDs never collide.
func (st *store) insertLoaded(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.jobs[j.ID]; dup {
		return
	}
	var n int
	if _, err := fmt.Sscanf(j.ID, "job-%06d", &n); err == nil && n > st.seq {
		st.seq = n
	}
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	sort.Strings(st.order)
}

// persistJob snapshots a terminal job's wire form — plus its case capture,
// so restarts don't erase query history — to dir/<id>.json. The write is
// crash-atomic (temp file, fsync, rename, fsync the directory): a kill -9
// at any point leaves the previous snapshot or the new one, never a torn
// mix.
func persistJob(dir string, j *Job) error {
	b, err := json.MarshalIndent(persistJSON{jobJSON: *j.view(true), Cases: j.caseResults()}, "", "  ")
	if err != nil {
		return err
	}
	return wal.AtomicWriteFile(filepath.Join(dir, j.ID+".json"), append(b, '\n'), 0o644)
}

// jobFromPersist rehydrates a terminal job record from its snapshot form —
// the shape both legacy snapshot files and WAL terminal records carry. The
// returned job is fully finished: done is closed and bc is nil.
func jobFromPersist(v persistJSON) *Job {
	j := &Job{
		ID: v.ID, Kind: v.Kind, Name: v.Name, tenant: v.Tenant,
		status: v.Status, submitted: v.SubmittedAt,
		wall: v.WallSeconds, errMsg: v.Error,
		result: v.Result,
		cases:  v.Cases,
		done:   make(chan struct{}),
	}
	if v.StartedAt != nil {
		j.started = *v.StartedAt
	}
	if v.FinishedAt != nil {
		j.finished = *v.FinishedAt
	}
	if v.Report != nil {
		// Rehydrate the report far enough for view() to re-render it:
		// the table keeps its pre-formatted cells.
		rep := &experiments.Report{
			ID: v.Report.ID, Title: v.Report.Title, Paper: v.Report.Paper,
			Notes: v.Report.Notes, Values: v.Report.Values,
		}
		if v.Report.Table != nil {
			rep.Table = &stats.Table{
				Title:   v.Report.Table.Title,
				Columns: v.Report.Table.Columns,
				Rows:    v.Report.Table.Rows,
			}
		}
		j.report = rep
	}
	close(j.done)
	return j
}

// loadPersisted reads every snapshot in dir into the store as terminal
// jobs. Snapshots that fail to parse (or are non-terminal) are skipped —
// a corrupt file must not keep the service from starting — and counted in
// the returned load-error total (surfaced on /metrics and /healthz).
func loadPersisted(dir string, st *store, log *slog.Logger) (loadErrs int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Warn("persist: snapshot dir unreadable", "dir", dir, "error", err)
		return 1
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			loadErrs++
			log.Warn("persist: snapshot unreadable", "path", path, "error", err)
			continue
		}
		var v persistJSON
		if err := json.Unmarshal(b, &v); err != nil {
			loadErrs++
			log.Warn("persist: snapshot unparseable", "path", path, "error", err)
			continue
		}
		if v.ID == "" || !v.Status.Terminal() {
			loadErrs++
			log.Warn("persist: not a terminal job snapshot, skipping", "path", path)
			continue
		}
		st.insertLoaded(jobFromPersist(v))
	}
	return loadErrs
}
