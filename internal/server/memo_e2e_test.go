package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"
)

// memoQuery orders every captured case deterministically, so two servers
// that ran the same single spec job must render identical NDJSON.
const memoQuery = `{"order_by":[{"col":"case_id"}]}`

// reportBytes fetches a completed job and returns its report re-marshalled.
func reportBytes(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
	var v jobJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Report == nil {
		t.Fatalf("job %s has no report", id)
	}
	b, err := json.Marshal(v.Report)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestE2EMemoWarmRunByteIdentical is the daemon-level memoization contract:
// a spec resubmitted to a -memo server simulates nothing (exact hit/miss
// accounting, surfaced in /metrics), a fresh server on the same directory
// serves entirely from disk, and every observable — report JSON and
// /v1/query NDJSON — is byte-identical to the cold run.
func TestE2EMemoWarmRunByteIdentical(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	body := `{"spec": ` + string(raw) + `}`
	dir := t.TempDir()

	srvA, tsA := newTestServer(t, Config{Workers: 2, MemoDir: dir})
	cold := submitID(t, tsA, body)
	if st := waitTerminal(t, srvA, cold, 120*time.Second); st != StatusCompleted {
		t.Fatalf("cold job ended %s (%s)", st, srvA.store.get(cold).view(true).Error)
	}
	goldenReport := reportBytes(t, tsA, cold)
	_, goldenQuery := getJSON(t, tsA.URL+"/v1/query?q="+url.QueryEscape(memoQuery))
	if !strings.Contains(goldenQuery, `"case_id":0`) {
		t.Fatalf("cold query output has no cases: %s", goldenQuery)
	}
	cs := srvA.memo.Stats()
	if cs.Hits != 0 || cs.Misses == 0 {
		t.Fatalf("cold run hits=%d misses=%d, want 0 hits and >0 misses", cs.Hits, cs.Misses)
	}
	unique := cs.Misses

	warm := submitID(t, tsA, body)
	if st := waitTerminal(t, srvA, warm, 120*time.Second); st != StatusCompleted {
		t.Fatalf("warm job ended %s", st)
	}
	ws := srvA.memo.Stats()
	if ws.Misses != unique {
		t.Fatalf("warm resubmit simulated %d new case(s)", ws.Misses-unique)
	}
	if ws.Hits != unique {
		t.Fatalf("warm hits = %d, want %d (every unique case served from cache)", ws.Hits, unique)
	}
	if got := reportBytes(t, tsA, warm); got != goldenReport {
		t.Fatalf("warm report differs from cold:\ncold: %s\nwarm: %s", goldenReport, got)
	}
	_, metrics := getJSON(t, tsA.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("stallserved_memo_hits_total %d", unique),
		fmt.Sprintf("stallserved_memo_misses_total %d", unique),
		fmt.Sprintf("stallserved_memo_disk_entries %d", unique),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// A fresh server on the same directory is a daemon restart: the whole
	// spec must be served from disk, and the rebuilt query store must
	// render the same NDJSON as the cold server did after one job.
	srvB, tsB := newTestServer(t, Config{Workers: 2, MemoDir: dir})
	restart := submitID(t, tsB, body)
	if st := waitTerminal(t, srvB, restart, 120*time.Second); st != StatusCompleted {
		t.Fatalf("restart job ended %s", st)
	}
	bs := srvB.memo.Stats()
	if bs.Misses != 0 || bs.Hits != unique {
		t.Fatalf("restarted server hits=%d misses=%d, want %d/0", bs.Hits, bs.Misses, unique)
	}
	if got := reportBytes(t, tsB, restart); got != goldenReport {
		t.Fatal("report after restart differs from cold run")
	}
	if _, q := getJSON(t, tsB.URL+"/v1/query?q="+url.QueryEscape(memoQuery)); q != goldenQuery {
		t.Fatalf("/v1/query after restart differs from cold run:\ncold: %s\nwarm: %s", goldenQuery, q)
	}
}
