// Trace plumbing: the per-job span tree recorded by internal/obs, served
// over HTTP and merged across the coordinator→worker hop.
//
// Every submitted job gets a Tracer; its spans cover queue wait, the run,
// each grid case (with memo-lookup events and per-epoch stall-attribution
// sub-spans on the simulation clock), WAL appends, and — in coordinator
// mode — one attempt span per dispatch with the worker's own trace
// grafted under the successful attempt, so one distributed sweep yields
// one merged trace. GET /v1/jobs/{id}/trace serves the Chrome trace-event
// form (Perfetto / chrome://tracing viewable) by default and the flat
// span-record form with ?format=spans (what the graft fetches).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"datastall/internal/obs"
	"datastall/internal/wal"
)

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.tracer == nil {
		writeErr(w, http.StatusNotFound, codeNotFound,
			"job %s has no trace (rehydrated from persistence)", j.ID)
		return
	}
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"trace_id": j.tracer.TraceID(),
			"spans":    j.tracer.Export(),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j.tracer.WriteChrome(w)
}

// endTrace closes every span the job still has open (a cancelled or
// failed run must not leave dangling spans) and, with Config.TraceDir
// set, dumps the merged trace crash-atomically. Called from finalize,
// before done closes, so waiters observe a complete trace.
func (s *Server) endTrace(j *Job) {
	if j.tracer == nil {
		return
	}
	j.tracer.Finish()
	if s.cfg.TraceDir == "" {
		return
	}
	if err := os.MkdirAll(s.cfg.TraceDir, 0o755); err != nil {
		j.logger().Warn("trace: dir", "error", err)
		return
	}
	var buf bytes.Buffer
	if err := j.tracer.WriteChrome(&buf); err != nil {
		j.logger().Warn("trace: encode", "error", err)
		return
	}
	path := filepath.Join(s.cfg.TraceDir, j.ID+".trace.json")
	if err := wal.AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		j.logger().Warn("trace: write", "path", path, "error", err)
	}
}

// graftRemoteTrace fetches a completed remote job's span records and
// grafts them under the attempt span that dispatched it, merging the
// worker's subtree into the coordinator's trace. Best-effort: a worker
// that died after completing the case costs the trace its remote detail,
// never the job its result.
func (s *Server) graftRemoteTrace(ctx context.Context, w *coordWorker, id string, att obs.Span) {
	if !att.Enabled() {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.url+"/v1/jobs/"+id+"/trace?format=spans", nil)
	if err != nil {
		return
	}
	resp, err := s.coord.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var v struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&v); err != nil {
		return
	}
	att.Graft(v.Spans)
}
