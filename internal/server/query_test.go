package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"
)

// envelope mirrors the typed error body every handler must emit.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Field   string `json:"field"`
	} `json:"error"`
}

func decodeEnvelope(t *testing.T, body string) envelope {
	t.Helper()
	var e envelope
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body %q is not an envelope: %v", body, err)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("envelope %q missing code or message", body)
	}
	return e
}

// tinySpec sweeps one row across two loaders: the cheapest spec submission
// that captures more than one queryable case.
const tinySpec = `{"spec": {
	"name": "qspec",
	"row_header": ["cache"],
	"base": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.005, "epochs": 2, "seed": 1},
	"rows": {"param": "cache_fraction", "values": [0.5]},
	"sweep": {"param": "loader", "values": ["dali-shuffle", "coordl"]},
	"columns": [{"label": "dali s", "metric": "epoch_s", "of": "dali-shuffle"}]
}}`

// TestQueryEndpoint drives GET/POST /v1/query over real finished jobs: a
// single-job submission and a spec sweep, so the store holds both kinds.
func TestQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	jobID := submitID(t, ts, tinyJob)
	specID := submitID(t, ts, tinySpec)
	for _, id := range []string{jobID, specID} {
		if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
			t.Fatalf("job %s ended %s", id, st)
		}
	}

	// GET with ?q=: one row per (spec, loader) group, keys sorted.
	q := `{"group_by":["spec"],"aggs":[{"op":"count"}],"order_by":[{"col":"spec"}]}`
	resp, body := getJSON(t, ts.URL+"/v1/query?q="+url.QueryEscape(q))
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	want := `{"spec":"` + jobID + `","count":1}` + "\n" + `{"spec":"qspec","count":2}` + "\n"
	if body != want {
		t.Fatalf("query result:\n got %q\nwant %q", body, want)
	}

	// POST form, projecting identity columns: the single job carries its
	// resolved defaults, the spec cases their sweep values.
	resp, body = postJSON(t, ts.URL+"/v1/query",
		`{"select":["case_id","spec","row","loader"],"order_by":[{"col":"case_id"}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 case rows, got %d: %s", len(lines), body)
	}
	if !strings.Contains(lines[0], `"spec":"`+jobID+`"`) {
		t.Fatalf("row 0 should be the standalone job: %s", lines[0])
	}
	for i, frag := range []string{"", `"loader":"dali-shuffle"`, `"loader":"coordl"`} {
		if frag != "" && !strings.Contains(lines[i], frag) {
			t.Fatalf("row %d missing %s: %s", i, frag, lines[i])
		}
	}

	// The default GET (no q) scans every case.
	resp, body = getJSON(t, ts.URL+"/v1/query")
	if resp.StatusCode != 200 || len(strings.Split(strings.TrimRight(body, "\n"), "\n")) != 3 {
		t.Fatalf("default scan: %d %s", resp.StatusCode, body)
	}

	// Metrics counted the queries and their rows.
	_, text := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(text, "stallserved_queries_total 3") {
		t.Fatalf("queries_total missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "stallserved_query_rows_total 8") {
		t.Fatalf("query_rows_total should be 2+3+3=8:\n%s", text)
	}
}

// TestQueryEmptyStore: a scalar aggregate over no finished jobs still emits
// its one SQL-shaped row; a plain scan emits nothing.
func TestQueryEmptyStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/query", `{"aggs":[{"op":"count"}]}`)
	if resp.StatusCode != 200 || body != `{"count":0}`+"\n" {
		t.Fatalf("scalar agg over empty store: %d %q", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/query", `{}`)
	if resp.StatusCode != 200 || body != "" {
		t.Fatalf("scan over empty store: %d %q", resp.StatusCode, body)
	}
}

// TestErrorEnvelope is the cross-handler table test: every failure path
// emits the typed {"error": {code, message, field}} envelope with the
// right code, and typed validation failures carry the offending field.
func TestErrorEnvelope(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, runJob: blockingRunner(release)})

	// A completed job for the conflict case.
	done := submitID(t, ts, tinyJob)
	close(release)
	if st := waitTerminal(t, srv, done, 10*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}

	cases := []struct {
		name, method, path, body string
		status                   int
		code, field              string
	}{
		{"submit bad json", "POST", "/v1/jobs", `{not json`, 400, "bad_request", ""},
		{"submit typed field error", "POST", "/v1/jobs",
			`{"job": {"model": "resnet18", "scale": 0.01, "gpus": -1}}`, 400, "bad_request", "GPUsPerServer"},
		{"submit oversized body", "POST", "/v1/jobs",
			`{"spec_name": "` + strings.Repeat("x", 1<<20) + `"}`, 413, "too_large", ""},
		{"submit unknown spec", "POST", "/v1/jobs", `{"spec_name": "nope"}`, 404, "not_found", ""},
		{"job not found", "GET", "/v1/jobs/job-999999", "", 404, "not_found", ""},
		{"cancel not found", "DELETE", "/v1/jobs/job-999999", "", 404, "not_found", ""},
		{"events not found", "GET", "/v1/jobs/job-999999/events", "", 404, "not_found", ""},
		{"spec not found", "GET", "/v1/specs/nope", "", 404, "not_found", ""},
		{"cancel terminal", "DELETE", "/v1/jobs/" + done, "", 409, "conflict", ""},
		{"query bad table", "POST", "/v1/query", `{"from": "bogus"}`, 400, "bad_request", "from"},
		{"query bad clause", "POST", "/v1/query",
			`{"where": [{"col": "nope", "op": "eq", "value": 1}]}`, 400, "bad_request", "where[0].col"},
		{"query bad json", "POST", "/v1/query", `{"from": `, 400, "bad_request", ""},
		{"query via GET", "GET", "/v1/query?q=" + url.QueryEscape(`{"limit": -1}`), "", 400, "bad_request", "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body string
			if tc.method == "POST" {
				resp, body = postJSON(t, ts.URL+tc.path, tc.body)
			} else {
				resp, body = doMethod(t, tc.method, ts.URL+tc.path)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			e := decodeEnvelope(t, body)
			if e.Error.Code != tc.code {
				t.Fatalf("code %q, want %q (body %s)", e.Error.Code, tc.code, body)
			}
			if e.Error.Field != tc.field {
				t.Fatalf("field %q, want %q (body %s)", e.Error.Field, tc.field, body)
			}
		})
	}

	// The scheduler rejections carry their own codes. Draining first (it
	// needs no queue gymnastics): after Drain every submit is "draining".
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Drain(ctx)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", tinyJob)
	if resp.StatusCode != 503 {
		t.Fatalf("draining submit: %d %s", resp.StatusCode, body)
	}
	if e := decodeEnvelope(t, body); e.Error.Code != "draining" {
		t.Fatalf("draining code %q (body %s)", e.Error.Code, body)
	}
}

// TestQueueFullEnvelope pins the queue_full code (TestQueueFullRejects503
// checks the behaviour; this checks the envelope).
func TestQueueFullEnvelope(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, runJob: blockingRunner(release)})
	id1 := submitID(t, ts, tinyJob)
	waitStatus(t, srv, id1, StatusRunning, 5*time.Second)
	submitID(t, ts, tinyJob)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", tinyJob)
	if resp.StatusCode != 503 {
		t.Fatalf("status %d (body %s)", resp.StatusCode, body)
	}
	if e := decodeEnvelope(t, body); e.Error.Code != "queue_full" {
		t.Fatalf("code %q (body %s)", e.Error.Code, body)
	}
}
