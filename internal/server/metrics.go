// Service counters, exposed in Prometheus text exposition format on
// /metrics. Everything is a plain atomic — no dependency on a metrics
// library — and every counter is bumped at exactly one transition point, so
// at any quiescent moment
//
//	submitted_total = queued + running + completed_total + failed_total + cancelled_total
//
// and the by-status totals match the jobs that reached each state (the
// store itself retains at most Config.MaxRecords finished records;
// counters keep counting past eviction).
package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"datastall/internal/memo"
	"datastall/internal/obs"
)

type metrics struct {
	// Counters.
	submitted     atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	cancelled     atomic.Int64
	events        atomic.Int64 // observer events published to job streams
	eventsDropped atomic.Int64 // events lost to slow-subscriber overflow
	queries       atomic.Int64 // queries served by /v1/query
	queryRows     atomic.Int64 // rows streamed by /v1/query

	// Coordinator-mode counters (zero on a plain worker).
	casesDispatched atomic.Int64 // case attempts shipped to fleet workers
	caseRetries     atomic.Int64 // case attempts beyond each case's first
	quotaRejected   atomic.Int64 // submissions refused by the tenant quota

	// Durability counters (zero without -wal/-persist).
	persistLoadErrors atomic.Int64 // corrupt snapshots/WAL records skipped at load
	walAppends        atomic.Int64 // records appended to the WAL
	walCompactions    atomic.Int64 // checkpoint compactions completed
	walResumed        atomic.Int64 // interrupted jobs re-enqueued at startup
	walResumedCases   atomic.Int64 // grid cells served from recovered results

	// Gauges.
	queued      atomic.Int64
	running     atomic.Int64
	subscribers atomic.Int64 // live /events streams

	// Latency histograms (fixed-bucket, dependency-free — internal/obs).
	queueWait  *obs.Histogram // submission -> worker pickup
	caseSecs   *obs.Histogram // one grid case, local simulate or remote round trip
	memoLookup *obs.Histogram // one memo cache lookup (memory or disk)
	walFsync   *obs.Histogram // one WAL data fsync
}

// newMetrics builds the metrics set with its histogram buckets. Bucket
// bounds are seconds; they are part of the README's documented contract
// (the observability drift test reads them off /metrics).
func newMetrics() *metrics {
	return &metrics{
		queueWait: obs.NewHistogram("stallserved_queue_wait_seconds",
			"Time jobs waited in the scheduler queue before a worker picked them up.",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}),
		caseSecs: obs.NewHistogram("stallserved_case_seconds",
			"Wall time per grid case: local simulate, memo hit, or remote round trip.",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}),
		memoLookup: obs.NewHistogram("stallserved_memo_lookup_seconds",
			"Latency of result memo cache lookups (memory or disk).",
			[]float64{0.00001, 0.0001, 0.001, 0.01, 0.1}),
		walFsync: obs.NewHistogram("stallserved_wal_fsync_seconds",
			"Latency of write-ahead-log data fsyncs.",
			[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1}),
	}
}

// writeProm renders the metrics in Prometheus text format. queueDepth is
// sampled from the scheduler's channel at render time; workersHealthy and
// workersTotal from the coordinator's fleet (total 0: not a coordinator,
// fleet gauges omitted); ms from the result memo cache (nil: -memo unset,
// memo series omitted — the memo counters live in the Cache itself, the
// single source shared with runsuite, not in this struct).
func (m *metrics) writeProm(w io.Writer, queueDepth, workersHealthy, workersTotal int, ms *memo.Stats) {
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("stallserved_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.submitted.Load())
	c("stallserved_jobs_completed_total", "Jobs that finished with a result.", m.completed.Load())
	c("stallserved_jobs_failed_total", "Jobs that returned an error or panicked.", m.failed.Load())
	c("stallserved_jobs_cancelled_total", "Jobs cancelled by DELETE or server drain.", m.cancelled.Load())
	c("stallserved_events_published_total", "Observer events published to job event streams.", m.events.Load())
	c("stallserved_events_dropped_total", "Events dropped on slow /events subscribers.", m.eventsDropped.Load())
	c("stallserved_queries_total", "Queries executed by /v1/query.", m.queries.Load())
	c("stallserved_query_rows_total", "Result rows streamed by /v1/query.", m.queryRows.Load())
	c("stallserved_cases_dispatched_total", "Case attempts dispatched to fleet workers (coordinator mode).", m.casesDispatched.Load())
	c("stallserved_case_retries_total", "Case attempts beyond each case's first (coordinator mode).", m.caseRetries.Load())
	c("stallserved_jobs_quota_rejected_total", "Submissions refused by the per-tenant quota.", m.quotaRejected.Load())
	c("stallserved_persist_load_errors_total", "Corrupt or unusable snapshots/WAL records skipped at load.", m.persistLoadErrors.Load())
	c("stallserved_wal_appends_total", "Records appended to the write-ahead log.", m.walAppends.Load())
	c("stallserved_wal_compactions_total", "WAL compactions folded into a checkpoint.", m.walCompactions.Load())
	c("stallserved_wal_resumed_jobs_total", "Interrupted jobs re-enqueued from the WAL at startup.", m.walResumed.Load())
	c("stallserved_wal_resumed_cases_total", "Grid cells served from WAL-recovered results instead of re-running.", m.walResumedCases.Load())
	g("stallserved_jobs_queued", "Jobs waiting for a worker.", m.queued.Load())
	g("stallserved_jobs_running", "Jobs currently executing.", m.running.Load())
	g("stallserved_queue_depth", "Jobs buffered in the scheduler queue.", int64(queueDepth))
	g("stallserved_event_subscribers", "Live /events streams.", m.subscribers.Load())
	if workersTotal > 0 {
		g("stallserved_fleet_workers", "Configured fleet workers (coordinator mode).", int64(workersTotal))
		g("stallserved_fleet_workers_healthy", "Fleet workers currently healthy (coordinator mode).", int64(workersHealthy))
	}
	if ms != nil {
		c("stallserved_memo_hits_total", "Cases served from the result memo cache instead of simulating.", ms.Hits)
		c("stallserved_memo_misses_total", "Cases simulated because the memo cache had no entry.", ms.Misses)
		c("stallserved_memo_bytes_total", "Bytes of memo entries written to disk.", ms.BytesWritten)
		c("stallserved_memo_evictions_total", "Memo entries evicted to stay within -memo-max-bytes.", ms.Evictions)
		c("stallserved_memo_load_errors_total", "Corrupt or mismatched memo entries skipped and treated as misses.", ms.LoadErrors)
		g("stallserved_memo_entries", "Memo entries resident in memory.", int64(ms.Entries))
		g("stallserved_memo_disk_entries", "Memo entries persisted on disk.", int64(ms.DiskEntries))
		g("stallserved_memo_disk_bytes", "Bytes of memo entries persisted on disk.", ms.DiskBytes)
	}
	m.queueWait.WriteProm(w)
	m.caseSecs.WriteProm(w)
	m.memoLookup.WriteProm(w)
	m.walFsync.WriteProm(w)
}
