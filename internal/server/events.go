// Event streaming: GET /v1/jobs/{id}/events serves a job's Observer events
// live, as NDJSON (default) or Server-Sent Events (Accept:
// text/event-stream or ?format=sse). Each stream is one Broadcaster
// subscription — a slow client overflows only its own ring (the drop count
// is reported in its terminal event) and can never stall the simulation.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"datastall/internal/trainer"
)

// wireEvent is the JSON form of one stream event. Type is the trainer
// event's snake_case name ("job_started", "epoch_started", "epoch_ended",
// "job_ended"), an Annotation's kind ("case_started"), or one of the
// service's own markers: "status" (the snapshot that opens every stream)
// and "job_done" (the terminal marker that closes it).
type wireEvent struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Time is the event's simulation time (host seconds under the
	// concurrent backend).
	Time float64 `json:"time,omitempty"`

	// status / job_done fields.
	Status  Status `json:"status,omitempty"`
	Error   string `json:"error,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`

	// job_started fields.
	Epochs  int    `json:"epochs,omitempty"`
	Servers int    `json:"servers,omitempty"`
	GPUs    int    `json:"gpus,omitempty"`
	Backend string `json:"backend,omitempty"`

	// epoch_started / epoch_ended fields.
	Epoch          *int                `json:"epoch,omitempty"`
	Stats          *trainer.EpochStats `json:"stats,omitempty"`
	CacheUsedBytes float64             `json:"cache_used_bytes,omitempty"`

	// Annotation fields (e.g. case_started sweep progress).
	Text  string `json:"text,omitempty"`
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`
}

// toWire converts a trainer event to its wire form.
func toWire(jobID string, ev trainer.Event) wireEvent {
	switch e := ev.(type) {
	case trainer.JobStarted:
		return wireEvent{
			Type: "job_started", Job: jobID, Time: e.Time,
			Epochs: e.Epochs, Servers: e.Servers, GPUs: e.GPUsPerServer,
			Backend: e.Backend.String(),
		}
	case trainer.EpochStarted:
		ep := e.Epoch
		return wireEvent{Type: "epoch_started", Job: jobID, Time: e.Time, Epoch: &ep}
	case trainer.EpochEnded:
		ep := e.Epoch
		st := e.Stats
		return wireEvent{
			Type: "epoch_ended", Job: jobID, Time: e.Time, Epoch: &ep,
			Stats: &st, CacheUsedBytes: e.CacheUsedBytes,
		}
	case trainer.JobEnded:
		// The full result is deliberately not inlined: clients fetch it
		// once from GET /v1/jobs/{id} instead of every subscriber
		// receiving a copy.
		return wireEvent{Type: "job_ended", Job: jobID, Time: e.Time}
	case trainer.Annotation:
		return wireEvent{
			Type: e.Kind, Job: jobID, Time: e.Time,
			Text: e.Text, Index: e.Index, Total: e.Total,
		}
	}
	return wireEvent{Type: fmt.Sprintf("%T", ev), Job: jobID}
}

// wantsSSE reports whether the client asked for Server-Sent Events.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("format") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamWriter serializes wire events as NDJSON or SSE, flushing each.
type streamWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	sse   bool
}

func (sw *streamWriter) write(ev wireEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if sw.sse {
		_, err = fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", ev.Type, b)
	} else {
		_, err = fmt.Fprintf(sw.w, "%s\n", b)
	}
	if err == nil {
		sw.flush.Flush()
	}
	return err
}

// handleJobEvents streams one job's events until the job finishes or the
// client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, codeInternal, "response writer cannot stream")
		return
	}
	sw := &streamWriter{w: w, flush: flusher, sse: wantsSSE(r)}
	if sw.sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Subscribe before reading the status snapshot: anything published
	// after the snapshot is buffered in the subscription, so the client
	// misses nothing in between.
	var sub *trainer.Subscription
	if j.bc != nil {
		sub = j.bc.Subscribe(s.cfg.SubscriberBuffer)
		defer sub.Cancel()
	}
	s.metrics.subscribers.Add(1)
	defer s.metrics.subscribers.Add(-1)

	if err := sw.write(wireEvent{Type: "status", Job: j.ID, Status: j.StatusNow()}); err != nil {
		return
	}
	var dropped uint64
	if sub != nil {
		for {
			ev, err := sub.Next(r.Context())
			if err == trainer.ErrSubscriptionClosed {
				break
			}
			if err != nil {
				return // client disconnected
			}
			if werr := sw.write(toWire(j.ID, ev)); werr != nil {
				return
			}
		}
		dropped = sub.Dropped()
	}
	v := j.view(false)
	sw.write(wireEvent{
		Type: "job_done", Job: j.ID, Status: v.Status,
		Error: v.Error, Dropped: dropped,
	})
}
