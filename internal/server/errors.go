// The service's error surface: every handler failure is one JSON envelope,
//
//	{"error": {"code": "...", "message": "...", "field": "..."}}
//
// with a stable machine-readable code, the human-readable message, and —
// when the failure is a typed field validation (trainer.FieldError,
// query.FieldError) — the offending field, so clients can map errors back
// to their request without parsing messages.
package server

import (
	"errors"
	"fmt"
	"net/http"

	"datastall/internal/query"
	"datastall/internal/trainer"
)

// Error codes carried in the envelope.
const (
	// codeBadRequest: the request body or query document is invalid.
	codeBadRequest = "bad_request"
	// codeNotFound: the named job or spec does not exist.
	codeNotFound = "not_found"
	// codeTooLarge: the request body exceeds the byte limit.
	codeTooLarge = "too_large"
	// codeQueueFull: the bounded submission queue has no room.
	codeQueueFull = "queue_full"
	// codeDraining: the server is shutting down and refuses new work.
	codeDraining = "draining"
	// codeConflict: the job's state forbids the operation (e.g. cancelling
	// a terminal job).
	codeConflict = "conflict"
	// codeQuotaExceeded: the tenant is at its active-job quota.
	codeQuotaExceeded = "quota_exceeded"
	// codeInternal: anything the server cannot attribute to the request.
	codeInternal = "internal"
)

// errorBody is the envelope payload.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// writeErr writes the error envelope with no field attribution.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeErrField(w, status, code, "", fmt.Sprintf(format, args...))
}

func writeErrField(w http.ResponseWriter, status int, code, field, msg string) {
	writeJSON(w, status, map[string]errorBody{
		"error": {Code: code, Message: msg, Field: field},
	})
}

// writeErrFrom writes err as an envelope, recovering the offending field
// from the typed validation errors the engine layers return.
func writeErrFrom(w http.ResponseWriter, status int, code string, err error) {
	field := ""
	var tfe *trainer.FieldError
	var qfe *query.FieldError
	switch {
	case errors.As(err, &tfe):
		field = tfe.Field
	case errors.As(err, &qfe):
		field = qfe.Field
	}
	writeErrField(w, status, code, field, err.Error())
}
