package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datastall/internal/obs"
)

// fetchTraceRecords GETs a job's Chrome trace and re-parses it through the
// strict schema check, so every fetch in this file doubles as a validation
// of the wire form.
func fetchTraceRecords(t *testing.T, ts *httptest.Server, id string) []obs.SpanRecord {
	t.Helper()
	resp, body := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content type %q", ct)
	}
	recs, err := obs.ParseChrome([]byte(body))
	if err != nil {
		t.Fatalf("served trace does not round-trip: %v", err)
	}
	return recs
}

// spansNamed filters records by span name.
func spansNamed(recs []obs.SpanRecord, name string) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, r := range recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestTraceLocalJobSpans: a single local job's trace covers the full
// lifecycle — job root, queue_wait, run, case, simulate, per-epoch
// stall-attribution sub-spans — and every span is closed once the job is
// terminal.
func TestTraceLocalJobSpans(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	id := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	j := srv.store.get(id)
	<-j.done
	if n := j.tracer.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after finalize", n)
	}
	recs := fetchTraceRecords(t, ts, id)
	for _, name := range []string{"job", "queue_wait", "run", "case", "simulate", "epoch", "gpu_busy", "fetch_stall", "prep_stall"} {
		if len(spansNamed(recs, name)) == 0 {
			t.Errorf("no %q span in trace", name)
		}
	}
	// tinyJob runs 2 epochs: the simulated-clock breakdown has one epoch
	// span per epoch, each carrying the fig-5 three-way attribution.
	if got := len(spansNamed(recs, "epoch")); got != 2 {
		t.Errorf("%d epoch spans, want 2", got)
	}
	for _, r := range spansNamed(recs, "epoch") {
		if !r.Sim {
			t.Errorf("epoch span not on the simulated clock: %+v", r)
		}
	}
	// An unknown job 404s; a rehydrated job (no tracer) also 404s — that
	// path is covered by the restart tests' persistence setup.
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/nope/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: %d, want 404", resp.StatusCode)
	}
}

// TestTraceparentContinuesTrace: a submission carrying a W3C traceparent
// header must continue that trace rather than opening a fresh one — the
// mechanism the coordinator uses to merge worker traces.
func TestTraceparentContinuesTrace(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	const wantTrace = "0123456789abcdef0123456789abcdef"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(tinyJob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+wantTrace+"-00000000000000aa-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil || acc.ID == "" {
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if st := waitTerminal(t, srv, acc.ID, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+acc.ID+"/trace?format=spans")
	var v struct {
		TraceID string           `json:"trace_id"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.TraceID != wantTrace {
		t.Fatalf("trace_id %q, want the propagated %q", v.TraceID, wantTrace)
	}
	if len(v.Spans) == 0 {
		t.Fatal("spans form is empty")
	}
	// A malformed header falls back to a fresh trace instead of failing
	// the submission.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(tinyJob))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("traceparent", "garbage")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with bad traceparent: %d, want 202", resp2.StatusCode)
	}
}

// distributedTopology boots a fresh 2-worker fleet plus coordinator, runs
// the cache-sweep spec, and returns the merged trace's canonical topology.
func distributedTopology(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := newWorker(t, Config{Workers: 2}, nil)
	_, w2 := newWorker(t, Config{Workers: 2}, nil)
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, nil)
	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	j := coord.store.get(id)
	<-j.done
	if n := j.tracer.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after finalize", n)
	}
	return obs.TopologyFromRecords(fetchTraceRecords(t, ts, id))
}

// TestTraceTopologyGolden is the tracecheck determinism guarantee: the
// merged trace of a distributed sweep, with timestamps and volatile
// attributes stripped, is byte-identical across reruns and matches the
// committed golden. Regenerate with STALLTRACE_UPDATE=1 after deliberate
// instrumentation changes.
func TestTraceTopologyGolden(t *testing.T) {
	first := distributedTopology(t)
	second := distributedTopology(t)
	if string(first) != string(second) {
		t.Fatalf("trace topology differs across reruns:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	const golden = "testdata/trace-topology.golden"
	if os.Getenv("STALLTRACE_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with STALLTRACE_UPDATE=1 to create the golden)", err)
	}
	if string(first) != string(want) {
		t.Fatalf("trace topology drifted from %s (STALLTRACE_UPDATE=1 regenerates after deliberate changes):\n--- got ---\n%s\n--- want ---\n%s", golden, first, want)
	}
	// The distributed hop actually merged: worker subtrees hang under the
	// coordinator's attempt spans.
	if !strings.Contains(string(first), "attempt") {
		t.Fatal("no attempt spans in the merged topology")
	}
}

// TestTraceSurvivesWorkerDeath kills one worker mid-sweep and requires the
// merged trace to stay coherent: every span closed, the re-routed case
// carrying one attempt span per dispatch under a single case span, and the
// surviving worker's subtree grafted in.
func TestTraceSurvivesWorkerDeath(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	var hits [2]atomic.Int64
	countFor := func(n *atomic.Int64) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
					n.Add(1)
				}
				next.ServeHTTP(w, r)
			})
		}
	}
	_, w1 := newWorker(t, Config{Workers: 1}, countFor(&hits[0]))
	_, w2 := newWorker(t, Config{Workers: 1}, countFor(&hits[1]))
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, nil)

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	deadline := time.After(60 * time.Second)
	for hits[0].Load() == 0 && hits[1].Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no worker ever received a case")
		case <-time.After(time.Millisecond):
		}
	}
	victim := w1
	if hits[1].Load() > 0 {
		victim = w2
	}
	victim.CloseClientConnections()
	victim.Close()

	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	j := coord.store.get(id)
	<-j.done
	if n := j.tracer.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after a worker died mid-sweep", n)
	}
	recs := fetchTraceRecords(t, ts, id)

	// Attempts per case span: the re-routed case shows one attempt per
	// dispatch, all under its single case span.
	attemptsByCase := map[int64]int{}
	for _, r := range spansNamed(recs, "attempt") {
		attemptsByCase[r.Parent]++
	}
	retried := 0
	for _, n := range attemptsByCase {
		if n >= 2 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatalf("no case span carries two attempt spans after a mid-sweep worker death (attempts per case: %v)", attemptsByCase)
	}
	// The surviving worker's trace was grafted: some attempt has a remote
	// job span (with its own queue_wait) beneath it.
	attemptIDs := map[int64]bool{}
	for _, r := range spansNamed(recs, "attempt") {
		attemptIDs[r.ID] = true
	}
	grafted := 0
	for _, r := range spansNamed(recs, "job") {
		if attemptIDs[r.Parent] {
			grafted++
		}
	}
	if grafted == 0 {
		t.Fatal("no worker job span grafted under any attempt span")
	}
}

// logCapture is a slog.Handler that records every message with its merged
// attributes, including logger-scoped With(...) attrs.
type logCapture struct {
	mu   sync.Mutex
	recs []capturedRec
}

type capturedRec struct {
	msg   string
	attrs map[string]any
}

func (c *logCapture) records() []capturedRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]capturedRec(nil), c.recs...)
}

type captureHandler struct {
	c     *logCapture
	attrs []slog.Attr
}

func (h captureHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h captureHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]any{}
	for _, a := range h.attrs {
		m[a.Key] = a.Value.Any()
	}
	r.Attrs(func(a slog.Attr) bool {
		m[a.Key] = a.Value.Any()
		return true
	})
	h.c.mu.Lock()
	h.c.recs = append(h.c.recs, capturedRec{msg: r.Message, attrs: m})
	h.c.mu.Unlock()
	return nil
}

func (h captureHandler) WithAttrs(as []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), as...)
	return captureHandler{c: h.c, attrs: merged}
}

func (h captureHandler) WithGroup(string) slog.Handler { return h }

// TestRetryLogsCarryFields: every coordinator retry and worker-unhealthy
// log line must carry worker, case_key and attempt fields, so fleet
// incidents are attributable without regex archaeology.
func TestRetryLogsCarryFields(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	var fails atomic.Int64
	fails.Store(2)
	flaky := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && fails.Add(-1) >= 0 {
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	_, w1 := newWorker(t, Config{Workers: 2}, flaky)
	_, w2 := newWorker(t, Config{Workers: 2}, flaky)
	capture := &logCapture{}
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, func(c *Config) {
		c.RetryBackoff = 150 * time.Millisecond
		c.Log = slog.New(captureHandler{c: capture})
	})

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}

	var retries, unhealthy int
	for _, rec := range capture.records() {
		switch rec.msg {
		case "case attempt failed":
			retries++
		case "coordinator: worker unhealthy":
			unhealthy++
		default:
			continue
		}
		for _, field := range []string{"worker", "case_key", "attempt"} {
			if _, ok := rec.attrs[field]; !ok {
				t.Errorf("%q log line missing %q field: %v", rec.msg, field, rec.attrs)
			}
		}
	}
	if retries == 0 {
		t.Error("no 'case attempt failed' lines captured despite injected 500s")
	}
	if unhealthy == 0 {
		t.Error("no 'coordinator: worker unhealthy' lines captured despite injected 500s")
	}
	// Job-scoped lines carry job_id and trace_id from the scoped logger.
	sawScoped := false
	for _, rec := range capture.records() {
		if rec.msg == "job finished" {
			sawScoped = true
			for _, field := range []string{"job_id", "trace_id", "status"} {
				if _, ok := rec.attrs[field]; !ok {
					t.Errorf("'job finished' missing %q field: %v", field, rec.attrs)
				}
			}
		}
	}
	if !sawScoped {
		t.Error("no 'job finished' line captured")
	}
}

// TestTraceDirDumpsOnFinalize: with Config.TraceDir set, each finished job
// leaves a parseable Chrome trace file named after it.
func TestTraceDirDumpsOnFinalize(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 1, TraceDir: dir})
	id := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	<-srv.store.get(id).done
	data, err := os.ReadFile(dir + "/" + id + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseChrome(data)
	if err != nil {
		t.Fatalf("dumped trace invalid: %v", err)
	}
	if len(spansNamed(recs, "job")) != 1 {
		t.Fatalf("dumped trace has %d job roots, want 1", len(spansNamed(recs, "job")))
	}
}
