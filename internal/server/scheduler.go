// The scheduler: a bounded submission queue feeding a fixed worker pool,
// with the same isolation semantics as the experiment-suite orchestrator —
// a panicking or failing job is captured into its own record and cannot
// take down a worker or the service. Cancellation is context plumbing end
// to end: DELETE cancels the per-job context, which the simulation engine
// polls, so mid-epoch aborts unwind promptly.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/obs"
	"datastall/internal/trainer"
)

// errQueueFull rejects submissions when the bounded queue has no room.
var errQueueFull = errors.New("job queue full")

// errDraining rejects submissions once a graceful drain has begun.
var errDraining = errors.New("server draining, not accepting jobs")

// errQuotaExceeded rejects submissions over the per-tenant active-job bound.
var errQuotaExceeded = errors.New("tenant quota exceeded")

// acquireTenant counts a new job against its tenant's quota; the count is
// released exactly once, by finalize (or rolled back on a failed enqueue).
func (s *Server) acquireTenant(tenant string) error {
	if s.cfg.TenantQuota <= 0 {
		return nil
	}
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.tenantActive[tenant] >= s.cfg.TenantQuota {
		return fmt.Errorf("%w: tenant %q has %d jobs active (quota %d); retry when one finishes",
			errQuotaExceeded, tenant, s.tenantActive[tenant], s.cfg.TenantQuota)
	}
	s.tenantActive[tenant]++
	return nil
}

func (s *Server) releaseTenant(tenant string) {
	if s.cfg.TenantQuota <= 0 {
		return
	}
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.tenantActive[tenant] <= 1 {
		delete(s.tenantActive, tenant)
		return
	}
	s.tenantActive[tenant]--
}

func (s *Server) startWorkers() {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s.workers = workers
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runOne(j)
			}
		}()
	}
}

// submit registers a new job and enqueues it; the caller has already
// resolved and validated the workload. Ordering matters three ways: the
// queued gauge moves before the enqueue (a worker decrements it only after
// receiving, so it can never go negative; a gauge may be rolled back), the
// submitted counter moves only after the enqueue succeeds (Prometheus
// counters must be monotone, and no one else touches it), and the job
// enters the store only after the enqueue succeeds (a rejected submission
// is never visible, so nothing can race a DELETE against the rollback).
func (s *Server) submit(tenant, traceID string, build func(id string) *Job) (*Job, error) {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	if err := s.acquireTenant(tenant); err != nil {
		return nil, err
	}
	j := build(s.store.nextID())
	j.tenant = tenant
	j.quotaHeld = s.cfg.TenantQuota > 0
	s.openTrace(j, traceID, false)
	s.metrics.queued.Add(1)
	select {
	case s.queue <- j:
	default:
		s.metrics.queued.Add(-1)
		s.releaseTenant(tenant)
		return nil, fmt.Errorf("%w (depth %d); retry later", errQueueFull, cap(s.queue))
	}
	s.metrics.submitted.Add(1)
	s.store.insert(j)
	// Logged after the job is visible and before the 202: under -fsync
	// always, an acknowledged submission survives any crash.
	s.walSubmitted(j)
	j.log.Info("job queued", "kind", j.Kind, "name", j.Name)
	return j, nil
}

// openTrace gives a job its tracer, root span, queue-wait span and scoped
// logger. traceID continues a caller-propagated trace (empty: fresh).
func (s *Server) openTrace(j *Job, traceID string, recovered bool) {
	j.tracer = obs.NewTracer("stallserved", traceID)
	j.span = j.tracer.Start("job")
	j.span.SetAttr("kind", j.Kind)
	j.span.SetAttr("name", j.Name)
	j.span.SetAttr("job_id", j.ID)
	if j.tenant != "" {
		j.span.SetAttr("tenant", j.tenant)
	}
	if recovered {
		j.span.SetAttr("recovered", "true")
	}
	j.queueSpan = j.span.Start("queue_wait")
	attrs := []interface{}{"job_id", j.ID, "trace_id", j.tracer.TraceID()}
	if j.tenant != "" {
		attrs = append(attrs, "tenant", j.tenant)
	}
	j.log = s.log.With(attrs...)
}

// runOne executes one job on the calling worker goroutine.
func (s *Server) runOne(j *Job) {
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	if !j.markRunning(cancel) {
		// Cancelled out of the queue; the DELETE handler already
		// finalized the record.
		return
	}
	s.metrics.queued.Add(-1)
	s.metrics.running.Add(1)
	j.queueSpan.End()
	j.mu.Lock()
	waited := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.metrics.queueWait.Observe(waited.Seconds())
	s.walStarted(j)
	j.logger().Info("job running", "queue_wait_seconds", waited.Seconds())
	runSpan := j.span.Start("run")
	rep, res, err := s.execute(ctx, j, runSpan)
	if err != nil {
		runSpan.SetAttr("error", err.Error())
	}
	runSpan.End()
	s.finishRun(j, rep, res, err)
}

// execute runs the job's workload with panic isolation, streaming events
// through the job's broadcaster.
func (s *Server) execute(ctx context.Context, j *Job, runSpan obs.Span) (rep *experiments.Report, res *trainer.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job %s: panic: %v", j.ID, p)
		}
	}()
	if s.cfg.runJob != nil {
		return s.cfg.runJob(ctx, j)
	}
	if s.coord != nil {
		// Coordinator mode: the workload runs on the fleet; this worker
		// goroutine only scatters, polls, and gathers. The panic isolation
		// above still applies. Recovered cells short-circuit inside the
		// coordinator's scatter loop exactly as they do locally.
		switch j.Kind {
		case KindSpec:
			rep, err = s.coordRunSpec(ctx, j, runSpan)
		case KindJob:
			res, err = s.coordRunJob(ctx, j, runSpan)
		default:
			err = fmt.Errorf("job %s: unknown kind %q", j.ID, j.Kind)
		}
		return rep, res, err
	}
	switch j.Kind {
	case KindSpec:
		rep, err = s.runSpecLocal(ctx, j, runSpan)
	case KindJob:
		res, err = s.runJobLocal(ctx, j, runSpan)
	default:
		err = fmt.Errorf("job %s: unknown kind %q", j.ID, j.Kind)
	}
	return rep, res, err
}

// finishRun records a finished run's terminal state. If a DELETE already
// moved the job to cancelled, that wins and the run's output is discarded —
// the client was told "cancelled" and the record stays consistent with it.
func (s *Server) finishRun(j *Job, rep *experiments.Report, res *trainer.Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.wall = time.Since(j.started).Seconds()
	deleted := j.status == StatusCancelled
	switch {
	case deleted:
		// DELETE won the race; keep its verdict (and its counter bump).
	case err == nil:
		j.status = StatusCompleted
		j.report = rep
		j.result = res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Cancelled by server drain (DELETE sets StatusCancelled itself).
		j.status = StatusCancelled
		j.errMsg = err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	st := j.status
	j.mu.Unlock()
	switch {
	case deleted:
		// Counted by cancelJob.
	case st == StatusCompleted:
		s.metrics.completed.Add(1)
	case st == StatusFailed:
		s.metrics.failed.Add(1)
	case st == StatusCancelled:
		s.metrics.cancelled.Add(1)
	}
	// Settle the gauge before finalize closes Done(): anyone who observed
	// the job terminal sees gauges that already reconcile.
	s.metrics.running.Add(-1)
	s.finalize(j)
	j.logger().Info("job finished", "status", string(st), "wall_seconds", j.wall)
}

// finalize closes the job's event stream, accounts its drops, logs and
// snapshots its terminal state, and signals Done. Exactly one caller
// reaches it per job: the worker via finishRun, or the DELETE handler for
// a job cancelled out of the queue. The terminal WAL record lands before
// done closes, so anything that waits on Done() observes a state that is
// already durable (under -fsync always).
func (s *Server) finalize(j *Job) {
	if j.bc != nil {
		j.bc.Close()
		s.metrics.eventsDropped.Add(int64(j.bc.Dropped()))
	}
	j.mu.Lock()
	j.walFinal = true
	j.mu.Unlock()
	s.walTerminal(j)
	if s.cfg.PersistDir != "" {
		if err := persistJob(s.cfg.PersistDir, j); err != nil {
			j.logger().Warn("persist failed", "error", err)
		}
	}
	s.endTrace(j)
	close(j.done)
	if j.quotaHeld {
		j.quotaHeld = false
		s.releaseTenant(j.tenant)
	}
	s.store.evictTerminal(s.cfg.MaxRecords)
}

// cancelJob implements DELETE: it resolves the race against completion
// under the job's mutex. Terminal jobs are not cancellable (the caller
// turns that into 409); queued jobs finalize immediately; running jobs are
// marked cancelled and their context cancelled — the worker observes
// ctx.Err() at the engine's next poll and unwinds, keeping the verdict.
func (s *Server) cancelJob(j *Job) (Status, bool) {
	j.mu.Lock()
	switch {
	case j.status.Terminal():
		st := j.status
		j.mu.Unlock()
		return st, false
	case j.status == StatusQueued:
		j.status = StatusCancelled
		j.finished = time.Now()
		j.errMsg = "cancelled while queued"
		j.mu.Unlock()
		s.metrics.queued.Add(-1)
		s.metrics.cancelled.Add(1)
		s.finalize(j)
		j.logger().Info("job cancelled (was queued)")
		return StatusCancelled, true
	default: // running
		j.status = StatusCancelled
		j.errMsg = "cancelled"
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		// The client is about to be told "cancelled"; log the verdict so a
		// crash that beats the worker's terminal record still honours it.
		s.walCancelRequested(j)
		cancel()
		s.metrics.cancelled.Add(1)
		j.logger().Info("job cancelling (was running)")
		return StatusCancelled, true
	}
}

// Drain gracefully shuts the scheduler down: new submissions are refused,
// queued and running jobs are given until ctx expires to finish, then
// whatever is still in flight is cancelled through its context. Drain
// returns once every worker has exited; the return value reports whether
// the drain completed without forced cancellation. Safe to call once.
func (s *Server) Drain(ctx context.Context) bool {
	s.submitMu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.submitMu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	drained := false
	select {
	case <-workersDone:
		// All jobs finished on their own; cancel runCtx anyway to stop
		// background helpers (the coordinator's health loop).
		s.runCancel()
		drained = true
	case <-ctx.Done():
		s.runCancel()
		<-workersDone
	}
	// Workers are gone, so no more appends: sync and close the log.
	if s.wal != nil {
		s.walClose.Do(func() {
			if err := s.wal.Close(); err != nil {
				s.log.Warn("wal close failed", "error", err)
			}
		})
	}
	return drained
}

// Close shuts down immediately: in-flight jobs are cancelled and Close
// returns when the workers have exited.
func (s *Server) Close() {
	done, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(done)
}
