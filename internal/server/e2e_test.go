package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"datastall/internal/experiments"
)

// TestE2ESpecByteIdentical is the service's core fidelity guarantee: a spec
// submitted over HTTP produces a result byte-identical to running the same
// spec in-process through RunSpec.
func TestE2ESpecByteIdentical(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, srv, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, srv.store.get(id).view(true).Error)
	}
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
	var v jobJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Report == nil {
		t.Fatal("completed spec job has no report")
	}
	viaHTTP, err := json.Marshal(v.Report)
	if err != nil {
		t.Fatal(err)
	}

	sp, err := experiments.LoadSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.RunSpec(context.Background(), sp, experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inProcess, err := json.Marshal(toReportJSON(direct))
	if err != nil {
		t.Fatal(err)
	}
	if string(viaHTTP) != string(inProcess) {
		t.Fatalf("HTTP result differs from in-process RunSpec:\nhttp:   %s\ndirect: %s", viaHTTP, inProcess)
	}
}

// cancelJobBody runs long enough (~seconds uncancelled) that a DELETE
// triggered by the first streamed epoch event lands mid-run with a wide
// margin.
const cancelJobBody = `{"job": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.2, "epochs": 50, "batch": 16, "loader": "coordl", "cache_fraction": 0.35}}`

// TestE2ECancelMidRunOverHTTP submits a long job, watches its NDJSON event
// stream, DELETEs at the first epoch boundary, and requires: a prompt
// cancel response with status "cancelled", an aborted run (far fewer epochs
// than requested), and a terminal job_done marker carrying the same status.
func TestE2ECancelMidRunOverHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	id := submitID(t, ts, cancelJobBody)

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	epochsEnded := 0
	sawDone := false
	var doneEvent wireEvent
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case "epoch_ended":
			epochsEnded++
			if epochsEnded == 1 {
				start := time.Now()
				dresp, dbody := doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+id)
				if dresp.StatusCode != 200 || !strings.Contains(dbody, string(StatusCancelled)) {
					t.Fatalf("DELETE: %d %s", dresp.StatusCode, dbody)
				}
				if d := time.Since(start); d > 5*time.Second {
					t.Fatalf("DELETE took %v, want prompt", d)
				}
			}
		case "job_done":
			sawDone = true
			doneEvent = ev
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a job_done marker")
	}
	if doneEvent.Status != StatusCancelled {
		t.Fatalf("job_done status %s, want cancelled", doneEvent.Status)
	}
	if epochsEnded >= 50 {
		t.Fatalf("saw %d epoch_ended events; the run was never aborted", epochsEnded)
	}
	if st := srv.store.get(id).StatusNow(); st != StatusCancelled {
		t.Fatalf("store status %s, want cancelled", st)
	}
}

// TestE2EEventStreamSSE checks the SSE rendering and that a spec job's
// stream interleaves the experiments layer's case_started annotations.
func TestE2EEventStreamSSE(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1})
	// Park a long job on the single worker so the spec job stays queued
	// until the stream below is provably attached.
	blocker := submitID(t, ts, cancelJobBody)
	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var eventLines, caseStarted, caseTotal int
	released := false
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !released {
			// The opening status snapshot is written after the
			// subscription attaches; once it arrives, no later event can
			// be missed, so it is safe to let the spec job start.
			if resp, body := doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+blocker); resp.StatusCode != 200 {
				t.Fatalf("DELETE blocker: %d %s", resp.StatusCode, body)
			}
			released = true
		}
		if strings.HasPrefix(line, "event: ") {
			eventLines++
			if line == "event: case_started" {
				caseStarted++
			}
			continue
		}
		if strings.HasPrefix(line, "data: ") && caseStarted == 1 && caseTotal == 0 {
			var ev wireEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if ev.Type == "case_started" {
				caseTotal = ev.Total
				if !strings.Contains(ev.Text, "row=") {
					t.Fatalf("case_started text %q has no row", ev.Text)
				}
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if eventLines == 0 {
		t.Fatal("no SSE event: lines seen")
	}
	// cache-sweep is a 5-row x 2-case sweep: 10 cells.
	if caseStarted != 10 || caseTotal != 10 {
		t.Fatalf("saw %d case_started (total field %d), want 10/10", caseStarted, caseTotal)
	}
	if st := waitTerminal(t, srv, id, time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
}

// TestE2ESubmitBuiltinSpecByName: the documented {"spec_name": "fig5"}
// submission must actually run — built-in specs carry no scale of their
// own, so the handler has to fill in the registry experiment's
// DefaultScale exactly as the CLI path does.
func TestE2ESubmitBuiltinSpecByName(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	id := submitID(t, ts, `{"spec_name": "fig5"}`)
	if st := waitTerminal(t, srv, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("fig5 by name ended %s (%s)", st, srv.store.get(id).view(true).Error)
	}
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
	var v jobJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Report == nil || v.Report.Table == nil || len(v.Report.Table.Rows) == 0 {
		t.Fatalf("fig5 by name produced no table: %s", body)
	}
	// An explicit request scale still wins over the default.
	id2 := submitID(t, ts, `{"spec_name": "fig5", "scale": 0.02}`)
	if st := waitTerminal(t, srv, id2, 120*time.Second); st != StatusCompleted {
		t.Fatalf("fig5 with explicit scale ended %s", st)
	}
}

// TestE2EMetricsReconcile drives one job to each terminal state and
// requires /metrics to agree exactly with the job store.
func TestE2EMetricsReconcile(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	done := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, done, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	// A spec whose base never sets a scale fails at run time.
	failing := submitID(t, ts, `{"spec": {"name": "noscale", "row_header": ["model"],
		"base": {"model": "resnet18", "epochs": 1},
		"rows": {"cases": [{"set": {}}]},
		"columns": [{"label": "s", "metric": "epoch_s"}]}}`)
	if st := waitTerminal(t, srv, failing, 60*time.Second); st != StatusFailed {
		t.Fatalf("no-scale spec ended %s, want failed", st)
	}
	cancelled := submitID(t, ts, cancelJobBody)
	waitStatus(t, srv, cancelled, StatusRunning, 10*time.Second)
	if resp, body := doMethod(t, "DELETE", ts.URL+"/v1/jobs/"+cancelled); resp.StatusCode != 200 {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	if st := waitTerminal(t, srv, cancelled, 60*time.Second); st != StatusCancelled {
		t.Fatalf("job ended %s, want cancelled", st)
	}

	_, text := getJSON(t, ts.URL+"/metrics")
	metric := func(name string) int {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v int
				fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v)
				return v
			}
		}
		t.Fatalf("metric %s missing from /metrics:\n%s", name, text)
		return -1
	}
	byStatus := map[Status]int{}
	for _, j := range srv.store.list() {
		byStatus[j.StatusNow()]++
	}
	checks := map[string]int{
		"stallserved_jobs_submitted_total": len(srv.store.list()),
		"stallserved_jobs_completed_total": byStatus[StatusCompleted],
		"stallserved_jobs_failed_total":    byStatus[StatusFailed],
		"stallserved_jobs_cancelled_total": byStatus[StatusCancelled],
		"stallserved_jobs_queued":          0,
		"stallserved_jobs_running":         0,
		"stallserved_queue_depth":          0,
		"stallserved_event_subscribers":    0,
		// All three jobs left the queue, so the queue-wait histogram saw
		// each once; only the completed tinyJob's single case reached the
		// success-path latency observation.
		"stallserved_queue_wait_seconds_count": 3,
		"stallserved_case_seconds_count":       1,
	}
	for name, want := range checks {
		if got := metric(name); got != want {
			t.Errorf("%s = %d, want %d (store: %v)", name, got, want, byStatus)
		}
	}
	if metric("stallserved_events_published_total") == 0 {
		t.Error("no events counted across three jobs")
	}
}
