// Coordinator mode: scatter/gather execution of a Spec's case grid across
// a fleet of stallserved workers, over the same public HTTP API clients
// use. The grid split comes from experiments.EnumerateCases and the merge
// from experiments.AssembleReport — the exact two halves RunSpec itself is
// built from — so the gathered Report is byte-identical to a single-node
// run by construction: each cell ships as a (JobSpec, Options) pair, the
// worker resolves and runs the same deterministic simulation, and the
// result's float64 fields survive the JSON hop exactly (Go emits
// shortest-roundtrip floats).
//
// Placement is a consistent-hash ring (FNV-64a, virtual nodes) keyed by
// the cell's grid coordinates, so a re-submitted spec routes its cells to
// the same workers. Failures — transport errors, 5xx, a worker-side panic
// captured by that worker's own isolation — mark the worker unhealthy and
// re-route the cell to the next distinct ring successor after exponential
// backoff; a background probe restores workers whose /healthz answers
// again. Deterministic failures (4xx at submit, a simulation error) are
// permanent and fail the job without burning retries.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/memo"
	"datastall/internal/obs"
	"datastall/internal/trainer"
)

// ringPoints is the number of virtual nodes per worker on the hash ring;
// enough to spread cases evenly across small fleets.
const ringPoints = 64

// coordWorker is one remote stallserved the coordinator dispatches to.
type coordWorker struct {
	url     string
	healthy atomic.Bool
	// sem bounds cases in flight on this worker.
	sem chan struct{}
}

// ringSlot is one virtual node: a point on the hash circle owned by a worker.
type ringSlot struct {
	hash uint64
	w    *coordWorker
}

// coordinator scatters grid cells to workers and gathers their results.
type coordinator struct {
	workers []*coordWorker
	ring    []ringSlot
	retries int           // re-route attempts per case beyond the first
	backoff time.Duration // first retry delay, doubling per attempt
	client  *http.Client
	poll    time.Duration
}

// newCoordinator validates the worker fleet and builds the hash ring.
func newCoordinator(cfg Config) (*coordinator, error) {
	if len(cfg.WorkerURLs) == 0 {
		return nil, fmt.Errorf("coordinator: no worker URLs")
	}
	inflight := cfg.WorkerInflight
	if inflight <= 0 {
		inflight = 4
	}
	c := &coordinator{
		retries: cfg.CaseRetries,
		backoff: cfg.RetryBackoff,
		client:  &http.Client{},
		poll:    10 * time.Millisecond,
	}
	if c.retries <= 0 {
		c.retries = 3
	}
	if c.backoff <= 0 {
		c.backoff = 100 * time.Millisecond
	}
	seen := map[string]bool{}
	for _, raw := range cfg.WorkerURLs {
		u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("coordinator: worker URL %q is not http(s)://host[:port]", raw)
		}
		base := u.Scheme + "://" + u.Host + u.Path
		if seen[base] {
			continue
		}
		seen[base] = true
		w := &coordWorker{url: base, sem: make(chan struct{}, inflight)}
		w.healthy.Store(true)
		c.workers = append(c.workers, w)
		for p := 0; p < ringPoints; p++ {
			c.ring = append(c.ring, ringSlot{hash: fnv64(fmt.Sprintf("%s#%d", base, p)), w: w})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return c, nil
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (c *coordinator) healthyCount() int {
	n := 0
	for _, w := range c.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// succession returns the distinct workers in ring order starting at the
// key's position: the case's home worker first, then each failover
// candidate — a stable preference list for retries.
func (c *coordinator) succession(key string) []*coordWorker {
	h := fnv64(key)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	out := make([]*coordWorker, 0, len(c.workers))
	seen := map[*coordWorker]bool{}
	for n := 0; n < len(c.ring) && len(out) < len(c.workers); n++ {
		w := c.ring[(i+n)%len(c.ring)].w
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// pick returns the attempt-th preference that is currently healthy, scanning
// forward so retries walk to the next distinct worker.
func pick(order []*coordWorker, attempt int) *coordWorker {
	for n := 0; n < len(order); n++ {
		if w := order[(attempt+n)%len(order)]; w.healthy.Load() {
			return w
		}
	}
	return nil
}

// permanentError marks a failure that re-routing cannot fix: the workload
// itself is invalid or deterministically fails, so every worker would
// return the same answer.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// healthLoop probes unhealthy workers' /healthz until ctx ends, restoring
// the ones that answer again so the ring heals after transient deaths.
func (c *coordinator) healthLoop(ctx context.Context, log *slog.Logger) {
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, w := range c.workers {
			if w.healthy.Load() {
				continue
			}
			if c.probe(ctx, w) {
				w.healthy.Store(true)
				log.Info("coordinator: worker healthy again", "worker", w.url)
			}
		}
	}
}

// probe checks one worker's /healthz.
func (c *coordinator) probe(ctx context.Context, w *coordWorker) bool {
	pctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// runSpec is the coordinator's KindSpec executor: enumerate the grid,
// scatter every cell (bounded per worker by the in-flight semaphores),
// gather results by cell index, assemble. The first permanent failure
// cancels the remaining cells. With -memo, cells hit the cache before they
// hit the wire and every gathered worker result populates it; without,
// a job-local singleflight still collapses cells with identical resolved
// configs so each unique case is dispatched once.
func (s *Server) coordRunSpec(ctx context.Context, j *Job, runSpan obs.Span) (*experiments.Report, error) {
	cells, err := experiments.EnumerateCases(j.spec, j.opts)
	if err != nil {
		return nil, err
	}
	salt := ""
	if s.memo != nil {
		salt = s.memo.Salt()
	}
	var local memo.Group
	results := make([]*trainer.Result, len(cells))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := range cells {
		cell := cells[i]
		text := "row=" + cell.Row
		if cell.Case != "" {
			text += " case=" + cell.Case
		}
		// A WAL-recovered cell never goes back on the wire: serve it from
		// the log, exactly as the local executor does.
		if res := j.resumed(cell.Index); res != nil {
			results[cell.Index] = res
			s.metrics.walResumedCases.Add(1)
			s.metrics.events.Add(1)
			j.bc.Observe(trainer.Annotation{
				Kind: "case_resumed", Text: text, Index: cell.Index, Total: cell.Total,
			})
			sp := runSpan.StartThread("case")
			sp.SetAttr("row", cell.Row)
			if cell.Case != "" {
				sp.SetAttr("case", cell.Case)
			}
			sp.Event("case_resumed")
			sp.End()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.metrics.events.Add(1)
			j.bc.Observe(trainer.Annotation{
				Kind: "case_started", Text: text, Index: cell.Index, Total: cell.Total,
			})
			key := j.spec.Name + "/" + cell.Row + "/" + cell.Case
			caseSpan := runSpan.StartThread("case")
			caseSpan.SetAttr("row", cell.Row)
			if cell.Case != "" {
				caseSpan.SetAttr("case", cell.Case)
			}
			caseSpan.SetAttr("case_key", key)
			caseStart := time.Now()
			run := func() (*trainer.Result, error) {
				return s.coordRunCase(cctx, j, key, cell.Job, caseSpan)
			}
			var res *trainer.Result
			var err error
			ck, kerr := experiments.CaseKey(cell.Job, j.opts, salt)
			switch {
			case kerr != nil:
				res, err = run()
			case s.memo != nil:
				var hit bool
				res, hit, err = s.memo.Do(cctx, ck, run)
				caseSpan.Event("memo_lookup").SetAttr("hit", strconv.FormatBool(hit))
			default:
				res, _, err = local.Do(cctx, ck.Hash, run)
			}
			if err != nil {
				caseSpan.SetAttr("error", err.Error())
				caseSpan.End()
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("case %s: %w", key, err)
					cancel()
				}
				mu.Unlock()
				return
			}
			results[cell.Index] = res
			s.walCaseDone(j, cell.Index, res)
			s.metrics.caseSecs.Observe(time.Since(caseStart).Seconds())
			caseSpan.End()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	assemble := runSpan.Start("assemble")
	rep, err := experiments.AssembleReport(j.spec, j.opts, results)
	assemble.End()
	return rep, err
}

// coordRunJob is the coordinator's KindJob executor: a single-job
// submission is a one-cell scatter, routed by the submitted job's identity.
func (s *Server) coordRunJob(ctx context.Context, j *Job, runSpan obs.Span) (*trainer.Result, error) {
	caseSpan := runSpan.StartThread("case")
	// The routing key carries j.ID for ring placement; the span attr
	// deliberately omits it so trace topology is stable across reruns.
	caseSpan.SetAttr("case_key", "job/"+j.Name)
	if res := j.resumed(0); res != nil {
		s.metrics.walResumedCases.Add(1)
		caseSpan.Event("case_resumed")
		caseSpan.End()
		return res, nil
	}
	if j.jobSpec == nil {
		caseSpan.End()
		return nil, fmt.Errorf("job %s: no job spec retained for remote dispatch", j.ID)
	}
	caseStart := time.Now()
	run := func() (*trainer.Result, error) {
		return s.coordRunCase(ctx, j, "job/"+j.Name+"/"+j.ID, *j.jobSpec, caseSpan)
	}
	var res *trainer.Result
	var err error
	if s.memo != nil {
		if key, kerr := experiments.CaseKey(*j.jobSpec, j.opts, s.memo.Salt()); kerr == nil {
			var hit bool
			res, hit, err = s.memo.Do(ctx, key, run)
			caseSpan.Event("memo_lookup").SetAttr("hit", strconv.FormatBool(hit))
		} else {
			res, err = run()
		}
	} else {
		res, err = run()
	}
	if err != nil {
		caseSpan.SetAttr("error", err.Error())
		caseSpan.End()
		return nil, err
	}
	s.walCaseDone(j, 0, res)
	s.metrics.caseSecs.Observe(time.Since(caseStart).Seconds())
	caseSpan.End()
	return res, nil
}

// coordRunCase runs one cell remotely with re-routing: each attempt picks
// the next healthy worker on the cell's ring succession, with exponential
// backoff between attempts. Permanent errors (invalid workload,
// deterministic failure) abort immediately.
func (s *Server) coordRunCase(ctx context.Context, j *Job, key string, js experiments.JobSpec, caseSpan obs.Span) (*trainer.Result, error) {
	c := s.coord
	order := c.succession(key)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			s.metrics.caseRetries.Add(1)
			d := c.backoff << (attempt - 1)
			if d > 5*time.Second {
				d = 5 * time.Second
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		w := pick(order, attempt)
		if w == nil {
			lastErr = fmt.Errorf("no healthy workers (%d configured)", len(c.workers))
			continue
		}
		att := caseSpan.Start("attempt")
		att.SetAttr("attempt", strconv.Itoa(attempt+1))
		att.SetAttr("worker", w.url)
		res, err := s.coordRunOn(ctx, w, j, js, key, attempt+1, att)
		if err == nil {
			att.End()
			return res, nil
		}
		att.SetAttr("error", err.Error())
		att.End()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return nil, pe.err
		}
		lastErr = err
		j.logger().Warn("case attempt failed",
			"case_key", key, "worker", w.url,
			"attempt", attempt+1, "max_attempts", c.retries+1, "error", err)
	}
	return nil, fmt.Errorf("gave up after %d attempts: %w", c.retries+1, lastErr)
}

// markDown flags a worker unhealthy until the health loop restores it.
func (s *Server) markDown(w *coordWorker, key string, attempt int, err error) {
	if w.healthy.CompareAndSwap(true, false) {
		s.log.Warn("coordinator: worker unhealthy",
			"worker", w.url, "case_key", key, "attempt", attempt, "error", err)
	}
}

// coordRunOn runs one cell on one specific worker: submit over POST
// /v1/jobs, poll GET /v1/jobs/{id} to terminal, decode the result. The
// error is wrapped permanent when retrying elsewhere cannot help.
func (s *Server) coordRunOn(ctx context.Context, w *coordWorker, j *Job, js experiments.JobSpec, key string, attempt int, att obs.Span) (*trainer.Result, error) {
	c := s.coord
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-w.sem }()
	s.metrics.casesDispatched.Add(1)

	body, err := json.Marshal(struct {
		Job    *experiments.JobSpec `json:"job"`
		Scale  float64              `json:"scale,omitempty"`
		Epochs int                  `json:"epochs,omitempty"`
		Seed   int64                `json:"seed,omitempty"`
	}{Job: &js, Scale: j.opts.Scale, Epochs: j.opts.Epochs, Seed: j.opts.Seed})
	if err != nil {
		return nil, &permanentError{err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if j.tracer != nil {
		// Propagate the trace across the hop: the worker continues this
		// trace ID, and the graft below stitches its spans under att.
		req.Header.Set("traceparent", obs.Traceparent(j.tracer.TraceID(), att.ID()))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		s.markDown(w, key, attempt, err)
		return nil, fmt.Errorf("submit: %w", err)
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		// Busy (full queue, quota) is retryable without declaring the
		// worker dead — its /healthz still answers.
		return nil, fmt.Errorf("submit: %s: HTTP %d: %s", w.url, resp.StatusCode, firstLine(rb))
	case resp.StatusCode >= 500:
		s.markDown(w, key, attempt, fmt.Errorf("submit: HTTP %d", resp.StatusCode))
		return nil, fmt.Errorf("submit: %s: HTTP %d: %s", w.url, resp.StatusCode, firstLine(rb))
	default:
		// 4xx: the workload itself was rejected; every worker agrees.
		return nil, &permanentError{fmt.Errorf("submit: %s: HTTP %d: %s", w.url, resp.StatusCode, firstLine(rb))}
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rb, &acc); err != nil || acc.ID == "" {
		return nil, fmt.Errorf("submit: %s: malformed accept body %q", w.url, firstLine(rb))
	}

	for {
		res, done, err := s.coordPollOnce(ctx, w, acc.ID, key, attempt)
		if done || err != nil {
			if err == nil && res != nil {
				// Merge the worker's own span tree under this attempt so the
				// distributed sweep reads as one trace.
				s.graftRemoteTrace(ctx, w, acc.ID, att)
			}
			if ctx.Err() != nil {
				// The coordinator-side job was cancelled (DELETE or drain):
				// release the worker promptly rather than orphaning the run.
				c.remoteCancel(w, acc.ID)
			}
			return res, err
		}
		select {
		case <-time.After(c.poll):
		case <-ctx.Done():
			c.remoteCancel(w, acc.ID)
			return nil, ctx.Err()
		}
	}
}

// coordPollOnce checks a remote job once; done reports a terminal answer
// (result or permanent/transient error resolved).
func (s *Server) coordPollOnce(ctx context.Context, w *coordWorker, id, key string, attempt int) (*trainer.Result, bool, error) {
	c := s.coord
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, true, &permanentError{err}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		s.markDown(w, key, attempt, err)
		return nil, true, fmt.Errorf("poll: %w", err)
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		s.markDown(w, key, attempt, fmt.Errorf("poll: HTTP %d", resp.StatusCode))
		return nil, true, fmt.Errorf("poll: %s: HTTP %d", w.url, resp.StatusCode)
	}
	if resp.StatusCode != http.StatusOK {
		// The worker restarted and forgot the job: transient, resubmit
		// elsewhere.
		return nil, true, fmt.Errorf("poll: %s: HTTP %d: %s", w.url, resp.StatusCode, firstLine(rb))
	}
	var v struct {
		Status Status          `json:"status"`
		Error  string          `json:"error,omitempty"`
		Result *trainer.Result `json:"result,omitempty"`
	}
	if err := json.Unmarshal(rb, &v); err != nil {
		return nil, true, fmt.Errorf("poll: %s: %w", w.url, err)
	}
	switch v.Status {
	case StatusCompleted:
		if v.Result == nil {
			return nil, true, fmt.Errorf("poll: %s: completed without a result", w.url)
		}
		return v.Result, true, nil
	case StatusFailed:
		if strings.Contains(v.Error, "panic") {
			// The worker's panic isolation captured a crash; the workload is
			// deterministic, but a crashing worker is suspect — re-route.
			s.markDown(w, key, attempt, fmt.Errorf("remote panic: %s", v.Error))
			return nil, true, fmt.Errorf("remote panic on %s: %s", w.url, v.Error)
		}
		return nil, true, &permanentError{fmt.Errorf("remote failure: %s", v.Error)}
	case StatusCancelled:
		// Someone (a drain, an operator) killed it under us: retryable.
		return nil, true, fmt.Errorf("remote job cancelled on %s", w.url)
	default:
		return nil, false, nil
	}
}

// remoteCancel best-effort DELETEs an in-flight remote job after the
// coordinator-side context died.
func (c *coordinator) remoteCancel(w *coordWorker, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.url+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := c.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// firstLine truncates a response body to its first line for error messages.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
