// GET/POST /v1/query: the relational query surface over finished jobs. The
// handler snapshots every completed job's captured cases — a spec job's
// whole sweep grid, a single job's one run — into a fresh query.Store,
// executes the JSON query AST against it, and streams the result as NDJSON,
// flushing per row so clients see rows as they are produced. The request
// context drives the operator pipeline, so a client that disconnects
// mid-stream cancels the scan instead of computing rows nobody reads.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"datastall/internal/experiments"
	"datastall/internal/query"
)

// handleQuery serves one query. GET passes the query document URL-encoded
// in ?q= (absent: the default scan of every case); POST passes it as the
// request body.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src := []byte("{}")
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeErr(w, http.StatusRequestEntityTooLarge, codeTooLarge,
					"query body over the %d-byte limit", tooBig.Limit)
				return
			}
			writeErr(w, http.StatusBadRequest, codeBadRequest, "reading body: %v", err)
			return
		}
		src = body
	} else if qs := r.URL.Query().Get("q"); qs != "" {
		src = []byte(qs)
	}
	q, err := query.ParseQuery(src)
	if err != nil {
		writeErrFrom(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	rows, err := query.New(s.queryStore()).Run(r.Context(), q)
	if err != nil {
		// Validation re-runs inside Run; unreachable after ParseQuery, but
		// classify it correctly rather than 500 if the two ever diverge.
		writeErrFrom(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	s.metrics.queries.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	fw := &flushWriter{w: w, rc: http.NewResponseController(w)}
	n, err := query.WriteNDJSON(fw, rows)
	s.metrics.queryRows.Add(int64(n))
	if err != nil {
		// Headers are gone, so the status can't change — but silent NDJSON
		// truncation is indistinguishable from a complete result. Append a
		// final error-envelope line (the same typed shape every non-2xx
		// response carries) so clients can detect the aborted stream; if
		// the failure was the client's own disconnect, the write just fails
		// too and nobody is misled.
		s.log.Warn("query stream aborted", "rows", n, "error", err)
		line, merr := json.Marshal(map[string]errorBody{
			"error": {Code: codeInternal, Message: fmt.Sprintf("stream aborted after %d rows: %v", n, err)},
		})
		if merr == nil {
			fw.Write(append(line, '\n'))
			fw.Flush()
		}
	}
}

// queryStore snapshots every completed job's cases into a store. Jobs are
// visited in submission order, so case_ids are stable across queries for a
// given job history. Jobs rehydrated from persist snapshots serve the case
// capture stored in their snapshot, so a restart keeps history queryable.
func (s *Server) queryStore() *query.Store {
	st := query.NewStore()
	for _, j := range s.store.list() {
		st.AddCases(j.caseResults())
	}
	return st
}

// flushWriter adapts an http.ResponseWriter to query.WriteNDJSON's
// per-row flush, tolerating transports that cannot flush.
type flushWriter struct {
	w  io.Writer
	rc *http.ResponseController
}

func (f *flushWriter) Write(p []byte) (int, error) { return f.w.Write(p) }

func (f *flushWriter) Flush() error {
	if err := f.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}

// caseResults exposes a completed job's runs for the query surface: the
// captured grid cells of a spec job, the single run of a job submission, or
// — for jobs rehydrated from persist snapshots — the capture stored in the
// snapshot.
func (j *Job) caseResults() []*experiments.CaseResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusCompleted {
		return nil
	}
	switch {
	case j.report != nil && len(j.report.Cases) > 0:
		return j.report.Cases
	case j.cases != nil:
		return j.cases
	case j.result != nil && j.bc != nil:
		// Deriving the capture needs the resolved config, which only live
		// jobs carry (bc is nil exactly for loaded ones); old snapshots
		// written before case persistence stay invisible rather than wrong.
		return []*experiments.CaseResult{experiments.CaseFromConfig(j.ID, j.cfg, j.result)}
	}
	return nil
}
