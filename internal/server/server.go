// Package server is the HTTP job service around the datastall simulation
// engine: it turns the library's context-cancellable, observable training
// jobs and declarative scenario specs into long-running service
// infrastructure. Clients submit work to a bounded queue, poll or stream
// its progress, and cancel it; the service exposes its built-in specs,
// health, and Prometheus-text metrics.
//
// API (all request/response bodies JSON):
//
//	POST   /v1/jobs             submit {"spec": <Spec>} | {"spec_name": "fig5"} |
//	                            {"job": <JobSpec>} (+ optional scale/epochs/seed),
//	                            or a bare Spec document -> 202 {"id", "status"}
//	GET    /v1/jobs             list jobs (no payloads)
//	GET    /v1/jobs/{id}        full record incl. report/result when completed
//	DELETE /v1/jobs/{id}        cancel (mid-run aborts propagate into the engine)
//	GET    /v1/jobs/{id}/events live event stream, NDJSON or SSE
//	GET    /v1/specs            built-in runnable specs (fig5, fig9a, fig18)
//	GET    /v1/specs/{name}     one built-in spec document
//	GET    /v1/query            run a query (?q=<JSON query>) over finished jobs -> NDJSON
//	POST   /v1/query            same, query document as the body
//	GET    /healthz             liveness + uptime
//	GET    /metrics             Prometheus text format counters/gauges
//
// Every error response is the typed envelope {"error": {"code", "message",
// "field"}} (see errors.go); field is set when the failure is a typed
// validation error naming a request field or query clause.
//
// With Config.WorkerURLs set, the server runs as a fleet coordinator
// (coordinator.go): it executes nothing locally, sharding each spec's case
// grid across the named stallserved workers over this same API and
// gathering a report byte-identical to a single-node run — /healthz then
// reports fleet health and /metrics adds dispatch/retry counters and
// worker gauges. Config.TenantQuota caps queued+running jobs per
// X-Tenant header on any instance (429 with code "quota_exceeded").
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/memo"
	"datastall/internal/obs"
	"datastall/internal/trainer"
	"datastall/internal/wal"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds the job worker pool (<= 0: one per CPU).
	Workers int
	// QueueDepth bounds the submission queue (<= 0: 64). A full queue
	// rejects POSTs with 503 rather than buffering unboundedly.
	QueueDepth int
	// SubscriberBuffer is the per-/events-stream ring size (<= 0: 256
	// events). A subscriber that falls further behind than this loses
	// oldest events (reported in its terminal marker) instead of
	// stalling the simulation.
	SubscriberBuffer int
	// MaxRecords bounds how many finished job records the in-memory store
	// retains (<= 0: 4096); beyond it, oldest terminal records are
	// evicted so a long-running service cannot grow without bound.
	// Metrics counters are totals and are unaffected; queued/running jobs
	// are never evicted; persisted snapshots stay on disk.
	MaxRecords int
	// PersistDir, when set, snapshots every terminal job to
	// <dir>/<id>.json and reloads snapshots on startup.
	PersistDir string
	// WALDir, when set, write-ahead-logs the full job lifecycle
	// (submitted, started, case_done, cancel_requested, terminal) to
	// rotating segments under this directory. On startup the clean prefix
	// is replayed: terminal jobs rehydrate with their history, interrupted
	// jobs re-enqueue and resume their sweeps from the last logged case.
	// Snapshots (PersistDir) still load, so both may be set during a
	// migration; the first compaction folds snapshot history into the WAL.
	WALDir string
	// WALFsync is the log's durability policy (default: fsync per append).
	WALFsync wal.FsyncPolicy
	// WALFsyncInterval is the interval-policy fsync period (<= 0: 100ms).
	WALFsyncInterval time.Duration
	// WALSegmentBytes bounds one log segment (<= 0: 4 MiB).
	WALSegmentBytes int64
	// WALCompactEvery compacts the log into a checkpoint after this many
	// terminal records (<= 0: 64), bounding replay cost.
	WALCompactEvery int
	// MemoDir, when set, memoizes every case through a content-addressed
	// result cache persisted under this directory (the same on-disk layout
	// `runsuite -memo` uses, so the CLI and the daemon can share one
	// directory): cells whose fully-resolved config was already simulated —
	// by any earlier job, process, or a fleet worker — are served from the
	// cache byte-identically instead of re-running.
	MemoDir string
	// MemoMaxBytes bounds the memo cache's in-memory LRU and its entry
	// directory, each (<= 0: 256 MiB). Enforced at insert and at startup,
	// so shrinking the budget trims an existing directory immediately.
	MemoMaxBytes int64
	// Log receives structured job-transition and recovery logging (nil:
	// silent). Per-job lines carry job_id, trace_id and (when set) tenant;
	// coordinator retry lines add worker, case_key and attempt.
	Log *slog.Logger
	// TraceDir, when set, writes each finished job's merged trace as
	// Chrome trace-event JSON to <dir>/<id>.trace.json (the same document
	// GET /v1/jobs/{id}/trace serves).
	TraceDir string

	// WorkerURLs, when non-empty, runs the server in coordinator mode:
	// spec jobs are sharded cell-by-cell across these stallserved workers
	// (and single jobs forwarded whole) instead of simulating locally.
	WorkerURLs []string
	// WorkerInflight bounds concurrently dispatched cases per worker
	// (<= 0: 4).
	WorkerInflight int
	// CaseRetries bounds re-route attempts per case beyond the first
	// (<= 0: 3).
	CaseRetries int
	// RetryBackoff is the first re-route delay, doubling per attempt,
	// capped at 5s (<= 0: 100ms).
	RetryBackoff time.Duration
	// TenantQuota, when > 0, bounds the jobs a single tenant (the
	// X-Tenant request header; empty means the anonymous tenant) may have
	// queued or running at once; excess submissions get 429
	// quota_exceeded. Layered on top of the global bounded queue.
	TenantQuota int

	// runJob, when non-nil, replaces the real workload execution — a test
	// seam for exercising scheduler races without real simulations.
	runJob func(ctx context.Context, j *Job) (*experiments.Report, *trainer.Result, error)
}

// Server is the job service. Create with New, mount Handler on an
// http.Server, and Drain on shutdown.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time
	workers int
	log     *slog.Logger

	queue     chan *Job
	wg        sync.WaitGroup
	submitMu  sync.RWMutex
	draining  bool
	runCtx    context.Context
	runCancel context.CancelFunc

	// coord is non-nil in coordinator mode (Config.WorkerURLs set).
	coord *coordinator

	// memo is the content-addressed result cache (nil when Config.MemoDir
	// unset). Its singleflight group spans jobs: identical cases submitted
	// concurrently simulate once.
	memo *memo.Cache

	// wal is the open write-ahead log (nil when Config.WALDir unset);
	// walTerminals counts terminal records toward the compaction cadence,
	// walClose makes the drain-time close idempotent, and walInfo is the
	// startup recovery summary /healthz reports.
	wal          *wal.Log
	walTerminals atomic.Int64
	walClose     sync.Once
	walInfo      struct {
		records     int
		segments    int
		truncated   string
		resumedJobs int
	}

	// tenantActive counts each tenant's queued+running jobs while
	// Config.TenantQuota is enforced.
	quotaMu      sync.Mutex
	tenantActive map[string]int
}

// New builds a Server and starts its worker pool. PersistDir (when set) is
// created if missing and existing snapshots are loaded as completed jobs.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 256
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 4096
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:          cfg,
		store:        newStore(),
		metrics:      newMetrics(),
		queue:        make(chan *Job, cfg.QueueDepth),
		start:        time.Now(),
		tenantActive: map[string]int{},
		log:          cfg.Log,
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if len(cfg.WorkerURLs) > 0 {
		coord, err := newCoordinator(cfg)
		if err != nil {
			return nil, err
		}
		s.coord = coord
		go coord.healthLoop(s.runCtx, s.log)
	}
	if cfg.MemoDir != "" {
		mc, err := memo.Open(memo.Options{
			Dir: cfg.MemoDir, MaxBytes: cfg.MemoMaxBytes,
			OnLookup: func(hit bool, d time.Duration) { s.metrics.memoLookup.Observe(d.Seconds()) },
		})
		if err != nil {
			return nil, fmt.Errorf("server: memo: %w", err)
		}
		s.memo = mc
		st := mc.Stats()
		s.log.Info("memo cache open", "dir", cfg.MemoDir,
			"disk_entries", st.DiskEntries, "disk_bytes", st.DiskBytes, "salt", mc.Salt())
	}
	loadErrs := 0
	var pending []*Job
	if cfg.WALDir != "" {
		l, rec, err := wal.Open(wal.Options{
			Dir: cfg.WALDir, Fsync: cfg.WALFsync,
			FsyncInterval: cfg.WALFsyncInterval, SegmentBytes: cfg.WALSegmentBytes,
			OnFsync: func(d time.Duration) { s.metrics.walFsync.Observe(d.Seconds()) },
		})
		if err != nil {
			return nil, fmt.Errorf("server: wal: %w", err)
		}
		s.wal = l
		var replayErrs int
		pending, replayErrs = s.replayWAL(rec.Records)
		loadErrs += rec.LoadErrors + replayErrs
		s.walInfo.records = len(rec.Records)
		s.walInfo.segments = rec.Segments
		s.walInfo.truncated = rec.Truncated
		s.walInfo.resumedJobs = len(pending)
	}
	if cfg.PersistDir != "" {
		if err := os.MkdirAll(cfg.PersistDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: persist dir: %w", err)
		}
		// Loaded after WAL replay: on an ID collision the WAL's richer
		// record wins (insertLoaded keeps the first insertion).
		loadErrs += loadPersisted(cfg.PersistDir, s.store, s.log)
	}
	if cfg.WALDir != "" || cfg.PersistDir != "" {
		s.metrics.persistLoadErrors.Add(int64(loadErrs))
		s.store.evictTerminal(cfg.MaxRecords)
		summary := fmt.Sprintf("persist: recovered %d job(s) (%d load error(s))", s.store.count(), loadErrs)
		if s.wal != nil {
			summary += fmt.Sprintf("; wal: %d record(s) in %d segment(s), %d interrupted job(s) to resume",
				s.walInfo.records, s.walInfo.segments, len(pending))
			if s.walInfo.truncated != "" {
				summary += fmt.Sprintf(", truncated torn tail in %s", s.walInfo.truncated)
			}
		}
		// The summary stays one composed message: recovery tooling greps
		// for its exact phrasing.
		s.log.Info(summary)
	}
	s.buildMux()
	s.startWorkers()
	// Interrupted jobs go back on the queue only after the workers exist
	// to drain it; their logged case results ride along in j.resume.
	for _, j := range pending {
		s.reenqueue(j)
	}
	return s, nil
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/specs", s.handleSpecs)
	mux.HandleFunc("GET /v1/specs/{name}", s.handleSpec)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux = mux
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the size of the running worker pool.
func (s *Server) Workers() int { return s.workers }

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// SubmitRequest is the POST /v1/jobs body. Exactly one of Spec, SpecName
// or Job selects the workload; Scale/Epochs/Seed fill fields the workload
// leaves zero (epochs default 3, seed 1, exactly as the CLIs default them).
type SubmitRequest struct {
	// Spec is an inline declarative sweep; the whole body may equally be
	// a bare Spec document.
	Spec *experiments.Spec `json:"spec,omitempty"`
	// SpecName runs a built-in spec (see GET /v1/specs) by name.
	SpecName string `json:"spec_name,omitempty"`
	// Job is a single training job.
	Job *experiments.JobSpec `json:"job,omitempty"`

	Scale  float64 `json:"scale,omitempty"`
	Epochs int     `json:"epochs,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
}

// decodeSubmit parses a submission body: the wrapped SubmitRequest form
// first, then a bare Spec document.
func decodeSubmit(body []byte) (*SubmitRequest, error) {
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	if err == nil {
		// Decode stops at the first JSON value; trailing content means a
		// malformed (e.g. concatenated) request that must not be half-run.
		if dec.More() {
			return nil, fmt.Errorf("trailing data after the request document")
		}
		return &req, nil
	}
	if sp, sperr := experiments.LoadSpec(body); sperr == nil {
		return &SubmitRequest{Spec: sp}, nil
	}
	return nil, fmt.Errorf("body is not a submit request (spec|spec_name|job + scale/epochs/seed) or a bare spec: %v", err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				"request body over the %d-byte limit", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, codeBadRequest, "reading body: %v", err)
		return
	}
	req, err := decodeSubmit(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	selected := 0
	for _, on := range []bool{req.Spec != nil, req.SpecName != "", req.Job != nil} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		writeErr(w, http.StatusBadRequest, codeBadRequest,
			"exactly one of \"spec\", \"spec_name\" or \"job\" must be set (got %d)", selected)
		return
	}
	opts := experiments.Options{Scale: req.Scale, Epochs: req.Epochs, Seed: req.Seed}

	var build func(id string) *Job
	switch {
	case req.SpecName != "":
		sp := experiments.SpecFor(req.SpecName)
		if sp == nil {
			writeErr(w, http.StatusNotFound, codeNotFound, "unknown spec %q (see GET /v1/specs)", req.SpecName)
			return
		}
		// Built-in specs carry no scale in their base — the CLI path fills
		// the registry experiment's DefaultScale in, so a by-name
		// submission must too or it could only ever fail at run time.
		if opts.Scale == 0 && sp.Base.Scale == 0 {
			if e, err := experiments.ByID(req.SpecName); err == nil {
				opts.Scale = e.DefaultScale
			}
		}
		build = specJob(sp, opts)
	case req.Spec != nil:
		if err := req.Spec.Validate(); err != nil {
			writeErrFrom(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		build = specJob(req.Spec, opts)
	default: // req.Job != nil
		cfg, err := req.Job.Build(opts)
		if err != nil {
			writeErrFrom(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		// Surface the trainer's typed validation (*FieldError) now, with
		// a 400 naming the offending field, instead of queueing a job
		// that can only fail.
		if err := trainer.FromConfig(cfg).Validate(); err != nil {
			writeErrFrom(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		build = func(id string) *Job {
			return &Job{
				ID: id, Kind: KindJob, Name: req.Job.Model,
				cfg: cfg, opts: opts, jobSpec: req.Job,
				status: StatusQueued, submitted: time.Now(),
				bc:   trainer.NewBroadcaster(),
				done: make(chan struct{}),
			}
		}
	}

	// A caller-supplied traceparent (the coordinator→worker hop, or any
	// external tracing client) threads its trace ID through, so a
	// distributed sweep merges into one trace.
	traceID, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	j, err := s.submit(r.Header.Get("X-Tenant"), traceID, build)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeErr(w, http.StatusServiceUnavailable, codeQueueFull, "%v", err)
		case errors.Is(err, errDraining):
			writeErr(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
		case errors.Is(err, errQuotaExceeded):
			s.metrics.quotaRejected.Add(1)
			writeErr(w, http.StatusTooManyRequests, codeQuotaExceeded, "%v", err)
		default:
			writeErr(w, http.StatusInternalServerError, codeInternal, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id": j.ID, "status": string(StatusQueued),
	})
}

// specJob builds the Job record for a declarative sweep submission.
func specJob(sp *experiments.Spec, opts experiments.Options) func(id string) *Job {
	return func(id string) *Job {
		return &Job{
			ID: id, Kind: KindSpec, Name: sp.Name,
			spec: sp, opts: opts,
			status: StatusQueued, submitted: time.Now(),
			bc:   trainer.NewBroadcaster(),
			done: make(chan struct{}),
		}
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.list()
	out := make([]*jobJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.view(false))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st, ok := s.cancelJob(j)
	if !ok {
		writeErr(w, http.StatusConflict, codeConflict, "job %s already %s", j.ID, st)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": j.ID, "status": string(st)})
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		Name  string `json:"name"`
		Title string `json:"title,omitempty"`
		Notes string `json:"notes,omitempty"`
	}
	specs := experiments.Specs()
	out := make([]specInfo, 0, len(specs))
	for _, sp := range specs {
		out = append(out, specInfo{Name: sp.Name, Title: sp.Title, Notes: sp.Notes})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"specs": out})
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	sp := experiments.SpecFor(r.PathValue("name"))
	if sp == nil {
		writeErr(w, http.StatusNotFound, codeNotFound, "unknown spec %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, sp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.workers,
		"jobs":           s.store.count(),
	}
	if s.coord != nil {
		v["fleet"] = map[string]int{
			"workers": len(s.coord.workers),
			"healthy": s.coord.healthyCount(),
		}
	}
	if s.memo != nil {
		st := s.memo.Stats()
		v["memo"] = map[string]interface{}{
			"dir":          s.cfg.MemoDir,
			"max_bytes":    s.memo.MaxBytes(),
			"salt":         s.memo.Salt(),
			"entries":      st.Entries,
			"disk_entries": st.DiskEntries,
			"disk_bytes":   st.DiskBytes,
			"hits":         st.Hits,
			"misses":       st.Misses,
			"evictions":    st.Evictions,
			"load_errors":  st.LoadErrors,
		}
	}
	if s.cfg.WALDir != "" || s.cfg.PersistDir != "" {
		persist := map[string]interface{}{
			"load_errors": s.metrics.persistLoadErrors.Load(),
		}
		if s.wal != nil {
			walBlock := map[string]interface{}{
				"records":      s.walInfo.records,
				"segments":     s.walInfo.segments,
				"resumed_jobs": s.walInfo.resumedJobs,
				"appends":      s.metrics.walAppends.Load(),
			}
			if s.walInfo.truncated != "" {
				walBlock["truncated"] = s.walInfo.truncated
			}
			persist["wal"] = walBlock
		}
		v["persist"] = persist
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	healthy, total := 0, 0
	if s.coord != nil {
		healthy, total = s.coord.healthyCount(), len(s.coord.workers)
	}
	var ms *memo.Stats
	if s.memo != nil {
		st := s.memo.Stats()
		ms = &st
	}
	s.metrics.writeProm(w, len(s.queue), healthy, total, ms)
}
