// WAL integration: the job lifecycle as an append-only record stream
// (internal/wal), replacing terminal-only snapshots as the durability
// story. Every client-visible transition appends a record — submitted
// before the 202, case_done as each grid cell's result is captured,
// cancel_requested when a DELETE verdict is returned, terminal with the
// full wire form — so a kill -9 at any point recovers to a state the
// client was already told about.
//
// Two ordering rules keep the log and memory consistent:
//
//   - Mutate in-memory state BEFORE appending its record. A crash between
//     the two loses both together (the record was never durable, so the
//     client never saw it), and compaction's gather — which snapshots
//     memory under the log's lock — always sees a superset of what the
//     segments it replaces contain.
//   - The log's mutex is outermost: never append while holding store.mu or
//     a job's mu, because Compact's gather takes both.
package server

import (
	"context"
	"encoding/json"
	"strconv"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/obs"
	"datastall/internal/trainer"
	"datastall/internal/wal"
)

// walSubmitted is the TypeSubmitted payload: everything needed to rebuild
// and re-enqueue the job after a crash.
type walSubmitted struct {
	Kind        string               `json:"kind"`
	Name        string               `json:"name,omitempty"`
	Tenant      string               `json:"tenant,omitempty"`
	SubmittedAt time.Time            `json:"submitted_at"`
	Spec        *experiments.Spec    `json:"spec,omitempty"`
	Job         *experiments.JobSpec `json:"job,omitempty"`
	Opts        experiments.Options  `json:"opts"`
}

// walStarted is the TypeStarted payload.
type walStarted struct {
	StartedAt time.Time `json:"started_at"`
}

// walCase is the TypeCaseDone payload: one grid cell's captured result
// (cell 0 for a single-job submission). trainer.Result round-trips JSON
// exactly (Go emits shortest-roundtrip floats — the same property
// coordinator mode already leans on), so a resumed sweep assembles a
// report byte-identical to an uninterrupted run.
type walCase struct {
	Index  int             `json:"index"`
	Result *trainer.Result `json:"result"`
}

// The TypeTerminal payload is persistJSON — the exact snapshot form — so
// replaying a terminal record and loading a legacy snapshot are the same
// rehydration.

// walAppend appends one record, counting it and tracing it as a
// wal_append span under the job's root; a write failure is logged, not
// fatal — the service keeps running on its in-memory state, exactly as a
// failed snapshot write behaved.
func (s *Server) walAppend(j *Job, rec wal.Record) {
	if s.wal == nil {
		return
	}
	sp := j.span.Start("wal_append")
	sp.SetAttr("type", string(rec.Type))
	err := s.wal.Append(rec)
	sp.End()
	if err != nil {
		j.logger().Warn("wal append failed", "type", string(rec.Type), "error", err)
		return
	}
	s.metrics.walAppends.Add(1)
}

func (s *Server) walRecord(j *Job, typ wal.Type, payload interface{}) {
	if s.wal == nil {
		return
	}
	b, err := json.Marshal(payload)
	if err != nil {
		j.logger().Warn("wal encode failed", "type", string(typ), "error", err)
		return
	}
	s.walAppend(j, wal.Record{Type: typ, JobID: j.ID, Payload: b})
}

func (s *Server) walSubmitted(j *Job) {
	s.walRecord(j, wal.TypeSubmitted, walSubmitted{
		Kind: j.Kind, Name: j.Name, Tenant: j.tenant, SubmittedAt: j.submitted,
		Spec: j.spec, Job: j.jobSpec, Opts: j.opts,
	})
}

func (s *Server) walStarted(j *Job) {
	j.mu.Lock()
	at := j.started
	j.mu.Unlock()
	s.walRecord(j, wal.TypeStarted, walStarted{StartedAt: at})
}

// walCaseDone captures one finished cell: memory first (the resume map a
// compaction gather reads), then the record.
func (s *Server) walCaseDone(j *Job, index int, res *trainer.Result) {
	if s.wal == nil {
		return
	}
	j.mu.Lock()
	if j.walCases == nil {
		j.walCases = map[int]*trainer.Result{}
	}
	j.walCases[index] = res
	j.mu.Unlock()
	s.walRecord(j, wal.TypeCaseDone, walCase{Index: index, Result: res})
}

func (s *Server) walCancelRequested(j *Job) {
	s.walRecord(j, wal.TypeCancelRequested, struct{}{})
}

// walTerminal logs the job's final record and, every WALCompactEvery
// terminals, folds the log into a checkpoint.
func (s *Server) walTerminal(j *Job) {
	if s.wal == nil {
		return
	}
	s.walRecord(j, wal.TypeTerminal, persistJSON{jobJSON: *j.view(true), Cases: j.caseResults()})
	every := s.cfg.WALCompactEvery
	if every <= 0 {
		every = 64
	}
	if s.walTerminals.Add(1)%int64(every) == 0 {
		if err := s.wal.Compact(s.walGather); err != nil {
			s.log.Warn("wal compact failed", "error", err)
			return
		}
		s.metrics.walCompactions.Add(1)
	}
}

// walGather renders the store's current state as canonical records — the
// checkpoint body. Runs with the log lock held (appends stalled); takes
// store.mu and each job's mu, which is why no append site may hold those.
// Jobs loaded from legacy snapshots serialize like any other terminal job,
// so the first compaction migrates snapshot history into the WAL.
func (s *Server) walGather() []wal.Record {
	var out []wal.Record
	add := func(typ wal.Type, id string, payload interface{}) {
		b, err := json.Marshal(payload)
		if err != nil {
			s.log.Warn("wal gather encode failed", "type", string(typ), "job_id", id, "error", err)
			return
		}
		out = append(out, wal.Record{Type: typ, JobID: id, Payload: b})
	}
	for _, j := range s.store.list() {
		j.mu.Lock()
		final := j.walFinal
		j.mu.Unlock()
		if !final {
			select {
			case <-j.done: // loaded-from-snapshot jobs never set walFinal
				final = true
			default:
			}
		}
		if final {
			// Fully captured: one terminal record subsumes its history.
			add(wal.TypeTerminal, j.ID, persistJSON{jobJSON: *j.view(true), Cases: j.caseResults()})
			continue
		}
		j.mu.Lock()
		running := j.status == StatusRunning || j.status.Terminal()
		startedAt := j.started
		cancel := j.cancelRequested
		cases := make([]walCase, 0, len(j.walCases))
		for idx, res := range j.walCases {
			cases = append(cases, walCase{Index: idx, Result: res})
		}
		j.mu.Unlock()
		add(wal.TypeSubmitted, j.ID, walSubmitted{
			Kind: j.Kind, Name: j.Name, Tenant: j.tenant, SubmittedAt: j.submitted,
			Spec: j.spec, Job: j.jobSpec, Opts: j.opts,
		})
		if running {
			add(wal.TypeStarted, j.ID, walStarted{StartedAt: startedAt})
		}
		for _, c := range cases {
			add(wal.TypeCaseDone, j.ID, c)
		}
		if cancel {
			add(wal.TypeCancelRequested, j.ID, struct{}{})
		}
	}
	return out
}

// walReplayState accumulates one job's records during replay.
type walReplayState struct {
	submitted *walSubmitted
	started   *walStarted
	cases     map[int]*trainer.Result
	cancelled bool
	terminal  *persistJSON
}

// replayWAL folds the recovered record stream into jobs: terminal records
// rehydrate exactly like snapshots; submitted-but-unfinished jobs come
// back as pending, carrying their logged case results to resume from.
// Malformed or orphaned records count as load errors and are skipped — a
// corrupt record must not keep the service from starting. Returns the
// pending jobs to re-enqueue (in submission order) and the error count.
func (s *Server) replayWAL(records []wal.Record) (pending []*Job, loadErrs int) {
	byJob := map[string]*walReplayState{}
	var order []string
	state := func(id string) *walReplayState {
		st := byJob[id]
		if st == nil {
			st = &walReplayState{cases: map[int]*trainer.Result{}}
			byJob[id] = st
			order = append(order, id)
		}
		return st
	}
	for _, rec := range records {
		if rec.JobID == "" {
			loadErrs++
			s.log.Warn("wal replay: record with no job id, skipping", "type", string(rec.Type))
			continue
		}
		switch rec.Type {
		case wal.TypeSubmitted:
			var v walSubmitted
			if err := json.Unmarshal(rec.Payload, &v); err != nil {
				loadErrs++
				s.log.Warn("wal replay: bad record", "type", string(rec.Type), "job_id", rec.JobID, "error", err)
				continue
			}
			state(rec.JobID).submitted = &v
		case wal.TypeStarted:
			var v walStarted
			if err := json.Unmarshal(rec.Payload, &v); err != nil {
				loadErrs++
				s.log.Warn("wal replay: bad record", "type", string(rec.Type), "job_id", rec.JobID, "error", err)
				continue
			}
			state(rec.JobID).started = &v
		case wal.TypeCaseDone:
			var v walCase
			if err := json.Unmarshal(rec.Payload, &v); err != nil || v.Result == nil {
				loadErrs++
				s.log.Warn("wal replay: bad case payload", "type", string(rec.Type), "job_id", rec.JobID)
				continue
			}
			state(rec.JobID).cases[v.Index] = v.Result
		case wal.TypeCancelRequested:
			state(rec.JobID).cancelled = true
		case wal.TypeTerminal:
			var v persistJSON
			if err := json.Unmarshal(rec.Payload, &v); err != nil || v.ID == "" || !v.Status.Terminal() {
				loadErrs++
				s.log.Warn("wal replay: bad terminal payload", "type", string(rec.Type), "job_id", rec.JobID)
				continue
			}
			state(rec.JobID).terminal = &v
		default:
			loadErrs++
			s.log.Warn("wal replay: unknown record type, skipping", "type", string(rec.Type), "job_id", rec.JobID)
		}
	}

	for _, id := range order {
		st := byJob[id]
		switch {
		case st.terminal != nil:
			s.store.insertLoaded(jobFromPersist(*st.terminal))
		case st.submitted == nil:
			// started/case_done records whose submitted record was lost to
			// corruption: nothing to rebuild.
			loadErrs++
			s.log.Warn("wal replay: lifecycle records but no submitted record, skipping", "job_id", id)
		case st.cancelled:
			// The client was told "cancelled"; honour the verdict even
			// though the crash beat the worker to the terminal record.
			j := pendingFromWAL(id, st)
			j.status = StatusCancelled
			j.errMsg = "cancelled"
			j.finished = j.submitted
			j.bc = nil
			close(j.done)
			s.store.insertLoaded(j)
		default:
			j := pendingFromWAL(id, st)
			s.store.insertLoaded(j)
			pending = append(pending, j)
		}
	}
	return pending, loadErrs
}

// pendingFromWAL rebuilds an interrupted job as a fresh queued Job carrying
// its recovered case results.
func pendingFromWAL(id string, st *walReplayState) *Job {
	v := st.submitted
	j := &Job{
		ID: id, Kind: v.Kind, Name: v.Name, tenant: v.Tenant,
		spec: v.Spec, jobSpec: v.Job, opts: v.Opts,
		status: StatusQueued, submitted: v.SubmittedAt,
		bc:   trainer.NewBroadcaster(),
		done: make(chan struct{}),
	}
	if len(st.cases) > 0 {
		j.resume = st.cases
		j.walCases = make(map[int]*trainer.Result, len(st.cases))
		for idx, res := range st.cases {
			j.walCases[idx] = res
		}
	}
	if v.Job != nil {
		// Resolution was validated at original submission; a failure here
		// means the WAL predates a schema change — surface it at run time.
		if cfg, err := v.Job.Build(v.Opts); err == nil {
			j.cfg = cfg
		}
	}
	return j
}

// reenqueue puts a recovered pending job back on the queue with the same
// metric ordering as submit: the queued gauge before the enqueue, the
// submitted counter after it succeeds — so the reconciliation identity
// (submitted = queued + running + terminal totals) holds from the first
// scrape. A full queue fails the job rather than blocking startup.
func (s *Server) reenqueue(j *Job) {
	s.openTrace(j, "", true)
	s.metrics.queued.Add(1)
	select {
	case s.queue <- j:
		s.metrics.submitted.Add(1)
		s.metrics.walResumed.Add(1)
		j.log.Info("recovered from wal, re-queued",
			"kind", j.Kind, "name", j.Name, "cases_done", len(j.resume))
	default:
		s.metrics.queued.Add(-1)
		j.mu.Lock()
		j.status = StatusFailed
		j.errMsg = "recovered job could not be re-enqueued: queue full"
		j.finished = time.Now()
		j.mu.Unlock()
		s.metrics.submitted.Add(1)
		s.metrics.failed.Add(1)
		s.finalize(j)
		j.log.Warn("recovered from wal but the queue is full; marked failed")
	}
}

// resumed returns the job's recovered result for one cell, if any.
func (j *Job) resumed(index int) *trainer.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resume[index]
}

// runSpecLocal is the local KindSpec executor: the same enumerate -> run
// -> assemble halves as RunSpecProgress (identical cell resolution, so an
// uninterrupted run's report is byte-identical to the old path), plus two
// WAL duties — recovered cells are served from the resume map instead of
// re-simulated, and every freshly computed cell is logged before the next
// one starts. Cells with identical resolved configs run once per job
// (seen map), and with -memo once ever: the cache serves repeats from any
// earlier job or process and collapses identical in-flight cases.
func (s *Server) runSpecLocal(ctx context.Context, j *Job, runSpan obs.Span) (*experiments.Report, error) {
	cells, err := experiments.EnumerateCases(j.spec, j.opts)
	if err != nil {
		return nil, err
	}
	salt := ""
	if s.memo != nil {
		salt = s.memo.Salt()
	}
	counting := trainer.ObserverFunc(func(trainer.Event) { s.metrics.events.Add(1) })
	seen := map[string]int{}
	results := make([]*trainer.Result, len(cells))
	for _, cell := range cells {
		text := "row=" + cell.Row
		if cell.Case != "" {
			text += " case=" + cell.Case
		}
		caseSpan := runSpan.StartThread("case")
		caseSpan.SetAttr("row", cell.Row)
		if cell.Case != "" {
			caseSpan.SetAttr("case", cell.Case)
		}
		if res := j.resumed(cell.Index); res != nil {
			results[cell.Index] = res
			s.metrics.walResumedCases.Add(1)
			s.metrics.events.Add(1)
			j.bc.Observe(trainer.Annotation{
				Kind: "case_resumed", Text: text, Index: cell.Index, Total: cell.Total,
			})
			caseSpan.Event("case_resumed")
			caseSpan.End()
			continue
		}
		s.metrics.events.Add(1)
		j.bc.Observe(trainer.Annotation{
			Kind: "case_started", Text: text, Index: cell.Index, Total: cell.Total,
		})
		key, kerr := experiments.CaseKey(cell.Job, j.opts, salt)
		if kerr == nil {
			if first, ok := seen[key.Hash]; ok {
				results[cell.Index] = results[first]
				s.walCaseDone(j, cell.Index, results[first])
				caseSpan.Event("case_dedup")
				caseSpan.End()
				continue
			}
		}
		caseStart := time.Now()
		run := func() (*trainer.Result, error) {
			sim := caseSpan.Start("simulate")
			cfg, err := cell.Job.Build(j.opts)
			if err != nil {
				sim.End()
				return nil, err
			}
			res, err := trainer.RunContext(ctx, cfg, counting, j.bc)
			if err == nil {
				experiments.TraceEpochs(sim, cfg, res)
			}
			sim.End()
			return res, err
		}
		var res *trainer.Result
		if s.memo != nil && kerr == nil {
			var hit bool
			res, hit, err = s.memo.Do(ctx, key, run)
			caseSpan.Event("memo_lookup").SetAttr("hit", strconv.FormatBool(hit))
		} else {
			// A key derivation error is a config resolution error; run()
			// surfaces the same failure.
			res, err = run()
		}
		if err != nil {
			caseSpan.SetAttr("error", err.Error())
			caseSpan.End()
			return nil, err
		}
		if kerr == nil {
			seen[key.Hash] = cell.Index
		}
		results[cell.Index] = res
		s.walCaseDone(j, cell.Index, res)
		s.metrics.caseSecs.Observe(time.Since(caseStart).Seconds())
		caseSpan.End()
	}
	assemble := runSpan.Start("assemble")
	rep, err := experiments.AssembleReport(j.spec, j.opts, results)
	assemble.End()
	return rep, err
}

// runJobLocal is the local KindJob executor: a single run is cell 0 of a
// one-cell grid, recoverable the same way and memoizable when the submitted
// JobSpec is retained (it always is for KindJob submissions).
func (s *Server) runJobLocal(ctx context.Context, j *Job, runSpan obs.Span) (*trainer.Result, error) {
	caseSpan := runSpan.StartThread("case")
	if res := j.resumed(0); res != nil {
		s.metrics.walResumedCases.Add(1)
		caseSpan.Event("case_resumed")
		caseSpan.End()
		return res, nil
	}
	caseStart := time.Now()
	counting := trainer.ObserverFunc(func(trainer.Event) { s.metrics.events.Add(1) })
	run := func() (*trainer.Result, error) {
		sim := caseSpan.Start("simulate")
		res, err := trainer.RunContext(ctx, j.cfg, counting, j.bc)
		if err == nil {
			experiments.TraceEpochs(sim, j.cfg, res)
		}
		sim.End()
		return res, err
	}
	var res *trainer.Result
	var err error
	if s.memo != nil && j.jobSpec != nil {
		if key, kerr := experiments.CaseKey(*j.jobSpec, j.opts, s.memo.Salt()); kerr == nil {
			var hit bool
			res, hit, err = s.memo.Do(ctx, key, run)
			caseSpan.Event("memo_lookup").SetAttr("hit", strconv.FormatBool(hit))
		} else {
			res, err = run()
		}
	} else {
		res, err = run()
	}
	if err != nil {
		caseSpan.SetAttr("error", err.Error())
		caseSpan.End()
		return nil, err
	}
	s.walCaseDone(j, 0, res)
	s.metrics.caseSecs.Observe(time.Since(caseStart).Seconds())
	caseSpan.End()
	return res, nil
}
