package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/trainer"
)

// newWorker boots one real stallserved worker (optionally wrapped by mw)
// and returns its base URL.
func newWorker(t *testing.T, cfg Config, mw func(http.Handler) http.Handler) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(srv.Handler())
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// newCoordinatorServer boots a coordinator over the given worker URLs with
// fast retry backoff.
func newCoordinatorServer(t *testing.T, urls []string, extra func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:      2,
		WorkerURLs:   urls,
		RetryBackoff: 5 * time.Millisecond,
	}
	if extra != nil {
		extra(&cfg)
	}
	return newTestServer(t, cfg)
}

// specReportJSON fetches a completed job's report and the in-process
// RunSpec rendering of the same spec, both as canonical JSON.
func specReportJSON(t *testing.T, ts *httptest.Server, id string, raw []byte) (viaHTTP, inProcess string) {
	t.Helper()
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+id)
	var v jobJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Report == nil {
		t.Fatalf("completed spec job has no report: %s", body)
	}
	hb, err := json.Marshal(v.Report)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := experiments.LoadSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.RunSpec(context.Background(), sp, experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(toReportJSON(direct))
	if err != nil {
		t.Fatal(err)
	}
	return string(hb), string(db)
}

// TestCoordinatorByteIdentical is the distributed fidelity guarantee: a
// spec scattered across two real workers gathers into a report
// byte-identical to the in-process RunSpec.
func TestCoordinatorByteIdentical(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := newWorker(t, Config{Workers: 2}, nil)
	_, w2 := newWorker(t, Config{Workers: 2}, nil)
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, nil)

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	viaHTTP, inProcess := specReportJSON(t, ts, id, raw)
	if viaHTTP != inProcess {
		t.Fatalf("coordinator result differs from in-process RunSpec:\ncoord:  %s\ndirect: %s", viaHTTP, inProcess)
	}
	if coord.metrics.casesDispatched.Load() < 10 {
		t.Fatalf("dispatched %d cases, want >= 10", coord.metrics.casesDispatched.Load())
	}

	// A single job forwarded whole is just as faithful.
	jid := submitID(t, ts, tinyJob)
	if st := waitTerminal(t, coord, jid, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	_, body := getJSON(t, ts.URL+"/v1/jobs/"+jid)
	var v jobJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil || v.Result == nil {
		t.Fatalf("forwarded job has no result: %s", body)
	}
	var js experiments.JobSpec
	if err := json.Unmarshal([]byte(`{"model": "resnet18", "scale": 0.005, "epochs": 2}`), &js); err != nil {
		t.Fatal(err)
	}
	cfg, err := js.Build(experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := trainer.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(v.Result)
	want, _ := json.Marshal(direct)
	if string(got) != string(want) {
		t.Fatalf("forwarded job result differs:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestCoordinatorRetriesWorker500 injects 500s on the fleet's first two
// submits (whichever workers receive them — case routing depends on the
// listeners' ports): the affected cases re-route with backoff, the health
// probe restores the blamed workers, and the gathered report still
// byte-matches RunSpec.
func TestCoordinatorRetriesWorker500(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	var fails atomic.Int64
	fails.Store(2)
	flaky := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && fails.Add(-1) >= 0 {
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	_, w1 := newWorker(t, Config{Workers: 2}, flaky)
	_, w2 := newWorker(t, Config{Workers: 2}, flaky)
	// Backoff wide enough that the 250ms health probe can restore a blamed
	// worker even if both eat an injected 500 at the same instant.
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, func(c *Config) {
		c.RetryBackoff = 150 * time.Millisecond
	})

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	viaHTTP, inProcess := specReportJSON(t, ts, id, raw)
	if viaHTTP != inProcess {
		t.Fatalf("report after 500 re-routing differs from RunSpec")
	}
	if fails.Load() >= 0 {
		t.Fatalf("the flaky worker was never hit (%d injections left)", fails.Load()+1)
	}
	if coord.metrics.caseRetries.Load() == 0 {
		t.Fatal("no retries counted despite injected 500s")
	}
}

// TestCoordinatorRetriesRemotePanic injects a fleet whose first job
// panics (captured by the serving worker's own isolation into a failed
// record): the coordinator treats the captured panic as a worker fault,
// re-routes, and the report still byte-matches RunSpec. The panic budget
// is shared across both workers so the test holds regardless of which
// worker consistent hashing picks first.
func TestCoordinatorRetriesRemotePanic(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	var panics atomic.Int64
	panics.Store(1)
	seam := func(ctx context.Context, j *Job) (*experiments.Report, *trainer.Result, error) {
		if panics.Add(-1) >= 0 {
			panic("injected crash")
		}
		res, err := trainer.RunContext(ctx, j.cfg)
		return nil, res, err
	}
	_, w1 := newWorker(t, Config{Workers: 2, runJob: seam}, nil)
	_, w2 := newWorker(t, Config{Workers: 2, runJob: seam}, nil)
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, func(c *Config) {
		// Backoff wide enough that the 250ms health probe restores the
		// blamed worker before the per-case retry budget runs out.
		c.RetryBackoff = 150 * time.Millisecond
	})

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	viaHTTP, inProcess := specReportJSON(t, ts, id, raw)
	if viaHTTP != inProcess {
		t.Fatalf("report after remote panic re-routing differs from RunSpec")
	}
	if panics.Load() >= 0 {
		t.Fatal("the panicking worker was never hit")
	}
}

// TestCoordinatorSurvivesWorkerDeath kills one worker outright mid-sweep —
// connections refused, not clean errors — and requires the merged report
// to still byte-match the single-node run.
func TestCoordinatorSurvivesWorkerDeath(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	// Count submits per worker and kill whichever receives a case first —
	// consistent hashing decides the victim, so pinning one ahead of time
	// would flake whenever the ring routes the whole grid elsewhere.
	// Workers:1 keeps the victim busy long enough that closing it after
	// its first accepted submit strands at least that case mid-run.
	var hits [2]atomic.Int64
	countFor := func(n *atomic.Int64) func(http.Handler) http.Handler {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
					n.Add(1)
				}
				next.ServeHTTP(w, r)
			})
		}
	}
	_, w1 := newWorker(t, Config{Workers: 1}, countFor(&hits[0]))
	_, w2 := newWorker(t, Config{Workers: 1}, countFor(&hits[1]))
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, nil)

	id := submitID(t, ts, `{"spec": `+string(raw)+`}`)
	deadline := time.After(60 * time.Second)
	for hits[0].Load() == 0 && hits[1].Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no worker ever received a case")
		case <-time.After(time.Millisecond):
		}
	}
	victim := w1
	if hits[1].Load() > 0 {
		victim = w2
	}
	victim.CloseClientConnections()
	victim.Close()

	if st := waitTerminal(t, coord, id, 120*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s (%s)", st, coord.store.get(id).view(true).Error)
	}
	viaHTTP, inProcess := specReportJSON(t, ts, id, raw)
	if viaHTTP != inProcess {
		t.Fatalf("report after worker death differs from RunSpec")
	}
	// The dead worker must be marked unhealthy (nothing restores it: the
	// listener is gone for good).
	_, text := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(text, "stallserved_fleet_workers 2") ||
		!strings.Contains(text, "stallserved_fleet_workers_healthy 1") {
		t.Fatalf("fleet gauges after death:\n%s", text)
	}
}

// TestCoordinatorPermanentFailure: a workload that fails deterministically
// (spec whose base has no scale) must fail the job without burning retries
// on other workers.
func TestCoordinatorPermanentFailure(t *testing.T) {
	_, w1 := newWorker(t, Config{Workers: 1}, nil)
	_, w2 := newWorker(t, Config{Workers: 1}, nil)
	coord, ts := newCoordinatorServer(t, []string{w1.URL, w2.URL}, nil)

	id := submitID(t, ts, `{"spec": {"name": "noscale", "row_header": ["model"],
		"base": {"model": "resnet18", "epochs": 1},
		"rows": {"cases": [{"set": {}}]},
		"columns": [{"label": "s", "metric": "epoch_s"}]}}`)
	if st := waitTerminal(t, coord, id, 60*time.Second); st != StatusFailed {
		t.Fatalf("no-scale spec ended %s, want failed", st)
	}
	if n := coord.metrics.caseRetries.Load(); n != 0 {
		t.Fatalf("%d retries burned on a deterministic failure", n)
	}
}

// postJSONTenant posts with an X-Tenant header.
func postJSONTenant(t *testing.T, url, tenant, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestTenantQuota: a tenant at its active-job bound gets 429
// quota_exceeded; other tenants are unaffected; finishing a job frees the
// slot.
func TestTenantQuota(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, TenantQuota: 1, runJob: blockingRunner(release),
	})

	// Anonymous tenant fills its quota of one.
	first := submitID(t, ts, tinyJob)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", tinyJob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %s", resp.StatusCode, body)
	}
	if e := decodeEnvelope(t, body); e.Error.Code != codeQuotaExceeded {
		t.Fatalf("code %q, want %q", e.Error.Code, codeQuotaExceeded)
	}

	// A named tenant has its own bound.
	resp, body = postJSONTenant(t, ts.URL+"/v1/jobs", "alice", tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's first submit: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSONTenant(t, ts.URL+"/v1/jobs", "alice", tinyJob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: %d %s", resp.StatusCode, body)
	}

	// Quota slots free when jobs finish.
	close(release)
	if st := waitTerminal(t, srv, first, 30*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = postJSON(t, ts.URL+"/v1/jobs", tinyJob)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %d %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The rejections were counted.
	_, text := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(text, "stallserved_jobs_quota_rejected_total 2") {
		t.Fatalf("quota_rejected_total:\n%s", text)
	}

	// The recorded tenant survives the wire form.
	_, jb := getJSON(t, ts.URL+"/v1/jobs")
	if !strings.Contains(jb, `"tenant": "alice"`) {
		t.Fatalf("tenant missing from job listing:\n%s", jb)
	}
}
