package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRestartKeepsQueryHistory: persist snapshots carry the per-case
// capture, so after a restart /v1/query serves exactly the rows it served
// before — a restart must not silently erase query history.
func TestRestartKeepsQueryHistory(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 2, PersistDir: dir})
	jobID := submitID(t, ts, tinyJob)
	specID := submitID(t, ts, tinySpec)
	for _, id := range []string{jobID, specID} {
		if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
			t.Fatalf("job %s ended %s", id, st)
		}
	}
	_, before := getJSON(t, ts.URL+"/v1/query")
	if n := len(strings.Split(strings.TrimRight(before, "\n"), "\n")); n != 3 {
		t.Fatalf("pre-restart scan has %d rows, want 3 (1 job + 2 spec cells):\n%s", n, before)
	}

	_, ts2 := newTestServer(t, Config{Workers: 2, PersistDir: dir})
	_, after := getJSON(t, ts2.URL+"/v1/query")
	if after != before {
		t.Fatalf("query history changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}

	// The rehydrated single job carries its resolved identity from the
	// snapshot, not a zero config.
	_, row := getJSON(t, ts2.URL+"/v1/query?q="+`{"where":[{"col":"spec","op":"eq","value":"`+jobID+`"}],"select":["spec","model","loader","epochs"]}`)
	if !strings.Contains(row, `"model":"resnet18"`) || !strings.Contains(row, `"epochs":2`) {
		t.Fatalf("rehydrated job identity wrong: %s", row)
	}
}

// TestMaxRecordsEnforcedAtReload: a restart over a persist dir larger than
// MaxRecords must apply the bound at load time, not only after the next
// job finishes.
func TestMaxRecordsEnforcedAtReload(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	for i := 0; i < 4; i++ {
		id := submitID(t, ts, tinyJob)
		if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
			t.Fatalf("job ended %s", st)
		}
	}

	srv2, _ := newTestServer(t, Config{Workers: 1, MaxRecords: 2, PersistDir: dir})
	if n := srv2.store.count(); n != 2 {
		t.Fatalf("reloaded store holds %d records, want MaxRecords=2 applied at load", n)
	}
}

// cancelOnWrite cancels the request context as soon as the first response
// byte is written — a deterministic stand-in for a mid-stream failure.
type cancelOnWrite struct {
	*httptest.ResponseRecorder
	cancel context.CancelFunc
	wrote  bool
}

func (c *cancelOnWrite) Write(p []byte) (int, error) {
	n, err := c.ResponseRecorder.Write(p)
	if !c.wrote {
		c.wrote = true
		c.cancel()
	}
	return n, err
}

// TestQueryStreamErrorLine: a /v1/query stream that dies mid-result must
// end with a typed {"error":{...}} NDJSON line, so clients can tell an
// aborted stream from a complete one.
func TestQueryStreamErrorLine(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := submitID(t, ts, tinySpec)
	if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job ended %s", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"select":["case_id"]}`)).WithContext(ctx)
	w := &cancelOnWrite{ResponseRecorder: httptest.NewRecorder(), cancel: cancel}
	srv.Handler().ServeHTTP(w, req)

	body := w.Body.String()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want at least one row plus the error line, got:\n%s", body)
	}
	if lines[0] != `{"case_id":0}` {
		t.Fatalf("first row %q", lines[0])
	}
	last := lines[len(lines)-1]
	e := decodeEnvelope(t, last)
	if e.Error.Code != codeInternal || !strings.Contains(e.Error.Message, "stream aborted after 1 rows") {
		t.Fatalf("terminal error line %q", last)
	}
}
