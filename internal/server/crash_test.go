package server

// The kill -9 fault-injection battery. One uninterrupted golden run
// produces the WAL record stream and the golden outputs; wal.CopyPrefix
// then synthesizes the exact on-disk state of a crash after every single
// append (plus torn-tail variants), and a fresh server boots on each one.
// The properties checked at every crash point:
//
//   - recovery succeeds (New returns no error, jobs reach terminal);
//   - every job recovered or resumed finishes with a report/result
//     byte-identical to the uninterrupted run (resumed cells are served
//     from the log, fresh cells re-simulated — the simulation is
//     deterministic, and trainer.Result round-trips JSON exactly);
//   - /v1/query history bytes match the no-crash golden run;
//   - the PRAM trace checker (wal.Trace) finds no stale-after-fresh read:
//     state a client observed as durable before the crash is never served
//     at an older version after recovery.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datastall/internal/experiments"
	"datastall/internal/wal"
)

// crashQuery lists every case row with all columns in case_id order — the
// strongest deterministic byte-compare the query surface offers.
const crashQuery = `{"order_by":[{"col":"case_id"}]}`

// goldenArtifacts is everything the battery compares against.
type goldenArtifacts struct {
	walDir  string
	records []wal.Record
	specID  string
	jobID   string
	// report and result are the raw JSON payloads of the spec job's
	// report and the single job's result; query is the /v1/query body.
	report string
	result string
	query  string
}

// outputJSON extracts one field's raw JSON from GET /v1/jobs/{id}.
func outputJSON(t *testing.T, tsURL, id, field string) string {
	t.Helper()
	resp, body := getJSON(t, tsURL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", id, resp.StatusCode, body)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("job %s body: %v", id, err)
	}
	if len(m[field]) == 0 {
		t.Fatalf("job %s has no %q field: %s", id, field, body)
	}
	return string(m[field])
}

func queryBody(t *testing.T, tsURL string) string {
	t.Helper()
	resp, body := getJSON(t, tsURL+"/v1/query?q="+url.QueryEscape(crashQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	return body
}

// runGolden executes the workload — a two-cell spec sweep plus a single
// job — uninterrupted on a WAL-enabled single worker and captures the
// golden artifacts. The job is submitted only after the spec completes:
// that makes the global record order deterministic (all spec records
// strictly precede all job records), so prefix-based expectations — like
// "a prefix ending at the spec's first case_done holds exactly one
// interrupted job" — hold on every machine, not just ones where the
// second submission happens to lose the race against the first case.
func runGolden(t *testing.T) goldenArtifacts {
	t.Helper()
	g := goldenArtifacts{walDir: filepath.Join(t.TempDir(), "wal")}
	srv, ts := newTestServer(t, Config{Workers: 1, WALDir: g.walDir})
	g.specID = submitID(t, ts, tinySpec)
	if st := waitTerminal(t, srv, g.specID, 60*time.Second); st != StatusCompleted {
		t.Fatalf("golden job %s ended %s", g.specID, st)
	}
	g.jobID = submitID(t, ts, tinyJob)
	if st := waitTerminal(t, srv, g.jobID, 60*time.Second); st != StatusCompleted {
		t.Fatalf("golden job %s ended %s", g.jobID, st)
	}
	g.report = outputJSON(t, ts.URL, g.specID, "report")
	g.result = outputJSON(t, ts.URL, g.jobID, "result")
	g.query = queryBody(t, ts.URL)

	rec, err := wal.ReadAll(g.walDir)
	if err != nil {
		t.Fatalf("golden wal: %v", err)
	}
	if rec.LoadErrors != 0 {
		t.Fatalf("golden wal has %d load errors", rec.LoadErrors)
	}
	g.records = rec.Records
	if len(g.records) < 8 {
		t.Fatalf("golden wal has only %d records: %+v", len(g.records), g.records)
	}
	return g
}

// unitVersion is the durability version of one job within a record slice:
// 1 for its submitted record, +1 per case_done, +1 for terminal — the
// client-visible facts a crash must not roll back (started/cancel records
// carry no results and don't count).
func unitVersion(records []wal.Record, id string) int {
	v := 0
	for _, r := range records {
		if r.JobID != id {
			continue
		}
		switch r.Type {
		case wal.TypeSubmitted, wal.TypeCaseDone, wal.TypeTerminal:
			v++
		}
	}
	return v
}

// observedVersion measures the same unit version from a recovered server's
// state: job present (submitted) + recovered cells + terminal-at-boot.
func observedVersion(srv *Server, id string) int {
	j := srv.store.get(id)
	if j == nil {
		return 0
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	resumed := len(j.resume)
	j.mu.Unlock()
	if terminal {
		return 1 + len(j.caseResults()) + 1
	}
	return 1 + resumed
}

// TestCrashBatteryEveryAppend is the tentpole property test: for every N,
// a kill -9 immediately after the Nth WAL append recovers to byte-identical
// outputs, with torn-tail variants layered on top.
func TestCrashBatteryEveryAppend(t *testing.T) {
	g := runGolden(t)
	trace := &wal.Trace{}
	jobs := []string{g.specID, g.jobID}
	// The golden record stream is the write history.
	for i := range g.records {
		for _, id := range jobs {
			if g.records[i].JobID == id {
				trace.Write(id, unitVersion(g.records[:i+1], id))
			}
		}
	}

	torn, err := wal.Encode(wal.Record{Type: wal.TypeCaseDone, JobID: g.specID, Payload: []byte(`{"index":9}`)})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(g.records); n++ {
		for _, tail := range []struct {
			name  string
			bytes []byte
		}{
			{"clean", nil},
			{"torn", torn[:len(torn)-5]}, // a frame cut mid-payload, as a crash mid-write leaves
		} {
			t.Run(fmt.Sprintf("append-%02d-%s", n, tail.name), func(t *testing.T) {
				crashDir := filepath.Join(t.TempDir(), "wal")
				if err := wal.CopyPrefix(g.walDir, crashDir, n, tail.bytes); err != nil {
					t.Fatalf("CopyPrefix: %v", err)
				}
				prefix := g.records[:n]
				client := fmt.Sprintf("restart-%d-%s", n, tail.name)
				// What a client had durably observed before the crash.
				for _, id := range jobs {
					if v := unitVersion(prefix, id); v > 0 {
						trace.Read(client, id, v)
					}
				}

				srv, ts := newTestServer(t, Config{Workers: 1, WALDir: crashDir})
				// Stale-after-fresh guard: a job whose terminal record was
				// durable must come back terminal, never re-queued.
				for _, id := range jobs {
					hasTerminal := false
					for _, r := range prefix {
						if r.JobID == id && r.Type == wal.TypeTerminal {
							hasTerminal = true
						}
					}
					if hasTerminal && !srv.store.get(id).StatusNow().Terminal() {
						t.Fatalf("job %s had a durable terminal record but recovered %s", id, srv.store.get(id).StatusNow())
					}
					if v := observedVersion(srv, id); v > 0 {
						trace.Read(client, id, v)
					}
				}

				// Every job the prefix knows must finish with golden bytes.
				both := true
				for _, id := range jobs {
					if unitVersion(prefix, id) == 0 {
						both = false
						continue // submission never became durable: the job is simply gone
					}
					if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
						t.Fatalf("recovered job %s ended %s", id, st)
					}
				}
				if unitVersion(prefix, g.specID) > 0 {
					if got := outputJSON(t, ts.URL, g.specID, "report"); got != g.report {
						t.Fatalf("resumed report differs from golden:\n got %s\nwant %s", got, g.report)
					}
				}
				if unitVersion(prefix, g.jobID) > 0 {
					if got := outputJSON(t, ts.URL, g.jobID, "result"); got != g.result {
						t.Fatalf("resumed result differs from golden:\n got %s\nwant %s", got, g.result)
					}
				}
				if both {
					if got := queryBody(t, ts.URL); got != g.query {
						t.Fatalf("recovered /v1/query differs from golden:\n got %q\nwant %q", got, g.query)
					}
				}

				// Load-error accounting: clean prefixes recover silently,
				// torn tails are counted and surfaced on /healthz.
				loadErrs := srv.metrics.persistLoadErrors.Load()
				if tail.bytes == nil && loadErrs != 0 {
					t.Fatalf("clean prefix reported %d load errors", loadErrs)
				}
				if tail.bytes != nil && loadErrs == 0 {
					t.Fatal("torn tail not counted as a load error")
				}
				resp, body := getJSON(t, ts.URL+"/healthz")
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("healthz: %d", resp.StatusCode)
				}
				var hz struct {
					Persist struct {
						LoadErrors int64 `json:"load_errors"`
						WAL        struct {
							Records     int `json:"records"`
							ResumedJobs int `json:"resumed_jobs"`
						} `json:"wal"`
					} `json:"persist"`
				}
				if err := json.Unmarshal([]byte(body), &hz); err != nil {
					t.Fatalf("healthz body: %v", err)
				}
				if hz.Persist.LoadErrors != loadErrs {
					t.Fatalf("healthz load_errors %d, metric %d", hz.Persist.LoadErrors, loadErrs)
				}
				if hz.Persist.WAL.Records != n {
					t.Fatalf("healthz wal.records %d, want %d", hz.Persist.WAL.Records, n)
				}
			})
		}
	}
	if err := trace.Check(); err != nil {
		t.Fatalf("trace checker: %v", err)
	}
	if trace.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
}

// TestCrashRecoveryResumesNotReruns: a prefix holding one of the spec's
// two case_done records must resume — serve that cell from the log (the
// resumed-cases counter moves) and still produce golden bytes.
func TestCrashRecoveryResumesNotReruns(t *testing.T) {
	g := runGolden(t)
	// Find the prefix ending right after the spec's first case_done.
	n := -1
	for i, r := range g.records {
		if r.JobID == g.specID && r.Type == wal.TypeCaseDone {
			n = i + 1
			break
		}
	}
	if n < 0 {
		t.Fatal("golden wal has no spec case_done record")
	}
	crashDir := filepath.Join(t.TempDir(), "wal")
	if err := wal.CopyPrefix(g.walDir, crashDir, n, nil); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, WALDir: crashDir})
	if srv.metrics.walResumed.Load() != 1 {
		t.Fatalf("resumed jobs = %d, want 1", srv.metrics.walResumed.Load())
	}
	if st := waitTerminal(t, srv, g.specID, 60*time.Second); st != StatusCompleted {
		t.Fatalf("resumed spec ended %s", st)
	}
	if got := srv.metrics.walResumedCases.Load(); got != 1 {
		t.Fatalf("resumed cases = %d, want 1 (one cell from the log, one re-run)", got)
	}
	if got := outputJSON(t, ts.URL, g.specID, "report"); got != g.report {
		t.Fatalf("resumed report differs from golden:\n got %s\nwant %s", got, g.report)
	}
}

// TestCrashAfterCompactionReplaysCheckpoint: with compaction after every
// terminal, a restart replays history from the checkpoint and still serves
// golden query bytes.
func TestCrashAfterCompactionReplaysCheckpoint(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	srv, ts := newTestServer(t, Config{Workers: 1, WALDir: walDir, WALCompactEvery: 1})
	specID := submitID(t, ts, tinySpec)
	jobID := submitID(t, ts, tinyJob)
	for _, id := range []string{specID, jobID} {
		if st := waitTerminal(t, srv, id, 60*time.Second); st != StatusCompleted {
			t.Fatalf("job %s ended %s", id, st)
		}
	}
	if srv.metrics.walCompactions.Load() == 0 {
		t.Fatal("no compaction ran")
	}
	golden := queryBody(t, ts.URL)
	report := outputJSON(t, ts.URL, specID, "report")

	srv2, ts2 := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	for _, id := range []string{specID, jobID} {
		if st := srv2.store.get(id).StatusNow(); !st.Terminal() {
			t.Fatalf("job %s not terminal after checkpoint replay (%s)", id, st)
		}
	}
	if got := queryBody(t, ts2.URL); got != golden {
		t.Fatalf("post-checkpoint query differs:\n got %q\nwant %q", got, golden)
	}
	if got := outputJSON(t, ts2.URL, specID, "report"); got != report {
		t.Fatalf("post-checkpoint report differs:\n got %s\nwant %s", got, report)
	}
	if errs := srv2.metrics.persistLoadErrors.Load(); errs != 0 {
		t.Fatalf("checkpoint replay reported %d load errors", errs)
	}
}

// TestCrashHonoursCancelVerdict: a WAL holding submitted + started +
// cancel_requested (the crash beat the worker's terminal record) must
// recover the job as cancelled — the client was already told so.
func TestCrashHonoursCancelVerdict(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	l, _, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := json.Marshal(walSubmitted{
		Kind: KindJob, Name: "resnet18", SubmittedAt: time.Now().UTC(),
		Job: jobSpecFor(t, tinyJob),
	})
	for _, rec := range []wal.Record{
		{Type: wal.TypeSubmitted, JobID: "job-000001", Payload: sub},
		{Type: wal.TypeStarted, JobID: "job-000001", Payload: []byte(`{"started_at":"2026-01-01T00:00:00Z"}`)},
		{Type: wal.TypeCancelRequested, JobID: "job-000001", Payload: []byte(`{}`)},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	j := srv.store.get("job-000001")
	if j == nil {
		t.Fatal("cancelled job not recovered")
	}
	if st := j.StatusNow(); st != StatusCancelled {
		t.Fatalf("recovered status %s, want cancelled", st)
	}
	resp, body := getJSON(t, ts.URL+"/v1/jobs/job-000001")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"cancelled"`) {
		t.Fatalf("GET recovered job: %d %s", resp.StatusCode, body)
	}
}

// jobSpecFor parses a submit body's "job" field into a JobSpec.
func jobSpecFor(t *testing.T, body string) *experiments.JobSpec {
	t.Helper()
	var v struct {
		Job *experiments.JobSpec `json:"job"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil || v.Job == nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return v.Job
}

// TestWALSurvivesRestartWithNewSubmissions: history accumulates across
// restarts — jobs from run 1 stay queryable in run 2 alongside new work,
// and a third boot sees everything.
func TestWALSurvivesRestartWithNewSubmissions(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	srv1, ts1 := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	id1 := submitID(t, ts1, tinyJob)
	if st := waitTerminal(t, srv1, id1, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job %s ended %s", id1, st)
	}
	result1 := outputJSON(t, ts1.URL, id1, "result")
	ts1.Close()
	srv1.Close()

	srv2, ts2 := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	if got := outputJSON(t, ts2.URL, id1, "result"); got != result1 {
		t.Fatalf("run-2 result for %s differs from run 1", id1)
	}
	id2 := submitID(t, ts2, tinyJob)
	if id2 == id1 {
		t.Fatalf("recovered sequence re-issued id %s", id1)
	}
	if st := waitTerminal(t, srv2, id2, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job %s ended %s", id2, st)
	}
	ts2.Close()
	srv2.Close()

	srv3, ts3 := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	for _, id := range []string{id1, id2} {
		if j := srv3.store.get(id); j == nil || !j.StatusNow().Terminal() {
			t.Fatalf("job %s missing after third boot", id)
		}
	}
	if got := outputJSON(t, ts3.URL, id1, "result"); got != result1 {
		t.Fatal("third boot lost run-1 result bytes")
	}
}

// TestSnapshotMigratesIntoWAL: a legacy -persist snapshot loads next to
// the WAL and the first compaction folds it into the checkpoint, so the
// snapshot directory can be dropped afterwards.
func TestSnapshotMigratesIntoWAL(t *testing.T) {
	persistDir := t.TempDir()
	walDir := filepath.Join(t.TempDir(), "wal")

	// Run 1: snapshots only (the legacy deployment).
	srv1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: persistDir})
	id1 := submitID(t, ts1, tinyJob)
	if st := waitTerminal(t, srv1, id1, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job %s ended %s", id1, st)
	}
	result1 := outputJSON(t, ts1.URL, id1, "result")
	ts1.Close()
	srv1.Close()

	// Run 2: both flags during the migration window; a new job's terminal
	// triggers compaction, which gathers the snapshot-loaded job too.
	srv2, ts2 := newTestServer(t, Config{Workers: 1, PersistDir: persistDir, WALDir: walDir, WALCompactEvery: 1})
	if got := outputJSON(t, ts2.URL, id1, "result"); got != result1 {
		t.Fatal("snapshot job not loaded in migration run")
	}
	id2 := submitID(t, ts2, tinyJob)
	if st := waitTerminal(t, srv2, id2, 60*time.Second); st != StatusCompleted {
		t.Fatalf("job %s ended %s", id2, st)
	}
	ts2.Close()
	srv2.Close()

	// Run 3: WAL only — the snapshot history must have migrated.
	srv3, ts3 := newTestServer(t, Config{Workers: 1, WALDir: walDir})
	defer func() { _ = srv3 }()
	if got := outputJSON(t, ts3.URL, id1, "result"); got != result1 {
		t.Fatal("snapshot job lost after migration to WAL-only")
	}
}

// TestPersistLoadErrorsCounted: corrupt snapshots are counted in the new
// metric and on /healthz instead of only being logged.
func TestPersistLoadErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	if err := wal.AtomicWriteFile(filepath.Join(dir, "job-000007.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	if got := srv.metrics.persistLoadErrors.Load(); got != 1 {
		t.Fatalf("persistLoadErrors = %d, want 1", got)
	}
	_, body := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(body, "stallserved_persist_load_errors_total 1") {
		t.Fatalf("metrics missing load error counter:\n%s", body)
	}
	resp, hz := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(hz, `"load_errors": 1`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, hz)
	}
}
