// Package dataset models the training datasets from the paper (Table 1):
// item counts, per-item sizes, and the per-epoch access-order samplers used
// by the data loaders.
//
// Only the metadata of a dataset matters to the data pipeline — how many
// items there are, how large each is, and in what order an epoch visits them
// — so a Dataset is a catalog entry plus a deterministic item-size model.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// ItemID identifies a data item (an image/audio file) within a dataset.
type ItemID int32

// Dataset describes one training dataset.
type Dataset struct {
	Name       string
	Task       string  // "image", "detection", "audio"
	NumItems   int     // number of raw items
	TotalBytes float64 // total dataset size in bytes
	seed       int64
	// sizeSpread controls the lognormal-ish spread of item sizes around
	// the mean (0 = all items identical).
	sizeSpread float64
}

// AvgItemBytes returns the mean item size.
func (d *Dataset) AvgItemBytes() float64 {
	return d.TotalBytes / float64(d.NumItems)
}

// ItemBytes returns the deterministic size of item id. Sizes follow a
// two-point mixture around the mean (mean preserved exactly in expectation)
// so caches see realistic variance without requiring a size table in memory.
func (d *Dataset) ItemBytes(id ItemID) float64 {
	if d.sizeSpread == 0 {
		return d.AvgItemBytes()
	}
	// Deterministic hash of (seed, id) -> [0,1).
	h := uint64(d.seed)*0x9E3779B97F4A7C15 + uint64(uint32(id))*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	u := float64(h%1_000_003) / 1_000_003.0
	// Symmetric triangular-ish multiplier in [1-spread, 1+spread], mean 1.
	return d.AvgItemBytes() * (1 + d.sizeSpread*(2*u-1))
}

// Scale returns a copy of d with item count and total size scaled by f
// (0 < f <= 1). Scaling items and cache bytes together preserves all hit
// ratios and rate comparisons while making simulations fast; see DESIGN.md.
func (d *Dataset) Scale(f float64) *Dataset {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("dataset: invalid scale %v", f))
	}
	n := int(math.Round(float64(d.NumItems) * f))
	if n < 64 {
		n = 64
	}
	out := *d
	out.NumItems = n
	out.TotalBytes = d.AvgItemBytes() * float64(n)
	return &out
}

// Catalog entries for the paper's datasets (Table 1). Item counts derive
// from the published dataset sizes and average item sizes the paper quotes
// (ImageNet-1k ~115 KB avg over 1.28M items; ImageNet-22k ~90 KB avg;
// OpenImages ~300 KB avg; FMA ~8.9 MB avg audio tracks).
var (
	ImageNet1K = &Dataset{
		Name: "imagenet-1k", Task: "image",
		NumItems: 1_281_167, TotalBytes: 146 * gib,
		seed: 101, sizeSpread: 0.6,
	}
	ImageNet22K = &Dataset{
		Name: "imagenet-22k", Task: "image",
		NumItems: 14_200_000, TotalBytes: 1.3 * tib,
		seed: 102, sizeSpread: 0.6,
	}
	OpenImages = &Dataset{
		Name: "openimages", Task: "image",
		NumItems: 2_255_000, TotalBytes: 645 * gib,
		seed: 103, sizeSpread: 0.6,
	}
	OpenImagesDet = &Dataset{
		Name: "openimages-det", Task: "detection",
		NumItems: 1_961_000, TotalBytes: 561 * gib,
		seed: 104, sizeSpread: 0.6,
	}
	FMA = &Dataset{
		Name: "fma", Task: "audio",
		NumItems: 106_574, TotalBytes: 950 * gib,
		seed: 105, sizeSpread: 0.3,
	}
	// Text corpora for the language models the paper's §3.1 evaluates and
	// excludes from the stall analysis (no data stalls): Wikipedia +
	// BookCorpus for BERT-Large, WMT16 En-De for GNMT.
	WikiBooks = &Dataset{
		Name: "wiki-bookcorpus", Task: "text",
		NumItems: 12_000_000, TotalBytes: 25 * gib,
		seed: 106, sizeSpread: 0.5,
	}
	WMT16 = &Dataset{
		Name: "wmt16", Task: "text",
		NumItems: 4_500_000, TotalBytes: 1.4 * gib,
		seed: 107, sizeSpread: 0.5,
	}
)

const (
	gib = 1024.0 * 1024.0 * 1024.0
	tib = 1024.0 * gib
)

// ByName returns the catalog dataset with the given name.
func ByName(name string) (*Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// All returns the catalog datasets.
func All() []*Dataset {
	return []*Dataset{ImageNet1K, ImageNet22K, OpenImages, OpenImagesDet, FMA, WikiBooks, WMT16}
}

// Sampler produces the per-epoch access order over a shard of a dataset.
type Sampler interface {
	// EpochOrder returns the item visit order for the given epoch. The
	// returned slice is owned by the caller.
	EpochOrder(epoch int) []ItemID
	// EpochOrderInto writes the epoch's visit order into buf (grown if its
	// capacity is short) and returns it — the allocation-free path for
	// callers that recycle order buffers across epochs. The contents are
	// identical to EpochOrder's.
	EpochOrderInto(epoch int, buf []ItemID) []ItemID
	// Len returns the number of items per epoch.
	Len() int
}

// Shard is a contiguous-ID subset view used to split a dataset across
// servers or HP-search jobs. Items are the global IDs in the shard.
type Shard struct {
	Items []ItemID
}

// FullShard returns a shard covering the whole dataset.
func FullShard(d *Dataset) Shard {
	items := make([]ItemID, d.NumItems)
	for i := range items {
		items[i] = ItemID(i)
	}
	return Shard{Items: items}
}

// permInto writes the same permutation rand.Perm(n) would produce for rng
// into out (grown if its capacity is short) and returns it. It replicates
// rand.Perm's exact draw sequence — j := Intn(i+1); m[i] = m[j]; m[j] = i —
// directly over ItemIDs, so no scratch []int is allocated and shard
// contents are bit-identical to the historical ones.
func permInto(rng *rand.Rand, n int, out []ItemID) []ItemID {
	if cap(out) < n {
		out = make([]ItemID, n)
	} else {
		out = out[:n]
	}
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		out[i] = out[j]
		out[j] = ItemID(i)
	}
	return out
}

// SplitRandom splits the dataset into n random, disjoint, near-equal shards
// using the epoch-independent seed. This is the per-job static sharding used
// by partitioned caching and coordinated prep.
func SplitRandom(d *Dataset, n int, seed int64) []Shard {
	perm := permInto(rand.New(rand.NewSource(seed)), d.NumItems, nil)
	shards := make([]Shard, n)
	for s := range shards {
		// Shard s receives items perm[s], perm[s+n], ... — exactly
		// ceil((NumItems-s)/n) of them; pre-size so the fill never
		// reallocates.
		shards[s].Items = make([]ItemID, 0, (d.NumItems-s+n-1)/n)
	}
	for i, p := range perm {
		s := i % n
		shards[s].Items = append(shards[s].Items, p)
	}
	return shards
}

// RandomSampler visits a shard in a fresh uniform-random permutation each
// epoch — the DNN-training access pattern (random within an epoch, each item
// exactly once per epoch).
type RandomSampler struct {
	shard Shard
	seed  int64
}

// NewRandomSampler returns a sampler over shard with the given seed.
func NewRandomSampler(shard Shard, seed int64) *RandomSampler {
	return &RandomSampler{shard: shard, seed: seed}
}

// Len implements Sampler.
func (s *RandomSampler) Len() int { return len(s.shard.Items) }

// EpochOrder implements Sampler.
func (s *RandomSampler) EpochOrder(epoch int) []ItemID {
	return s.EpochOrderInto(epoch, nil)
}

// EpochOrderInto implements Sampler: same permutation, caller's buffer.
func (s *RandomSampler) EpochOrderInto(epoch int, buf []ItemID) []ItemID {
	rng := rand.New(rand.NewSource(s.seed + int64(epoch)*7919))
	n := len(s.shard.Items)
	if cap(buf) < n {
		buf = make([]ItemID, n)
	} else {
		buf = buf[:n]
	}
	copy(buf, s.shard.Items)
	rng.Shuffle(n, func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return buf
}

// SequentialSampler visits the shard in file order every epoch with a small
// in-memory shuffle window — DALI-seq / TFRecord-style access (§3.3.3,
// Table 3). The on-storage access order is what the cache sees.
type SequentialSampler struct {
	shard Shard
}

// NewSequentialSampler returns a sampler that replays file order each epoch.
func NewSequentialSampler(shard Shard) *SequentialSampler {
	return &SequentialSampler{shard: shard}
}

// Len implements Sampler.
func (s *SequentialSampler) Len() int { return len(s.shard.Items) }

// EpochOrder implements Sampler.
func (s *SequentialSampler) EpochOrder(epoch int) []ItemID {
	return s.EpochOrderInto(epoch, nil)
}

// EpochOrderInto implements Sampler.
func (s *SequentialSampler) EpochOrderInto(epoch int, buf []ItemID) []ItemID {
	n := len(s.shard.Items)
	if cap(buf) < n {
		buf = make([]ItemID, n)
	} else {
		buf = buf[:n]
	}
	copy(buf, s.shard.Items)
	return buf
}

// EpochShards splits the dataset into n random disjoint shards that change
// every epoch — the distributed-training partitioning where each server
// processes a random half/third/quarter of the data per epoch (§3.3.1).
func EpochShards(d *Dataset, n int, epoch int, seed int64) []Shard {
	shards, _ := EpochShardsInto(d, n, epoch, seed, nil)
	return shards
}

// EpochShardsInto is EpochShards writing through a reusable permutation
// buffer: the epoch permutation is written directly by index into buf
// (grown if its capacity is short) and the returned shards are disjoint
// subslices of it — one buffer for the whole epoch instead of a scratch
// []int plus one append-built slice per shard. The second result is the
// backing buffer to pass back next epoch. Shard contents are identical to
// EpochShards'.
func EpochShardsInto(d *Dataset, n, epoch int, seed int64, buf []ItemID) ([]Shard, []ItemID) {
	rng := rand.New(rand.NewSource(seed ^ (int64(epoch)+1)*104729))
	buf = permInto(rng, d.NumItems, buf)
	shards := make([]Shard, n)
	per := (d.NumItems + n - 1) / n
	for i := range shards {
		lo := i * per
		hi := lo + per
		if hi > d.NumItems {
			hi = d.NumItems
		}
		shards[i] = Shard{Items: buf[lo:hi]}
	}
	return shards, buf
}

// Batches groups an epoch order into minibatches of size b (last batch may
// be short).
func Batches(order []ItemID, b int) [][]ItemID {
	if b < 1 {
		panic("dataset: batch size must be >= 1")
	}
	var out [][]ItemID
	for i := 0; i < len(order); i += b {
		j := i + b
		if j > len(order) {
			j = len(order)
		}
		out = append(out, order[i:j])
	}
	return out
}
