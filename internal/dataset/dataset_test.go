package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogSizes(t *testing.T) {
	for _, d := range All() {
		if d.NumItems <= 0 || d.TotalBytes <= 0 {
			t.Fatalf("%s: bad catalog entry", d.Name)
		}
		if d.AvgItemBytes() <= 0 {
			t.Fatalf("%s: bad avg", d.Name)
		}
	}
	// Paper-quoted average sizes: ImageNet-22k ~90KB, OpenImages ~300KB.
	if avg := ImageNet22K.AvgItemBytes() / 1024; avg < 80 || avg > 110 {
		t.Fatalf("imagenet-22k avg %v KB, want ~90", avg)
	}
	if avg := OpenImages.AvgItemBytes() / 1024; avg < 250 || avg > 350 {
		t.Fatalf("openimages avg %v KB, want ~300", avg)
	}
	if avg := FMA.AvgItemBytes() / (1024 * 1024); avg < 7 || avg > 11 {
		t.Fatalf("fma avg %v MB, want ~9", avg)
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("imagenet-1k")
	if err != nil || d != ImageNet1K {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestItemBytesDeterministicAndMeanPreserving(t *testing.T) {
	d := OpenImages.Scale(0.01)
	sum := 0.0
	for i := 0; i < d.NumItems; i++ {
		a := d.ItemBytes(ItemID(i))
		b := d.ItemBytes(ItemID(i))
		if a != b {
			t.Fatal("item size not deterministic")
		}
		if a <= 0 {
			t.Fatalf("non-positive item size %v", a)
		}
		sum += a
	}
	mean := sum / float64(d.NumItems)
	if math.Abs(mean-d.AvgItemBytes())/d.AvgItemBytes() > 0.02 {
		t.Fatalf("mean %v deviates from %v", mean, d.AvgItemBytes())
	}
}

func TestScalePreservesAvg(t *testing.T) {
	d := ImageNet22K.Scale(0.001)
	if math.Abs(d.AvgItemBytes()-ImageNet22K.AvgItemBytes()) > 1 {
		t.Fatalf("scale changed avg: %v vs %v", d.AvgItemBytes(), ImageNet22K.AvgItemBytes())
	}
	if d.NumItems >= ImageNet22K.NumItems {
		t.Fatal("scale did not shrink")
	}
}

func TestRandomSamplerIsPermutation(t *testing.T) {
	d := ImageNet1K.Scale(0.001)
	s := NewRandomSampler(FullShard(d), 1)
	for epoch := 0; epoch < 3; epoch++ {
		order := s.EpochOrder(epoch)
		if len(order) != d.NumItems {
			t.Fatalf("epoch %d: len %d", epoch, len(order))
		}
		seen := make(map[ItemID]bool, len(order))
		for _, id := range order {
			if seen[id] {
				t.Fatalf("epoch %d: duplicate item %d", epoch, id)
			}
			seen[id] = true
		}
	}
}

func TestRandomSamplerVariesAcrossEpochs(t *testing.T) {
	d := ImageNet1K.Scale(0.001)
	s := NewRandomSampler(FullShard(d), 1)
	a, b := s.EpochOrder(0), s.EpochOrder(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("epochs suspiciously similar: %d/%d fixed points", same, len(a))
	}
}

func TestSequentialSamplerStable(t *testing.T) {
	d := ImageNet1K.Scale(0.001)
	s := NewSequentialSampler(FullShard(d))
	a, b := s.EpochOrder(0), s.EpochOrder(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequential order changed across epochs")
		}
	}
	if a[0] != 0 || a[1] != 1 {
		t.Fatal("sequential order not file order")
	}
}

func TestSplitRandomDisjointCover(t *testing.T) {
	d := OpenImages.Scale(0.005)
	shards := SplitRandom(d, 4, 7)
	seen := make(map[ItemID]int)
	total := 0
	for _, sh := range shards {
		total += len(sh.Items)
		for _, id := range sh.Items {
			seen[id]++
		}
	}
	if total != d.NumItems {
		t.Fatalf("shards cover %d of %d", total, d.NumItems)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d in %d shards", id, n)
		}
	}
	// Near-equal sizes.
	for _, sh := range shards {
		if math.Abs(float64(len(sh.Items))-float64(d.NumItems)/4) > 1 {
			t.Fatalf("imbalanced shard: %d", len(sh.Items))
		}
	}
}

func TestEpochShardsChangeEveryEpoch(t *testing.T) {
	d := ImageNet1K.Scale(0.001)
	a := EpochShards(d, 2, 0, 1)
	b := EpochShards(d, 2, 1, 1)
	inA := make(map[ItemID]bool)
	for _, id := range a[0].Items {
		inA[id] = true
	}
	overlap := 0
	for _, id := range b[0].Items {
		if inA[id] {
			overlap++
		}
	}
	// Random re-partition: expect ~50% overlap, not ~100%.
	if overlap > len(b[0].Items)*8/10 {
		t.Fatalf("epoch shards look static: overlap %d/%d", overlap, len(b[0].Items))
	}
	// Still disjoint cover within an epoch.
	total := len(a[0].Items) + len(a[1].Items)
	if total != d.NumItems {
		t.Fatalf("epoch shards cover %d of %d", total, d.NumItems)
	}
}

func TestBatches(t *testing.T) {
	order := []ItemID{0, 1, 2, 3, 4}
	bs := Batches(order, 2)
	if len(bs) != 3 || len(bs[0]) != 2 || len(bs[2]) != 1 {
		t.Fatalf("bad batching: %v", bs)
	}
}

// Property: SplitRandom always yields disjoint shards covering the dataset.
func TestSplitRandomProperty(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw)%8 + 1
		d := &Dataset{Name: "t", NumItems: 997, TotalBytes: 997 * 1000, seed: 1}
		shards := SplitRandom(d, n, seed)
		seen := make(map[ItemID]bool)
		total := 0
		for _, sh := range shards {
			total += len(sh.Items)
			for _, id := range sh.Items {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return total == d.NumItems
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: every epoch order from RandomSampler is a permutation of the shard.
func TestEpochOrderPermutationProperty(t *testing.T) {
	f := func(epoch uint8, seed int64) bool {
		d := &Dataset{Name: "t", NumItems: 503, TotalBytes: 503 * 1000, seed: 2}
		s := NewRandomSampler(FullShard(d), seed)
		order := s.EpochOrder(int(epoch))
		if len(order) != 503 {
			return false
		}
		seen := make([]bool, 503)
		for _, id := range order {
			if id < 0 || int(id) >= 503 || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
