package dataset

import (
	"math/rand"
	"testing"
)

// TestPermIntoMatchesRandPerm: permInto must replicate rand.Perm's draw
// sequence and output exactly — shard contents across the whole experiment
// registry (and the golden suite) depend on it.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		for _, seed := range []int64{1, 7, 104729} {
			want := rand.New(rand.NewSource(seed)).Perm(n)
			got := permInto(rand.New(rand.NewSource(seed)), n, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d seed=%d: len %d, want %d", n, seed, len(got), len(want))
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("n=%d seed=%d: perm[%d] = %d, want %d", n, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEpochOrderIntoMatchesEpochOrder: the buffer-reusing path returns the
// same order as the allocating one, and reusing a buffer across epochs
// never leaks the previous epoch's contents.
func TestEpochOrderIntoMatchesEpochOrder(t *testing.T) {
	d := &Dataset{Name: "t", NumItems: 500, TotalBytes: 500}
	for _, s := range []Sampler{
		NewRandomSampler(FullShard(d), 42),
		NewSequentialSampler(FullShard(d)),
	} {
		var buf []ItemID
		for epoch := 0; epoch < 4; epoch++ {
			want := s.EpochOrder(epoch)
			buf = s.EpochOrderInto(epoch, buf)
			if len(buf) != len(want) {
				t.Fatalf("epoch %d: len %d, want %d", epoch, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("epoch %d: order[%d] = %d, want %d", epoch, i, buf[i], want[i])
				}
			}
		}
	}
}

// TestEpochShardsIntoMatchesEpochShards: subslice-backed shards carry the
// same items as the historical per-shard-append construction, including
// when the permutation buffer is recycled across epochs.
func TestEpochShardsIntoMatchesEpochShards(t *testing.T) {
	d := &Dataset{Name: "t", NumItems: 1003, TotalBytes: 1003}
	var buf []ItemID
	for epoch := 0; epoch < 3; epoch++ {
		for _, n := range []int{1, 2, 3, 4, 8} {
			want := EpochShards(d, n, epoch, 99)
			var got []Shard
			got, buf = EpochShardsInto(d, n, epoch, 99, buf)
			if len(got) != len(want) {
				t.Fatalf("epoch %d n=%d: %d shards, want %d", epoch, n, len(got), len(want))
			}
			for s := range want {
				if len(got[s].Items) != len(want[s].Items) {
					t.Fatalf("epoch %d n=%d shard %d: len %d, want %d",
						epoch, n, s, len(got[s].Items), len(want[s].Items))
				}
				for i := range want[s].Items {
					if got[s].Items[i] != want[s].Items[i] {
						t.Fatalf("epoch %d n=%d shard %d item %d: %d, want %d",
							epoch, n, s, i, got[s].Items[i], want[s].Items[i])
					}
				}
			}
		}
	}
}

// TestEpochShardsIntoSharedBuffer: the shards are views over one buffer —
// no per-shard copies — and together cover it exactly.
func TestEpochShardsIntoSharedBuffer(t *testing.T) {
	d := &Dataset{Name: "t", NumItems: 100, TotalBytes: 100}
	shards, buf := EpochShardsInto(d, 4, 1, 7, nil)
	total := 0
	for s, sh := range shards {
		total += len(sh.Items)
		if len(sh.Items) == 0 {
			continue
		}
		if &sh.Items[0] != &buf[s*25] {
			t.Fatalf("shard %d is not a view over the shared buffer", s)
		}
	}
	if total != d.NumItems {
		t.Fatalf("shards cover %d items, want %d", total, d.NumItems)
	}
}
