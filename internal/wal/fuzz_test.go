package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecode throws arbitrary bytes at recovery as a segment file: it must
// never panic, must always return a clean (fully re-decodable) prefix, and
// repair-mode Open on the same bytes must leave a directory that appends
// and re-recovers consistently.
func FuzzDecode(f *testing.F) {
	good, _ := Encode(Record{Type: TypeCaseDone, JobID: "job-000001", Payload: []byte(`{"i":1}`)})
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-3])                         // torn tail
	f.Add(append(append([]byte{}, good...), good...)) // two records
	f.Add(append(append([]byte{}, good...), 0xde, 0xad, 0xbe, 0xef))
	flipped := append([]byte{}, good...)
	flipped[headerBytes+1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}) // huge length field
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Skip()
		}
		rec, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("ReadAll errored (must tolerate any bytes): %v", err)
		}
		// The recovered prefix must itself be a clean log: re-encode every
		// record and decode it back.
		for i, r := range rec.Records {
			buf, err := Encode(r)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			if _, _, ok := decodeFrame(buf, 0); !ok {
				t.Fatalf("record %d re-encoding does not decode", i)
			}
		}
		// The clean prefix must be a byte prefix of the input.
		var prefix []byte
		for _, r := range rec.Records {
			prefix, _ = appendFrame(prefix, r)
		}
		if !bytes.HasPrefix(data, prefix) {
			t.Fatalf("recovered records are not a byte prefix of the input")
		}

		// Repair mode: open, append one record, close, re-read. The result
		// must be exactly prefix + appended.
		l, rec2, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("repair-mode recovery found %d records, read-only found %d", len(rec2.Records), len(rec.Records))
		}
		extra := Record{Type: TypeTerminal, JobID: "job-000009", Payload: []byte(`{"ok":true}`)}
		if err := l.Append(extra); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		rec3, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("ReadAll after repair: %v", err)
		}
		if len(rec3.Records) != len(rec.Records)+1 {
			t.Fatalf("after repair+append: %d records, want %d", len(rec3.Records), len(rec.Records)+1)
		}
		last := rec3.Records[len(rec3.Records)-1]
		if last.Type != extra.Type || last.JobID != extra.JobID || string(last.Payload) != string(extra.Payload) {
			t.Fatalf("appended record corrupted: %+v", last)
		}
		if rec3.LoadErrors != 0 {
			t.Fatalf("repaired directory still reports %d load errors", rec3.LoadErrors)
		}
	})
}
