package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecord builds a deterministic record i.
func testRecord(i int) Record {
	payload, _ := json.Marshal(map[string]int{"seq": i})
	return Record{Type: TypeCaseDone, JobID: fmt.Sprintf("job-%06d", i%7), Payload: payload}
}

// openTest opens a log in a fresh temp dir with small segments so tests
// exercise rotation.
func openTest(t *testing.T, opt Options) (*Log, Recovery, string) {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	l, rec, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec, opt.Dir
}

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].JobID != want[i].JobID || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := testRecord(42)
	buf, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, next, ok := decodeFrame(buf, 0)
	if !ok {
		t.Fatal("decodeFrame rejected its own encoding")
	}
	if next != int64(len(buf)) {
		t.Fatalf("next = %d, want %d", next, len(buf))
	}
	if got.Type != want.Type || got.JobID != want.JobID || string(got.Payload) != string(want.Payload) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestAppendReopenReplaysAll(t *testing.T) {
	l, rec, dir := openTest(t, Options{})
	if len(rec.Records) != 0 || rec.LoadErrors != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	var want []Record
	for i := 0; i < 25; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec2, _ := openTest(t, Options{Dir: dir})
	defer l2.Close()
	sameRecords(t, rec2.Records, want)
	if rec2.LoadErrors != 0 {
		t.Fatalf("LoadErrors = %d on a clean log", rec2.LoadErrors)
	}
}

// TestTornTailEveryOffset is the file-level torn-write battery: an
// uninterrupted log image truncated at EVERY byte offset must recover to
// exactly the whole-frame prefix, with a load error counted iff bytes
// were dropped.
func TestTornTailEveryOffset(t *testing.T) {
	l, _, dir := openTest(t, Options{Fsync: FsyncNever})
	var want []Record
	for i := 0; i < 8; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	img, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Frame boundaries: offsets at which a truncation is clean.
	boundaries := map[int64]int{0: 0}
	var off int64
	for i := range want {
		_, next, ok := decodeFrame(img, off)
		if !ok {
			t.Fatalf("image corrupt at record %d", i)
		}
		off = next
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(img); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(segPath(sub, 1), img[:cut], 0o644); err != nil {
			t.Fatalf("write truncated image: %v", err)
		}
		rec, err := ReadAll(sub)
		if err != nil {
			t.Fatalf("cut %d: ReadAll: %v", cut, err)
		}
		n, clean := boundaries[int64(cut)]
		sameRecords(t, rec.Records, want[:prefixLen(boundaries, int64(cut))])
		if clean && rec.LoadErrors != 0 {
			t.Fatalf("cut %d (clean, %d records): LoadErrors = %d", cut, n, rec.LoadErrors)
		}
		if !clean && rec.LoadErrors == 0 {
			t.Fatalf("cut %d (torn): no load error counted", cut)
		}
	}
}

// prefixLen returns how many whole records survive a cut at offset.
func prefixLen(boundaries map[int64]int, cut int64) int {
	best := 0
	for off, n := range boundaries {
		if off <= cut && n > best {
			best = n
		}
	}
	return best
}

// TestBitFlipTruncatesAtCorruption flips one byte in the middle record's
// payload: recovery must stop before it and repair must leave a log that
// re-recovers identically and accepts new appends.
func TestBitFlipTruncatesAtCorruption(t *testing.T) {
	l, _, dir := openTest(t, Options{Fsync: FsyncNever})
	var want []Record
	for i := 0; i < 9; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := segPath(dir, 1)
	img, _ := os.ReadFile(path)
	// Find record 4's payload start and flip a byte in it.
	var off int64
	for i := 0; i < 4; i++ {
		_, off, _ = decodeFrame(img, off)
	}
	img[off+headerBytes+2] ^= 0x40
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatalf("write corrupted image: %v", err)
	}

	l2, rec, _ := openTest(t, Options{Dir: dir})
	sameRecords(t, rec.Records, want[:4])
	if rec.LoadErrors == 0 || rec.Truncated != path {
		t.Fatalf("recovery = {errors: %d, truncated: %q}, want error at %q", rec.LoadErrors, rec.Truncated, path)
	}
	extra := testRecord(100)
	mustAppend(t, l2, extra)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec3, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll after repair: %v", err)
	}
	sameRecords(t, rec3.Records, append(append([]Record{}, want[:4]...), extra))
	if rec3.LoadErrors != 0 {
		t.Fatalf("repaired log still reports %d load errors", rec3.LoadErrors)
	}
}

// TestCorruptionInEarlySegmentDropsLaterOnes: the global clean-prefix rule
// discards whole later segments once an earlier one is cut.
func TestCorruptionInEarlySegmentDropsLaterOnes(t *testing.T) {
	l, _, dir := openTest(t, Options{Fsync: FsyncNever, SegmentBytes: 128})
	var want []Record
	for i := 0; i < 30; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt the first byte of segment 2: everything from segment 2 on
	// must be discarded.
	img, _ := os.ReadFile(segPath(dir, 2))
	img[0] ^= 0xff
	if err := os.WriteFile(segPath(dir, 2), img, 0o644); err != nil {
		t.Fatalf("corrupt segment 2: %v", err)
	}
	seg1, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	rec1, _, _, _ := scanFileForTest(t, segPath(dir, 1))
	sameRecords(t, seg1.Records, rec1)
	if seg1.LoadErrors < len(segs)-1 {
		t.Fatalf("LoadErrors = %d, want >= %d (torn file + each dropped segment)", seg1.LoadErrors, len(segs)-1)
	}

	// Repair-mode reopen deletes the later segments and appends work.
	l2, rec2, _ := openTest(t, Options{Dir: dir, SegmentBytes: 128})
	sameRecords(t, rec2.Records, rec1)
	mustAppend(t, l2, testRecord(99))
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec3, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll after repair: %v", err)
	}
	sameRecords(t, rec3.Records, append(append([]Record{}, rec1...), testRecord(99)))
}

func scanFileForTest(t *testing.T, path string) ([]Record, int64, bool, error) {
	t.Helper()
	return scanFile(path)
}

func TestRotationKeepsAllRecords(t *testing.T) {
	l, _, dir := openTest(t, Options{SegmentBytes: 200})
	var want []Record
	for i := 0; i < 40; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	sameRecords(t, rec.Records, want)
	if rec.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", rec.Segments)
	}
}

func TestCompactionSubsumesSegments(t *testing.T) {
	l, _, dir := openTest(t, Options{SegmentBytes: 200})
	var all []Record
	for i := 0; i < 20; i++ {
		all = append(all, testRecord(i))
	}
	mustAppend(t, l, all...)
	// Compact down to the even records, as a store folding history would.
	var kept []Record
	for i, r := range all {
		if i%2 == 0 {
			kept = append(kept, r)
		}
	}
	if err := l.Compact(func() []Record { return kept }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	post := testRecord(777)
	mustAppend(t, l, post)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	sameRecords(t, rec.Records, append(append([]Record{}, kept...), post))

	// Reopen: the post-compaction segment number must not collide.
	l2, rec2, _ := openTest(t, Options{Dir: dir, SegmentBytes: 200})
	sameRecords(t, rec2.Records, rec.Records)
	mustAppend(t, l2, testRecord(888))
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// crashPanic is the sentinel tests' crash hooks throw.
type crashPanic struct{ point string }

// withCrash installs a hook that panics at the named point and runs fn,
// reporting whether the crash fired. The panic unwinds through the log's
// deferred unlocks, leaving the directory in the exact on-disk state a
// kill -9 at that point would.
func withCrash(t *testing.T, point string, fn func()) (crashed bool) {
	t.Helper()
	SetCrashHook(func(p string) {
		if p == point {
			panic(crashPanic{p})
		}
	})
	defer SetCrashHook(nil)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashPanic); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

// TestCrashMidRotation: a crash between closing a full segment and
// creating the next loses nothing already appended.
func TestCrashMidRotation(t *testing.T) {
	l, _, dir := openTest(t, Options{SegmentBytes: 200})
	var want []Record
	add := func(i int) { want = append(want, testRecord(i)); mustAppend(t, l, want[len(want)-1]) }
	for i := 0; i < 5; i++ {
		add(i)
	}
	crashed := withCrash(t, CrashRotate, func() {
		for i := 5; i < 40; i++ {
			add(i)
		}
	})
	if !crashed {
		t.Fatal("rotation crash point never fired")
	}
	want = want[:len(want)-1] // the append that triggered rotation never happened

	l2, rec, _ := openTest(t, Options{Dir: dir, SegmentBytes: 200})
	defer l2.Close()
	sameRecords(t, rec.Records, want)
	if rec.LoadErrors != 0 {
		t.Fatalf("LoadErrors = %d after a clean mid-rotation crash", rec.LoadErrors)
	}
	mustAppend(t, l2, testRecord(500))
}

// TestCrashMidCompaction covers both rename-straddling crash points: before
// the rename the old history must survive; after it the checkpoint wins and
// leftover segments replay idempotently (here: not at all, since the
// checkpoint subsumes them).
func TestCrashMidCompaction(t *testing.T) {
	for _, point := range []string{CrashCompactPreRename, CrashCompactPostRename} {
		t.Run(point, func(t *testing.T) {
			l, _, dir := openTest(t, Options{SegmentBytes: 200})
			var all []Record
			for i := 0; i < 12; i++ {
				all = append(all, testRecord(i))
			}
			mustAppend(t, l, all...)
			kept := all[:6]
			crashed := withCrash(t, point, func() {
				l.Compact(func() []Record { return kept })
			})
			if !crashed {
				t.Fatalf("%s never fired", point)
			}
			want := all
			if point == CrashCompactPostRename {
				want = kept // checkpoint renamed live: it now owns history
			}
			l2, rec, _ := openTest(t, Options{Dir: dir, SegmentBytes: 200})
			defer l2.Close()
			sameRecords(t, rec.Records, want)
			if rec.LoadErrors != 0 {
				t.Fatalf("LoadErrors = %d after crash at %s", rec.LoadErrors, point)
			}
			mustAppend(t, l2, testRecord(900))
		})
	}
}

// TestCrashAtNthAppend synthesises a kill -9 after every single append of
// a run and checks each prefix recovers exactly.
func TestCrashAtNthAppend(t *testing.T) {
	const total = 10
	var want []Record
	for i := 0; i < total; i++ {
		want = append(want, testRecord(i))
	}
	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		func() {
			l, _, _ := openTest(t, Options{Dir: dir})
			crashed := withCrash(t, fmt.Sprintf("append:%d", n), func() {
				for _, r := range want {
					if err := l.Append(r); err != nil {
						t.Fatalf("Append: %v", err)
					}
				}
			})
			if !crashed {
				t.Fatalf("append:%d never fired", n)
			}
		}()
		rec, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		sameRecords(t, rec.Records, want[:n])
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			l, _, dir := openTest(t, Options{Fsync: p, FsyncInterval: time.Millisecond})
			var want []Record
			for i := 0; i < 5; i++ {
				want = append(want, testRecord(i))
			}
			mustAppend(t, l, want...)
			if p == FsyncInterval {
				time.Sleep(10 * time.Millisecond) // let the sync loop tick
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			rec, err := ReadAll(dir)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			sameRecords(t, rec.Records, want)
		})
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _, _ := openTest(t, Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(testRecord(0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCopyPrefix(t *testing.T) {
	l, _, dir := openTest(t, Options{SegmentBytes: 200})
	var want []Record
	for i := 0; i < 15; i++ {
		want = append(want, testRecord(i))
	}
	mustAppend(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for n := 0; n <= len(want); n++ {
		dst := filepath.Join(t.TempDir(), "wal")
		if err := CopyPrefix(dir, dst, n, []byte{0x01, 0x02, 0x03}); err != nil {
			t.Fatalf("CopyPrefix(%d): %v", n, err)
		}
		rec, err := ReadAll(dst)
		if err != nil {
			t.Fatalf("ReadAll: %v", err)
		}
		sameRecords(t, rec.Records, want[:n])
		if rec.LoadErrors == 0 {
			t.Fatalf("n=%d: torn tail not counted", n)
		}
	}
	if err := CopyPrefix(dir, t.TempDir(), len(want)+1, nil); err == nil {
		t.Fatal("CopyPrefix past end succeeded")
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	// A crash before the rename must leave the previous contents intact.
	crashed := withCrash(t, CrashCompactPreRename, func() {
		AtomicWriteFile(path, []byte("v2"), 0o644)
	})
	if !crashed {
		t.Fatal("crash point never fired")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("after crashed write: %q, %v (want v1)", got, err)
	}
	if err := AtomicWriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("after clean write: %q", got)
	}
}

func TestTraceChecker(t *testing.T) {
	ok := &Trace{}
	ok.Write("job-1", 1)
	ok.Read("a", "job-1", 1)
	ok.Write("job-1", 2)
	ok.Read("a", "job-1", 2)
	ok.Read("b", "job-1", 1) // another client may lag; PRAM allows it
	ok.Read("b", "job-1", 2)
	if err := ok.Check(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if ok.Len() != 6 {
		t.Fatalf("Len = %d", ok.Len())
	}

	stale := &Trace{}
	stale.Write("job-1", 1)
	stale.Write("job-1", 2)
	stale.Read("a", "job-1", 2)
	stale.Read("a", "job-1", 1)
	if err := stale.Check(); err == nil {
		t.Fatal("stale-after-fresh read not caught")
	}

	future := &Trace{}
	future.Write("job-1", 1)
	future.Read("a", "job-1", 5)
	if err := future.Check(); err == nil {
		t.Fatal("read of unwritten version not caught")
	}

	regress := &Trace{}
	regress.Write("job-1", 3)
	regress.Write("job-1", 1)
	if err := regress.Check(); err == nil {
		t.Fatal("write regression not caught")
	}
}

// TestRecoveredRecordsRoundTrip: decode -> encode is the identity on the
// framed bytes, the property resume-byte-identity leans on.
func TestRecoveredRecordsRoundTrip(t *testing.T) {
	l, _, dir := openTest(t, Options{})
	want := testRecord(3)
	mustAppend(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	orig, _ := Encode(want)
	again, err := Encode(rec.Records[0])
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Fatalf("re-encode differs:\n  %x\n  %x", orig, again)
	}
}
