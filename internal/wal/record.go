// Package wal is an append-only, crash-safe write-ahead log for the job
// service: length-prefixed, CRC32C-checksummed records appended to rotating
// segment files, periodically folded into a checkpoint so recovery cost
// stays bounded. The framing is deliberately dumb — recovery never needs an
// index, only a sequential scan that stops at the first torn or corrupt
// record and replays the clean prefix.
//
// The package is schema-agnostic: a Record carries a Type tag, the job it
// belongs to, and an opaque JSON payload whose shape the embedding store
// (internal/server) owns. The only type wal itself interprets is
// TypeCheckpoint, the compaction metadata record that opens every
// checkpoint file.
//
// Crash discipline (what a kill -9 can and cannot do):
//
//   - An append is a single write of one framed record, optionally followed
//     by fsync. A crash mid-write leaves a torn tail; the checksum catches
//     it and recovery truncates the file back to the last whole record.
//   - Rotation closes a full segment and creates the next; both halves are
//     individually durable, so a crash between them just leaves a complete
//     log with no open segment (recovery reopens or creates one).
//   - Compaction writes the whole checkpoint to a temp file, fsyncs it,
//     renames it over the previous checkpoint, fsyncs the directory, and
//     only then deletes the segments it subsumed. A crash before the rename
//     leaves the old checkpoint + all segments (replayed as before); after
//     the rename, the new checkpoint names the segments it covers, so a
//     crash before their deletion merely replays them idempotently.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Type tags a record with its lifecycle meaning. Except for TypeCheckpoint,
// the wal package treats types as opaque labels; the constants exist so the
// log and its embedder agree on spelling.
type Type string

const (
	// TypeSubmitted records a job accepted into the queue, with everything
	// needed to rebuild and re-enqueue it after a crash.
	TypeSubmitted Type = "submitted"
	// TypeStarted records a worker picking the job up.
	TypeStarted Type = "started"
	// TypeCaseDone records one finished grid cell (or a single job's one
	// run) with its captured result, so a restart resumes the sweep from
	// the last logged cell instead of from scratch.
	TypeCaseDone Type = "case_done"
	// TypeCancelRequested records a client-visible DELETE on a running
	// job: recovery must honour the verdict the client was given even if
	// the crash beat the worker to the terminal record.
	TypeCancelRequested Type = "cancel_requested"
	// TypeTerminal records the job's final state, report/result included.
	TypeTerminal Type = "terminal"
	// TypeCheckpoint opens every checkpoint file; its payload is
	// checkpointMeta, naming the segments the checkpoint subsumes.
	TypeCheckpoint Type = "checkpoint"
)

// Record is one WAL entry. Payload is opaque JSON owned by the embedder;
// the framing (length + CRC32C) wraps the record's own JSON encoding, so a
// Record round-trips byte-for-byte through encode -> decode -> encode.
type Record struct {
	Type    Type            `json:"type"`
	JobID   string          `json:"job_id,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// checkpointMeta is TypeCheckpoint's payload.
type checkpointMeta struct {
	// Through is the highest segment number the checkpoint subsumes;
	// recovery replays only segments numbered above it.
	Through int `json:"through"`
}

// castagnoli is the CRC32C table — the checksum storage systems use for
// torn-write detection, hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// headerBytes frames every record: 4-byte little-endian payload
	// length, 4-byte CRC32C of the payload.
	headerBytes = 8
	// maxRecordBytes bounds one record so a corrupt length field cannot
	// drive a multi-gigabyte allocation during recovery.
	maxRecordBytes = 64 << 20
)

// Encode returns the framed on-disk encoding of rec. Exported for tests
// and tooling that construct torn or hand-crafted log images.
func Encode(rec Record) ([]byte, error) {
	return appendFrame(nil, rec)
}

// appendFrame appends rec's frame to dst.
func appendFrame(dst []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode %s record: %w", rec.Type, err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: %s record is %d bytes, over the %d-byte record bound", rec.Type, len(payload), maxRecordBytes)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(dst, hdr[:]...), payload...), nil
}

// decodeFrame decodes the record at buf[off:], returning the offset past
// it. ok is false when the frame is torn or corrupt — short header, short
// payload, zero or out-of-range length, checksum mismatch, or unparsable
// payload — in which case the frame and everything after it must be
// discarded (the clean-prefix rule).
func decodeFrame(buf []byte, off int64) (rec Record, next int64, ok bool) {
	if int64(len(buf))-off < headerBytes {
		return rec, off, false
	}
	n := int64(binary.LittleEndian.Uint32(buf[off : off+4]))
	sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	if n == 0 || n > maxRecordBytes || off+headerBytes+n > int64(len(buf)) {
		return rec, off, false
	}
	payload := buf[off+headerBytes : off+headerBytes+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return rec, off, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, off, false
	}
	return rec, off + headerBytes + n, true
}
