// A read/write trace checker in the spirit of "Verifying PRAM Consistency
// over Read/Write Traces": the server records a versioned write per state
// change it exposes, clients record every read with the version they
// observed, and Check proves no client ever saw time run backwards — a
// read returning version v followed by a read of the same object returning
// u < v (stale-after-fresh), or a read of a version nobody wrote. The
// crash battery threads every pre-crash and post-recovery observation
// through one Trace to show recovery never rewinds client-visible history.
package wal

import (
	"fmt"
	"sync"
)

// TraceOp is one event in a trace: a server-side write of object at
// version, or a client-side read that observed version.
type TraceOp struct {
	Read    bool
	Client  string // reading client ("" for writes)
	Object  string
	Version int
}

// Trace accumulates operations from any number of goroutines.
type Trace struct {
	mu  sync.Mutex
	ops []TraceOp
}

// Write records that the server exposed version of object.
func (t *Trace) Write(object string, version int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops = append(t.ops, TraceOp{Object: object, Version: version})
}

// Read records that client observed version of object.
func (t *Trace) Read(client, object string, version int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops = append(t.ops, TraceOp{Read: true, Client: client, Object: object, Version: version})
}

// Len returns the number of recorded operations.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ops)
}

// Check validates the trace in recorded order and returns the first
// anomaly:
//
//   - a write of object at a version lower than an earlier write of it
//     (the server's history must be monotone — recovery may not republish
//     an older state);
//   - a read of a version greater than anything written so far (a read
//     cannot observe the future);
//   - a read by a client of a version lower than that client's previous
//     read of the same object (stale-after-fresh, the PRAM violation).
func (t *Trace) Check() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	written := map[string]int{}         // object -> highest written version
	seen := map[string]map[string]int{} // client -> object -> last read version
	for i, op := range t.ops {
		if !op.Read {
			if prev, ok := written[op.Object]; ok && op.Version < prev {
				return fmt.Errorf("trace op %d: write of %s regressed to version %d after %d", i, op.Object, op.Version, prev)
			}
			written[op.Object] = op.Version
			continue
		}
		if op.Version > written[op.Object] {
			return fmt.Errorf("trace op %d: client %s read %s at version %d, never written (max %d)", i, op.Client, op.Object, op.Version, written[op.Object])
		}
		objs := seen[op.Client]
		if objs == nil {
			objs = map[string]int{}
			seen[op.Client] = objs
		}
		if prev, ok := objs[op.Object]; ok && op.Version < prev {
			return fmt.Errorf("trace op %d: client %s read %s at version %d after already reading version %d (stale-after-fresh)", i, op.Client, op.Object, op.Version, prev)
		}
		objs[op.Object] = op.Version
	}
	return nil
}
