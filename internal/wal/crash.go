// Deterministic crash injection. The log announces every durability-
// relevant point it passes — each append (by sequence number), the gap in
// the middle of a segment rotation, and both halves of the compaction
// rename — to an optional hook. Tests install a hook that panics (the
// panic unwinds with the log's deferred unlocks intact, leaving the
// directory exactly as a kill -9 would); the stallserved daemon arms a
// hook from $STALLWAL_CRASH that SIGKILLs the whole process, which is how
// the crashsmoke battery dies at a chosen WAL append with no flushes and
// no goodbyes.
package wal

import (
	"os"
	"strconv"
	"sync/atomic"
	"syscall"
)

// Crash point names the hook receives. Appends report "append:N" with N
// the 1-based append sequence since the log was opened.
const (
	// CrashRotate fires between closing a full segment and creating its
	// successor.
	CrashRotate = "rotate"
	// CrashCompactPreRename fires after the new checkpoint is written and
	// fsynced to its temp file, before the rename makes it live.
	CrashCompactPreRename = "compact:pre-rename"
	// CrashCompactPostRename fires after the rename (and directory fsync),
	// before the subsumed segments are deleted.
	CrashCompactPostRename = "compact:post-rename"
)

// crashHook is the installed hook; nil when injection is off (the normal
// case — one atomic load per crash point).
var crashHook atomic.Pointer[func(point string)]

// SetCrashHook installs f as the crash hook (nil uninstalls). f runs
// synchronously at every crash point, while the log's internal lock is
// held; a hook that panics leaves the directory in the exact on-disk state
// a kill -9 at that point would.
func SetCrashHook(f func(point string)) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

func crashPoint(point string) {
	if h := crashHook.Load(); h != nil {
		(*h)(point)
	}
}

func crashAppend(seq int64) {
	if h := crashHook.Load(); h != nil {
		(*h)("append:" + strconv.FormatInt(seq, 10))
	}
}

// ArmCrashFromEnv installs a self-SIGKILL hook for the crash point named
// by $STALLWAL_CRASH (e.g. "append:5", "rotate", "compact:pre-rename") and
// returns the armed point ("" when the variable is unset). Only the
// stallserved daemon calls this — a kill -9 is the honest crash: no
// deferred cleanup, no buffered writes flushed, exactly the failure
// recovery must withstand.
func ArmCrashFromEnv() string {
	target := os.Getenv("STALLWAL_CRASH")
	if target == "" {
		return ""
	}
	SetCrashHook(func(point string) {
		if point == target {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL cannot be caught or delayed
		}
	})
	return target
}
