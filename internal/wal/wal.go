// The log writer: rotating segment files plus a checkpoint, with a
// configurable fsync policy. All appends and compactions serialize on one
// mutex; the embedder must never call Append while holding a lock its
// compaction gather callback also takes (the log's lock is the outermost).
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy says when appended records become durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: an acknowledged record
	// survives any kill -9. The default, and what the crash battery runs.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer: a crash can lose up to
	// one interval of acknowledged records, never corrupt older ones.
	FsyncInterval
	// FsyncNever leaves durability to the OS page cache.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values onto policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: fsync policy %q (want always, interval or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// Options tunes a Log.
type Options struct {
	// Dir holds the checkpoint and segment files; created if missing.
	Dir string
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval timer period (<= 0: 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (<= 0: 4 MiB).
	SegmentBytes int64
	// OnFsync, when set, observes the duration of each data fsync (the
	// per-append syncs under FsyncAlways and the timer syncs under
	// FsyncInterval) — the feed for the wal_fsync latency histogram.
	OnFsync func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// errClosed rejects operations on a closed log.
var errClosed = errors.New("wal: log closed")

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	opt Options

	mu      sync.Mutex
	f       *os.File
	seg     int   // number of the active segment
	size    int64 // bytes in the active segment
	appends int64 // records appended since Open (crash-hook sequencing)
	buf     []byte
	closed  bool

	stop     chan struct{}
	syncLoop sync.WaitGroup
}

// Open recovers dir (truncating any torn tail and discarding everything
// after the first corrupt record) and returns a Log positioned to append
// after the clean prefix, plus the Recovery describing what was replayable.
func Open(opt Options) (*Log, Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: %w", err)
	}
	rec, lay, err := recoverDir(opt.Dir, true)
	if err != nil {
		return nil, rec, err
	}
	l := &Log{opt: opt, stop: make(chan struct{})}
	if lay.lastSeg > 0 && lay.lastSize < opt.SegmentBytes {
		f, err := os.OpenFile(segPath(opt.Dir, lay.lastSeg), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, rec, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.f, l.seg, l.size = f, lay.lastSeg, lay.lastSize
	} else {
		next := lay.lastSeg
		if lay.through > next {
			next = lay.through
		}
		if err := l.openSegment(next + 1); err != nil {
			return nil, rec, err
		}
	}
	if opt.Fsync == FsyncInterval {
		l.syncLoop.Add(1)
		go l.runSyncLoop()
	}
	return l, rec, nil
}

// segPath names segment n.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", n))
}

// checkpointPath names the live checkpoint file.
func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint.wal") }

// openSegment creates segment n as the active file and makes its directory
// entry durable, so an fsynced append can never land in a file a crash
// erases.
func (l *Log) openSegment(n int) error {
	f, err := os.OpenFile(segPath(l.opt.Dir, n), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(l.opt.Dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.size = f, n, 0
	return nil
}

// Append frames rec, writes it to the active segment (rotating first when
// full), and applies the fsync policy. The record is durable on return
// under FsyncAlways.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	buf, err := appendFrame(l.buf[:0], rec)
	if err != nil {
		return err
	}
	l.buf = buf
	if l.size > 0 && l.size+int64(len(buf)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.appends++
	if l.opt.Fsync == FsyncAlways {
		if err := l.syncTimed(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	crashAppend(l.appends)
	return nil
}

// rotateLocked closes the full active segment and opens its successor.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	crashPoint(CrashRotate)
	return l.openSegment(l.seg + 1)
}

// Compact folds the log into a fresh checkpoint. gather runs with the log
// lock held — appends are stalled — so the state it snapshots is exactly
// the state the log's records describe; anything the embedder mutates
// before an Append is therefore never lost to a checkpoint race. The new
// checkpoint is written to a temp file, fsynced, renamed live, the
// directory fsynced, and only then are the subsumed segments removed; a
// crash anywhere in between recovers to either the old records or the new
// checkpoint, never to a mix.
func (l *Log) Compact(gather func() []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	recs := gather()
	through := l.seg
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: compact fsync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	l.f = nil

	tmp := checkpointPath(l.opt.Dir) + ".tmp"
	metaPayload, err := json.Marshal(checkpointMeta{Through: through})
	if err != nil {
		return fmt.Errorf("wal: checkpoint meta: %w", err)
	}
	buf := l.buf[:0]
	if buf, err = appendFrame(buf, Record{Type: TypeCheckpoint, Payload: metaPayload}); err != nil {
		return err
	}
	for _, r := range recs {
		if buf, err = appendFrame(buf, r); err != nil {
			return err
		}
	}
	l.buf = buf
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	crashPoint(CrashCompactPreRename)
	if err := os.Rename(tmp, checkpointPath(l.opt.Dir)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(l.opt.Dir); err != nil {
		return err
	}
	crashPoint(CrashCompactPostRename)
	for n := range listSegments(l.opt.Dir) {
		if n <= through {
			os.Remove(segPath(l.opt.Dir, n))
		}
	}
	return l.openSegment(through + 1)
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	return l.syncTimed()
}

// syncTimed fsyncs the active segment and reports the latency to the
// OnFsync observer. Caller holds l.mu.
func (l *Log) syncTimed() error {
	start := time.Now()
	err := l.f.Sync()
	if err == nil && l.opt.OnFsync != nil {
		l.opt.OnFsync(time.Since(start))
	}
	return err
}

// Appends returns the number of records appended since Open.
func (l *Log) Appends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Close syncs and closes the log. Further operations return errClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.syncLoop.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

func (l *Log) runSyncLoop() {
	defer l.syncLoop.Done()
	t := time.NewTicker(l.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.f != nil {
				l.syncTimed()
			}
			l.mu.Unlock()
		}
	}
}

// listSegments maps segment number -> path for every segment file in dir.
func listSegments(dir string) map[int]string {
	out := map[int]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "seg-%08d.wal", &n); err == nil {
			out[n] = filepath.Join(dir, name)
		}
	}
	return out
}

// sortedSegments returns dir's segment numbers in ascending order.
func sortedSegments(segs map[int]string) []int {
	out := make([]int, 0, len(segs))
	for n := range segs {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}

// AtomicWriteFile writes data to path crash-atomically: a temp file beside
// it is written, fsynced, renamed over path, and the directory fsynced —
// at every kill -9 point the old bytes or the new bytes are on disk, never
// a torn mix. The job service's legacy snapshot export uses it too.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	crashPoint(CrashCompactPreRename)
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}
