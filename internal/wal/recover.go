// Recovery: sequential scan of checkpoint + segments, stopping at the
// first torn or corrupt frame anywhere (the global clean-prefix rule).
// In repair mode the offending file is truncated back to its last whole
// record and every later segment is deleted, so the next writer appends
// after a history that is exactly what a reader would have replayed.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
)

// Recovery describes what a scan of a WAL directory could replay.
type Recovery struct {
	// Records is the clean prefix, checkpoint records first, then segment
	// records in segment then file order. TypeCheckpoint records are
	// consumed by the scan and never appear here.
	Records []Record
	// Segments is the number of segment files that contributed records.
	Segments int
	// LoadErrors counts corruption events: each torn/corrupt frame that
	// cut a file short, plus each later segment discarded because an
	// earlier file was cut.
	LoadErrors int
	// Truncated names the first file found torn or corrupt ("" if none).
	Truncated string
}

// layout is what Open needs to position the writer after recovery.
type layout struct {
	through  int   // checkpoint's Through (0 if no checkpoint)
	lastSeg  int   // highest surviving segment number (0 if none)
	lastSize int64 // clean byte size of that segment
}

// scanFile decodes the whole-frame prefix of one file, returning the
// records, the clean byte offset, and whether the file ended mid-frame.
func scanFile(path string) (recs []Record, clean int64, torn bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: read %s: %w", path, err)
	}
	var off int64
	for off < int64(len(buf)) {
		rec, next, ok := decodeFrame(buf, off)
		if !ok {
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, off, false, nil
}

// recoverDir scans dir and returns the replayable prefix. With repair set
// it also truncates the first bad file at its clean offset and removes
// every segment after it, restoring the invariant that everything on disk
// is a whole-frame clean prefix.
func recoverDir(dir string, repair bool) (Recovery, layout, error) {
	var rec Recovery
	var lay layout

	cut := false // a file was found torn: discard (and maybe delete) the rest
	cp := checkpointPath(dir)
	if _, err := os.Stat(cp); err == nil {
		recs, clean, torn, err := scanFile(cp)
		if err != nil {
			return rec, lay, err
		}
		if len(recs) > 0 && recs[0].Type == TypeCheckpoint {
			var meta checkpointMeta
			if json.Unmarshal(recs[0].Payload, &meta) == nil {
				lay.through = meta.Through
			}
			rec.Records = append(rec.Records, recs[1:]...)
		} else {
			// A checkpoint whose meta record is itself torn subsumes
			// nothing; replay whatever decoded.
			rec.Records = append(rec.Records, recs...)
			torn = true
		}
		if torn {
			cut = true
			rec.LoadErrors++
			rec.Truncated = cp
			if repair {
				if err := os.Truncate(cp, clean); err != nil {
					return rec, lay, fmt.Errorf("wal: truncate %s: %w", cp, err)
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return rec, lay, fmt.Errorf("wal: stat checkpoint: %w", err)
	}

	segs := listSegments(dir)
	for _, n := range sortedSegments(segs) {
		path := segs[n]
		if n <= lay.through || cut {
			// Subsumed by the checkpoint (a crash between checkpoint
			// rename and segment deletion leaves these; their records
			// replay idempotently so skipping them is merely an
			// optimisation) — or past the cut, where records may depend
			// on discarded ones.
			if cut {
				rec.LoadErrors++
				if repair {
					os.Remove(path)
				}
			}
			continue
		}
		recs, clean, torn, err := scanFile(path)
		if err != nil {
			return rec, lay, err
		}
		rec.Records = append(rec.Records, recs...)
		rec.Segments++
		lay.lastSeg, lay.lastSize = n, clean
		if torn {
			cut = true
			rec.LoadErrors++
			if rec.Truncated == "" {
				rec.Truncated = path
			}
			if repair {
				if err := os.Truncate(path, clean); err != nil {
					return rec, lay, fmt.Errorf("wal: truncate %s: %w", path, err)
				}
			}
		}
	}
	if repair && (cut || len(segs) > 0) {
		if err := syncDir(dir); err != nil {
			return rec, lay, err
		}
	}
	return rec, lay, nil
}

// ReadAll scans dir read-only — no truncation, no deletion — and returns
// the replayable clean prefix. Tooling and the crash battery use it to
// inspect a log image without disturbing it.
func ReadAll(dir string) (Recovery, error) {
	rec, _, err := recoverDir(dir, false)
	return rec, err
}

// CopyPrefix materialises, in dst, a log image equivalent to crashing src
// immediately after its nth surviving record: the first n records of src's
// clean prefix are re-framed into a single segment, followed by tail's raw
// bytes (a torn fragment, garbage, or nil). The crash battery uses it to
// synthesise every "crashed at append N" state from one uninterrupted run.
func CopyPrefix(src, dst string, n int, tail []byte) error {
	rec, err := ReadAll(src)
	if err != nil {
		return err
	}
	if n > len(rec.Records) {
		return fmt.Errorf("wal: prefix %d exceeds %d recovered records", n, len(rec.Records))
	}
	var buf []byte
	for _, r := range rec.Records[:n] {
		if buf, err = appendFrame(buf, r); err != nil {
			return err
		}
	}
	buf = append(buf, tail...)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	return os.WriteFile(segPath(dst, 1), buf, 0o644)
}
