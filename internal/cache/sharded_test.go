package cache

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"datastall/internal/dataset"
	"datastall/internal/pagecache"
)

// residentBytes sums the bytes actually stored in the shard maps (bypassing
// the budget word), for reconciliation checks.
func (c *ShardedMinIO) residentBytes() float64 {
	t := 0.0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, b := range sh.items {
			t += b
		}
		sh.mu.RUnlock()
	}
	return t
}

// TestShardedMinIOMatchesReference replays one random op sequence through
// ShardedMinIO and the single-threaded MinIO reference model: identical
// hits, misses, used bytes, and residency at every step.
func TestShardedMinIOMatchesReference(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		ref := NewMinIO(1000)
		sh := NewShardedMinIO(1000, shards)
		rng := rand.New(rand.NewSource(7))
		for op := 0; op < 20000; op++ {
			id := dataset.ItemID(rng.Intn(300))
			if rng.Intn(2) == 0 {
				if got, want := sh.Lookup(id), ref.Lookup(id); got != want {
					t.Fatalf("shards=%d op %d: Lookup(%d) = %v, reference %v", shards, op, id, got, want)
				}
			} else {
				bytes := float64(1 + rng.Intn(20))
				ref.Insert(id, bytes)
				sh.Insert(id, bytes)
			}
			if sh.UsedBytes() != ref.UsedBytes() {
				t.Fatalf("shards=%d op %d: UsedBytes %v != reference %v", shards, op, sh.UsedBytes(), ref.UsedBytes())
			}
		}
		if sh.Hits() != ref.Hits() || sh.Misses() != ref.Misses() {
			t.Fatalf("shards=%d: hits/misses %d/%d != reference %d/%d",
				shards, sh.Hits(), sh.Misses(), ref.Hits(), ref.Misses())
		}
		if sh.Rejected() != ref.Rejected() {
			t.Fatalf("shards=%d: rejected %d != reference %d", shards, sh.Rejected(), ref.Rejected())
		}
		if sh.Len() != ref.Len() {
			t.Fatalf("shards=%d: len %d != reference %d", shards, sh.Len(), ref.Len())
		}
	}
}

// TestShardedMinIORace hammers one cache from many goroutines and checks the
// two safety invariants the concurrent backend depends on, continuously and
// at quiescence: UsedBytes never exceeds CapBytes, and hits+misses accounts
// for every Lookup exactly. Run under -race this is the data-race battery
// for the lock-striping and the CAS budget.
func TestShardedMinIORace(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 5000
		capBytes   = 4096
		idSpace    = 1024
	)
	c := NewShardedMinIO(capBytes, 16)
	var lookups atomic.Int64
	var stop atomic.Bool

	// Invariant watcher: observes UsedBytes at arbitrary interleavings.
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for !stop.Load() {
			if u := c.UsedBytes(); u > c.CapBytes() {
				t.Errorf("UsedBytes %v > CapBytes %v", u, c.CapBytes())
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerG; op++ {
				id := dataset.ItemID(rng.Intn(idSpace))
				switch rng.Intn(3) {
				case 0:
					c.Lookup(id)
					lookups.Add(1)
				case 1:
					c.Insert(id, float64(1+rng.Intn(16)))
				default:
					c.Contains(id)
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	stop.Store(true)
	watcher.Wait()

	if got, want := c.Hits()+c.Misses(), lookups.Load(); got != want {
		t.Fatalf("hits+misses = %d, want exactly %d lookups", got, want)
	}
	if u := c.UsedBytes(); u > c.CapBytes() {
		t.Fatalf("UsedBytes %v > CapBytes %v at quiescence", u, c.CapBytes())
	}
	// At quiescence every reserved byte is resident: no budget leaked on
	// the duplicate-insert race path.
	if got, want := c.residentBytes(), c.UsedBytes(); got != want {
		t.Fatalf("resident bytes %v != reserved bytes %v (budget leak)", got, want)
	}
}

// TestShardedMinIOConcurrentEpoch drives a full disjoint epoch (every item
// once) from N workers: the cache must fill to exactly floor(cap/item) items
// regardless of scheduling, matching the single-threaded model.
func TestShardedMinIOConcurrentEpoch(t *testing.T) {
	const (
		items    = 4096
		itemSz   = 4.0
		capBytes = 1000 * itemSz
		workers  = 8
	)
	for _, shards := range []int{1, 8, 64} {
		c := NewShardedMinIO(capBytes, shards)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= items {
						return
					}
					id := dataset.ItemID(i)
					if !c.Lookup(id) {
						c.Insert(id, itemSz)
					}
				}
			}()
		}
		wg.Wait()
		if got := c.Len(); got != 1000 {
			t.Fatalf("shards=%d: cached %d items, want exactly floor(cap/item) = 1000", shards, got)
		}
		if got := c.UsedBytes(); got != capBytes {
			t.Fatalf("shards=%d: UsedBytes %v, want %v", shards, got, capBytes)
		}
		if h, m := c.Hits(), c.Misses(); h != 0 || m != items {
			t.Fatalf("shards=%d: warmup epoch hits/misses %d/%d, want 0/%d", shards, h, m, items)
		}
	}
}

// TestShardedPartitionedRace hammers the distributed cache from goroutines
// spread across servers; checks per-server classification accounting and the
// per-server byte budgets.
func TestShardedPartitionedRace(t *testing.T) {
	d := &dataset.Dataset{Name: "t", NumItems: 2048, TotalBytes: 2048 * 8}
	const nServers = 4
	p := NewShardedPartitioned(d, nServers, 200*8, 8, 42)

	var lookups [nServers]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s := int(seed) % nServers
			for op := 0; op < 4000; op++ {
				id := dataset.ItemID(rng.Intn(d.NumItems))
				loc, _ := p.Lookup(s, id)
				lookups[s].Add(1)
				if loc == Miss {
					p.Insert(s, id, d.ItemBytes(id))
				}
			}
		}(int64(g))
	}
	wg.Wait()

	for s := 0; s < nServers; s++ {
		local, remote, miss := p.Stats(s)
		if got, want := local+remote+miss, lookups[s].Load(); got != want {
			t.Fatalf("server %d: local+remote+miss = %d, want exactly %d lookups", s, got, want)
		}
		c := p.Server(s)
		if c.UsedBytes() > c.CapBytes() {
			t.Fatalf("server %d: UsedBytes %v > CapBytes %v", s, c.UsedBytes(), c.CapBytes())
		}
	}
}

// TestLockedWrapsPageCache checks the big-lock adapter under concurrency:
// the page cache's recency lists must survive -race and respect capacity.
func TestLockedWrapsPageCache(t *testing.T) {
	inner := pagecache.New(pagecache.TwoList, 512, 99)
	c := NewLocked(inner)
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 3000; op++ {
				id := dataset.ItemID(rng.Intn(256))
				if !c.Lookup(id) {
					c.Insert(id, float64(1+rng.Intn(8)))
				}
				lookups.Add(1)
			}
		}(int64(g))
	}
	wg.Wait()
	if got, want := c.Hits()+c.Misses(), lookups.Load(); got != want {
		t.Fatalf("hits+misses = %d, want %d", got, want)
	}
	if c.UsedBytes() > c.CapBytes() {
		t.Fatalf("UsedBytes %v > CapBytes %v", c.UsedBytes(), c.CapBytes())
	}
}

// TestShardedMinIOZeroAndTinyCapacity: degenerate capacities must neither
// panic nor admit items they have no budget for.
func TestShardedMinIOZeroAndTinyCapacity(t *testing.T) {
	for _, capBytes := range []float64{0, 0.5, -10} {
		c := NewShardedMinIO(capBytes, 4)
		for i := 0; i < 100; i++ {
			id := dataset.ItemID(i)
			c.Lookup(id)
			c.Insert(id, 1)
		}
		if c.Len() != 0 {
			t.Fatalf("cap=%v: cached %d items, want 0", capBytes, c.Len())
		}
		if c.Rejected() != 100 {
			t.Fatalf("cap=%v: rejected %d, want 100", capBytes, c.Rejected())
		}
	}
}

// TestShardedMinIOShardRounding: shard counts round up to powers of two.
func TestShardedMinIOShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {9, 16}, {64, 64},
		// Absurd values clamp instead of overflowing the rounding loop or
		// allocating gigabytes of stripes.
		{MaxShards + 1, MaxShards}, {1 << 40, MaxShards}, {int(^uint(0) >> 1), MaxShards},
	} {
		if got := NewShardedMinIO(10, tc.in).NumShards(); got != tc.want {
			t.Errorf("NumShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
