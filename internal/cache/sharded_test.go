package cache

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"datastall/internal/dataset"
	"datastall/internal/pagecache"
)

// residentBytes sums the bytes actually stored in the shard maps (bypassing
// the per-stripe used counters), for reconciliation checks.
func (c *ShardedMinIO) residentBytes() float64 {
	t := 0.0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, b := range sh.items {
			t += b
		}
		sh.mu.RUnlock()
	}
	return t
}

// quotaSum totals the per-stripe quotas in budget units; borrowing moves
// quota between stripes but must conserve the total at exactly capUnits.
func (c *ShardedMinIO) quotaSum() int64 {
	t := int64(0)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		t += sh.quota
		sh.mu.RUnlock()
	}
	return t
}

// TestShardPadding pins minioShard at exactly two cache lines: a field
// added without re-sizing the padding would make adjacent stripes share a
// line and silently reintroduce the false sharing the padding removes.
func TestShardPadding(t *testing.T) {
	if got := unsafe.Sizeof(minioShard{}); got != 128 {
		t.Fatalf("minioShard = %d bytes, want 128 (adjust the padding)", got)
	}
}

// stripeInvariant checks used <= quota on every stripe.
func (c *ShardedMinIO) stripeInvariant(t *testing.T) {
	t.Helper()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		u, q := sh.used, sh.quota
		sh.mu.RUnlock()
		if u > q {
			t.Fatalf("stripe %d: used %v > quota %v", i, u, q)
		}
	}
}

// TestShardedMinIOMatchesReference replays one random op sequence through
// ShardedMinIO and the single-threaded MinIO reference model: identical
// hits, misses, used bytes, and residency at every step.
func TestShardedMinIOMatchesReference(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		ref := NewMinIO(1000)
		sh := NewShardedMinIO(1000, shards)
		rng := rand.New(rand.NewSource(7))
		for op := 0; op < 20000; op++ {
			id := dataset.ItemID(rng.Intn(300))
			if rng.Intn(2) == 0 {
				if got, want := sh.Lookup(id), ref.Lookup(id); got != want {
					t.Fatalf("shards=%d op %d: Lookup(%d) = %v, reference %v", shards, op, id, got, want)
				}
			} else {
				bytes := float64(1 + rng.Intn(20))
				ref.Insert(id, bytes)
				sh.Insert(id, bytes)
			}
			if sh.UsedBytes() != ref.UsedBytes() {
				t.Fatalf("shards=%d op %d: UsedBytes %v != reference %v", shards, op, sh.UsedBytes(), ref.UsedBytes())
			}
		}
		if sh.Hits() != ref.Hits() || sh.Misses() != ref.Misses() {
			t.Fatalf("shards=%d: hits/misses %d/%d != reference %d/%d",
				shards, sh.Hits(), sh.Misses(), ref.Hits(), ref.Misses())
		}
		if sh.Rejected() != ref.Rejected() {
			t.Fatalf("shards=%d: rejected %d != reference %d", shards, sh.Rejected(), ref.Rejected())
		}
		if sh.Len() != ref.Len() {
			t.Fatalf("shards=%d: len %d != reference %d", shards, sh.Len(), ref.Len())
		}
	}
}

// TestShardedMinIORace hammers one cache from many goroutines and checks the
// two safety invariants the concurrent backend depends on, continuously and
// at quiescence: UsedBytes never exceeds CapBytes, and hits+misses accounts
// for every Lookup exactly. Run under -race this is the data-race battery
// for the lock-striping and the CAS budget.
func TestShardedMinIORace(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 5000
		capBytes   = 4096
		idSpace    = 1024
	)
	c := NewShardedMinIO(capBytes, 16)
	var lookups atomic.Int64
	var stop atomic.Bool

	// Invariant watcher: observes UsedBytes at arbitrary interleavings.
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for !stop.Load() {
			if u := c.UsedBytes(); u > c.CapBytes() {
				t.Errorf("UsedBytes %v > CapBytes %v", u, c.CapBytes())
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerG; op++ {
				id := dataset.ItemID(rng.Intn(idSpace))
				switch rng.Intn(3) {
				case 0:
					c.Lookup(id)
					lookups.Add(1)
				case 1:
					c.Insert(id, float64(1+rng.Intn(16)))
				default:
					c.Contains(id)
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	stop.Store(true)
	watcher.Wait()

	if got, want := c.Hits()+c.Misses(), lookups.Load(); got != want {
		t.Fatalf("hits+misses = %d, want exactly %d lookups", got, want)
	}
	if u := c.UsedBytes(); u > c.CapBytes() {
		t.Fatalf("UsedBytes %v > CapBytes %v at quiescence", u, c.CapBytes())
	}
	// At quiescence every reserved byte is resident: no budget leaked on
	// the duplicate-insert race path.
	if got, want := c.residentBytes(), c.UsedBytes(); got != want {
		t.Fatalf("resident bytes %v != reserved bytes %v (budget leak)", got, want)
	}
}

// TestShardedMinIOConcurrentEpoch drives a full disjoint epoch (every item
// once) from N workers: the cache must fill to exactly floor(cap/item) items
// regardless of scheduling, matching the single-threaded model.
func TestShardedMinIOConcurrentEpoch(t *testing.T) {
	const (
		items    = 4096
		itemSz   = 4.0
		capBytes = 1000 * itemSz
		workers  = 8
	)
	for _, shards := range []int{1, 8, 64} {
		c := NewShardedMinIO(capBytes, shards)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= items {
						return
					}
					id := dataset.ItemID(i)
					if !c.Lookup(id) {
						c.Insert(id, itemSz)
					}
				}
			}()
		}
		wg.Wait()
		if got := c.Len(); got != 1000 {
			t.Fatalf("shards=%d: cached %d items, want exactly floor(cap/item) = 1000", shards, got)
		}
		if got := c.UsedBytes(); got != capBytes {
			t.Fatalf("shards=%d: UsedBytes %v, want %v", shards, got, capBytes)
		}
		if h, m := c.Hits(), c.Misses(); h != 0 || m != items {
			t.Fatalf("shards=%d: warmup epoch hits/misses %d/%d, want 0/%d", shards, h, m, items)
		}
	}
}

// TestShardedQuotaConservation: after hammering (including the borrow slow
// path), the per-stripe quotas still sum to exactly CapBytes, every stripe
// respects used <= quota, and the resident bytes reconcile with the used
// counters — no budget leaked or minted by quota transfers.
func TestShardedQuotaConservation(t *testing.T) {
	const (
		items    = 4096
		itemSz   = 4.0
		capBytes = 1000 * itemSz
	)
	for _, shards := range []int{1, 8, 64} {
		c := NewShardedMinIO(capBytes, shards)
		if got := c.quotaSum(); got != c.capUnits {
			t.Fatalf("shards=%d: initial quota sum %v != capUnits %v", shards, got, c.capUnits)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for op := 0; op < 5000; op++ {
					id := dataset.ItemID(rng.Intn(items))
					if !c.Lookup(id) {
						c.Insert(id, itemSz)
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		if got := c.quotaSum(); got != c.capUnits {
			t.Fatalf("shards=%d: quota sum %v != capUnits %v after borrowing", shards, got, c.capUnits)
		}
		c.stripeInvariant(t)
		if got, want := c.residentBytes(), c.UsedBytes(); got != want {
			t.Fatalf("shards=%d: resident bytes %v != used bytes %v", shards, got, want)
		}
		if u := c.UsedBytes(); u > c.CapBytes() {
			t.Fatalf("shards=%d: UsedBytes %v > CapBytes %v", shards, u, c.CapBytes())
		}
	}
}

// TestShardedBorrowPath: a workload whose stripe occupancy is necessarily
// uneven (capacity == dataset bytes, so every stripe must hold exactly its
// hash share) exercises quota borrowing and still caches every item — the
// per-stripe split must never reject what the global budget can fund.
func TestShardedBorrowPath(t *testing.T) {
	const (
		items  = 4096
		itemSz = 4.0
	)
	for _, shards := range []int{8, 64} {
		c := NewShardedMinIO(items*itemSz, shards)
		for i := 0; i < items; i++ {
			c.Insert(dataset.ItemID(i), itemSz)
		}
		if got := c.Len(); got != items {
			t.Fatalf("shards=%d: cached %d items, want all %d (rejected %d)",
				shards, got, items, c.Rejected())
		}
		if got := c.UsedBytes(); got != items*itemSz {
			t.Fatalf("shards=%d: UsedBytes %v, want %v", shards, got, items*itemSz)
		}
		if c.Borrows() == 0 {
			t.Fatalf("shards=%d: expected the exact-fit workload to exercise the borrow path", shards)
		}
		if got := c.quotaSum(); got != c.capUnits {
			t.Fatalf("shards=%d: quota sum %v != capUnits %v", shards, got, c.capUnits)
		}
		c.stripeInvariant(t)
	}
}

// TestShardedFractionalSizesConserveBudget: item sizes that are not exactly
// representable in binary (0.1 bytes) must not let quota transfers mint or
// destroy budget — the integer fixed-point units make every transfer exact,
// so conservation and UsedBytes <= CapBytes hold unconditionally, and the
// cached count lands within one item of the float reference model (unit
// quantization rounds item charges up, never down).
func TestShardedFractionalSizesConserveBudget(t *testing.T) {
	const (
		items  = 2000
		itemSz = 0.1
		capB   = 100.0
	)
	for _, shards := range []int{8, 64} {
		c := NewShardedMinIO(capB, shards)
		ref := NewMinIO(capB)
		for i := 0; i < items; i++ {
			id := dataset.ItemID(i)
			c.Insert(id, itemSz)
			ref.Insert(id, itemSz)
		}
		if got := c.quotaSum(); got != c.capUnits {
			t.Fatalf("shards=%d: quota sum %v != capUnits %v (budget minted/destroyed)",
				shards, got, c.capUnits)
		}
		c.stripeInvariant(t)
		if u := c.UsedBytes(); u > c.CapBytes() {
			t.Fatalf("shards=%d: UsedBytes %v > CapBytes %v", shards, u, c.CapBytes())
		}
		if diff := c.Len() - ref.Len(); diff > 1 || diff < -1 {
			t.Fatalf("shards=%d: cached %d items, reference %d (quantization must cost at most one)",
				shards, c.Len(), ref.Len())
		}
	}
}

// TestShardedFullCacheFastReject: once a full sweep observes the budget
// exhausted, further inserts of anything at least that large reject on the
// fast path without taking the borrow mutex — a permanently full cache (the
// MinIO steady state) must not stampede the slow path every epoch.
func TestShardedFullCacheFastReject(t *testing.T) {
	const (
		items  = 1024
		itemSz = 4.0
	)
	c := NewShardedMinIO(items*itemSz, 16)
	for i := 0; i < items; i++ {
		c.Insert(dataset.ItemID(i), itemSz) // exact fit
	}
	c.Insert(dataset.ItemID(items), itemSz) // first overflow: sweeps, sets the ceiling
	base := c.Borrows()
	for i := 1; i <= 200; i++ {
		c.Insert(dataset.ItemID(items+i), itemSz)
	}
	if got := c.Borrows(); got != base {
		t.Fatalf("full-cache inserts took the borrow path %d more times, want 0", got-base)
	}
	if got := c.Rejected(); got != 201 {
		t.Fatalf("rejected %d, want 201", got)
	}
	if got := c.Len(); got != items {
		t.Fatalf("cached %d, want %d", got, items)
	}
}

// TestShardedPartitionedRace hammers the distributed cache from goroutines
// spread across servers; checks per-server classification accounting and the
// per-server byte budgets.
func TestShardedPartitionedRace(t *testing.T) {
	d := &dataset.Dataset{Name: "t", NumItems: 2048, TotalBytes: 2048 * 8}
	const nServers = 4
	p := NewShardedPartitioned(d, nServers, 200*8, 8, 42)

	var lookups [nServers]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s := int(seed) % nServers
			for op := 0; op < 4000; op++ {
				id := dataset.ItemID(rng.Intn(d.NumItems))
				loc, _ := p.Lookup(s, id)
				lookups[s].Add(1)
				if loc == Miss {
					p.Insert(s, id, d.ItemBytes(id))
				}
			}
		}(int64(g))
	}
	wg.Wait()

	for s := 0; s < nServers; s++ {
		local, remote, miss := p.Stats(s)
		if got, want := local+remote+miss, lookups[s].Load(); got != want {
			t.Fatalf("server %d: local+remote+miss = %d, want exactly %d lookups", s, got, want)
		}
		c := p.Server(s)
		if c.UsedBytes() > c.CapBytes() {
			t.Fatalf("server %d: UsedBytes %v > CapBytes %v", s, c.UsedBytes(), c.CapBytes())
		}
	}
}

// TestLockedWrapsPageCache checks the big-lock adapter under concurrency:
// the page cache's recency lists must survive -race and respect capacity.
func TestLockedWrapsPageCache(t *testing.T) {
	inner := pagecache.New(pagecache.TwoList, 512, 99)
	c := NewLocked(inner)
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 3000; op++ {
				id := dataset.ItemID(rng.Intn(256))
				if !c.Lookup(id) {
					c.Insert(id, float64(1+rng.Intn(8)))
				}
				lookups.Add(1)
			}
		}(int64(g))
	}
	wg.Wait()
	if got, want := c.Hits()+c.Misses(), lookups.Load(); got != want {
		t.Fatalf("hits+misses = %d, want %d", got, want)
	}
	if c.UsedBytes() > c.CapBytes() {
		t.Fatalf("UsedBytes %v > CapBytes %v", c.UsedBytes(), c.CapBytes())
	}
}

// TestShardedMinIOZeroAndTinyCapacity: degenerate capacities must neither
// panic nor admit items they have no budget for.
func TestShardedMinIOZeroAndTinyCapacity(t *testing.T) {
	for _, capBytes := range []float64{0, 0.5, -10} {
		c := NewShardedMinIO(capBytes, 4)
		for i := 0; i < 100; i++ {
			id := dataset.ItemID(i)
			c.Lookup(id)
			c.Insert(id, 1)
		}
		if c.Len() != 0 {
			t.Fatalf("cap=%v: cached %d items, want 0", capBytes, c.Len())
		}
		if c.Rejected() != 100 {
			t.Fatalf("cap=%v: rejected %d, want 100", capBytes, c.Rejected())
		}
	}
}

// TestShardedMinIOShardRounding: shard counts round up to powers of two.
func TestShardedMinIOShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {9, 16}, {64, 64},
		// Absurd values clamp instead of overflowing the rounding loop or
		// allocating gigabytes of stripes.
		{MaxShards + 1, MaxShards}, {1 << 40, MaxShards}, {int(^uint(0) >> 1), MaxShards},
	} {
		if got := NewShardedMinIO(10, tc.in).NumShards(); got != tc.want {
			t.Errorf("NumShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
