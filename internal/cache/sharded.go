// Concurrent cache implementations: ShardedMinIO and ShardedPartitioned are
// goroutine-safe counterparts of MinIO and Partitioned for the concurrent
// loader backend, and Locked is the single-big-lock adapter used both as the
// benchmark baseline and to share the page-cache simulation across workers.
//
// Concurrency model: a ShardedMinIO stripes its item map and hit/miss
// counters across P cache-line-padded shards, each guarded by its own
// RWMutex, so lookups of different items rarely contend. The byte budget is
// a single CAS word shared by all shards — Insert reserves bytes under the
// stripe's write lock once the item is known absent, so UsedBytes() can
// never exceed CapBytes() at any interleaving, and (unlike a per-shard
// budget split) an equal-sized workload caches exactly floor(cap/item)
// items, byte-for-byte the same as the single-threaded MinIO reference
// model. Counters are atomics: hits+misses always equals the number of
// Lookup calls, exactly.
package cache

import (
	"sync"
	"sync/atomic"

	"datastall/internal/dataset"
	"datastall/internal/xatomic"
)

// Interface conformance for both MinIO implementations and the adapter.
var (
	_ Cache = (*MinIO)(nil)
	_ Cache = (*ShardedMinIO)(nil)
	_ Cache = (*Locked)(nil)
)

// minioShard is one lock stripe with its own hit/miss counters (a single
// global counter pair would put one contended cache line back on the hot
// path the striping exists to remove). The padding keeps neighbouring
// shards on different cache lines so uncontended stripes don't false-share.
type minioShard struct {
	mu           sync.RWMutex
	items        map[dataset.ItemID]float64
	hits, misses atomic.Int64
	_            [80]byte
}

// ShardedMinIO is a lock-striped, goroutine-safe MinIO cache (§4.1
// semantics: insert until full, never evict). The zero value is not usable;
// call NewShardedMinIO.
type ShardedMinIO struct {
	capBytes float64
	shards   []minioShard
	mask     uint32

	// used is the reserved byte count; all budget movement goes through
	// its CAS loops (xatomic.Float64.TryAdd is the reservation primitive).
	used xatomic.Float64

	rejected atomic.Int64 // cold path: full-cache inserts only
}

// DefaultShards is the shard count NewShardedMinIO uses when asked for <= 0.
const DefaultShards = 64

// MaxShards caps the stripe count (shards are ~136 bytes each; past a few
// thousand stripes contention is gone and more just wastes memory).
const MaxShards = 1 << 16

// NewShardedMinIO returns an empty sharded MinIO cache with the given byte
// capacity. nShards is rounded up to a power of two and clamped to
// [1, MaxShards]; <= 0 selects DefaultShards.
func NewShardedMinIO(capBytes float64, nShards int) *ShardedMinIO {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if nShards > MaxShards {
		nShards = MaxShards
	}
	n := 1
	for n < nShards {
		n <<= 1
	}
	c := &ShardedMinIO{capBytes: capBytes, shards: make([]minioShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i].items = make(map[dataset.ItemID]float64)
	}
	return c
}

// NumShards returns the lock-stripe count.
func (c *ShardedMinIO) NumShards() int { return len(c.shards) }

// shardFor mixes the id so consecutive IDs spread across stripes.
func (c *ShardedMinIO) shardFor(id dataset.ItemID) *minioShard {
	h := uint64(uint32(id)) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return &c.shards[uint32(h)&c.mask]
}

// reserve atomically claims bytes of budget; false if it would exceed cap.
func (c *ShardedMinIO) reserve(bytes float64) bool {
	return c.used.TryAdd(bytes, c.capBytes)
}

// Lookup implements Cache.
func (c *ShardedMinIO) Lookup(id dataset.ItemID) bool {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.items[id]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return ok
}

// Insert implements Cache: first-come-first-cached, never evict. The budget
// is reserved under the shard's write lock, only once the item is known to
// be absent: same-id inserts serialize on the stripe, so duplicate/rejected
// accounting is exactly the reference model's, and a successful reservation
// is always followed by the insert — UsedBytes <= CapBytes holds at every
// interleaving with no release path to race on.
func (c *ShardedMinIO) Insert(id dataset.ItemID, bytes float64) {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, dup := sh.items[id]
	sh.mu.RUnlock()
	if dup {
		return
	}
	sh.mu.Lock()
	if _, dup := sh.items[id]; dup {
		sh.mu.Unlock()
		return
	}
	if !c.reserve(bytes) {
		sh.mu.Unlock()
		c.rejected.Add(1)
		return
	}
	sh.items[id] = bytes
	sh.mu.Unlock()
}

// Contains implements Cache.
func (c *ShardedMinIO) Contains(id dataset.ItemID) bool {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.items[id]
	sh.mu.RUnlock()
	return ok
}

// UsedBytes implements Cache.
func (c *ShardedMinIO) UsedBytes() float64 { return c.used.Load() }

// CapBytes implements Cache.
func (c *ShardedMinIO) CapBytes() float64 { return c.capBytes }

// Hits implements Cache (sums the per-stripe counters).
func (c *ShardedMinIO) Hits() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].hits.Load()
	}
	return t
}

// Misses implements Cache (sums the per-stripe counters).
func (c *ShardedMinIO) Misses() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].misses.Load()
	}
	return t
}

// Rejected returns inserts refused because the cache was full.
func (c *ShardedMinIO) Rejected() int64 { return c.rejected.Load() }

// Len returns the number of cached items (locks every shard; not a hot path).
func (c *ShardedMinIO) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// ResetStats implements Cache.
func (c *ShardedMinIO) ResetStats() {
	for i := range c.shards {
		c.shards[i].hits.Store(0)
		c.shards[i].misses.Store(0)
	}
	c.rejected.Store(0)
}

// HitRate returns hits/(hits+misses).
func (c *ShardedMinIO) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Locked wraps any single-threaded Cache in one big mutex, making it safe
// for concurrent use. It is the benchmark baseline ShardedMinIO is measured
// against, and how the page-cache simulation (whose recency lists cannot be
// striped without changing eviction order) is shared across loader workers.
type Locked struct {
	mu    sync.Mutex
	inner Cache
}

// NewLocked wraps inner; the wrapper must be the only path to inner from
// then on.
func NewLocked(inner Cache) *Locked { return &Locked{inner: inner} }

// Lookup implements Cache.
func (l *Locked) Lookup(id dataset.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Lookup(id)
}

// Insert implements Cache.
func (l *Locked) Insert(id dataset.ItemID, bytes float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Insert(id, bytes)
}

// Contains implements Cache.
func (l *Locked) Contains(id dataset.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Contains(id)
}

// UsedBytes implements Cache.
func (l *Locked) UsedBytes() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.UsedBytes()
}

// CapBytes implements Cache.
func (l *Locked) CapBytes() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.CapBytes()
}

// Hits implements Cache.
func (l *Locked) Hits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Hits()
}

// Misses implements Cache.
func (l *Locked) Misses() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Misses()
}

// ResetStats implements Cache.
func (l *Locked) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.ResetStats()
}

// serverCounters are one server's partitioned-lookup counters, padded so
// servers on different NUMA-ish cache lines don't false-share.
type serverCounters struct {
	local, remote, miss atomic.Int64
	_                   [104]byte
}

// ShardedPartitioned is the goroutine-safe counterpart of Partitioned: the
// same static owner sharding and remote-DRAM routing (§4.2), but over
// ShardedMinIO per-server caches with atomic classification counters, so
// many loader workers on many servers can fetch concurrently.
type ShardedPartitioned struct {
	caches []*ShardedMinIO
	owner  []int32 // item -> owning server (immutable after construction)
	stats  []serverCounters
}

// NewShardedPartitioned builds the concurrent partitioned cache for nServers
// over d: capBytes of ShardedMinIO (nShards stripes each) per server, with
// the same seeded random disjoint owner shards as NewPartitioned.
func NewShardedPartitioned(d *dataset.Dataset, nServers int, capBytes float64, nShards int, seed int64) *ShardedPartitioned {
	p := &ShardedPartitioned{
		caches: make([]*ShardedMinIO, nServers),
		owner:  make([]int32, d.NumItems),
		stats:  make([]serverCounters, nServers),
	}
	for i := range p.caches {
		p.caches[i] = NewShardedMinIO(capBytes, nShards)
	}
	shards := dataset.SplitRandom(d, nServers, seed)
	for s, sh := range shards {
		for _, id := range sh.Items {
			p.owner[id] = int32(s)
		}
	}
	return p
}

// Owner returns the server that owns (may cache) item id.
func (p *ShardedPartitioned) Owner(id dataset.ItemID) int { return int(p.owner[id]) }

// Server returns server s's local sharded MinIO cache.
func (p *ShardedPartitioned) Server(s int) *ShardedMinIO { return p.caches[s] }

// NumServers returns the server count.
func (p *ShardedPartitioned) NumServers() int { return len(p.caches) }

// Lookup classifies a fetch of id by server s; for a RemoteHit the second
// result is the serving server. Safe for concurrent use.
func (p *ShardedPartitioned) Lookup(s int, id dataset.ItemID) (Location, int) {
	if p.caches[s].Lookup(id) {
		p.stats[s].local.Add(1)
		return LocalHit, s
	}
	o := int(p.owner[id])
	if o != s && p.caches[o].Contains(id) {
		p.stats[s].remote.Add(1)
		return RemoteHit, o
	}
	p.stats[s].miss.Add(1)
	return Miss, -1
}

// Insert offers id (fetched from storage by server s); only the owner
// caches, exactly as Partitioned.Insert.
func (p *ShardedPartitioned) Insert(s int, id dataset.ItemID, bytes float64) {
	if int(p.owner[id]) != s {
		return
	}
	p.caches[s].Insert(id, bytes)
}

// Stats returns (local, remote, miss) counters for server s.
func (p *ShardedPartitioned) Stats(s int) (local, remote, miss int64) {
	return p.stats[s].local.Load(), p.stats[s].remote.Load(), p.stats[s].miss.Load()
}

// ResetStats clears all per-server counters (after the warmup epoch).
func (p *ShardedPartitioned) ResetStats() {
	for i := range p.caches {
		p.caches[i].ResetStats()
		p.stats[i].local.Store(0)
		p.stats[i].remote.Store(0)
		p.stats[i].miss.Store(0)
	}
}

// AggregateUsedBytes returns cached bytes across all servers.
func (p *ShardedPartitioned) AggregateUsedBytes() float64 {
	t := 0.0
	for _, c := range p.caches {
		t += c.UsedBytes()
	}
	return t
}

// OwnerShards returns the static per-server owner shards in ascending item
// order — the epoch-0 cache-population orders (§4.2).
func (p *ShardedPartitioned) OwnerShards() []dataset.Shard {
	return ownerShardsOf(p.owner, len(p.caches))
}
