// Concurrent cache implementations: ShardedMinIO and ShardedPartitioned are
// goroutine-safe counterparts of MinIO and Partitioned for the concurrent
// loader backend, and Locked is the single-big-lock adapter used both as the
// benchmark baseline and to share the page-cache simulation across workers.
//
// Concurrency model: a ShardedMinIO stripes its item map and hit/miss
// counters across P cache-line-padded shards, each guarded by its own
// RWMutex, so lookups of different items rarely contend. The byte budget is
// striped too: each stripe owns a quota (the quotas sum exactly to the
// capacity), and its used/quota fields are plain integers — fixed-point
// budget units of 2^-20 bytes, so every transfer and comparison is exact,
// with no float rounding that could mint or destroy budget — mutated only
// under the stripe's write lock. The Insert fast path therefore touches no
// shared mutable word at all: the global CAS budget float this replaced
// was the one cache line every insert in the system contended on. A stripe
// that exhausts its quota borrows spare quota from the other stripes on a
// mutex-serialized slow path; integer transfers conserve total quota
// exactly, so the single-budget semantics are preserved: an insert is
// rejected iff the global spare budget is short, UsedBytes() can never
// exceed CapBytes() at any interleaving (MinIO never evicts, so per-stripe
// used units are monotone), and an equal-sized workload caches exactly
// floor(cap/item) items — matching the single-threaded MinIO reference
// model (bit-for-bit whenever sizes are exactly representable in units,
// which covers every integer or dyadic byte size). Once the budget is
// globally exhausted, a monotone spare ceiling (one read-mostly atomic,
// never written on the fast path) lets full-cache inserts reject
// immediately instead of stampeding the borrow mutex. Lookup counters are
// per-stripe atomics: hits+misses always equals the number of Lookup
// calls, exactly.
package cache

import (
	"math"
	"sync"
	"sync/atomic"

	"datastall/internal/dataset"
)

// Interface conformance for the MinIO implementations and the adapter.
var (
	_ Cache = (*MinIO)(nil)
	_ Cache = (*MapMinIO)(nil)
	_ Cache = (*ShardedMinIO)(nil)
	_ Cache = (*Locked)(nil)
)

// budgetScale converts bytes to fixed-point budget units (2^-20 bytes per
// unit): integer budget arithmetic is exact, so quota transfers can never
// mint or destroy capacity the way float rounding could. Item sizes are
// rounded up (never under-charge) and the capacity down (never
// over-grant); sizes that are exact in units — any integer or dyadic
// fraction of a byte — convert losslessly, which keeps the reference-model
// equivalence bit-for-bit for such workloads. A TiB-scale capacity is
// ~2^60 units, well inside int64.
const budgetScale = 1 << 20

// toUnitsCeil converts an item size to budget units, rounding up.
func toUnitsCeil(bytes float64) int64 {
	u := math.Ceil(bytes * budgetScale)
	if u >= math.MaxInt64 {
		return math.MaxInt64
	}
	if u <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(u)
}

// toUnitsFloor converts a capacity to budget units, rounding down.
func toUnitsFloor(bytes float64) int64 {
	u := math.Floor(bytes * budgetScale)
	if u >= math.MaxInt64 {
		return math.MaxInt64
	}
	if u <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(u)
}

// minioShard is one lock stripe with its own hit/miss counters (a single
// global counter pair would put one contended cache line back on the hot
// path the striping exists to remove) and its own slice of the byte budget.
// quota, used and rejected are guarded by mu — plain fields, no atomics on
// the insert path. The padding keeps the struct at 128 bytes (two cache
// lines) so neighbouring shards never false-share.
type minioShard struct {
	mu           sync.RWMutex
	items        map[dataset.ItemID]float64
	quota        int64 // this stripe's share of the budget, in units (mu)
	used         int64 // resident units, used <= quota always (mu)
	rejected     int64 // inserts refused: global budget exhausted (mu)
	hits, misses atomic.Int64
	_            [56]byte
}

// ShardedMinIO is a lock-striped, goroutine-safe MinIO cache (§4.1
// semantics: insert until full, never evict). The zero value is not usable;
// call NewShardedMinIO.
type ShardedMinIO struct {
	capBytes float64
	capUnits int64
	shards   []minioShard
	mask     uint32

	// spareCeiling is an upper bound on the global spare budget, in units.
	// Spare is monotone non-increasing (inserts only consume; failed
	// borrow sweeps conserve), so after a sweep observes spare = g every
	// request larger than g can reject without touching borrowMu — the
	// fast path only ever READS this word, so the cache line stays shared
	// across cores instead of bouncing.
	spareCeiling atomic.Int64

	// borrowMu serializes the quota-borrowing slow path: one borrower at a
	// time gathers spare quota across stripes, so rejection decisions are
	// made against a consistent view of the global spare budget.
	borrowMu sync.Mutex
	borrows  int64 // slow-path invocations (borrowMu)
}

// DefaultShards is the shard count NewShardedMinIO uses when asked for <= 0.
const DefaultShards = 64

// MaxShards caps the stripe count (shards are 128 bytes each; past a few
// thousand stripes contention is gone and more just wastes memory).
const MaxShards = 1 << 16

// NewShardedMinIO returns an empty sharded MinIO cache with the given byte
// capacity. nShards is rounded up to a power of two and clamped to
// [1, MaxShards]; <= 0 selects DefaultShards.
func NewShardedMinIO(capBytes float64, nShards int) *ShardedMinIO {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if nShards > MaxShards {
		nShards = MaxShards
	}
	n := 1
	for n < nShards {
		n <<= 1
	}
	c := &ShardedMinIO{
		capBytes: capBytes,
		capUnits: toUnitsFloor(capBytes),
		shards:   make([]minioShard, n),
		mask:     uint32(n - 1),
	}
	c.spareCeiling.Store(math.MaxInt64)
	// Integer quota split: base units everywhere, the remainder spread one
	// unit at a time — the quotas sum to exactly capUnits by construction.
	base := c.capUnits / int64(n)
	rem := c.capUnits - base*int64(n) // same sign as capUnits
	for i := range c.shards {
		c.shards[i].items = make(map[dataset.ItemID]float64)
		c.shards[i].quota = base
		if int64(i) < rem {
			c.shards[i].quota++
		} else if int64(i) < -rem {
			c.shards[i].quota--
		}
	}
	return c
}

// NumShards returns the lock-stripe count.
func (c *ShardedMinIO) NumShards() int { return len(c.shards) }

// shardFor mixes the id so consecutive IDs spread across stripes.
func (c *ShardedMinIO) shardFor(id dataset.ItemID) *minioShard {
	h := uint64(uint32(id)) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return &c.shards[uint32(h)&c.mask]
}

// Lookup implements Cache.
func (c *ShardedMinIO) Lookup(id dataset.ItemID) bool {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.items[id]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return ok
}

// Insert implements Cache: first-come-first-cached, never evict. The fast
// path funds the insert entirely from the home stripe's quota under the
// stripe's write lock — no shared mutable word, no cross-stripe traffic.
// Same-id inserts serialize on the stripe, so duplicate accounting is
// exactly the reference model's, and used <= quota holds per stripe at
// every interleaving, which bounds UsedBytes by CapBytes globally. Once
// the cache is full (the permanent steady state: MinIO never evicts),
// the spare-ceiling read rejects in O(1) instead of sweeping stripes.
func (c *ShardedMinIO) Insert(id dataset.ItemID, bytes float64) {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, dup := sh.items[id]
	sh.mu.RUnlock()
	if dup {
		return
	}
	u := toUnitsCeil(bytes)
	sh.mu.Lock()
	if _, dup := sh.items[id]; dup {
		sh.mu.Unlock()
		return
	}
	if sh.used+u <= sh.quota {
		sh.items[id] = bytes
		sh.used += u
		sh.mu.Unlock()
		return
	}
	if u > c.spareCeiling.Load() {
		// The global spare budget was already observed below u and spare
		// only ever shrinks: reject without touching the borrow path.
		sh.rejected++
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	c.insertSlow(sh, id, bytes, u)
}

// insertSlow is the stripe-quota-exhausted path: under borrowMu it gathers
// spare quota (quota - used) from every stripe — the home stripe included —
// into a private pot, then transfers the pot to the home stripe and retries
// the insert there. Integer quota moves between stripes, so the total never
// changes, and spare only shrinks concurrently (inserts are the only other
// budget movement and they consume); if even a serialized full sweep
// cannot gather u units of spare, the global budget really is exhausted,
// the insert is rejected — the exact reference-model condition — and the
// observed spare becomes the new spare ceiling so subsequent full-cache
// inserts of anything larger reject on the fast path. A failed gather's
// pot is left on the home stripe's quota: nothing is lost, later (smaller)
// requests will find it there.
func (c *ShardedMinIO) insertSlow(home *minioShard, id dataset.ItemID, bytes float64, u int64) {
	c.borrowMu.Lock()
	defer c.borrowMu.Unlock()
	c.borrows++
	gathered := int64(0)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if spare := sh.quota - sh.used; spare > 0 {
			take := spare
			if gathered+take > u {
				take = u - gathered
			}
			sh.quota -= take
			gathered += take
		}
		sh.mu.Unlock()
		if gathered >= u {
			break
		}
	}
	if gathered < u {
		// Full sweep: the whole cache's spare is exactly gathered units.
		c.spareCeiling.Store(gathered)
	}
	home.mu.Lock()
	defer home.mu.Unlock()
	home.quota += gathered
	if _, dup := home.items[id]; dup {
		return // raced duplicate; the pot stays as home spare
	}
	if home.used+u > home.quota {
		home.rejected++
		return
	}
	home.items[id] = bytes
	home.used += u
}

// Contains implements Cache.
func (c *ShardedMinIO) Contains(id dataset.ItemID) bool {
	sh := c.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.items[id]
	sh.mu.RUnlock()
	return ok
}

// UsedBytes implements Cache (sums the per-stripe counters; per-stripe
// used units are monotone, so the non-atomic snapshot never overstates the
// final total and UsedBytes <= CapBytes holds for any observation). The
// result is exact whenever item sizes are exact in budget units.
func (c *ShardedMinIO) UsedBytes() float64 {
	t := int64(0)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		t += sh.used
		sh.mu.RUnlock()
	}
	return float64(t) / budgetScale
}

// CapBytes implements Cache.
func (c *ShardedMinIO) CapBytes() float64 { return c.capBytes }

// Hits implements Cache (sums the per-stripe counters).
func (c *ShardedMinIO) Hits() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].hits.Load()
	}
	return t
}

// Misses implements Cache (sums the per-stripe counters).
func (c *ShardedMinIO) Misses() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].misses.Load()
	}
	return t
}

// Rejected returns inserts refused because the cache was full.
func (c *ShardedMinIO) Rejected() int64 {
	var t int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		t += sh.rejected
		sh.mu.RUnlock()
	}
	return t
}

// Borrows returns how many inserts took the quota-borrowing slow path.
func (c *ShardedMinIO) Borrows() int64 {
	c.borrowMu.Lock()
	defer c.borrowMu.Unlock()
	return c.borrows
}

// Len returns the number of cached items (locks every shard; not a hot path).
func (c *ShardedMinIO) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// ResetStats implements Cache.
func (c *ShardedMinIO) ResetStats() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.mu.Lock()
		sh.rejected = 0
		sh.mu.Unlock()
	}
}

// HitRate returns hits/(hits+misses).
func (c *ShardedMinIO) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Locked wraps any single-threaded Cache in one big mutex, making it safe
// for concurrent use. It is the benchmark baseline ShardedMinIO is measured
// against, and how the page-cache simulation (whose recency lists cannot be
// striped without changing eviction order) is shared across loader workers.
type Locked struct {
	mu    sync.Mutex
	inner Cache
}

// NewLocked wraps inner; the wrapper must be the only path to inner from
// then on.
func NewLocked(inner Cache) *Locked { return &Locked{inner: inner} }

// Lookup implements Cache.
func (l *Locked) Lookup(id dataset.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Lookup(id)
}

// Insert implements Cache.
func (l *Locked) Insert(id dataset.ItemID, bytes float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Insert(id, bytes)
}

// Contains implements Cache.
func (l *Locked) Contains(id dataset.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Contains(id)
}

// UsedBytes implements Cache.
func (l *Locked) UsedBytes() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.UsedBytes()
}

// CapBytes implements Cache.
func (l *Locked) CapBytes() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.CapBytes()
}

// Hits implements Cache.
func (l *Locked) Hits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Hits()
}

// Misses implements Cache.
func (l *Locked) Misses() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Misses()
}

// ResetStats implements Cache.
func (l *Locked) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.ResetStats()
}

// serverCounters are one server's partitioned-lookup counters, padded so
// servers on different NUMA-ish cache lines don't false-share.
type serverCounters struct {
	local, remote, miss atomic.Int64
	_                   [104]byte
}

// ShardedPartitioned is the goroutine-safe counterpart of Partitioned: the
// same static owner sharding and remote-DRAM routing (§4.2), but over
// ShardedMinIO per-server caches with atomic classification counters, so
// many loader workers on many servers can fetch concurrently.
type ShardedPartitioned struct {
	caches []*ShardedMinIO
	owner  []int32 // item -> owning server (immutable after construction)
	stats  []serverCounters
}

// NewShardedPartitioned builds the concurrent partitioned cache for nServers
// over d: capBytes of ShardedMinIO (nShards stripes each) per server, with
// the same seeded random disjoint owner shards as NewPartitioned.
func NewShardedPartitioned(d *dataset.Dataset, nServers int, capBytes float64, nShards int, seed int64) *ShardedPartitioned {
	p := &ShardedPartitioned{
		caches: make([]*ShardedMinIO, nServers),
		owner:  make([]int32, d.NumItems),
		stats:  make([]serverCounters, nServers),
	}
	for i := range p.caches {
		p.caches[i] = NewShardedMinIO(capBytes, nShards)
	}
	shards := dataset.SplitRandom(d, nServers, seed)
	for s, sh := range shards {
		for _, id := range sh.Items {
			p.owner[id] = int32(s)
		}
	}
	return p
}

// Owner returns the server that owns (may cache) item id.
func (p *ShardedPartitioned) Owner(id dataset.ItemID) int { return int(p.owner[id]) }

// Server returns server s's local sharded MinIO cache.
func (p *ShardedPartitioned) Server(s int) *ShardedMinIO { return p.caches[s] }

// NumServers returns the server count.
func (p *ShardedPartitioned) NumServers() int { return len(p.caches) }

// Lookup classifies a fetch of id by server s; for a RemoteHit the second
// result is the serving server. Safe for concurrent use.
func (p *ShardedPartitioned) Lookup(s int, id dataset.ItemID) (Location, int) {
	if p.caches[s].Lookup(id) {
		p.stats[s].local.Add(1)
		return LocalHit, s
	}
	o := int(p.owner[id])
	if o != s && p.caches[o].Contains(id) {
		p.stats[s].remote.Add(1)
		return RemoteHit, o
	}
	p.stats[s].miss.Add(1)
	return Miss, -1
}

// Insert offers id (fetched from storage by server s); only the owner
// caches, exactly as Partitioned.Insert.
func (p *ShardedPartitioned) Insert(s int, id dataset.ItemID, bytes float64) {
	if int(p.owner[id]) != s {
		return
	}
	p.caches[s].Insert(id, bytes)
}

// Stats returns (local, remote, miss) counters for server s.
func (p *ShardedPartitioned) Stats(s int) (local, remote, miss int64) {
	return p.stats[s].local.Load(), p.stats[s].remote.Load(), p.stats[s].miss.Load()
}

// ResetStats clears all per-server counters (after the warmup epoch).
func (p *ShardedPartitioned) ResetStats() {
	for i := range p.caches {
		p.caches[i].ResetStats()
		p.stats[i].local.Store(0)
		p.stats[i].remote.Store(0)
		p.stats[i].miss.Store(0)
	}
}

// AggregateUsedBytes returns cached bytes across all servers.
func (p *ShardedPartitioned) AggregateUsedBytes() float64 {
	t := 0.0
	for _, c := range p.caches {
		t += c.UsedBytes()
	}
	return t
}

// OwnerShards returns the static per-server owner shards in ascending item
// order — the epoch-0 cache-population orders (§4.2).
func (p *ShardedPartitioned) OwnerShards() []dataset.Shard {
	return ownerShardsOf(p.owner, len(p.caches))
}
