// Package cache provides the software-cache framework for the data loader:
// the common Cache interface, the paper's MinIO cache (§4.1), and the
// cluster-wide partitioned cache used in distributed training (§4.2).
package cache

import (
	"fmt"

	"datastall/internal/dataset"
)

// SumUsedBytes totals occupancy across a slice of caches — any element
// type with a UsedBytes method (per-server cache slices in the fetchers
// report aggregate occupancy through this).
func SumUsedBytes[C interface{ UsedBytes() float64 }](caches []C) float64 {
	t := 0.0
	for _, c := range caches {
		t += c.UsedBytes()
	}
	return t
}

// Cache is the item-granular cache interface shared by the OS page-cache
// simulation and the MinIO cache.
type Cache interface {
	// Lookup reports whether id is resident, updating policy state and
	// hit/miss counters.
	Lookup(id dataset.ItemID) bool
	// Insert offers id to the cache after a storage fetch.
	Insert(id dataset.ItemID, bytes float64)
	// Contains reports residency without side effects.
	Contains(id dataset.ItemID) bool
	// UsedBytes returns resident bytes; CapBytes the capacity.
	UsedBytes() float64
	CapBytes() float64
	// Hits and Misses return lookup counters; ResetStats clears them.
	Hits() int64
	Misses() int64
	ResetStats()
}

// MinIO is the paper's DNN-aware software cache (§4.1): items are inserted
// until capacity is reached and then *never replaced*. Because every item in
// a DNN epoch is accessed exactly once with equal probability, what matters
// is not which items are cached but that cached items are never evicted
// before use; MinIO therefore delivers exactly (capacity/dataset) hits per
// epoch — the thrashing-free minimum disk I/O.
//
// ItemIDs are dense small integers (0..NumItems-1), so residency is a
// []uint8 indexed directly by ID instead of a map: Lookup is one
// bounds-checked load — no hashing, no bucket chasing, and zero allocations
// in steady state (map lookups dominated the old Lookup profile). The
// slice grows on demand; pre-size it with NewMinIOSized when the dataset
// size is known. Negative IDs are never resident and never cached.
// MapMinIO is the retained map-backed reference implementation.
type MinIO struct {
	capBytes  float64
	usedBytes float64
	present   []uint8
	count     int

	hits, misses int64
	rejected     int64 // inserts refused because the cache was full
}

// NewMinIO returns an empty MinIO cache with the given byte capacity.
func NewMinIO(capBytes float64) *MinIO {
	return &MinIO{capBytes: capBytes}
}

// NewMinIOSized returns an empty MinIO cache with its residency slice
// pre-sized for numItems dense IDs, so inserts never reallocate.
func NewMinIOSized(capBytes float64, numItems int) *MinIO {
	m := NewMinIO(capBytes)
	if numItems > 0 {
		m.present = make([]uint8, numItems)
	}
	return m
}

// Lookup implements Cache.
func (m *MinIO) Lookup(id dataset.ItemID) bool {
	if i := int(id); uint(i) < uint(len(m.present)) && m.present[i] != 0 {
		m.hits++
		return true
	}
	m.misses++
	return false
}

// Insert implements Cache: first-come-first-cached, never evict.
func (m *MinIO) Insert(id dataset.ItemID, bytes float64) {
	i := int(id)
	if i < 0 {
		return
	}
	if i < len(m.present) && m.present[i] != 0 {
		return
	}
	if m.usedBytes+bytes > m.capBytes {
		m.rejected++
		return
	}
	if i >= len(m.present) {
		m.grow(i + 1)
	}
	m.present[i] = 1
	m.count++
	m.usedBytes += bytes
}

// grow extends the residency slice to at least n entries (amortized
// doubling, so ad-hoc IDs stay cheap when the cache wasn't pre-sized).
func (m *MinIO) grow(n int) {
	if n <= cap(m.present) {
		m.present = m.present[:n]
		return
	}
	newCap := 2 * cap(m.present)
	if newCap < n {
		newCap = n
	}
	if newCap < 64 {
		newCap = 64
	}
	np := make([]uint8, n, newCap)
	copy(np, m.present)
	m.present = np
}

// Contains implements Cache.
func (m *MinIO) Contains(id dataset.ItemID) bool {
	i := int(id)
	return uint(i) < uint(len(m.present)) && m.present[i] != 0
}

// UsedBytes implements Cache.
func (m *MinIO) UsedBytes() float64 { return m.usedBytes }

// CapBytes implements Cache.
func (m *MinIO) CapBytes() float64 { return m.capBytes }

// Hits implements Cache.
func (m *MinIO) Hits() int64 { return m.hits }

// Misses implements Cache.
func (m *MinIO) Misses() int64 { return m.misses }

// Rejected returns inserts refused because the cache was full.
func (m *MinIO) Rejected() int64 { return m.rejected }

// Len returns the number of cached items.
func (m *MinIO) Len() int { return m.count }

// ResetStats implements Cache.
func (m *MinIO) ResetStats() { m.hits, m.misses, m.rejected = 0, 0, 0 }

// HitRate returns hits/(hits+misses).
func (m *MinIO) HitRate() float64 {
	t := m.hits + m.misses
	if t == 0 {
		return 0
	}
	return float64(m.hits) / float64(t)
}

// MapMinIO is the original map-backed MinIO implementation, retained as
// the reference model (with the same negative-ID guard the dense MinIO
// applies): the equivalence tests replay identical op sequences through it
// and the dense MinIO, and the old-vs-new benchmarks (BENCH_2.json)
// quantify what the dense layout saves. New code should use MinIO.
type MapMinIO struct {
	capBytes  float64
	usedBytes float64
	items     map[dataset.ItemID]float64

	hits, misses int64
	rejected     int64
}

// NewMapMinIO returns an empty map-backed MinIO cache.
func NewMapMinIO(capBytes float64) *MapMinIO {
	return &MapMinIO{capBytes: capBytes, items: make(map[dataset.ItemID]float64)}
}

// Lookup implements Cache.
func (m *MapMinIO) Lookup(id dataset.ItemID) bool {
	if _, ok := m.items[id]; ok {
		m.hits++
		return true
	}
	m.misses++
	return false
}

// Insert implements Cache: first-come-first-cached, never evict.
func (m *MapMinIO) Insert(id dataset.ItemID, bytes float64) {
	if id < 0 {
		return
	}
	if _, ok := m.items[id]; ok {
		return
	}
	if m.usedBytes+bytes > m.capBytes {
		m.rejected++
		return
	}
	m.items[id] = bytes
	m.usedBytes += bytes
}

// Contains implements Cache.
func (m *MapMinIO) Contains(id dataset.ItemID) bool {
	_, ok := m.items[id]
	return ok
}

// UsedBytes implements Cache.
func (m *MapMinIO) UsedBytes() float64 { return m.usedBytes }

// CapBytes implements Cache.
func (m *MapMinIO) CapBytes() float64 { return m.capBytes }

// Hits implements Cache.
func (m *MapMinIO) Hits() int64 { return m.hits }

// Misses implements Cache.
func (m *MapMinIO) Misses() int64 { return m.misses }

// Rejected returns inserts refused because the cache was full.
func (m *MapMinIO) Rejected() int64 { return m.rejected }

// Len returns the number of cached items.
func (m *MapMinIO) Len() int { return len(m.items) }

// ResetStats implements Cache.
func (m *MapMinIO) ResetStats() { m.hits, m.misses, m.rejected = 0, 0, 0 }

// Location classifies where a partitioned-cache lookup was satisfied.
type Location int

// Lookup outcomes for the partitioned cache.
const (
	// Miss: the item is cached nowhere; fetch from local storage.
	Miss Location = iota
	// LocalHit: resident in the requesting server's MinIO cache.
	LocalHit
	// RemoteHit: resident in another server's MinIO cache; fetch over TCP.
	RemoteHit
)

// String returns the location name.
func (l Location) String() string {
	switch l {
	case LocalHit:
		return "local"
	case RemoteHit:
		return "remote"
	default:
		return "miss"
	}
}

// Partitioned coordinates the MinIO caches of the servers in one distributed
// training job (§4.2). The dataset is statically sharded across servers;
// each server populates its cache only with items of its own shard, and a
// metadata map routes lookups for items cached elsewhere to the owning
// server so they are fetched from remote DRAM instead of local storage.
type Partitioned struct {
	caches []*MinIO
	owner  []int32 // item -> owning server

	localHits, remoteHits, misses []int64
}

// NewPartitioned builds the partitioned cache for nServers over d. Each
// server gets capBytes of MinIO cache; shards are random, disjoint and
// near-equal (load balancing, §5.5).
func NewPartitioned(d *dataset.Dataset, nServers int, capBytes float64, seed int64) *Partitioned {
	p := &Partitioned{
		caches:     make([]*MinIO, nServers),
		owner:      make([]int32, d.NumItems),
		localHits:  make([]int64, nServers),
		remoteHits: make([]int64, nServers),
		misses:     make([]int64, nServers),
	}
	for i := range p.caches {
		p.caches[i] = NewMinIOSized(capBytes, d.NumItems)
	}
	shards := dataset.SplitRandom(d, nServers, seed)
	for s, sh := range shards {
		for _, id := range sh.Items {
			p.owner[id] = int32(s)
		}
	}
	return p
}

// Owner returns the server that owns (may cache) item id.
func (p *Partitioned) Owner(id dataset.ItemID) int { return int(p.owner[id]) }

// OwnerShards returns the static per-server owner shards in ascending item
// order — the epoch-0 cache-population orders (§4.2).
func (p *Partitioned) OwnerShards() []dataset.Shard {
	return ownerShardsOf(p.owner, len(p.caches))
}

// ownerShardsOf groups items by owning server, ascending by item ID. Both
// partitioned caches derive their epoch-0 population orders through this one
// function, so the analytic and concurrent backends can never disagree on
// the order (the backend-equivalence property tests depend on that).
func ownerShardsOf(owner []int32, nServers int) []dataset.Shard {
	shards := make([]dataset.Shard, nServers)
	for id, o := range owner {
		shards[o].Items = append(shards[o].Items, dataset.ItemID(id))
	}
	return shards
}

// Server returns server s's local MinIO cache.
func (p *Partitioned) Server(s int) *MinIO { return p.caches[s] }

// Lookup classifies a fetch of id by server s. For a RemoteHit the second
// result is the serving server.
func (p *Partitioned) Lookup(s int, id dataset.ItemID) (Location, int) {
	if p.caches[s].Lookup(id) {
		p.localHits[s]++
		return LocalHit, s
	}
	o := int(p.owner[id])
	if o != s && p.caches[o].Contains(id) {
		p.remoteHits[s]++
		return RemoteHit, o
	}
	p.misses[s]++
	return Miss, -1
}

// Insert offers id (fetched from storage by server s) to the cache. Only the
// owning server caches it, and only if s is the owner — a non-owner that had
// to fall back to storage does not pollute its shard budget (§4.2: each
// server populates its cache with items in the shard assigned to it).
func (p *Partitioned) Insert(s int, id dataset.ItemID, bytes float64) {
	if int(p.owner[id]) != s {
		return
	}
	p.caches[s].Insert(id, bytes)
}

// Stats returns (local, remote, miss) counters for server s.
func (p *Partitioned) Stats(s int) (local, remote, miss int64) {
	return p.localHits[s], p.remoteHits[s], p.misses[s]
}

// ResetStats clears all per-server counters (after the warmup epoch).
func (p *Partitioned) ResetStats() {
	for i := range p.caches {
		p.caches[i].ResetStats()
		p.localHits[i], p.remoteHits[i], p.misses[i] = 0, 0, 0
	}
}

// AggregateUsedBytes returns cached bytes across all servers.
func (p *Partitioned) AggregateUsedBytes() float64 {
	t := 0.0
	for _, c := range p.caches {
		t += c.UsedBytes()
	}
	return t
}

// Validate checks internal invariants (each item owned by exactly one valid
// server); used by tests and the simulator's self-checks.
func (p *Partitioned) Validate() error {
	for id, o := range p.owner {
		if int(o) < 0 || int(o) >= len(p.caches) {
			return fmt.Errorf("cache: item %d has invalid owner %d", id, o)
		}
	}
	return nil
}
