package cache

import (
	"math/rand"
	"testing"

	"datastall/internal/dataset"
	"datastall/internal/race"
)

// TestDenseMinIOMatchesMap replays random op grids through the dense
// (slice-backed) MinIO and the retained map-backed reference: identical
// hit/miss/rejected counters, used bytes, and residency at every step, for
// a grid of seeds and capacities — the dense layout is a pure
// representation change.
func TestDenseMinIOMatchesMap(t *testing.T) {
	for _, seed := range []int64{1, 7, 12345} {
		for _, capBytes := range []float64{0, 100, 1000, 1e9} {
			dense := NewMinIO(capBytes)
			ref := NewMapMinIO(capBytes)
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 20000; op++ {
				id := dataset.ItemID(rng.Intn(500))
				switch rng.Intn(3) {
				case 0:
					if got, want := dense.Lookup(id), ref.Lookup(id); got != want {
						t.Fatalf("seed=%d cap=%v op %d: Lookup(%d) = %v, reference %v",
							seed, capBytes, op, id, got, want)
					}
				case 1:
					bytes := float64(1 + rng.Intn(20))
					dense.Insert(id, bytes)
					ref.Insert(id, bytes)
				default:
					if got, want := dense.Contains(id), ref.Contains(id); got != want {
						t.Fatalf("seed=%d cap=%v op %d: Contains(%d) = %v, reference %v",
							seed, capBytes, op, id, got, want)
					}
				}
				if dense.UsedBytes() != ref.UsedBytes() {
					t.Fatalf("seed=%d cap=%v op %d: used %v, reference %v",
						seed, capBytes, op, dense.UsedBytes(), ref.UsedBytes())
				}
			}
			if dense.Hits() != ref.Hits() || dense.Misses() != ref.Misses() ||
				dense.Rejected() != ref.Rejected() || dense.Len() != ref.Len() {
				t.Fatalf("seed=%d cap=%v: counters h/m/r/len %d/%d/%d/%d, reference %d/%d/%d/%d",
					seed, capBytes, dense.Hits(), dense.Misses(), dense.Rejected(), dense.Len(),
					ref.Hits(), ref.Misses(), ref.Rejected(), ref.Len())
			}
		}
	}
}

// TestDenseMinIOEpochEquivalence drives whole seeded epochs (the MinIO
// fetch loop: lookup, insert on miss) through both implementations and
// requires identical per-epoch hit/miss counts — the benchmark-equivalence
// surface BENCH_2.json's cache comparison rests on.
func TestDenseMinIOEpochEquivalence(t *testing.T) {
	const items = 2048
	for _, seed := range []int64{3, 11} {
		for _, capFrac := range []float64{0.25, 0.5, 1.0} {
			capBytes := capFrac * items
			dense := NewMinIOSized(capBytes, items)
			ref := NewMapMinIO(capBytes)
			rng := rand.New(rand.NewSource(seed))
			for epoch := 0; epoch < 3; epoch++ {
				dense.ResetStats()
				ref.ResetStats()
				for _, i := range rng.Perm(items) {
					id := dataset.ItemID(i)
					if !dense.Lookup(id) {
						dense.Insert(id, 1)
					}
					if !ref.Lookup(id) {
						ref.Insert(id, 1)
					}
				}
				if dense.Hits() != ref.Hits() || dense.Misses() != ref.Misses() {
					t.Fatalf("seed=%d cap=%v epoch %d: hits/misses %d/%d, reference %d/%d",
						seed, capFrac, epoch, dense.Hits(), dense.Misses(), ref.Hits(), ref.Misses())
				}
			}
		}
	}
}

// TestAllocsMinIOLookup is the zero-allocation guard on the cache hot path:
// steady-state Lookup and duplicate/rejected Insert must not allocate.
// Enforced in CI without race instrumentation.
func TestAllocsMinIOLookup(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	const n = 4096
	m := NewMinIOSized(n/2, n)
	for i := 0; i < n; i++ {
		m.Insert(dataset.ItemID(i), 1) // fills to capacity, then rejects
	}
	i := 0
	step := func() {
		for k := 0; k < 512; k++ {
			id := dataset.ItemID(i & (n - 1))
			if !m.Lookup(id) {
				m.Insert(id, 1)
			}
			i++
		}
	}
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Fatalf("steady-state MinIO lookup+insert allocates %v per 512 accesses, want 0", avg)
	}
}
