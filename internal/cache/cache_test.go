package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datastall/internal/dataset"
	"datastall/internal/pagecache"
)

// Compile-time interface checks: MinIO and the page cache both satisfy Cache.
var (
	_ Cache = (*MinIO)(nil)
	_ Cache = (*pagecache.Cache)(nil)
)

func TestMinIONeverEvicts(t *testing.T) {
	m := NewMinIO(3)
	m.Insert(1, 1)
	m.Insert(2, 1)
	m.Insert(3, 1)
	m.Insert(4, 1) // full: rejected
	if m.Contains(4) {
		t.Fatal("MinIO must not evict to admit new items")
	}
	for _, id := range []dataset.ItemID{1, 2, 3} {
		if !m.Contains(id) {
			t.Fatalf("item %d lost", id)
		}
	}
	if m.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected())
	}
}

func TestMinIOExactCapacityHits(t *testing.T) {
	// The MinIO guarantee (§4.1): every epoch after warmup gets exactly
	// as many hits as there are cached items.
	n, capacity := 1000, 350
	m := NewMinIO(float64(capacity))
	rng := rand.New(rand.NewSource(1))
	warm := rng.Perm(n)
	for _, i := range warm {
		if !m.Lookup(dataset.ItemID(i)) {
			m.Insert(dataset.ItemID(i), 1)
		}
	}
	for epoch := 0; epoch < 3; epoch++ {
		m.ResetStats()
		perm := rng.Perm(n)
		for _, i := range perm {
			if !m.Lookup(dataset.ItemID(i)) {
				m.Insert(dataset.ItemID(i), 1)
			}
		}
		if m.Hits() != int64(capacity) {
			t.Fatalf("epoch %d: hits = %d, want exactly %d", epoch, m.Hits(), capacity)
		}
		if m.Misses() != int64(n-capacity) {
			t.Fatalf("epoch %d: misses = %d, want %d", epoch, m.Misses(), n-capacity)
		}
	}
}

func TestMinIOBeatsPageCache(t *testing.T) {
	// Figure 8's worked example, generalised: on identical permutation
	// access, MinIO's per-epoch misses are capacity misses only, while
	// the page cache thrashes.
	n := 2000
	capacity := 0.5 * float64(n)
	m := NewMinIO(capacity)
	pc := pagecache.New(pagecache.TwoList, capacity, 7)
	rng := rand.New(rand.NewSource(2))
	for epoch := 0; epoch < 4; epoch++ {
		if epoch == 1 {
			m.ResetStats()
			pc.ResetStats()
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			id := dataset.ItemID(i)
			if !m.Lookup(id) {
				m.Insert(id, 1)
			}
			if !pc.Lookup(id) {
				pc.Insert(id, 1)
			}
		}
	}
	if m.HitRate() <= pc.HitRate() {
		t.Fatalf("MinIO (%.2f) must beat page cache (%.2f)", m.HitRate(), pc.HitRate())
	}
	if m.HitRate() != 0.5 {
		t.Fatalf("MinIO hit rate %.3f, want exactly 0.5", m.HitRate())
	}
}

func TestFig8WorkedExample(t *testing.T) {
	// Fig 8: dataset {A,B,C,D}, cache size 2, warmed with {D,B}. MinIO
	// serves exactly 2 hits per epoch regardless of access order.
	m := NewMinIO(2)
	m.Insert(3, 1) // D
	m.Insert(1, 1) // B
	for _, epoch := range [][]dataset.ItemID{{2, 1, 0, 3}, {1, 2, 3, 0}} {
		m.ResetStats()
		for _, id := range epoch {
			if !m.Lookup(id) {
				m.Insert(id, 1)
			}
		}
		if m.Hits() != 2 || m.Misses() != 2 {
			t.Fatalf("epoch %v: hits=%d misses=%d, want 2/2", epoch, m.Hits(), m.Misses())
		}
	}
}

func TestPartitionedCoverAndRouting(t *testing.T) {
	d := &dataset.Dataset{Name: "t", NumItems: 1000, TotalBytes: 1000}
	// 2 servers, each caching 50% -> full dataset in aggregate.
	p := NewPartitioned(d, 2, 500, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Warmup: each server fetches its own shard.
	for id := 0; id < 1000; id++ {
		s := p.Owner(dataset.ItemID(id))
		if loc, _ := p.Lookup(s, dataset.ItemID(id)); loc != Miss {
			t.Fatal("cold cache should miss")
		}
		p.Insert(s, dataset.ItemID(id), 1)
	}
	p.ResetStats()
	// Steady state: any server finds every item locally or remotely.
	for id := 0; id < 1000; id++ {
		loc, src := p.Lookup(0, dataset.ItemID(id))
		switch loc {
		case Miss:
			t.Fatalf("item %d missed despite full aggregate cache", id)
		case RemoteHit:
			if src != 1 {
				t.Fatalf("remote hit routed to %d", src)
			}
		}
	}
	local, remote, miss := p.Stats(0)
	if miss != 0 {
		t.Fatalf("misses = %d, want 0", miss)
	}
	if local == 0 || remote == 0 {
		t.Fatalf("expected both local (%d) and remote (%d) hits", local, remote)
	}
	if local+remote != 1000 {
		t.Fatalf("local+remote = %d", local+remote)
	}
}

func TestPartitionedInsufficientAggregate(t *testing.T) {
	d := &dataset.Dataset{Name: "t", NumItems: 1000, TotalBytes: 1000}
	// 2 servers × 300 = 60% aggregate: 40% of items stay uncached.
	p := NewPartitioned(d, 2, 300, 3)
	for id := 0; id < 1000; id++ {
		s := p.Owner(dataset.ItemID(id))
		if loc, _ := p.Lookup(s, dataset.ItemID(id)); loc == Miss {
			p.Insert(s, dataset.ItemID(id), 1)
		}
	}
	p.ResetStats()
	misses := 0
	for id := 0; id < 1000; id++ {
		if loc, _ := p.Lookup(0, dataset.ItemID(id)); loc == Miss {
			misses++
		}
	}
	if misses != 400 {
		t.Fatalf("misses = %d, want exactly 400 (aggregate capacity misses)", misses)
	}
}

func TestPartitionedNonOwnerInsertIgnored(t *testing.T) {
	d := &dataset.Dataset{Name: "t", NumItems: 10, TotalBytes: 10}
	p := NewPartitioned(d, 2, 5, 3)
	id := dataset.ItemID(0)
	other := 1 - p.Owner(id)
	p.Insert(other, id, 1)
	if p.Server(other).Contains(id) {
		t.Fatal("non-owner cached an item outside its shard")
	}
}

func TestLocationString(t *testing.T) {
	if Miss.String() != "miss" || LocalHit.String() != "local" || RemoteHit.String() != "remote" {
		t.Fatal("bad location strings")
	}
}

// Property: MinIO hit count per epoch equals min(cacheItems, capacity) after
// warmup, for any capacity and dataset size.
func TestMinIOHitsEqualCapacityProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 10
		c := int(cRaw) % (n + 20)
		m := NewMinIO(float64(c))
		rng := rand.New(rand.NewSource(seed))
		for e := 0; e < 3; e++ {
			m.ResetStats()
			for _, i := range rng.Perm(n) {
				if !m.Lookup(dataset.ItemID(i)) {
					m.Insert(dataset.ItemID(i), 1)
				}
			}
		}
		want := c
		if n < c {
			want = n
		}
		return m.Hits() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: partitioned lookup never reports RemoteHit from a server that
// doesn't hold the item, and never misses when aggregate capacity >= dataset.
func TestPartitionedRoutingProperty(t *testing.T) {
	f := func(nServersRaw uint8, seed int64) bool {
		ns := int(nServersRaw)%4 + 1
		d := &dataset.Dataset{Name: "t", NumItems: 300, TotalBytes: 300}
		p := NewPartitioned(d, ns, 300/float64(ns)+1, seed)
		for id := 0; id < 300; id++ {
			p.Insert(p.Owner(dataset.ItemID(id)), dataset.ItemID(id), 1)
		}
		for id := 0; id < 300; id++ {
			loc, src := p.Lookup(0, dataset.ItemID(id))
			if loc == Miss {
				return false
			}
			if loc == RemoteHit && !p.Server(src).Contains(dataset.ItemID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
