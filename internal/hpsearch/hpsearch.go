// Package hpsearch drives hyper-parameter search over simulated training
// jobs, in the style of Ray Tune with Hyperband-like successive halving
// (Appendix E.2.3): sample trials, run them in parallel waves of concurrent
// jobs on one server, score them at epoch boundaries, and keep the best.
package hpsearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"datastall/internal/trainer"
)

// Trial is one hyper-parameter candidate.
type Trial struct {
	ID       int
	LR       float64
	Momentum float64
	// Score is the objective after the trial's last rung (higher=better).
	Score float64
	// EpochsRun counts training epochs this trial consumed.
	EpochsRun int
}

// Config describes a search.
type Config struct {
	// Base describes the per-trial training job (model, dataset, SKU,
	// cache, batch). Epochs is overridden per rung.
	Base trainer.Config
	// NumTrials to sample (Appendix E uses 16).
	NumTrials int
	// ParallelJobs trials run concurrently on the server (= GPUs, 8).
	ParallelJobs int
	// GPUsPerJob for each trial (1 in the paper's macrobenchmark).
	GPUsPerJob int
	// EpochsPerRung is the budget between halvings (1 in Appendix E:
	// "stopping criteria ... the completion of one epoch").
	EpochsPerRung int
	// Rungs of successive halving; 1 reproduces the paper's setting.
	Rungs int
	// KeepFraction of trials surviving each rung.
	KeepFraction float64
	// Coordinated selects CoorDL's coordinated prep for each wave.
	Coordinated bool
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.NumTrials == 0 {
		c.NumTrials = 16
	}
	if c.ParallelJobs == 0 {
		c.ParallelJobs = 8
	}
	if c.GPUsPerJob == 0 {
		c.GPUsPerJob = 1
	}
	if c.EpochsPerRung == 0 {
		c.EpochsPerRung = 1
	}
	if c.Rungs == 0 {
		c.Rungs = 1
	}
	if c.KeepFraction == 0 {
		c.KeepFraction = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports a finished search.
type Result struct {
	// SearchSeconds is the simulated wall-clock time of the whole search.
	SearchSeconds float64
	// Best is the winning trial.
	Best Trial
	// Trials holds all sampled trials with final scores.
	Trials []Trial
	// TotalEpochs is the aggregate epoch count across trials.
	TotalEpochs int
	// TotalDiskBytes is storage I/O across all waves.
	TotalDiskBytes float64
	// Waves is the number of concurrent-job waves executed.
	Waves int
}

// objective is a deterministic synthetic validation-accuracy surface over
// (lr, momentum) with trial-specific noise: search algorithms need a
// landscape to rank trials, and the pipeline's performance is independent
// of it.
func objective(t Trial, epochs int, rng *rand.Rand) float64 {
	// Peak near lr=0.1, momentum=0.9.
	d := math.Pow(math.Log10(t.LR)-math.Log10(0.1), 2) + 4*math.Pow(t.Momentum-0.9, 2)
	base := 0.75 * math.Exp(-d)
	growth := 1 - math.Exp(-float64(epochs)/3)
	return base*growth + 0.01*rng.NormFloat64()
}

// Run executes the search and returns timing plus the winning trial. ctx
// cancellation aborts the in-flight wave and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := make([]Trial, cfg.NumTrials)
	for i := range trials {
		trials[i] = Trial{
			ID:       i,
			LR:       math.Pow(10, -3+2.5*rng.Float64()), // 1e-3 .. ~0.3
			Momentum: 0.8 + 0.19*rng.Float64(),
		}
	}

	res := &Result{}
	alive := make([]*Trial, len(trials))
	for i := range trials {
		alive[i] = &trials[i]
	}

	for rung := 0; rung < cfg.Rungs && len(alive) > 0; rung++ {
		// Run the surviving trials in waves of ParallelJobs.
		for start := 0; start < len(alive); start += cfg.ParallelJobs {
			end := start + cfg.ParallelJobs
			if end > len(alive) {
				end = len(alive)
			}
			wave := alive[start:end]
			base := cfg.Base
			base.Epochs = cfg.EpochsPerRung
			cr, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
				Base:        base,
				NumJobs:     len(wave),
				GPUsPerJob:  cfg.GPUsPerJob,
				Coordinated: cfg.Coordinated,
			})
			if err != nil {
				return nil, fmt.Errorf("hpsearch wave: %w", err)
			}
			waveTime := 0.0
			for _, jr := range cr.Jobs {
				if jr.TotalTime > waveTime {
					waveTime = jr.TotalTime
				}
			}
			res.SearchSeconds += waveTime
			res.TotalDiskBytes += cr.TotalDiskBytes
			res.Waves++
			for _, t := range wave {
				t.EpochsRun += cfg.EpochsPerRung
				t.Score = objective(*t, t.EpochsRun, rng)
				res.TotalEpochs += cfg.EpochsPerRung
			}
		}
		// Successive halving: keep the best fraction.
		sort.Slice(alive, func(i, j int) bool { return alive[i].Score > alive[j].Score })
		keep := int(math.Ceil(float64(len(alive)) * cfg.KeepFraction))
		if rung < cfg.Rungs-1 {
			alive = alive[:keep]
		}
	}

	res.Trials = trials
	best := trials[0]
	for _, t := range trials[1:] {
		if t.Score > best.Score {
			best = t
		}
	}
	res.Best = best
	return res, nil
}
