package hpsearch

import (
	"context"
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/trainer"
)

func baseCfg() trainer.Config {
	d := dataset.ImageNet1K.Scale(0.004)
	return trainer.Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Batch: 256,
		CacheBytes: 0.75 * d.TotalBytes,
	}
}

func TestSearchRunsAllTrials(t *testing.T) {
	r, err := Run(context.Background(), Config{Base: baseCfg(), NumTrials: 16, ParallelJobs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 16 {
		t.Fatalf("trials %d, want 16", len(r.Trials))
	}
	if r.Waves != 2 {
		t.Fatalf("waves %d, want 2 (16 trials / 8 GPUs)", r.Waves)
	}
	if r.TotalEpochs != 16 {
		t.Fatalf("epochs %d, want 16", r.TotalEpochs)
	}
	if r.SearchSeconds <= 0 || r.TotalDiskBytes <= 0 {
		t.Fatalf("missing timing/io: %+v", r)
	}
}

func TestBestTrialNearOptimum(t *testing.T) {
	r, err := Run(context.Background(), Config{Base: baseCfg(), NumTrials: 24, ParallelJobs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic objective peaks at lr=0.1, momentum=0.9; the winner
	// should not be at the extreme edges of the sampled space.
	if r.Best.LR < 0.005 || r.Best.LR > 0.5 {
		t.Fatalf("winner lr=%.4f implausible for the objective surface", r.Best.LR)
	}
	if r.Best.Score <= 0 {
		t.Fatalf("winner score %v", r.Best.Score)
	}
}

func TestCoordinatedSearchIsFaster(t *testing.T) {
	// Fig 23: coordinated prep + MinIO accelerate end-to-end HP search.
	base := Config{Base: baseCfg(), NumTrials: 8, ParallelJobs: 8, Seed: 7}
	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	coord := base
	coord.Coordinated = true
	fast, err := Run(context.Background(), coord)
	if err != nil {
		t.Fatal(err)
	}
	if fast.SearchSeconds >= plain.SearchSeconds {
		t.Fatalf("coordinated search %.1fs not faster than baseline %.1fs",
			fast.SearchSeconds, plain.SearchSeconds)
	}
	if fast.TotalDiskBytes >= plain.TotalDiskBytes {
		t.Fatalf("coordinated disk %.0f not below baseline %.0f",
			fast.TotalDiskBytes, plain.TotalDiskBytes)
	}
}

func TestSuccessiveHalvingPrunes(t *testing.T) {
	r, err := Run(context.Background(), Config{
		Base: baseCfg(), NumTrials: 8, ParallelJobs: 8,
		Rungs: 2, KeepFraction: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rung 1: 8 trials x 1 epoch; rung 2: 4 survivors x 1 epoch.
	if r.TotalEpochs != 12 {
		t.Fatalf("epochs %d, want 12 (8 + 4 survivors)", r.TotalEpochs)
	}
	ran2 := 0
	for _, tr := range r.Trials {
		if tr.EpochsRun == 2 {
			ran2++
		}
	}
	if ran2 != 4 {
		t.Fatalf("%d trials reached rung 2, want 4", ran2)
	}
}

func TestDeterministicSearch(t *testing.T) {
	cfg := Config{Base: baseCfg(), NumTrials: 8, ParallelJobs: 8, Seed: 11}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SearchSeconds != b.SearchSeconds || a.Best.ID != b.Best.ID {
		t.Fatal("search not deterministic")
	}
}
