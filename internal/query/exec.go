package query

import (
	"context"
	"sort"
)

// Engine executes queries against one store.
type Engine struct {
	st *Store
}

// New returns an engine over st. The engine is stateless; one engine may
// serve concurrent Run calls as long as the store is no longer ingesting.
func New(st *Store) *Engine { return &Engine{st: st} }

// iterator is the Volcano-model pull interface: next returns the next row,
// or (nil, nil) when exhausted. Rows handed up the pipeline are owned by
// the caller (operators never reuse a returned slice).
type iterator interface {
	next() ([]Value, error)
}

// Rows streams a query's result. Iterate with Next/Row, then check Err:
//
//	for rows.Next() {
//		use(rows.Row())
//	}
//	if err := rows.Err(); err != nil { ... }
type Rows struct {
	cols []Col
	it   iterator
	row  []Value
	err  error
	done bool
}

// Columns describes the result schema, in row order.
func (r *Rows) Columns() []Col { return r.cols }

// Next advances to the next row, returning false at the end of the result
// or on error (including context cancellation mid-stream).
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	row, err := r.it.next()
	if err != nil || row == nil {
		r.err = err
		r.done = true
		r.row = nil
		return false
	}
	r.row = row
	return true
}

// Row returns the current row; valid until the next call to Next.
func (r *Rows) Row() []Value { return r.row }

// Err reports the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// All drains the iterator and returns every remaining row.
func (r *Rows) All() ([][]Value, error) {
	var out [][]Value
	for r.Next() {
		out = append(out, r.Row())
	}
	return out, r.Err()
}

// Run validates q, plans the operator pipeline and returns a lazy row
// stream. ctx is checked on every row pulled from the base scan, so a
// cancelled context terminates the stream promptly (Rows.Err returns
// ctx.Err()) even inside pipeline-blocking operators.
func (e *Engine) Run(ctx context.Context, q *Query) (*Rows, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	from := q.From
	if from == "" {
		from = "cases"
	}
	cols := tableCols(from, q.Join)
	idx := colIndex(cols)

	var it iterator
	switch {
	case from == "cases":
		it = &caseScan{ctx: ctx, st: e.st}
	case q.Join:
		it = &joinScan{ctx: ctx, st: e.st}
	default:
		it = &epochScan{ctx: ctx, st: e.st}
	}

	if len(q.Where) > 0 {
		conds := make([]cond, len(q.Where))
		for i, c := range q.Where {
			conds[i] = compileCond(c, cols, idx)
		}
		it = &filterIter{in: it, conds: conds}
	}

	switch {
	case len(q.Aggs) > 0:
		keyIdx := make([]int, len(q.GroupBy))
		for i, g := range q.GroupBy {
			keyIdx[i] = idx[g]
		}
		aggs := make([]plannedAgg, len(q.Aggs))
		for i, a := range q.Aggs {
			pa := plannedAgg{op: a.Op, rowCount: a.Op == "count" && a.Col == ""}
			if !pa.rowCount {
				pa.idx = idx[a.Col]
				pa.typ = cols[pa.idx].Type
			}
			aggs[i] = pa
		}
		it = &aggIter{in: it, keyIdx: keyIdx, aggs: aggs}
	case len(q.Select) > 0:
		sel := make([]int, len(q.Select))
		for i, s := range q.Select {
			sel[i] = idx[s]
		}
		it = &projectIter{in: it, sel: sel}
	}

	out := q.outputCols(cols, idx)
	if len(q.OrderBy) > 0 {
		outIdx := colIndex(out)
		keys := make([]orderKey, len(q.OrderBy))
		for i, o := range q.OrderBy {
			keys[i] = orderKey{idx: outIdx[o.Col], desc: o.Desc}
		}
		it = &orderIter{in: it, keys: keys}
	}
	if q.Limit > 0 {
		it = &limitIter{in: it, n: q.Limit}
	}
	return &Rows{cols: out, it: it}, nil
}

// --- scans ---

type caseScan struct {
	ctx context.Context
	st  *Store
	i   int
}

func (s *caseScan) next() ([]Value, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.st.cases) {
		return nil, nil
	}
	row := s.st.caseRow(s.i)
	s.i++
	return row, nil
}

type epochScan struct {
	ctx context.Context
	st  *Store
	i   int
}

func (s *epochScan) next() ([]Value, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.st.epochs) {
		return nil, nil
	}
	row := s.st.epochRowValues(s.i)
	s.i++
	return row, nil
}

// joinScan streams epochs extended with their case's identity columns. The
// join key (case_id) is the cases slice index by construction, so the
// "hash side" is a direct array lookup.
type joinScan struct {
	ctx context.Context
	st  *Store
	i   int
}

func (s *joinScan) next() ([]Value, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.st.epochs) {
		return nil, nil
	}
	e := s.st.epochRowValues(s.i)
	row := append(e, s.st.identityValues(s.st.epochs[s.i].caseID)...)
	s.i++
	return row, nil
}

// --- filter ---

// cond is a compiled where condition.
type cond struct {
	idx int
	op  string
	// str / num hold the literal in the column's domain.
	isStr bool
	str   string
	num   float64
}

func compileCond(c Cond, cols []Col, idx map[string]int) cond {
	out := cond{idx: idx[c.Col], op: c.Op}
	if cols[out.idx].Type == TypeString {
		out.isStr = true
		out.str, _ = c.Value.(string)
	} else {
		out.num, _ = c.Value.(float64)
	}
	return out
}

func (c cond) match(row []Value) bool {
	if c.isStr {
		eq := row[c.idx].S == c.str
		if c.op == "ne" {
			return !eq
		}
		return eq
	}
	v := row[c.idx].num()
	switch c.op {
	case "eq":
		return v == c.num
	case "ne":
		return v != c.num
	case "lt":
		return v < c.num
	case "le":
		return v <= c.num
	case "gt":
		return v > c.num
	}
	return v >= c.num // ge
}

type filterIter struct {
	in    iterator
	conds []cond
}

func (f *filterIter) next() ([]Value, error) {
	for {
		row, err := f.in.next()
		if err != nil || row == nil {
			return nil, err
		}
		ok := true
		for _, c := range f.conds {
			if !c.match(row) {
				ok = false
				break
			}
		}
		if ok {
			return row, nil
		}
	}
}

// --- project ---

type projectIter struct {
	in  iterator
	sel []int
}

func (p *projectIter) next() ([]Value, error) {
	row, err := p.in.next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]Value, len(p.sel))
	for i, idx := range p.sel {
		out[i] = row[idx]
	}
	return out, nil
}

// --- aggregate ---

// plannedAgg is one aggregate with its input column resolved.
type plannedAgg struct {
	op string
	// rowCount marks a bare count (no column).
	rowCount bool
	idx      int
	typ      ColType
}

// aggIter is pipeline-blocking: it drains its input on the first next,
// groups rows by the key columns, then emits one row per group in sorted
// key order (deterministic output regardless of input order).
type aggIter struct {
	in     iterator
	keyIdx []int
	aggs   []plannedAgg

	out  [][]Value
	pos  int
	done bool
}

// groupState holds a group's key and one accumulator per aggregate.
type groupState struct {
	key  []Value
	accs []aggAcc
}

// aggAcc accumulates one aggregate.
type aggAcc struct {
	n      int64
	sumF   float64
	sumI   int64
	lo, hi Value
	seen   bool
}

func (a *aggAcc) add(v Value) {
	a.n++
	a.sumF += v.num()
	if v.Type == TypeInt {
		a.sumI += v.I
	}
	if !a.seen {
		a.lo, a.hi = v, v
		a.seen = true
		return
	}
	if compare(v, a.lo) < 0 {
		a.lo = v
	}
	if compare(v, a.hi) > 0 {
		a.hi = v
	}
}

// final renders the accumulator for agg a over an input column of type t.
func (a *aggAcc) final(op string, t ColType) Value {
	switch op {
	case "count":
		return intVal(a.n)
	case "avg":
		if a.n == 0 {
			return floatVal(0)
		}
		return floatVal(a.sumF / float64(a.n))
	case "sum":
		if t == TypeInt {
			return intVal(a.sumI)
		}
		return floatVal(a.sumF)
	case "min":
		if !a.seen {
			return zeroOf(t)
		}
		return a.lo
	}
	if !a.seen {
		return zeroOf(t)
	}
	return a.hi // max
}

func zeroOf(t ColType) Value {
	switch t {
	case TypeInt:
		return intVal(0)
	case TypeFloat:
		return floatVal(0)
	}
	return strVal("")
}

func (g *aggIter) next() ([]Value, error) {
	if !g.done {
		if err := g.build(); err != nil {
			return nil, err
		}
		g.done = true
	}
	if g.pos >= len(g.out) {
		return nil, nil
	}
	row := g.out[g.pos]
	g.pos++
	return row, nil
}

func (g *aggIter) build() error {
	groups := map[string]*groupState{}
	var order []string // insertion order; re-sorted below
	for {
		row, err := g.in.next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make([]Value, len(g.keyIdx))
		for i, idx := range g.keyIdx {
			key[i] = row[idx]
		}
		ks := keyString(key)
		gs := groups[ks]
		if gs == nil {
			gs = &groupState{key: key, accs: make([]aggAcc, len(g.aggs))}
			groups[ks] = gs
			order = append(order, ks)
		}
		for i, a := range g.aggs {
			if a.rowCount {
				gs.accs[i].n++
				continue
			}
			gs.accs[i].add(row[a.idx])
		}
	}
	// Aggs with no group_by always emit exactly one row, even over empty
	// input (count 0), matching SQL's scalar-aggregate shape.
	if len(g.keyIdx) == 0 && len(groups) == 0 {
		groups[""] = &groupState{key: []Value{}, accs: make([]aggAcc, len(g.aggs))}
		order = append(order, "")
	}
	sort.Slice(order, func(i, j int) bool {
		return compareKeys(groups[order[i]].key, groups[order[j]].key) < 0
	})
	for _, ks := range order {
		gs := groups[ks]
		row := append([]Value{}, gs.key...)
		for i, a := range g.aggs {
			row = append(row, gs.accs[i].final(a.op, a.typ))
		}
		g.out = append(g.out, row)
	}
	return nil
}

// keyString renders a group key for map lookup; \x00 separates cells and
// type tags disambiguate 1 from "1".
func keyString(key []Value) string {
	s := ""
	for _, v := range key {
		s += string(rune('0'+int(v.Type))) + v.String() + "\x00"
	}
	return s
}

// compareKeys orders two group keys cell-wise.
func compareKeys(a, b []Value) int {
	for i := range a {
		if c := compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// --- order by ---

type orderKey struct {
	idx  int
	desc bool
}

// orderIter is pipeline-blocking: it drains its input, sorts stably (ties
// keep pipeline order) and replays.
type orderIter struct {
	in   iterator
	keys []orderKey

	rows [][]Value
	pos  int
	done bool
}

func (o *orderIter) next() ([]Value, error) {
	if !o.done {
		for {
			row, err := o.in.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			o.rows = append(o.rows, row)
		}
		sort.SliceStable(o.rows, func(i, j int) bool {
			for _, k := range o.keys {
				c := compare(o.rows[i][k.idx], o.rows[j][k.idx])
				if k.desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		o.done = true
	}
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	row := o.rows[o.pos]
	o.pos++
	return row, nil
}

// --- limit ---

type limitIter struct {
	in iterator
	n  int
}

func (l *limitIter) next() ([]Value, error) {
	if l.n <= 0 {
		return nil, nil
	}
	row, err := l.in.next()
	if err != nil || row == nil {
		return nil, err
	}
	l.n--
	return row, nil
}
