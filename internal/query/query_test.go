package query

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"datastall/internal/experiments"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

// --- fixtures ---

// synthCase fabricates a finished case without running a simulation; the
// metric values are arbitrary but self-consistent.
func synthCase(r *rand.Rand, spec, row, label string, servers, gpus int, cacheGiB, stallFrac float64) *experiments.CaseResult {
	nEpochs := 1 + r.Intn(3)
	res := &trainer.Result{
		EpochTime:      50 + 100*r.Float64(),
		Throughput:     1000 + 4000*r.Float64(),
		StallFraction:  stallFrac,
		DiskPerEpoch:   float64(r.Intn(64)) * stats.GiB,
		NetPerEpoch:    float64(r.Intn(16)) * stats.GiB,
		HitRate:        r.Float64(),
		TotalDiskBytes: float64(r.Intn(256)) * stats.GiB,
		TotalNetBytes:  float64(r.Intn(64)) * stats.GiB,
		TotalTime:      100 + 500*r.Float64(),
	}
	for e := 0; e < nEpochs; e++ {
		dur := 40 + 80*r.Float64()
		stall := stallFrac * dur
		res.Epochs = append(res.Epochs, trainer.EpochStats{
			Duration: dur, ComputeTime: dur - stall, StallTime: stall,
			DiskBytes: float64(r.Intn(32)) * stats.GiB,
			NetBytes:  float64(r.Intn(8)) * stats.GiB,
			MemBytes:  float64(r.Intn(8)) * stats.GiB,
			DiskReads: r.Intn(10000), Hits: r.Intn(10000),
			Misses: r.Intn(10000), RemoteHits: r.Intn(1000),
			Samples:        1281,
			CacheUsedBytes: cacheGiB * stats.GiB * r.Float64(),
		})
	}
	return &experiments.CaseResult{
		Spec: spec, Row: row, Case: label,
		Model: "resnet18", Dataset: "imagenet-1k",
		Server: "dgx2", Loader: []string{"DALI-CPU", "DALI-GPU", "CoorDL"}[r.Intn(3)],
		Servers: servers, GPUs: gpus, Batch: 128, Epochs: len(res.Epochs),
		CacheBytes: cacheGiB * stats.GiB, Seed: int64(r.Intn(5)),
		Result: res,
	}
}

// testStore builds a randomized store of n cases across a small grid.
func testStore(seed int64, n int) *Store {
	r := rand.New(rand.NewSource(seed))
	st := NewStore()
	grid := [][2]int{{1, 4}, {2, 8}, {4, 8}}
	for i := 0; i < n; i++ {
		g := grid[r.Intn(len(grid))]
		st.Add(synthCase(r,
			fmt.Sprintf("spec%d", r.Intn(2)),
			fmt.Sprintf("row%d", r.Intn(3)),
			fmt.Sprintf("c%d", i),
			g[0], g[1],
			float64(16*(1+r.Intn(6))), // 16..96 GiB
			r.Float64()*0.4,
		))
	}
	return st
}

// --- naive reference evaluator ---

// refEval evaluates a validated query by brute force: materialize every
// row, then apply each clause with plain loops. It shares only the schema
// (column names/types) with the engine, not the operator implementations.
func refEval(st *Store, q *Query) [][]Value {
	from := q.From
	if from == "" {
		from = "cases"
	}
	cols := tableCols(from, q.Join)
	idx := colIndex(cols)

	var rows [][]Value
	switch {
	case from == "cases":
		for i := range st.cases {
			rows = append(rows, st.caseRow(i))
		}
	case q.Join:
		for i := range st.epochs {
			r := st.epochRowValues(i)
			rows = append(rows, append(r, st.identityValues(st.epochs[i].caseID)...))
		}
	default:
		for i := range st.epochs {
			rows = append(rows, st.epochRowValues(i))
		}
	}

	var kept [][]Value
	for _, r := range rows {
		ok := true
		for _, c := range q.Where {
			if !refMatch(r[idx[c.Col]], c.Op, c.Value) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, r)
		}
	}
	rows = kept

	switch {
	case len(q.Aggs) > 0:
		rows = refAggregate(rows, q, cols, idx)
	case len(q.Select) > 0:
		var out [][]Value
		for _, r := range rows {
			nr := make([]Value, len(q.Select))
			for j, s := range q.Select {
				nr[j] = r[idx[s]]
			}
			out = append(out, nr)
		}
		rows = out
	}

	outIdx := colIndex(q.outputCols(cols, idx))
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, o := range q.OrderBy {
				c := refCmp(rows[i][outIdx[o.Col]], rows[j][outIdx[o.Col]])
				if o.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

func refMatch(v Value, op string, lit interface{}) bool {
	if s, ok := lit.(string); ok {
		if op == "ne" {
			return v.S != s
		}
		return v.S == s
	}
	f := lit.(float64)
	var n float64
	if v.Type == TypeInt {
		n = float64(v.I)
	} else {
		n = v.F
	}
	switch op {
	case "eq":
		return n == f
	case "ne":
		return n != f
	case "lt":
		return n < f
	case "le":
		return n <= f
	case "gt":
		return n > f
	}
	return n >= f
}

func refCmp(a, b Value) int {
	if a.Type == TypeString {
		return strings.Compare(a.S, b.S)
	}
	an, bn := a.num(), b.num()
	switch {
	case an < bn:
		return -1
	case an > bn:
		return 1
	}
	return 0
}

func refAggregate(rows [][]Value, q *Query, cols []Col, idx map[string]int) [][]Value {
	type group struct {
		key  []Value
		rows [][]Value
	}
	var groups []*group
	byKey := map[string]*group{}
	for _, r := range rows {
		key := make([]Value, len(q.GroupBy))
		for j, gc := range q.GroupBy {
			key[j] = r[idx[gc]]
		}
		ks := fmt.Sprintf("%#v", key)
		g := byKey[ks]
		if g == nil {
			g = &group{key: key}
			byKey[ks] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, r)
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &group{})
	}
	sort.Slice(groups, func(i, j int) bool {
		for k := range groups[i].key {
			if c := refCmp(groups[i].key[k], groups[j].key[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	var out [][]Value
	for _, g := range groups {
		row := append([]Value{}, g.key...)
		for _, a := range q.Aggs {
			row = append(row, refAgg(a, g.rows, cols, idx))
		}
		out = append(out, row)
	}
	return out
}

func refAgg(a Agg, rows [][]Value, cols []Col, idx map[string]int) Value {
	if a.Op == "count" {
		return intVal(int64(len(rows)))
	}
	ci := idx[a.Col]
	t := cols[ci].Type
	if len(rows) == 0 {
		if a.Op == "avg" {
			return floatVal(0)
		}
		return zeroOf(t)
	}
	switch a.Op {
	case "avg":
		s := 0.0
		for _, r := range rows {
			s += r[ci].num()
		}
		return floatVal(s / float64(len(rows)))
	case "sum":
		if t == TypeInt {
			var s int64
			for _, r := range rows {
				s += r[ci].I
			}
			return intVal(s)
		}
		s := 0.0
		for _, r := range rows {
			s += r[ci].F
		}
		return floatVal(s)
	case "min":
		best := rows[0][ci]
		for _, r := range rows[1:] {
			if refCmp(r[ci], best) < 0 {
				best = r[ci]
			}
		}
		return best
	}
	best := rows[0][ci]
	for _, r := range rows[1:] {
		if refCmp(r[ci], best) > 0 {
			best = r[ci]
		}
	}
	return best
}

// --- random query generator ---

func randQuery(r *rand.Rand, st *Store) *Query {
	q := &Query{}
	switch r.Intn(3) {
	case 0:
		q.From = "cases"
	case 1:
		q.From = "epochs"
	default:
		q.From = "epochs"
		q.Join = true
	}
	cols := tableCols(q.From, q.Join)

	// Sample literals from the data so filters have mixed selectivity.
	sample := func(c Col) interface{} {
		rows := refEval(st, &Query{From: q.From, Join: q.Join})
		if len(rows) == 0 {
			if c.Type == TypeString {
				return "x"
			}
			return float64(1)
		}
		v := rows[r.Intn(len(rows))][colIndex(cols)[c.Name]]
		if c.Type == TypeString {
			if r.Intn(4) == 0 {
				return "zzz-absent"
			}
			return v.S
		}
		return v.num()
	}

	for i := 0; i < r.Intn(3); i++ {
		c := cols[r.Intn(len(cols))]
		ops := []string{"eq", "ne"}
		if c.Type != TypeString {
			ops = []string{"eq", "ne", "lt", "le", "gt", "ge"}
		}
		q.Where = append(q.Where, Cond{Col: c.Name, Op: ops[r.Intn(len(ops))], Value: sample(c)})
	}

	numeric := func() Col {
		for {
			c := cols[r.Intn(len(cols))]
			if c.Type != TypeString {
				return c
			}
		}
	}
	switch r.Intn(3) {
	case 0: // aggregate
		for i := 0; i < r.Intn(3); i++ {
			c := cols[r.Intn(len(cols))]
			dup := false
			for _, g := range q.GroupBy {
				if g == c.Name {
					dup = true
				}
			}
			if !dup {
				q.GroupBy = append(q.GroupBy, c.Name)
			}
		}
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			op := []string{"min", "max", "sum", "avg", "count"}[r.Intn(5)]
			a := Agg{Op: op, As: fmt.Sprintf("a%d", i)}
			if op != "count" || r.Intn(2) == 0 {
				a.Col = numeric().Name
			}
			q.Aggs = append(q.Aggs, a)
		}
	case 1: // project
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			q.Select = append(q.Select, cols[r.Intn(len(cols))].Name)
		}
	}

	out := q.outputCols(cols, colIndex(cols))
	for i := 0; i < r.Intn(3) && len(out) > 0; i++ {
		q.OrderBy = append(q.OrderBy, Order{Col: out[r.Intn(len(out))].Name, Desc: r.Intn(2) == 0})
	}
	if r.Intn(3) == 0 {
		q.Limit = 1 + r.Intn(10)
	}
	return q
}

// sameRows compares engine output to the reference. Without a total
// order_by the engine guarantees a deterministic order but the reference's
// may differ only when order_by leaves ties; compare as multisets then.
func sameRows(got, want [][]Value, total bool) bool {
	if len(got) != len(want) {
		return false
	}
	if total {
		return reflect.DeepEqual(got, want) || len(got) == 0
	}
	gk := make([]string, len(got))
	wk := make([]string, len(want))
	for i := range got {
		gk[i] = fmt.Sprintf("%#v", got[i])
		wk[i] = fmt.Sprintf("%#v", want[i])
	}
	sort.Strings(gk)
	sort.Strings(wk)
	return reflect.DeepEqual(gk, wk)
}

// --- differential tests ---

// TestDifferentialRandom cross-checks the streaming engine against the
// brute-force reference over hundreds of random queries covering every
// operator and both tables.
func TestDifferentialRandom(t *testing.T) {
	st := testStore(1, 40)
	r := rand.New(rand.NewSource(2))
	eng := New(st)
	for i := 0; i < 400; i++ {
		q := randQuery(r, st)
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid query %+v: %v", q, err)
		}
		rows, err := eng.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("Run(%+v): %v", q, err)
		}
		got, err := rows.All()
		if err != nil {
			t.Fatalf("All(%+v): %v", q, err)
		}
		want := refEval(st, q)
		// With a limit but no (or partial) order, row identity can
		// legitimately differ; compare counts only then.
		if q.Limit > 0 {
			if len(got) != len(want) {
				qj, _ := json.Marshal(q)
				t.Fatalf("query %s: got %d rows, reference %d", qj, len(got), len(want))
			}
			continue
		}
		if !sameRows(got, want, false) {
			qj, _ := json.Marshal(q)
			t.Fatalf("query %s:\n got %v\nwant %v", qj, got, want)
		}
	}
}

// TestDifferentialOrdered pins exact row order for fully-ordered queries.
func TestDifferentialOrdered(t *testing.T) {
	st := testStore(3, 30)
	eng := New(st)
	queries := []string{
		`{"select":["case","stall_pct"],"order_by":[{"col":"stall_pct","desc":true},{"col":"case"}]}`,
		`{"from":"epochs","order_by":[{"col":"case_id"},{"col":"epoch"}]}`,
		`{"from":"epochs","join":true,"where":[{"col":"epoch","op":"gt","value":0}],"order_by":[{"col":"case_id"},{"col":"epoch"}]}`,
		`{"group_by":["servers","gpus"],"aggs":[{"op":"min","col":"cache_gib"},{"op":"count"}]}`,
		`{"aggs":[{"op":"avg","col":"epoch_s"},{"op":"sum","col":"batch"},{"op":"count"}]}`,
		`{"where":[{"col":"loader","op":"eq","value":"CoorDL"}],"order_by":[{"col":"case_id"}],"limit":5}`,
	}
	for _, src := range queries {
		q, err := ParseQuery([]byte(src))
		if err != nil {
			t.Fatalf("ParseQuery(%s): %v", src, err)
		}
		rows, err := eng.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("Run(%s): %v", src, err)
		}
		got, err := rows.All()
		if err != nil {
			t.Fatalf("All(%s): %v", src, err)
		}
		want := refEval(st, q)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("query %s:\n got %v\nwant %v", src, got, want)
		}
	}
}

// TestFig18Shape checks the canonical "best cache per cluster size under a
// stall budget" query against hand-computed output.
func TestFig18Shape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	st := NewStore()
	// (servers, gpus, cacheGiB, stallFrac)
	for _, c := range []struct {
		servers, gpus int
		cache, stall  float64
	}{
		{1, 4, 16, 0.30}, {1, 4, 32, 0.04}, {1, 4, 64, 0.01},
		{2, 8, 16, 0.40}, {2, 8, 32, 0.12}, {2, 8, 64, 0.03},
	} {
		st.Add(synthCase(r, "fig18", "r", "c", c.servers, c.gpus, c.cache, c.stall))
	}
	q, err := ParseQuery([]byte(`{
		"where":    [{"col": "stall_pct", "op": "lt", "value": 5}],
		"group_by": ["servers", "gpus"],
		"aggs":     [{"op": "min", "col": "cache_gib", "as": "best_cache_gib"}],
		"order_by": [{"col": "servers"}, {"col": "gpus"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := New(st).Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Value{
		{intVal(1), intVal(4), floatVal(32)},
		{intVal(2), intVal(8), floatVal(64)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	wantCols := []string{"servers", "gpus", "best_cache_gib"}
	for i, c := range rows.Columns() {
		if c.Name != wantCols[i] {
			t.Fatalf("column %d = %q, want %q", i, c.Name, wantCols[i])
		}
	}
}

// TestScalarAggEmptyInput: aggs with no group_by emit exactly one row even
// when the filter kills every input row.
func TestScalarAggEmptyInput(t *testing.T) {
	st := testStore(5, 4)
	q, err := ParseQuery([]byte(`{"where":[{"col":"servers","op":"lt","value":0}],"aggs":[{"op":"count"},{"op":"sum","col":"batch"},{"op":"avg","col":"epoch_s"},{"op":"min","col":"cache_gib"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := New(st).Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Value{{intVal(0), intVal(0), floatVal(0), floatVal(0)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// --- cancellation ---

// TestCancelMidStream: cancelling the context mid-iteration terminates the
// stream with ctx.Err, both for streaming scans and inside the blocking
// aggregate drain.
func TestCancelMidStream(t *testing.T) {
	st := testStore(9, 20)
	eng := New(st)

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := eng.Run(ctx, &Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first Next = false: %v", rows.Err())
	}
	cancel()
	n := 0
	for rows.Next() {
		n++
	}
	if n != 0 {
		t.Fatalf("read %d rows after cancel", n)
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}

	// Pre-cancelled context: the blocking aggregate must surface the error
	// from its drain, not emit a result.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	rows, err = eng.Run(ctx2, &Query{Aggs: []Agg{{Op: "count"}}})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next = true under cancelled ctx")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
}

// --- validation / parse rejection ---

// TestParseQueryRejects is the garbage-AST table test: every malformed
// query is rejected with the right sentinel and field.
func TestParseQueryRejects(t *testing.T) {
	cases := []struct {
		name, src string
		sentinel  error // nil: any error (JSON-level failure)
		field     string
	}{
		{"bad json", `{`, nil, ""},
		{"unknown field", `{"frmo": "cases"}`, nil, ""},
		{"trailing data", `{} {}`, nil, ""},
		{"wrong root type", `[1, 2]`, nil, ""},
		{"unknown table", `{"from": "bogus"}`, ErrUnknownTable, "from"},
		{"join on cases", `{"join": true}`, ErrBadJoin, "join"},
		{"unknown where col", `{"where": [{"col": "nope", "op": "eq", "value": 1}]}`, ErrUnknownColumn, "where[0].col"},
		{"order op on string", `{"where": [{"col": "model", "op": "lt", "value": "a"}]}`, ErrBadOp, "where[0].op"},
		{"unknown op", `{"where": [{"col": "servers", "op": "like", "value": 1}]}`, ErrBadOp, "where[0].op"},
		{"string value on int col", `{"where": [{"col": "servers", "op": "eq", "value": "x"}]}`, ErrBadValue, "where[0].value"},
		{"number value on string col", `{"where": [{"col": "model", "op": "eq", "value": 3}]}`, ErrBadValue, "where[0].value"},
		{"bool value", `{"where": [{"col": "servers", "op": "eq", "value": true}]}`, ErrBadValue, "where[0].value"},
		{"second cond bad", `{"where": [{"col": "servers", "op": "eq", "value": 1}, {"col": "gone", "op": "eq", "value": 1}]}`, ErrUnknownColumn, "where[1].col"},
		{"group_by without aggs", `{"group_by": ["model"]}`, ErrBadShape, "group_by"},
		{"unknown group col", `{"group_by": ["nope"], "aggs": [{"op": "count"}]}`, ErrUnknownColumn, "group_by[0]"},
		{"select with aggs", `{"select": ["model"], "aggs": [{"op": "count"}]}`, ErrBadShape, "select"},
		{"unknown agg op", `{"aggs": [{"op": "median", "col": "epoch_s"}]}`, ErrBadAgg, "aggs[0].op"},
		{"agg on string col", `{"aggs": [{"op": "min", "col": "model"}]}`, ErrBadAgg, "aggs[0].op"},
		{"unknown agg col", `{"aggs": [{"op": "sum", "col": "nope"}]}`, ErrUnknownColumn, "aggs[0].col"},
		{"unknown count col", `{"aggs": [{"op": "count", "col": "nope"}]}`, ErrUnknownColumn, "aggs[0].col"},
		{"duplicate agg name", `{"aggs": [{"op": "count"}, {"op": "count"}]}`, ErrBadShape, "aggs[1].as"},
		{"unknown select col", `{"select": ["nope"]}`, ErrUnknownColumn, "select[0]"},
		{"order_by unknown col", `{"order_by": [{"col": "nope"}]}`, ErrUnknownColumn, "order_by[0].col"},
		{"order_by col projected away", `{"select": ["model"], "order_by": [{"col": "servers"}]}`, ErrUnknownColumn, "order_by[0].col"},
		{"order_by scan col after aggs", `{"aggs": [{"op": "count"}], "order_by": [{"col": "epoch_s"}]}`, ErrUnknownColumn, "order_by[0].col"},
		{"negative limit", `{"limit": -1}`, ErrBadLimit, "limit"},
		{"epochs col on cases", `{"where": [{"col": "epoch_stall_pct", "op": "lt", "value": 5}]}`, ErrUnknownColumn, "where[0].col"},
		{"cases col on bare epochs", `{"from": "epochs", "where": [{"col": "model", "op": "eq", "value": "resnet18"}]}`, ErrUnknownColumn, "where[0].col"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQuery([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseQuery(%s) = nil error", tc.src)
			}
			if tc.sentinel == nil {
				var fe *FieldError
				if errors.As(err, &fe) {
					t.Fatalf("got FieldError %v, want a JSON-level error", err)
				}
				return
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err %v does not wrap %v", err, tc.sentinel)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("err %v is not a *FieldError", err)
			}
			if fe.Field != tc.field {
				t.Fatalf("Field = %q, want %q", fe.Field, tc.field)
			}
		})
	}
}

// TestParseQueryAccepts: the join sees both epoch and identity columns.
func TestParseQueryAccepts(t *testing.T) {
	ok := []string{
		`{}`,
		`{"from": "epochs", "join": true, "where": [{"col": "model", "op": "eq", "value": "resnet18"}, {"col": "epoch_stall_pct", "op": "lt", "value": 5}]}`,
		`{"aggs": [{"op": "count", "col": "case_id"}]}`,
		`{"group_by": ["loader"], "aggs": [{"op": "avg", "col": "stall_pct"}], "order_by": [{"col": "loader", "desc": true}], "limit": 3}`,
	}
	for _, src := range ok {
		if _, err := ParseQuery([]byte(src)); err != nil {
			t.Fatalf("ParseQuery(%s): %v", src, err)
		}
	}
}

// --- schema ---

// TestSchemaMatchesStore: Schema is the single source of truth — row widths
// and join widths line up with it, names are unique, identity split is
// where the docs say.
func TestSchemaMatchesStore(t *testing.T) {
	st := testStore(11, 3)
	tables := Schema()
	if len(tables) != 2 || tables[0].Name != "cases" || tables[1].Name != "epochs" {
		t.Fatalf("Schema() tables = %+v", tables)
	}
	if got, want := len(st.caseRow(0)), len(tables[0].Cols); got != want {
		t.Fatalf("case row width %d != schema %d", got, want)
	}
	if got, want := len(st.epochRowValues(0)), len(tables[1].Cols); got != want {
		t.Fatalf("epoch row width %d != schema %d", got, want)
	}
	if got, want := len(joinCols()), len(tables[1].Cols)+caseIdentityEnd-1; got != want {
		t.Fatalf("join width %d != %d", got, want)
	}
	for _, tb := range append(tables, Table{Name: "join", Cols: joinCols()}) {
		seen := map[string]bool{}
		for _, c := range tb.Cols {
			if seen[c.Name] {
				t.Fatalf("table %s: duplicate column %q", tb.Name, c.Name)
			}
			seen[c.Name] = true
		}
	}
	if tables[0].Cols[caseIdentityEnd-1].Name != "seed" {
		t.Fatalf("identity must end at seed, got %q", tables[0].Cols[caseIdentityEnd-1].Name)
	}
	// Every cell's type matches its column's declared type.
	for i := range st.cases {
		for j, v := range st.caseRow(i) {
			if v.Type != tables[0].Cols[j].Type {
				t.Fatalf("cases[%d].%s: type %v != %v", i, tables[0].Cols[j].Name, v.Type, tables[0].Cols[j].Type)
			}
		}
	}
	for i := range st.epochs {
		for j, v := range st.epochRowValues(i) {
			if v.Type != tables[1].Cols[j].Type {
				t.Fatalf("epochs[%d].%s: type %v != %v", i, tables[1].Cols[j].Name, v.Type, tables[1].Cols[j].Type)
			}
		}
	}
}

// --- NDJSON ---

type flushRecorder struct {
	bytes.Buffer
	flushes int
}

func (f *flushRecorder) Flush() error { f.flushes++; return nil }

func TestWriteNDJSON(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	st := NewStore()
	st.Add(synthCase(r, "s", "r", "c0", 1, 4, 16, 0.25))
	st.Add(synthCase(r, "s", "r", "c1", 2, 8, 32, 0.02))
	q, err := ParseQuery([]byte(`{"select":["case_id","case","servers","stall_pct"],"order_by":[{"col":"case_id"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := New(st).Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var w flushRecorder
	n, err := WriteNDJSON(&w, rows)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if w.flushes != 2 {
		t.Fatalf("flushes = %d, want 2 (one per row)", w.flushes)
	}
	lines := strings.Split(strings.TrimRight(w.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	// Key order must be column order, and values round-trip via encoding/json.
	for i, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if got := int(m["case_id"].(float64)); got != i {
			t.Fatalf("line %d case_id = %d", i, got)
		}
		if !strings.HasPrefix(ln, fmt.Sprintf(`{"case_id":%d,"case":`, i)) {
			t.Fatalf("line %d keys out of column order: %s", i, ln)
		}
	}
	if !strings.Contains(lines[0], `"stall_pct":25`) {
		t.Fatalf("float rendering changed: %s", lines[0])
	}
}

// TestValueString pins the group-key renderings the engine sorts by.
func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{intVal(-3), "-3"},
		{floatVal(2.5), "2.5"},
		{floatVal(1e21), "1e+21"},
		{strVal("x"), "x"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Fatalf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
	// Type tags keep int 1 and string "1" in different groups.
	if keyString([]Value{intVal(1)}) == keyString([]Value{strVal("1")}) {
		t.Fatal("keyString collides across types")
	}
}
