// Package query is a read-only analytical surface over finished simulation
// results: a columnar store of training cases and their per-epoch stats,
// plus streaming Volcano-style relational operators (scan, filter, project,
// aggregate, order-by, limit, and a case-epoch join) composed from a small
// JSON query AST.
//
// The store ingests experiments.CaseResult rows — captured by spec sweeps,
// suite runs, the HTTP job service, or rehydrated from a saved suite report
// — into two typed column tables:
//
//   - "cases": one row per training run, with the resolved axis values
//     (model, loader, servers, cache size, ...) and steady-state metrics
//     (epoch_s, stall_pct, ...), exactly the metric names spec columns use;
//   - "epochs": one row per epoch per run, keyed back to its case by
//     case_id, including cache occupancy at epoch end.
//
// Queries are JSON (see ParseQuery) and execute lazily: Run returns a Rows
// iterator that pulls one row at a time through the operator pipeline,
// honoring ctx cancellation mid-stream, so arbitrarily large results stream
// in constant memory (pipeline-blocking operators — aggregate and order-by
// — buffer only their own state). Example, the paper's fig18 question
// "best (smallest sufficient) cache per cluster size where stalls are
// under 5%":
//
//	{
//	  "where":    [{"col": "stall_pct", "op": "lt", "value": 5}],
//	  "group_by": ["servers", "gpus"],
//	  "aggs":     [{"op": "min", "col": "cache_gib", "as": "best_cache_gib"}],
//	  "order_by": [{"col": "servers"}, {"col": "gpus"}]
//	}
//
//	st := query.NewStore()
//	st.AddCases(report.Cases)
//	rows, err := query.New(st).Run(ctx, q)
//
// Output is deterministic for a given store: scans stream in insertion
// order, grouped output is sorted by group key, and order-by sorts stably.
package query

import "datastall/internal/stats"

// ColType is a column's value type.
type ColType int

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeString
)

// String names the type as the schema docs spell it.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return "string"
}

// Col describes one column: its name as queries reference it, and its type.
type Col struct {
	Name string
	Type ColType
}

// Table describes one queryable table.
type Table struct {
	Name string
	Cols []Col
}

// Schema returns the store's row schema — the single source of truth shared
// by the columnar store, the AST validator, and the docs. Joined queries
// ("join": true on "epochs") see the epoch columns followed by the case
// identity columns (everything in "cases" up to and including "seed",
// case_id deduplicated).
func Schema() []Table {
	return []Table{
		{Name: "cases", Cols: caseCols()},
		{Name: "epochs", Cols: epochCols()},
	}
}

// caseIdentityEnd is the number of leading "cases" columns that form the
// run's identity (case_id .. seed); the rest are steady-state metrics. The
// join appends the identity columns (minus case_id) to each epoch row.
const caseIdentityEnd = 15

// caseDef couples one "cases" column with its extractor; the slice below is
// the one place the cases schema is defined.
type caseDef struct {
	col Col
	// get reads the column from an ingested case; id is the assigned
	// case_id.
	get func(id int64, c *ingested) Value
}

// ingested is the store's view of one case: the identity fields plus the
// precomputed steady-state metrics.
type ingested struct {
	spec, row, kase                string
	model, dataset, server, loader string
	servers, gpus, batch, epochs   int64
	cacheBytes                     float64
	seed                           int64

	epochS, samplesPerS, stallPct, hitPct, missPct  float64
	diskGiBPerEpoch, diskGiBPerNode, netGiBPerEpoch float64
	totalDiskGiB, totalTimeS                        float64
}

func caseDefs() []caseDef {
	return []caseDef{
		{Col{"case_id", TypeInt}, func(id int64, c *ingested) Value { return intVal(id) }},
		{Col{"spec", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.spec) }},
		{Col{"row", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.row) }},
		{Col{"case", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.kase) }},
		{Col{"model", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.model) }},
		{Col{"dataset", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.dataset) }},
		{Col{"server", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.server) }},
		{Col{"loader", TypeString}, func(_ int64, c *ingested) Value { return strVal(c.loader) }},
		{Col{"servers", TypeInt}, func(_ int64, c *ingested) Value { return intVal(c.servers) }},
		{Col{"gpus", TypeInt}, func(_ int64, c *ingested) Value { return intVal(c.gpus) }},
		{Col{"batch", TypeInt}, func(_ int64, c *ingested) Value { return intVal(c.batch) }},
		{Col{"epochs", TypeInt}, func(_ int64, c *ingested) Value { return intVal(c.epochs) }},
		{Col{"cache_bytes", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.cacheBytes) }},
		{Col{"cache_gib", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.cacheBytes / stats.GiB) }},
		{Col{"seed", TypeInt}, func(_ int64, c *ingested) Value { return intVal(c.seed) }},
		// Steady-state metrics, named exactly like spec column metrics.
		{Col{"epoch_s", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.epochS) }},
		{Col{"samples_per_s", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.samplesPerS) }},
		{Col{"stall_pct", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.stallPct) }},
		{Col{"hit_pct", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.hitPct) }},
		{Col{"miss_pct", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.missPct) }},
		{Col{"disk_gib_per_epoch", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.diskGiBPerEpoch) }},
		{Col{"disk_gib_per_node", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.diskGiBPerNode) }},
		{Col{"net_gib_per_epoch", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.netGiBPerEpoch) }},
		{Col{"total_disk_gib", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.totalDiskGiB) }},
		{Col{"total_time_s", TypeFloat}, func(_ int64, c *ingested) Value { return floatVal(c.totalTimeS) }},
	}
}

func caseCols() []Col {
	defs := caseDefs()
	out := make([]Col, len(defs))
	for i, d := range defs {
		out[i] = d.col
	}
	return out
}

// epochRow is the store's view of one epoch of one case.
type epochRow struct {
	caseID int64
	epoch  int64

	durationS, computeS, stallS, stallPct        float64
	diskGiB, netGiB, memGiB                      float64
	diskReads, hits, misses, remoteHits, samples int64
	cacheUsedGiB                                 float64
}

type epochDef struct {
	col Col
	get func(e *epochRow) Value
}

func epochDefs() []epochDef {
	return []epochDef{
		{Col{"case_id", TypeInt}, func(e *epochRow) Value { return intVal(e.caseID) }},
		{Col{"epoch", TypeInt}, func(e *epochRow) Value { return intVal(e.epoch) }},
		{Col{"duration_s", TypeFloat}, func(e *epochRow) Value { return floatVal(e.durationS) }},
		{Col{"compute_s", TypeFloat}, func(e *epochRow) Value { return floatVal(e.computeS) }},
		{Col{"stall_s", TypeFloat}, func(e *epochRow) Value { return floatVal(e.stallS) }},
		{Col{"epoch_stall_pct", TypeFloat}, func(e *epochRow) Value { return floatVal(e.stallPct) }},
		{Col{"disk_gib", TypeFloat}, func(e *epochRow) Value { return floatVal(e.diskGiB) }},
		{Col{"net_gib", TypeFloat}, func(e *epochRow) Value { return floatVal(e.netGiB) }},
		{Col{"mem_gib", TypeFloat}, func(e *epochRow) Value { return floatVal(e.memGiB) }},
		{Col{"disk_reads", TypeInt}, func(e *epochRow) Value { return intVal(e.diskReads) }},
		{Col{"hits", TypeInt}, func(e *epochRow) Value { return intVal(e.hits) }},
		{Col{"misses", TypeInt}, func(e *epochRow) Value { return intVal(e.misses) }},
		{Col{"remote_hits", TypeInt}, func(e *epochRow) Value { return intVal(e.remoteHits) }},
		{Col{"samples", TypeInt}, func(e *epochRow) Value { return intVal(e.samples) }},
		{Col{"cache_used_gib", TypeFloat}, func(e *epochRow) Value { return floatVal(e.cacheUsedGiB) }},
	}
}

func epochCols() []Col {
	defs := epochDefs()
	out := make([]Col, len(defs))
	for i, d := range defs {
		out[i] = d.col
	}
	return out
}

// joinCols is the output schema of "epochs" with "join": true — the epoch
// columns followed by the case identity columns (case_id deduplicated).
func joinCols() []Col {
	out := append([]Col{}, epochCols()...)
	for _, c := range caseCols()[1:caseIdentityEnd] {
		out = append(out, c)
	}
	return out
}

// tableCols resolves the output schema a query's scan produces, or nil for
// an unknown combination.
func tableCols(from string, join bool) []Col {
	switch {
	case from == "cases" && !join:
		return caseCols()
	case from == "epochs" && join:
		return joinCols()
	case from == "epochs":
		return epochCols()
	}
	return nil
}
