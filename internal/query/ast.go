package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Query is the JSON query AST. The zero value scans every "cases" row; each
// clause composes one more operator onto the pipeline, applied in the fixed
// order scan -> join -> where -> aggregate -> select -> order_by -> limit.
type Query struct {
	// From names the table: "cases" (default) or "epochs".
	From string `json:"from,omitempty"`
	// Join (on "epochs" only) appends each epoch row's case identity
	// columns — everything from "spec" through "seed" — keyed by case_id.
	Join bool `json:"join,omitempty"`
	// Where keeps rows matching every condition (AND).
	Where []Cond `json:"where,omitempty"`
	// GroupBy + Aggs aggregate: output is one row per distinct group key,
	// sorted by key, with the group columns followed by the aggregates.
	// Aggs without GroupBy aggregates the whole input into one row.
	GroupBy []string `json:"group_by,omitempty"`
	Aggs    []Agg    `json:"aggs,omitempty"`
	// Select projects the named columns, in order (no aggregation).
	Select []string `json:"select,omitempty"`
	// OrderBy sorts the output rows (stable; ties keep pipeline order).
	OrderBy []Order `json:"order_by,omitempty"`
	// Limit > 0 keeps only the first Limit rows.
	Limit int `json:"limit,omitempty"`
}

// Cond is one where-clause condition.
type Cond struct {
	// Col names the column tested.
	Col string `json:"col"`
	// Op is "eq", "ne", "lt", "le", "gt" or "ge" (string columns support
	// only eq/ne).
	Op string `json:"op"`
	// Value is the literal compared against: a JSON number for numeric
	// columns, a JSON string for string columns.
	Value interface{} `json:"value"`
}

// Agg is one aggregate output.
type Agg struct {
	// Op is "min", "max", "sum", "avg" or "count".
	Op string `json:"op"`
	// Col is the aggregated column; count may omit it (row count).
	Col string `json:"col,omitempty"`
	// As names the output column (default "<op>_<col>", or "count").
	As string `json:"as,omitempty"`
}

// name returns the aggregate's output column name.
func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	if a.Col == "" {
		return a.Op
	}
	return a.Op + "_" + a.Col
}

// Validation sentinels. Validate (and Run) return a *FieldError wrapping
// one of these, so callers can match the failure class with errors.Is and
// recover the offending AST field.
var (
	// ErrUnknownTable: From is neither "cases" nor "epochs".
	ErrUnknownTable = errors.New("unknown table")
	// ErrBadJoin: Join set on a table that has no join.
	ErrBadJoin = errors.New("join is only defined for the epochs table")
	// ErrUnknownColumn: a referenced column is not in the scanned schema.
	ErrUnknownColumn = errors.New("unknown column")
	// ErrBadOp: a condition operator is not recognized, or not applicable
	// to the column's type.
	ErrBadOp = errors.New("unknown or inapplicable operator")
	// ErrBadValue: a condition value's JSON type does not match the column.
	ErrBadValue = errors.New("value does not match the column type")
	// ErrBadAgg: an aggregate op is not recognized, or not applicable.
	ErrBadAgg = errors.New("unknown or inapplicable aggregate")
	// ErrBadShape: clauses that cannot compose (select with aggs, group_by
	// without aggs).
	ErrBadShape = errors.New("invalid clause combination")
	// ErrBadLimit: negative limit.
	ErrBadLimit = errors.New("limit must be >= 0")
)

// FieldError is a typed validation failure, mirroring the trainer's Job
// validation idiom: Field names the offending query clause and Unwrap
// yields the matching sentinel.
type FieldError struct {
	// Field locates the failure, e.g. "where[1].col" or "aggs[0].op".
	Field string
	// Err is the sentinel classifying the failure.
	Err error
	// Detail elaborates with the offending values.
	Detail string
}

// Error implements error.
func (e *FieldError) Error() string {
	s := "query: " + e.Field + ": " + e.Err.Error()
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Unwrap yields the sentinel for errors.Is.
func (e *FieldError) Unwrap() error { return e.Err }

func fieldErr(field string, sentinel error, format string, args ...interface{}) *FieldError {
	return &FieldError{Field: field, Err: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// ParseQuery decodes a JSON query, rejecting unknown fields so typos fail
// loudly, and validates it against the schema.
func ParseQuery(data []byte) (*Query, error) {
	var q Query
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	// A second document after the query is a malformed file, not data to
	// ignore.
	if dec.More() {
		return nil, fmt.Errorf("query: trailing data after the query object")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// colIndex maps the scanned schema for O(1) column resolution.
func colIndex(cols []Col) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c.Name] = i
	}
	return m
}

// Validate checks the query against the schema and returns a typed
// *FieldError for the first invalid clause, or nil. It mirrors exactly what
// Run accepts: a validated query cannot fail to plan.
func (q *Query) Validate() error {
	from := q.From
	if from == "" {
		from = "cases"
	}
	if from != "cases" && from != "epochs" {
		return fieldErr("from", ErrUnknownTable, "got %q, want \"cases\" or \"epochs\"", q.From)
	}
	if q.Join && from != "epochs" {
		return fieldErr("join", ErrBadJoin, "got table %q", from)
	}
	cols := tableCols(from, q.Join)
	idx := colIndex(cols)

	for i, c := range q.Where {
		field := fmt.Sprintf("where[%d]", i)
		ci, ok := idx[c.Col]
		if !ok {
			return fieldErr(field+".col", ErrUnknownColumn, "%q is not a column of %s", c.Col, scanName(from, q.Join))
		}
		typ := cols[ci].Type
		switch c.Op {
		case "eq", "ne":
		case "lt", "le", "gt", "ge":
			if typ == TypeString {
				return fieldErr(field+".op", ErrBadOp, "%q does not order string column %q (use eq/ne)", c.Op, c.Col)
			}
		default:
			return fieldErr(field+".op", ErrBadOp, "got %q, want eq/ne/lt/le/gt/ge", c.Op)
		}
		switch v := c.Value.(type) {
		case float64:
			if typ == TypeString {
				return fieldErr(field+".value", ErrBadValue, "number %g against string column %q", v, c.Col)
			}
		case string:
			if typ != TypeString {
				return fieldErr(field+".value", ErrBadValue, "string %q against %s column %q", v, typ, c.Col)
			}
		default:
			return fieldErr(field+".value", ErrBadValue, "got %T, want a JSON number or string", c.Value)
		}
	}

	if len(q.GroupBy) > 0 && len(q.Aggs) == 0 {
		return fieldErr("group_by", ErrBadShape, "group_by without aggs; add at least one aggregate")
	}
	if len(q.Select) > 0 && len(q.Aggs) > 0 {
		return fieldErr("select", ErrBadShape, "select and aggs are mutually exclusive (group_by columns are emitted automatically)")
	}
	for i, g := range q.GroupBy {
		if _, ok := idx[g]; !ok {
			return fieldErr(fmt.Sprintf("group_by[%d]", i), ErrUnknownColumn, "%q is not a column of %s", g, scanName(from, q.Join))
		}
	}
	outNames := map[string]bool{}
	for i, a := range q.Aggs {
		field := fmt.Sprintf("aggs[%d]", i)
		switch a.Op {
		case "min", "max", "sum", "avg":
			ci, ok := idx[a.Col]
			if !ok {
				return fieldErr(field+".col", ErrUnknownColumn, "%q is not a column of %s", a.Col, scanName(from, q.Join))
			}
			if cols[ci].Type == TypeString {
				return fieldErr(field+".op", ErrBadAgg, "%q cannot aggregate string column %q (only count)", a.Op, a.Col)
			}
		case "count":
			if a.Col != "" {
				if _, ok := idx[a.Col]; !ok {
					return fieldErr(field+".col", ErrUnknownColumn, "%q is not a column of %s", a.Col, scanName(from, q.Join))
				}
			}
		default:
			return fieldErr(field+".op", ErrBadAgg, "got %q, want min/max/sum/avg/count", a.Op)
		}
		if outNames[a.name()] {
			return fieldErr(field+".as", ErrBadShape, "duplicate output column %q", a.name())
		}
		outNames[a.name()] = true
	}
	for i, s := range q.Select {
		if _, ok := idx[s]; !ok {
			return fieldErr(fmt.Sprintf("select[%d]", i), ErrUnknownColumn, "%q is not a column of %s", s, scanName(from, q.Join))
		}
	}

	// order_by and limit apply to the pipeline's output schema.
	out := q.outputCols(cols, idx)
	outIdx := colIndex(out)
	for i, o := range q.OrderBy {
		if _, ok := outIdx[o.Col]; !ok {
			return fieldErr(fmt.Sprintf("order_by[%d].col", i), ErrUnknownColumn, "%q is not an output column", o.Col)
		}
	}
	if q.Limit < 0 {
		return fieldErr("limit", ErrBadLimit, "got %d", q.Limit)
	}
	return nil
}

// Order is one order-by key.
type Order struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// scanName names the scanned relation for error messages.
func scanName(from string, join bool) string {
	if join {
		return from + " (joined)"
	}
	return from
}

// outputCols computes the pipeline's output schema after aggregation or
// projection. cols/idx describe the scanned schema.
func (q *Query) outputCols(cols []Col, idx map[string]int) []Col {
	switch {
	case len(q.Aggs) > 0:
		out := make([]Col, 0, len(q.GroupBy)+len(q.Aggs))
		for _, g := range q.GroupBy {
			out = append(out, cols[idx[g]])
		}
		for _, a := range q.Aggs {
			out = append(out, Col{Name: a.name(), Type: aggType(a, cols, idx)})
		}
		return out
	case len(q.Select) > 0:
		out := make([]Col, 0, len(q.Select))
		for _, s := range q.Select {
			out = append(out, cols[idx[s]])
		}
		return out
	}
	return cols
}

// aggType is the aggregate output's column type: count is int, avg is
// float, min/max/sum follow the input column.
func aggType(a Agg, cols []Col, idx map[string]int) ColType {
	switch a.Op {
	case "count":
		return TypeInt
	case "avg":
		return TypeFloat
	}
	return cols[idx[a.Col]].Type
}
