package query

import (
	"encoding/json"
	"io"
	"strconv"
)

// flusher lets WriteNDJSON push each row to the client as it is produced
// (http.ResponseWriter implements it via http.NewResponseController in the
// server; files and buffers simply don't).
type flusher interface{ Flush() error }

// WriteNDJSON streams the result as one JSON object per line, keys in
// column order (stable bytes: no map iteration, floats rendered by
// encoding/json's shortest-roundtrip rules). When w implements
// Flush() error, every row is flushed as written so clients see rows as
// they stream. Returns the row count and the first write or query error.
func WriteNDJSON(w io.Writer, rows *Rows) (int, error) {
	f, _ := w.(flusher)
	cols := rows.Columns()
	// Column keys are constant across rows; pre-encode them once.
	keys := make([][]byte, len(cols))
	for i, c := range cols {
		k, err := json.Marshal(c.Name)
		if err != nil {
			return 0, err
		}
		keys[i] = k
	}
	n := 0
	buf := make([]byte, 0, 256)
	for rows.Next() {
		buf = buf[:0]
		buf = append(buf, '{')
		for i, v := range rows.Row() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, keys[i]...)
			buf = append(buf, ':')
			buf = appendValue(buf, v)
		}
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return n, err
		}
		if f != nil {
			if err := f.Flush(); err != nil {
				return n, err
			}
		}
		n++
	}
	return n, rows.Err()
}

// appendValue renders one cell as JSON. Floats go through encoding/json
// (shortest roundtrip, matching every other JSON the repo emits) so golden
// files never churn on formatting.
func appendValue(buf []byte, v Value) []byte {
	switch v.Type {
	case TypeInt:
		return strconv.AppendInt(buf, v.I, 10)
	case TypeFloat:
		b, err := json.Marshal(v.F)
		if err != nil {
			// NaN/Inf cannot reach here: every stored metric is finite
			// (durations, byte counts, ratios of positive quantities).
			return append(buf, "null"...)
		}
		return append(buf, b...)
	}
	b, _ := json.Marshal(v.S)
	return append(buf, b...)
}
