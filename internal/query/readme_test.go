package query

import (
	"os"
	"strings"
	"testing"
)

// TestREADMEListsEveryColumn pins the README's "Querying results" section
// to Schema(): adding, renaming or dropping a column without updating the
// documented table layout fails here, not in a user's query.
func TestREADMEListsEveryColumn(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	md := string(data)
	for _, tbl := range Schema() {
		for _, col := range tbl.Cols {
			if !strings.Contains(md, "`"+col.Name+"`") {
				t.Errorf("README does not document %s column %q", tbl.Name, col.Name)
			}
		}
	}
}
