package query

import (
	"strconv"

	"datastall/internal/experiments"
	"datastall/internal/stats"
)

// Value is one cell of a result row: a tagged union over the three column
// types, comparable without allocation.
type Value struct {
	Type ColType
	I    int64
	F    float64
	S    string
}

func intVal(i int64) Value     { return Value{Type: TypeInt, I: i} }
func floatVal(f float64) Value { return Value{Type: TypeFloat, F: f} }
func strVal(s string) Value    { return Value{Type: TypeString, S: s} }

// num returns the cell as a float64 for comparisons and arithmetic; only
// valid for numeric types.
func (v Value) num() float64 {
	if v.Type == TypeInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the cell for group keys and debugging.
func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
	return v.S
}

// compare orders two same-type cells: numerics numerically, strings
// lexicographically.
func compare(a, b Value) int {
	if a.Type == TypeString {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	}
	an, bn := a.num(), b.num()
	switch {
	case an < bn:
		return -1
	case an > bn:
		return 1
	}
	return 0
}

// Store is an append-only columnar result store. Ingestion is not
// goroutine-safe; a built store may be queried concurrently. The zero value
// is not usable — call NewStore.
type Store struct {
	cases  []ingested
	epochs []epochRow
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Len reports the number of ingested cases.
func (s *Store) Len() int { return len(s.cases) }

// AddCases ingests a batch of finished cases (e.g. report.Cases after a
// spec run, SuiteResult.SuiteCases() after a suite, or
// experiments.LoadSuiteCases of a saved report). Case IDs are assigned in
// ingestion order, starting at 0.
func (s *Store) AddCases(cases []*experiments.CaseResult) {
	for _, c := range cases {
		s.Add(c)
	}
}

// Add ingests one finished case and returns its assigned case_id.
func (s *Store) Add(c *experiments.CaseResult) int64 {
	id := int64(len(s.cases))
	r := c.Result
	servers := c.Servers
	if servers < 1 {
		servers = 1
	}
	row := ingested{
		spec: c.Spec, row: c.Row, kase: c.Case,
		model: c.Model, dataset: c.Dataset, server: c.Server, loader: c.Loader,
		servers: int64(c.Servers), gpus: int64(c.GPUs),
		batch: int64(c.Batch), epochs: int64(c.Epochs),
		cacheBytes: c.CacheBytes, seed: c.Seed,

		epochS:          r.EpochTime,
		samplesPerS:     r.Throughput,
		stallPct:        100 * r.StallFraction,
		hitPct:          100 * r.HitRate,
		missPct:         100 * (1 - r.HitRate),
		diskGiBPerEpoch: r.DiskPerEpoch / stats.GiB,
		diskGiBPerNode:  r.DiskPerEpoch / float64(servers) / stats.GiB,
		netGiBPerEpoch:  r.NetPerEpoch / stats.GiB,
		totalDiskGiB:    r.TotalDiskBytes / stats.GiB,
		totalTimeS:      r.TotalTime,
	}
	s.cases = append(s.cases, row)
	for i, e := range r.Epochs {
		stallPct := 0.0
		if e.Duration > 0 {
			stallPct = 100 * e.StallTime / e.Duration
		}
		s.epochs = append(s.epochs, epochRow{
			caseID: id, epoch: int64(i),
			durationS: e.Duration, computeS: e.ComputeTime,
			stallS: e.StallTime, stallPct: stallPct,
			diskGiB:   e.DiskBytes / stats.GiB,
			netGiB:    e.NetBytes / stats.GiB,
			memGiB:    e.MemBytes / stats.GiB,
			diskReads: int64(e.DiskReads), hits: int64(e.Hits),
			misses: int64(e.Misses), remoteHits: int64(e.RemoteHits),
			samples:      int64(e.Samples),
			cacheUsedGiB: e.CacheUsedBytes / stats.GiB,
		})
	}
	return id
}

// The def slices are immutable after init; materialization shares them.
var (
	allCaseDefs  = caseDefs()
	allEpochDefs = epochDefs()
)

// caseRow materializes case i as a row in caseCols order.
func (s *Store) caseRow(i int) []Value {
	out := make([]Value, len(allCaseDefs))
	for j, d := range allCaseDefs {
		out[j] = d.get(int64(i), &s.cases[i])
	}
	return out
}

// epochRowValues materializes epoch row i in epochCols order.
func (s *Store) epochRowValues(i int) []Value {
	out := make([]Value, len(allEpochDefs))
	for j, d := range allEpochDefs {
		out[j] = d.get(&s.epochs[i])
	}
	return out
}

// identityValues materializes case id's identity columns (spec .. seed) for
// the join.
func (s *Store) identityValues(id int64) []Value {
	defs := allCaseDefs[1:caseIdentityEnd]
	out := make([]Value, len(defs))
	for j, d := range defs {
		out[j] = d.get(id, &s.cases[id])
	}
	return out
}
