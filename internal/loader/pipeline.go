// Concurrent loader backend: a goroutine fetch -> prep worker pipeline that
// drives an epoch through bounded channels, instead of the simulator's
// per-epoch analytic loop. The analytic backend computes what the hardware
// model *predicts*; this backend executes the same cache policies on real
// goroutines and measures what the host actually does, which is what the
// race battery and the lookup-throughput benchmarks exercise.
//
// Pipeline shape (one epoch):
//
//	feed --batches--> [Workers x fetch] --results--> [PrepWorkers x prep]
//
// Both channels are bounded by QueueDepth, so a slow prep stage
// back-pressures fetch workers exactly like the simulator's bounded staging
// stores. RunEpoch is a full barrier: it returns only after every batch has
// been fetched and prepped, so per-epoch counters are exact.
package loader

import (
	"context"
	"sync"
	"time"

	"datastall/internal/dataset"
)

// BatchFetch resolves one minibatch for the concurrent backend. worker is
// the fetch-worker index (stable across the epoch); implementations must be
// safe for concurrent use.
type BatchFetch func(worker int, items []dataset.ItemID) FetchResult

// Pipeline is the concurrent epoch driver. Zero-value fields get safe
// defaults (1 worker, depth 2x workers, whole epoch as one batch).
type Pipeline struct {
	// Workers is the fetch-stage goroutine count.
	Workers int
	// PrepWorkers is the prep-stage goroutine count (defaults to Workers).
	PrepWorkers int
	// Batch is the minibatch size in items.
	Batch int
	// QueueDepth bounds both inter-stage channels, in batches
	// (defaults to 2x Workers).
	QueueDepth int
	// Fetch resolves one batch; required.
	Fetch BatchFetch
	// Prep, if non-nil, runs in the prep stage for every fetched batch
	// (e.g. prep.Pool.Process); must be safe for concurrent use.
	Prep func(r FetchResult)
}

// EpochReport aggregates one epoch of pipeline execution.
type EpochReport struct {
	// Fetch is the exact sum of every batch's FetchResult.
	Fetch FetchResult
	// Batches is the number of minibatches driven through the pipeline.
	Batches int
	// Items is the number of items handed to the fetch stage; on an
	// uncancelled epoch this equals the items fetched.
	Items int
	// WallSeconds is the real (host) time the epoch took.
	WallSeconds float64
}

// Add accumulates o into r (epoch roll-ups).
func (r *EpochReport) Add(o EpochReport) {
	r.Fetch.Add(o.Fetch)
	r.Batches += o.Batches
	r.Items += o.Items
	if o.WallSeconds > r.WallSeconds {
		r.WallSeconds = o.WallSeconds // concurrent servers overlap
	}
}

// maxWorkers and maxQueueDepth bound goroutine and channel allocation: a
// misconfigured (or fuzzed) knob must degrade to a big-but-sane pipeline,
// not exhaust memory spawning 2^30 goroutines.
const (
	maxWorkers    = 1024
	maxQueueDepth = 4096
)

func (p *Pipeline) workers() (fetch, prep, depth, batch int) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	fetch = p.Workers
	if fetch < 1 {
		fetch = 1
	}
	fetch = clamp(fetch, 1, maxWorkers)
	prep = p.PrepWorkers
	if prep < 1 {
		prep = fetch
	}
	prep = clamp(prep, 1, maxWorkers)
	depth = p.QueueDepth
	if depth < 1 {
		depth = 2 * fetch
	}
	depth = clamp(depth, 1, maxQueueDepth)
	batch = p.Batch
	if batch < 1 {
		batch = 0 // whole order as one batch
	}
	return
}

// RunEpoch drives order through the fetch and prep stages and blocks until
// every batch has completed both. An empty order returns a zero report.
func (p *Pipeline) RunEpoch(order []dataset.ItemID) EpochReport {
	rep, _ := p.RunEpochContext(context.Background(), order)
	return rep
}

// RunEpochContext is RunEpoch with cooperative cancellation: every blocking
// channel send (the feeder's and the fetch workers') selects on ctx.Done(),
// so a cancelled context unblocks the whole pipeline mid-epoch instead of
// letting a slow or hung stage pin it forever. On cancellation it drains the
// stages, reports ctx.Err(), and returns a best-effort partial report:
// Items counts the items handed to the fetch stage before the cancel
// landed, while Fetch/Batches cover only batches that completed both
// stages — in-flight batches at the instant of cancellation are dropped,
// so a partial report's Fetch counters are a lower bound, not exact.
func (p *Pipeline) RunEpochContext(ctx context.Context, order []dataset.ItemID) (EpochReport, error) {
	if p.Fetch == nil {
		panic("loader: Pipeline.Fetch is required")
	}
	nFetch, nPrep, depth, batch := p.workers()
	if batch == 0 {
		batch = len(order)
	}
	start := time.Now()
	rep := EpochReport{}
	if len(order) == 0 {
		return rep, ctx.Err()
	}

	feed := make(chan []dataset.ItemID, depth)
	fetched := make(chan FetchResult, depth)
	done := ctx.Done()

	var fetchWG, prepWG sync.WaitGroup
	var mu sync.Mutex // guards rep merges

	for w := 0; w < nFetch; w++ {
		fetchWG.Add(1)
		go func(worker int) {
			defer fetchWG.Done()
			for items := range feed {
				r := p.Fetch(worker, items)
				// Checked before the select: once done is closed the
				// select picks randomly, and a cancelled epoch should
				// drop in-flight results deterministically rather than
				// letting some of them race into the prep stage.
				if ctx.Err() != nil {
					continue
				}
				select {
				case fetched <- r:
				case <-done:
					// Drop the result; the feeder stops on the same
					// signal and the epoch is aborted.
				}
			}
		}(w)
	}
	for w := 0; w < nPrep; w++ {
		prepWG.Add(1)
		go func() {
			defer prepWG.Done()
			local := EpochReport{}
			for r := range fetched {
				if p.Prep != nil {
					p.Prep(r)
				}
				local.Fetch.Add(r)
				local.Batches++
			}
			mu.Lock()
			rep.Fetch.Add(local.Fetch)
			rep.Batches += local.Batches
			mu.Unlock()
		}()
	}

	fed := 0
feeding:
	for i := 0; i < len(order); i += batch {
		// Checked before the select: when both cases are ready the select
		// picks randomly, but a dead context must deterministically feed
		// nothing further.
		if ctx.Err() != nil {
			break
		}
		j := i + batch
		if j > len(order) {
			j = len(order)
		}
		select {
		case feed <- order[i:j]:
			fed = j
		case <-done:
			break feeding
		}
	}
	close(feed)
	fetchWG.Wait()
	close(fetched)
	prepWG.Wait()

	rep.Items = fed
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, ctx.Err()
}
