// Benchmark measurement helpers shared by the Go benchmarks (bench_test.go
// at the module root) and cmd/stallbench's -bench mode, which emits the
// BENCH_*.json perf-trajectory files. They measure real host concurrency, so
// results depend on GOMAXPROCS — reports should always record the CPU count
// alongside the numbers.
package loader

import (
	"sync"
	"time"

	"datastall/internal/cache"
	"datastall/internal/dataset"
)

// MeasureLookupThroughput pre-populates nothing and assumes c already holds
// its working set: it runs `workers` goroutines, each performing
// opsPerWorker lookups striding over ids, and returns aggregate lookups/sec.
func MeasureLookupThroughput(c cache.Cache, ids []dataset.ItemID, workers, opsPerWorker int) float64 {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			n := len(ids)
			for i := 0; i < opsPerWorker; i++ {
				c.Lookup(ids[(off+i*7)%n])
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(workers*opsPerWorker) / elapsed
}

// BenchCacheWorkload builds the standard lookup-benchmark fixture: an
// equal-sized synthetic dataset of n items, its ID list, and a fully
// populated cache returned by build.
func BenchCacheWorkload(n int, build func(capBytes float64) cache.Cache) (cache.Cache, []dataset.ItemID) {
	const itemBytes = 1024.0
	c := build(float64(n) * itemBytes)
	ids := make([]dataset.ItemID, n)
	for i := range ids {
		ids[i] = dataset.ItemID(i)
		c.Insert(ids[i], itemBytes)
	}
	return c, ids
}

// MinIOBatchFetch returns the lookup-or-fetch-and-insert loop over any
// goroutine-safe cache: hits are served from memory, misses cost
// seeksPerItem disk reads and are offered to the cache. This is THE policy
// loop — the trainer's concurrent backend, the benchmarks, and the tests
// all share it, so they cannot drift apart.
func MinIOBatchFetch(d *dataset.Dataset, c cache.Cache, seeksPerItem int) BatchFetch {
	if seeksPerItem < 1 {
		seeksPerItem = 1
	}
	return func(_ int, items []dataset.ItemID) FetchResult {
		var r FetchResult
		for _, id := range items {
			sz := d.ItemBytes(id)
			if c.Lookup(id) {
				r.MemBytes += sz
				r.Hits++
			} else {
				r.DiskBytes += sz
				r.DiskItems += seeksPerItem
				r.Misses++
				c.Insert(id, sz)
			}
		}
		return r
	}
}

// MeasureEpochWall drives one steady-state epoch of the MinIO pipeline at
// the given worker count over a pre-warmed sharded cache and returns the
// epoch report (wall seconds, exact counters).
func MeasureEpochWall(d *dataset.Dataset, c cache.Cache, order []dataset.ItemID, workers, batch int) EpochReport {
	p := &Pipeline{Workers: workers, Batch: batch, Fetch: MinIOBatchFetch(d, c, 1)}
	return p.RunEpoch(order)
}
