package loader

import (
	"testing"

	"datastall/internal/cache"
	"datastall/internal/dataset"
)

// FuzzPipeline feeds adversarial shapes through the sampler -> pipeline ->
// sharded-cache path: malformed dataset sizes (zero, negative, sub-item
// totals), zero/negative cache capacities, degenerate batch/worker/shard
// counts. The pipeline must never panic, must visit every item exactly once,
// and the cache budget invariant UsedBytes <= max(CapBytes, 0) must hold.
//
// Seed corpus is committed under testdata/fuzz/FuzzPipeline; `go test` replays
// it on every run, `go test -fuzz=FuzzPipeline ./internal/loader` explores.
func FuzzPipeline(f *testing.F) {
	f.Add(100, 800.0, 80.0, 8, 4, 4, int64(1), true)
	f.Add(0, 0.0, 0.0, 0, 0, 0, int64(0), false)     // empty dataset, all-zero knobs
	f.Add(64, -512.0, 64.0, 1, 1, 1, int64(9), true) // negative total: negative item sizes
	f.Add(1000, 8000.0, 0.0, 7, 3, 5, int64(3), false)
	f.Add(17, 0.25, -4.0, -2, -2, -2, int64(-7), true) // sub-byte items, negative capacity
	f.Fuzz(func(t *testing.T, items int, totalBytes, capBytes float64, batch, workers, shards int, seed int64, random bool) {
		if items < 0 {
			items = -items
		}
		items %= 4096
		d := &dataset.Dataset{Name: "fuzz", NumItems: items, TotalBytes: totalBytes}

		var order []dataset.ItemID
		if random {
			order = dataset.NewRandomSampler(dataset.FullShard(d), seed).EpochOrder(int(seed % 17))
		} else {
			order = dataset.NewSequentialSampler(dataset.FullShard(d)).EpochOrder(0)
		}
		if len(order) != items {
			t.Fatalf("sampler returned %d items, want %d", len(order), items)
		}
		seen := make(map[dataset.ItemID]bool, len(order))
		for _, id := range order {
			if int(id) < 0 || int(id) >= items || seen[id] {
				t.Fatalf("sampler order is not a permutation: id %d", id)
			}
			seen[id] = true
		}

		c := cache.NewShardedMinIO(capBytes, shards)
		p := &Pipeline{
			Workers: workers, Batch: batch, QueueDepth: workers,
			Fetch: func(_ int, items []dataset.ItemID) FetchResult {
				var r FetchResult
				for _, id := range items {
					sz := d.ItemBytes(id)
					if c.Lookup(id) {
						r.Hits++
					} else {
						r.Misses++
						c.Insert(id, sz)
					}
				}
				return r
			},
		}
		rep := p.RunEpoch(order)
		if got := rep.Fetch.Hits + rep.Fetch.Misses; got != items {
			t.Fatalf("hits+misses = %d, want %d", got, items)
		}
		// Budget invariant (sizes can be negative when totalBytes < 0, in
		// which case "used" legitimately runs below zero — skip then).
		if totalBytes >= 0 {
			bound := capBytes
			if bound < 0 {
				bound = 0 // negative capacity admits nothing
			}
			if u := c.UsedBytes(); u > bound {
				t.Fatalf("UsedBytes %v > max(CapBytes, 0) = %v", u, bound)
			}
		}
	})
}
