// Package loader provides the fetch side of the data pipeline: Fetcher
// implementations that resolve a minibatch of item IDs into timed cache,
// disk, and network operations. The baseline loaders (PyTorch DL, DALI-seq,
// DALI-shuffle) fetch through the shared OS page cache; CoorDL's fetchers
// (MinIO, partitioned) live in internal/core.
package loader

import (
	"datastall/internal/cache"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/pagecache"
	"datastall/internal/sim"
)

// Kind names a data-loading configuration from the paper's evaluation.
type Kind int

// Loader kinds.
const (
	// DALIShuffle is DALI reading the dataset in randomized order
	// (random reads, like the native PyTorch loader) — the paper's
	// strongest baseline.
	DALIShuffle Kind = iota
	// DALISeq is DALI's default FileReader mode: file-order reads with an
	// in-memory shuffle buffer. The cyclic access order defeats the OS
	// page cache.
	DALISeq
	// PyTorchDL is the native PyTorch DataLoader (Pillow/TorchVision
	// pre-processing, random reads).
	PyTorchDL
	// CoorDL is the paper's coordinated loader (MinIO cache, partitioned
	// caching, coordinated prep).
	CoorDL
)

// String returns the loader name.
func (k Kind) String() string {
	switch k {
	case DALIShuffle:
		return "dali-shuffle"
	case DALISeq:
		return "dali-seq"
	case PyTorchDL:
		return "pytorch-dl"
	case CoorDL:
		return "coordl"
	}
	return "unknown"
}

// PyTorchSeeksPerItem is the native PyTorch DataLoader's scattered-read
// cost: each item is demand-paged as several partially-merged reads instead
// of one whole-file read (Appendix E.2.1). Both execution backends (the
// analytic jobRuntime and trainer's concurrentFetchers) must use this one
// constant or their disk-read statistics diverge.
const PyTorchSeeksPerItem = 3

// FetchResult reports where a batch's bytes came from.
type FetchResult struct {
	MemBytes  float64 // served from local cache (DRAM)
	DiskBytes float64 // served from local storage
	NetBytes  float64 // served from a remote server's cache
	DiskItems int     // random reads issued (seeks)
	Hits      int     // local cache hits
	RemoteHit int     // remote cache hits (partitioned only)
	Misses    int     // storage fetches
}

// Add accumulates o into r.
func (r *FetchResult) Add(o FetchResult) {
	r.MemBytes += o.MemBytes
	r.DiskBytes += o.DiskBytes
	r.NetBytes += o.NetBytes
	r.DiskItems += o.DiskItems
	r.Hits += o.Hits
	r.RemoteHit += o.RemoteHit
	r.Misses += o.Misses
}

// Fetcher resolves item fetches into timed device operations. Fetchers are
// shared per server across all jobs on that server, which is how cross-job
// cache interference (HP-search thrashing) arises.
type Fetcher interface {
	// FetchBatch fetches items on behalf of a job running on server, and
	// blocks p for the storage/network/memory time consumed.
	FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) FetchResult
}

// PageCacheFetcher is the baseline fetch path: all reads go through the OS
// page cache of the server; misses hit local storage with random reads.
type PageCacheFetcher struct {
	Dataset *dataset.Dataset
	Cluster *cluster.Cluster
	Caches  []*pagecache.Cache // one per server, shared across jobs
	// SeeksPerItem models read granularity: DALI issues one whole-file
	// read per item (1); the native PyTorch loader demand-pages each
	// item's ~28 pages with partial readahead merging, costing several
	// scattered reads per item (Appendix E.2.1). Zero means 1.
	SeeksPerItem int
}

// NewPageCacheFetcher builds page caches of capBytes per server.
func NewPageCacheFetcher(d *dataset.Dataset, c *cluster.Cluster, capBytes float64, seed int64) *PageCacheFetcher {
	f := &PageCacheFetcher{Dataset: d, Cluster: c}
	for i := range c.Servers {
		f.Caches = append(f.Caches, pagecache.New(pagecache.TwoList, capBytes, seed+int64(i)))
	}
	return f
}

// CacheUsedBytes reports page-cache occupancy summed across servers (the
// trainer's EpochEnded observer events surface it).
func (f *PageCacheFetcher) CacheUsedBytes() float64 { return cache.SumUsedBytes(f.Caches) }

// FetchBatch implements Fetcher.
func (f *PageCacheFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) FetchResult {
	var r FetchResult
	pc := f.Caches[server]
	spi := f.SeeksPerItem
	if spi < 1 {
		spi = 1
	}
	for _, id := range items {
		sz := f.Dataset.ItemBytes(id)
		if pc.Lookup(id) {
			r.MemBytes += sz
			r.Hits++
		} else {
			r.DiskBytes += sz
			r.DiskItems += spi
			r.Misses++
			pc.Insert(id, sz)
		}
	}
	srv := f.Cluster.Servers[server]
	srv.Disk.ReadRandom(p, r.DiskBytes, r.DiskItems)
	srv.Mem.Read(p, r.MemBytes)
	return r
}

// SyntheticFetcher models DS-Analyzer phase 1: data is pre-populated at the
// GPUs, so fetch costs nothing (measures pure GPU ingestion rate).
type SyntheticFetcher struct{}

// FetchBatch implements Fetcher at zero cost.
func (SyntheticFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) FetchResult {
	return FetchResult{Hits: len(items)}
}

// CachedFetcher models DS-Analyzer phase 2: the whole working set resides in
// DRAM, so every fetch is a memory copy (isolates prep stalls).
type CachedFetcher struct {
	Dataset *dataset.Dataset
	Cluster *cluster.Cluster
}

// FetchBatch implements Fetcher.
func (f *CachedFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) FetchResult {
	var r FetchResult
	for _, id := range items {
		r.MemBytes += f.Dataset.ItemBytes(id)
		r.Hits++
	}
	f.Cluster.Servers[server].Mem.Read(p, r.MemBytes)
	return r
}

// TFRecordFetcher models TensorFlow's serialized-record format (§3.3.3):
// items are packed into large record files read sequentially; the page
// cache operates at record granularity and the cyclic scan order thrashes
// its LRU lists (Table 3).
type TFRecordFetcher struct {
	Dataset *dataset.Dataset
	Cluster *cluster.Cluster
	Caches  []*pagecache.Cache
	// RecordBytes is the serialized file size (100-200 MB in TF).
	RecordBytes float64
	itemsPerRec int
}

// NewTFRecordFetcher builds a record-granular fetcher with per-server page
// caches of capBytes.
func NewTFRecordFetcher(d *dataset.Dataset, c *cluster.Cluster, capBytes, recordBytes float64, seed int64) *TFRecordFetcher {
	f := &TFRecordFetcher{Dataset: d, Cluster: c, RecordBytes: recordBytes}
	f.itemsPerRec = int(recordBytes / d.AvgItemBytes())
	if f.itemsPerRec < 1 {
		f.itemsPerRec = 1
	}
	for i := range c.Servers {
		f.Caches = append(f.Caches, pagecache.New(pagecache.TwoList, capBytes, seed+int64(i)))
	}
	return f
}

// CacheUsedBytes reports record-cache occupancy summed across servers.
func (f *TFRecordFetcher) CacheUsedBytes() float64 { return cache.SumUsedBytes(f.Caches) }

// Record returns the record-file index holding item id.
func (f *TFRecordFetcher) Record(id dataset.ItemID) dataset.ItemID {
	return dataset.ItemID(int(id) / f.itemsPerRec)
}

// FetchBatch implements Fetcher: a batch touches the records containing its
// items; uncached records stream from disk sequentially.
func (f *TFRecordFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) FetchResult {
	var r FetchResult
	pc := f.Caches[server]
	seen := make(map[dataset.ItemID]bool, 4)
	for _, id := range items {
		rec := f.Record(id)
		if seen[rec] {
			continue // same record already read for this batch
		}
		seen[rec] = true
		if pc.Lookup(rec) {
			r.MemBytes += f.RecordBytes
			r.Hits++
		} else {
			r.DiskBytes += f.RecordBytes
			r.DiskItems++
			r.Misses++
			pc.Insert(rec, f.RecordBytes)
		}
	}
	srv := f.Cluster.Servers[server]
	srv.Disk.ReadSequential(p, r.DiskBytes)
	srv.Mem.Read(p, r.MemBytes)
	return r
}
