package loader

import (
	"sync/atomic"
	"testing"

	"datastall/internal/cache"
	"datastall/internal/dataset"
)

// pipelineDataset returns an equal-sized-items dataset (sizeSpread 0), the
// regime where MinIO statistics are exactly scheduling-independent.
func pipelineDataset(items int) *dataset.Dataset {
	return &dataset.Dataset{Name: "pipe", NumItems: items, TotalBytes: float64(items) * 8}
}

// minioFetch is the CoorDL lookup-or-insert loop over a concurrent cache.
func minioFetch(d *dataset.Dataset, c cache.Cache) BatchFetch {
	return MinIOBatchFetch(d, c, 1)
}

// TestPipelineExactAccounting: totals across the epoch equal the serial
// reference for every worker count — the bounded channels lose nothing.
func TestPipelineExactAccounting(t *testing.T) {
	d := pipelineDataset(2048)
	order := dataset.NewRandomSampler(dataset.FullShard(d), 3).EpochOrder(0)

	// Serial reference.
	ref := cache.NewMinIO(500 * 8)
	var want FetchResult
	for _, id := range order {
		sz := d.ItemBytes(id)
		if ref.Lookup(id) {
			want.MemBytes += sz
			want.Hits++
		} else {
			want.DiskBytes += sz
			want.DiskItems++
			want.Misses++
			ref.Insert(id, sz)
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		c := cache.NewShardedMinIO(500*8, 16)
		p := &Pipeline{Workers: workers, Batch: 32, Fetch: minioFetch(d, c)}
		// Warmup epoch: all misses on both backends.
		warm := p.RunEpoch(order)
		if warm.Fetch.Hits != 0 || warm.Fetch.Misses != len(order) {
			t.Fatalf("workers=%d: warmup hits/misses %d/%d, want 0/%d",
				workers, warm.Fetch.Hits, warm.Fetch.Misses, len(order))
		}
		// Steady epoch matches the serial reference's steady epoch.
		refSteady := 0
		for _, id := range order {
			if ref.Contains(id) {
				refSteady++
			}
		}
		rep := p.RunEpoch(order)
		if rep.Fetch.Hits != refSteady {
			t.Fatalf("workers=%d: steady hits %d, want %d", workers, rep.Fetch.Hits, refSteady)
		}
		if rep.Fetch.Hits+rep.Fetch.Misses != len(order) {
			t.Fatalf("workers=%d: hits+misses %d, want %d",
				workers, rep.Fetch.Hits+rep.Fetch.Misses, len(order))
		}
		if rep.Items != len(order) || rep.Batches != (len(order)+31)/32 {
			t.Fatalf("workers=%d: items/batches %d/%d", workers, rep.Items, rep.Batches)
		}
	}
}

// TestPipelinePrepStage: every fetched batch passes through prep exactly once.
func TestPipelinePrepStage(t *testing.T) {
	d := pipelineDataset(512)
	order := dataset.FullShard(d).Items
	var prepped atomic.Int64
	var bytes atomic.Int64
	c := cache.NewShardedMinIO(1e12, 8)
	p := &Pipeline{
		Workers: 4, PrepWorkers: 2, Batch: 10, QueueDepth: 3,
		Fetch: minioFetch(d, c),
		Prep: func(r FetchResult) {
			prepped.Add(1)
			bytes.Add(int64(r.MemBytes + r.DiskBytes + r.NetBytes))
		},
	}
	rep := p.RunEpoch(order)
	wantBatches := (len(order) + 9) / 10
	if prepped.Load() != int64(wantBatches) || rep.Batches != wantBatches {
		t.Fatalf("prepped %d batches (report %d), want %d", prepped.Load(), rep.Batches, wantBatches)
	}
	if got, want := bytes.Load(), int64(d.TotalBytes); got != want {
		t.Fatalf("prep saw %d bytes, want %d", got, want)
	}
}

// TestPipelineDefaults: zero-value knobs are clamped, not panicking.
func TestPipelineDefaults(t *testing.T) {
	d := pipelineDataset(64)
	c := cache.NewShardedMinIO(0, 0) // zero capacity: everything rejected
	p := &Pipeline{Fetch: minioFetch(d, c)}
	rep := p.RunEpoch(dataset.FullShard(d).Items)
	if rep.Fetch.Misses != 64 || rep.Batches != 1 {
		t.Fatalf("defaults: misses %d batches %d, want 64/1", rep.Fetch.Misses, rep.Batches)
	}
	if rep := (&Pipeline{Workers: -1, Batch: -5, QueueDepth: -2, Fetch: minioFetch(d, c)}).RunEpoch(nil); rep.Items != 0 {
		t.Fatalf("empty order: items %d, want 0", rep.Items)
	}
	// Absurd knobs clamp: this must spawn at most maxWorkers goroutines
	// and a maxQueueDepth channel, not OOM.
	huge := &Pipeline{Workers: 1 << 30, PrepWorkers: 1 << 30, QueueDepth: 1 << 30, Batch: 1, Fetch: minioFetch(d, c)}
	if rep := huge.RunEpoch(dataset.FullShard(d).Items); rep.Items != 64 {
		t.Fatalf("huge knobs: items %d, want 64", rep.Items)
	}
}

// TestEpochReportAdd: multi-server roll-up takes the max wall (servers
// overlap) and sums counters.
func TestEpochReportAdd(t *testing.T) {
	a := EpochReport{Fetch: FetchResult{Hits: 1}, Batches: 2, Items: 3, WallSeconds: 0.5}
	b := EpochReport{Fetch: FetchResult{Misses: 4}, Batches: 1, Items: 7, WallSeconds: 0.2}
	a.Add(b)
	if a.Fetch.Hits != 1 || a.Fetch.Misses != 4 || a.Batches != 3 || a.Items != 10 {
		t.Fatalf("bad roll-up: %+v", a)
	}
	if a.WallSeconds != 0.5 {
		t.Fatalf("WallSeconds %v, want max 0.5", a.WallSeconds)
	}
}
