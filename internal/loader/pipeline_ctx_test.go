package loader

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"datastall/internal/dataset"
)

func orderOf(n int) []dataset.ItemID {
	out := make([]dataset.ItemID, n)
	for i := range out {
		out[i] = dataset.ItemID(i)
	}
	return out
}

// TestRunEpochContextUncancelled: the ctx variant with a live context is
// RunEpoch — full item coverage, exact batch accounting.
func TestRunEpochContextUncancelled(t *testing.T) {
	var fetched int64
	p := &Pipeline{
		Workers: 4, Batch: 8,
		Fetch: func(_ int, items []dataset.ItemID) FetchResult {
			atomic.AddInt64(&fetched, int64(len(items)))
			return FetchResult{Hits: len(items)}
		},
	}
	rep, err := p.RunEpochContext(context.Background(), orderOf(1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != 1000 || rep.Fetch.Hits != 1000 || atomic.LoadInt64(&fetched) != 1000 {
		t.Fatalf("items %d hits %d fetched %d, want 1000 each", rep.Items, rep.Fetch.Hits, fetched)
	}
}

// TestRunEpochContextCancelled: cancelling mid-epoch unblocks the feeder
// and the workers' sends, returns ctx.Err(), and reports only completed
// batches.
func TestRunEpochContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fetchedBatches int64
	p := &Pipeline{
		Workers: 2, Batch: 4, QueueDepth: 1,
		Fetch: func(_ int, items []dataset.ItemID) FetchResult {
			if atomic.AddInt64(&fetchedBatches, 1) == 3 {
				cancel()
			}
			// Slow batches keep the epoch alive well past the cancel.
			time.Sleep(time.Millisecond)
			return FetchResult{Hits: len(items)}
		},
	}
	done := make(chan struct{})
	var rep EpochReport
	var err error
	go func() {
		rep, err = p.RunEpochContext(ctx, orderOf(100_000))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled epoch did not unblock")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Items >= 100_000 {
		t.Fatalf("fed %d items; the feeder ignored cancellation", rep.Items)
	}
}

// TestRunEpochContextPreCancelled: a dead context feeds nothing.
func TestRunEpochContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{
		Workers: 2,
		Fetch: func(_ int, items []dataset.ItemID) FetchResult {
			return FetchResult{Hits: len(items)}
		},
	}
	rep, err := p.RunEpochContext(ctx, orderOf(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Items != 0 {
		t.Fatalf("fed %d items from a dead context", rep.Items)
	}
}
