package loader

import (
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

func testEnv(nServers int) (*sim.Engine, *cluster.Cluster, *dataset.Dataset) {
	e := sim.New()
	cl := cluster.Build(e, cluster.ConfigSSDV100(), nServers)
	d := &dataset.Dataset{Name: "t", NumItems: 200, TotalBytes: 200 * 100 * stats.KiB}
	return e, cl, d
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		DALIShuffle: "dali-shuffle", DALISeq: "dali-seq",
		PyTorchDL: "pytorch-dl", CoorDL: "coordl",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d: %s != %s", k, k.String(), want)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestFetchResultAdd(t *testing.T) {
	a := FetchResult{MemBytes: 1, DiskBytes: 2, NetBytes: 3, DiskItems: 4, Hits: 5, RemoteHit: 6, Misses: 7}
	b := a
	a.Add(b)
	if a.MemBytes != 2 || a.DiskBytes != 4 || a.NetBytes != 6 ||
		a.DiskItems != 8 || a.Hits != 10 || a.RemoteHit != 12 || a.Misses != 14 {
		t.Fatalf("bad add: %+v", a)
	}
}

func TestPageCacheFetcherColdThenWarm(t *testing.T) {
	e, cl, d := testEnv(1)
	f := NewPageCacheFetcher(d, cl, d.TotalBytes, 1) // cache fits everything
	items := []dataset.ItemID{0, 1, 2, 3}
	var cold, warm FetchResult
	e.Go("x", func(p *sim.Proc) {
		cold = f.FetchBatch(p, 0, items)
		warm = f.FetchBatch(p, 0, items)
	})
	e.Run()
	if cold.Misses != 4 || cold.DiskItems != 4 {
		t.Fatalf("cold: %+v", cold)
	}
	if warm.Hits != 4 || warm.DiskBytes != 0 {
		t.Fatalf("warm: %+v", warm)
	}
	if cl.Servers[0].Disk.TotalBytes() != cold.DiskBytes {
		t.Fatal("disk not charged")
	}
}

func TestPageCacheFetcherSeeksPerItem(t *testing.T) {
	e, cl, d := testEnv(1)
	f := NewPageCacheFetcher(d, cl, 1, 1) // cache too small: all misses
	f.SeeksPerItem = 3
	var r FetchResult
	e.Go("x", func(p *sim.Proc) {
		r = f.FetchBatch(p, 0, []dataset.ItemID{0, 1})
	})
	e.Run()
	if r.DiskItems != 6 {
		t.Fatalf("disk items %d, want 2 items x 3 seeks", r.DiskItems)
	}
	if cl.Servers[0].Disk.TotalRequests() != 1 {
		t.Fatal("batch should aggregate into one device request")
	}
}

func TestPageCacheSharedAcrossCallers(t *testing.T) {
	// Fetchers are shared per server: a second job benefits from (and
	// interferes with) the first job's cache contents.
	e, cl, d := testEnv(1)
	f := NewPageCacheFetcher(d, cl, d.TotalBytes, 1)
	var second FetchResult
	e.Go("job1", func(p *sim.Proc) {
		f.FetchBatch(p, 0, []dataset.ItemID{7, 8})
	})
	e.Go("job2", func(p *sim.Proc) {
		p.Sleep(100)
		second = f.FetchBatch(p, 0, []dataset.ItemID{7, 8})
	})
	e.Run()
	if second.Hits != 2 {
		t.Fatalf("cross-job hits %d, want 2", second.Hits)
	}
}

func TestSyntheticFetcherFree(t *testing.T) {
	e, _, _ := testEnv(1)
	var r FetchResult
	var took float64
	e.Go("x", func(p *sim.Proc) {
		r = SyntheticFetcher{}.FetchBatch(p, 0, []dataset.ItemID{0, 1, 2})
		took = p.Now()
	})
	e.Run()
	if took != 0 || r.Hits != 3 || r.DiskBytes != 0 {
		t.Fatalf("synthetic fetch not free: t=%v %+v", took, r)
	}
}

func TestCachedFetcherChargesMemoryOnly(t *testing.T) {
	e, cl, d := testEnv(1)
	f := &CachedFetcher{Dataset: d, Cluster: cl}
	var r FetchResult
	var took float64
	e.Go("x", func(p *sim.Proc) {
		r = f.FetchBatch(p, 0, []dataset.ItemID{0, 1})
		took = p.Now()
	})
	e.Run()
	if r.MemBytes != 2*d.AvgItemBytes() || r.DiskBytes != 0 {
		t.Fatalf("cached fetch: %+v", r)
	}
	if took <= 0 {
		t.Fatal("memory copy should take (a little) time")
	}
	if cl.Servers[0].Disk.TotalBytes() != 0 {
		t.Fatal("cached fetch touched disk")
	}
}

func TestTFRecordFetcherRecordGranularity(t *testing.T) {
	e, cl, d := testEnv(1)
	rec := 10 * d.AvgItemBytes() // 10 items per record
	f := NewTFRecordFetcher(d, cl, d.TotalBytes, rec, 1)
	if f.Record(0) != f.Record(9) || f.Record(0) == f.Record(10) {
		t.Fatal("record mapping wrong")
	}
	var r FetchResult
	e.Go("x", func(p *sim.Proc) {
		// Items 0..9 share a record; 10 starts the next.
		r = f.FetchBatch(p, 0, []dataset.ItemID{0, 5, 9, 10})
	})
	e.Run()
	if r.Misses != 2 {
		t.Fatalf("misses %d, want 2 records", r.Misses)
	}
	if r.DiskBytes != 2*rec {
		t.Fatalf("disk bytes %v, want 2 records", r.DiskBytes)
	}
	// Second batch over the same records: all hits, memory only.
	var r2 FetchResult
	e.Go("y", func(p *sim.Proc) {
		r2 = f.FetchBatch(p, 0, []dataset.ItemID{1, 11})
	})
	e.Run()
	if r2.Hits != 2 || r2.DiskBytes != 0 {
		t.Fatalf("warm record fetch: %+v", r2)
	}
}

func TestTFRecordFetcherEviction(t *testing.T) {
	e, cl, d := testEnv(1)
	rec := 10 * d.AvgItemBytes()
	f := NewTFRecordFetcher(d, cl, 2*rec, rec, 1) // cache holds 2 records
	e.Go("x", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			f.FetchBatch(p, 0, []dataset.ItemID{dataset.ItemID(i * 10)})
		}
	})
	e.Run()
	if f.Caches[0].UsedBytes() > 2*rec {
		t.Fatal("record cache exceeded capacity")
	}
	if cl.Servers[0].Disk.TotalBytes() < 18*rec {
		t.Fatal("expected most record fetches to miss")
	}
}
