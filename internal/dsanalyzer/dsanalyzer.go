// Package dsanalyzer implements DS-Analyzer (§3.2, Appendix C): a
// differential profiler that attributes DNN epoch time to GPU compute, prep
// stalls and fetch stalls by comparing three runs, plus the predictive
// what-if model of Appendix C (Eq. 3-4) for cache sizing, CPU scaling and
// faster-GPU questions.
package dsanalyzer

import (
	"context"
	"fmt"

	"datastall/internal/trainer"
)

// Profile holds the rates DS-Analyzer measures for one (model, dataset,
// server) combination. All rates are samples/s for the whole job.
type Profile struct {
	ModelName   string
	DatasetName string

	// G is the maximum GPU ingestion rate (phase 1: synthetic data).
	G float64
	// P is the pipeline rate with the dataset fully cached (phase 2:
	// isolates pre-processing).
	P float64
	// F is the pipeline rate with the configured cache (phase 3).
	F float64

	// S is the storage fetch rate; C the cache (DRAM) fetch rate
	// (Appendix C.1 measures these with micro-benchmarks).
	S float64
	C float64

	// Epoch times of the three phases.
	EpochSynthetic, EpochCached, EpochActual float64

	// Stall attribution as fractions of the actual epoch time:
	// prep stall = phase2 - phase1, fetch stall = phase3 - phase2 (§3.2).
	PrepStallFrac  float64
	FetchStallFrac float64

	// AvgItemBytes is the dataset's mean item size (converts byte rates
	// to sample rates in the what-if model).
	AvgItemBytes float64
}

// Analyze runs the three differential phases for cfg and returns the
// profile. cfg describes the *actual* training setup (loader, cache size).
// ctx cancellation aborts whichever phase is in flight.
func Analyze(ctx context.Context, cfg trainer.Config) (*Profile, error) {
	p1 := cfg
	p1.FetchMode = trainer.Synthetic
	r1, err := trainer.RunContext(ctx, p1)
	if err != nil {
		return nil, fmt.Errorf("dsanalyzer phase 1: %w", err)
	}
	p2 := cfg
	p2.FetchMode = trainer.FullyCached
	r2, err := trainer.RunContext(ctx, p2)
	if err != nil {
		return nil, fmt.Errorf("dsanalyzer phase 2: %w", err)
	}
	r3, err := trainer.RunContext(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("dsanalyzer phase 3: %w", err)
	}

	avg := cfg.Dataset.AvgItemBytes()
	pr := &Profile{
		ModelName:      cfg.Model.Name,
		DatasetName:    cfg.Dataset.Name,
		G:              r1.Throughput,
		P:              r2.Throughput,
		F:              r3.Throughput,
		S:              cfg.Spec.Disk.EffectiveRandomBW(avg) / avg,
		C:              cfg.Spec.MemBW / avg,
		EpochSynthetic: r1.EpochTime,
		EpochCached:    r2.EpochTime,
		EpochActual:    r3.EpochTime,
		AvgItemBytes:   avg,
	}
	if pr.EpochActual > 0 {
		prep := pr.EpochCached - pr.EpochSynthetic
		if prep < 0 {
			prep = 0
		}
		fetch := pr.EpochActual - pr.EpochCached
		if fetch < 0 {
			fetch = 0
		}
		pr.PrepStallFrac = prep / pr.EpochActual
		pr.FetchStallFrac = fetch / pr.EpochActual
	}
	return pr, nil
}

// PredictFetchRate applies Eq. 4: the effective fetch rate (samples/s) when
// a fraction x of the dataset is cached and served at rate C while the rest
// comes from storage at rate S.
func (p *Profile) PredictFetchRate(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return 1 / (x/p.C + (1-x)/p.S)
}

// PredictThroughput returns min(F(x), P, G): the training speed expected at
// cache fraction x (Appendix C.2).
func (p *Profile) PredictThroughput(x float64) float64 {
	f := p.PredictFetchRate(x)
	t := p.G
	if p.P < t {
		t = p.P
	}
	if f < t {
		t = f
	}
	return t
}

// Bottleneck classifies training at cache fraction x as "gpu", "cpu" or
// "io" (Appendix C.2's min(F, P, G) rule).
func (p *Profile) Bottleneck(x float64) string {
	f := p.PredictFetchRate(x)
	switch {
	case p.G <= p.P && p.G <= f:
		return "gpu"
	case p.P <= f:
		return "cpu"
	default:
		return "io"
	}
}

// OptimalCacheFrac returns the smallest cache fraction at which fetch stops
// being the bottleneck — more DRAM beyond this point buys nothing
// (Fig 16's recommendation).
func (p *Profile) OptimalCacheFrac() float64 {
	target := p.G
	if p.P < target {
		target = p.P
	}
	// Solve F(x) = target: 1/(x/C + (1-x)/S) = target.
	// x (1/C - 1/S) = 1/target - 1/S.
	den := 1/p.C - 1/p.S
	if den == 0 {
		return 0
	}
	x := (1/target - 1/p.S) / den
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// WhatIfGPUFaster predicts throughput at cache fraction x if GPUs were
// speedFactor times faster ("what if GPU compute speeds increase by 2x?").
func (p *Profile) WhatIfGPUFaster(x, speedFactor float64) float64 {
	f := p.PredictFetchRate(x)
	g := p.G * speedFactor
	t := g
	if p.P < t {
		t = p.P
	}
	if f < t {
		t = f
	}
	return t
}

// CoresToMaskPrep answers "how many CPU cores should each GPU use to
// eliminate prep stalls?" (§3.4): the core multiplier needed for the prep
// rate to reach the GPU ingestion rate, relative to the profiled
// configuration. Returns 1 if prep already keeps up.
func (p *Profile) CoresToMaskPrep() float64 {
	if p.P >= p.G || p.P == 0 {
		return 1
	}
	return p.G / p.P
}

// WhatIfMoreCores predicts throughput if prep scaled by coreFactor (linear
// CPU scaling; Appendix B.1 caps hyperthread gains, which callers encode in
// coreFactor).
func (p *Profile) WhatIfMoreCores(x, coreFactor float64) float64 {
	f := p.PredictFetchRate(x)
	pp := p.P * coreFactor
	if pp > p.G {
		pp = p.G
	}
	t := p.G
	if pp < t {
		t = pp
	}
	if f < t {
		t = f
	}
	return t
}
