package dsanalyzer

import (
	"context"
	"math"
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/trainer"
)

func profileFor(t *testing.T, model string, cacheFrac float64) *Profile {
	t.Helper()
	d := dataset.ImageNet1K.Scale(0.01)
	p, err := Analyze(context.Background(), trainer.Config{
		Model: gpu.MustByName(model), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Loader: loader.DALIShuffle,
		CacheBytes: cacheFrac * d.TotalBytes, Epochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPhaseOrdering(t *testing.T) {
	// G >= P >= F always: each phase adds a potential bottleneck.
	p := profileFor(t, "resnet18", 0.35)
	if !(p.G >= p.P && p.P >= p.F) {
		t.Fatalf("phase ordering violated: G=%.0f P=%.0f F=%.0f", p.G, p.P, p.F)
	}
	if p.G <= 0 || p.F <= 0 {
		t.Fatal("rates must be positive")
	}
	// Stall fractions are a partition of epoch time with compute.
	if p.PrepStallFrac < 0 || p.FetchStallFrac < 0 ||
		p.PrepStallFrac+p.FetchStallFrac > 1 {
		t.Fatalf("bad stall split: prep=%.2f fetch=%.2f", p.PrepStallFrac, p.FetchStallFrac)
	}
}

func TestResNet18HasBothStalls(t *testing.T) {
	// §3: ResNet18 at 35% cache on Config-SSD-V100 is both prep- and
	// fetch-stalled.
	p := profileFor(t, "resnet18", 0.35)
	if p.PrepStallFrac < 0.05 {
		t.Fatalf("expected prep stall, got %.2f", p.PrepStallFrac)
	}
	if p.FetchStallFrac < 0.05 {
		t.Fatalf("expected fetch stall, got %.2f", p.FetchStallFrac)
	}
}

func TestPredictFetchRateMatchesEmpirical(t *testing.T) {
	// Table 5: Eq 4's predicted fetch rate tracks a measured fetch-bound
	// run across cache sizes (the paper reports <= 4% error at testbed
	// scale; we allow more because short simulated epochs overlap fetch
	// and prep imperfectly).
	d := dataset.ImageNet1K.Scale(0.06)
	p := profileFor(t, "alexnet", 0.35)
	for _, frac := range []float64{0.25, 0.35, 0.50} {
		pred := p.PredictThroughput(frac)
		r, err := trainer.Run(trainer.Config{
			Model: gpu.MustByName("alexnet"), Dataset: d,
			Spec: cluster.ConfigSSDV100(), Loader: loader.CoorDL,
			CacheBytes: frac * d.TotalBytes, Epochs: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred-r.Throughput) / r.Throughput; rel > 0.15 {
			t.Fatalf("cache %.0f%%: predicted %.0f vs empirical %.0f (%.0f%% off)",
				frac*100, pred, r.Throughput, rel*100)
		}
	}
}

func TestPredictFetchRateMonotone(t *testing.T) {
	p := profileFor(t, "resnet50", 0.35)
	prev := 0.0
	for x := 0.0; x <= 1.0; x += 0.1 {
		f := p.PredictFetchRate(x)
		if f < prev {
			t.Fatalf("fetch rate not monotone at x=%.1f", x)
		}
		prev = f
	}
	// At x=1 everything comes from DRAM.
	if math.Abs(p.PredictFetchRate(1)-p.C) > 1e-6 {
		t.Fatal("full cache should fetch at memory rate")
	}
	if math.Abs(p.PredictFetchRate(0)-p.S) > 1e-6 {
		t.Fatal("no cache should fetch at storage rate")
	}
}

func TestOptimalCacheFrac(t *testing.T) {
	p := profileFor(t, "alexnet", 0.35)
	x := p.OptimalCacheFrac()
	if x <= 0 || x > 1 {
		t.Fatalf("optimal cache frac %v out of range", x)
	}
	// At the optimum fetch is no longer the unique bottleneck...
	if p.Bottleneck(x+0.05) == "io" {
		t.Fatalf("still io-bound above the recommended cache size")
	}
	// ...but just below it, fetch stalls remain.
	if x > 0.1 && p.Bottleneck(x-0.1) != "io" {
		t.Fatalf("not io-bound below the recommended cache size")
	}
}

func TestCoresToMaskPrep(t *testing.T) {
	// ResNet18 at 3 cores/GPU is prep-starved; the profile should ask
	// for roughly the Fig 4 multiplier (12 cores / 3 cores ~ 3-4x).
	d := dataset.ImageNet1K.Scale(0.01)
	p, err := Analyze(context.Background(), trainer.Config{
		Model: gpu.MustByName("resnet18"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Loader: loader.DALIShuffle,
		ThreadsPerGPU: 3, GPUPrep: trainer.GPUPrepOff,
		CacheBytes: d.TotalBytes, Epochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := p.CoresToMaskPrep()
	if f < 2 || f > 5 {
		t.Fatalf("core multiplier %.1f, want ~3-4 (Fig 4: 12 cores vs 3)", f)
	}
	// A model with ample prep (ResNet50 at 4 cores) needs nothing extra.
	p2, err := Analyze(context.Background(), trainer.Config{
		Model: gpu.MustByName("resnet50"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Loader: loader.DALIShuffle,
		GPUsPerServer: 1, ThreadsPerGPU: 6,
		CacheBytes: d.TotalBytes, Epochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := p2.CoresToMaskPrep(); f > 1.15 {
		t.Fatalf("resnet50 with 6 cores should not need more (got %.2fx)", f)
	}
}

func TestWhatIfQueries(t *testing.T) {
	p := profileFor(t, "resnet50", 0.35)
	// Faster GPUs can only shift the bottleneck toward data.
	base := p.PredictThroughput(0.35)
	faster := p.WhatIfGPUFaster(0.35, 2)
	if faster < base {
		t.Fatal("faster GPU must not reduce throughput")
	}
	if faster > 2*base+1 {
		t.Fatal("faster GPU cannot more than double throughput")
	}
	// If io-bound, more cores buy nothing (§3.4).
	if p.Bottleneck(0.05) == "io" {
		a := p.PredictThroughput(0.05)
		b := p.WhatIfMoreCores(0.05, 4)
		if math.Abs(a-b) > 1e-9 {
			t.Fatal("more cores should not help an io-bound job")
		}
	}
}
