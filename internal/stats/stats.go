// Package stats provides the metric primitives used by the simulator:
// counters, time series sampled in simulated time, and simple summaries.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TimeSeries records (time, value) points in simulated time, used for the
// paper's I/O-pattern, CPU-utilization and memory-utilization figures
// (Figs 11, 19, 20).
type TimeSeries struct {
	Name   string
	Times  []float64
	Values []float64
}

// Add appends a point. Times must be non-decreasing.
func (ts *TimeSeries) Add(t, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Bucketize aggregates the series into fixed-width windows of width w over
// [0, horizon), summing values per window. Used to turn per-request disk I/O
// events into MB/s-style traces.
func (ts *TimeSeries) Bucketize(w, horizon float64) []float64 {
	n := int(math.Ceil(horizon / w))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i, t := range ts.Times {
		b := int(t / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		out[b] += ts.Values[i]
	}
	return out
}

// WriteCSV writes the series as "time,value" rows with a header, for
// plotting the paper's time-series figures (11, 19, 20).
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	name := ts.Name
	if name == "" {
		name = "value"
	}
	if _, err := fmt.Fprintf(w, "time,%s\n", name); err != nil {
		return err
	}
	for i := range ts.Times {
		if _, err := fmt.Fprintf(w, "%g,%g\n", ts.Times[i], ts.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sum returns the sum of all values.
func (ts *TimeSeries) Sum() float64 {
	s := 0.0
	for _, v := range ts.Values {
		s += v
	}
	return s
}

// Summary holds order statistics for a sample set.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Sum            float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return Summary{
		N: len(s), Mean: sum / float64(len(s)),
		Min: s[0], Max: s[len(s)-1],
		P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
		Sum: sum,
	}
}

// Table is a simple labelled table used to render paper-style results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells (formatted with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (3 significant decimals max).
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s", widths[i]+2, c)
		}
		return s + "\n"
	}
	out += line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	out += line(sep)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

// TableJSON is the wire form of a Table for machine-readable reports.
type TableJSON struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSON returns the table's wire form (cells stay pre-formatted strings, so
// JSON output matches the rendered tables digit-for-digit).
func (t *Table) JSON() *TableJSON {
	return &TableJSON{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
}

// Markdown renders the table as a GitHub-flavored markdown table, with the
// title as bold text above it.
func (t *Table) Markdown() string {
	out := ""
	if t.Title != "" {
		out += "**" + t.Title + "**\n\n"
	}
	row := func(cells []string) string {
		s := "|"
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = mdEscape(cells[i])
			}
			s += " " + c + " |"
		}
		return s + "\n"
	}
	out += row(t.Columns)
	sep := "|"
	for range t.Columns {
		sep += " --- |"
	}
	out += sep + "\n"
	for _, r := range t.Rows {
		out += row(r)
	}
	return out
}

// mdEscape keeps cell text from breaking the markdown table structure.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// GiB and MiB are byte-size helpers used throughout the experiment configs.
const (
	KiB = 1024.0
	MiB = 1024.0 * KiB
	GiB = 1024.0 * MiB
	TiB = 1024.0 * GiB
)
