package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBucketize(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(0.5, 10)
	ts.Add(1.5, 20)
	ts.Add(1.9, 5)
	ts.Add(3.5, 7)
	got := ts.Bucketize(1, 4)
	want := []float64{10, 25, 0, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBucketizeClampsOutOfRange(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(10, 3) // beyond horizon
	got := ts.Bucketize(1, 2)
	if got[len(got)-1] != 3 {
		t.Fatalf("out-of-range point not clamped: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Sum != 10 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.P50 != 2 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"model", "speedup"}}
	tbl.AddRow("alexnet", 1.5)
	tbl.AddRow("resnet50", 2.0)
	s := tbl.String()
	if !strings.Contains(s, "alexnet") || !strings.Contains(s, "1.5") {
		t.Fatalf("render missing cells:\n%s", s)
	}
	if !strings.Contains(s, "model") {
		t.Fatalf("render missing header:\n%s", s)
	}
}

func TestWriteCSV(t *testing.T) {
	ts := &TimeSeries{Name: "disk"}
	ts.Add(1, 100)
	ts.Add(2.5, 50)
	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "time,disk\n1,100\n2.5,50\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
	// Unnamed series get a default header.
	var b2 strings.Builder
	(&TimeSeries{}).WriteCSV(&b2)
	if !strings.HasPrefix(b2.String(), "time,value\n") {
		t.Fatalf("default header missing: %q", b2.String())
	}
}

// Property: bucketize preserves total mass for in-range points.
func TestBucketizeMassProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ts := &TimeSeries{}
		total := 0.0
		for i, r := range raw {
			tm := float64(i%10) + float64(r)/512
			ts.Add(tm, float64(r))
			total += float64(r)
		}
		buckets := ts.Bucketize(1, 11)
		sum := 0.0
		for _, b := range buckets {
			sum += b
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize respects Min <= P50 <= Max and Mean within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P50 <= s.P90 && s.P90 <= s.P99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("x|y", 1.5)
	got := tb.Markdown()
	want := "**T**\n\n| a | b |\n| --- | --- |\n| x\\|y | 1.5 |\n"
	if got != want {
		t.Errorf("Markdown() = %q, want %q", got, want)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a"}}
	tb.AddRow(12345.0)
	b, err := json.Marshal(tb.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var back TableJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// Cells stay pre-formatted strings, digit-for-digit with the text table.
	if back.Title != "T" || len(back.Rows) != 1 || back.Rows[0][0] != "12345" {
		t.Errorf("round trip got %+v", back)
	}
}
