package network

import (
	"math"
	"testing"

	"datastall/internal/sim"
	"datastall/internal/stats"
)

func TestEffectiveBWExceedsSSD(t *testing.T) {
	// §4.2: cross-node bandwidth must be several times local SATA SSD
	// read bandwidth (530 MB/s) for partitioned caching to make sense.
	if bw := Ethernet40G.RawBW * Ethernet40G.Efficiency; bw < 3*530*stats.MiB {
		t.Fatalf("40GbE effective bw %.0f MB/s too low", bw/stats.MiB)
	}
}

func TestTransferTiming(t *testing.T) {
	e := sim.New()
	n := NewNIC(e, LinkSpec{Name: "t", RawBW: 1000, Efficiency: 0.5, RTT: 1})
	var done float64
	e.Go("x", func(p *sim.Proc) {
		n.Transfer(p, 500, 2) // 2 RTT (2s) + 500/500 (1s) = 3s
		done = p.Now()
	})
	e.Run()
	if done != 3 {
		t.Fatalf("transfer done at %v, want 3", done)
	}
	if n.TotalBytes() != 500 {
		t.Fatalf("bytes %v", n.TotalBytes())
	}
}

func TestNICContention(t *testing.T) {
	e := sim.New()
	n := NewNIC(e, LinkSpec{Name: "t", RawBW: 100, Efficiency: 1, RTT: 0})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) { n.Transfer(p, 1000, 0); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { n.Transfer(p, 1000, 0); t2 = p.Now() })
	e.Run()
	if t1 != 10 || t2 != 20 {
		t.Fatalf("t1=%v t2=%v, want FIFO 10/20", t1, t2)
	}
}

func TestFabricRemoteFetchChargesBothEnds(t *testing.T) {
	e := sim.New()
	f := NewFabric(e, 2, LinkSpec{Name: "t", RawBW: 100, Efficiency: 1, RTT: 0})
	e.Go("x", func(p *sim.Proc) { f.RemoteFetch(p, 0, 1, 500, 1) })
	e.Run()
	if f.NICs[0].TotalBytes() != 500 || f.NICs[1].TotalBytes() != 500 {
		t.Fatalf("bytes: dst=%v src=%v", f.NICs[0].TotalBytes(), f.NICs[1].TotalBytes())
	}
	if math.Abs(f.TotalBytes()-1000) > 1e-9 {
		t.Fatalf("fabric total %v", f.TotalBytes())
	}
}

func TestZeroTransferFree(t *testing.T) {
	e := sim.New()
	n := NewNIC(e, Ethernet40G)
	var done float64
	e.Go("x", func(p *sim.Proc) { n.Transfer(p, 0, 0); done = p.Now() })
	e.Run()
	if done != 0 {
		t.Fatalf("zero transfer took %v", done)
	}
}
