// Package network models the commodity Ethernet connecting training servers
// (40 Gbps in the paper's SKUs). Partitioned caching fetches remote-cached
// items over long-lived TCP connections (§4.2); the only property that
// matters is delivered bandwidth, which must exceed local-storage bandwidth
// for remote-DRAM fetches to pay off.
package network

import (
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// LinkSpec characterises a server NIC.
type LinkSpec struct {
	Name string
	// RawBW is the line rate in bytes/s.
	RawBW float64
	// Efficiency is the fraction of line rate TCP delivers for bulk
	// transfers (protocol overhead, stack costs).
	Efficiency float64
	// RTT is the per-transfer round-trip latency in seconds.
	RTT float64
}

// Ethernet40G is the paper's 40 Gbps cluster fabric.
var Ethernet40G = LinkSpec{
	Name:  "40GbE",
	RawBW: 40e9 / 8, Efficiency: 0.70,
	RTT: 100e-6,
}

// Ethernet10G is the low end of publicly available cloud GPU instances.
var Ethernet10G = LinkSpec{
	Name:  "10GbE",
	RawBW: 10e9 / 8, Efficiency: 0.70,
	RTT: 100e-6,
}

// NIC is one server's network interface: a FIFO bandwidth server so that
// concurrent remote fetches and gradient exchange contend realistically.
type NIC struct {
	Spec LinkSpec

	eng *sim.Engine
	srv *sim.BandwidthServer

	// Trace records per-transfer completions when enabled.
	Trace *stats.TimeSeries
}

// NewNIC returns an idle NIC attached to e.
func NewNIC(e *sim.Engine, spec LinkSpec) *NIC {
	return &NIC{Spec: spec, eng: e, srv: sim.NewBandwidthServer(e)}
}

// EnableTrace records per-transfer completion events.
func (n *NIC) EnableTrace(name string) { n.Trace = &stats.TimeSeries{Name: name} }

// EffectiveBW returns the delivered bulk bandwidth in bytes/s.
func (n *NIC) EffectiveBW() float64 { return n.Spec.RawBW * n.Spec.Efficiency }

// Transfer moves bytes through this NIC, blocking p until completion.
// nMsgs is the number of request/response exchanges (each pays one RTT).
func (n *NIC) Transfer(p *sim.Proc, bytes float64, nMsgs int) {
	if bytes <= 0 && nMsgs <= 0 {
		return
	}
	n.srv.Request(p, bytes, n.EffectiveBW(), float64(nMsgs)*n.Spec.RTT)
	if n.Trace != nil {
		n.Trace.Add(n.eng.Now(), bytes)
	}
}

// TotalBytes returns bytes transferred through this NIC.
func (n *NIC) TotalBytes() float64 { return n.srv.Bytes }

// AccountBytes records background traffic (e.g. gradient exchange whose
// latency is already folded into iteration time) for bandwidth reporting
// without modelling queueing for it.
func (n *NIC) AccountBytes(bytes float64) { n.srv.Bytes += bytes }

// BusyTime returns total seconds the NIC was transferring.
func (n *NIC) BusyTime() float64 { return n.srv.Busy }

// Fabric connects the NICs of a distributed job. A remote fetch crosses the
// serving server's NIC and the requesting server's NIC; we model the
// transfer as occupying both (store-and-forward at message granularity is
// irrelevant at these sizes, so the two requests are issued back to back).
type Fabric struct {
	NICs []*NIC
}

// NewFabric builds a fabric over n servers with the given link spec.
func NewFabric(e *sim.Engine, n int, spec LinkSpec) *Fabric {
	f := &Fabric{NICs: make([]*NIC, n)}
	for i := range f.NICs {
		f.NICs[i] = NewNIC(e, spec)
	}
	return f
}

// RemoteFetch transfers bytes from server src's DRAM to server dst,
// blocking p. Both endpoints' NICs are charged.
func (f *Fabric) RemoteFetch(p *sim.Proc, dst, src int, bytes float64, nItems int) {
	// Source side: serialization out of the serving server.
	f.NICs[src].Transfer(p, bytes, nItems)
	// Destination side: receive path (usually overlapped; charge without
	// a second RTT to avoid double-counting latency).
	f.NICs[dst].Transfer(p, bytes, 0)
}

// TotalBytes returns bytes moved across all NICs (each fetch counted twice,
// once per endpoint — the usual per-NIC accounting).
func (f *Fabric) TotalBytes() float64 {
	t := 0.0
	for _, n := range f.NICs {
		t += n.TotalBytes()
	}
	return t
}
