// Package obs is the service's observability kit: a lightweight span
// tracer whose traces export as Chrome trace-event JSON (viewable in
// Perfetto or chrome://tracing), plus dependency-free Prometheus
// histograms (hist.go) and W3C traceparent propagation helpers
// (trace.go).
//
// The tracer is deliberately tiny — no OpenTelemetry, no sampling, no
// background goroutines. A Tracer records one job's (or one CLI run's)
// span tree under a single mutex; Span is a value handle into it. The
// whole API is nil-safe: every method on a Span obtained from a nil
// *Tracer is a no-op that allocates nothing, so call sites stay
// unconditional and a build with tracing disabled keeps the zero-alloc
// hot-path guarantees (verified by TestTracerDisabledZeroAlloc).
//
// Two kinds of time coexist in one trace:
//
//   - wall spans measure real elapsed time (queue wait, memo lookups,
//     HTTP attempts, simulation wall time);
//   - sim spans (Span.Sim) are placed on the simulation's own clock —
//     the per-epoch gpu_busy / fetch_stall / prep_stall breakdown is
//     drawn in simulated seconds, reproducing the paper's fig-5 stall
//     attribution as a timeline.
//
// Trace content is deterministic modulo timestamps: Topology() renders
// the span tree with times, IDs and volatile attributes stripped and
// children sorted canonically, so two runs of the same workload produce
// byte-identical topologies (the tracecheck goldens).
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// wire form and the canonical topology never depend on float formatting.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// spanData is the tracer-internal span node.
type spanData struct {
	id      int64
	parent  *spanData
	service string
	name    string
	attrs   []Attr

	startUS int64 // wall time, unix microseconds
	endUS   int64
	ended   bool

	// Sim spans live on the simulation clock: startUS/endUS are then
	// microseconds of simulated time from the run's t=0.
	sim bool
	// thread starts a new timeline (tid) in the Chrome export, so
	// concurrent subtrees (grid cases) render side by side instead of
	// interleaving on one track.
	thread bool

	children []*spanData
}

// Tracer records one trace: a forest of spans under a single trace ID.
// All methods are safe for concurrent use; a nil *Tracer is a valid
// disabled tracer.
type Tracer struct {
	mu      sync.Mutex
	service string
	traceID string
	nextID  int64
	roots   []*spanData
	open    int
}

// NewTracer builds a tracer for one trace. service names the process in
// the Chrome export ("stallserved", "runsuite"). traceID is the 32-hex
// W3C trace ID; empty generates a random one.
func NewTracer(service, traceID string) *Tracer {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &Tracer{service: service, traceID: traceID}
}

// NewTraceID returns a random 32-hex-char W3C trace ID.
func NewTraceID() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// TraceID returns the trace's W3C ID ("" on a nil tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

func nowUS() int64 { return time.Now().UnixMicro() }

// newSpan allocates a node under parent (nil: a root) with t.mu held by
// the caller.
func (t *Tracer) newSpan(parent *spanData, name string) *spanData {
	t.nextID++
	d := &spanData{id: t.nextID, parent: parent, service: t.service, name: name, startUS: nowUS()}
	if parent == nil {
		t.roots = append(t.roots, d)
	} else {
		parent.children = append(parent.children, d)
	}
	t.open++
	return d
}

// Start opens a root span. On a nil tracer it returns a disabled Span.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Span{t: t, d: t.newSpan(nil, name)}
}

// Finish ends every still-open span at the current time, so a trace cut
// short by a failure (or a cancelled job) still closes cleanly. Safe to
// call more than once.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := nowUS()
	var walk func(d *spanData)
	walk = func(d *spanData) {
		if !d.ended {
			d.ended = true
			d.endUS = end
			t.open--
		}
		for _, c := range d.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
}

// OpenSpans returns the number of spans started but not yet ended.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Span is a value handle on one span of a Tracer. The zero Span is
// disabled: every method is an allocation-free no-op, so instrumented
// code never branches on whether tracing is on.
type Span struct {
	t *Tracer
	d *spanData
}

// Enabled reports whether the span records anything.
func (s Span) Enabled() bool { return s.t != nil }

// ID returns the span's ID within its trace (0 when disabled), the
// parent-span half of a traceparent header.
func (s Span) ID() int64 {
	if s.t == nil {
		return 0
	}
	return s.d.id
}

// Start opens a child span.
func (s Span) Start(name string) Span {
	if s.t == nil {
		return Span{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return Span{t: s.t, d: s.t.newSpan(s.d, name)}
}

// StartThread opens a child span that begins a new timeline (tid) in the
// Chrome export — use it for subtrees that run concurrently with their
// siblings (grid cases), which would otherwise interleave on one track.
func (s Span) StartThread(name string) Span {
	c := s.Start(name)
	if c.t != nil {
		c.t.mu.Lock()
		c.d.thread = true
		c.t.mu.Unlock()
	}
	return c
}

// SetAttr annotates the span. Attributes keep insertion order on the
// wire; the canonical topology sorts them by key.
func (s Span) SetAttr(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.d.attrs {
		if s.d.attrs[i].Key == key {
			s.d.attrs[i].Value = value
			return
		}
	}
	s.d.attrs = append(s.d.attrs, Attr{Key: key, Value: value})
}

// Event records an instantaneous child span (start == end), returning it
// so the caller can attach attributes.
func (s Span) Event(name string) Span {
	if s.t == nil {
		return Span{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	d := s.t.newSpan(s.d, name)
	d.ended = true
	d.endUS = d.startUS
	s.t.open--
	return Span{t: s.t, d: d}
}

// Sim records a child span on the simulation clock: startSec/durSec are
// simulated seconds from the run's t=0. The span is already ended.
func (s Span) Sim(name string, startSec, durSec float64) Span {
	if s.t == nil {
		return Span{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	d := s.t.newSpan(s.d, name)
	d.sim = true
	d.startUS = int64(startSec * 1e6)
	d.endUS = d.startUS + int64(durSec*1e6)
	d.ended = true
	s.t.open--
	return Span{t: s.t, d: d}
}

// End closes the span. Ending twice keeps the first end time.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.d.ended {
		s.d.ended = true
		s.d.endUS = nowUS()
		s.t.open--
	}
}
