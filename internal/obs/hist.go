package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket Prometheus histogram with lock-free
// observation, matching the repo's dependency-free text exposition. A
// nil *Histogram discards observations.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	total  atomic.Int64
}

// NewHistogram builds a histogram with the given ascending upper bucket
// bounds (seconds, for all the service's latency histograms).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Name returns the metric family name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// WriteProm writes the histogram in Prometheus text exposition:
// cumulative _bucket series per bound plus +Inf, then _sum and _count.
func (h *Histogram) WriteProm(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", h.name, h.help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(math.Float64frombits(h.sum.Load()), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}
