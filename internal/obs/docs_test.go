package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	spanNameRe = regexp.MustCompile(`\.(?:Start|StartThread|Event|Sim)\("([a-z_]+)"`)
	histNameRe = regexp.MustCompile(`NewHistogram\(\s*"([a-z_]+)"`)
)

// TestDocsCoverEmittedNames walks every non-test Go file in the repo,
// collects the span names and histogram names the code actually emits, and
// requires each to appear in the README's Observability section. A new
// span or histogram without documentation fails here, not in a dashboard
// six months later.
func TestDocsCoverEmittedNames(t *testing.T) {
	root := "../.."
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	emitted := map[string]string{} // name -> first file emitting it
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "related":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, re := range []*regexp.Regexp{spanNameRe, histNameRe} {
			for _, m := range re.FindAllStringSubmatch(string(src), -1) {
				if _, ok := emitted[m[1]]; !ok {
					emitted[m[1]] = path
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) < 10 {
		t.Fatalf("only %d emitted names found — the scan regexes have drifted from the code: %v", len(emitted), emitted)
	}
	for name, file := range emitted {
		if !strings.Contains(doc, name) {
			t.Errorf("span/histogram %q (emitted in %s) is not documented in README.md", name, file)
		}
	}
}
