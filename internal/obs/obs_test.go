package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The disabled path must allocate nothing: instrumented hot paths call
// these unconditionally, and PR 3's allocguard ceilings must hold with
// tracing compiled in but off.
func TestAllocsTracerDisabled(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("job")
		child := sp.Start("case")
		child.SetAttr("row", "r0")
		ev := child.Event("memo_lookup")
		ev.SetAttr("hit", "true")
		child.Sim("epoch", 0, 1)
		child.End()
		sp.End()
		tr.Finish()
		_ = tr.TraceID()
		_ = sp.ID()
		_ = sp.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per op, want 0", allocs)
	}
	var h *Histogram
	allocs = testing.AllocsPerRun(100, func() {
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil histogram allocated %.1f per op, want 0", allocs)
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr := NewTracer("test", "")
	job := tr.Start("job")
	job.SetAttr("kind", "spec")
	run := job.Start("run")
	c1 := run.StartThread("case")
	c1.SetAttr("row", "a")
	c1.Event("memo_lookup").SetAttr("hit", "false")
	sim := c1.Start("simulate")
	sim.Sim("epoch", 0, 2.5)
	sim.End()
	c1.End()
	run.End()
	job.End()

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after ending all: %d", n)
	}
	recs := tr.Export()
	if len(recs) != 6 {
		t.Fatalf("exported %d spans, want 6", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["run"].Parent != byName["job"].ID {
		t.Fatalf("run parent = %d, want job id %d", byName["run"].Parent, byName["job"].ID)
	}
	if byName["case"].Parent != byName["run"].ID || !byName["case"].Thread {
		t.Fatalf("case record wrong: %+v", byName["case"])
	}
	if !byName["epoch"].Sim || byName["epoch"].DurUS != 2_500_000 {
		t.Fatalf("epoch sim record wrong: %+v", byName["epoch"])
	}
	if byName["memo_lookup"].DurUS != 0 {
		t.Fatalf("event has nonzero duration: %+v", byName["memo_lookup"])
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := NewTracer("test", "")
	job := tr.Start("job")
	job.Start("run") // never ended
	if n := tr.OpenSpans(); n != 2 {
		t.Fatalf("open spans = %d, want 2", n)
	}
	tr.Finish()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open spans after Finish = %d, want 0", n)
	}
	for _, r := range tr.Export() {
		if r.DurUS < 0 {
			t.Fatalf("span %q has negative duration", r.Name)
		}
	}
}

// Topology must not depend on sibling creation order, span IDs, or
// volatile attribute values.
func TestTopologyCanonical(t *testing.T) {
	build := func(order []string, worker string) []byte {
		tr := NewTracer("test", "")
		job := tr.Start("job")
		for _, row := range order {
			c := job.StartThread("case")
			c.SetAttr("row", row)
			c.SetAttr("worker", worker)
			c.End()
		}
		job.End()
		return tr.Topology()
	}
	a := build([]string{"r0", "r1", "r2"}, "http://127.0.0.1:1111")
	b := build([]string{"r2", "r0", "r1"}, "http://127.0.0.1:2222")
	if !bytes.Equal(a, b) {
		t.Fatalf("topology not canonical:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(string(a), "worker=*") {
		t.Fatalf("volatile attr not masked:\n%s", a)
	}
	if !strings.Contains(string(a), "row=r0") {
		t.Fatalf("stable attr missing:\n%s", a)
	}
}

func TestGraftRemapsIDs(t *testing.T) {
	remote := NewTracer("worker", "")
	rj := remote.Start("job")
	rc := rj.Start("case")
	rc.End()
	rj.End()

	local := NewTracer("stallserved", "")
	job := local.Start("job")
	att := job.Start("attempt")
	att.Graft(remote.Export())
	att.End()
	job.End()

	recs := local.Export()
	if len(recs) != 4 {
		t.Fatalf("merged trace has %d spans, want 4", len(recs))
	}
	ids := map[int64]bool{}
	var remoteJob SpanRecord
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d after graft", r.ID)
		}
		ids[r.ID] = true
		if r.Name == "job" && r.Service == "worker" {
			remoteJob = r
		}
	}
	var attID int64
	for _, r := range recs {
		if r.Name == "attempt" {
			attID = r.ID
		}
	}
	if remoteJob.Parent != attID {
		t.Fatalf("grafted root parent = %d, want attempt id %d", remoteJob.Parent, attID)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer("stallserved", "")
	job := tr.Start("job")
	job.SetAttr("kind", "spec")
	c := job.StartThread("case")
	c.SetAttr("row", "r0")
	c.Start("simulate").Sim("epoch", 0, 1)
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	recs, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseChrome: %v", err)
	}
	if !bytes.Equal(TopologyFromRecords(recs), tr.Topology()) {
		t.Fatalf("topology changed across Chrome round trip:\n%s\nvs\n%s",
			TopologyFromRecords(recs), tr.Topology())
	}
}

func TestParseChromeRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{}`,
		`{"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]}`,
		`{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}`,
		`{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1, "args": {"span": 1, "parent": 9}}]}`,
	} {
		if _, err := ParseChrome([]byte(bad)); err == nil {
			t.Errorf("ParseChrome accepted malformed trace %s", bad)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	h := Traceparent(id, 42)
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("ParseTraceparent(%q) = %q, %v; want %q, true", h, got, ok, id)
	}
	for _, bad := range []string{"", "00-xyz-0000000000000001-01", "00-abc-01", Traceparent(id, 1) + "-extra"} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("test_seconds", "test latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var buf bytes.Buffer
	h.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_sum 5.555",
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
