package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SpanRecord is the flat wire form of one span, used by the
// ?format=spans trace endpoint so a coordinator can graft a worker's
// subtree into the merged trace. Records are emitted in creation order,
// so a parent always precedes its children.
type SpanRecord struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"` // 0: a root
	Service string `json:"service,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Sim     bool   `json:"sim,omitempty"`
	Thread  bool   `json:"thread,omitempty"`
}

// Export flattens the span tree into creation-ordered records.
func (t *Tracer) Export() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var recs []SpanRecord
	var walk func(d *spanData)
	walk = func(d *spanData) {
		r := SpanRecord{
			ID:      d.id,
			Service: d.service,
			Name:    d.name,
			StartUS: d.startUS,
			DurUS:   max64(d.endUS-d.startUS, 0),
			Attrs:   append([]Attr(nil), d.attrs...),
			Sim:     d.sim,
			Thread:  d.thread,
		}
		if d.parent != nil {
			r.Parent = d.parent.id
		}
		recs = append(recs, r)
		for _, c := range d.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Graft attaches an exported span forest (typically a worker's trace)
// under s, remapping IDs into this tracer so the merged trace stays
// collision-free. Records whose parent is unknown become direct
// children of s.
func (s Span) Graft(recs []SpanRecord) {
	if s.t == nil || len(recs) == 0 {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	idmap := make(map[int64]*spanData, len(recs))
	for _, r := range recs {
		parent := s.d
		if p, ok := idmap[r.Parent]; ok {
			parent = p
		}
		s.t.nextID++
		d := &spanData{
			id:      s.t.nextID,
			parent:  parent,
			service: r.Service,
			name:    r.Name,
			attrs:   append([]Attr(nil), r.Attrs...),
			startUS: r.StartUS,
			endUS:   r.StartUS + r.DurUS,
			ended:   true,
			sim:     r.Sim,
			thread:  r.Thread,
		}
		parent.children = append(parent.children, d)
		idmap[r.ID] = d
	}
}

// chromeEvent is one Chrome trace-event ("X" complete event or "M"
// metadata). Every "X" event carries args.span / args.parent so tools
// (and tracetool) can rebuild the exact span tree from the JSON.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	TraceID         string        `json:"traceId,omitempty"`
}

// simPID is the Chrome process ID used for simulation-clock spans; wall
// spans use per-service PIDs starting at 1.
const simPID = 100

// WriteChrome writes the trace as Chrome trace-event JSON (the
// {"traceEvents": [...]} form Perfetto and chrome://tracing open
// directly). Wall spans group into one process per service; sim spans
// land in a separate "simulated time" process whose timestamps are
// simulated seconds expressed in microseconds.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return writeChromeRecords(w, t.TraceID(), t.Export())
}

// WriteChromeRecords renders an already-exported record set (e.g. the
// spans form fetched over HTTP) as Chrome trace-event JSON.
func WriteChromeRecords(w io.Writer, traceID string, recs []SpanRecord) error {
	return writeChromeRecords(w, traceID, recs)
}

func writeChromeRecords(w io.Writer, traceID string, recs []SpanRecord) error {
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceID: traceID, TraceEvents: []chromeEvent{}}
	pids := map[string]int{}
	pidOf := func(service string, sim bool) int {
		if sim {
			return simPID
		}
		p, ok := pids[service]
		if !ok {
			p = len(pids) + 1
			pids[service] = p
			name := service
			if name == "" {
				name = "trace"
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: p,
				Args: map[string]any{"name": name},
			})
		}
		return p
	}
	simSeen := false
	// tid: a span inherits its parent's timeline unless it is a thread
	// starter, in which case its own ID names a fresh timeline.
	tids := map[int64]int64{}
	for _, r := range recs {
		tid, ok := tids[r.Parent]
		if !ok || r.Thread {
			tid = r.ID
		}
		tids[r.ID] = tid
		if r.Sim && !simSeen {
			simSeen = true
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: simPID,
				Args: map[string]any{"name": "simulated time"},
			})
		}
		args := map[string]any{"span": r.ID}
		if r.Parent != 0 {
			args["parent"] = r.Parent
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		dur := r.DurUS
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: r.Name, Ph: "X", TS: r.StartUS, Dur: &dur,
			PID: pidOf(r.Service, r.Sim), TID: tid, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ParseChrome validates Chrome trace-event JSON produced by WriteChrome
// and rebuilds the span records from args.span / args.parent. It is the
// schema check behind tracetool -validate.
func ParseChrome(data []byte) ([]SpanRecord, error) {
	var ct chromeTrace
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace JSON: %w", err)
	}
	if ct.TraceEvents == nil {
		return nil, fmt.Errorf("trace JSON: missing traceEvents array")
	}
	var recs []SpanRecord
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return nil, fmt.Errorf("traceEvents[%d]: unsupported phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			return nil, fmt.Errorf("traceEvents[%d] %q: missing or negative dur", i, ev.Name)
		}
		id, ok := asInt64(ev.Args["span"])
		if !ok || id <= 0 {
			return nil, fmt.Errorf("traceEvents[%d] %q: missing args.span", i, ev.Name)
		}
		parent, _ := asInt64(ev.Args["parent"])
		r := SpanRecord{ID: id, Parent: parent, Name: ev.Name, StartUS: ev.TS, DurUS: *ev.Dur, Sim: ev.PID == simPID}
		var keys []string
		for k := range ev.Args {
			if k == "span" || k == "parent" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, ok := ev.Args[k].(string)
			if !ok {
				return nil, fmt.Errorf("traceEvents[%d] %q: attr %q is not a string", i, ev.Name, k)
			}
			r.Attrs = append(r.Attrs, Attr{Key: k, Value: v})
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	ids := map[int64]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			return nil, fmt.Errorf("duplicate span id %d", r.ID)
		}
		ids[r.ID] = true
	}
	for _, r := range recs {
		if r.Parent != 0 && !ids[r.Parent] {
			return nil, fmt.Errorf("span %d %q: parent %d not in trace", r.ID, r.Name, r.Parent)
		}
	}
	return recs, nil
}

func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case float64:
		return int64(n), true
	case json.Number:
		i, err := n.Int64()
		return i, err == nil
	}
	return 0, false
}

// volatileAttrs are attribute keys whose values legitimately differ
// between reruns (random ports, arrival-ordered IDs, error text); the
// canonical topology masks them to "*" so only their presence is
// compared.
var volatileAttrs = map[string]bool{
	"worker":   true,
	"job_id":   true,
	"trace_id": true,
	"error":    true,
}

// Topology renders the trace's canonical topology: the span tree as
// indented text with timestamps, span IDs and volatile attribute values
// stripped, attributes sorted by key, and sibling subtrees sorted by
// their rendered text. Two runs of the same deterministic workload
// yield byte-identical topologies regardless of goroutine interleaving.
func (t *Tracer) Topology() []byte {
	return TopologyFromRecords(t.Export())
}

// TopologyFromRecords canonicalizes an exported record set (see
// Tracer.Topology).
func TopologyFromRecords(recs []SpanRecord) []byte {
	children := map[int64][]SpanRecord{}
	for _, r := range recs {
		children[r.Parent] = append(children[r.Parent], r)
	}
	var render func(r SpanRecord, depth int) string
	render = func(r SpanRecord, depth int) string {
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(r.Name)
		attrs := append([]Attr(nil), r.Attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		for _, a := range attrs {
			v := a.Value
			if volatileAttrs[a.Key] {
				v = "*"
			}
			b.WriteString(" ")
			b.WriteString(a.Key)
			b.WriteString("=")
			b.WriteString(v)
		}
		b.WriteString("\n")
		var subs []string
		for _, c := range children[r.ID] {
			subs = append(subs, render(c, depth+1))
		}
		sort.Strings(subs)
		for _, s := range subs {
			b.WriteString(s)
		}
		return b.String()
	}
	var roots []string
	for _, r := range children[0] {
		roots = append(roots, render(r, 0))
	}
	sort.Strings(roots)
	return []byte(strings.Join(roots, ""))
}

// Traceparent formats a W3C traceparent header (version 00, sampled)
// for the given trace and parent span.
func Traceparent(traceID string, spanID int64) string {
	return fmt.Sprintf("00-%s-%016x-01", traceID, uint64(spanID))
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header.
// Malformed headers report ok=false and the caller falls back to a
// fresh trace.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", false
	}
	for _, p := range parts[1:3] {
		if _, err := strconv.ParseUint(p[:16], 16, 64); err != nil {
			return "", false
		}
	}
	if _, err := strconv.ParseUint(parts[1][16:], 16, 64); err != nil {
		return "", false
	}
	return parts[1], true
}
