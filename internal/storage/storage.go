// Package storage models the block devices from the paper's two server SKUs
// (Table 2): a SATA SSD with ~530 MB/s random reads and an st1-style magnetic
// hard drive whose random-read throughput collapses to tens of MB/s because
// of seek overhead while sequential scans sustain much more.
package storage

import (
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// DeviceSpec characterises a storage device.
type DeviceSpec struct {
	Name string
	// SeqBW is the sustained sequential read bandwidth (bytes/s).
	SeqBW float64
	// RandBW is the effective random-read bandwidth for small reads
	// (bytes/s); for disks with nontrivial SeekTime this emerges from the
	// seek model instead and RandBW is only reported.
	RandBW float64
	// SeekTime is the per-random-request positioning overhead (seconds).
	SeekTime float64
}

// Paper device specs (Table 2 and Fig 1): SSD 530 MB/s random reads; HDD
// 15–50 MB/s random (we model seek so the effective rate depends on item
// size), ~500 MB/s sequential for the st1 throughput-optimised volume.
var (
	SSD = DeviceSpec{
		Name:  "ssd",
		SeqBW: 560 * stats.MiB, RandBW: 530 * stats.MiB,
		SeekTime: 10e-6,
	}
	HDD = DeviceSpec{
		Name:  "hdd",
		SeqBW: 500 * stats.MiB, RandBW: 30 * stats.MiB,
		SeekTime: 8e-3,
	}
)

// Disk is a simulated storage device: a FIFO bandwidth server with per-seek
// overhead and an I/O trace for the paper's disk-activity figures (Fig 11).
type Disk struct {
	Spec DeviceSpec

	eng *sim.Engine
	srv *sim.BandwidthServer

	// Trace records (completion time, bytes) per request when enabled.
	Trace *stats.TimeSeries
}

// NewDisk returns a disk with the given spec attached to e.
func NewDisk(e *sim.Engine, spec DeviceSpec) *Disk {
	return &Disk{Spec: spec, eng: e, srv: sim.NewBandwidthServer(e)}
}

// EnableTrace starts recording per-request completions.
func (d *Disk) EnableTrace(name string) {
	d.Trace = &stats.TimeSeries{Name: name}
}

// ReadRandom reads bytes spread over nItems separately-located files,
// blocking p until the transfer completes. Each item costs one seek.
func (d *Disk) ReadRandom(p *sim.Proc, bytes float64, nItems int) {
	if bytes <= 0 && nItems <= 0 {
		return
	}
	d.srv.Request(p, bytes, d.Spec.SeqBW, float64(nItems)*d.Spec.SeekTime)
	if d.Trace != nil {
		d.Trace.Add(d.eng.Now(), bytes)
	}
}

// ReadSequential reads bytes laid out contiguously (one seek total).
func (d *Disk) ReadSequential(p *sim.Proc, bytes float64) {
	if bytes <= 0 {
		return
	}
	d.srv.Request(p, bytes, d.Spec.SeqBW, d.Spec.SeekTime)
	if d.Trace != nil {
		d.Trace.Add(d.eng.Now(), bytes)
	}
}

// TotalBytes returns total bytes read from the device.
func (d *Disk) TotalBytes() float64 { return d.srv.Bytes }

// TotalRequests returns the number of read requests serviced.
func (d *Disk) TotalRequests() int64 { return d.srv.Requests }

// BusyTime returns total seconds the device spent servicing requests.
func (d *Disk) BusyTime() float64 { return d.srv.Busy }

// QueueDelay returns total seconds requests spent queued behind others.
func (d *Disk) QueueDelay() float64 { return d.srv.Waited }

// EffectiveRandomBW returns the throughput of reading items of avgItem bytes
// in random order: bytes move at SeqBW but every item pays SeekTime.
func (spec DeviceSpec) EffectiveRandomBW(avgItem float64) float64 {
	perItem := spec.SeekTime + avgItem/spec.SeqBW
	return avgItem / perItem
}

// Memory models DRAM as a read source for cached items. Reads are modelled
// as a fixed very high bandwidth without queueing (the paper's analysis notes
// cache fetch is tens of GB/s and never the bottleneck, Appendix C.1).
type Memory struct {
	// BW is the copy bandwidth in bytes/s.
	BW float64
	// Bytes counts bytes served from memory.
	Bytes float64
}

// NewMemory returns a memory source with the given bandwidth.
func NewMemory(bw float64) *Memory { return &Memory{BW: bw} }

// Read blocks p for the copy time of bytes from DRAM.
func (m *Memory) Read(p *sim.Proc, bytes float64) {
	if bytes <= 0 {
		return
	}
	m.Bytes += bytes
	p.Sleep(bytes / m.BW)
}
