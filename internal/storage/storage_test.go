package storage

import (
	"math"
	"testing"

	"datastall/internal/sim"
	"datastall/internal/stats"
)

func TestEffectiveRandomBW(t *testing.T) {
	// HDD random reads of ~300KB items should land in the paper's
	// 15-50 MB/s window (Table 2).
	bw := HDD.EffectiveRandomBW(300 * stats.KiB)
	if mbps := bw / stats.MiB; mbps < 15 || mbps > 50 {
		t.Fatalf("HDD effective random bw = %.1f MB/s, want 15-50", mbps)
	}
	// SSD random reads stay near the rated 530 MB/s.
	bw = SSD.EffectiveRandomBW(150 * stats.KiB)
	if mbps := bw / stats.MiB; mbps < 400 || mbps > 560 {
		t.Fatalf("SSD effective random bw = %.1f MB/s, want ~530", mbps)
	}
}

func TestDiskReadTiming(t *testing.T) {
	e := sim.New()
	d := NewDisk(e, DeviceSpec{Name: "t", SeqBW: 100, SeekTime: 1})
	var done float64
	e.Go("r", func(p *sim.Proc) {
		d.ReadRandom(p, 200, 2) // 2 seeks (2s) + 200/100 (2s) = 4s
		done = p.Now()
	})
	e.Run()
	if done != 4 {
		t.Fatalf("read finished at %v, want 4", done)
	}
	if d.TotalBytes() != 200 || d.TotalRequests() != 1 {
		t.Fatalf("stats: %v bytes %d reqs", d.TotalBytes(), d.TotalRequests())
	}
}

func TestDiskFIFOContention(t *testing.T) {
	e := sim.New()
	d := NewDisk(e, DeviceSpec{Name: "t", SeqBW: 100, SeekTime: 0})
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) {
		d.ReadSequential(p, 1000) // 10s
		t1 = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		p.Sleep(1)
		d.ReadSequential(p, 100) // queues: done at 11
		t2 = p.Now()
	})
	e.Run()
	if t1 != 10 || t2 != 11 {
		t.Fatalf("t1=%v t2=%v, want 10, 11", t1, t2)
	}
	if d.QueueDelay() != 9 {
		t.Fatalf("queue delay %v, want 9", d.QueueDelay())
	}
}

func TestDiskTrace(t *testing.T) {
	e := sim.New()
	d := NewDisk(e, SSD)
	d.EnableTrace("io")
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			d.ReadRandom(p, stats.MiB, 1)
		}
	})
	e.Run()
	if d.Trace.Len() != 3 {
		t.Fatalf("trace has %d points", d.Trace.Len())
	}
	if math.Abs(d.Trace.Sum()-3*stats.MiB) > 1 {
		t.Fatalf("trace sum %v", d.Trace.Sum())
	}
}

func TestMemoryRead(t *testing.T) {
	e := sim.New()
	m := NewMemory(1000)
	var done float64
	e.Go("r", func(p *sim.Proc) {
		m.Read(p, 500)
		done = p.Now()
	})
	e.Run()
	if done != 0.5 {
		t.Fatalf("memory read at %v, want 0.5", done)
	}
	if m.Bytes != 500 {
		t.Fatalf("bytes %v", m.Bytes)
	}
}

func TestZeroByteReadsAreFree(t *testing.T) {
	e := sim.New()
	d := NewDisk(e, SSD)
	m := NewMemory(1000)
	var done float64
	e.Go("r", func(p *sim.Proc) {
		d.ReadRandom(p, 0, 0)
		d.ReadSequential(p, 0)
		m.Read(p, 0)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("zero reads consumed time: %v", done)
	}
}
