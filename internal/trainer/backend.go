package trainer

import (
	"context"
	"fmt"
	"sync"
	"time"

	"datastall/internal/cache"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/pagecache"
	"datastall/internal/prep"
)

// runConcurrent executes the job's data-loading path for real: one goroutine
// fetch->prep pipeline per server (loader.Pipeline) over goroutine-safe
// caches, with ThreadsPerGPU x GPUsPerServer fetch workers per server. The
// samplers, truncation, and cache policies are shared with the analytic
// backend via orderSource/epochIters, so per-epoch cache statistics line up
// (exactly for MinIO over equal-sized items — see the property tests);
// Duration is host wall-clock and compute/stall times are not modeled.
// Cancellation is honored between epochs and on the pipelines' channel
// sends (RunEpochContext), so an oversized job dies mid-epoch.
func runConcurrent(ctx context.Context, cfg Config, obs observers) (*Result, error) {
	workers := cfg.ThreadsPerGPU * cfg.GPUsPerServer
	if workers < 1 {
		workers = 1
	}
	depth := cfg.PrefetchDepth * cfg.GPUsPerServer
	if depth < 1 {
		depth = 1
	}

	fetches, ownerShards, occupancy, err := concurrentFetchers(cfg)
	if err != nil {
		return nil, err
	}
	// The analytic producers charge every batch raw/prepRatePerGPU (each
	// GPU's prep server runs at its thread share's rate), so the pool uses
	// the per-GPU rate too: PrepBusySeconds then equals the analytic
	// backend's aggregate prep-busy time for the same bytes.
	prepRate := prep.Rate(cfg.Model, cfg.prepConfig())
	pools := make([]*prep.Pool, cfg.NumServers)
	pipes := make([]*loader.Pipeline, cfg.NumServers)
	for s := 0; s < cfg.NumServers; s++ {
		pool := prep.NewPoolRate(prepRate)
		pools[s] = pool
		pipes[s] = &loader.Pipeline{
			Workers:     workers,
			PrepWorkers: workers,
			Batch:       cfg.Batch,
			QueueDepth:  depth,
			Fetch:       fetches[s],
			Prep: func(r loader.FetchResult) {
				pool.Process(r.MemBytes + r.DiskBytes + r.NetBytes)
			},
		}
	}

	r := &Result{}
	obs.emit(JobStarted{
		Epochs: cfg.Epochs, Servers: cfg.NumServers,
		GPUsPerServer: cfg.GPUsPerServer, Backend: cfg.Backend,
	})
	src := newOrderSource(cfg, ownerShards)
	var pl *epochPlan
	for e := 0; e < cfg.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		obs.emit(EpochStarted{Time: r.TotalTime, Epoch: e})
		// Each epoch's orders are fully consumed before the next epoch
		// starts (RunEpoch is a barrier), so the previous plan's
		// permutation buffer is recycled into this one.
		pl = src.orders(e, pl)
		orders, iters := pl.orders, pl.iters
		if iters < 1 {
			return nil, fmt.Errorf("trainer: dataset %s too small for %d servers x %d GPUs x batch %d",
				cfg.Dataset.Name, cfg.NumServers, cfg.GPUsPerServer, cfg.Batch)
		}
		perServer := iters * cfg.Batch * cfg.GPUsPerServer
		start := time.Now()
		reports := make([]loader.EpochReport, len(orders))
		var wg sync.WaitGroup
		for s := range orders {
			// Drop-last truncation, as the analytic producers iterate.
			// Epoch 0 with owner shards is the exception on both backends:
			// the whole shard (tail included) populates the partitioned
			// cache (§4.2) — but the tail is fetched without a prep
			// charge, exactly like the analytic tail loop.
			order, tail := orders[s][:perServer], []dataset.ItemID(nil)
			if e == 0 && ownerShards != nil {
				tail = orders[s][perServer:]
			}
			wg.Add(1)
			go func(s int, order, tail []dataset.ItemID) {
				defer wg.Done()
				rep, err := pipes[s].RunEpochContext(ctx, order)
				if err != nil {
					reports[s] = rep
					return // partial epoch; the ctx check below surfaces it
				}
				for i := 0; i < len(tail); i += cfg.Batch {
					j := min(i+cfg.Batch, len(tail))
					rep.Fetch.Add(fetches[s](0, tail[i:j]))
				}
				reports[s] = rep
			}(s, order, tail)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()

		var total loader.EpochReport
		for _, rep := range reports {
			total.Add(rep)
		}
		f := total.Fetch
		occ := occupancy()
		es := EpochStats{
			Duration:       wall,
			DiskBytes:      f.DiskBytes,
			NetBytes:       f.NetBytes,
			MemBytes:       f.MemBytes,
			DiskReads:      f.DiskItems,
			Hits:           f.Hits,
			Misses:         f.Misses,
			RemoteHits:     f.RemoteHit,
			Samples:        iters * cfg.Batch * cfg.GPUsPerServer * cfg.NumServers,
			CacheUsedBytes: occ,
		}
		r.Epochs = append(r.Epochs, es)
		r.TotalDiskBytes += f.DiskBytes
		r.TotalNetBytes += f.NetBytes
		r.TotalTime += wall
		obs.emit(EpochEnded{
			Time: r.TotalTime, Epoch: e, Stats: es,
			CacheUsedBytes: occ,
		})
	}
	for _, pool := range pools {
		r.PrepBusySeconds += pool.BusySeconds()
	}
	r.steadyState()
	obs.emit(JobEnded{Time: r.TotalTime, Result: r})
	return r, nil
}

// concurrentFetchers builds one goroutine-safe BatchFetch per server for the
// configured loader, mirroring newJobRuntime's fetcher selection. The second
// result is the static owner sharding (CoorDL distributed only); the third
// reports total cache occupancy for EpochEnded events (never nil).
func concurrentFetchers(cfg Config) ([]loader.BatchFetch, []dataset.Shard, func() float64, error) {
	d := cfg.Dataset
	fetches := make([]loader.BatchFetch, cfg.NumServers)
	noCache := func() float64 { return 0 }
	switch {
	case cfg.FetchMode == Synthetic:
		for s := range fetches {
			fetches[s] = func(_ int, items []dataset.ItemID) loader.FetchResult {
				return loader.FetchResult{Hits: len(items)}
			}
		}
		return fetches, nil, noCache, nil

	case cfg.FetchMode == FullyCached:
		for s := range fetches {
			fetches[s] = func(_ int, items []dataset.ItemID) loader.FetchResult {
				var r loader.FetchResult
				for _, id := range items {
					r.MemBytes += d.ItemBytes(id)
					r.Hits++
				}
				return r
			}
		}
		return fetches, nil, noCache, nil

	case cfg.Loader == loader.CoorDL && cfg.NumServers > 1 && !cfg.DisableRemoteFetch:
		part := cache.NewShardedPartitioned(d, cfg.NumServers, cfg.CacheBytes, cfg.CacheShards, cfg.Seed)
		owner := part.OwnerShards()
		for s := range fetches {
			s := s
			fetches[s] = func(_ int, items []dataset.ItemID) loader.FetchResult {
				var r loader.FetchResult
				for _, id := range items {
					sz := d.ItemBytes(id)
					loc, _ := part.Lookup(s, id)
					switch loc {
					case cache.LocalHit:
						r.MemBytes += sz
						r.Hits++
					case cache.RemoteHit:
						r.NetBytes += sz
						r.RemoteHit++
					default:
						r.DiskBytes += sz
						r.DiskItems++
						r.Misses++
						part.Insert(s, id, sz)
					}
				}
				return r
			}
		}
		return fetches, owner, part.AggregateUsedBytes, nil

	case cfg.Loader == loader.CoorDL:
		caches := make([]*cache.ShardedMinIO, cfg.NumServers)
		for s := range fetches {
			mc := cache.NewShardedMinIO(cfg.CacheBytes, cfg.CacheShards)
			caches[s] = mc
			fetches[s] = loader.MinIOBatchFetch(d, mc, 1)
		}
		return fetches, nil, func() float64 { return cache.SumUsedBytes(caches) }, nil

	default:
		// Baseline loaders share the page-cache simulation; its recency
		// lists cannot be lock-striped without changing eviction order, so
		// workers serialize on one mutex (cache.Locked) — which is exactly
		// the contention the sharded benchmark quantifies. This switch
		// mirrors newJobRuntime's fetcher selection case for case; changes
		// there must land here too (the single-worker baseline property
		// test pins the parity).
		spi := 1
		if cfg.Loader == loader.PyTorchDL {
			spi = loader.PyTorchSeeksPerItem
		}
		caches := make([]*cache.Locked, cfg.NumServers)
		for s := range fetches {
			pc := cache.NewLocked(pagecache.New(pagecache.TwoList, cfg.CacheBytes, cfg.Seed+int64(s)))
			caches[s] = pc
			fetches[s] = loader.MinIOBatchFetch(d, pc, spi)
		}
		return fetches, nil, func() float64 { return cache.SumUsedBytes(caches) }, nil
	}
}
