package trainer

import (
	"context"
	"errors"
	"testing"
	"time"

	"datastall/internal/cluster"
	"datastall/internal/loader"
)

// drain reads every event until the subscription closes, returning them.
func drain(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out []Event
	for {
		ev, err := sub.Next(ctx)
		if errors.Is(err, ErrSubscriptionClosed) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ev)
	}
}

// TestBroadcasterDeliversInOrder: every subscriber with enough buffer sees
// the full event sequence in publication order.
func TestBroadcasterDeliversInOrder(t *testing.T) {
	bc := NewBroadcaster()
	a, b := bc.Subscribe(32), bc.Subscribe(32)
	for i := 0; i < 10; i++ {
		bc.Observe(EpochStarted{Epoch: i})
	}
	bc.Close()
	for name, sub := range map[string]*Subscription{"a": a, "b": b} {
		evs := drain(t, sub)
		if len(evs) != 10 {
			t.Fatalf("%s: got %d events, want 10", name, len(evs))
		}
		for i, ev := range evs {
			if es, ok := ev.(EpochStarted); !ok || es.Epoch != i {
				t.Fatalf("%s: event %d = %#v, want EpochStarted{Epoch: %d}", name, i, ev, i)
			}
		}
		if sub.Dropped() != 0 {
			t.Fatalf("%s: dropped %d events with a roomy buffer", name, sub.Dropped())
		}
	}
	if bc.Published() != 10 {
		t.Fatalf("Published = %d, want 10", bc.Published())
	}
}

// TestBroadcasterOverflowDropsOldest: a full ring discards its oldest
// buffered event, so the most recent events (the terminal JobEnded in real
// streams) survive.
func TestBroadcasterOverflowDropsOldest(t *testing.T) {
	bc := NewBroadcaster()
	sub := bc.Subscribe(4)
	for i := 0; i < 10; i++ {
		bc.Observe(EpochStarted{Epoch: i})
	}
	bc.Close()
	evs := drain(t, sub)
	if len(evs) != 4 {
		t.Fatalf("got %d buffered events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := 6 + i // the last four of 0..9
		if es := ev.(EpochStarted); es.Epoch != want {
			t.Fatalf("event %d = %#v, want epoch %d", i, ev, want)
		}
	}
	if sub.Dropped() != 6 || bc.Dropped() != 6 {
		t.Fatalf("dropped = %d (broadcaster %d), want 6", sub.Dropped(), bc.Dropped())
	}
}

// TestBroadcasterNextContext: Next honors its context while blocked.
func TestBroadcasterNextContext(t *testing.T) {
	bc := NewBroadcaster()
	sub := bc.Subscribe(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next = %v, want DeadlineExceeded", err)
	}
}

// TestBroadcasterSubscribeAfterClose: a late subscriber sees an immediately
// closed stream rather than a hang.
func TestBroadcasterSubscribeAfterClose(t *testing.T) {
	bc := NewBroadcaster()
	bc.Close()
	sub := bc.Subscribe(1)
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("Next = %v, want ErrSubscriptionClosed", err)
	}
	if bc.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after close", bc.Subscribers())
	}
}

// TestBroadcasterCancelDetaches: a cancelled subscription stops receiving,
// drains what it buffered, then closes; other subscribers are unaffected.
func TestBroadcasterCancelDetaches(t *testing.T) {
	bc := NewBroadcaster()
	quitter, stayer := bc.Subscribe(8), bc.Subscribe(8)
	bc.Observe(EpochStarted{Epoch: 0})
	quitter.Cancel()
	quitter.Cancel() // idempotent
	bc.Observe(EpochStarted{Epoch: 1})
	bc.Close()
	if evs := drain(t, quitter); len(evs) != 1 {
		t.Fatalf("cancelled sub got %d events, want the 1 buffered before Cancel", len(evs))
	}
	if evs := drain(t, stayer); len(evs) != 2 {
		t.Fatalf("remaining sub got %d events, want 2", len(evs))
	}
}

// TestBroadcasterSlowSubscriberCannotStallJob is the fan-out subsystem's
// core guarantee: a subscriber that never reads must not block a running
// simulation. The job runs with a 1-slot never-read subscription attached;
// if the broadcaster could block, the engine goroutine would deadlock here
// and the test would time out.
func TestBroadcasterSlowSubscriberCannotStallJob(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	bc := NewBroadcaster()
	slow := bc.Subscribe(1) // never read until the job is done
	fast := bc.Subscribe(0)

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		job := New(m, d, spec, WithLoader(loader.CoorDL),
			WithCacheBytes(0.35*d.TotalBytes), WithEpochs(6))
		res, err := job.Run(context.Background(), bc)
		bc.Close()
		done <- outcome{res, err}
	}()

	// Read the fast subscription concurrently, like a live client.
	fastEvents := make(chan int, 1)
	go func() {
		n := 0
		ctx := context.Background()
		for {
			_, err := fast.Next(ctx)
			if err != nil {
				fastEvents <- n
				return
			}
			n++
		}
	}()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if len(o.res.Epochs) != 6 {
			t.Fatalf("job ran %d epochs, want 6", len(o.res.Epochs))
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job stalled behind a slow subscriber")
	}

	// 6 epochs emit 1 JobStarted + 6 starts + 6 ends + 1 JobEnded = 14
	// events; the 1-slot ring must have dropped most of them.
	if n := <-fastEvents; n != 14 {
		t.Fatalf("fast subscriber saw %d events, want 14", n)
	}
	if slow.Dropped() == 0 {
		t.Fatal("slow subscriber dropped nothing; the ring never overflowed, so the test is vacuous")
	}
	evs := drain(t, slow)
	if len(evs) != 1 {
		t.Fatalf("slow subscriber drained %d events, want its single buffered slot", len(evs))
	}
	if _, ok := evs[0].(JobEnded); !ok {
		t.Fatalf("slow subscriber's surviving event = %#v, want the terminal JobEnded", evs[0])
	}
}
