package trainer

import (
	"context"
	"errors"
	"fmt"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/prep"
)

// Job is a configured training job built with New and functional options.
// Unlike the legacy Run(Config) shim — which silently fills every zero field
// and reports problems as untyped strings — a Job separates construction
// (New + options), explicit validation (Validate, returning typed errors),
// and cancellable, observable execution (Run).
type Job struct {
	cfg Config
}

// Option configures a Job at construction time.
type Option func(*Config)

// New builds a Job for model on ds over the given server SKU. Unset knobs
// resolve to the same defaults the legacy API used (3 epochs, all GPUs, the
// SKU's fair CPU share and cache budget); call Validate to check the
// combination before running, or let Run do it.
func New(model *gpu.Model, ds *dataset.Dataset, spec cluster.ServerSpec, opts ...Option) *Job {
	cfg := Config{Model: model, Dataset: ds, Spec: spec}
	for _, o := range opts {
		o(&cfg)
	}
	return &Job{cfg: cfg}
}

// FromConfig wraps a legacy Config as a Job, the bridge for callers
// migrating off Run(cfg).
func FromConfig(cfg Config) *Job { return &Job{cfg: cfg} }

// WithServers sets the server count (weak scaling, §3.1).
func WithServers(n int) Option { return func(c *Config) { c.NumServers = n } }

// WithGPUs sets GPUs per server (default: all of the SKU's).
func WithGPUs(n int) Option { return func(c *Config) { c.GPUsPerServer = n } }

// WithBatch sets the per-GPU minibatch size (default: the SKU's reference
// batch for the model).
func WithBatch(n int) Option { return func(c *Config) { c.Batch = n } }

// WithEpochs sets the epoch count (default 3; the first epoch is cold-cache
// warmup).
func WithEpochs(n int) Option { return func(c *Config) { c.Epochs = n } }

// WithThreadsPerGPU sets prep threads per GPU (default: fair core share).
func WithThreadsPerGPU(n int) Option { return func(c *Config) { c.ThreadsPerGPU = n } }

// WithFramework selects the DALI or native-PyTorch prep cost model.
func WithFramework(fw prep.Framework) Option { return func(c *Config) { c.Framework = fw } }

// WithGPUPrep controls DALI's GPU-side prep pipeline.
func WithGPUPrep(m GPUPrepMode) Option { return func(c *Config) { c.GPUPrep = m } }

// WithLoader selects the data-loading baseline or CoorDL.
func WithLoader(k loader.Kind) Option { return func(c *Config) { c.Loader = k } }

// WithFetchMode overrides fetching for DS-Analyzer's differential phases.
func WithFetchMode(m FetchMode) Option { return func(c *Config) { c.FetchMode = m } }

// WithCacheBytes sets the per-server cache capacity (default: SKU budget).
func WithCacheBytes(b float64) Option { return func(c *Config) { c.CacheBytes = b } }

// WithPrefetchDepth sets the per-GPU staging queue depth in batches.
func WithPrefetchDepth(n int) Option { return func(c *Config) { c.PrefetchDepth = n } }

// WithSeed seeds all randomized components (default 1).
func WithSeed(s int64) Option { return func(c *Config) { c.Seed = s } }

// WithBackend selects the analytic simulation (default) or the concurrent
// goroutine backend.
func WithBackend(b Backend) Option { return func(c *Config) { c.Backend = b } }

// WithCacheShards sets the concurrent backend's lock-stripe count.
func WithCacheShards(n int) Option { return func(c *Config) { c.CacheShards = n } }

// WithRecordBytes selects the TFRecord-style serialized format (§3.3.3)
// with record files of the given size.
func WithRecordBytes(b float64) Option { return func(c *Config) { c.RecordBytes = b } }

// WithoutRemoteFetch disables partitioned caching's remote path in
// distributed CoorDL jobs (the local-MinIO-only ablation).
func WithoutRemoteFetch() Option { return func(c *Config) { c.DisableRemoteFetch = true } }

// Validation sentinels. Job.Validate (and Job.Run) return a *FieldError
// wrapping one of these, so callers can both match the failure class with
// errors.Is and recover the offending field name.
var (
	// ErrMissingModel: no *gpu.Model was supplied.
	ErrMissingModel = errors.New("model is required")
	// ErrMissingDataset: no *dataset.Dataset was supplied.
	ErrMissingDataset = errors.New("dataset is required")
	// ErrBadServers: non-positive server count.
	ErrBadServers = errors.New("server count must be >= 1")
	// ErrBadGPUs: GPU count outside [1, SKU GPUs].
	ErrBadGPUs = errors.New("GPU count outside the server's range")
	// ErrBadBatch: negative per-GPU batch size.
	ErrBadBatch = errors.New("batch size must be >= 0")
	// ErrBadEpochs: negative epoch count.
	ErrBadEpochs = errors.New("epoch count must be >= 0")
	// ErrBadThreads: negative prep-thread count.
	ErrBadThreads = errors.New("prep threads per GPU must be >= 0")
	// ErrBadCache: negative cache capacity.
	ErrBadCache = errors.New("cache bytes must be >= 0")
	// ErrBadPrefetch: negative prefetch depth.
	ErrBadPrefetch = errors.New("prefetch depth must be >= 0")
	// ErrBadRecordBytes: negative TFRecord file size.
	ErrBadRecordBytes = errors.New("record bytes must be >= 0")
	// ErrBadBackend: Backend is neither BackendAnalytic nor
	// BackendConcurrent.
	ErrBadBackend = errors.New("unknown backend")
	// ErrUnsupported: the field combination is individually valid but has
	// no implementation (e.g. TFRecord on the concurrent backend).
	ErrUnsupported = errors.New("unsupported configuration")
)

// FieldError is a typed validation failure: Field names the offending
// Job/Config field and Unwrap yields the matching sentinel (ErrMissingModel,
// ErrBadGPUs, ...).
type FieldError struct {
	// Field is the Config field name, e.g. "GPUsPerServer".
	Field string
	// Err is the sentinel classifying the failure.
	Err error
	// Detail elaborates with the offending values.
	Detail string
}

// Error implements error.
func (e *FieldError) Error() string {
	s := "trainer: " + e.Field + ": " + e.Err.Error()
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Unwrap yields the sentinel for errors.Is.
func (e *FieldError) Unwrap() error { return e.Err }

func fieldErr(field string, sentinel error, format string, args ...interface{}) *FieldError {
	return &FieldError{Field: field, Err: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// Validate checks the job's option combination and returns a typed
// *FieldError for the first invalid field, or nil. Zero-valued knobs are
// valid (they resolve to defaults); explicitly out-of-range ones are not.
func (j *Job) Validate() error { return validateJob(j.cfg) }

// validateJob is the typed validation shared by Job.Validate and Job.Run.
// It checks the raw (pre-default) config: zero means "use the default" and
// passes; negatives and impossible combinations fail.
func validateJob(c Config) error {
	if c.Model == nil {
		return fieldErr("Model", ErrMissingModel, "pass a *gpu.Model to trainer.New")
	}
	if c.Dataset == nil {
		return fieldErr("Dataset", ErrMissingDataset, "pass a *dataset.Dataset to trainer.New")
	}
	if c.NumServers < 0 {
		return fieldErr("NumServers", ErrBadServers, "got %d", c.NumServers)
	}
	if c.GPUsPerServer < 0 || c.GPUsPerServer > c.Spec.NumGPUs {
		return fieldErr("GPUsPerServer", ErrBadGPUs,
			"got %d on a %d-GPU server", c.GPUsPerServer, c.Spec.NumGPUs)
	}
	if c.Batch < 0 {
		return fieldErr("Batch", ErrBadBatch, "got %d", c.Batch)
	}
	if c.Epochs < 0 {
		return fieldErr("Epochs", ErrBadEpochs, "got %d", c.Epochs)
	}
	if c.ThreadsPerGPU < 0 {
		return fieldErr("ThreadsPerGPU", ErrBadThreads, "got %d", c.ThreadsPerGPU)
	}
	if c.CacheBytes < 0 {
		return fieldErr("CacheBytes", ErrBadCache, "got %g", c.CacheBytes)
	}
	if c.PrefetchDepth < 0 {
		return fieldErr("PrefetchDepth", ErrBadPrefetch, "got %d", c.PrefetchDepth)
	}
	if c.RecordBytes < 0 {
		return fieldErr("RecordBytes", ErrBadRecordBytes, "got %g", c.RecordBytes)
	}
	if c.Backend != BackendAnalytic && c.Backend != BackendConcurrent {
		return fieldErr("Backend", ErrBadBackend, "got %d", int(c.Backend))
	}
	if c.Backend == BackendConcurrent && c.RecordBytes > 0 {
		return fieldErr("RecordBytes", ErrUnsupported,
			"TFRecord format is not supported by the concurrent backend")
	}
	return nil
}

// Config returns the job's fully resolved configuration: every zero-valued
// knob replaced by the default Run would apply.
func (j *Job) Config() Config { return j.cfg.withDefaults() }

// Run executes the job. It honors ctx on both backends — the analytic
// simulation polls for cancellation between events and the concurrent
// pipeline selects on ctx at its channel sends — returning ctx.Err() when
// cancelled (promptly, even with an already-cancelled context). Observers
// receive typed progress events (JobStarted, EpochStarted, EpochEnded,
// JobEnded) streamed during execution; pass DiskTraceObserver() /
// CPUTraceObserver() to enable the Result's time-series traces.
func (j *Job) Run(ctx context.Context, obs ...Observer) (*Result, error) {
	if err := validateJob(j.cfg); err != nil {
		return nil, err
	}
	cfg := j.cfg.withDefaults()
	// Defaulting can push a combination out of range (e.g. epochs forced to
	// a dataset too small); reuse the legacy checks for those.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return runJob(ctx, cfg, obs)
}
