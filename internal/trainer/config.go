// Package trainer runs simulated DNN training jobs: it wires the dataset
// sampler, fetcher, pre-processing pipeline and GPU consumers into a
// discrete-event simulation and reports per-epoch timing, stall, and I/O
// statistics. It implements both single/multi-server data-parallel jobs and
// concurrent hyper-parameter-search jobs (with or without CoorDL's
// coordinated prep).
//
// The primary entry point is the Job API:
//
//	job := trainer.New(model, ds, spec,
//		trainer.WithEpochs(3),
//		trainer.WithLoader(loader.CoorDL),
//		trainer.WithCacheBytes(0.35*ds.TotalBytes))
//	if err := job.Validate(); err != nil { ... } // typed *FieldError
//	res, err := job.Run(ctx, trainer.NewConsoleObserver(os.Stderr))
//
// Jobs are built with functional options, validated explicitly (Validate
// returns a *FieldError wrapping a sentinel like ErrBadGPUs, matchable with
// errors.Is), executed under a context — cancellation propagates into both
// backends, so Run returns ctx.Err() promptly even mid-epoch — and observed
// while running: Observers receive typed events (JobStarted, EpochStarted,
// EpochEnded with per-epoch stats and cache occupancy, JobEnded) streamed
// as the simulation advances. The built-in DiskTraceObserver and
// CPUTraceObserver enable the Result's time-series traces; they are the
// only way to request traces (the old Config.TraceDiskIO/TraceCPU flags
// are gone).
//
// Run(cfg Config) and RunConcurrent(cc) remain as thin blocking shims over
// the same execution path for existing callers — byte-identical output,
// no cancellation, no events. They are the deprecation path: new code
// should use New(...).Run(ctx, ...) or the ctx-aware RunContext /
// RunConcurrentContext, and the shims will eventually be retired with the
// remaining flag-style Config knobs they exist to serve.
package trainer

import (
	"fmt"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/stats"
)

// FetchMode selects how data reaches the pipeline; the non-Normal modes are
// DS-Analyzer's differential phases (§3.2).
type FetchMode int

// Fetch modes.
const (
	// Normal fetches through the configured loader's cache hierarchy.
	Normal FetchMode = iota
	// Synthetic pre-populates data at the GPU: no fetch, no prep
	// (DS-Analyzer phase 1, measures pure ingestion rate G).
	Synthetic
	// FullyCached serves every item from DRAM (phase 2, isolates prep).
	FullyCached
)

// Backend selects how a job is executed.
type Backend int

// Execution backends. Both drive the same samplers, cache policies, and
// prep-cost model; they differ in what "time" means.
const (
	// BackendAnalytic runs the discrete-event simulation (the default):
	// single-threaded, deterministic, and timed by the hardware model.
	// All paper reproductions use this backend.
	BackendAnalytic Backend = iota
	// BackendConcurrent executes the data-loading path for real: a
	// goroutine fetch->prep worker pipeline per server over sharded,
	// goroutine-safe caches. Cache statistics match the analytic backend
	// (exactly, for MinIO over equal-sized items); Duration is host
	// wall-clock, and compute/stall times are not modeled.
	BackendConcurrent
)

// String returns the backend name.
func (b Backend) String() string {
	if b == BackendConcurrent {
		return "concurrent"
	}
	return "analytic"
}

// GPUPrepMode controls DALI's GPU-side pre-processing pipeline.
type GPUPrepMode int

// GPU prep modes.
const (
	// GPUPrepAuto picks the faster of CPU-only and GPU-assisted prep,
	// matching the paper's best-of methodology.
	GPUPrepAuto GPUPrepMode = iota
	GPUPrepOff
	GPUPrepOn
)

// Config describes one training job.
type Config struct {
	Model   *gpu.Model
	Dataset *dataset.Dataset
	Spec    cluster.ServerSpec

	// NumServers and GPUsPerServer size the job (weak scaling, §3.1).
	NumServers    int
	GPUsPerServer int

	// Batch is the per-GPU minibatch size (0 = the SKU's reference batch).
	Batch int
	// Epochs to run; the first epoch is cold-cache warmup and excluded
	// from steady-state metrics (§3.1).
	Epochs int

	// ThreadsPerGPU is the number of prep threads per GPU (0 = the SKU's
	// fair share: physical cores / GPUs).
	ThreadsPerGPU int
	// Framework selects DALI or the native PyTorch loader prep path.
	Framework prep.Framework
	// GPUPrep controls DALI GPU-side prep.
	GPUPrep GPUPrepMode

	// Loader picks the data-loading baseline or CoorDL.
	Loader loader.Kind
	// FetchMode overrides fetching for DS-Analyzer phases.
	FetchMode FetchMode
	// CacheBytes is the per-server cache capacity (0 = SKU default).
	CacheBytes float64
	// PrefetchDepth is the per-GPU staging queue depth in batches.
	PrefetchDepth int

	Seed int64

	// Backend selects analytic simulation (default) or real concurrent
	// execution of the loading path.
	Backend Backend
	// CacheShards is the lock-stripe count for the concurrent backend's
	// sharded caches (0 = cache.DefaultShards). Ignored by the analytic
	// backend.
	CacheShards int

	// RecordBytes > 0 selects the TFRecord-style serialized format
	// (§3.3.3): items are packed into record files of this size, read
	// sequentially, cached at record granularity.
	RecordBytes float64
	// DisableRemoteFetch turns off partitioned caching's remote path in
	// distributed CoorDL jobs (ablation: local MinIO caches only).
	DisableRemoteFetch bool
}

func (c Config) withDefaults() Config {
	if c.NumServers == 0 {
		c.NumServers = 1
	}
	if c.GPUsPerServer == 0 {
		c.GPUsPerServer = c.Spec.NumGPUs
	}
	if c.Batch == 0 {
		c.Batch = c.Model.RefBatch(c.Spec.Gen)
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.ThreadsPerGPU == 0 {
		c.ThreadsPerGPU = c.Spec.PhysicalCores / c.GPUsPerServer
		if c.ThreadsPerGPU < 1 {
			c.ThreadsPerGPU = 1
		}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = c.Spec.CacheBytes
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Model == nil || c.Dataset == nil {
		return fmt.Errorf("trainer: model and dataset are required")
	}
	if c.GPUsPerServer > c.Spec.NumGPUs {
		return fmt.Errorf("trainer: %d GPUs requested on a %d-GPU server",
			c.GPUsPerServer, c.Spec.NumGPUs)
	}
	if c.NumServers < 1 || c.Epochs < 1 {
		return fmt.Errorf("trainer: need >= 1 server and epoch")
	}
	if c.Backend == BackendConcurrent && c.RecordBytes > 0 {
		return fmt.Errorf("trainer: TFRecord format is not supported by the concurrent backend")
	}
	return nil
}

// prepConfig resolves the pre-processing configuration for one GPU's share
// of the job.
func (c Config) prepConfig() prep.Config {
	physPerGPU := c.Spec.PhysicalCores / c.GPUsPerServer
	if physPerGPU < 1 {
		physPerGPU = 1
	}
	if physPerGPU > c.ThreadsPerGPU {
		physPerGPU = c.ThreadsPerGPU
	}
	pc := prep.Config{
		Framework:     c.Framework,
		Threads:       c.ThreadsPerGPU,
		PhysicalCores: physPerGPU,
		NumGPUs:       1,
		Gen:           c.Spec.Gen,
	}
	switch c.GPUPrep {
	case GPUPrepOn:
		pc.GPUPrep = true
	case GPUPrepAuto:
		if c.Framework == prep.DALI {
			best := prep.BestConfig(c.Model, c.Spec.Gen, c.ThreadsPerGPU, physPerGPU,
				1, c.Batch, c.Dataset.AvgItemBytes())
			pc.GPUPrep = best.GPUPrep
		}
	}
	return pc
}

// EpochStats reports one epoch of one job.
type EpochStats struct {
	// Duration is wall-clock (simulated) epoch time in seconds.
	Duration float64
	// ComputeTime is the per-GPU busy time (compute + unoverlapped
	// communication) during the epoch.
	ComputeTime float64
	// StallTime = Duration - ComputeTime: unmasked data-stall time (§2).
	StallTime float64
	// I/O broken down by source.
	DiskBytes, NetBytes, MemBytes float64
	DiskReads                     int
	// Cache behaviour.
	Hits, Misses, RemoteHits int
	Samples                  int
	// CacheUsedBytes is the cache occupancy (bytes resident across the
	// job's caches) when the epoch ended; 0 for fetch paths with no cache
	// (Synthetic, FullyCached) and for the coordinated HP-search runtime.
	CacheUsedBytes float64
}

// StallFraction returns StallTime/Duration.
func (e EpochStats) StallFraction() float64 {
	if e.Duration == 0 {
		return 0
	}
	return e.StallTime / e.Duration
}

// Result reports a finished job.
type Result struct {
	Epochs []EpochStats

	// Steady-state metrics (average over epochs after the first).
	EpochTime     float64
	Throughput    float64 // samples/s
	StallFraction float64
	DiskPerEpoch  float64 // bytes
	NetPerEpoch   float64 // bytes
	HitRate       float64
	SamplesPerSec float64 // alias of Throughput

	// Traces (enabled via Config).
	DiskTrace *stats.TimeSeries
	CPUTrace  *stats.TimeSeries

	// TotalDiskBytes across the whole run (including warmup).
	TotalDiskBytes float64
	TotalNetBytes  float64
	TotalTime      float64

	// PrepBusySeconds is the modeled prep time accumulated by the
	// concurrent backend's prep pools (zero under the analytic backend,
	// which accounts prep inside the simulation clock).
	PrepBusySeconds float64
}

// steadyState fills the aggregate fields from Epochs.
func (r *Result) steadyState() {
	if len(r.Epochs) == 0 {
		return
	}
	start := 1
	if len(r.Epochs) == 1 {
		start = 0
	}
	n := 0.0
	for _, e := range r.Epochs[start:] {
		r.EpochTime += e.Duration
		r.DiskPerEpoch += e.DiskBytes
		r.NetPerEpoch += e.NetBytes
		r.StallFraction += e.StallFraction()
		if e.Hits+e.Misses > 0 {
			r.HitRate += float64(e.Hits) / float64(e.Hits+e.Misses)
		}
		r.Throughput += float64(e.Samples) / e.Duration
		n++
	}
	r.EpochTime /= n
	r.DiskPerEpoch /= n
	r.NetPerEpoch /= n
	r.StallFraction /= n
	r.HitRate /= n
	r.Throughput /= n
	r.SamplesPerSec = r.Throughput
}
