package trainer

import "testing"

func TestPhaseBreakdown(t *testing.T) {
	e := EpochStats{
		Duration:    10,
		ComputeTime: 6,
		StallTime:   4,
		DiskBytes:   300e6,
		NetBytes:    100e6,
	}
	// 300 MB at 100 MB/s + 100 MB at 100 MB/s = 4 s of I/O, exactly the
	// stall budget: all stall is fetch.
	gpu, fetch, prep := e.PhaseBreakdown(100e6, 100e6)
	if gpu != 6 || fetch != 4 || prep != 0 {
		t.Fatalf("got gpu=%v fetch=%v prep=%v, want 6 4 0", gpu, fetch, prep)
	}

	// Faster devices leave stall unexplained by I/O: the rest is prep.
	gpu, fetch, prep = e.PhaseBreakdown(400e6, 400e6)
	if gpu != 6 || fetch != 1 || prep != 3 {
		t.Fatalf("got gpu=%v fetch=%v prep=%v, want 6 1 3", gpu, fetch, prep)
	}

	// Phases always repartition compute+stall exactly.
	if sum := gpu + fetch + prep; sum != e.ComputeTime+e.StallTime {
		t.Fatalf("phases sum to %v, want %v", sum, e.ComputeTime+e.StallTime)
	}

	// I/O exceeding the stall budget is capped: fetch can never exceed
	// the recorded stall.
	_, fetch, prep = e.PhaseBreakdown(1e6, 0)
	if fetch != 4 || prep != 0 {
		t.Fatalf("got fetch=%v prep=%v, want capped 4 0", fetch, prep)
	}

	// Zero bandwidths (cacheless fetch paths) contribute no fetch time.
	_, fetch, prep = e.PhaseBreakdown(0, 0)
	if fetch != 0 || prep != 4 {
		t.Fatalf("got fetch=%v prep=%v, want 0 4", fetch, prep)
	}
}
