package trainer

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
)

func jobModel(t testing.TB) *gpu.Model {
	t.Helper()
	return gpu.MustByName("resnet18")
}

func jobDataset() *dataset.Dataset { return dataset.ImageNet1K.Scale(0.01) }

// TestJobValidateTypedErrors drives the option combinatorics: every invalid
// field yields its sentinel (matchable with errors.Is) and a *FieldError
// naming the field.
func TestJobValidateTypedErrors(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	cases := []struct {
		name  string
		job   *Job
		want  error
		field string
	}{
		{"missing model", New(nil, d, spec), ErrMissingModel, "Model"},
		{"missing dataset", New(m, nil, spec), ErrMissingDataset, "Dataset"},
		{"negative servers", New(m, d, spec, WithServers(-1)), ErrBadServers, "NumServers"},
		{"negative gpus", New(m, d, spec, WithGPUs(-2)), ErrBadGPUs, "GPUsPerServer"},
		{"too many gpus", New(m, d, spec, WithGPUs(spec.NumGPUs+1)), ErrBadGPUs, "GPUsPerServer"},
		{"negative batch", New(m, d, spec, WithBatch(-8)), ErrBadBatch, "Batch"},
		{"negative epochs", New(m, d, spec, WithEpochs(-1)), ErrBadEpochs, "Epochs"},
		{"negative threads", New(m, d, spec, WithThreadsPerGPU(-3)), ErrBadThreads, "ThreadsPerGPU"},
		{"negative cache", New(m, d, spec, WithCacheBytes(-1)), ErrBadCache, "CacheBytes"},
		{"negative prefetch", New(m, d, spec, WithPrefetchDepth(-1)), ErrBadPrefetch, "PrefetchDepth"},
		{"negative record bytes", New(m, d, spec, WithRecordBytes(-1)), ErrBadRecordBytes, "RecordBytes"},
		{"unknown backend", New(m, d, spec, WithBackend(Backend(7))), ErrBadBackend, "Backend"},
		{"tfrecord on concurrent", New(m, d, spec,
			WithBackend(BackendConcurrent), WithRecordBytes(1024)), ErrUnsupported, "RecordBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.job.Validate()
			if err == nil {
				t.Fatal("want a validation error, got nil")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FieldError", err)
			}
			if fe.Field != tc.field {
				t.Fatalf("field %q, want %q", fe.Field, tc.field)
			}
			// Run must refuse the same way, without executing anything.
			if _, rerr := tc.job.Run(context.Background()); !errors.Is(rerr, tc.want) {
				t.Fatalf("Run error %v, want %v", rerr, tc.want)
			}
		})
	}

	// The zero-valued knobs are all valid: they resolve to defaults.
	ok := New(m, d, spec)
	if err := ok.Validate(); err != nil {
		t.Fatalf("default job invalid: %v", err)
	}
	if cfg := ok.Config(); cfg.Epochs != 3 || cfg.GPUsPerServer != spec.NumGPUs {
		t.Fatalf("defaults not resolved: %+v", cfg)
	}
}

// TestJobRunMatchesLegacyShim proves the legacy Run(cfg) shim and the Job
// API are one execution path: identical results, field for field.
func TestJobRunMatchesLegacyShim(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	cfg := Config{
		Model: m, Dataset: d, Spec: spec,
		Loader: loader.CoorDL, CacheBytes: 0.35 * d.TotalBytes,
		Epochs: 3, Seed: 9,
	}
	legacy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := New(m, d, spec,
		WithLoader(loader.CoorDL),
		WithCacheBytes(0.35*d.TotalBytes),
		WithEpochs(3),
		WithSeed(9),
	)
	viaJob, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, viaJob) {
		t.Fatalf("shim and Job results diverge:\nlegacy: %+v\njob:    %+v", legacy, viaJob)
	}
}

// recorder captures the event stream for sequence assertions.
type recorder struct{ events []Event }

func (r *recorder) Observe(ev Event) { r.events = append(r.events, ev) }

// TestObserverEventSequence asserts the stream's shape — JobStarted,
// (EpochStarted, EpochEnded) per epoch, JobEnded — and that each
// EpochEnded's stats equal the matching Result.Epochs entry.
func TestObserverEventSequence(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	epochs := 3
	for _, backend := range []Backend{BackendAnalytic, BackendConcurrent} {
		rec := &recorder{}
		job := New(m, d, spec,
			WithLoader(loader.CoorDL),
			WithCacheBytes(0.35*d.TotalBytes),
			WithEpochs(epochs),
			WithBackend(backend),
		)
		res, err := job.Run(context.Background(), rec)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		want := 2 + 2*epochs // JobStarted + per-epoch pair + JobEnded
		if len(rec.events) != want {
			t.Fatalf("%v: %d events, want %d: %#v", backend, len(rec.events), want, rec.events)
		}
		js, ok := rec.events[0].(JobStarted)
		if !ok || js.Epochs != epochs || js.Backend != backend {
			t.Fatalf("%v: first event %#v, want JobStarted", backend, rec.events[0])
		}
		for e := 0; e < epochs; e++ {
			es, ok := rec.events[1+2*e].(EpochStarted)
			if !ok || es.Epoch != e {
				t.Fatalf("%v: event %d = %#v, want EpochStarted{%d}", backend, 1+2*e, rec.events[1+2*e], e)
			}
			ee, ok := rec.events[2+2*e].(EpochEnded)
			if !ok || ee.Epoch != e {
				t.Fatalf("%v: event %d = %#v, want EpochEnded{%d}", backend, 2+2*e, rec.events[2+2*e], e)
			}
			if backend == BackendAnalytic && ee.Stats != res.Epochs[e] {
				t.Fatalf("%v: epoch %d streamed stats %+v != result %+v", backend, e, ee.Stats, res.Epochs[e])
			}
			// CoorDL populates its cache in epoch 0, so occupancy at every
			// epoch boundary must be positive.
			if ee.CacheUsedBytes <= 0 {
				t.Fatalf("%v: epoch %d cache occupancy %g, want > 0", backend, e, ee.CacheUsedBytes)
			}
		}
		if je, ok := rec.events[len(rec.events)-1].(JobEnded); !ok || je.Result != res {
			t.Fatalf("%v: last event %#v, want JobEnded with the result", backend, rec.events[len(rec.events)-1])
		}
	}
}

// TestObserverTraceMarkersEnableTraces: the built-in observers subsume the
// legacy TraceDiskIO/TraceCPU flags.
func TestObserverTraceMarkersEnableTraces(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	job := New(m, d, spec, WithLoader(loader.CoorDL), WithCacheBytes(0.35*d.TotalBytes), WithEpochs(2))
	res, err := job.Run(context.Background(), DiskTraceObserver(), CPUTraceObserver())
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskTrace == nil || res.DiskTrace.Len() == 0 {
		t.Fatal("DiskTraceObserver did not enable the disk trace")
	}
	if res.CPUTrace == nil || res.CPUTrace.Len() == 0 {
		t.Fatal("CPUTraceObserver did not enable the CPU trace")
	}
}

// TestRunCancelledBeforeStart: a job launched with an already-cancelled
// context returns context.Canceled promptly on both backends.
func TestRunCancelledBeforeStart(t *testing.T) {
	m, d, spec := jobModel(t), jobDataset(), cluster.ConfigSSDV100()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, backend := range []Backend{BackendAnalytic, BackendConcurrent} {
		job := New(m, d, spec, WithLoader(loader.CoorDL),
			WithCacheBytes(0.35*d.TotalBytes), WithBackend(backend))
		start := time.Now()
		res, err := job.Run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", backend, err)
		}
		if res != nil {
			t.Fatalf("%v: got a result from a cancelled run", backend)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%v: cancelled run took %v", backend, elapsed)
		}
	}
}

// TestRunCancelMidEpoch cancels from inside the event stream (first
// EpochEnded) and requires both backends to abort with ctx.Err() instead of
// finishing the remaining epochs. The small batch keeps each remaining
// epoch well past the engine's cancellation-poll interval, so the abort
// must land mid-run, not at the end.
func TestRunCancelMidEpoch(t *testing.T) {
	m, spec := jobModel(t), cluster.ConfigSSDV100()
	d := dataset.ImageNet1K.Scale(0.02)
	for _, backend := range []Backend{BackendAnalytic, BackendConcurrent} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		cancelOnFirstEpoch := ObserverFunc(func(ev Event) {
			if _, ok := ev.(EpochEnded); ok {
				seen++
				cancel()
			}
		})
		job := New(m, d, spec, WithLoader(loader.CoorDL), WithBatch(16),
			WithCacheBytes(0.35*d.TotalBytes), WithEpochs(4), WithBackend(backend))
		res, err := job.Run(ctx, cancelOnFirstEpoch)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", backend, err)
		}
		if res != nil {
			t.Fatalf("%v: got a result from a cancelled run", backend)
		}
		if seen == 0 || seen >= 4 {
			t.Fatalf("%v: saw %d EpochEnded events, want an aborted run (1..3)", backend, seen)
		}
	}
}

// TestRunConcurrentContextCancelled: the HP-search entry point honors an
// already-cancelled context too.
func TestRunConcurrentContextCancelled(t *testing.T) {
	m, d := jobModel(t), jobDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunConcurrentContext(ctx, ConcurrentConfig{
		Base: Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			CacheBytes: 0.35 * d.TotalBytes, Batch: 128,
		},
		NumJobs: 2, GPUsPerJob: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunConcurrentContextCancelMidRun: cancelling a running HP-search
// simulation kills it through the engine's poll.
func TestRunConcurrentContextCancelMidRun(t *testing.T) {
	m, d := jobModel(t), jobDataset()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// Enough epochs that the run cannot finish before the cancel lands on
	// this hardware; if it somehow does, the test still passes vacuously
	// on the error check below being nil — so assert on timing instead.
	start := time.Now()
	_, err := RunConcurrentContext(ctx, ConcurrentConfig{
		Base: Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			CacheBytes: 0.35 * d.TotalBytes, Batch: 128, Epochs: 400,
		},
		NumJobs: 8, GPUsPerJob: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (run took %v)", err, time.Since(start))
	}
}
