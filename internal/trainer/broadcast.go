// Broadcast fan-out: a Broadcaster multiplexes one job's Observer event
// stream to any number of dynamically attached subscribers without ever
// blocking the emitting job. Observers are called synchronously from the
// simulation goroutine (see Observer), so a subscriber that stops reading —
// a stalled network client, say — must not be able to stall the engine:
// each subscription owns a fixed-size ring that drops its oldest buffered
// event on overflow (so the most recent events, including the terminal
// JobEnded, always win) and counts what it dropped.
package trainer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSubscriptionClosed is returned by Subscription.Next once the
// broadcaster has been closed and every buffered event has been drained.
var ErrSubscriptionClosed = errors.New("trainer: subscription closed")

// DefaultSubscriberBuffer is the per-subscription ring capacity used when
// Subscribe is given a non-positive size.
const DefaultSubscriberBuffer = 64

// Broadcaster is an Observer that fans events out to subscribers. The zero
// value is not usable; call NewBroadcaster. Observe never blocks and never
// allocates per subscriber beyond the ring slot, so a Broadcaster can sit
// directly on a job's hot event path.
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBroadcaster returns an empty Broadcaster ready to Observe.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: map[*Subscription]struct{}{}}
}

// Observe implements Observer: the event is offered to every live
// subscription. A full subscription drops its oldest buffered event to make
// room, so Observe completes in O(subscribers) regardless of how slowly any
// subscriber reads.
func (b *Broadcaster) Observe(ev Event) {
	b.published.Add(1)
	b.mu.Lock()
	for s := range b.subs {
		if s.offer(ev) {
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Subscribe attaches a new subscription with a ring of the given capacity
// (<= 0 selects DefaultSubscriberBuffer). Subscribing to a closed
// broadcaster yields a subscription whose Next immediately reports
// ErrSubscriptionClosed.
func (b *Broadcaster) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{
		b:      b,
		ring:   make([]Event, buffer),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	if b.closed {
		close(s.done)
	} else {
		b.subs[s] = struct{}{}
	}
	b.mu.Unlock()
	return s
}

// Close marks the stream finished: subscribers drain whatever is buffered
// and then see ErrSubscriptionClosed. Close is idempotent and safe to call
// concurrently with Observe (events observed after Close are discarded).
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := b.subs
	b.subs = map[*Subscription]struct{}{}
	b.mu.Unlock()
	for s := range subs {
		close(s.done)
	}
}

// Published returns the number of events observed so far.
func (b *Broadcaster) Published() uint64 { return b.published.Load() }

// Dropped returns the total events dropped across all subscriptions
// (one drop counted per subscription that had to overwrite).
func (b *Broadcaster) Dropped() uint64 { return b.dropped.Load() }

// Subscribers returns the current number of live subscriptions.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscription is one reader of a Broadcaster's event stream.
type Subscription struct {
	b *Broadcaster

	mu      sync.Mutex
	ring    []Event
	head, n int
	dropped uint64

	notify chan struct{} // cap 1: "the ring may be non-empty"
	done   chan struct{} // closed by Broadcaster.Close / Cancel
	once   sync.Once
}

// offer appends ev, overwriting the oldest buffered event when full;
// reports whether an event was dropped. Called with b.mu held (so offer
// never races Close's detach), but takes s.mu because Next pops
// concurrently.
func (s *Subscription) offer(ev Event) (dropped bool) {
	s.mu.Lock()
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
		dropped = true
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return dropped
}

// Next blocks until an event is available and returns it. It returns
// ctx.Err() if ctx expires first, and ErrSubscriptionClosed once the
// broadcaster is closed (or the subscription cancelled) and the buffer is
// drained — buffered events are always delivered before the close.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.ring[s.head]
			s.ring[s.head] = nil // let the event be collected
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			s.mu.Unlock()
			return ev, nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.notify:
		case <-s.done:
			// Re-check the ring: an offer may have landed between the
			// empty check and the close.
			s.mu.Lock()
			empty := s.n == 0
			s.mu.Unlock()
			if empty {
				return nil, ErrSubscriptionClosed
			}
		}
	}
}

// Dropped returns how many events this subscription lost to overflow.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscription; pending buffered events remain
// drainable via Next. Safe to call more than once.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	_, live := s.b.subs[s]
	delete(s.b.subs, s)
	s.b.mu.Unlock()
	if live {
		s.once.Do(func() { close(s.done) })
	}
}

// Annotation is a freeform Observer event for the layers above the trainer:
// the declarative spec runner and the HTTP job service interleave their own
// progress markers (e.g. "case_started" for one cell of a sweep) into a
// job's event stream, in stream order, without the trainer knowing their
// vocabulary. Kind names the marker; Text, Index and Total are
// marker-defined.
type Annotation struct {
	Time  float64
	Kind  string
	Text  string
	Index int
	Total int
}

func (Annotation) isEvent() {}
