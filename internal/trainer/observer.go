package trainer

import (
	"fmt"
	"io"
)

// Event is a typed progress notification streamed to Observers while a Job
// runs. Concrete events are JobStarted, EpochStarted, EpochEnded and
// JobEnded. Times are simulated seconds under BackendAnalytic and host
// wall-clock seconds since the job started under BackendConcurrent.
type Event interface{ isEvent() }

// JobStarted is emitted once, before the first epoch begins.
type JobStarted struct {
	Time float64
	// Epochs, Servers and GPUsPerServer are the resolved (defaulted) job
	// shape.
	Epochs        int
	Servers       int
	GPUsPerServer int
	Backend       Backend
}

// EpochStarted is emitted when an epoch's first iteration may begin.
type EpochStarted struct {
	Time  float64
	Epoch int
}

// EpochEnded is emitted at an epoch's final synchronization point with that
// epoch's statistics: timing, stall time, and the fetch counters (cache
// hits/misses, disk and network bytes) accumulated during the epoch.
type EpochEnded struct {
	Time  float64
	Epoch int
	// Stats is the finished epoch's statistics, identical to the matching
	// entry of the final Result.Epochs.
	Stats EpochStats
	// CacheUsedBytes is the fetcher's cache occupancy (summed across
	// servers) at the epoch boundary; zero when the configured fetch path
	// has no cache (Synthetic/FullyCached) or does not report occupancy.
	CacheUsedBytes float64
}

// JobEnded is emitted once, after the last epoch, with the final Result.
type JobEnded struct {
	Time   float64
	Result *Result
}

func (JobStarted) isEvent()   {}
func (EpochStarted) isEvent() {}
func (EpochEnded) isEvent()   {}
func (JobEnded) isEvent()     {}

// Observer receives Events during Job.Run. Observe is called synchronously
// from the run (on the simulation goroutine under BackendAnalytic), in
// event order; implementations must not block on the job itself.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// NewConsoleObserver returns an Observer that renders one line per event to
// w — the standard progress stream for CLIs (`runsuite -progress`).
func NewConsoleObserver(w io.Writer) Observer {
	return ObserverFunc(func(ev Event) {
		switch e := ev.(type) {
		case JobStarted:
			fmt.Fprintf(w, "job: %d epoch(s), %d server(s) x %d GPU(s), %s backend\n",
				e.Epochs, e.Servers, e.GPUsPerServer, e.Backend)
		case EpochStarted:
			fmt.Fprintf(w, "epoch %d: started t=%.2fs\n", e.Epoch, e.Time)
		case EpochEnded:
			hits, misses := e.Stats.Hits, e.Stats.Misses
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			fmt.Fprintf(w, "epoch %d: %.2fs, stall %.1f%%, hit %.1f%%, disk %.1f MiB, cache %.1f MiB\n",
				e.Epoch, e.Stats.Duration, 100*e.Stats.StallFraction(), hitPct,
				e.Stats.DiskBytes/(1024*1024), e.CacheUsedBytes/(1024*1024))
		case JobEnded:
			fmt.Fprintf(w, "job done: %d epoch(s) in %.2fs\n", len(e.Result.Epochs), e.Time)
		}
	})
}

// DiskTraceObserver returns the built-in observer that enables disk-I/O
// time-series collection (Result.DiskTrace); it replaced the removed
// Config.TraceDiskIO flag.
func DiskTraceObserver() Observer { return diskTraceObserver{} }

// CPUTraceObserver returns the built-in observer that enables prep-CPU
// time-series collection (Result.CPUTrace); it replaced the removed
// Config.TraceCPU flag.
func CPUTraceObserver() Observer { return cpuTraceObserver{} }

type diskTraceObserver struct{}
type cpuTraceObserver struct{}

func (diskTraceObserver) Observe(Event) {}
func (cpuTraceObserver) Observe(Event)  {}

// observers is the fan-out list attached to a running job.
type observers []Observer

func (o observers) emit(ev Event) {
	for _, ob := range o {
		ob.Observe(ev)
	}
}

// cacheSizer is implemented by fetchers that can report cache occupancy
// (summed across servers); EpochEnded.CacheUsedBytes comes from here.
type cacheSizer interface {
	CacheUsedBytes() float64
}
