package trainer

import (
	"context"
	"math"
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/stats"
)

// small returns a scaled dataset for fast end-to-end runs.
func small(d *dataset.Dataset, f float64) *dataset.Dataset { return d.Scale(f) }

func TestSyntheticMatchesIngestionRate(t *testing.T) {
	// DS-Analyzer phase 1: synthetic data at the GPUs -> throughput must
	// equal G x nGPUs within a small pipeline overhead.
	m := gpu.MustByName("resnet18")
	r, err := Run(Config{
		Model: m, Dataset: small(dataset.ImageNet1K, 0.02),
		Spec: cluster.ConfigSSDV100(), FetchMode: Synthetic, Epochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m.GV100 * 8
	if math.Abs(r.Throughput-want)/want > 0.02 {
		t.Fatalf("synthetic throughput %.0f, want ~%.0f", r.Throughput, want)
	}
	if r.StallFraction > 0.02 {
		t.Fatalf("synthetic run has stalls: %.3f", r.StallFraction)
	}
}

func TestFullyCachedPrepStall(t *testing.T) {
	// Fig 5/6: ResNet18 on 8 V100s with 3 cores/GPU has ~50% prep stall
	// even with DALI GPU prep; with 12+ cores/GPU the stall vanishes
	// (Fig 4).
	m := gpu.MustByName("resnet18")
	base := Config{
		Model: m, Dataset: small(dataset.ImageNet1K, 0.02),
		Spec: cluster.ConfigSSDV100(), FetchMode: FullyCached, Epochs: 3,
	}
	starved := base
	starved.ThreadsPerGPU = 3
	r, err := Run(starved)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallFraction < 0.3 || r.StallFraction > 0.65 {
		t.Fatalf("3-core prep stall %.2f, want ~0.5", r.StallFraction)
	}

	// Fig 4 measures a single GPU as cores grow: 14 dedicated physical
	// cores mask ResNet18's prep entirely.
	rich := base
	rich.GPUsPerServer = 1
	rich.ThreadsPerGPU = 14
	r2, err := Run(rich)
	if err != nil {
		t.Fatal(err)
	}
	if r2.StallFraction > 0.08 {
		t.Fatalf("14-core prep stall %.2f, want ~0", r2.StallFraction)
	}
	// Per-GPU throughput must rise vs the starved run.
	if r2.Throughput <= r.Throughput/8 {
		t.Fatal("more cores must increase per-GPU throughput when prep-bound")
	}
}

func TestMinIOBeatsPageCacheEndToEnd(t *testing.T) {
	// Fig 9(a): on a fetch-bound single-server job, CoorDL's MinIO cache
	// outperforms the DALI baselines by eliminating thrashing.
	d := small(dataset.OpenImages, 0.004)
	run := func(k loader.Kind) *Result {
		r, err := Run(Config{
			Model: gpu.MustByName("shufflenetv2"), Dataset: d,
			Spec: cluster.ConfigSSDV100(), Loader: k, Epochs: 3,
			CacheBytes: 0.65 * d.TotalBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	coordl := run(loader.CoorDL)
	shuffle := run(loader.DALIShuffle)
	seq := run(loader.DALISeq)
	if coordl.EpochTime >= shuffle.EpochTime {
		t.Fatalf("CoorDL (%.1fs) not faster than DALI-shuffle (%.1fs)",
			coordl.EpochTime, shuffle.EpochTime)
	}
	if shuffle.EpochTime >= seq.EpochTime {
		t.Fatalf("DALI-shuffle (%.1fs) should beat DALI-seq (%.1fs)",
			shuffle.EpochTime, seq.EpochTime)
	}
	// MinIO steady-state hit rate = capacity ratio exactly.
	if math.Abs(coordl.HitRate-0.65) > 0.02 {
		t.Fatalf("MinIO hit rate %.3f, want 0.65", coordl.HitRate)
	}
	if shuffle.HitRate >= 0.60 {
		t.Fatalf("page cache hit rate %.3f should thrash below capacity", shuffle.HitRate)
	}
	// Speedup in the paper's 1.3-2.2x band.
	sp := seq.EpochTime / coordl.EpochTime
	if sp < 1.2 || sp > 3.5 {
		t.Fatalf("CoorDL vs DALI-seq speedup %.2f out of plausible band", sp)
	}
}

func TestPartitionedCachingEliminatesDiskIO(t *testing.T) {
	// §4.2: with aggregate memory >= dataset, the dataset is fetched from
	// storage exactly once (the first epoch) for the whole job.
	d := small(dataset.OpenImages, 0.004)
	r, err := Run(Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigHDD1080Ti(), Loader: loader.CoorDL,
		NumServers: 2, Epochs: 3, CacheBytes: 0.65 * d.TotalBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs[0].DiskBytes < 0.9*d.TotalBytes {
		t.Fatalf("warmup read %.0f bytes, want ~dataset (%.0f)",
			r.Epochs[0].DiskBytes, d.TotalBytes)
	}
	for i, e := range r.Epochs[1:] {
		if e.DiskBytes > 0.01*d.TotalBytes {
			t.Fatalf("epoch %d: %.0f disk bytes, want ~0", i+1, e.DiskBytes)
		}
		if e.NetBytes == 0 {
			t.Fatalf("epoch %d: no remote-cache traffic", i+1)
		}
	}
}

func TestDistributedCoorDLBeatsDALIOnHDD(t *testing.T) {
	// Fig 9(b): partitioned caching vs DALI on 2 HDD servers.
	d := small(dataset.OpenImages, 0.003)
	run := func(k loader.Kind) *Result {
		r, err := Run(Config{
			Model: gpu.MustByName("alexnet"), Dataset: d,
			Spec: cluster.ConfigHDD1080Ti(), Loader: k,
			NumServers: 2, Epochs: 3, CacheBytes: 0.65 * d.TotalBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	coordl := run(loader.CoorDL)
	dali := run(loader.DALIShuffle)
	sp := dali.EpochTime / coordl.EpochTime
	if sp < 5 {
		t.Fatalf("distributed HDD speedup %.1f, want >> 1", sp)
	}
	// CoorDL eliminates the I/O bound; AlexNet remains prep-limited on 3
	// cores/GPU (Fig 4 says it wants ~24) but far less stalled than the
	// disk-bound baseline.
	if coordl.StallFraction >= dali.StallFraction {
		t.Fatalf("CoorDL stall %.2f not below DALI %.2f",
			coordl.StallFraction, dali.StallFraction)
	}
}

func TestCoordinatedPrepSpeedsUpHPSearch(t *testing.T) {
	// Fig 9(d) / Fig 22: 8 concurrent 1-GPU jobs; coordinated prep
	// eliminates redundant fetch+prep.
	d := small(dataset.OpenImages, 0.002)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 3,
		CacheBytes: 0.65 * d.TotalBytes, Batch: 256,
	}
	indep, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 8, GPUsPerJob: 1})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := indep.Jobs[0].EpochTime / coord.Jobs[0].EpochTime
	if sp < 1.5 {
		t.Fatalf("coordinated-prep speedup %.2f, want > 1.5", sp)
	}
	// One sweep per epoch: coordinated disk I/O per epoch ~= capacity
	// misses of one pass; independent jobs amplify reads.
	if coord.DiskPerEpoch >= indep.DiskPerEpoch {
		t.Fatalf("coordinated disk/epoch %.0f not below independent %.0f",
			coord.DiskPerEpoch, indep.DiskPerEpoch)
	}
	if coord.ReadAmplification > 0.40 {
		t.Fatalf("coordinated read amplification %.2f, want ~0.35 (capacity misses)",
			coord.ReadAmplification)
	}
	if indep.ReadAmplification < 1.0 {
		t.Fatalf("independent read amplification %.2f, want > 1 (redundant I/O)",
			indep.ReadAmplification)
	}
}

func TestCoordinatedStagingMemoryBounded(t *testing.T) {
	// §5.5: coordinated prep's staging area stays within its ~5 GB cap.
	d := small(dataset.OpenImages, 0.001)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 2,
		CacheBytes: d.TotalBytes, Batch: 128,
	}
	cap := 2 * stats.GiB
	r, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 4, GPUsPerJob: 1, Coordinated: true,
		StagingCapBytes: cap, TraceStagingMem: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.StagingPeakBytes > cap {
		t.Fatalf("staging peak %.0f exceeds cap %.0f", r.StagingPeakBytes, cap)
	}
	if r.StagingTrace == nil || r.StagingTrace.Len() == 0 {
		t.Fatal("staging trace missing")
	}
}

func TestCoordinatedFailureRecovery(t *testing.T) {
	// §4.3: killing one HP job mid-epoch must not wedge the others; the
	// failure detector hands the dead job's shard to a recovery producer.
	d := small(dataset.OpenImages, 0.001)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 2,
		CacheBytes: d.TotalBytes, Batch: 128,
	}
	r, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 4, GPUsPerJob: 1, Coordinated: true,
		KillJob: 2, KillAfterBatches: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DetectedFailures) != 1 || r.DetectedFailures[0] != 2 {
		t.Fatalf("detected failures %v, want [2]", r.DetectedFailures)
	}
	// Surviving jobs finished all epochs.
	for j, jr := range r.Jobs {
		if j == 2 {
			continue
		}
		if len(jr.Epochs) != base.Epochs {
			t.Fatalf("job %d finished %d epochs, want %d", j, len(jr.Epochs), base.Epochs)
		}
	}
}

func TestMultiGPUBarrierKeepsGPUsInLockstep(t *testing.T) {
	d := small(dataset.ImageNet1K, 0.01)
	r, err := Run(Config{
		Model: gpu.MustByName("resnet50"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), FetchMode: FullyCached, Epochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Epochs {
		if e.Samples == 0 || e.Duration <= 0 {
			t.Fatalf("bad epoch stats: %+v", e)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := Run(Config{
		Model: gpu.MustByName("alexnet"), Dataset: dataset.ImageNet1K.Scale(0.001),
		Spec: cluster.ConfigSSDV100(), GPUsPerServer: 99,
	}); err == nil {
		t.Fatal("too many GPUs should fail")
	}
	// Dataset smaller than one global batch.
	tiny := &dataset.Dataset{Name: "tiny", NumItems: 64, TotalBytes: 64 * 1000}
	if _, err := Run(Config{
		Model: gpu.MustByName("alexnet"), Dataset: tiny,
		Spec: cluster.ConfigSSDV100(),
	}); err == nil {
		t.Fatal("undersized dataset should fail")
	}
}

func TestLearningCurveReachesTarget(t *testing.T) {
	c := ResNet50ImageNet
	e, ok := c.EpochsToAccuracy(0.759)
	if !ok {
		t.Fatal("curve never reaches 75.9%")
	}
	if e < 70 || e > 95 {
		t.Fatalf("reaches 75.9%% at epoch %d, want ~85-90", e)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for i := 1; i <= 100; i++ {
		a := c.Accuracy(float64(i))
		if a < prev {
			t.Fatalf("accuracy decreased at epoch %d", i)
		}
		prev = a
	}
	if prev > c.FinalAccuracy() {
		t.Fatal("accuracy exceeded asymptote")
	}
}

func TestAccuracyTimeline(t *testing.T) {
	pts := ResNet50ImageNet.AccuracyTimeline(3600, 10)
	if len(pts) != 10 || pts[9].Hours != 10 {
		t.Fatalf("bad timeline: %+v", pts[len(pts)-1])
	}
	h, ok := ResNet50ImageNet.TimeToAccuracy(3600, 0.759)
	if !ok || h < 10 {
		t.Fatalf("time to accuracy %v ok=%v", h, ok)
	}
}

func TestDiskAndCPUTraces(t *testing.T) {
	d := small(dataset.OpenImages, 0.002)
	r, err := RunContext(context.Background(), Config{
		Model: gpu.MustByName("resnet18"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Loader: loader.CoorDL, Epochs: 2,
		CacheBytes: 0.5 * d.TotalBytes,
	}, DiskTraceObserver(), CPUTraceObserver())
	if err != nil {
		t.Fatal(err)
	}
	if r.DiskTrace == nil || r.DiskTrace.Len() == 0 {
		t.Fatal("disk trace missing")
	}
	if r.CPUTrace == nil || r.CPUTrace.Len() == 0 {
		t.Fatal("cpu trace missing")
	}
	if math.Abs(r.DiskTrace.Sum()-r.TotalDiskBytes) > 1 {
		t.Fatalf("trace sum %.0f != disk bytes %.0f", r.DiskTrace.Sum(), r.TotalDiskBytes)
	}
}

func TestDeterministicResults(t *testing.T) {
	d := small(dataset.OpenImages, 0.002)
	cfg := Config{
		Model: gpu.MustByName("shufflenetv2"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Loader: loader.DALIShuffle, Epochs: 2,
		CacheBytes: 0.5 * d.TotalBytes,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochTime != b.EpochTime || a.TotalDiskBytes != b.TotalDiskBytes {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v",
			a.EpochTime, a.TotalDiskBytes, b.EpochTime, b.TotalDiskBytes)
	}
}
