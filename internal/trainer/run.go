package trainer

import (
	"context"
	"fmt"

	"datastall/internal/cluster"
	"datastall/internal/core"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// prepped is a staged pre-processed batch flowing producer -> GPU.
type prepped struct {
	rawBytes float64
}

// Run executes one training job (single- or multi-server) and returns its
// statistics.
//
// Deprecated-path note: Run is the legacy blocking entry point, kept as a
// thin shim over the context-aware Job API so existing callers (and the
// golden suite outputs) are unaffected. New code should build a trainer.Job
// with New(...) and call Job.Run(ctx, observers...) — or use RunContext for
// a Config it already has.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes cfg like Run but honors ctx (cancellation propagates
// into both backends) and streams typed progress events to obs. For an
// uncancelled context and no observers it is behaviorally identical to Run:
// same defaulting, same validation, bit-identical results.
func RunContext(ctx context.Context, cfg Config, obs ...Observer) (*Result, error) {
	if cfg.Model == nil || cfg.Dataset == nil {
		return nil, fmt.Errorf("trainer: model and dataset are required")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return runJob(ctx, cfg, obs)
}

// runJob executes a defaulted, validated config on its backend. It is the
// single execution path behind Run, RunContext and Job.Run.
func runJob(ctx context.Context, cfg Config, obs observers) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Backend == BackendConcurrent {
		return runConcurrent(ctx, cfg, obs)
	}
	eng := sim.New()
	cl := cluster.Build(eng, cfg.Spec, cfg.NumServers)
	rt, err := newJobRuntime(cfg, eng, cl)
	if err != nil {
		return nil, err
	}
	// Time-series collection is requested through the marker observers
	// (DiskTraceObserver / CPUTraceObserver), the sole spelling since the
	// Config trace flags were removed.
	var traceDisk, traceCPU bool
	for _, ob := range obs {
		switch ob.(type) {
		case diskTraceObserver:
			traceDisk = true
		case cpuTraceObserver:
			traceCPU = true
		}
	}
	rt.enableTraces(traceDisk, traceCPU)
	rt.obs = obs
	rt.launch()
	rt.obs.emit(JobStarted{
		Epochs: cfg.Epochs, Servers: cfg.NumServers,
		GPUsPerServer: cfg.GPUsPerServer, Backend: cfg.Backend,
	})
	rt.obs.emit(EpochStarted{Epoch: 0})
	if err := eng.RunContext(ctx, sim.DefaultCancelPoll); err != nil {
		return nil, err
	}
	res := rt.result()
	rt.obs.emit(JobEnded{Time: res.TotalTime, Result: res})
	return res, nil
}

// jobRuntime holds the live state of one running job.
type jobRuntime struct {
	cfg     Config
	eng     *sim.Engine
	cl      *cluster.Cluster
	fetcher loader.Fetcher
	// ownerShards is the epoch-0 partitioned-cache population assignment
	// (CoorDL distributed only).
	ownerShards []dataset.Shard
	src         *orderSource

	prepCfg   prep.Config
	gpuPrepOn bool
	// prepRatePerGPU is the aggregate prep throughput of one GPU's
	// thread share; DALI parallelizes within a batch, so each batch is
	// processed at the full rate through a per-GPU prep server.
	prepRatePerGPU  float64
	prepSrv         [][]*sim.BandwidthServer // [server][gpu]
	producersPerGPU int

	iterTime  float64 // GPU compute per iteration
	commExtra float64 // unoverlapped gradient-exchange time per iteration
	commBytes float64 // per-server bytes exchanged per iteration

	barrier *sim.Barrier
	// epochBarrier synchronizes producers and consumers at epoch
	// boundaries (samplers re-shuffle and worker pools restart per epoch
	// in PyTorch/DALI), which also keeps per-epoch counters exact.
	epochBarrier *sim.Barrier
	stores       [][]*sim.Store[prepped] // [server][gpu]

	plans map[int]*epochPlan

	// Cumulative counters (single-threaded simulation: plain fields).
	fetch    loader.FetchResult
	prepBusy float64
	waitGet  float64

	// Per-epoch snapshots taken by the coordinator GPU.
	snaps []snapshot

	traceDisk bool
	cpuTrace  *stats.TimeSeries

	// obs receives typed progress events; nil-safe (emit on an empty list
	// is a no-op), so the legacy Run path pays nothing.
	obs observers
}

type snapshot struct {
	t         float64
	disk, net float64
	diskReads int64
	fetch     loader.FetchResult
	samples   int
	// occ is the cache occupancy at snapshot time (point-in-time, not a
	// delta like the other fields).
	occ float64
}

// epochPlan is one epoch's per-server item orders plus the iteration count.
// When owned, buf is the backing permutation buffer the orders are views
// over, and a dropped plan's buffer is recycled into the next epoch's
// (epoch-order reuse: N GPUs and P producers share one shuffle per epoch,
// and successive epochs share one buffer).
type epochPlan struct {
	orders [][]dataset.ItemID // per server
	iters  int
	buf    []dataset.ItemID
	owned  bool
}

// orderSource produces per-epoch visit orders for one job. It is built once
// per job — the full-dataset shard and sampler behind it are constructed a
// single time, not once per epoch per process — and is the sampling policy
// shared by both backends: the analytic simulation and the concurrent
// pipeline drive identical orders, which is what makes their cache
// statistics comparable.
type orderSource struct {
	cfg         Config
	ownerShards []dataset.Shard
	sampler     dataset.Sampler // single-server jobs only
}

func newOrderSource(cfg Config, ownerShards []dataset.Shard) *orderSource {
	src := &orderSource{cfg: cfg, ownerShards: ownerShards}
	if cfg.NumServers == 1 {
		if cfg.Loader == loader.DALISeq && cfg.FetchMode == Normal {
			src.sampler = dataset.NewSequentialSampler(dataset.FullShard(cfg.Dataset))
		} else {
			src.sampler = dataset.NewRandomSampler(dataset.FullShard(cfg.Dataset), cfg.Seed)
		}
	}
	return src
}

// orders builds the epoch's plan, recycling the permutation buffer of a
// dropped plan when one is offered (recycle may be nil). Orders are
// identical whether or not a buffer is recycled.
func (src *orderSource) orders(epoch int, recycle *epochPlan) *epochPlan {
	var buf []dataset.ItemID
	if recycle != nil && recycle.owned {
		buf = recycle.buf
	}
	pl := &epochPlan{}
	switch {
	case src.sampler != nil:
		order := src.sampler.EpochOrderInto(epoch, buf)
		pl.orders = [][]dataset.ItemID{order}
		pl.buf = order
		pl.owned = true
	case epoch == 0 && src.ownerShards != nil:
		// CoorDL's first epoch processes the static owner shards so each
		// server populates its partition of the cache (§4.2). The orders
		// alias the shard slices; they must never be recycled into.
		orders := make([][]dataset.ItemID, 0, len(src.ownerShards))
		for _, sh := range src.ownerShards {
			orders = append(orders, sh.Items)
		}
		pl.orders = orders
	default:
		shards, backing := dataset.EpochShardsInto(
			src.cfg.Dataset, src.cfg.NumServers, epoch, src.cfg.Seed, buf)
		orders := make([][]dataset.ItemID, 0, len(shards))
		for _, sh := range shards {
			orders = append(orders, sh.Items)
		}
		pl.orders = orders
		pl.buf = backing
		pl.owned = true
	}
	pl.iters = epochIters(src.cfg, pl.orders)
	return pl
}

// epochIters returns the per-server iteration count for the given orders
// (drop-last semantics, bounded by the shortest server order).
func epochIters(cfg Config, orders [][]dataset.ItemID) int {
	perIter := cfg.Batch * cfg.GPUsPerServer
	iters := len(orders[0]) / perIter
	for _, o := range orders {
		if it := len(o) / perIter; it < iters {
			iters = it
		}
	}
	return iters
}

func newJobRuntime(cfg Config, eng *sim.Engine, cl *cluster.Cluster) (*jobRuntime, error) {
	var f loader.Fetcher
	var owner []dataset.Shard
	switch {
	case cfg.FetchMode == Synthetic:
		f = loader.SyntheticFetcher{}
	case cfg.FetchMode == FullyCached:
		f = &loader.CachedFetcher{Dataset: cfg.Dataset, Cluster: cl}
	case cfg.RecordBytes > 0:
		f = loader.NewTFRecordFetcher(cfg.Dataset, cl, cfg.CacheBytes, cfg.RecordBytes, cfg.Seed)
	case cfg.Loader == loader.CoorDL && cfg.NumServers > 1 && cfg.DisableRemoteFetch:
		f = core.NewMinIOFetcher(cfg.Dataset, cl, cfg.CacheBytes)
	case cfg.Loader == loader.CoorDL && cfg.NumServers > 1:
		pf := core.NewPartitionedFetcher(cfg.Dataset, cl, cfg.CacheBytes, cfg.Seed)
		f = pf
		owner = pf.OwnerShards()
	case cfg.Loader == loader.CoorDL:
		f = core.NewMinIOFetcher(cfg.Dataset, cl, cfg.CacheBytes)
	default:
		pcf := loader.NewPageCacheFetcher(cfg.Dataset, cl, cfg.CacheBytes, cfg.Seed)
		if cfg.Loader == loader.PyTorchDL {
			pcf.SeeksPerItem = loader.PyTorchSeeksPerItem
		}
		f = pcf
	}
	return newJobRuntimeWith(cfg, eng, cl, f, owner)
}

// newJobRuntimeWith builds a job over a shared (possibly cross-job) fetcher;
// used by RunConcurrent where several jobs contend on one server's caches.
func newJobRuntimeWith(cfg Config, eng *sim.Engine, cl *cluster.Cluster, f loader.Fetcher, owner []dataset.Shard) (*jobRuntime, error) {
	rt := &jobRuntime{cfg: cfg, eng: eng, cl: cl, plans: map[int]*epochPlan{}}
	rt.fetcher = f
	rt.ownerShards = owner
	rt.src = newOrderSource(cfg, owner)

	rt.prepCfg = cfg.prepConfig()
	rt.gpuPrepOn = rt.prepCfg.GPUPrep
	rt.producersPerGPU = cfg.ThreadsPerGPU
	if rt.producersPerGPU > 4 {
		rt.producersPerGPU = 4
	}
	if rt.producersPerGPU < 1 {
		rt.producersPerGPU = 1
	}
	rt.prepRatePerGPU = prep.Rate(cfg.Model, rt.prepCfg)

	rt.iterTime = cfg.Model.BatchTime(cfg.Spec.Gen, cfg.Batch, rt.gpuPrepOn)
	if cfg.NumServers > 1 {
		s := float64(cfg.NumServers)
		rt.commBytes = 2 * (s - 1) / s * cfg.Model.GradientBytes
		comm := rt.commBytes / cl.NIC(0).EffectiveBW()
		// Gradient exchange overlaps with backward compute; only the
		// excess shows up on the critical path (the paper rolls
		// communication into compute time, §2).
		if extra := comm - 0.5*rt.iterTime; extra > 0 {
			rt.commExtra = extra
		}
	}

	if pl := rt.plan(0); pl.iters < 1 {
		return nil, fmt.Errorf("trainer: dataset %s too small for %d servers x %d GPUs x batch %d",
			cfg.Dataset.Name, cfg.NumServers, cfg.GPUsPerServer, cfg.Batch)
	}

	rt.barrier = sim.NewBarrier(eng, cfg.NumServers*cfg.GPUsPerServer)
	rt.epochBarrier = sim.NewBarrier(eng,
		cfg.NumServers*cfg.GPUsPerServer*(1+rt.producersPerGPU))
	rt.stores = make([][]*sim.Store[prepped], cfg.NumServers)
	rt.prepSrv = make([][]*sim.BandwidthServer, cfg.NumServers)
	for s := range rt.stores {
		rt.stores[s] = make([]*sim.Store[prepped], cfg.GPUsPerServer)
		rt.prepSrv[s] = make([]*sim.BandwidthServer, cfg.GPUsPerServer)
		for g := range rt.stores[s] {
			rt.stores[s][g] = sim.NewStore[prepped](eng, cfg.PrefetchDepth)
			rt.prepSrv[s][g] = sim.NewBandwidthServer(eng)
		}
	}
	return rt, nil
}

// enableTraces turns on time-series collection; runJob calls it between
// runtime construction and launch once the observer list is known.
func (rt *jobRuntime) enableTraces(disk, cpu bool) {
	if disk {
		rt.traceDisk = true
		for i, srv := range rt.cl.Servers {
			srv.Disk.EnableTrace(fmt.Sprintf("disk-%d", i))
		}
	}
	if cpu {
		rt.cpuTrace = &stats.TimeSeries{Name: "prep-busy"}
	}
}

// plan returns (and memoizes) the epoch's per-server item orders and the
// iteration count, so the job's N GPUs and P producers share one shuffle
// per epoch. Old plans are dropped to bound memory, and a dropped plan's
// permutation buffer is recycled into the new epoch's orders.
func (rt *jobRuntime) plan(epoch int) *epochPlan {
	if pl, ok := rt.plans[epoch]; ok {
		return pl
	}
	var recycle *epochPlan
	if old, ok := rt.plans[epoch-2]; ok {
		recycle = old
	}
	pl := rt.src.orders(epoch, recycle)
	rt.plans[epoch] = pl
	delete(rt.plans, epoch-2)
	return pl
}

// launch spawns all producer and consumer processes. Producers run as
// goroutine processes (they drive the fetcher stack's blocking device
// requests); consumers run as callback state machines on the engine
// goroutine — the sim fast path — which removes two channel handoffs per
// blocking operation without changing the event sequence.
func (rt *jobRuntime) launch() {
	cfg := rt.cfg
	for s := 0; s < cfg.NumServers; s++ {
		for g := 0; g < cfg.GPUsPerServer; g++ {
			for k := 0; k < rt.producersPerGPU; k++ {
				s, g, k := s, g, k
				rt.eng.Go(fmt.Sprintf("prod-%d-%d-%d", s, g, k), func(p *sim.Proc) {
					rt.producer(p, s, g, k)
				})
			}
			sm := &consumerSM{rt: rt, server: s, g: g}
			rt.eng.Spawn(fmt.Sprintf("gpu-%d-%d", s, g), sm.step)
		}
	}
}

// producer fetches and pre-processes this GPU's share of batches.
func (rt *jobRuntime) producer(p *sim.Proc, server, g, k int) {
	cfg := rt.cfg
	for e := 0; e < cfg.Epochs; e++ {
		pl := rt.plan(e)
		order := pl.orders[server]
		if e == 0 && g == 0 && rt.ownerShards != nil {
			// Partitioned caching populates each server's cache with
			// its *entire* owner shard in the first epoch (§4.2);
			// drop-last truncation must not leave a tail uncached.
			tail := order[pl.iters*cfg.Batch*cfg.GPUsPerServer:]
			for c := k; c*cfg.Batch < len(tail); c += rt.producersPerGPU {
				i := c * cfg.Batch
				j := i + cfg.Batch
				if j > len(tail) {
					j = len(tail)
				}
				rt.fetch.Add(rt.fetcher.FetchBatch(p, server, tail[i:j]))
			}
		}
		for it := k; it < pl.iters; it += rt.producersPerGPU {
			bi := it*cfg.GPUsPerServer + g
			items := order[bi*cfg.Batch : (bi+1)*cfg.Batch]
			res := rt.fetcher.FetchBatch(p, server, items)
			rt.fetch.Add(res)
			raw := res.MemBytes + res.DiskBytes + res.NetBytes
			if cfg.FetchMode != Synthetic && raw > 0 {
				rt.prepSrv[server][g].Request(p, raw, rt.prepRatePerGPU, 0)
				dur := raw / rt.prepRatePerGPU
				rt.prepBusy += dur
				if rt.cpuTrace != nil {
					rt.cpuTrace.Add(p.Now(), dur)
				}
			}
			rt.stores[server][g].Put(p, prepped{rawBytes: raw})
		}
		rt.epochBarrier.Wait(p)
	}
}

// consumerState enumerates the points where the old goroutine consumer
// blocked; the state machine resumes from the matching state.
type consumerState int

const (
	csInit              consumerState = iota
	csLoop                            // decide: next iteration or epoch end
	csGet                             // trying to pop a prepped batch
	csCompute                         // woke from the iterTime sleep
	csBarrierWoken                    // woken by the iteration barrier
	csAfterBarrier                    // barrier passed; account comm
	csComm                            // woke from the comm-extra sleep
	csEpochBarrierWoken               // woken by the epoch barrier
	csEpochDone                       // epoch barrier passed
	csDone
)

// consumerSM is one GPU consumer run as a callback process on the engine
// goroutine (the sim fast path): the same blocking structure as a goroutine
// consumer — store Get, compute sleep, iteration barrier, optional
// communication sleep, epoch barrier — with the loop state held explicitly
// in the struct instead of on a goroutine stack. It consumes exactly the
// event sequence the goroutine version did (blocks register with the same
// primitives, wakes schedule the same events), so simulation output is
// bit-identical; it just never pays the two channel handoffs per blocking
// operation.
type consumerSM struct {
	rt        *jobRuntime
	server, g int
	state     consumerState
	epoch     int
	it        int
	samples   int
	pl        *epochPlan
	since     float64 // first-attempt time of the pending block
}

// step runs the consumer until it blocks (registered with a primitive or
// scheduled a wake) or finishes.
func (sm *consumerSM) step(p *sim.Proc) {
	rt := sm.rt
	cfg := rt.cfg
	for {
		switch sm.state {
		case csInit:
			sm.pl = rt.plan(sm.epoch)
			sm.it = 0
			sm.state = csLoop
		case csLoop:
			if sm.it < sm.pl.iters {
				sm.since = p.Now()
				sm.state = csGet
				continue
			}
			sm.samples += sm.pl.iters * cfg.Batch * cfg.GPUsPerServer * cfg.NumServers
			// Snapshot before the epoch barrier: producers are parked
			// there, so no next-epoch I/O has been issued yet.
			if sm.server == 0 && sm.g == 0 {
				rt.endEpoch(sm.samples)
			}
			if !rt.epochBarrier.Arrive(p) {
				sm.since = p.Now()
				sm.state = csEpochBarrierWoken
				return
			}
			sm.state = csEpochDone
		case csGet:
			_, ok, ready := rt.stores[sm.server][sm.g].TryGet(p, sm.since)
			if !ready {
				return // registered as a getter; re-stepped on wakeup
			}
			if !ok {
				sm.state = csDone
				return
			}
			rt.waitGet += p.Now() - sm.since
			sm.state = csCompute
			p.WakeAfter(rt.iterTime)
			return
		case csCompute:
			if !rt.barrier.Arrive(p) {
				sm.since = p.Now()
				sm.state = csBarrierWoken
				return
			}
			sm.state = csAfterBarrier
		case csBarrierWoken:
			rt.barrier.Waited += p.Now() - sm.since
			sm.state = csAfterBarrier
		case csAfterBarrier:
			if rt.commExtra > 0 {
				if sm.g == 0 {
					rt.cl.NIC(sm.server).AccountBytes(rt.commBytes)
				}
				sm.state = csComm
				p.WakeAfter(rt.commExtra)
				return
			}
			sm.it++
			sm.state = csLoop
		case csComm:
			sm.it++
			sm.state = csLoop
		case csEpochBarrierWoken:
			rt.epochBarrier.Waited += p.Now() - sm.since
			sm.state = csEpochDone
		case csEpochDone:
			sm.epoch++
			if sm.epoch >= cfg.Epochs {
				sm.state = csDone
				return
			}
			sm.pl = rt.plan(sm.epoch)
			sm.it = 0
			sm.state = csLoop
		case csDone:
			return
		}
	}
}

// endEpoch snapshots cumulative counters; called by the coordinator GPU at
// the epoch's final synchronization point. With observers attached it also
// streams the finished epoch's stats (and the next epoch's start).
func (rt *jobRuntime) endEpoch(samples int) {
	var reads int64
	for _, srv := range rt.cl.Servers {
		reads += srv.Disk.TotalRequests()
	}
	net := 0.0
	for _, n := range rt.cl.Fabric.NICs {
		net += n.TotalBytes()
	}
	occ := 0.0
	if cs, ok := rt.fetcher.(cacheSizer); ok {
		occ = cs.CacheUsedBytes()
	}
	rt.snaps = append(rt.snaps, snapshot{
		t:         rt.eng.Now(),
		disk:      rt.cl.TotalDiskBytes(),
		net:       net / 2, // each transfer charged at both endpoints
		diskReads: reads,
		fetch:     rt.fetch,
		samples:   samples,
		occ:       occ,
	})
	if len(rt.obs) == 0 {
		return
	}
	epoch := len(rt.snaps) - 1
	prev := snapshot{}
	if epoch > 0 {
		prev = rt.snaps[epoch-1]
	}
	rt.obs.emit(EpochEnded{
		Time: rt.eng.Now(), Epoch: epoch,
		Stats:          rt.epochStats(prev, rt.snaps[epoch]),
		CacheUsedBytes: occ,
	})
	if epoch+1 < rt.cfg.Epochs {
		rt.obs.emit(EpochStarted{Time: rt.eng.Now(), Epoch: epoch + 1})
	}
}

// epochStats converts two consecutive snapshots into one epoch's stats.
func (rt *jobRuntime) epochStats(prev, s snapshot) EpochStats {
	dur := s.t - prev.t
	epSamples := s.samples - prev.samples
	iters := epSamples / (rt.cfg.Batch * rt.cfg.GPUsPerServer * rt.cfg.NumServers)
	compute := float64(iters) * (rt.iterTime + rt.commExtra)
	es := EpochStats{
		Duration:    dur,
		ComputeTime: compute,
		StallTime:   dur - compute,
		DiskBytes:   s.disk - prev.disk,
		NetBytes:    s.net - prev.net,
		MemBytes:    s.fetch.MemBytes - prev.fetch.MemBytes,
		DiskReads:   int(s.diskReads - prev.diskReads),
		Hits:        s.fetch.Hits - prev.fetch.Hits,
		Misses:      s.fetch.Misses - prev.fetch.Misses,
		RemoteHits:  s.fetch.RemoteHit - prev.fetch.RemoteHit,
		Samples:     epSamples,
		// Occupancy is point-in-time, so it is not differenced.
		CacheUsedBytes: s.occ,
	}
	if es.StallTime < 0 {
		es.StallTime = 0
	}
	return es
}

// result converts snapshots into per-epoch stats.
func (rt *jobRuntime) result() *Result {
	r := &Result{}
	prev := snapshot{}
	for _, s := range rt.snaps {
		r.Epochs = append(r.Epochs, rt.epochStats(prev, s))
		prev = s
	}
	r.TotalDiskBytes = rt.cl.TotalDiskBytes()
	for _, n := range rt.cl.Fabric.NICs {
		r.TotalNetBytes += n.TotalBytes()
	}
	r.TotalTime = rt.eng.Now()
	if rt.traceDisk {
		r.DiskTrace = rt.cl.Servers[0].Disk.Trace
	}
	r.CPUTrace = rt.cpuTrace
	r.steadyState()
	return r
}
