package trainer

import (
	"math"
	"strings"
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/prep"
)

// equalSizeDataset returns a dataset whose items are all exactly the same
// size (sizeSpread 0). In that regime MinIO's cached-item count is exactly
// floor(cap/item) no matter what order concurrent workers insert, which is
// what makes the analytic and concurrent backends' statistics comparable
// epoch by epoch.
func equalSizeDataset(items int) *dataset.Dataset {
	return &dataset.Dataset{Name: "prop", Task: "image", NumItems: items, TotalBytes: float64(items) * 1024}
}

func propConfig(d *dataset.Dataset, servers, workers, shards int, seed int64) Config {
	return Config{
		Model: gpu.MustByName("resnet18"), Dataset: d,
		Spec:       cluster.ConfigSSDV100(),
		NumServers: servers, GPUsPerServer: 1,
		Batch: 16, Epochs: 3,
		ThreadsPerGPU: workers,
		Loader:        loader.CoorDL,
		CacheBytes:    float64(d.NumItems) / 4 * 1024, // cache 1/4 of the items
		CacheShards:   shards,
		Seed:          seed,
	}
}

// TestPropertyConcurrentMatchesAnalyticMinIO is the backend-equivalence
// property test: for any (seed, shard count, worker count), the concurrent
// pipeline over ShardedMinIO must report exactly the per-epoch hit/miss
// counts of the single-threaded analytic reference model.
func TestPropertyConcurrentMatchesAnalyticMinIO(t *testing.T) {
	d := equalSizeDataset(2048)
	for _, seed := range []int64{1, 7, 12345} {
		ref, err := Run(propConfig(d, 1, 2, 0, seed)) // analytic: workers/shards irrelevant
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, shards := range []int{1, 8, 64} {
				cfg := propConfig(d, 1, workers, shards, seed)
				cfg.Backend = BackendConcurrent
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Epochs) != len(ref.Epochs) {
					t.Fatalf("seed=%d w=%d sh=%d: %d epochs, want %d",
						seed, workers, shards, len(got.Epochs), len(ref.Epochs))
				}
				for e := range ref.Epochs {
					re, ge := ref.Epochs[e], got.Epochs[e]
					if ge.Hits != re.Hits || ge.Misses != re.Misses {
						t.Errorf("seed=%d workers=%d shards=%d epoch %d: hits/misses %d/%d, analytic reference %d/%d",
							seed, workers, shards, e, ge.Hits, ge.Misses, re.Hits, re.Misses)
					}
					if ge.MemBytes != re.MemBytes || ge.DiskBytes != re.DiskBytes {
						t.Errorf("seed=%d workers=%d shards=%d epoch %d: mem/disk bytes %v/%v, reference %v/%v",
							seed, workers, shards, e, ge.MemBytes, ge.DiskBytes, re.MemBytes, re.DiskBytes)
					}
					if ge.Samples != re.Samples {
						t.Errorf("epoch %d: samples %d, reference %d", e, ge.Samples, re.Samples)
					}
				}
			}
		}
	}
}

// TestPropertyConcurrentPartitioned: for distributed CoorDL the *total*
// cluster-wide classification must match the analytic reference per epoch
// (hits+remote and misses; the local/remote split legitimately depends on
// which server cached an item first when owners race, but cluster totals
// cannot).
func TestPropertyConcurrentPartitioned(t *testing.T) {
	d := equalSizeDataset(4096)
	for _, servers := range []int{2, 4} {
		ref, err := Run(propConfig(d, servers, 2, 0, 11))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			cfg := propConfig(d, servers, workers, 8, 11)
			cfg.Backend = BackendConcurrent
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for e := range ref.Epochs {
				re, ge := ref.Epochs[e], got.Epochs[e]
				if ge.Hits+ge.RemoteHits != re.Hits+re.RemoteHits || ge.Misses != re.Misses {
					t.Errorf("servers=%d workers=%d epoch %d: (local+remote)/miss %d/%d, reference %d/%d",
						servers, workers, e, ge.Hits+ge.RemoteHits, ge.Misses,
						re.Hits+re.RemoteHits, re.Misses)
				}
			}
		}
	}
}

// TestConcurrentBackendModes smoke-checks the remaining fetch paths.
func TestConcurrentBackendModes(t *testing.T) {
	d := equalSizeDataset(1024)
	base := propConfig(d, 1, 4, 8, 5)
	base.Backend = BackendConcurrent

	syn := base
	syn.FetchMode = Synthetic
	r, err := Run(syn)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs[0].Misses != 0 || r.Epochs[0].DiskBytes != 0 {
		t.Fatalf("synthetic mode fetched from disk: %+v", r.Epochs[0])
	}

	fc := base
	fc.FetchMode = FullyCached
	r, err = Run(fc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs[0].Misses != 0 || r.Epochs[0].MemBytes == 0 {
		t.Fatalf("fully-cached mode: %+v", r.Epochs[0])
	}

	for _, k := range []loader.Kind{loader.DALIShuffle, loader.DALISeq, loader.PyTorchDL} {
		b := base
		b.Loader = k
		r, err = Run(b)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		total := 0
		for _, e := range r.Epochs {
			total += e.Hits + e.Misses
		}
		if total == 0 {
			t.Fatalf("%v: no lookups recorded", k)
		}
	}
	if r.PrepBusySeconds <= 0 {
		t.Fatal("concurrent backend did not account prep time")
	}

	tf := base
	tf.RecordBytes = 1 << 20
	if _, err := Run(tf); err == nil || !strings.Contains(err.Error(), "concurrent backend") {
		t.Fatalf("TFRecord + concurrent backend must be rejected, got %v", err)
	}
}

// TestPropertyBaselineLoadersSingleWorker pins the baseline (page-cache)
// fetch path of the concurrent backend against the analytic reference. The
// two-list recency policy is interleaving-dependent, so exact equality is
// only defined at one worker (sequential visit order, like the simulator) —
// which is precisely what catches the two fetcher-selection switches
// (newJobRuntime / concurrentFetchers) drifting apart in seeds or seek
// constants.
func TestPropertyBaselineLoadersSingleWorker(t *testing.T) {
	d := equalSizeDataset(2048)
	for _, k := range []loader.Kind{loader.DALIShuffle, loader.DALISeq, loader.PyTorchDL} {
		cfg := propConfig(d, 1, 1, 0, 21)
		cfg.Loader = k
		cfg.PrefetchDepth = 1
		ref, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cc := cfg
		cc.Backend = BackendConcurrent
		got, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		for e := range ref.Epochs {
			// DiskReads differs by design: the analytic backend counts
			// device requests (one per batch), the concurrent backend
			// counts per-item seeks. Cache behaviour is the parity surface.
			re, ge := ref.Epochs[e], got.Epochs[e]
			if ge.Hits != re.Hits || ge.Misses != re.Misses || ge.DiskBytes != re.DiskBytes {
				t.Errorf("%v epoch %d: hits/misses/diskbytes %d/%d/%v, analytic %d/%d/%v",
					k, e, ge.Hits, ge.Misses, ge.DiskBytes, re.Hits, re.Misses, re.DiskBytes)
			}
		}
	}
}

// TestConcurrentPrepBusyParity: PrepBusySeconds must equal the analytic
// accounting (every batch charged raw/perGPURate) for the same bytes —
// including with multiple GPUs per server, where the pool rate must stay
// per-GPU.
func TestConcurrentPrepBusyParity(t *testing.T) {
	d := equalSizeDataset(2048)
	for _, gpus := range []int{1, 2, 4} {
		cfg := propConfig(d, 1, 2, 8, 5)
		cfg.GPUsPerServer = gpus
		cfg.Backend = BackendConcurrent
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw := 0.0
		for _, e := range r.Epochs {
			raw += e.MemBytes + e.DiskBytes + e.NetBytes
		}
		want := raw / prep.Rate(cfg.Model, cfg.withDefaults().prepConfig())
		if diff := math.Abs(r.PrepBusySeconds - want); diff > 1e-9*want {
			t.Errorf("gpus=%d: PrepBusySeconds %v, analytic accounting %v", gpus, r.PrepBusySeconds, want)
		}
	}

	// Distributed CoorDL with owner shards not divisible by the batch: the
	// epoch-0 tail populates the cache but must NOT be charged prep,
	// exactly like the analytic tail loop.
	dOdd := equalSizeDataset(2050) // 2 servers -> 1025-item shards, batch 16 -> 1-item tails
	cfg := propConfig(dOdd, 2, 2, 8, 5)
	cfg.Backend = BackendConcurrent
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, tailItems := 0.0, 0
	for e, es := range r.Epochs {
		raw += es.MemBytes + es.DiskBytes + es.NetBytes
		fetched := es.Hits + es.RemoteHits + es.Misses
		if e == 0 && fetched <= es.Samples {
			t.Fatalf("expected an epoch-0 tail beyond the %d samples, fetched %d", es.Samples, fetched)
		}
		if e == 0 {
			tailItems = fetched - es.Samples
		}
	}
	rawPrepped := raw - float64(tailItems)*dOdd.AvgItemBytes()
	want := rawPrepped / prep.Rate(cfg.Model, cfg.withDefaults().prepConfig())
	if diff := math.Abs(r.PrepBusySeconds - want); diff > 1e-9*want {
		t.Errorf("distributed tail: PrepBusySeconds %v, analytic accounting %v (tail of %d items must be uncharged)",
			r.PrepBusySeconds, want, tailItems)
	}
}

// TestConcurrentBackendDeterministicStats: same config twice yields the
// same counters (wall time varies, statistics must not).
func TestConcurrentBackendDeterministicStats(t *testing.T) {
	d := equalSizeDataset(2048)
	cfg := propConfig(d, 1, 8, 16, 3)
	cfg.Backend = BackendConcurrent
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Epochs {
		if a.Epochs[e].Hits != b.Epochs[e].Hits || a.Epochs[e].Misses != b.Epochs[e].Misses {
			t.Fatalf("epoch %d: run-to-run drift: %d/%d vs %d/%d",
				e, a.Epochs[e].Hits, a.Epochs[e].Misses, b.Epochs[e].Hits, b.Epochs[e].Misses)
		}
	}
}
