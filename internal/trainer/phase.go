package trainer

// PhaseBreakdown attributes an epoch's time to the paper's fig-5 phases:
// GPU-busy, fetch stall (time the pipeline waited on disk/network I/O),
// and prep stall (the remaining unmasked stall — host-side decode and
// augmentation). The epoch stats record total stall but not its split,
// so fetch stall is reconstructed as the time the recorded I/O volume
// needs at the configured device bandwidths, capped at the total stall;
// whatever stall that leaves is prep. diskBW and netBW are bytes/s; a
// non-positive bandwidth contributes no fetch time (that source is
// treated as free, matching a FullyCached or Synthetic fetch path).
func (e EpochStats) PhaseBreakdown(diskBW, netBW float64) (gpuBusy, fetchStall, prepStall float64) {
	gpuBusy = e.ComputeTime
	var ioTime float64
	if diskBW > 0 {
		ioTime += e.DiskBytes / diskBW
	}
	if netBW > 0 {
		ioTime += e.NetBytes / netBW
	}
	fetchStall = ioTime
	if fetchStall > e.StallTime {
		fetchStall = e.StallTime
	}
	prepStall = e.StallTime - fetchStall
	return gpuBusy, fetchStall, prepStall
}
