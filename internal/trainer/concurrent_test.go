package trainer

import (
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
)

func TestCoordinatedMultiGPUJobs(t *testing.T) {
	// Fig 9(e)'s 4x2 shape: four 2-GPU jobs with coordinated prep.
	d := dataset.OpenImages.Scale(0.002)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 2,
		CacheBytes: d.TotalBytes, Batch: 128,
	}
	r, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 4, GPUsPerJob: 2, Coordinated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 4 {
		t.Fatalf("jobs %d", len(r.Jobs))
	}
	for j, jr := range r.Jobs {
		if len(jr.Epochs) != 2 {
			t.Fatalf("job %d finished %d epochs", j, len(jr.Epochs))
		}
		// Each job sees the whole (truncated) dataset per epoch.
		if jr.Epochs[0].Samples == 0 {
			t.Fatalf("job %d consumed nothing", j)
		}
	}
}

func TestCoordUsePageCacheAblation(t *testing.T) {
	// "Coordinated prep alone" (Appendix E.2.3): coordination without
	// MinIO should beat independent jobs but read more disk than
	// coordination with MinIO.
	d := dataset.OpenImages.Scale(0.002)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 3,
		CacheBytes: 0.5 * d.TotalBytes, Batch: 128,
	}
	pagecacheCoord, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 8, GPUsPerJob: 1,
		Coordinated: true, CoordUsePageCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	minioCoord, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if minioCoord.DiskPerEpoch >= pagecacheCoord.DiskPerEpoch {
		t.Fatalf("minio coord disk %.0f not below page-cache coord %.0f",
			minioCoord.DiskPerEpoch, pagecacheCoord.DiskPerEpoch)
	}
}

func TestDisableRemoteFetchAblation(t *testing.T) {
	// Without the remote path, distributed CoorDL falls back to local
	// storage on local misses — slower on HDD (§4.2's premise).
	d := dataset.OpenImages.Scale(0.003)
	run := func(disable bool) *Result {
		r, err := Run(Config{
			Model: gpu.MustByName("resnet18"), Dataset: d,
			Spec: cluster.ConfigHDD1080Ti(), NumServers: 2, Batch: 128,
			Loader: loader.CoorDL, CacheBytes: 0.65 * d.TotalBytes,
			DisableRemoteFetch: disable, Epochs: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	with := run(false)
	without := run(true)
	if with.EpochTime >= without.EpochTime {
		t.Fatalf("remote fetch (%.2fs) should beat local-only (%.2fs)",
			with.EpochTime, without.EpochTime)
	}
	if with.NetPerEpoch == 0 || without.NetPerEpoch > with.NetPerEpoch {
		t.Fatalf("network accounting wrong: with=%v without=%v",
			with.NetPerEpoch, without.NetPerEpoch)
	}
}

func TestTFRecordConcurrentReadAmplification(t *testing.T) {
	// Table 3's HP column: 8 jobs over record files amplify reads.
	records := &dataset.Dataset{Name: "recs", NumItems: 1000, TotalBytes: 1000 * 3e6}
	base := Config{
		Model: gpu.MustByName("resnet18"), Dataset: records,
		Spec: cluster.ConfigSSDV100(), Loader: loader.DALIShuffle,
		Batch: 8, CacheBytes: 0.35 * records.TotalBytes, Epochs: 3,
	}
	r, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 8, GPUsPerJob: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadAmplification < 3 {
		t.Fatalf("read amplification %.1f, want several x for 8 jobs", r.ReadAmplification)
	}
}

func TestConcurrentValidation(t *testing.T) {
	d := dataset.OpenImages.Scale(0.002)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Batch: 128,
	}
	if _, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 0, GPUsPerJob: 1}); err == nil {
		t.Fatal("zero jobs should fail")
	}
	if _, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 9, GPUsPerJob: 1}); err == nil {
		t.Fatal("9 jobs on 8 GPUs should fail")
	}
	if _, err := RunConcurrent(ConcurrentConfig{Base: base, NumJobs: 2, GPUsPerJob: 8}); err == nil {
		t.Fatal("16 GPUs on an 8-GPU server should fail")
	}
}

func TestCoordinatedDeterminism(t *testing.T) {
	d := dataset.OpenImages.Scale(0.002)
	cc := ConcurrentConfig{
		Base: Config{
			Model: gpu.MustByName("alexnet"), Dataset: d,
			Spec: cluster.ConfigSSDV100(), Epochs: 2,
			CacheBytes: 0.65 * d.TotalBytes, Batch: 128, Seed: 7,
		},
		NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
	}
	a, err := RunConcurrent(cc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConcurrent(cc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDiskBytes != b.TotalDiskBytes ||
		a.Jobs[0].EpochTime != b.Jobs[0].EpochTime ||
		a.StagingPeakBytes != b.StagingPeakBytes {
		t.Fatal("coordinated run not deterministic")
	}
}

func TestStagingEvictionsComplete(t *testing.T) {
	// After a coordinated run every staged batch must have been evicted
	// (produced == evicted): nothing leaks across epochs.
	d := dataset.OpenImages.Scale(0.001)
	base := Config{
		Model: gpu.MustByName("alexnet"), Dataset: d,
		Spec: cluster.ConfigSSDV100(), Epochs: 2,
		CacheBytes: d.TotalBytes, Batch: 64,
	}
	r, err := RunConcurrent(ConcurrentConfig{
		Base: base, NumJobs: 4, GPUsPerJob: 1, Coordinated: true,
		TraceStagingMem: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.StagingTrace.Len(); n == 0 {
		t.Fatal("no staging activity")
	}
	last := r.StagingTrace.Values[r.StagingTrace.Len()-1]
	if last != 0 {
		t.Fatalf("staging not drained at end: %v bytes", last)
	}
}
