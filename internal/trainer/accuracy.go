package trainer

import "math"

// LearningCurve models top-1 validation accuracy as a function of completed
// epochs for a step-LR schedule: a saturating base curve plus a bounded jump
// after each learning-rate decay. CoorDL does not alter the learning
// algorithm (§5.4), so time-to-accuracy differs between loaders only through
// epoch time; the curve itself is shared.
type LearningCurve struct {
	// Base saturates at BaseAcc with time constant Tau (epochs).
	BaseAcc float64
	Tau     float64
	// Steps are learning-rate decay epochs; each adds StepGain[i]
	// saturating with StepTau epochs.
	Steps    []int
	StepGain []float64
	StepTau  float64
}

// ResNet50ImageNet is the standard 90-epoch step-schedule curve reaching
// the paper's 75.9% top-1 target (Fig 10).
var ResNet50ImageNet = LearningCurve{
	BaseAcc: 0.645, Tau: 7,
	Steps:    []int{30, 60, 80},
	StepGain: []float64{0.075, 0.032, 0.008},
	StepTau:  4,
}

// Accuracy returns top-1 accuracy after e completed epochs.
func (c LearningCurve) Accuracy(e float64) float64 {
	if e <= 0 {
		return 0
	}
	acc := c.BaseAcc * (1 - math.Exp(-e/c.Tau))
	for i, s := range c.Steps {
		if e > float64(s) {
			acc += c.StepGain[i] * (1 - math.Exp(-(e-float64(s))/c.StepTau))
		}
	}
	return acc
}

// FinalAccuracy returns the asymptotic accuracy of the curve.
func (c LearningCurve) FinalAccuracy() float64 {
	acc := c.BaseAcc
	for _, g := range c.StepGain {
		acc += g
	}
	return acc
}

// EpochsToAccuracy returns the number of epochs needed to reach target
// accuracy (and ok=false if the curve never reaches it).
func (c LearningCurve) EpochsToAccuracy(target float64) (int, bool) {
	if target > c.FinalAccuracy() {
		return 0, false
	}
	for e := 1; e <= 100000; e++ {
		if c.Accuracy(float64(e)) >= target {
			return e, true
		}
	}
	return 0, false
}

// AccuracyPoint is one point of an accuracy-vs-wall-clock curve.
type AccuracyPoint struct {
	Hours    float64
	Epoch    int
	Accuracy float64
}

// AccuracyTimeline converts a per-epoch wall-clock time into the Fig 10
// accuracy-over-time curve, up to maxEpochs.
func (c LearningCurve) AccuracyTimeline(epochSeconds float64, maxEpochs int) []AccuracyPoint {
	out := make([]AccuracyPoint, 0, maxEpochs)
	for e := 1; e <= maxEpochs; e++ {
		out = append(out, AccuracyPoint{
			Hours:    float64(e) * epochSeconds / 3600,
			Epoch:    e,
			Accuracy: c.Accuracy(float64(e)),
		})
	}
	return out
}

// TimeToAccuracy returns the wall-clock hours to reach target given a
// steady-state epoch time in seconds.
func (c LearningCurve) TimeToAccuracy(epochSeconds, target float64) (float64, bool) {
	e, ok := c.EpochsToAccuracy(target)
	if !ok {
		return 0, false
	}
	return float64(e) * epochSeconds / 3600, true
}
