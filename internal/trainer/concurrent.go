package trainer

import (
	"context"
	"fmt"

	"datastall/internal/cluster"
	"datastall/internal/core"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// ConcurrentConfig describes a hyper-parameter-search workload: NumJobs
// concurrent jobs on one server, each training the same model on the same
// dataset with GPUsPerJob GPUs (§3.3.1, §5.3).
type ConcurrentConfig struct {
	// Base supplies model, dataset, SKU, batch, epochs, framework, cache
	// size and seed. NumServers is forced to 1; GPUsPerServer to
	// GPUsPerJob; ThreadsPerGPU to the job's fair CPU share.
	Base Config

	NumJobs    int
	GPUsPerJob int

	// Coordinated enables CoorDL's coordinated prep (§4.3): the dataset
	// is sharded across jobs, fetched and pre-processed exactly once per
	// epoch, and shared through the staging area. When false, the jobs
	// run independently, contending on the shared page cache, disk, and
	// CPU — the DALI/PyTorch baseline.
	Coordinated bool
	// StagingCapBytes bounds the cross-job staging area (default 5 GiB,
	// the footprint the paper measures in §5.5).
	StagingCapBytes float64
	// TraceStagingMem records the staging memory time series (Fig 20).
	TraceStagingMem bool

	// CoordUsePageCache makes coordinated prep fetch through the OS page
	// cache instead of MinIO — the "coordinated prep alone" configuration
	// of Appendix E.2.3's component breakdown.
	CoordUsePageCache bool

	// KillJob, if >= 0, makes that job's producers die after
	// KillAfterBatches batches (failure-injection for §4.3's detector).
	KillJob          int
	KillAfterBatches int
}

// ConcurrentResult reports a finished multi-job run.
type ConcurrentResult struct {
	// Jobs holds per-job results (durations, throughput, hit rates).
	Jobs []*Result
	// TotalDiskBytes is storage I/O across the whole run.
	TotalDiskBytes float64
	// DiskPerEpoch is steady-state storage I/O per epoch (after warmup).
	DiskPerEpoch float64
	// ReadAmplification is DiskPerEpoch / dataset size: >1 means the
	// server reads the dataset multiple times per epoch (§3.3.1).
	ReadAmplification float64
	// StagingPeakBytes / StagingTrace describe coordinated-prep memory.
	StagingPeakBytes float64
	StagingTrace     *stats.TimeSeries
	// DetectedFailures lists jobs the failure detector declared dead.
	DetectedFailures []int
}

// RunConcurrent executes the workload and returns per-job and aggregate
// statistics. It is the legacy blocking entry point; new code should call
// RunConcurrentContext, which honors cancellation.
func RunConcurrent(cc ConcurrentConfig) (*ConcurrentResult, error) {
	return RunConcurrentContext(context.Background(), cc)
}

// RunConcurrentContext executes the workload like RunConcurrent but honors
// ctx: the shared simulation engine polls for cancellation between events,
// so a cancelled context returns ctx.Err() promptly (immediately when
// already cancelled) instead of running the jobs to completion.
func RunConcurrentContext(ctx context.Context, cc ConcurrentConfig) (*ConcurrentResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cc.NumJobs < 1 || cc.GPUsPerJob < 1 {
		return nil, fmt.Errorf("trainer: need >= 1 job and GPU per job")
	}
	if cc.Base.Backend == BackendConcurrent {
		// HP-search jobs share one simulation engine (cross-job cache and
		// staging contention is the whole point); they have no concurrent
		// execution path yet, and silently running analytic would
		// misrepresent the requested backend.
		return nil, fmt.Errorf("trainer: HP-search jobs are not supported by the concurrent backend")
	}
	base := cc.Base
	base.NumServers = 1
	base.GPUsPerServer = cc.GPUsPerJob
	if base.ThreadsPerGPU == 0 {
		perJob := base.Spec.PhysicalCores / cc.NumJobs
		if perJob < 1 {
			perJob = 1
		}
		base.ThreadsPerGPU = perJob / cc.GPUsPerJob
		if base.ThreadsPerGPU < 1 {
			base.ThreadsPerGPU = 1
		}
	}
	base = base.withDefaults()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if cc.NumJobs*cc.GPUsPerJob > base.Spec.NumGPUs {
		return nil, fmt.Errorf("trainer: %d jobs x %d GPUs exceed the server's %d GPUs",
			cc.NumJobs, cc.GPUsPerJob, base.Spec.NumGPUs)
	}
	if cc.StagingCapBytes == 0 {
		cc.StagingCapBytes = 5 * stats.GiB
	}
	if cc.KillJob == 0 && cc.KillAfterBatches == 0 {
		cc.KillJob = -1
	}
	cc.Base = base

	if cc.Coordinated {
		return runCoordinated(ctx, cc)
	}
	return runIndependent(ctx, cc)
}

// runIndependent runs NumJobs uncoordinated jobs sharing one server's page
// cache, storage and CPU.
func runIndependent(ctx context.Context, cc ConcurrentConfig) (*ConcurrentResult, error) {
	eng := sim.New()
	cl := cluster.Build(eng, cc.Base.Spec, 1)
	var shared loader.Fetcher
	switch {
	case cc.Base.FetchMode == FullyCached:
		shared = &loader.CachedFetcher{Dataset: cc.Base.Dataset, Cluster: cl}
	case cc.Base.RecordBytes > 0:
		shared = loader.NewTFRecordFetcher(cc.Base.Dataset, cl, cc.Base.CacheBytes, cc.Base.RecordBytes, cc.Base.Seed)
	case cc.Base.Loader == loader.CoorDL:
		// MinIO without coordination (ablation).
		shared = core.NewMinIOFetcher(cc.Base.Dataset, cl, cc.Base.CacheBytes)
	default:
		shared = loader.NewPageCacheFetcher(cc.Base.Dataset, cl, cc.Base.CacheBytes, cc.Base.Seed)
	}
	var rts []*jobRuntime
	for j := 0; j < cc.NumJobs; j++ {
		cfg := cc.Base
		cfg.Seed = cc.Base.Seed + int64(j)*131
		rt, err := newJobRuntimeWith(cfg, eng, cl, shared, nil)
		if err != nil {
			return nil, err
		}
		rt.launch()
		rts = append(rts, rt)
	}
	if err := eng.RunContext(ctx, sim.DefaultCancelPoll); err != nil {
		return nil, err
	}

	res := &ConcurrentResult{TotalDiskBytes: cl.TotalDiskBytes()}
	for _, rt := range rts {
		res.Jobs = append(res.Jobs, rt.result())
	}
	fillDiskAggregates(res, rts[0], cc.Base)
	return res, nil
}

// fillDiskAggregates derives steady-state disk I/O per epoch from job 0's
// epoch boundaries (jobs progress nearly in lockstep).
func fillDiskAggregates(res *ConcurrentResult, rt0 *jobRuntime, base Config) {
	if len(rt0.snaps) >= 2 {
		first := rt0.snaps[0].disk
		last := rt0.snaps[len(rt0.snaps)-1].disk
		res.DiskPerEpoch = (last - first) / float64(len(rt0.snaps)-1)
	} else {
		res.DiskPerEpoch = res.TotalDiskBytes
	}
	res.ReadAmplification = res.DiskPerEpoch / base.Dataset.TotalBytes
}

// runCoordinated runs CoorDL's coordinated prep: one fetch+prep sweep per
// epoch shared by all jobs through the staging area.
func runCoordinated(ctx context.Context, cc ConcurrentConfig) (*ConcurrentResult, error) {
	eng := sim.New()
	base := cc.Base
	cl := cluster.Build(eng, base.Spec, 1)
	var fetcher loader.Fetcher
	switch {
	case cc.CoordUsePageCache:
		fetcher = loader.NewPageCacheFetcher(base.Dataset, cl, base.CacheBytes, base.Seed)
	case base.FetchMode == FullyCached:
		fetcher = &loader.CachedFetcher{Dataset: base.Dataset, Cluster: cl}
	default:
		fetcher = core.NewMinIOFetcher(base.Dataset, cl, base.CacheBytes)
	}
	staging := core.NewStagingArea(eng, cc.NumJobs, cc.StagingCapBytes)
	if cc.TraceStagingMem {
		staging.EnableMemTrace("staging-mem")
	}

	rt := &coordRuntime{
		cc: cc, eng: eng, cl: cl, fetcher: fetcher, staging: staging,
		shards:     dataset.SplitRandom(base.Dataset, cc.NumJobs, base.Seed),
		orderCache: map[orderKey][]dataset.ItemID{},
	}
	rt.setup()
	rt.launch()
	if err := eng.RunContext(ctx, sim.DefaultCancelPoll); err != nil {
		return nil, err
	}
	return rt.result(), nil
}

// coordRuntime is the coordinated-prep runtime (§4.3).
type coordRuntime struct {
	cc      ConcurrentConfig
	eng     *sim.Engine
	cl      *cluster.Cluster
	fetcher loader.Fetcher
	staging *core.StagingArea
	shards  []dataset.Shard

	batchesPerJob int                    // per epoch; total = NumJobs * batchesPerJob
	itersPerGPU   int                    // per epoch, per consumer GPU
	prepRate      float64                // per-job aggregate prep rate (bytes/s)
	prepSrv       []*sim.BandwidthServer // per job: intra-batch parallel prep
	producers     int                    // per job
	prepBatch     float64                // prepared bytes per staged batch
	iterTime      float64

	produced []int // per job, cumulative batches produced
	jobDead  bool
	detector *core.FailureDetector

	// orderCache memoizes shard orders per (job, epoch): a job's P
	// producers (plus any recovery producer) share one shuffle instead of
	// each re-deriving an identical permutation. Entries two epochs old
	// are dropped to bound memory. Single-threaded simulation: no lock.
	orderCache map[orderKey][]dataset.ItemID

	// Per-job accounting.
	jobs []*coordJobStats
}

type coordJobStats struct {
	barrier *sim.Barrier
	snaps   []snapshot
	samples int
	fetch   loader.FetchResult
	waitGet float64
}

func (rt *coordRuntime) setup() {
	cc := rt.cc
	base := cc.Base
	minShard := rt.shards[0].Items
	for _, sh := range rt.shards {
		if len(sh.Items) < len(minShard) {
			minShard = sh.Items
		}
	}
	bpj := len(minShard) / base.Batch
	// Total staged batches per epoch must divide evenly across each
	// job's GPUs.
	for bpj > 0 && (bpj*cc.NumJobs)%cc.GPUsPerJob != 0 {
		bpj--
	}
	rt.batchesPerJob = bpj
	rt.itersPerGPU = bpj * cc.NumJobs / cc.GPUsPerJob

	// Coordinated prep preps each shard once using the job's full CPU
	// share; all jobs together apply the server's full core count.
	pc := base.prepConfig()
	pc.Threads = base.ThreadsPerGPU * cc.GPUsPerJob // whole job's threads
	physPerJob := base.Spec.PhysicalCores / cc.NumJobs
	if physPerJob < 1 {
		physPerJob = 1
	}
	if pc.PhysicalCores = physPerJob; pc.PhysicalCores > pc.Threads {
		pc.PhysicalCores = pc.Threads
	}
	pc.NumGPUs = cc.GPUsPerJob
	rt.prepRate = prep.Rate(base.Model, pc)
	rt.producers = pc.Threads
	if rt.producers > 4 {
		rt.producers = 4
	}
	rt.prepBatch = float64(base.Batch) * base.Model.PreparedBytes
	rt.iterTime = base.Model.BatchTime(base.Spec.Gen, base.Batch, pc.GPUPrep)

	rt.produced = make([]int, cc.NumJobs)
	for j := 0; j < cc.NumJobs; j++ {
		rt.jobs = append(rt.jobs, &coordJobStats{
			barrier: sim.NewBarrier(rt.eng, cc.GPUsPerJob),
		})
		rt.prepSrv = append(rt.prepSrv, sim.NewBandwidthServer(rt.eng))
	}
}

func (rt *coordRuntime) launch() {
	cc := rt.cc
	for j := 0; j < cc.NumJobs; j++ {
		for k := 0; k < rt.producers; k++ {
			j, k := j, k
			rt.eng.Go(fmt.Sprintf("coord-prod-%d-%d", j, k), func(p *sim.Proc) {
				rt.producer(p, j, k, 0)
			})
		}
		for g := 0; g < cc.GPUsPerJob; g++ {
			j, g := j, g
			rt.eng.Go(fmt.Sprintf("coord-gpu-%d-%d", j, g), func(p *sim.Proc) {
				rt.consumer(p, j, g)
			})
		}
	}
	if cc.KillJob >= 0 {
		rt.detector = &core.FailureDetector{
			Staging: rt.staging,
			Timeout: 10 * rt.iterTime,
			Alive:   func(job int) bool { return !(job == cc.KillJob && rt.jobDead) },
			Recover: func(job int) {
				rt.staging.RemoveJob(job)
				rt.eng.Go("coord-recovery", func(p *sim.Proc) {
					rt.recoveryProducer(p, job)
				})
			},
		}
		horizon := float64(rt.itersPerGPU*cc.Base.Epochs) * rt.iterTime * 50
		rt.eng.Go("failure-detector", func(p *sim.Proc) {
			rt.detector.Run(p, horizon)
		})
	}
}

// orderKey addresses one job's memoized epoch order.
type orderKey struct{ job, epoch int }

// shardOrder returns job j's shard order for an epoch, memoized so the
// job's producers shuffle once per epoch between them.
func (rt *coordRuntime) shardOrder(j, epoch int) []dataset.ItemID {
	k := orderKey{j, epoch}
	if order, ok := rt.orderCache[k]; ok {
		return order
	}
	s := dataset.NewRandomSampler(rt.shards[j], rt.cc.Base.Seed+int64(j)*977)
	order := s.EpochOrder(epoch)
	rt.orderCache[k] = order
	delete(rt.orderCache, orderKey{j, epoch - 2})
	return order
}

// producer fetches and preps job j's shard, staging batches for all jobs.
// Producer k handles batches k, k+P, ... of the shard. startEpoch lets a
// recovery producer resume mid-run.
func (rt *coordRuntime) producer(p *sim.Proc, j, k, startEpoch int) {
	cc := rt.cc
	base := cc.Base
	for e := startEpoch; e < base.Epochs; e++ {
		rt.staging.WaitEpochStart(p, e)
		order := rt.shardOrder(j, e)
		epochBase := e * cc.NumJobs * rt.batchesPerJob
		for n := k; n < rt.batchesPerJob; n += rt.producers {
			if cc.KillJob == j && rt.produced[j] >= cc.KillAfterBatches {
				rt.jobDead = true
				return
			}
			items := order[n*base.Batch : (n+1)*base.Batch]
			res := rt.fetcher.FetchBatch(p, 0, items)
			rt.jobs[j].fetch.Add(res)
			raw := res.MemBytes + res.DiskBytes + res.NetBytes
			rt.prepSrv[j].Request(p, raw, rt.prepRate, 0)
			// Write the prepared batch into shared memory.
			rt.cl.Servers[0].Staging.Request(p, rt.prepBatch, base.Spec.StagingBW, 0)
			rt.staging.Put(p, &core.Batch{
				Index: epochBase + n*cc.NumJobs + j,
				Owner: j, Items: items, PreparedBytes: rt.prepBatch,
			})
			rt.produced[j]++
		}
	}
}

// recoveryProducer takes over a dead job's shard from where it stopped.
func (rt *coordRuntime) recoveryProducer(p *sim.Proc, j int) {
	cc := rt.cc
	base := cc.Base
	done := rt.produced[j]
	epoch := done / rt.batchesPerJob
	offset := done % rt.batchesPerJob
	for e := epoch; e < base.Epochs; e++ {
		rt.staging.WaitEpochStart(p, e)
		order := rt.shardOrder(j, e)
		epochBase := e * cc.NumJobs * rt.batchesPerJob
		start := 0
		if e == epoch {
			start = offset
		}
		for n := start; n < rt.batchesPerJob; n++ {
			items := order[n*base.Batch : (n+1)*base.Batch]
			res := rt.fetcher.FetchBatch(p, 0, items)
			raw := res.MemBytes + res.DiskBytes + res.NetBytes
			rt.prepSrv[j].Request(p, raw, rt.prepRate, 0)
			rt.cl.Servers[0].Staging.Request(p, rt.prepBatch, base.Spec.StagingBW, 0)
			rt.staging.Put(p, &core.Batch{
				Index: epochBase + n*cc.NumJobs + j,
				Owner: j, Items: items, PreparedBytes: rt.prepBatch,
			})
		}
	}
}

// consumer is GPU g of job j: it reads every staged batch exactly once.
func (rt *coordRuntime) consumer(p *sim.Proc, j, g int) {
	cc := rt.cc
	base := cc.Base
	js := rt.jobs[j]
	for e := 0; e < base.Epochs; e++ {
		epochBase := e * cc.NumJobs * rt.batchesPerJob
		hi := epochBase + cc.NumJobs*rt.batchesPerJob
		for it := 0; it < rt.itersPerGPU; it++ {
			if cc.KillJob == j && rt.jobDead {
				return // the killed job's consumers exit too
			}
			t0 := p.Now()
			rt.staging.GetAny(p, j, epochBase, hi)
			js.waitGet += p.Now() - t0
			// Copy the prepared batch out of shared memory.
			rt.cl.Servers[0].Staging.Request(p, rt.prepBatch, base.Spec.StagingBW, 0)
			p.Sleep(rt.iterTime)
			js.barrier.Wait(p)
		}
		js.samples += rt.itersPerGPU * base.Batch * cc.GPUsPerJob
		if g == 0 {
			js.snaps = append(js.snaps, snapshot{
				t:       rt.eng.Now(),
				disk:    rt.cl.TotalDiskBytes(),
				fetch:   js.fetch,
				samples: js.samples,
			})
			rt.staging.JobEpochDone(e)
		}
	}
}

func (rt *coordRuntime) result() *ConcurrentResult {
	cc := rt.cc
	res := &ConcurrentResult{
		TotalDiskBytes:   rt.cl.TotalDiskBytes(),
		StagingPeakBytes: rt.staging.PeakBytes(),
		StagingTrace:     rt.staging.MemTrace,
	}
	if rt.detector != nil {
		res.DetectedFailures = rt.detector.Detected
	}
	var rt0snaps []snapshot
	for j := range rt.jobs {
		r := &Result{}
		prev := snapshot{}
		for _, s := range rt.jobs[j].snaps {
			dur := s.t - prev.t
			epSamples := s.samples - prev.samples
			iters := epSamples / (cc.Base.Batch * cc.GPUsPerJob)
			compute := float64(iters) * rt.iterTime
			es := EpochStats{
				Duration: dur, ComputeTime: compute, StallTime: dur - compute,
				DiskBytes: s.disk - prev.disk,
				Hits:      s.fetch.Hits - prev.fetch.Hits,
				Misses:    s.fetch.Misses - prev.fetch.Misses,
				Samples:   epSamples,
			}
			if es.StallTime < 0 {
				es.StallTime = 0
			}
			r.Epochs = append(r.Epochs, es)
			prev = s
		}
		r.TotalDiskBytes = res.TotalDiskBytes
		r.TotalTime = rt.eng.Now()
		r.steadyState()
		res.Jobs = append(res.Jobs, r)
		if j == 0 {
			rt0snaps = rt.jobs[j].snaps
		}
	}
	if len(rt0snaps) >= 2 {
		first := rt0snaps[0].disk
		last := rt0snaps[len(rt0snaps)-1].disk
		res.DiskPerEpoch = (last - first) / float64(len(rt0snaps)-1)
	} else {
		res.DiskPerEpoch = res.TotalDiskBytes
	}
	res.ReadAmplification = res.DiskPerEpoch / cc.Base.Dataset.TotalBytes
	return res
}
