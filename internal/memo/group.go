package memo

import (
	"context"
	"sync"

	"datastall/internal/trainer"
)

// Group collapses concurrent identical work (singleflight): among callers
// presenting the same key at the same time, one — the leader — runs fn and
// the rest wait for its answer. The Cache embeds one to deduplicate
// in-flight cases across jobs; executors without a cache use a job-local
// Group so grids with repeated axis values still simulate each unique case
// once. The zero value is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  *trainer.Result
	err  error
}

// Do runs fn once per key among concurrent callers. shared reports that
// the result came from another caller's flight. A leader's error is
// returned to the leader only and never shared: the error may be private
// to the leader (its job was cancelled), so each waiter loops back and
// competes to lead instead of inheriting it — a deterministic failure
// costs one run per interested caller, a cancellation poisons nobody.
func (g *Group) Do(ctx context.Context, key string, fn func() (*trainer.Result, error)) (res *trainer.Result, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = map[string]*flight{}
		}
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.res, true, nil
			}
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		f.res, f.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}
