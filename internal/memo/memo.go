// Package memo is a content-addressed cache of simulation results: the
// answer to "this exact fully-resolved case" is stored once under the
// sha256 of its canonical preimage and replayed on every later request —
// in this process from an in-memory LRU, across processes from a persisted
// entry directory shared by `runsuite -memo` and `stallserved -memo`.
//
// The cache is only correct because the simulations are deterministic and
// trainer.Result round-trips JSON exactly (Go emits shortest-roundtrip
// floats — the property coordinator mode and the WAL already lean on), so
// a memoized cell is byte-identical to a re-simulated one all the way out
// to rendered reports and /v1/query NDJSON. Staleness is prevented by
// construction, not by TTLs: the preimage embeds an engine-version salt
// (salt.go), so any build of different code hashes every case to a
// different address and an old cache directory degrades to a cold one.
//
// Entries are written crash-atomically (wal.AtomicWriteFile) in a CRC-framed
// envelope; a torn, truncated or bit-flipped entry fails its checksum or
// its hash check, is counted as a load error, deleted, and treated as a
// miss — corruption can cost a re-simulation, never a wrong result.
package memo

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datastall/internal/trainer"
	"datastall/internal/wal"
)

const (
	// entryMagic leads every persisted entry; a file that does not start
	// with it is not (a whole) entry.
	entryMagic = "DSMEMO1\n"
	// headerLen is magic + 4-byte length + 4-byte CRC32C.
	headerLen = len(entryMagic) + 8
	// maxEntryBytes bounds a single entry payload — far above any real
	// Result, it exists so a corrupt length field cannot drive a huge
	// allocation (the same guard the WAL frame decoder applies).
	maxEntryBytes = 64 << 20
	// DefaultMaxBytes is the cache budget when Options.MaxBytes is unset,
	// applied independently to the in-memory LRU and the entry directory.
	DefaultMaxBytes = 256 << 20
)

// ErrCorrupt marks an entry that failed structural validation: bad magic,
// impossible length, CRC mismatch, undecodable payload, or a preimage that
// does not hash to the entry's recorded key.
var ErrCorrupt = errors.New("memo: corrupt entry")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Key is one case's content address: the canonical preimage (which embeds
// the engine salt) and its hex sha256. Build keys with KeyFromPreimage so
// the two can never disagree.
type Key struct {
	// Hash is the 64-hex-char sha256 of Preimage — the cache address.
	Hash string
	// Preimage is the canonical JSON the hash covers. Persisted inside the
	// entry so every entry is self-describing and verifiable.
	Preimage []byte
}

// KeyFromPreimage addresses a canonical preimage.
func KeyFromPreimage(preimage []byte) Key {
	sum := sha256.Sum256(preimage)
	return Key{Hash: hex.EncodeToString(sum[:]), Preimage: append([]byte(nil), preimage...)}
}

// entryJSON is the persisted payload: the address, the preimage it was
// derived from, and the result. Key is redundant with the filename on
// purpose — a renamed or cross-linked file fails validation instead of
// serving another case's result.
type entryJSON struct {
	Key      string          `json:"key"`
	Preimage json.RawMessage `json:"preimage"`
	Result   *trainer.Result `json:"result"`
}

// EncodeEntry renders one cache entry in its on-disk form:
//
//	"DSMEMO1\n" | uint32 LE payload length | uint32 LE CRC32C | payload JSON
//
// The frame is the WAL record idiom: length + Castagnoli CRC in front of
// the payload, so truncation and bit flips are detected structurally.
func EncodeEntry(key Key, res *trainer.Result) ([]byte, error) {
	if res == nil {
		return nil, errors.New("memo: nil result")
	}
	if len(key.Preimage) == 0 || !json.Valid(key.Preimage) {
		return nil, errors.New("memo: key has no canonical preimage")
	}
	payload, err := json.Marshal(entryJSON{Key: key.Hash, Preimage: key.Preimage, Result: res})
	if err != nil {
		return nil, fmt.Errorf("memo: encode: %w", err)
	}
	if len(payload) > maxEntryBytes {
		return nil, fmt.Errorf("memo: entry payload %d bytes exceeds the %d-byte bound", len(payload), maxEntryBytes)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint32(buf[len(entryMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(entryMagic)+4:], crc32.Checksum(payload, crcTable))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// DecodeEntry parses and validates one persisted entry. Every failure mode
// wraps ErrCorrupt; a nil error guarantees the returned key's hash is the
// sha256 of the returned preimage and the result is non-nil.
func DecodeEntry(b []byte) (Key, *trainer.Result, error) {
	if len(b) < headerLen || string(b[:len(entryMagic)]) != entryMagic {
		return Key{}, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(b[len(entryMagic):])
	if n > maxEntryBytes || int(n) != len(b)-headerLen {
		return Key{}, nil, fmt.Errorf("%w: payload length %d does not match %d trailing byte(s)", ErrCorrupt, n, len(b)-headerLen)
	}
	payload := b[headerLen:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[len(entryMagic)+4:]) {
		return Key{}, nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	var e entryJSON
	if err := json.Unmarshal(payload, &e); err != nil {
		return Key{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if e.Result == nil || len(e.Preimage) == 0 {
		return Key{}, nil, fmt.Errorf("%w: missing result or preimage", ErrCorrupt)
	}
	key := KeyFromPreimage(e.Preimage)
	if key.Hash != e.Key {
		return Key{}, nil, fmt.Errorf("%w: preimage hashes to %s, entry claims %s", ErrCorrupt, key.Hash, e.Key)
	}
	return key, e.Result, nil
}

// Options configures a Cache.
type Options struct {
	// Dir is the persisted entry directory, shared across processes
	// (runsuite and stallserved read and write the same layout). Empty
	// means memory-only.
	Dir string
	// MaxBytes bounds the in-memory LRU and the entry directory,
	// independently (<= 0: DefaultMaxBytes). The disk bound is enforced
	// both at insert and at Open, so reopening with a smaller budget trims
	// the directory down.
	MaxBytes int64
	// Salt overrides the engine-version salt (empty: EngineSalt()).
	// Callers deriving keys must mix Cache.Salt() into the preimage.
	Salt string
	// OnLookup, when set, observes every memory/disk lookup (hit and its
	// latency) — the feed for the memo_lookup latency histogram. It fires
	// per physical lookup and does not affect the Stats counters.
	OnLookup func(hit bool, d time.Duration)
}

// Stats is a point-in-time snapshot of the cache's counters and occupancy.
type Stats struct {
	// Hits counts cases served without simulating: from memory, from disk,
	// or by waiting on an identical in-flight case. Misses counts cases
	// that had to run.
	Hits, Misses int64
	// Evictions counts entries dropped to stay within MaxBytes — memory
	// LRU evictions, disk-budget deletions, and reload-time trims.
	Evictions int64
	// LoadErrors counts corrupt or mismatched persisted entries that were
	// skipped (and deleted) instead of served.
	LoadErrors int64
	// BytesWritten is the cumulative size of entries written to disk.
	BytesWritten int64
	// Entries / ResidentBytes describe the in-memory LRU; DiskEntries /
	// DiskBytes the entry directory.
	Entries       int
	ResidentBytes int64
	DiskEntries   int
	DiskBytes     int64
}

// Cache is the content-addressed result cache. All methods are safe for
// concurrent use; identical in-flight cases are collapsed by an internal
// singleflight Group so each unique case simulates at most once at a time.
type Cache struct {
	dir      string
	max      int64
	salt     string
	onLookup func(hit bool, d time.Duration)

	group Group

	hits, misses, evictions, loadErrors, bytesWritten atomic.Int64

	// mu guards the in-memory LRU (front = most recently used).
	mu    sync.Mutex
	ll    *list.List
	idx   map[string]*list.Element
	bytes int64

	// dmu guards the disk-entry ledger (front = oldest write).
	dmu       sync.Mutex
	dl        *list.List
	didx      map[string]*list.Element
	diskBytes int64
}

type memEntry struct {
	hash string
	res  *trainer.Result
	size int64
}

type diskEntry struct {
	hash string
	size int64
}

// Open builds a Cache. With Options.Dir set the directory is created if
// missing and its existing entries are indexed — and, mirroring the job
// store's MaxRecords-at-reload rule, trimmed oldest-first down to MaxBytes
// right here, so restarting with a smaller budget takes effect immediately
// instead of only on the next insert.
func Open(o Options) (*Cache, error) {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.Salt == "" {
		o.Salt = EngineSalt()
	}
	c := &Cache{
		dir: o.Dir, max: o.MaxBytes, salt: o.Salt, onLookup: o.OnLookup,
		ll: list.New(), idx: map[string]*list.Element{},
		dl: list.New(), didx: map[string]*list.Element{},
	}
	if c.dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: %w", err)
	}
	if err := c.scan(); err != nil {
		return nil, err
	}
	return c, nil
}

// Salt returns the engine-version salt callers must mix into key preimages.
func (c *Cache) Salt() string { return c.salt }

// MaxBytes returns the configured budget.
func (c *Cache) MaxBytes() int64 { return c.max }

// path places an entry under a two-hex-char fan-out directory.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".memo")
}

// scan indexes the entry directory oldest-first and enforces MaxBytes at
// reload: entries beyond the budget are deleted before anything is served.
// File contents are validated lazily on first Get, not here — a corrupt
// entry costs a load error then, never a failed Open.
func (c *Cache) scan() error {
	type onDisk struct {
		hash  string
		size  int64
		mtime int64
	}
	var found []onDisk
	subs, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(c.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".memo") {
				continue
			}
			hash := strings.TrimSuffix(name, ".memo")
			if len(hash) != sha256.Size*2 || !strings.HasPrefix(hash, sub.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, onDisk{hash: hash, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	// Oldest first (name tiebreak keeps the trim deterministic when a
	// filesystem's mtimes collide).
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].hash < found[j].hash
	})
	var total int64
	for _, f := range found {
		total += f.size
	}
	i := 0
	for total > c.max && i < len(found) {
		if err := os.Remove(c.path(found[i].hash)); err == nil || os.IsNotExist(err) {
			total -= found[i].size
			c.evictions.Add(1)
			i++
		} else {
			return fmt.Errorf("memo: trim: %w", err)
		}
	}
	c.dmu.Lock()
	defer c.dmu.Unlock()
	for _, f := range found[i:] {
		c.didx[f.hash] = c.dl.PushBack(diskEntry{hash: f.hash, size: f.size})
		c.diskBytes += f.size
	}
	return nil
}

// Get looks a key up, counting the outcome. Prefer Do on execution paths —
// it also collapses identical in-flight cases.
func (c *Cache) Get(key Key) (*trainer.Result, bool) {
	if res, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return res, true
	}
	c.misses.Add(1)
	return nil, false
}

// lookup checks memory then disk without touching the hit/miss counters.
func (c *Cache) lookup(key Key) (res *trainer.Result, ok bool) {
	if c.onLookup != nil {
		start := time.Now()
		defer func() { c.onLookup(ok, time.Since(start)) }()
	}
	return c.lookupInner(key)
}

func (c *Cache) lookupInner(key Key) (*trainer.Result, bool) {
	c.mu.Lock()
	if el, ok := c.idx[key.Hash]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(memEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key.Hash))
	if err != nil {
		if !os.IsNotExist(err) {
			c.loadErrors.Add(1)
		}
		// Another process may have trimmed the entry; keep the ledger honest.
		c.dropDisk(key.Hash, false)
		return nil, false
	}
	k, res, derr := DecodeEntry(b)
	if derr != nil || k.Hash != key.Hash {
		// Corrupt, truncated, or misfiled: never served. Count it, delete
		// it, and fall back to a miss (the case just re-simulates).
		c.loadErrors.Add(1)
		os.Remove(c.path(key.Hash))
		c.dropDisk(key.Hash, false)
		return nil, false
	}
	c.addMem(key.Hash, res, int64(len(b)))
	return res, true
}

// Put stores a result under key, in memory and (when persisted) on disk,
// enforcing MaxBytes on both. Errors are I/O only — an entry too large for
// the budget is silently not cached.
func (c *Cache) Put(key Key, res *trainer.Result) error {
	b, err := EncodeEntry(key, res)
	if err != nil {
		return err
	}
	size := int64(len(b))
	if size > c.max {
		return nil
	}
	if c.dir != "" {
		path := c.path(key.Hash)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("memo: %w", err)
		}
		if err := wal.AtomicWriteFile(path, b, 0o644); err != nil {
			return fmt.Errorf("memo: %w", err)
		}
		c.bytesWritten.Add(size)
		c.addDisk(key.Hash, size)
	}
	c.addMem(key.Hash, res, size)
	return nil
}

// addMem inserts into the LRU and evicts from the tail past MaxBytes.
func (c *Cache) addMem(hash string, res *trainer.Result, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[hash]; ok {
		c.bytes += size - el.Value.(memEntry).size
		el.Value = memEntry{hash: hash, res: res, size: size}
		c.ll.MoveToFront(el)
	} else {
		c.idx[hash] = c.ll.PushFront(memEntry{hash: hash, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.max && c.ll.Len() > 1 {
		tail := c.ll.Back()
		e := tail.Value.(memEntry)
		c.ll.Remove(tail)
		delete(c.idx, e.hash)
		c.bytes -= e.size
		c.evictions.Add(1)
	}
}

// addDisk records a written entry and deletes oldest entries past MaxBytes.
func (c *Cache) addDisk(hash string, size int64) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if el, ok := c.didx[hash]; ok {
		c.diskBytes += size - el.Value.(diskEntry).size
		el.Value = diskEntry{hash: hash, size: size}
		c.dl.MoveToBack(el)
	} else {
		c.didx[hash] = c.dl.PushBack(diskEntry{hash: hash, size: size})
		c.diskBytes += size
	}
	for c.diskBytes > c.max && c.dl.Len() > 1 {
		front := c.dl.Front()
		e := front.Value.(diskEntry)
		c.dl.Remove(front)
		delete(c.didx, e.hash)
		c.diskBytes -= e.size
		os.Remove(c.path(e.hash))
		c.evictions.Add(1)
	}
}

// dropDisk forgets a disk entry; when evict is true the drop counts as an
// eviction (it was a policy decision, not a corruption cleanup).
func (c *Cache) dropDisk(hash string, evict bool) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if el, ok := c.didx[hash]; ok {
		c.diskBytes -= el.Value.(diskEntry).size
		c.dl.Remove(el)
		delete(c.didx, hash)
		if evict {
			c.evictions.Add(1)
		}
	}
}

// Do returns the memoized result for key, or runs fn exactly once among
// all concurrent callers with the same key and caches its result. hit
// reports whether the result arrived without this caller simulating
// (cache, or waiting on another caller's identical in-flight case). A
// leader's error is returned to the leader but never cached — a waiting
// caller retries rather than inheriting, say, the leader's cancellation.
func (c *Cache) Do(ctx context.Context, key Key, fn func() (*trainer.Result, error)) (res *trainer.Result, hit bool, err error) {
	if res, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return res, true, nil
	}
	var led bool
	res, _, err = c.group.Do(ctx, key.Hash, func() (*trainer.Result, error) {
		// Re-check under leadership: a previous leader may have populated
		// the cache between our miss and our flight.
		if r, ok := c.lookup(key); ok {
			return r, nil
		}
		led = true
		c.misses.Add(1)
		r, err := fn()
		if err == nil {
			// A failed write only costs future hits; the result is good.
			_ = c.Put(key, r)
		}
		return r, err
	})
	if err != nil {
		return nil, false, err
	}
	if !led {
		c.hits.Add(1)
		return res, true, nil
	}
	return res, false, nil
}

// Stats snapshots the counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Evictions: c.evictions.Load(), LoadErrors: c.loadErrors.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
	c.mu.Lock()
	st.Entries = c.ll.Len()
	st.ResidentBytes = c.bytes
	c.mu.Unlock()
	c.dmu.Lock()
	st.DiskEntries = c.dl.Len()
	st.DiskBytes = c.diskBytes
	c.dmu.Unlock()
	return st
}
