package memo

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datastall/internal/trainer"
)

func testKey(i int) Key {
	return KeyFromPreimage([]byte(fmt.Sprintf(`{"v":1,"case":%d}`, i)))
}

func testResult(i int) *trainer.Result {
	return &trainer.Result{
		EpochTime: float64(i) + 0.5, Throughput: 100 * float64(i),
		StallFraction: 0.25, HitRate: 0.75,
		Epochs: []trainer.EpochStats{{Duration: float64(i) + 0.5, Samples: 64}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	key, res := testKey(1), testResult(1)
	b, err := EncodeEntry(key, res)
	if err != nil {
		t.Fatal(err)
	}
	k2, r2, err := DecodeEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Hash != key.Hash {
		t.Fatalf("decoded key %s, want %s", k2.Hash, key.Hash)
	}
	if !reflect.DeepEqual(r2, res) {
		t.Fatalf("decoded result %+v, want %+v", r2, res)
	}
	// The round trip must also be byte-stable: re-encoding the decoded
	// result yields the same entry (the property byte-identical reports
	// rest on).
	b2, err := EncodeEntry(k2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("re-encoded entry differs from original bytes")
	}
}

func TestDecodeEntryCorruption(t *testing.T) {
	good, err := EncodeEntry(testKey(1), testResult(1))
	if err != nil {
		t.Fatal(err)
	}
	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0x01
	hugelen := append([]byte(nil), good...)
	hugelen[len(entryMagic)] = 0xff
	hugelen[len(entryMagic)+1] = 0xff
	hugelen[len(entryMagic)+2] = 0xff
	// An entry whose preimage does not hash to its recorded key (a renamed
	// or cross-linked file): reframe with a correct length and CRC so only
	// the hash check fires.
	var e entryJSON
	if err := json.Unmarshal(good[headerLen:], &e); err != nil {
		t.Fatal(err)
	}
	e.Key = testKey(2).Hash
	forged, _ := json.Marshal(e)

	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:headerLen-1],
		"bad magic":    append([]byte("NOTMEMO!"), good[8:]...),
		"torn tail":    good[:len(good)-4],
		"trailing":     append(append([]byte(nil), good...), 0xde, 0xad),
		"bit flip":     flip,
		"huge length":  hugelen,
		"key mismatch": reframe(forged),
	}
	for name, b := range cases {
		if _, _, err := DecodeEntry(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	if _, err := EncodeEntry(Key{Hash: "x"}, testResult(1)); err == nil {
		t.Fatal("EncodeEntry accepted a key without preimage")
	}
	if _, err := EncodeEntry(testKey(1), nil); err == nil {
		t.Fatal("EncodeEntry accepted a nil result")
	}
}

// reframe wraps a raw payload in a structurally valid frame (good magic,
// length and CRC), for building entries that pass the frame checks but
// fail semantic validation.
func reframe(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint32(buf[len(entryMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(entryMagic)+4:], crc32.Checksum(payload, crcTable))
	copy(buf[headerLen:], payload)
	return buf
}

func TestPutGetMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	key, res := testKey(1), testResult(1)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache returned a hit")
	}
	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("Get after Put: ok=%v got=%+v", ok, got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if st.DiskEntries != 1 || st.BytesWritten == 0 {
		t.Fatalf("disk entries=%d bytesWritten=%d", st.DiskEntries, st.BytesWritten)
	}

	// A second cache on the same directory serves the entry from disk —
	// the cross-process sharing runsuite and stallserved rely on.
	c2, err := Open(Options{Dir: dir, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := c2.Get(key)
	if !ok || !reflect.DeepEqual(got2, res) {
		t.Fatal("sibling cache did not serve the persisted entry")
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	// Memory-only cache sized for ~2 entries: inserting 3 evicts the LRU.
	b, _ := EncodeEntry(testKey(0), testResult(0))
	c, err := Open(Options{MaxBytes: int64(len(b))*2 + 16, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(testKey(i), testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions == 0 {
		t.Fatalf("entries=%d evictions=%d, want 2 resident and >0 evictions", st.Entries, st.Evictions)
	}
	if _, ok := c.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived past the budget")
	}
	for _, i := range []int{1, 2} {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Fatalf("entry %d evicted, want resident", i)
		}
	}
}

func TestDiskBudgetAtInsert(t *testing.T) {
	dir := t.TempDir()
	b, _ := EncodeEntry(testKey(0), testResult(0))
	c, err := Open(Options{Dir: dir, MaxBytes: int64(len(b))*2 + 16, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(testKey(i), testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.DiskEntries > 2 {
		t.Fatalf("disk entries=%d, want <=2 under the budget", st.DiskEntries)
	}
	if _, err := os.Stat(c.path(testKey(0).Hash)); !os.IsNotExist(err) {
		t.Fatal("oldest entry file survived the disk budget")
	}
}

// TestReloadEnforcesMaxBytes is the regression for budget-at-reload:
// reopening a populated directory with a smaller budget must trim it
// immediately (oldest first), not wait for the next insert.
func TestReloadEnforcesMaxBytes(t *testing.T) {
	dir := t.TempDir()
	big, err := Open(Options{Dir: dir, MaxBytes: 1 << 20, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var entrySize int64
	for i := 0; i < n; i++ {
		if err := big.Put(testKey(i), testResult(i)); err != nil {
			t.Fatal(err)
		}
		b, _ := EncodeEntry(testKey(i), testResult(i))
		entrySize = int64(len(b))
	}
	if st := big.Stats(); st.DiskEntries != n {
		t.Fatalf("seeded %d entries, ledger has %d", n, st.DiskEntries)
	}

	small, err := Open(Options{Dir: dir, MaxBytes: entrySize*2 + 16, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	st := small.Stats()
	if st.DiskEntries > 2 {
		t.Fatalf("reopen with small budget kept %d entries, want <=2", st.DiskEntries)
	}
	if st.DiskBytes > small.MaxBytes() {
		t.Fatalf("disk bytes %d over budget %d after reload", st.DiskBytes, small.MaxBytes())
	}
	if st.Evictions == 0 {
		t.Fatal("reload trim counted no evictions")
	}
	left := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".memo" {
			left++
		}
		return nil
	})
	if left != st.DiskEntries {
		t.Fatalf("%d files on disk, ledger says %d", left, st.DiskEntries)
	}
	// Survivors still decode and serve.
	if _, ok := small.Get(testKey(n - 1)); !ok {
		t.Fatal("newest entry should survive the reload trim")
	}
}

func TestCorruptEntryIsMissNeverServed(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if err := c.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the persisted entry, then drop the memory copy by reopening.
	path := c.path(key.Hash)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(Options{Dir: dir, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("corrupt entry was served")
	}
	st := c2.Stats()
	if st.LoadErrors != 1 || st.Misses != 1 {
		t.Fatalf("loadErrors=%d misses=%d, want 1/1", st.LoadErrors, st.Misses)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file not deleted")
	}
	// Truncated variant: a torn write (no atomic rename) behaves the same.
	key2 := testKey(2)
	if err := c2.Put(key2, testResult(2)); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(c2.path(key2.Hash))
	if err := os.WriteFile(c2.path(key2.Hash), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(Options{Dir: dir, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(key2); ok {
		t.Fatal("truncated entry was served")
	}
	if st := c3.Stats(); st.LoadErrors != 1 {
		t.Fatalf("loadErrors=%d, want 1", st.LoadErrors)
	}
}

func TestGroupSingleflight(t *testing.T) {
	var g Group
	var runs atomic.Int64
	const callers = 16
	// The leader's fn holds its flight open until every caller has
	// announced itself and had ample time to reach the waiter path —
	// otherwise callers could serialize (leader finishes before the next
	// caller arrives) and legitimately run fn more than once.
	var entered sync.WaitGroup
	entered.Add(callers)
	var wg sync.WaitGroup
	results := make([]*trainer.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			res, _, err := g.Do(context.Background(), "k", func() (*trainer.Result, error) {
				runs.Add(1)
				entered.Wait()
				time.Sleep(100 * time.Millisecond)
				return testResult(7), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, r := range results {
		if !reflect.DeepEqual(r, testResult(7)) {
			t.Fatalf("caller %d got %+v", i, r)
		}
	}
}

// TestGroupLeaderErrorNotShared: a leader's failure (e.g. its job's
// cancellation) must not poison waiters — each retries instead.
func TestGroupLeaderErrorNotShared(t *testing.T) {
	var g Group
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		g.Do(context.Background(), "k", func() (*trainer.Result, error) {
			close(leaderIn)
			<-leaderOut
			return nil, errors.New("leader cancelled")
		})
	}()
	<-leaderIn
	done := make(chan *trainer.Result, 1)
	go func() {
		res, _, err := g.Do(context.Background(), "k", func() (*trainer.Result, error) {
			return testResult(9), nil
		})
		if err != nil {
			t.Errorf("waiter inherited the leader's error: %v", err)
		}
		done <- res
	}()
	close(leaderOut)
	if res := <-done; !reflect.DeepEqual(res, testResult(9)) {
		t.Fatalf("waiter result %+v, want its own run", res)
	}
}

func TestGroupWaiterHonorsContext(t *testing.T) {
	var g Group
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		g.Do(context.Background(), "k", func() (*trainer.Result, error) {
			close(leaderIn)
			<-release
			return testResult(1), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
}

func TestDoAccounting(t *testing.T) {
	c, err := Open(Options{Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	run := func() (*trainer.Result, error) { return testResult(1), nil }
	res, hit, err := c.Do(context.Background(), key, run)
	if err != nil || hit {
		t.Fatalf("first Do: hit=%v err=%v, want cold miss", hit, err)
	}
	if !reflect.DeepEqual(res, testResult(1)) {
		t.Fatalf("first Do result %+v", res)
	}
	if _, hit, _ = c.Do(context.Background(), key, run); !hit {
		t.Fatal("second Do missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}

	// Concurrent identical Do: exactly one simulation, one miss, the rest
	// hits (in-flight waiters count as hits — they didn't simulate).
	c2, _ := Open(Options{Salt: "test"})
	var runs atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 8
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			c2.Do(context.Background(), key, func() (*trainer.Result, error) {
				runs.Add(1)
				return testResult(1), nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("concurrent Do ran fn %d times, want 1", n)
	}
	st = c2.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", st.Hits, st.Misses, callers-1)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c, _ := Open(Options{Salt: "test"})
	key := testKey(1)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), key, func() (*trainer.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be memoized: the next Do runs again.
	res, hit, err := c.Do(context.Background(), key, func() (*trainer.Result, error) {
		return testResult(1), nil
	})
	if err != nil || hit || !reflect.DeepEqual(res, testResult(1)) {
		t.Fatalf("retry after error: res=%+v hit=%v err=%v", res, hit, err)
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	b, _ := EncodeEntry(testKey(1), testResult(1))
	c, err := Open(Options{MaxBytes: int64(len(b)) - 1, Salt: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(1), testResult(1)); err != nil {
		t.Fatalf("oversize Put should be a silent no-op, got %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversize entry was cached (%d resident)", st.Entries)
	}
}
