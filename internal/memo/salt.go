package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

// The engine-version salt makes cache keys self-invalidating: it is mixed
// into every key preimage, so two builds of different code address
// disjoint key spaces and an entry written by an older engine can never be
// served by a newer one — the cache simply looks cold.
//
// The salt is derived from the build fingerprint (go version, module
// versions/sums, VCS revision), NOT from hashing the executable: runsuite
// and stallserved built from the same tree must agree on it, or the CLI
// and the daemon could not share one cache directory. When the build
// carries no clean VCS stamp (a modified working tree, a test binary),
// revision identity is unreliable, so the executable's own bytes are
// folded in instead — each binary then gets a private key space, trading
// cross-binary sharing for correctness while the code is in flux.
//
// DATASTALL_MEMO_SALT overrides the derivation entirely; the smoke scripts
// use it to share entries across freshly built binaries on dirty trees.

var (
	saltOnce sync.Once
	saltVal  string
)

// EngineSalt returns the process-wide engine-version salt.
func EngineSalt() string {
	saltOnce.Do(func() { saltVal = computeSalt() })
	return saltVal
}

func computeSalt() string {
	if env := os.Getenv("DATASTALL_MEMO_SALT"); env != "" {
		return env
	}
	h := sha256.New()
	clean := false
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintln(h, bi.GoVersion)
		fmt.Fprintln(h, bi.Main.Path, bi.Main.Version, bi.Main.Sum)
		for _, d := range bi.Deps {
			fmt.Fprintln(h, d.Path, d.Version, d.Sum)
			if d.Replace != nil {
				fmt.Fprintln(h, d.Replace.Path, d.Replace.Version, d.Replace.Sum)
			}
		}
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			case "GOOS", "GOARCH":
				fmt.Fprintln(h, s.Key, s.Value)
			}
		}
		if rev != "" && modified == "false" {
			fmt.Fprintln(h, "rev", rev)
			clean = true
		}
	}
	if !clean {
		if exe, err := os.Executable(); err == nil {
			if f, err := os.Open(exe); err == nil {
				io.Copy(h, f)
				f.Close()
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
