package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"datastall/internal/trainer"
)

// FuzzMemoEntry drives DecodeEntry with arbitrary bytes: it must never
// panic, and any entry it accepts must be internally consistent — the
// returned key's hash is the sha256 of the returned preimage, the result
// is non-nil, and the entry re-encodes into a decodable frame (so an
// accepted entry can always be re-persisted).
func FuzzMemoEntry(f *testing.F) {
	key := KeyFromPreimage([]byte(`{"v":1,"salt":"fuzz","model":"resnet18"}`))
	good, err := EncodeEntry(key, &trainer.Result{
		EpochTime: 1.5, Throughput: 640, StallFraction: 0.25,
		Epochs: []trainer.EpochStats{{Duration: 1.5, Samples: 64}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	f.Add(good[:headerLen])   // header only
	f.Add(append(append([]byte{}, good...), 0xde, 0xad, 0xbe, 0xef))
	flipped := append([]byte{}, good...)
	flipped[headerLen+1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}) // huge length field
	f.Add([]byte("DSMEMO1\n\x00\x00\x00\x00\x00\x00\x00\x00")) // empty payload
	f.Fuzz(func(t *testing.T, data []byte) {
		k, res, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatal("nil result accepted")
		}
		sum := sha256.Sum256(k.Preimage)
		if hex.EncodeToString(sum[:]) != k.Hash {
			t.Fatalf("accepted key %s does not match its preimage hash", k.Hash)
		}
		re, err := EncodeEntry(k, res)
		if err != nil {
			t.Fatalf("accepted entry does not re-encode: %v", err)
		}
		if _, _, err := DecodeEntry(re); err != nil {
			t.Fatalf("re-encoded entry does not decode: %v", err)
		}
	})
}
