package sim

import (
	"testing"

	"datastall/internal/race"
)

// TestCallbackStoreFIFO: a callback consumer drains a goroutine producer
// through a bounded store in FIFO order — the mixed-flavour configuration
// the trainer runs (goroutine producers, callback GPU consumers).
func TestCallbackStoreFIFO(t *testing.T) {
	e := New()
	s := NewStore[int](e, 2)
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			s.Put(p, i)
		}
	})
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok, ready := s.TryGet(p, p.Now())
			if !ready {
				return
			}
			if !ok {
				t.Error("store closed early")
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

// TestCallbackPutBackpressure: a callback producer blocks on a full store
// and accounts PutBlocked exactly like a goroutine producer.
func TestCallbackPutBackpressure(t *testing.T) {
	run := func(callback bool) (putDone, putBlocked float64) {
		e := New()
		s := NewStore[int](e, 1)
		if callback {
			sent := 0
			start := 0.0 // first-attempt time of the pending put
			e.Spawn("producer", func(p *Proc) {
				for sent < 2 {
					if !s.TryPut(p, sent, start) {
						return
					}
					sent++
					start = p.Now()
				}
				putDone = p.Now()
			})
		} else {
			e.Go("producer", func(p *Proc) {
				s.Put(p, 1)
				s.Put(p, 2)
				putDone = p.Now()
			})
		}
		e.Go("consumer", func(p *Proc) {
			p.Sleep(10)
			s.Get(p)
			p.Sleep(10)
			s.Get(p)
		})
		e.Run()
		return putDone, s.PutBlocked
	}
	gd, gb := run(false)
	cd, cb := run(true)
	if gd != cd || gb != cb {
		t.Fatalf("callback producer diverged: done %v vs %v, PutBlocked %v vs %v", cd, gd, cb, gb)
	}
	if cd != 10 || cb != 10 {
		t.Fatalf("putDone=%v PutBlocked=%v, want 10/10", cd, cb)
	}
}

// TestMixedBarrier: callback and goroutine processes share one barrier;
// release time and Waited accounting are identical to the all-goroutine
// run. The callback waiter follows the Arrive contract: it records its
// arrival time and adds its share to Waited when resumed.
func TestMixedBarrier(t *testing.T) {
	run := func(callbackWaiter bool) (release, waited float64) {
		e := New()
		b := NewBarrier(e, 3)
		for i := 0; i < 2; i++ {
			d := float64(i + 2) // arrive at t=2 and t=3
			e.Go("w", func(p *Proc) {
				p.Sleep(d)
				b.Wait(p)
				release = p.Now()
			})
		}
		if callbackWaiter {
			state, start := 0, 0.0
			e.Spawn("cb", func(p *Proc) {
				switch state {
				case 0: // arrive at t=1
					state = 1
					p.WakeAfter(1)
				case 1:
					if b.Arrive(p) {
						state = 3
						return
					}
					start = p.Now()
					state = 2
				case 2:
					b.Waited += p.Now() - start
					state = 3
				}
			})
		} else {
			e.Go("w", func(p *Proc) {
				p.Sleep(1)
				b.Wait(p)
			})
		}
		e.Run()
		return release, b.Waited
	}
	gr, gw := run(false)
	cr, cw := run(true)
	if gr != cr || gw != cw {
		t.Fatalf("callback waiter diverged: release %v vs %v, Waited %v vs %v", cr, gr, cw, gw)
	}
	if cr != 3 || cw != (3-1)+(3-2) {
		t.Fatalf("release=%v Waited=%v, want 3/3", cr, cw)
	}
}

// TestPingPongFlavorParity: the benchmark workload completes identically
// (same final clock, same store traffic) on the goroutine and callback
// paths.
func TestPingPongFlavorParity(t *testing.T) {
	for _, pairs := range []int{1, 4} {
		BenchPingPong(pairs, 100, false)
		BenchPingPong(pairs, 100, true)
	}
	// Completion without deadlock is the assertion: every Put was matched
	// by a Get or Run would never drain.
}

// TestCallbackCannotBlock: blocking primitives panic for callback
// processes instead of deadlocking the engine goroutine.
func TestCallbackCannotBlock(t *testing.T) {
	e := New()
	s := NewStore[int](e, 0)
	panicked := false
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		s.Get(p) // empty store: would park
	})
	e.Run()
	if !panicked {
		t.Fatal("blocking Get from a callback process must panic")
	}
}

// TestWakeAfterOrdering: WakeAfter respects (time, sequence) ordering
// against Schedule and goroutine sleeps.
func TestWakeAfterOrdering(t *testing.T) {
	e := New()
	var order []string
	state := 0
	e.Spawn("cb", func(p *Proc) {
		if state == 0 {
			state = 1
			p.WakeAfter(2)
			return
		}
		order = append(order, "cb")
	})
	e.Go("g", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "g")
	})
	e.Schedule(2, func() { order = append(order, "fn") })
	e.Run()
	// All fire at t=2; the callback spawned first, so its wake was
	// scheduled first... but all three schedule their t=2 events at t=0 in
	// spawn/statement order: cb (from its t=0 step? no — cb's WakeAfter runs
	// inside its first step at t=0), g's Sleep also at t=0, fn at t=0.
	// Spawn order: cb's initial event (seq 1), g's initial event (seq 2),
	// fn (seq 3). At t=0: cb steps, schedules wake (seq 4); g resumes,
	// schedules sleep-end (seq 5). So t=2 order: fn, cb, g.
	want := []string{"fn", "cb", "g"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestAllocsEventDispatch is the zero-allocation guard on the engine's
// event-dispatch hot path: steady-state scheduling, heap push/pop, store
// handoff and callback resume must not allocate at all. Enforced in CI
// without race instrumentation; any regression fails here.
func TestAllocsEventDispatch(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	e := New()
	s := NewStore[int](e, 1)
	e.Spawn("prod", func(p *Proc) {
		if !s.TryPut(p, 0, p.Now()) {
			return
		}
		p.WakeAfter(1)
	})
	e.Spawn("cons", func(p *Proc) {
		for {
			if _, _, ready := s.TryGet(p, p.Now()); !ready {
				return
			}
		}
	})
	horizon := 0.0
	step := func() {
		horizon += 100
		e.RunFor(horizon)
	}
	step() // warm the event queue and waiter lists to steady-state capacity
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("event dispatch allocates %v allocs per 100 simulated handoffs, want 0", avg)
	}
}
