// Package sim implements a deterministic discrete-event simulator used to
// model the DNN input pipeline: processes, bounded stores, barriers,
// counting resources and FIFO bandwidth servers.
//
// The engine is single-threaded in simulated time: exactly one process runs
// at any instant, and events that share a timestamp are ordered by their
// scheduling sequence number, so simulations are bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. Create one with New, spawn
// processes with Go, and drive the simulation with Run.
type Engine struct {
	now      float64
	seq      int64
	events   eventHeap
	ctl      chan struct{}
	parked   []*Proc // processes blocked on a condition (no pending event)
	stopping bool
	live     int
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time. fn executes on the
// engine goroutine and must not block on simulation primitives.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	e.seq++
	heap.Push(&e.events, &event{t: e.now + delay, seq: e.seq, fn: fn})
}

// killed is the panic payload used to unwind processes at shutdown.
type killed struct{}

// Proc is a simulated process. All blocking methods must be called from the
// goroutine started by Engine.Go for this process.
type Proc struct {
	eng    *Engine
	wake   chan struct{}
	name   string
	killed bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// Go spawns fn as a new simulated process that starts at the current time.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, wake: make(chan struct{}), name: name}
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r)
				}
			}
			e.live--
			e.ctl <- struct{}{}
		}()
		if p.killed {
			panic(killed{})
		}
		fn(p)
	}()
	e.Schedule(0, func() { e.resume(p) })
	return p
}

// resume hands control to p and waits until p parks or terminates. It runs on
// the engine goroutine (inside an event callback).
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-e.ctl
}

// park blocks the calling process until another event wakes it. The caller is
// responsible for having registered itself somewhere a wakeup will find it.
func (p *Proc) park() {
	e := p.eng
	e.parked = append(e.parked, p)
	e.ctl <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killed{})
	}
}

// wakeup schedules a resume of p at the current time and removes it from the
// parked list. It may be called from process or engine context.
func (e *Engine) wakeup(p *Proc) {
	for i, q := range e.parked {
		if q == p {
			e.parked = append(e.parked[:i], e.parked[i+1:]...)
			break
		}
	}
	e.Schedule(0, func() { e.resume(p) })
}

// Sleep suspends the process for d seconds of simulated time.
func (p *Proc) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: invalid sleep %v", d))
	}
	e := p.eng
	e.Schedule(d, func() { e.resume(p) })
	e.ctl <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killed{})
	}
}

// SleepUntil suspends the process until simulated time t (no-op if t has
// already passed).
func (p *Proc) SleepUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Run executes events until the event queue drains, then terminates any
// processes still blocked on conditions. After Run returns no process
// goroutines remain.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		ev.fn()
	}
	// Tear down processes blocked forever on stores/barriers/resources.
	e.stopping = true
	for len(e.parked) > 0 {
		p := e.parked[0]
		e.parked = e.parked[1:]
		p.killed = true
		e.resume(p)
		// The unwinding process may schedule events (e.g. releasing a
		// resource wakes another proc); drain them, re-kill, repeat.
		for len(e.events) > 0 {
			ev := heap.Pop(&e.events).(*event)
			e.now = ev.t
			ev.fn()
		}
	}
}

// RunFor executes events until simulated time exceeds horizon or the queue
// drains, then stops (without tearing down parked processes). Used by
// experiments that sample a steady state.
func (e *Engine) RunFor(horizon float64) {
	for len(e.events) > 0 && e.events[0].t <= horizon {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		ev.fn()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Shutdown force-kills every parked process and drains remaining events.
// Call after RunFor to reclaim goroutines.
func (e *Engine) Shutdown() {
	e.stopping = true
	for {
		for len(e.events) > 0 {
			ev := heap.Pop(&e.events).(*event)
			if ev.t > e.now {
				e.now = ev.t
			}
			// During shutdown, resumed procs see killed and unwind.
			ev.fn()
		}
		if len(e.parked) == 0 {
			break
		}
		p := e.parked[0]
		e.parked = e.parked[1:]
		p.killed = true
		e.resume(p)
	}
}
