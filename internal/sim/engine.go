// Package sim implements a deterministic discrete-event simulator used to
// model the DNN input pipeline: processes, bounded stores, barriers,
// counting resources and FIFO bandwidth servers.
//
// The engine is single-threaded in simulated time: exactly one process runs
// at any instant, and events that share a timestamp are ordered by their
// scheduling sequence number, so simulations are bit-reproducible.
//
// Processes come in two flavours sharing one Proc type and one set of
// primitives:
//
//   - Goroutine processes (Engine.Go) run ordinary sequential code and may
//     call the blocking primitives (Store.Put/Get, Barrier.Wait, Sleep).
//     Each block/resume costs two channel handoffs with the engine
//     goroutine.
//   - Callback processes (Engine.Spawn) are the zero-allocation fast path:
//     a step function runs inline on the engine goroutine at every resume,
//     keeping its state in a struct instead of on a goroutine stack, and
//     blocks by registering with a primitive's non-blocking variant
//     (Store.TryGet/TryPut, Barrier.Arrive) and returning. No goroutine, no
//     channel operations, no per-step allocations.
//
// Both flavours consume engine events identically (every block, wake and
// sleep maps to the same Schedule calls), so converting a process from one
// flavour to the other cannot change simulation results.
package sim

import (
	"context"
	"fmt"
	"math"
)

// Event kinds. Typed events keep the hot resume path allocation-free: a
// resume stores the *Proc in the event itself instead of capturing it in a
// closure.
const (
	evFn byte = iota
	evResume
)

// event is a scheduled callback, stored by value in the engine's heap.
type event struct {
	t    float64
	seq  int64
	p    *Proc  // evResume: process to resume
	fn   func() // evFn: user callback
	kind byte
}

// eventQueue is a slice-backed 4-ary min-heap ordered by (t, seq). Values
// are stored inline (no *event boxing, no container/heap interface{}), and
// popped slots are reused by subsequent pushes, so steady-state push/pop
// performs zero allocations. A 4-ary layout halves the tree depth of a
// binary heap and keeps sibling comparisons within one cache line.
type eventQueue struct {
	ev []event
	n  int
}

func (q *eventQueue) less(i, j int) bool {
	if q.ev[i].t != q.ev[j].t {
		return q.ev[i].t < q.ev[j].t
	}
	return q.ev[i].seq < q.ev[j].seq
}

func (q *eventQueue) push(e event) {
	if q.n < len(q.ev) {
		q.ev[q.n] = e
	} else {
		q.ev = append(q.ev, e)
	}
	i := q.n
	q.n++
	for i > 0 {
		parent := (i - 1) >> 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	q.n--
	if q.n > 0 {
		q.ev[0] = q.ev[q.n]
	}
	q.ev[q.n] = event{} // drop fn/p references so the GC can collect them
	if q.n > 1 {
		q.siftDown()
	}
	return top
}

func (q *eventQueue) siftDown() {
	i := 0
	for {
		c := i<<2 + 1
		if c >= q.n {
			return
		}
		m := c
		hi := c + 4
		if hi > q.n {
			hi = q.n
		}
		for k := c + 1; k < hi; k++ {
			if q.less(k, m) {
				m = k
			}
		}
		if !q.less(m, i) {
			return
		}
		q.ev[i], q.ev[m] = q.ev[m], q.ev[i]
		i = m
	}
}

// Engine is a discrete-event simulation engine. Create one with New, spawn
// processes with Go (goroutine) or Spawn (callback fast path), and drive
// the simulation with Run.
type Engine struct {
	now      float64
	seq      int64
	q        eventQueue
	ctl      chan struct{}
	parked   []*Proc // goroutine processes blocked on a condition
	stopping bool
	live     int
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return e.q.n }

// Schedule runs fn after delay seconds of simulated time. fn executes on the
// engine goroutine and must not block on simulation primitives.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	e.seq++
	e.q.push(event{t: e.now + delay, seq: e.seq, fn: fn, kind: evFn})
}

// scheduleResume schedules a resume of p after delay. It is the
// allocation-free internal path every block/wake/sleep goes through.
func (e *Engine) scheduleResume(p *Proc, delay float64) {
	e.seq++
	e.q.push(event{t: e.now + delay, seq: e.seq, p: p, kind: evResume})
}

// dispatch executes one popped event at the current time.
func (e *Engine) dispatch(ev event) {
	if ev.kind == evResume {
		e.resume(ev.p)
		return
	}
	ev.fn()
}

// killed is the panic payload used to unwind goroutine processes at
// shutdown.
type killed struct{}

// Proc is a simulated process. For goroutine processes all blocking methods
// must be called from the goroutine started by Engine.Go; for callback
// processes all methods must be called from the step function (which runs
// on the engine goroutine).
type Proc struct {
	eng    *Engine
	wake   chan struct{} // goroutine processes only
	step   func(p *Proc) // callback processes only
	name   string
	killed bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// Go spawns fn as a new simulated goroutine process that starts at the
// current time.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, wake: make(chan struct{}), name: name}
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r)
				}
			}
			e.live--
			e.ctl <- struct{}{}
		}()
		if p.killed {
			panic(killed{})
		}
		fn(p)
	}()
	e.scheduleResume(p, 0)
	return p
}

// Spawn registers step as a callback process — the engine fast path — and
// schedules its first step at the current time. step runs inline on the
// engine goroutine at every resume; it must never call the blocking
// primitives (Put/Get/Wait/Sleep). To block, it registers with a
// non-blocking primitive variant (Store.TryGet, Store.TryPut,
// Barrier.Arrive) or schedules its own wake-up (WakeAfter) and returns; the
// engine re-invokes step when the process is resumed.
func (e *Engine) Spawn(name string, step func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, step: step}
	e.scheduleResume(p, 0)
	return p
}

// resume hands control to p. For a goroutine process it performs the
// channel handoff and waits until p parks or terminates; for a callback
// process it invokes the step function inline. It runs on the engine
// goroutine (inside an event callback).
func (e *Engine) resume(p *Proc) {
	if p.step != nil {
		if !p.killed {
			p.step(p)
		}
		return
	}
	p.wake <- struct{}{}
	<-e.ctl
}

// park blocks the calling goroutine process until another event wakes it.
// The caller is responsible for having registered itself somewhere a wakeup
// will find it. Callback processes must not park; they return from their
// step instead.
func (p *Proc) park() {
	if p.step != nil {
		panic("sim: callback process cannot block; use the Try*/Arrive fast-path APIs")
	}
	e := p.eng
	e.parked = append(e.parked, p)
	e.ctl <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killed{})
	}
}

// wakeup schedules a resume of p at the current time and removes it from the
// parked list. It may be called from process or engine context.
func (e *Engine) wakeup(p *Proc) {
	for i, q := range e.parked {
		if q == p {
			e.parked = append(e.parked[:i], e.parked[i+1:]...)
			break
		}
	}
	e.scheduleResume(p, 0)
}

// Sleep suspends the goroutine process for d seconds of simulated time.
func (p *Proc) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: invalid sleep %v", d))
	}
	e := p.eng
	e.scheduleResume(p, d)
	e.ctl <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killed{})
	}
}

// WakeAfter schedules the callback process's next step after d seconds of
// simulated time — the fast-path analog of Sleep. The step function must
// return right after calling it.
func (p *Proc) WakeAfter(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: invalid wake delay %v", d))
	}
	p.eng.scheduleResume(p, d)
}

// SleepUntil suspends the goroutine process until simulated time t (no-op
// if t has already passed).
func (p *Proc) SleepUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Run executes events until the event queue drains, then terminates any
// processes still blocked on conditions. After Run returns no process
// goroutines remain.
func (e *Engine) Run() {
	for e.q.n > 0 {
		ev := e.q.pop()
		e.now = ev.t
		e.dispatch(ev)
	}
	e.drainParked()
}

// DefaultCancelPoll is how many events RunContext dispatches between
// cancellation checks when the caller passes pollEvery <= 0. Event dispatch
// is tens of nanoseconds, so even a large poll interval keeps cancellation
// latency far below a millisecond.
const DefaultCancelPoll = 1024

// RunContext is Run with cooperative cancellation: it polls ctx.Err() every
// pollEvery events (DefaultCancelPoll when <= 0) and, once the context is
// cancelled, abandons the remaining event queue, kills every live process,
// and returns ctx.Err(). A nil error means the simulation ran to completion
// exactly as Run would have — the poll does not perturb event order, so
// results are bit-identical to Run for an uncancelled context. After
// RunContext returns (either way) no process goroutines remain.
func (e *Engine) RunContext(ctx context.Context, pollEvery int) error {
	if pollEvery <= 0 {
		pollEvery = DefaultCancelPoll
	}
	if err := ctx.Err(); err != nil {
		e.Cancel()
		return err
	}
	n := 0
	for e.q.n > 0 {
		ev := e.q.pop()
		e.now = ev.t
		e.dispatch(ev)
		if n++; n >= pollEvery {
			n = 0
			if err := ctx.Err(); err != nil {
				e.Cancel()
				return err
			}
		}
	}
	// A cancellation that landed inside the last poll window (short
	// simulations may never reach a poll at all) still aborts: the caller
	// asked to stop, so don't hand back a completed run.
	if err := ctx.Err(); err != nil {
		e.Cancel()
		return err
	}
	e.drainParked()
	return nil
}

// drainParked tears down goroutine processes blocked forever on stores/
// barriers/resources once the queue has drained. (Blocked callback processes
// hold no goroutine and simply never step again.)
func (e *Engine) drainParked() {
	e.stopping = true
	for len(e.parked) > 0 {
		p := e.parked[0]
		n := copy(e.parked, e.parked[1:])
		e.parked[n] = nil
		e.parked = e.parked[:n]
		p.killed = true
		e.resume(p)
		// The unwinding process may schedule events (e.g. releasing a
		// resource wakes another proc); drain them, re-kill, repeat.
		for e.q.n > 0 {
			ev := e.q.pop()
			e.now = ev.t
			e.dispatch(ev)
		}
	}
}

// Cancel aborts the simulation mid-run: pending user callbacks are dropped
// without executing, and every process — parked or scheduled — is killed and
// unwound. Unlike Shutdown it does not simulate the remaining events, so a
// run with millions of queued events dies in time proportional to the live
// process count, not the queue length. The clock stays at the cancellation
// instant.
func (e *Engine) Cancel() {
	e.stopping = true
	for {
		for e.q.n > 0 {
			ev := e.q.pop()
			if ev.kind == evResume {
				ev.p.killed = true
				if ev.p.step == nil {
					// Goroutine process waiting on its wake channel:
					// resume it so it observes killed and unwinds.
					e.resume(ev.p)
				}
				// Callback processes hold no goroutine; the killed flag
				// stops any further steps.
			}
			// evFn callbacks are dropped: the simulation is over and no
			// process remains to observe their effects.
		}
		if len(e.parked) == 0 {
			return
		}
		p := e.parked[0]
		n := copy(e.parked, e.parked[1:])
		e.parked[n] = nil
		e.parked = e.parked[:n]
		p.killed = true
		e.resume(p)
	}
}

// RunFor executes events until simulated time exceeds horizon or the queue
// drains, then stops (without tearing down parked processes). Used by
// experiments that sample a steady state.
func (e *Engine) RunFor(horizon float64) {
	for e.q.n > 0 && e.q.ev[0].t <= horizon {
		ev := e.q.pop()
		e.now = ev.t
		e.dispatch(ev)
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Shutdown force-kills every parked process and drains remaining events.
// Call after RunFor to reclaim goroutines.
func (e *Engine) Shutdown() {
	e.stopping = true
	for {
		for e.q.n > 0 {
			ev := e.q.pop()
			if ev.t > e.now {
				e.now = ev.t
			}
			// During shutdown, resumed procs see killed and unwind.
			e.dispatch(ev)
		}
		if len(e.parked) == 0 {
			break
		}
		p := e.parked[0]
		n := copy(e.parked, e.parked[1:])
		e.parked[n] = nil
		e.parked = e.parked[:n]
		p.killed = true
		e.resume(p)
	}
}
