package sim

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextUncancelledMatchesRun: with a background context the
// dispatch loop is Run, event for event.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	trace := func(drive func(e *Engine)) []float64 {
		e := New()
		var ts []float64
		for i := 0; i < 50; i++ {
			d := float64(i%7) * 0.5
			e.Schedule(d, func() { ts = append(ts, e.Now()) })
		}
		drive(e)
		return ts
	}
	a := trace(func(e *Engine) { e.Run() })
	b := trace(func(e *Engine) {
		if err := e.RunContext(context.Background(), 3); err != nil {
			t.Fatal(err)
		}
	})
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at t=%g vs t=%g", i, a[i], b[i])
		}
	}
}

// TestRunContextCancelMidRun: cancellation stops the clock mid-simulation
// and unwinds every process — goroutine and callback — without deadlock.
func TestRunContextCancelMidRun(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var goroutineSteps, callbackSteps int
	e.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(1)
			goroutineSteps++
			if goroutineSteps == 100 {
				cancel()
			}
		}
	})
	e.Spawn("ticker", func(p *Proc) {
		callbackSteps++
		p.WakeAfter(1)
	})
	// A proc parked forever on a store with no producer: Cancel must
	// unwind it too.
	st := NewStore[int](e, 1)
	e.Go("starved", func(p *Proc) { st.Get(p) })

	err := e.RunContext(ctx, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if goroutineSteps < 100 || goroutineSteps > 110 {
		t.Fatalf("goroutine ran %d steps; cancellation not prompt", goroutineSteps)
	}
	if callbackSteps < 90 {
		t.Fatalf("callback proc ran %d steps before cancel", callbackSteps)
	}
	// The engine is fully torn down: no live events, nothing parked.
	if e.Len() != 0 || len(e.parked) != 0 {
		t.Fatalf("engine not drained: %d events, %d parked", e.Len(), len(e.parked))
	}
}

// TestRunContextPreCancelled: an already-dead context never dispatches.
func TestRunContextPreCancelled(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(0, func() { ran = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("event dispatched despite pre-cancelled context")
	}
}
