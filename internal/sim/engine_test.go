package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSleepOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Go("a", func(p *Proc) {
		p.Sleep(2)
		order = append(order, 2)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		order = append(order, 1)
	})
	e.Go("c", func(p *Proc) {
		p.Sleep(3)
		order = append(order, 3)
	})
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Go(name, func(p *Proc) {
			p.Sleep(5)
			order = append(order, name)
		})
	}
	e.Run()
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("tie-break violated: %v", order)
	}
}

func TestScheduleCallback(t *testing.T) {
	e := New()
	fired := 0.0
	e.Schedule(7, func() { fired = e.Now() })
	e.Run()
	if fired != 7 {
		t.Fatalf("callback at %v, want 7", fired)
	}
}

func TestStoreBlockingFIFO(t *testing.T) {
	e := New()
	s := NewStore[int](e, 2)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s.Put(p, i)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			v, ok := s.Get(p)
			if !ok {
				t.Errorf("store closed early")
			}
			got = append(got, v)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d values", len(got))
	}
}

func TestStorePutBlocksWhenFull(t *testing.T) {
	e := New()
	s := NewStore[int](e, 1)
	var putDone float64
	e.Go("producer", func(p *Proc) {
		s.Put(p, 1)
		s.Put(p, 2) // must block until consumer drains at t=10
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(10)
		s.Get(p)
		p.Sleep(10)
		s.Get(p)
	})
	e.Run()
	if putDone != 10 {
		t.Fatalf("second put completed at %v, want 10", putDone)
	}
	if s.PutBlocked != 10 {
		t.Fatalf("PutBlocked = %v, want 10", s.PutBlocked)
	}
}

func TestStoreCloseUnblocksGetter(t *testing.T) {
	e := New()
	s := NewStore[int](e, 4)
	ok := true
	e.Go("getter", func(p *Proc) {
		_, ok = s.Get(p)
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(3)
		s.Close()
	})
	e.Run()
	if ok {
		t.Fatal("Get on closed empty store should return ok=false")
	}
}

func TestBarrier(t *testing.T) {
	e := New()
	b := NewBarrier(e, 3)
	var done []float64
	for i := 0; i < 3; i++ {
		d := float64(i + 1)
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			done = append(done, p.Now())
		})
	}
	e.Run()
	if len(done) != 3 {
		t.Fatalf("only %d passed barrier", len(done))
	}
	for _, d := range done {
		if d != 3 {
			t.Fatalf("barrier released at %v, want 3", d)
		}
	}
	if b.Waited != 2+1 {
		t.Fatalf("Waited = %v, want 3", b.Waited)
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	b := NewBarrier(e, 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(1)
				b.Wait(p)
			}
			rounds++
		})
	}
	e.Run()
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var order []string
	hold := func(name string, units int, at, dur float64) {
		e.Go(name, func(p *Proc) {
			p.Sleep(at)
			r.Acquire(p, units)
			order = append(order, name)
			p.Sleep(dur)
			r.Release(units)
		})
	}
	hold("a", 2, 0, 10)
	hold("b", 1, 1, 5) // queued behind a
	hold("c", 1, 2, 5) // queued behind b
	e.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: %d", r.InUse())
	}
}

func TestBandwidthServerQueueing(t *testing.T) {
	e := New()
	d := NewBandwidthServer(e)
	var t1, t2 float64
	e.Go("a", func(p *Proc) {
		d.Request(p, 100, 10, 0) // 10s service
		t1 = p.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		d.Request(p, 100, 10, 0) // queues behind a, finishes at 20
		t2 = p.Now()
	})
	e.Run()
	if t1 != 10 {
		t.Fatalf("t1 = %v, want 10", t1)
	}
	if t2 != 20 {
		t.Fatalf("t2 = %v, want 20", t2)
	}
	if d.Waited != 9 {
		t.Fatalf("Waited = %v, want 9", d.Waited)
	}
	if d.Bytes != 200 || d.Requests != 2 {
		t.Fatalf("stats: bytes=%v reqs=%d", d.Bytes, d.Requests)
	}
}

func TestBandwidthServerOverhead(t *testing.T) {
	e := New()
	d := NewBandwidthServer(e)
	var done float64
	e.Go("a", func(p *Proc) {
		d.Request(p, 100, 100, 2.5)
		done = p.Now()
	})
	e.Run()
	if done != 3.5 {
		t.Fatalf("done = %v, want 3.5", done)
	}
}

func TestRunTearsDownParkedProcs(t *testing.T) {
	e := New()
	s := NewStore[int](e, 1)
	reached := false
	e.Go("stuck", func(p *Proc) {
		s.Get(p) // never satisfied
		reached = true
	})
	e.Go("other", func(p *Proc) { p.Sleep(1) })
	e.Run() // must not hang
	if reached {
		t.Fatal("stuck proc should have been killed, not resumed")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		s := NewStore[float64](e, 3)
		var out []float64
		for i := 0; i < 4; i++ {
			d := rng.Float64()
			e.Go("p", func(p *Proc) {
				for k := 0; k < 10; k++ {
					p.Sleep(d)
					s.Put(p, p.Now())
				}
			})
		}
		e.Go("c", func(p *Proc) {
			for k := 0; k < 40; k++ {
				v, _ := s.Get(p)
				out = append(out, v)
			}
		})
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, the engine clock after Run equals
// the maximum duration, and every process ran to completion.
func TestSleepClockProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 50 {
			durs = durs[:50]
		}
		e := New()
		max := 0.0
		count := 0
		for _, u := range durs {
			d := float64(u) / 100
			if d > max {
				max = d
			}
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				count++
			})
		}
		e.Run()
		return e.Now() == max && count == len(durs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bounded store never exceeds its capacity and preserves FIFO
// order for a single producer/consumer pair.
func TestStoreFIFOProperty(t *testing.T) {
	f := func(capacity uint8, n uint8) bool {
		c := int(capacity)%5 + 1
		items := int(n)%100 + 1
		e := New()
		s := NewStore[int](e, c)
		ok := true
		e.Go("prod", func(p *Proc) {
			for i := 0; i < items; i++ {
				s.Put(p, i)
				if s.Len() > c {
					ok = false
				}
			}
		})
		e.Go("cons", func(p *Proc) {
			for i := 0; i < items; i++ {
				p.Sleep(0.01)
				v, good := s.Get(p)
				if !good || v != i {
					ok = false
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
