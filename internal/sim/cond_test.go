package sim

import "testing"

func TestCondBroadcastWakesAll(t *testing.T) {
	e := New()
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(5)
		if c.Waiting() != 3 {
			t.Errorf("waiting = %d, want 3", c.Waiting())
		}
		c.Broadcast()
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if c.Waiting() != 0 {
		t.Fatalf("waiters not cleared: %d", c.Waiting())
	}
}

func TestCondPredicateLoop(t *testing.T) {
	e := New()
	c := NewCond(e)
	ready := false
	var seenAt float64
	e.Go("waiter", func(p *Proc) {
		for !ready {
			c.Wait(p)
		}
		seenAt = p.Now()
	})
	// Spurious broadcast at t=1 (predicate still false), real one at t=4.
	e.Go("sig", func(p *Proc) {
		p.Sleep(1)
		c.Broadcast()
		p.Sleep(3)
		ready = true
		c.Broadcast()
	})
	e.Run()
	if seenAt != 4 {
		t.Fatalf("waiter proceeded at %v, want 4 (must re-check predicate)", seenAt)
	}
}

func TestCondWaiterKilledAtShutdown(t *testing.T) {
	e := New()
	c := NewCond(e)
	reached := false
	e.Go("stuck", func(p *Proc) {
		c.Wait(p) // never signalled
		reached = true
	})
	e.Run()
	if reached {
		t.Fatal("stuck waiter should be torn down, not resumed")
	}
}

func TestRunForAndShutdown(t *testing.T) {
	e := New()
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1)
			ticks++
		}
	})
	e.RunFor(10.5)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10.5 {
		t.Fatalf("clock = %v, want 10.5", e.Now())
	}
	e.Shutdown() // must reclaim the ticker without hanging
}
