package sim

import "testing"

// Event-dispatch benchmarks: one op is a full 4-pair x 256-round ping-pong
// workload (~2 events per handoff). The legacy benchmark is the frozen
// pre-zero-alloc engine — the "before" row of BENCH_2.json; the callback
// benchmark is the fast path the trainer's GPU consumers run on.
//
//	go test -bench EventDispatch -benchmem ./internal/sim

const (
	benchPairs  = 4
	benchRounds = 256
)

func BenchmarkEventDispatchLegacy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BenchPingPongLegacy(benchPairs, benchRounds)
	}
}

func BenchmarkEventDispatchGoroutine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BenchPingPong(benchPairs, benchRounds, false)
	}
}

func BenchmarkEventDispatchCallback(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BenchPingPong(benchPairs, benchRounds, true)
	}
}
