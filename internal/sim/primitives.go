package sim

// Store is a bounded FIFO queue of values exchanged between processes.
// Put blocks while the store is full; Get blocks while it is empty.
// A capacity of 0 means unbounded.
//
// Goroutine processes use Put/Get; callback processes use TryPut/TryGet,
// which either complete inline or register the process as a waiter and
// return not-ready. Both pairs run the same code path, consume the same
// engine events, and accumulate the same blocked-time statistics, so a
// process can be converted between flavours without changing simulation
// results.
type Store[T any] struct {
	eng     *Engine
	cap     int
	buf     []T
	getters []*Proc
	putters []*Proc
	closed  bool

	// PutBlocked / GetBlocked accumulate the simulated seconds processes
	// spent blocked on this store; used for stall accounting.
	PutBlocked float64
	GetBlocked float64
}

// NewStore returns a store with the given capacity (0 = unbounded).
func NewStore[T any](e *Engine, capacity int) *Store[T] {
	return &Store[T]{eng: e, cap: capacity}
}

// Len returns the number of buffered values.
func (s *Store[T]) Len() int { return len(s.buf) }

// popProc removes and returns the head of a waiter list without allocating:
// the elements shift down in place so the backing array is reused forever.
func popProc(list *[]*Proc) *Proc {
	l := *list
	p := l[0]
	n := copy(l, l[1:])
	l[n] = nil
	*list = l[:n]
	return p
}

// Put appends v, blocking while the store is full.
func (s *Store[T]) Put(p *Proc, v T) {
	start := s.eng.now
	for !s.TryPut(p, v, start) {
		p.park()
	}
}

// TryPut is the callback-process fast path for Put: it either appends v
// (true) or registers p as a waiting putter and returns false, in which
// case the store resumes p when space frees and p's step must call TryPut
// again, passing the simulated time of its first attempt as since so
// blocked-time accounting matches Put exactly.
func (s *Store[T]) TryPut(p *Proc, v T, since float64) bool {
	if s.cap > 0 && len(s.buf) >= s.cap && !s.closed {
		s.putters = append(s.putters, p)
		return false
	}
	s.PutBlocked += s.eng.now - since
	s.buf = append(s.buf, v)
	if len(s.getters) > 0 {
		s.eng.wakeup(popProc(&s.getters))
	}
	return true
}

// Get removes and returns the oldest value, blocking while empty. The second
// result is false if the store was closed while empty.
func (s *Store[T]) Get(p *Proc) (T, bool) {
	start := s.eng.now
	for {
		v, ok, ready := s.TryGet(p, start)
		if ready {
			return v, ok
		}
		p.park()
	}
}

// TryGet is the callback-process fast path for Get: it either pops a value
// (ready=true), reports closure on an empty store (ready=true, ok=false),
// or registers p as a waiting getter (ready=false), in which case the store
// resumes p when a value arrives and p's step must call TryGet again,
// passing the simulated time of its first attempt as since so blocked-time
// accounting matches Get exactly.
func (s *Store[T]) TryGet(p *Proc, since float64) (v T, ok, ready bool) {
	if len(s.buf) == 0 {
		if s.closed {
			s.GetBlocked += s.eng.now - since
			return v, false, true
		}
		s.getters = append(s.getters, p)
		return v, false, false
	}
	s.GetBlocked += s.eng.now - since
	v = s.buf[0]
	n := copy(s.buf, s.buf[1:])
	var zero T
	s.buf[n] = zero
	s.buf = s.buf[:n]
	if len(s.putters) > 0 {
		s.eng.wakeup(popProc(&s.putters))
	}
	return v, true, true
}

// Close marks the store closed and wakes all blocked getters; subsequent Gets
// on an empty store return ok=false. Puts after Close still succeed (used to
// flush trailing batches) but never block.
func (s *Store[T]) Close() {
	s.closed = true
	for i, g := range s.getters {
		s.eng.wakeup(g)
		s.getters[i] = nil
	}
	s.getters = s.getters[:0]
	for i, q := range s.putters {
		s.eng.wakeup(q)
		s.putters[i] = nil
	}
	s.putters = s.putters[:0]
}

// Barrier synchronises n processes: each Wait blocks until all n arrive.
// It is reusable across generations (like sync.WaitGroup cycles).
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	waiters []*Proc
	// Waited accumulates total blocked time across all processes. A
	// callback process that Arrives without releasing the barrier adds its
	// own share when it is resumed (see Arrive).
	Waited float64
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(e *Engine, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier needs n >= 1")
	}
	return &Barrier{eng: e, n: n}
}

// Wait blocks until n processes have called Wait for this generation.
func (b *Barrier) Wait(p *Proc) {
	if b.Arrive(p) {
		return
	}
	start := b.eng.now
	p.park()
	b.Waited += b.eng.now - start
}

// Arrive is the callback-process fast path for Wait: the arrival is
// recorded and, if p completed the generation, every earlier arriver is
// woken and Arrive returns true (proceed inline). Otherwise p is registered
// as a waiter and Arrive returns false; p's step must return, and when the
// barrier resumes it, add its blocked time (now - arrival time) to Waited —
// exactly what Wait does for goroutine processes.
func (b *Barrier) Arrive(p *Proc) bool {
	b.arrived++
	if b.arrived >= b.n {
		b.arrived = 0
		for i, w := range b.waiters {
			b.eng.wakeup(w)
			b.waiters[i] = nil
		}
		b.waiters = b.waiters[:0]
		return true
	}
	b.waiters = append(b.waiters, p)
	return false
}

// Resource is a counting semaphore with FIFO granting.
type Resource struct {
	eng     *Engine
	cap     int
	inUse   int
	waiters []*resWaiter
	// Waited accumulates total blocked time across acquisitions.
	Waited float64
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource needs capacity >= 1")
	}
	return &Resource{eng: e, cap: capacity}
}

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks until n units are available, then takes them. FIFO order is
// preserved: a large request at the head blocks later small requests.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.cap {
		panic("sim: acquire exceeds resource capacity")
	}
	start := r.eng.now
	for len(r.waiters) > 0 || r.inUse+n > r.cap {
		w := &resWaiter{p: p, n: n}
		r.waiters = append(r.waiters, w)
		p.park()
		// Woken at the head of the queue; re-check capacity.
		if len(r.waiters) > 0 && r.waiters[0] == w && r.inUse+n <= r.cap {
			l := r.waiters
			m := copy(l, l[1:])
			l[m] = nil
			r.waiters = l[:m]
			break
		}
		// Otherwise remove self and retry from scratch.
		for i, x := range r.waiters {
			if x == w {
				r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
				break
			}
		}
	}
	r.Waited += r.eng.now - start
	r.inUse += n
}

// Release returns n units and wakes the head waiter if it now fits.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource over-released")
	}
	if len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.cap {
		r.eng.wakeup(r.waiters[0].p)
	}
}

// BandwidthServer models a FIFO device (disk, NIC) characterised by a
// bandwidth and a fixed per-request overhead. Requests are serviced strictly
// in arrival order: a request arriving while the device is busy queues behind
// the in-flight work, which is how cross-job contention arises.
type BandwidthServer struct {
	eng       *Engine
	busyUntil float64

	// Stats.
	Bytes    float64 // total bytes transferred
	Requests int64   // number of requests
	Busy     float64 // total service time
	Waited   float64 // total queueing delay
}

// NewBandwidthServer returns an idle device.
func NewBandwidthServer(e *Engine) *BandwidthServer {
	return &BandwidthServer{eng: e}
}

// Request transfers bytes at bwBytesPerSec with a fixed overhead (e.g. seek
// time) and blocks the calling process until the transfer completes.
func (d *BandwidthServer) Request(p *Proc, bytes, bwBytesPerSec, overhead float64) {
	p.SleepUntil(d.account(bytes, bwBytesPerSec, overhead))
}

// RequestAsync accounts the transfer and returns its completion time
// without blocking — the callback-process fast path: the caller schedules
// its own wake-up (WakeAfter) for the returned time.
func (d *BandwidthServer) RequestAsync(bytes, bwBytesPerSec, overhead float64) float64 {
	return d.account(bytes, bwBytesPerSec, overhead)
}

// account books one FIFO transfer and returns its completion time.
func (d *BandwidthServer) account(bytes, bwBytesPerSec, overhead float64) float64 {
	if bytes < 0 {
		panic("sim: negative transfer")
	}
	dur := overhead
	if bytes > 0 {
		dur += bytes / bwBytesPerSec
	}
	start := d.eng.now
	if d.busyUntil < start {
		d.busyUntil = start
	}
	d.Waited += d.busyUntil - start
	d.busyUntil += dur
	d.Bytes += bytes
	d.Requests++
	d.Busy += dur
	return d.busyUntil
}

// Utilization returns the fraction of time [0, now] the device was busy.
func (d *BandwidthServer) Utilization() float64 {
	if d.eng.now == 0 {
		return 0
	}
	return d.Busy / d.eng.now
}
