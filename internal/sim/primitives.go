package sim

// Store is a bounded FIFO queue of values exchanged between processes.
// Put blocks while the store is full; Get blocks while it is empty.
// A capacity of 0 means unbounded.
type Store[T any] struct {
	eng     *Engine
	cap     int
	buf     []T
	getters []*Proc
	putters []*Proc
	closed  bool

	// PutBlocked / GetBlocked accumulate the simulated seconds processes
	// spent blocked on this store; used for stall accounting.
	PutBlocked float64
	GetBlocked float64
}

// NewStore returns a store with the given capacity (0 = unbounded).
func NewStore[T any](e *Engine, capacity int) *Store[T] {
	return &Store[T]{eng: e, cap: capacity}
}

// Len returns the number of buffered values.
func (s *Store[T]) Len() int { return len(s.buf) }

// Put appends v, blocking while the store is full.
func (s *Store[T]) Put(p *Proc, v T) {
	start := s.eng.now
	for s.cap > 0 && len(s.buf) >= s.cap && !s.closed {
		s.putters = append(s.putters, p)
		p.park()
	}
	s.PutBlocked += s.eng.now - start
	s.buf = append(s.buf, v)
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		s.eng.wakeup(g)
	}
}

// Get removes and returns the oldest value, blocking while empty. The second
// result is false if the store was closed while empty.
func (s *Store[T]) Get(p *Proc) (T, bool) {
	start := s.eng.now
	for len(s.buf) == 0 {
		if s.closed {
			var zero T
			s.GetBlocked += s.eng.now - start
			return zero, false
		}
		s.getters = append(s.getters, p)
		p.park()
	}
	s.GetBlocked += s.eng.now - start
	v := s.buf[0]
	s.buf = s.buf[1:]
	if len(s.putters) > 0 {
		q := s.putters[0]
		s.putters = s.putters[1:]
		s.eng.wakeup(q)
	}
	return v, true
}

// Close marks the store closed and wakes all blocked getters; subsequent Gets
// on an empty store return ok=false. Puts after Close still succeed (used to
// flush trailing batches) but never block.
func (s *Store[T]) Close() {
	s.closed = true
	for _, g := range s.getters {
		s.eng.wakeup(g)
	}
	s.getters = nil
	for _, q := range s.putters {
		s.eng.wakeup(q)
	}
	s.putters = nil
}

// Barrier synchronises n processes: each Wait blocks until all n arrive.
// It is reusable across generations (like sync.WaitGroup cycles).
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	waiters []*Proc
	// Waited accumulates total blocked time across all processes.
	Waited float64
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(e *Engine, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier needs n >= 1")
	}
	return &Barrier{eng: e, n: n}
}

// Wait blocks until n processes have called Wait for this generation.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived >= b.n {
		b.arrived = 0
		for _, w := range b.waiters {
			b.eng.wakeup(w)
		}
		b.waiters = nil
		return
	}
	start := b.eng.now
	b.waiters = append(b.waiters, p)
	p.park()
	b.Waited += b.eng.now - start
}

// Resource is a counting semaphore with FIFO granting.
type Resource struct {
	eng     *Engine
	cap     int
	inUse   int
	waiters []*resWaiter
	// Waited accumulates total blocked time across acquisitions.
	Waited float64
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource needs capacity >= 1")
	}
	return &Resource{eng: e, cap: capacity}
}

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks until n units are available, then takes them. FIFO order is
// preserved: a large request at the head blocks later small requests.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.cap {
		panic("sim: acquire exceeds resource capacity")
	}
	start := r.eng.now
	for len(r.waiters) > 0 || r.inUse+n > r.cap {
		w := &resWaiter{p: p, n: n}
		r.waiters = append(r.waiters, w)
		p.park()
		// Woken at the head of the queue; re-check capacity.
		if len(r.waiters) > 0 && r.waiters[0] == w && r.inUse+n <= r.cap {
			r.waiters = r.waiters[1:]
			break
		}
		// Otherwise remove self and retry from scratch.
		for i, x := range r.waiters {
			if x == w {
				r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
				break
			}
		}
	}
	r.Waited += r.eng.now - start
	r.inUse += n
}

// Release returns n units and wakes the head waiter if it now fits.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource over-released")
	}
	if len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.cap {
		r.eng.wakeup(r.waiters[0].p)
	}
}

// BandwidthServer models a FIFO device (disk, NIC) characterised by a
// bandwidth and a fixed per-request overhead. Requests are serviced strictly
// in arrival order: a request arriving while the device is busy queues behind
// the in-flight work, which is how cross-job contention arises.
type BandwidthServer struct {
	eng       *Engine
	busyUntil float64

	// Stats.
	Bytes    float64 // total bytes transferred
	Requests int64   // number of requests
	Busy     float64 // total service time
	Waited   float64 // total queueing delay
}

// NewBandwidthServer returns an idle device.
func NewBandwidthServer(e *Engine) *BandwidthServer {
	return &BandwidthServer{eng: e}
}

// Request transfers bytes at bwBytesPerSec with a fixed overhead (e.g. seek
// time) and blocks the calling process until the transfer completes.
func (d *BandwidthServer) Request(p *Proc, bytes, bwBytesPerSec, overhead float64) {
	if bytes < 0 {
		panic("sim: negative transfer")
	}
	dur := overhead
	if bytes > 0 {
		dur += bytes / bwBytesPerSec
	}
	start := d.eng.now
	if d.busyUntil < start {
		d.busyUntil = start
	}
	d.Waited += d.busyUntil - start
	d.busyUntil += dur
	d.Bytes += bytes
	d.Requests++
	d.Busy += dur
	p.SleepUntil(d.busyUntil)
}

// Utilization returns the fraction of time [0, now] the device was busy.
func (d *BandwidthServer) Utilization() float64 {
	if d.eng.now == 0 {
		return 0
	}
	return d.Busy / d.eng.now
}
