package sim

// Cond is a condition variable for simulated processes. Waiters must
// re-check their predicate in a loop around Wait, as with sync.Cond.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable on engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks the calling process until a Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every waiting process (at the current simulated time).
func (c *Cond) Broadcast() {
	for i, w := range c.waiters {
		c.eng.wakeup(w)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// Waiting returns the number of parked waiters.
func (c *Cond) Waiting() int { return len(c.waiters) }
