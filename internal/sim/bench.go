// Benchmark workloads shared by the Go benchmarks (bench_test.go in this
// package) and cmd/stallbench's -bench2 mode, which emits the BENCH_2.json
// old-vs-new comparison. The "old" side is a frozen copy of the
// pre-zero-alloc engine — pointer-boxed container/heap events,
// closure-captured resumes, goroutine-only processes — kept solely as the
// "before" baseline; do not use it for simulations.
package sim

import "container/heap"

// BenchPingPong drives pairs independent producer/consumer pairs, each
// exchanging rounds values through a capacity-1 store, on the current
// engine — the event-dispatch hot loop in isolation (every handoff is one
// wakeup event). callback selects the Spawn fast path (state-machine
// processes on the engine goroutine); otherwise goroutine processes.
func BenchPingPong(pairs, rounds int, callback bool) {
	e := New()
	for i := 0; i < pairs; i++ {
		s := NewStore[int](e, 1)
		if callback {
			spawnBenchPair(e, s, rounds)
			continue
		}
		e.Go("prod", func(p *Proc) {
			for k := 0; k < rounds; k++ {
				s.Put(p, k)
			}
		})
		e.Go("cons", func(p *Proc) {
			for k := 0; k < rounds; k++ {
				s.Get(p)
			}
		})
	}
	e.Run()
}

// spawnBenchPair registers one producer/consumer pair as callback
// processes: each step drains as far as the store allows, registers as a
// waiter when it can't, and is re-stepped by the store's wakeup.
func spawnBenchPair(e *Engine, s *Store[int], rounds int) {
	sent, recvd := 0, 0
	e.Spawn("prod", func(p *Proc) {
		for sent < rounds {
			if !s.TryPut(p, sent, p.Now()) {
				return
			}
			sent++
		}
	})
	e.Spawn("cons", func(p *Proc) {
		for recvd < rounds {
			if _, _, ready := s.TryGet(p, p.Now()); !ready {
				return
			}
			recvd++
		}
	})
}

// BenchPingPongLegacy runs the same workload on the frozen pre-zero-alloc
// engine: every event is a heap-allocated *legacyEvent pushed through
// container/heap's interface{} boxing, every resume captures its process in
// a fresh closure, and every block/resume pays two channel handoffs.
func BenchPingPongLegacy(pairs, rounds int) {
	e := &legacyEngine{ctl: make(chan struct{})}
	for i := 0; i < pairs; i++ {
		s := &legacyStore{eng: e, cap: 1}
		e.goProc(func(p *legacyProc) {
			for k := 0; k < rounds; k++ {
				s.put(p, k)
			}
		})
		e.goProc(func(p *legacyProc) {
			for k := 0; k < rounds; k++ {
				s.get(p)
			}
		})
	}
	e.run()
}

// legacyEvent / legacyHeap: the old pointer-boxed binary heap.
type legacyEvent struct {
	t   float64
	seq int64
	fn  func()
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x interface{}) { *h = append(*h, x.(*legacyEvent)) }
func (h *legacyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type legacyEngine struct {
	now    float64
	seq    int64
	events legacyHeap
	ctl    chan struct{}
}

func (e *legacyEngine) schedule(delay float64, fn func()) {
	e.seq++
	heap.Push(&e.events, &legacyEvent{t: e.now + delay, seq: e.seq, fn: fn})
}

func (e *legacyEngine) resume(p *legacyProc) {
	p.wake <- struct{}{}
	<-e.ctl
}

func (e *legacyEngine) run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*legacyEvent)
		e.now = ev.t
		ev.fn()
	}
}

type legacyProc struct {
	eng  *legacyEngine
	wake chan struct{}
}

func (e *legacyEngine) goProc(fn func(p *legacyProc)) {
	p := &legacyProc{eng: e, wake: make(chan struct{})}
	go func() {
		<-p.wake
		fn(p)
		e.ctl <- struct{}{}
	}()
	e.schedule(0, func() { e.resume(p) })
}

func (p *legacyProc) park() {
	e := p.eng
	e.ctl <- struct{}{}
	<-p.wake
}

func (e *legacyEngine) wakeup(p *legacyProc) {
	e.schedule(0, func() { e.resume(p) })
}

type legacyStore struct {
	eng     *legacyEngine
	cap     int
	buf     []int
	getters []*legacyProc
	putters []*legacyProc
}

func (s *legacyStore) put(p *legacyProc, v int) {
	for s.cap > 0 && len(s.buf) >= s.cap {
		s.putters = append(s.putters, p)
		p.park()
	}
	s.buf = append(s.buf, v)
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		s.eng.wakeup(g)
	}
}

func (s *legacyStore) get(p *legacyProc) int {
	for len(s.buf) == 0 {
		s.getters = append(s.getters, p)
		p.park()
	}
	v := s.buf[0]
	s.buf = s.buf[1:]
	if len(s.putters) > 0 {
		q := s.putters[0]
		s.putters = s.putters[1:]
		s.eng.wakeup(q)
	}
	return v
}
