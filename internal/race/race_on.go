//go:build race

// Package race reports whether the race detector instruments this build.
// The zero-allocation hot-path guards (testing.AllocsPerRun) skip under it:
// its instrumentation allocates shadow state on code paths that are
// allocation-free in normal builds.
package race

// Enabled reports whether the race detector is active.
const Enabled = true
