// Package prep models CPU pre-processing: decode, random augmentation and
// collation of minibatches (§2 Steps 1-2). Cost is dominated by decode and
// is proportional to raw input bytes; throughput scales linearly with
// physical cores and sub-linearly with hyperthreads (Appendix B.1 measures
// ~30% gain from doubling threads past physical cores).
package prep

import "datastall/internal/gpu"

// Loader framework of the pre-processing pipeline. DALI's optimized nvJPEG
// path is several times faster per core than the native PyTorch (Pillow +
// TorchVision) path (Appendix B.2, Fig 13).
type Framework int

// Pre-processing frameworks.
const (
	DALI Framework = iota
	PyTorchNative
)

// String returns the framework name.
func (f Framework) String() string {
	if f == DALI {
		return "dali"
	}
	return "pytorch"
}

// pytorchFactor is the native loader's per-core throughput relative to DALI
// CPU (Pillow decode vs nvJPEG; Fig 13 shows DALI ~3x faster per core).
const pytorchFactor = 0.34

// htEfficiency is the marginal throughput of a hyperthread relative to a
// physical core (Appendix B.1: 32->64 threads bought only ~30%).
const htEfficiency = 0.30

// Config describes one job's pre-processing resources.
type Config struct {
	Framework Framework
	// Threads is the number of prep worker threads for this job.
	Threads int
	// PhysicalCores is how many of those threads map to dedicated
	// physical cores; the remainder are hyperthreads.
	PhysicalCores int
	// GPUPrep enables DALI's GPU-side pipeline on NumGPUs devices.
	GPUPrep bool
	NumGPUs int
	// Gen selects the GPU generation for the GPU-prep rate.
	Gen gpu.Generation
}

// EffectiveCores converts a thread allocation into physical-core
// equivalents using the hyperthreading efficiency model.
func EffectiveCores(threads, physicalCores int) float64 {
	if threads <= 0 {
		return 0
	}
	if threads <= physicalCores {
		return float64(threads)
	}
	return float64(physicalCores) + htEfficiency*float64(threads-physicalCores)
}

// Rate returns the aggregate pre-processing throughput in bytes of raw input
// per second for model m under cfg.
func Rate(m *gpu.Model, cfg Config) float64 {
	perCore := m.PrepCPUBytes
	if cfg.Framework == PyTorchNative {
		perCore *= pytorchFactor
	}
	r := EffectiveCores(cfg.Threads, cfg.PhysicalCores) * perCore
	if cfg.GPUPrep && cfg.Framework == DALI {
		r += float64(cfg.NumGPUs) * m.PrepGPUBytes(cfg.Gen)
	}
	return r
}

// BatchTime returns the seconds to pre-process a batch of rawBytes under cfg.
func BatchTime(m *gpu.Model, cfg Config, rawBytes float64) float64 {
	r := Rate(m, cfg)
	if r <= 0 {
		panic("prep: zero prep rate")
	}
	return rawBytes / r
}

// GPUPrepFits reports whether DALI's GPU pipeline fits in device memory next
// to the model (Appendix B.2: GPU prep takes 2-5 GB and can OOM).
func GPUPrepFits(m *gpu.Model, gen gpu.Generation) bool {
	// Rough activation budget: half the device for the model/activations.
	return m.GPUPrepMemGB <= gen.MemGB()*0.35
}

// BestConfig returns the faster of CPU-only and GPU-assisted DALI prep for
// the model, mirroring the paper's methodology ("we run with both GPU and
// CPU based DALI pipeline and present the best of the two results").
// It compares end-to-end: GPU prep adds prep throughput but can slow the
// GPU's compute rate. avgItemBytes is the dataset's mean raw item size.
func BestConfig(m *gpu.Model, gen gpu.Generation, threads, physCores, nGPUs, batch int, avgItemBytes float64) Config {
	cpu := Config{Framework: DALI, Threads: threads, PhysicalCores: physCores, NumGPUs: nGPUs, Gen: gen}
	gpuCfg := cpu
	gpuCfg.GPUPrep = true
	if !GPUPrepFits(m, gen) {
		return cpu
	}
	// Pipeline throughput in samples/s = min(prep rate, GPU rate).
	throughput := func(c Config) float64 {
		prepSamples := Rate(m, c) / avgItemBytes
		gpuSamples := m.Rate(gen, batch) * float64(nGPUs)
		if c.GPUPrep {
			gpuSamples *= m.GPUPrepSlowdown
		}
		if prepSamples < gpuSamples {
			return prepSamples
		}
		return gpuSamples
	}
	if throughput(gpuCfg) > throughput(cpu) {
		return gpuCfg
	}
	return cpu
}
