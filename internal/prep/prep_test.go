package prep

import (
	"math"
	"testing"
	"testing/quick"

	"datastall/internal/gpu"
)

const avgImagenet = 146 * 1024.0 * 1024 * 1024 / 1_281_167

func TestEffectiveCores(t *testing.T) {
	if EffectiveCores(3, 24) != 3 {
		t.Fatal("threads under core count should be linear")
	}
	// 64 vCPUs on 32 cores: Appendix B.1 says only ~30% extra.
	got := EffectiveCores(64, 32)
	if math.Abs(got-(32+0.3*32)) > 1e-9 {
		t.Fatalf("64 threads / 32 cores = %v effective", got)
	}
	if EffectiveCores(0, 8) != 0 {
		t.Fatal("zero threads")
	}
}

func TestDALIFasterThanPyTorch(t *testing.T) {
	// Fig 13: DALI (nvJPEG) dominates the native PyTorch loader per core.
	m := gpu.MustByName("resnet18")
	cfg := Config{Framework: DALI, Threads: 8, PhysicalCores: 8}
	pt := cfg
	pt.Framework = PyTorchNative
	if Rate(m, cfg) <= Rate(m, pt) {
		t.Fatal("DALI must be faster per core than PyTorch native")
	}
	ratio := Rate(m, cfg) / Rate(m, pt)
	if ratio < 2 || ratio > 4 {
		t.Fatalf("DALI/PyTorch ratio %.1f, want ~3", ratio)
	}
}

func TestGPUPrepAddsThroughput(t *testing.T) {
	m := gpu.MustByName("resnet18")
	cpu := Config{Framework: DALI, Threads: 24, PhysicalCores: 24, NumGPUs: 8, Gen: gpu.V100}
	withGPU := cpu
	withGPU.GPUPrep = true
	if Rate(m, withGPU) <= Rate(m, cpu) {
		t.Fatal("GPU prep should add throughput")
	}
	// GPU prep does not help the PyTorch-native framework.
	pt := withGPU
	pt.Framework = PyTorchNative
	ptNoGPU := cpu
	ptNoGPU.Framework = PyTorchNative
	if Rate(m, pt) != Rate(m, ptNoGPU) {
		t.Fatal("GPU prep must only apply to DALI")
	}
}

func TestFig5PrepStallCalibration(t *testing.T) {
	// Fig 5: ResNet18 with 3 cores/GPU + GPU prep has ~50% prep stall on
	// V100 but none on the slower 1080Ti.
	m := gpu.MustByName("resnet18")
	perGPU := func(gen gpu.Generation) (prepBytes, demandBytes float64) {
		cfg := Config{Framework: DALI, Threads: 3, PhysicalCores: 3,
			GPUPrep: true, NumGPUs: 1, Gen: gen}
		return Rate(m, cfg), m.RefRate(gen) * avgImagenet
	}
	p, g := perGPU(gpu.V100)
	stall := 1 - p/g
	if stall < 0.35 || stall > 0.60 {
		t.Fatalf("V100 prep stall %.2f, want ~0.5", stall)
	}
	p, g = perGPU(gpu.GTX1080Ti)
	if p < g {
		t.Fatalf("1080Ti should mask prep with 3 cores + GPU prep (%v < %v)", p, g)
	}
}

func TestBatchTime(t *testing.T) {
	m := gpu.MustByName("alexnet")
	cfg := Config{Framework: DALI, Threads: 1, PhysicalCores: 1}
	bt := BatchTime(m, cfg, m.PrepCPUBytes) // 1 core-second of work
	if math.Abs(bt-1) > 1e-9 {
		t.Fatalf("batch time %v, want 1", bt)
	}
}

func TestBestConfigPrefersCPUForComputeHeavy(t *testing.T) {
	// Appendix B.2: GPU prep hurts ResNet50/VGG11 (already GPU-bound);
	// the best-of policy must pick CPU prep when prep isn't the
	// bottleneck, and GPU prep for prep-starved light models.
	rn50 := gpu.MustByName("resnet50")
	cfg := BestConfig(rn50, gpu.V100, 4, 4, 1, 512, avgImagenet)
	if cfg.GPUPrep {
		t.Fatal("resnet50 with enough cores should use CPU prep")
	}
	r18 := gpu.MustByName("resnet18")
	cfg = BestConfig(r18, gpu.V100, 3, 3, 1, 512, avgImagenet)
	if !cfg.GPUPrep {
		t.Fatal("prep-starved resnet18 should enable GPU prep")
	}
}

func TestGPUPrepFits(t *testing.T) {
	vgg := gpu.MustByName("vgg11")
	if GPUPrepFits(vgg, gpu.GTX1080Ti) {
		t.Fatal("VGG11 GPU prep should not fit on 11GB 1080Ti")
	}
	if !GPUPrepFits(gpu.MustByName("resnet18"), gpu.V100) {
		t.Fatal("resnet18 GPU prep fits on V100")
	}
}

// Property: Rate is monotone in threads and never negative.
func TestRateMonotoneProperty(t *testing.T) {
	f := func(threadsRaw, coresRaw uint8) bool {
		threads := int(threadsRaw)%64 + 1
		cores := int(coresRaw)%32 + 1
		m := gpu.MustByName("mobilenetv2")
		a := Rate(m, Config{Framework: DALI, Threads: threads, PhysicalCores: cores})
		b := Rate(m, Config{Framework: DALI, Threads: threads + 1, PhysicalCores: cores})
		return b > a && a > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
