// Concurrent prep accounting: Pool is the prep-stage counterpart of the
// sharded caches. Many pipeline prep workers call Process concurrently; the
// pool charges each batch its modeled decode cost (bytes / Rate) and
// accumulates busy time on a CAS float64, so the concurrent backend reports
// the same aggregate prep-busy seconds the analytic backend would for the
// same bytes — without a lock on the hot path.
package prep

import (
	"sync/atomic"

	"datastall/internal/gpu"
	"datastall/internal/xatomic"
)

// Pool tracks pre-processing work performed by concurrent prep workers.
type Pool struct {
	rate float64 // bytes/sec aggregate throughput of the prep stage

	busy    xatomic.Float64 // accumulated busy seconds
	bytes   xatomic.Float64 // accumulated raw bytes
	batches atomic.Int64
}

// NewPool returns a pool processing at the modeled Rate(m, cfg).
func NewPool(m *gpu.Model, cfg Config) *Pool {
	return NewPoolRate(Rate(m, cfg))
}

// NewPoolRate returns a pool with an explicit aggregate rate in bytes/sec.
// A non-positive rate disables time accounting (bytes are still counted).
func NewPoolRate(rate float64) *Pool { return &Pool{rate: rate} }

// Rate returns the pool's aggregate throughput in bytes/sec.
func (p *Pool) Rate() float64 { return p.rate }

// Process charges one batch of rawBytes to the pool and returns the seconds
// of prep time it cost under the rate model. Safe for concurrent use.
func (p *Pool) Process(rawBytes float64) float64 {
	if rawBytes <= 0 {
		return 0
	}
	p.batches.Add(1)
	p.bytes.Add(rawBytes)
	if p.rate <= 0 {
		return 0
	}
	d := rawBytes / p.rate
	p.busy.Add(d)
	return d
}

// BusySeconds returns accumulated modeled prep time.
func (p *Pool) BusySeconds() float64 { return p.busy.Load() }

// ProcessedBytes returns accumulated raw bytes.
func (p *Pool) ProcessedBytes() float64 { return p.bytes.Load() }

// Batches returns the number of batches processed.
func (p *Pool) Batches() int64 { return p.batches.Load() }

// Reset clears all counters (after the warmup epoch).
func (p *Pool) Reset() {
	p.busy.Store(0)
	p.bytes.Store(0)
	p.batches.Store(0)
}
