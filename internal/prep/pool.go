// Concurrent prep accounting: Pool is the prep-stage counterpart of the
// sharded caches. Many pipeline prep workers call Process concurrently; the
// pool charges each batch its modeled decode cost (bytes / Rate) and
// accumulates the raw bytes on an integer fixed-point atomic — the same
// 2^-20-byte units the sharded cache budgets use — so the concurrent
// backend reports the same aggregate prep-busy seconds the analytic backend
// would for the same bytes, without a lock (or a CAS retry loop) on the hot
// path. Busy time is derived from the byte total at read time, which makes
// the accumulation order-independent: unlike the float CAS accumulator this
// replaced, N workers charging interleaved batches can never produce a
// rounding-order-dependent sum.
package prep

import (
	"math"
	"sync/atomic"

	"datastall/internal/gpu"
)

// byteScale converts bytes to fixed-point units (2^-20 bytes per unit), so
// integer accumulation is exact; any integer or dyadic-fraction byte size
// converts losslessly. An int64 of units overflows at ~8 EiB-units = 8 TiB
// of raw bytes per pool — far beyond a training job's per-server traffic
// (pools reset at epoch boundaries' warmup cut anyway).
const byteScale = 1 << 20

// Pool tracks pre-processing work performed by concurrent prep workers.
type Pool struct {
	rate float64 // bytes/sec aggregate throughput of the prep stage

	bytesUnits atomic.Int64 // accumulated raw bytes, 2^-20-byte units
	batches    atomic.Int64
}

// NewPool returns a pool processing at the modeled Rate(m, cfg).
func NewPool(m *gpu.Model, cfg Config) *Pool {
	return NewPoolRate(Rate(m, cfg))
}

// NewPoolRate returns a pool with an explicit aggregate rate in bytes/sec.
// A non-positive rate disables time accounting (bytes are still counted).
func NewPoolRate(rate float64) *Pool { return &Pool{rate: rate} }

// Rate returns the pool's aggregate throughput in bytes/sec.
func (p *Pool) Rate() float64 { return p.rate }

// Process charges one batch of rawBytes to the pool and returns the seconds
// of prep time it cost under the rate model. Safe for concurrent use.
func (p *Pool) Process(rawBytes float64) float64 {
	if rawBytes <= 0 {
		return 0
	}
	p.batches.Add(1)
	p.bytesUnits.Add(int64(math.Round(rawBytes * byteScale)))
	if p.rate <= 0 {
		return 0
	}
	return rawBytes / p.rate
}

// BusySeconds returns accumulated modeled prep time, derived from the byte
// total so it is exact regardless of how charges interleaved.
func (p *Pool) BusySeconds() float64 {
	if p.rate <= 0 {
		return 0
	}
	return p.ProcessedBytes() / p.rate
}

// ProcessedBytes returns accumulated raw bytes.
func (p *Pool) ProcessedBytes() float64 {
	return float64(p.bytesUnits.Load()) / byteScale
}

// Batches returns the number of batches processed.
func (p *Pool) Batches() int64 { return p.batches.Load() }

// Reset clears all counters (after the warmup epoch).
func (p *Pool) Reset() {
	p.bytesUnits.Store(0)
	p.batches.Store(0)
}
