package prep

import (
	"math"
	"sync"
	"testing"

	"datastall/internal/gpu"
)

func TestPoolMatchesBatchTime(t *testing.T) {
	m := gpu.MustByName("resnet18")
	cfg := Config{Framework: DALI, Threads: 3, PhysicalCores: 3}
	p := NewPool(m, cfg)
	const raw = 1e9
	got := p.Process(raw)
	if want := BatchTime(m, cfg, raw); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Process charged %v s, BatchTime says %v", got, want)
	}
	if p.BusySeconds() != got || p.ProcessedBytes() != raw || p.Batches() != 1 {
		t.Fatalf("counters busy=%v bytes=%v batches=%d", p.BusySeconds(), p.ProcessedBytes(), p.Batches())
	}
}

// TestPoolConcurrentAccumulation: N workers charging batches concurrently
// must lose nothing on the fixed-point atomic accumulators (run under
// -race).
func TestPoolConcurrentAccumulation(t *testing.T) {
	p := NewPoolRate(100) // 100 bytes/sec: each 1-byte batch costs 0.01s
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				p.Process(1)
			}
		}()
	}
	wg.Wait()
	if p.Batches() != workers*perW {
		t.Fatalf("batches %d, want %d", p.Batches(), workers*perW)
	}
	if got, want := p.ProcessedBytes(), float64(workers*perW); got != want {
		t.Fatalf("bytes %v, want %v", got, want)
	}
	// Equal-sized charges commute exactly in FP, so the sum is exact.
	if got, want := p.BusySeconds(), float64(workers*perW)/100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy %v, want %v", got, want)
	}
}

// TestPoolUnequalBatchesExact: mixed batch sizes accumulate exactly in
// fixed-point units — the property the float CAS accumulator could not
// guarantee (its sum depended on interleaving order). Integer and dyadic
// sizes convert losslessly, so the totals are equalities, not tolerances.
func TestPoolUnequalBatchesExact(t *testing.T) {
	p := NewPoolRate(1 << 10)
	sizes := []float64{1, 3, 1 << 20, 0.5, 1048575.25, 7}
	var wg sync.WaitGroup
	const rounds = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p.Process(sizes[(w+i)%len(sizes)])
			}
		}(w)
	}
	wg.Wait()
	var want float64
	for w := 0; w < 4; w++ {
		for i := 0; i < rounds; i++ {
			want += sizes[(w+i)%len(sizes)]
		}
	}
	if got := p.ProcessedBytes(); got != want {
		t.Fatalf("ProcessedBytes %v, want exactly %v", got, want)
	}
	if got, want := p.BusySeconds(), want/(1<<10); got != want {
		t.Fatalf("BusySeconds %v, want exactly %v", got, want)
	}
}

func TestPoolDegenerate(t *testing.T) {
	p := NewPoolRate(0)
	if d := p.Process(100); d != 0 {
		t.Fatalf("zero-rate pool charged %v s", d)
	}
	if p.ProcessedBytes() != 100 {
		t.Fatalf("bytes %v, want 100", p.ProcessedBytes())
	}
	if d := p.Process(-5); d != 0 || p.Batches() != 1 {
		t.Fatalf("negative bytes must be ignored (d=%v batches=%d)", d, p.Batches())
	}
	p.Reset()
	if p.BusySeconds() != 0 || p.ProcessedBytes() != 0 || p.Batches() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}
