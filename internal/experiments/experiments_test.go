package experiments

import (
	"context"
	"math"
	"testing"
)

func run(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(context.Background(), id, Options{})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.Table == nil || len(r.Table.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table3", "fig8",
		"fig9a", "fig9b", "fig9d", "fig9e", "fig10", "fig11",
		"table5", "table6", "table7",
		"fig12", "fig13", "fig14", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23",
		"ablation-cache", "ablation-remote", "ablation-staging", "ablation-prefetch",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(List()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(List()), len(want))
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.1f, want ~%.1f (+/-%.0f%%)", name, got, want, tol*100)
	}
}

func TestFig1Calibration(t *testing.T) {
	r := run(t, "fig1")
	near(t, "hdd", r.Values["hdd_mbps"], 15, 0.15)
	near(t, "ssd", r.Values["ssd_mbps"], 530, 0.10)
	near(t, "mix", r.Values["mix_mbps"], 802, 0.10)
	near(t, "cpu prep", r.Values["cpu_prep_mbps"], 735, 0.10)
	near(t, "hybrid prep", r.Values["hybrid_prep_mbps"], 1062, 0.10)
	near(t, "gpu demand", r.Values["gpu_demand_mbps"], 2283, 0.10)
}

func TestFig2FetchStallsShape(t *testing.T) {
	r := run(t, "fig2")
	// All models show fetch stalls at 35% cache; audio is the worst;
	// heavy models stall less than light ones.
	for _, m := range fig2Models {
		v := r.Values["fetch_stall_"+m]
		if v < 3 || v > 98 {
			t.Errorf("%s fetch stall %.0f%% outside the paper's 10-70%% band", m, v)
		}
	}
	if r.Values["fetch_stall_audio-m5"] < r.Values["fetch_stall_resnet50"] {
		t.Error("audio should stall more than resnet50")
	}
	if r.Values["fetch_stall_alexnet"] < r.Values["fetch_stall_vgg11"] {
		t.Error("alexnet (fast GPU rate) should stall more than vgg11")
	}
}

func TestFig3Thrashing(t *testing.T) {
	r := run(t, "fig3")
	// Paper: at 35% cache the page cache fetches ~85% of the dataset
	// instead of the ideal 65%.
	f := r.Values["fetched_pct_at_35"]
	if f < 70 || f > 95 {
		t.Errorf("fetched %.0f%% at 35%% cache, want 70-95 (thrashing above ideal 65)", f)
	}
	if r.Values["thrash_seconds_at_35"] <= 0 {
		t.Error("no thrashing cost measured")
	}
}

func TestFig4CoreScaling(t *testing.T) {
	r := run(t, "fig4")
	// ResNet50 saturates by 3-6 cores; AlexNet still gains through 24.
	if r.Values["throughput24_alexnet"] < 1.5*r.Values["throughput3_alexnet"] {
		t.Error("alexnet should scale well beyond 3 cores")
	}
	rn50Gain := r.Values["throughput24_resnet50"] / r.Values["throughput3_resnet50"]
	if rn50Gain > 1.6 {
		t.Errorf("resnet50 gained %.2fx from 3->24 cores, should saturate early", rn50Gain)
	}
}

func TestFig5GPUGenerations(t *testing.T) {
	r := run(t, "fig5")
	// ~50% prep stall on V100 even with GPU prep; ~0 on 1080Ti.
	v := r.Values["prep_stall_gpuprep_v100"]
	if v < 30 || v > 65 {
		t.Errorf("V100 prep stall %.0f%%, want ~50", v)
	}
	if h := r.Values["prep_stall_gpuprep_1080ti"]; h > 12 {
		t.Errorf("1080Ti prep stall %.0f%%, want ~0", h)
	}
}

func TestFig6PrepStallBand(t *testing.T) {
	r := run(t, "fig6")
	// Paper: 5-65% of epoch time across DNNs.
	stalled := 0
	for _, m := range fig2Models {
		if r.Values["prep_stall_"+m] > 5 {
			stalled++
		}
	}
	if stalled < 5 {
		t.Errorf("only %d models show prep stalls at 3 cores/GPU", stalled)
	}
}

func TestTable3TFRecord(t *testing.T) {
	r := run(t, "table3")
	// Paper at 35%: 94% misses, 7.2x read amplification.
	if m := r.Values["miss_pct_at_35"]; m < 80 {
		t.Errorf("TFRecord miss %.0f%%, want ~94 (sequential scan thrashes)", m)
	}
	if a := r.Values["read_amp_at_35"]; a < 4 || a > 9 {
		t.Errorf("read amplification %.1f, want ~7", a)
	}
}

func TestFig8WorkedExample(t *testing.T) {
	r := run(t, "fig8")
	for _, k := range []string{"minio_hits_epoch1", "minio_hits_epoch2"} {
		if r.Values[k] != 2 {
			t.Errorf("%s = %v, want exactly 2", k, r.Values[k])
		}
	}
	if r.Values["lru_hits_epoch1"] >= 2 && r.Values["lru_hits_epoch2"] >= 2 {
		t.Error("LRU should thrash below MinIO on the worked example")
	}
}

func TestFig9aSingleServer(t *testing.T) {
	r := run(t, "fig9a")
	for _, m := range []string{"shufflenetv2", "alexnet", "resnet18"} {
		if sp := r.Values["speedup_seq_"+m]; sp < 1.2 {
			t.Errorf("%s vs DALI-seq speedup %.2f, want > 1.2", m, sp)
		}
		if sp := r.Values["speedup_shuffle_"+m]; sp < 1.1 {
			t.Errorf("%s vs DALI-shuffle speedup %.2f, want > 1.1", m, sp)
		}
	}
}

func TestFig9bDistributed(t *testing.T) {
	r := run(t, "fig9b")
	// HDD speedups are large; SSD ones modest (paper: 15x vs 1.3-2.9x).
	if sp := r.Values["speedup_alexnet"]; sp < 5 {
		t.Errorf("alexnet HDD speedup %.1f, want large", sp)
	}
	if sp := r.Values["speedup_shufflenetv2"]; sp < 1.1 {
		t.Errorf("shufflenet SSD speedup %.2f, want > 1.1", sp)
	}
	if r.Values["speedup_alexnet"] < r.Values["speedup_shufflenetv2"] {
		t.Error("HDD speedup should exceed SSD speedup")
	}
}

func TestFig9dHPSearch(t *testing.T) {
	r := run(t, "fig9d")
	for _, m := range []string{"alexnet", "shufflenetv2", "audio-m5"} {
		if sp := r.Values["speedup_"+m]; sp < 1.5 {
			t.Errorf("%s HP speedup %.2f, want > 1.5", m, sp)
		}
	}
	// Audio gains most (paper 5.6x); heavy models least.
	if r.Values["speedup_audio-m5"] < r.Values["speedup_resnet50"] {
		t.Error("audio should gain more than resnet50")
	}
}

func TestFig9eJobShapes(t *testing.T) {
	r := run(t, "fig9e")
	for _, k := range []string{"speedup_8x1", "speedup_4x2", "speedup_2x4", "speedup_1x8"} {
		if r.Values[k] < 1.05 {
			t.Errorf("%s = %.2f, want > 1", k, r.Values[k])
		}
	}
	// Coordination matters more with more concurrent jobs.
	if r.Values["speedup_8x1"] < r.Values["speedup_1x8"] {
		t.Error("8-job speedup should exceed single-job (MinIO-only) speedup")
	}
}

func TestFig10TimeToAccuracy(t *testing.T) {
	r := run(t, "fig10")
	sp := r.Values["speedup"]
	if sp < 2 || sp > 10 {
		t.Errorf("time-to-accuracy speedup %.1f, want ~4", sp)
	}
	if r.Values["coordl_hours"] > r.Values["dali_hours"] {
		t.Error("CoorDL must reach target accuracy sooner")
	}
}

func TestFig11IOPattern(t *testing.T) {
	r := run(t, "fig11")
	if r.Values["coordl_total_gib"] >= r.Values["dali_total_gib"] {
		t.Error("CoorDL should read less from disk overall")
	}
	if r.Values["coordl_runtime_frac"] >= 1 {
		t.Error("CoorDL's run should end earlier")
	}
}

func TestTable5PredictionAccuracy(t *testing.T) {
	r := run(t, "table5")
	for _, k := range []string{"error_pct_25", "error_pct_35", "error_pct_50"} {
		if r.Values[k] > 15 {
			t.Errorf("%s = %.1f%%, want small prediction error", k, r.Values[k])
		}
	}
}

func TestTable6Misses(t *testing.T) {
	r := run(t, "table6")
	// Ordering: CoorDL 35% < shuffle < seq (paper 35/53/66).
	co, sh, se := r.Values["miss_coordl"], r.Values["miss_dali-shuffle"], r.Values["miss_dali-seq"]
	if !(co < sh && sh < se) {
		t.Errorf("miss ordering violated: coordl=%.0f shuffle=%.0f seq=%.0f", co, sh, se)
	}
	near(t, "coordl miss", co, 35, 0.10)
	// Disk I/O ordering follows.
	if !(r.Values["diskgib_coordl"] < r.Values["diskgib_dali-shuffle"]) {
		t.Error("CoorDL disk I/O should be lowest")
	}
}

func TestTable7FullyCachedHP(t *testing.T) {
	r := run(t, "table7")
	for _, m := range []string{"shufflenetv2", "alexnet", "resnet18"} {
		if sp := r.Values["speedup_"+m]; sp < 1.1 {
			t.Errorf("%s fully-cached HP speedup %.2f, want > 1.1", m, sp)
		}
	}
	// Light models gain more than heavy ones (paper 1.87x vs 1.21x).
	if r.Values["speedup_alexnet"] < r.Values["speedup_resnet50"] {
		t.Error("alexnet should gain more than resnet50")
	}
}

func TestFig12Hyperthreading(t *testing.T) {
	r := run(t, "fig12")
	s3, s8 := r.Values["prep_stall_3vcpu"], r.Values["prep_stall_8vcpu"]
	if s8 >= s3 {
		t.Error("more vCPUs must reduce prep stall")
	}
	if s8 < 15 || s8 > 55 {
		t.Errorf("8-vCPU prep stall %.0f%%, want ~37 (HT does not eliminate it)", s8)
	}
}

func TestFig13LoaderComparison(t *testing.T) {
	r := run(t, "fig13")
	for _, m := range []string{"alexnet", "resnet18", "shufflenetv2"} {
		if r.Values["pytorch_over_dali_"+m] < 1.3 {
			t.Errorf("%s: PyTorch DL should be much slower than DALI", m)
		}
	}
	// GPU prep helps resnet18 but hurts resnet50 (Appendix B.2).
	if r.Values["dali_gpu_resnet18"] >= r.Values["dali_cpu_resnet18"] {
		t.Error("GPU prep should speed up prep-starved resnet18")
	}
	if r.Values["dali_gpu_resnet50"] < r.Values["dali_cpu_resnet50"] {
		t.Error("GPU prep should not beat CPU prep for resnet50")
	}
}

func TestFig14BatchSize(t *testing.T) {
	r := run(t, "fig14")
	// Compute time per epoch drops with batch size...
	if r.Values["compute_s_b512"] >= r.Values["compute_s_b64"] {
		t.Error("larger batches should reduce compute time")
	}
	// ...but epoch time is pinned by prep (within 15%).
	e64, e512 := r.Values["epoch_s_b64"], r.Values["epoch_s_b512"]
	if math.Abs(e64-e512)/e64 > 0.20 {
		t.Errorf("epoch time moved %.0f%% with batch size; prep should pin it",
			100*math.Abs(e64-e512)/e64)
	}
}

func TestFig16OptimalCache(t *testing.T) {
	r := run(t, "fig16")
	opt := r.Values["optimal_cache_pct"]
	if opt < 20 || opt > 90 {
		t.Errorf("optimal cache %.0f%%, want an interior optimum (~55)", opt)
	}
}

func TestFig17HPIN22k(t *testing.T) {
	r := run(t, "fig17")
	for _, m := range []string{"shufflenetv2", "alexnet", "resnet18"} {
		if sp := r.Values["speedup_"+m]; sp < 1.2 {
			t.Errorf("%s IN22k HP speedup %.2f, want > 1.2 (paper up to 2.5)", m, sp)
		}
	}
}

func TestFig18Scalability(t *testing.T) {
	r := run(t, "fig18")
	// DALI per-node disk I/O falls with node count (Table 18b).
	if !(r.Values["dali_disk_n1"] > r.Values["dali_disk_n2"] &&
		r.Values["dali_disk_n2"] > r.Values["dali_disk_n4"]) {
		t.Error("DALI per-node disk I/O should fall with more nodes")
	}
	// CoorDL speedup persists at every node count.
	for _, k := range []string{"speedup_n2", "speedup_n3", "speedup_n4"} {
		if r.Values[k] < 1.5 {
			t.Errorf("%s = %.1f, want > 1.5", k, r.Values[k])
		}
	}
	// CoorDL reads ~no disk once aggregate memory holds the dataset.
	if r.Values["coordl_disk_n2"] > r.Values["dali_disk_n2"]/4 {
		t.Error("CoorDL steady-state disk I/O should be near zero at n=2")
	}
}

func TestFig19CPUUtil(t *testing.T) {
	r := run(t, "fig19")
	if r.Values["coordl_avg_util"] <= r.Values["dali_avg_util"] {
		t.Error("CoorDL should keep prep threads busier than DALI")
	}
}

func TestFig20StagingMemory(t *testing.T) {
	r := run(t, "fig20")
	peak := r.Values["staging_peak_gib"]
	if peak <= 0 || peak > 5 {
		t.Errorf("staging peak %.2f GiB, want within the 5 GiB cap", peak)
	}
}

func TestFig21PyCoorDL(t *testing.T) {
	r := run(t, "fig21")
	// HDD speedups large (paper 2.1-3.3x); SSD marginal (prep-bound).
	if sp := r.Values["speedup_hdd_35"]; sp < 1.5 {
		t.Errorf("HDD speedup %.2f at 35%% cache, want ~2-3", sp)
	}
	if sp := r.Values["speedup_ssd_35"]; sp > 1.5 {
		t.Errorf("SSD speedup %.2f, want marginal (prep-bound with Pillow)", sp)
	}
	if r.Values["speedup_hdd_35"] <= r.Values["speedup_ssd_35"] {
		t.Error("HDD gains must exceed SSD gains")
	}
}

func TestFig22CoordPrepMicro(t *testing.T) {
	r := run(t, "fig22")
	if sp := r.Values["speedup_8jobs"]; sp < 1.3 {
		t.Errorf("8-job coordinated prep speedup %.2f, want ~1.8", sp)
	}
	if r.Values["speedup_8jobs"] < r.Values["speedup_4jobs"] {
		t.Error("more jobs -> fewer cores each -> bigger coordination win")
	}
}

func TestFig23EndToEnd(t *testing.T) {
	r := run(t, "fig23")
	// HDD: full Py-CoorDL >> coordinated alone > baseline.
	full := r.Values["speedup_hdd_pycoordlcoordminio"]
	coordOnly := r.Values["speedup_hdd_coordinatedprep"]
	if full < coordOnly {
		t.Errorf("full py-coordl (%.1f) should beat coordination alone (%.1f) on HDD", full, coordOnly)
	}
	if coordOnly < 1.2 {
		t.Errorf("coordination alone %.1f, want > 1.2 on HDD", coordOnly)
	}
	// SSD: MinIO adds little over coordination (cheap I/O).
	sFull := r.Values["speedup_ssd_pycoordlcoordminio"]
	if sFull < 1.1 {
		t.Errorf("SSD end-to-end speedup %.2f, want > 1.1", sFull)
	}
}

func TestAppD5HighCPUHPSearch(t *testing.T) {
	r := run(t, "appd5")
	// Appendix D.5: coordination still buys ~2x with 8 vCPUs/GPU.
	if sp := r.Values["speedup"]; sp < 1.4 {
		t.Errorf("high-CPU HP speedup %.2f, want ~2", sp)
	}
}

func TestLanguageModelsNoStalls(t *testing.T) {
	r := run(t, "sec3-lang")
	// §3.1: BERT-L and GNMT do not exhibit data stalls; the image
	// reference does.
	if s := r.Values["stall_bert-large"]; s > 2 {
		t.Errorf("bert-large stall %.2f%%, want ~0", s)
	}
	if s := r.Values["stall_gnmt"]; s > 5 {
		t.Errorf("gnmt stall %.2f%%, want ~0", s)
	}
	if s := r.Values["stall_resnet18"]; s < 20 {
		t.Errorf("resnet18 reference stall %.0f%%, want large", s)
	}
}

func TestAblations(t *testing.T) {
	r := run(t, "ablation-cache")
	if r.Values["hit_coordl"] <= r.Values["hit_dali-shuffle"] {
		t.Error("MinIO must out-hit the page cache")
	}
	r = run(t, "ablation-remote")
	if r.Values["remote_epoch_s"] >= r.Values["local_epoch_s"] {
		t.Error("remote fetch must beat local-storage fallback")
	}
	r = run(t, "ablation-staging")
	if r.Values["epoch_s_cap50"] > r.Values["epoch_s_cap5"]*1.05 {
		t.Error("more staging capacity must not materially slow jobs")
	}
	r = run(t, "ablation-prefetch")
	if r.Values["epoch_s_depth6"] > r.Values["epoch_s_depth1"]*1.02 {
		t.Error("deeper prefetch must not slow the pipeline")
	}
}
