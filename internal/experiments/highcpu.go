package experiments

import (
	"context"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

func init() {
	register(&Experiment{
		ID:           "appd5",
		Title:        "HP search on a high-CPU server (64 vCPUs, Appendix D.5)",
		Paper:        "coordinated prep still accelerates 8 HP jobs by ~2x with 8 vCPUs per GPU",
		DefaultScale: 0.002,
		Run:          runAppD5,
	})
}

// runAppD5 shows that more vCPUs do not remove the need for coordination:
// even at 8 vCPUs/GPU (hyperthreads past 4 physical cores add only ~30%),
// eight uncoordinated ResNet18 jobs redundantly pre-process the dataset
// eight times, while coordinated prep does one sweep.
func runAppD5(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	base := trainer.Config{
		Model: m, Dataset: d, Spec: cluster.HighCPUV100(),
		FetchMode:     trainer.FullyCached, // fully cached: isolates prep (D.5)
		ThreadsPerGPU: 8, Batch: 128,
		Epochs: o.Epochs, Seed: o.Seed,
	}
	indep, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
		Base: base, NumJobs: 8, GPUsPerJob: 1,
	})
	if err != nil {
		return nil, err
	}
	coord, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
		Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
	})
	if err != nil {
		return nil, err
	}
	sp := indep.Jobs[0].EpochTime / coord.Jobs[0].EpochTime
	r := &Report{Table: &stats.Table{
		Title:   "8 HP jobs, 64-vCPU server, dataset fully cached",
		Columns: []string{"variant", "per-job epoch s", "per-job samp/s"},
	}}
	r.Table.AddRow("independent", indep.Jobs[0].EpochTime, indep.Jobs[0].SamplesPerSec)
	r.Table.AddRow("coordinated", coord.Jobs[0].EpochTime, coord.Jobs[0].SamplesPerSec)
	r.set("speedup", sp)
	r.Notes = "hyperthreads past the physical cores add ~30% (Appendix B.1); coordination removes the 8x redundancy outright"
	return r, nil
}
