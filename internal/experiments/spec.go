// Declarative scenario specs: a sweep-shaped experiment — base job, named
// parameter axes, derived table columns — described as data instead of code.
// Specs JSON-(un)marshal losslessly, so the same machinery runs both the
// registry's sweep-shaped figures (defined as Spec literals below their
// registrations) and user-authored scenario files (`runsuite -spec f.json`)
// that exist nowhere in compiled code.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

// JobSpec is the JSON-friendly description of one training job: every field
// is a name or a plain number, resolved against the model/dataset/SKU
// catalogs at run time. The zero value of each field means "use the
// default" — the same defaults the trainer applies.
type JobSpec struct {
	// Model is required (e.g. "resnet18"); Dataset defaults to the model's
	// Table 1 dataset; Server to "config-ssd-v100".
	Model   string `json:"model,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Server  string `json:"server,omitempty"`
	// Loader: "dali-shuffle" (default), "dali-seq", "pytorch-dl", "coordl".
	Loader string `json:"loader,omitempty"`

	Servers int `json:"servers,omitempty"`
	GPUs    int `json:"gpus,omitempty"`
	Batch   int `json:"batch,omitempty"`
	Epochs  int `json:"epochs,omitempty"`
	// ThreadsPerGPU is the prep-thread count per GPU (0 = fair share).
	ThreadsPerGPU int `json:"threads_per_gpu,omitempty"`
	PrefetchDepth int `json:"prefetch_depth,omitempty"`

	// Framework: "dali" (default) or "pytorch".
	Framework string `json:"framework,omitempty"`
	// GPUPrep: "auto" (default), "off", "on".
	GPUPrep string `json:"gpu_prep,omitempty"`
	// FetchMode: "normal" (default), "synthetic", "fully-cached".
	FetchMode string `json:"fetch_mode,omitempty"`
	// Backend: "analytic" (default) or "concurrent".
	Backend string `json:"backend,omitempty"`

	// CacheFraction sizes the per-server cache as a fraction of the scaled
	// dataset; when zero, CacheBudgetGiB (default 400, the paper's budget)
	// is applied as a fraction of the unscaled dataset — exactly the
	// registry experiments' cacheFor rule.
	CacheFraction  float64 `json:"cache_fraction,omitempty"`
	CacheBudgetGiB float64 `json:"cache_budget_gib,omitempty"`

	// Scale shrinks the dataset (0 = the caller's Options scale; 1 = paper
	// size). Seed seeds all randomness (0 = the caller's Options seed).
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`

	// DisableRemoteFetch turns off partitioned caching's remote path.
	DisableRemoteFetch bool `json:"disable_remote_fetch,omitempty"`
}

// overlay returns s with every non-zero field of patch applied on top.
func (s JobSpec) overlay(patch JobSpec) JobSpec {
	if patch.Model != "" {
		s.Model = patch.Model
	}
	if patch.Dataset != "" {
		s.Dataset = patch.Dataset
	}
	if patch.Server != "" {
		s.Server = patch.Server
	}
	if patch.Loader != "" {
		s.Loader = patch.Loader
	}
	if patch.Servers != 0 {
		s.Servers = patch.Servers
	}
	if patch.GPUs != 0 {
		s.GPUs = patch.GPUs
	}
	if patch.Batch != 0 {
		s.Batch = patch.Batch
	}
	if patch.Epochs != 0 {
		s.Epochs = patch.Epochs
	}
	if patch.ThreadsPerGPU != 0 {
		s.ThreadsPerGPU = patch.ThreadsPerGPU
	}
	if patch.PrefetchDepth != 0 {
		s.PrefetchDepth = patch.PrefetchDepth
	}
	if patch.Framework != "" {
		s.Framework = patch.Framework
	}
	if patch.GPUPrep != "" {
		s.GPUPrep = patch.GPUPrep
	}
	if patch.FetchMode != "" {
		s.FetchMode = patch.FetchMode
	}
	if patch.Backend != "" {
		s.Backend = patch.Backend
	}
	if patch.CacheFraction != 0 {
		s.CacheFraction = patch.CacheFraction
	}
	if patch.CacheBudgetGiB != 0 {
		s.CacheBudgetGiB = patch.CacheBudgetGiB
	}
	if patch.Scale != 0 {
		s.Scale = patch.Scale
	}
	if patch.Seed != 0 {
		s.Seed = patch.Seed
	}
	if patch.DisableRemoteFetch {
		s.DisableRemoteFetch = true
	}
	return s
}

// serverSpec resolves a server name; "" selects the paper's default SKU.
func serverSpec(name string) (cluster.ServerSpec, error) {
	switch name {
	case "", "config-ssd-v100":
		return cluster.ConfigSSDV100(), nil
	case "config-hdd-1080ti":
		return cluster.ConfigHDD1080Ti(), nil
	case "highcpu-v100":
		return cluster.HighCPUV100(), nil
	}
	return cluster.ServerSpec{}, fmt.Errorf("spec: unknown server %q", name)
}

func loaderKind(name string) (loader.Kind, error) {
	switch name {
	case "", "dali-shuffle":
		return loader.DALIShuffle, nil
	case "dali-seq":
		return loader.DALISeq, nil
	case "pytorch-dl":
		return loader.PyTorchDL, nil
	case "coordl":
		return loader.CoorDL, nil
	}
	return 0, fmt.Errorf("spec: unknown loader %q", name)
}

// build resolves the JobSpec into a runnable trainer.Config. o supplies the
// scale/epochs/seed defaults for fields the spec leaves zero.
func (s JobSpec) build(o Options) (trainer.Config, error) {
	if s.Model == "" {
		return trainer.Config{}, fmt.Errorf("spec: job needs a model")
	}
	m, err := gpu.ByName(s.Model)
	if err != nil {
		return trainer.Config{}, fmt.Errorf("spec: %w", err)
	}
	dsName := s.Dataset
	if dsName == "" {
		dsName = m.DefaultDataset
	}
	full, err := dataset.ByName(dsName)
	if err != nil {
		return trainer.Config{}, fmt.Errorf("spec: %w", err)
	}
	spec, err := serverSpec(s.Server)
	if err != nil {
		return trainer.Config{}, err
	}
	kind, err := loaderKind(s.Loader)
	if err != nil {
		return trainer.Config{}, err
	}
	scale := s.Scale
	if scale == 0 {
		scale = o.Scale
	}
	if scale == 0 {
		// Registry runs always arrive with the experiment's default scale
		// filled in; only a user spec can get here. Defaulting to 1 would
		// silently launch a paper-size (hours-long) simulation from a
		// one-line omission, so demand an explicit choice.
		return trainer.Config{}, fmt.Errorf(
			"spec: no dataset scale set; add \"scale\" to the spec's base (1 = paper size, expect long runtimes) or pass -scale")
	}
	d := full.Scale(scale)

	cfg := trainer.Config{
		Model: m, Dataset: d, Spec: spec,
		NumServers: s.Servers, GPUsPerServer: s.GPUs,
		Batch: s.Batch, ThreadsPerGPU: s.ThreadsPerGPU,
		PrefetchDepth: s.PrefetchDepth, Loader: kind,
		DisableRemoteFetch: s.DisableRemoteFetch,
	}
	switch s.Framework {
	case "", "dali":
		cfg.Framework = prep.DALI
	case "pytorch":
		cfg.Framework = prep.PyTorchNative
	default:
		return trainer.Config{}, fmt.Errorf("spec: unknown framework %q", s.Framework)
	}
	switch s.GPUPrep {
	case "", "auto":
		cfg.GPUPrep = trainer.GPUPrepAuto
	case "off":
		cfg.GPUPrep = trainer.GPUPrepOff
	case "on":
		cfg.GPUPrep = trainer.GPUPrepOn
	default:
		return trainer.Config{}, fmt.Errorf("spec: unknown gpu_prep %q", s.GPUPrep)
	}
	switch s.FetchMode {
	case "", "normal":
		cfg.FetchMode = trainer.Normal
	case "synthetic":
		cfg.FetchMode = trainer.Synthetic
	case "fully-cached":
		cfg.FetchMode = trainer.FullyCached
	default:
		return trainer.Config{}, fmt.Errorf("spec: unknown fetch_mode %q", s.FetchMode)
	}
	switch s.Backend {
	case "", "analytic":
		cfg.Backend = trainer.BackendAnalytic
	case "concurrent":
		cfg.Backend = trainer.BackendConcurrent
	default:
		return trainer.Config{}, fmt.Errorf("spec: unknown backend %q", s.Backend)
	}
	if s.CacheFraction > 0 {
		cfg.CacheBytes = s.CacheFraction * d.TotalBytes
	} else {
		budget := s.CacheBudgetGiB
		if budget == 0 {
			budget = 400
		}
		cfg.CacheBytes = cacheFor(d, full, budget*stats.GiB)
	}
	cfg.Epochs = s.Epochs
	if cfg.Epochs == 0 {
		cfg.Epochs = o.Epochs
	}
	cfg.Seed = s.Seed
	if cfg.Seed == 0 {
		cfg.Seed = o.Seed
	}
	return cfg, nil
}

// Build resolves the JobSpec into a runnable trainer.Config, exactly as
// RunSpec resolves each sweep cell. o supplies the scale/epochs/seed
// defaults for fields the spec leaves zero (zero Epochs and Seed in o fall
// back to the package defaults, 3 and 1). Exported for embedders that
// accept single-job specs — notably the HTTP job service, which validates
// the resolved config at submission time.
func (s JobSpec) Build(o Options) (trainer.Config, error) {
	return s.build(o.withDefaults(o.Scale))
}

// names resolves the display names the row-label columns derive from.
func (s JobSpec) names() (model, ds, server string) {
	model = s.Model
	ds = s.Dataset
	if ds == "" && model != "" {
		if m, err := gpu.ByName(model); err == nil {
			ds = m.DefaultDataset
		}
	}
	server = s.Server
	if server == "" {
		server = "config-ssd-v100"
	}
	return
}

// Case is one named point of a Cases axis: a sparse JobSpec overlay plus
// optional display cells for the table's row-label columns.
type Case struct {
	// Label names the case in Values-key templates ({row}); defaults to
	// the first cell.
	Label string `json:"label,omitempty"`
	// Cells fill the RowHeader columns; when omitted they derive from the
	// resolved job (header "model" -> model name, "dataset", "server").
	Cells []string `json:"cells,omitempty"`
	// Set is the overlay applied to the base job.
	Set JobSpec `json:"set"`
}

// Axis is one swept dimension: either a single parameter with a value list
// (Param/Values) or a list of named multi-field Cases.
type Axis struct {
	// Param is a JobSpec JSON field name ("loader", "servers",
	// "cache_fraction", ...); Values are its JSON values.
	Param  string            `json:"param,omitempty"`
	Values []json.RawMessage `json:"values,omitempty"`
	// Cases is the multi-field alternative to Param/Values.
	Cases []Case `json:"cases,omitempty"`
}

// axisCase is one resolved point of an axis.
type axisCase struct {
	label string
	cells []interface{} // nil => derive from RowHeader
	set   JobSpec
}

// resolve expands the axis into its cases.
func (a *Axis) resolve() ([]axisCase, error) {
	switch {
	case a.Param != "" && len(a.Values) > 0:
		out := make([]axisCase, 0, len(a.Values))
		for _, raw := range a.Values {
			var set JobSpec
			// Marshal the patch instead of concatenating strings: a param
			// name with JSON metacharacters becomes one (unknown) quoted
			// key and fails cleanly, rather than injecting extra fields.
			patch, err := json.Marshal(map[string]json.RawMessage{a.Param: raw})
			if err != nil {
				return nil, fmt.Errorf("spec: axis %q value %s: %w", a.Param, raw, err)
			}
			dec := json.NewDecoder(bytes.NewReader(patch))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&set); err != nil {
				return nil, fmt.Errorf("spec: axis %q value %s: %w", a.Param, raw, err)
			}
			// Overlay treats zero-valued fields as "not set", so an axis
			// value of 0/""/false would silently run the default instead
			// of the swept value and the table would lie. Reject it.
			if set == (JobSpec{}) {
				return nil, fmt.Errorf("spec: axis %q value %s is the field's zero value, which would silently mean \"use the default\"; sweep only non-zero values", a.Param, raw)
			}
			var v interface{}
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("spec: axis %q value %s: %w", a.Param, raw, err)
			}
			out = append(out, axisCase{label: cellString(v), cells: []interface{}{v}, set: set})
		}
		return out, nil
	case len(a.Cases) > 0:
		out := make([]axisCase, 0, len(a.Cases))
		for _, c := range a.Cases {
			ac := axisCase{label: c.Label, set: c.Set}
			for _, cell := range c.Cells {
				ac.cells = append(ac.cells, cell)
			}
			if ac.label == "" && len(c.Cells) > 0 {
				ac.label = c.Cells[0]
			}
			out = append(out, ac)
		}
		return out, nil
	}
	return nil, fmt.Errorf("spec: axis needs either param+values or cases")
}

// cellString renders an axis value for labels and {row} substitution.
func cellString(v interface{}) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return stats.FormatFloat(x)
	}
	return fmt.Sprintf("%v", v)
}

// Column derives one table column from the row's sweep results.
type Column struct {
	// Label is the column header.
	Label string `json:"label"`
	// Metric names the measured quantity: "epoch_s", "samples_per_s",
	// "stall_pct", "hit_pct", "miss_pct", "disk_gib_per_epoch",
	// "disk_gib_per_node", "net_gib_per_epoch", "total_disk_gib",
	// "total_time_s".
	Metric string `json:"metric"`
	// Of selects the sweep case the metric reads (empty when the spec has
	// no sweep axis).
	Of string `json:"of,omitempty"`
	// Over, when set, makes the column a ratio: Metric[Of] / Metric[Over]
	// (speedups).
	Over string `json:"over,omitempty"`
	// Key, when set, also records the cell under this Values key; "{row}"
	// is replaced by the row label.
	Key string `json:"key,omitempty"`
}

// Spec is a declarative sweep: a base job, a row axis, an optional inner
// sweep axis, and the table columns derived from each row's runs.
type Spec struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// RowHeader names the leading row-label column(s).
	RowHeader []string `json:"row_header"`
	Base      JobSpec  `json:"base"`
	Rows      Axis     `json:"rows"`
	Sweep     *Axis    `json:"sweep,omitempty"`
	Columns   []Column `json:"columns"`
	Notes     string   `json:"notes,omitempty"`
}

// LoadSpec parses a JSON scenario spec, rejecting unknown fields so typos
// in user-authored files fail loudly.
func LoadSpec(data []byte) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := sp.check(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the spec's shape (axes and column references) without
// running it — the same check LoadSpec applies after decoding, exported for
// callers that receive an already-decoded Spec (the HTTP job service
// validates inline spec submissions with it before queueing).
func (sp *Spec) Validate() error { return sp.check() }

// check validates the spec's shape (axes and column references).
func (sp *Spec) check() error {
	if sp.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	if len(sp.Columns) == 0 {
		return fmt.Errorf("spec %s: at least one column is required", sp.Name)
	}
	rows, err := sp.Rows.resolve()
	if err != nil {
		return fmt.Errorf("spec %s: rows: %w", sp.Name, err)
	}
	// Row label cells must line up with row_header: too many cells panics
	// table rendering, too few silently shifts metric values under the
	// wrong headers. Cases that omit explicit cells derive them from the
	// resolved job, which only works for the recognized header names.
	rowLabels := map[string]bool{}
	for i, row := range rows {
		if row.cells == nil {
			for _, h := range sp.RowHeader {
				switch h {
				case "model", "dataset", "server":
				default:
					return fmt.Errorf("spec %s: rows case %d has no cells and row_header %q is not derivable (use \"model\"/\"dataset\"/\"server\", or give the case explicit cells)",
						sp.Name, i, h)
				}
			}
		} else if len(row.cells) != len(sp.RowHeader) {
			return fmt.Errorf("spec %s: rows case %d has %d cell(s) for %d row_header column(s)",
				sp.Name, i, len(row.cells), len(sp.RowHeader))
		}
		// Cells-less cases resolve their label at run time (from the
		// derived first cell); RunSpec re-checks uniqueness after that.
		if row.label != "" {
			if rowLabels[row.label] {
				return fmt.Errorf("spec %s: duplicate rows label %q (labels key the {row} substitution and must be unique)",
					sp.Name, row.label)
			}
			rowLabels[row.label] = true
		}
	}
	sweepLabels := map[string]bool{"": sp.Sweep == nil}
	if sp.Sweep != nil {
		cases, err := sp.Sweep.resolve()
		if err != nil {
			return fmt.Errorf("spec %s: sweep: %w", sp.Name, err)
		}
		for _, c := range cases {
			if sweepLabels[c.label] {
				return fmt.Errorf("spec %s: duplicate sweep label %q (columns reference sweep cases by label, so labels must be unique)",
					sp.Name, c.label)
			}
			sweepLabels[c.label] = true
		}
	}
	for _, col := range sp.Columns {
		if !validMetric(col.Metric) {
			return fmt.Errorf("spec %s: column %q: unknown metric %q", sp.Name, col.Label, col.Metric)
		}
		if !sweepLabels[col.Of] {
			return fmt.Errorf("spec %s: column %q: %q is not a sweep case", sp.Name, col.Label, col.Of)
		}
		if col.Over != "" && !sweepLabels[col.Over] {
			return fmt.Errorf("spec %s: column %q: %q is not a sweep case", sp.Name, col.Label, col.Over)
		}
	}
	return nil
}

func validMetric(name string) bool {
	switch name {
	case "epoch_s", "samples_per_s", "stall_pct", "hit_pct", "miss_pct",
		"disk_gib_per_epoch", "disk_gib_per_node", "net_gib_per_epoch",
		"total_disk_gib", "total_time_s":
		return true
	}
	return false
}

func metricValue(name string, res *trainer.Result, servers int) float64 {
	if servers < 1 {
		servers = 1
	}
	switch name {
	case "epoch_s":
		return res.EpochTime
	case "samples_per_s":
		return res.Throughput
	case "stall_pct":
		return pct(res.StallFraction)
	case "hit_pct":
		return pct(res.HitRate)
	case "miss_pct":
		return pct(1 - res.HitRate)
	case "disk_gib_per_epoch":
		return gib(res.DiskPerEpoch)
	case "disk_gib_per_node":
		return gib(res.DiskPerEpoch / float64(servers))
	case "net_gib_per_epoch":
		return gib(res.NetPerEpoch)
	case "total_disk_gib":
		return gib(res.TotalDiskBytes)
	case "total_time_s":
		return res.TotalTime
	}
	return 0
}

// CaseProgress identifies one cell of a spec's row x sweep grid as it is
// about to run: Row and Case are the axis labels ("" Case when the spec has
// no sweep axis), Index counts cells from 0 in execution order, and Total
// is the grid size. The HTTP job service forwards these as stream
// annotations so clients watching a long sweep see which cell is running.
type CaseProgress struct {
	Row   string
	Case  string
	Index int
	Total int
}

// RunSpec executes a declarative spec under ctx: the cartesian product of
// the row axis and the sweep axis, one simulation per cell, assembled into a
// Report exactly as a hand-written experiment would build it. obs observers
// are attached to every underlying training run (progress streaming).
func RunSpec(ctx context.Context, sp *Spec, o Options, obs ...trainer.Observer) (*Report, error) {
	return RunSpecProgress(ctx, sp, o, nil, obs...)
}

// RunSpecProgress is RunSpec with a per-case hook: progress (when non-nil)
// is called synchronously just before each cell's simulation starts. The
// report is identical to RunSpec's — the hook only observes.
//
// The implementation is literally the grid split: enumerate the cells, run
// each in order, assemble — the same two halves a distributed executor
// (EnumerateCases/AssembleReport) uses, which is what makes a scattered
// sweep's gathered report byte-identical to this single-node loop.
// Two memoization layers ride on top without changing the report: grids
// with repeated axis values run each unique case once and copy the result
// into every duplicate cell (keys from CaseKey, so "identical" means
// identical *resolved* config), and with Options.Memo set, unique cases
// are looked up in — and their fresh results stored into — the
// content-addressed result cache before simulating.
func RunSpecProgress(ctx context.Context, sp *Spec, o Options, progress func(CaseProgress), obs ...trainer.Observer) (*Report, error) {
	g, err := newSpecGrid(sp, o)
	if err != nil {
		return nil, err
	}
	salt := ""
	if g.o.Memo != nil {
		salt = g.o.Memo.Salt()
	}
	seen := map[string]int{}
	results := make([]*trainer.Result, g.total())
	for _, c := range g.cases() {
		if progress != nil {
			progress(CaseProgress{Row: c.Row, Case: c.Case, Index: c.Index, Total: c.Total})
		}
		caseSpan := g.o.Trace.StartThread("case")
		caseSpan.SetAttr("row", c.Row)
		if c.Case != "" {
			caseSpan.SetAttr("case", c.Case)
		}
		key, kerr := CaseKey(c.Job, g.o, salt)
		if kerr == nil {
			if first, ok := seen[key.Hash]; ok {
				results[c.Index] = results[first]
				caseSpan.Event("case_dedup")
				caseSpan.End()
				continue
			}
		}
		run := func() (*trainer.Result, error) {
			cfg, err := c.Job.build(g.o)
			if err != nil {
				return nil, err
			}
			sim := caseSpan.Start("simulate")
			res, err := trainer.RunContext(ctx, cfg, obs...)
			if err == nil {
				TraceEpochs(sim, cfg, res)
			}
			sim.End()
			return res, err
		}
		var res *trainer.Result
		if g.o.Memo != nil && kerr == nil {
			var hit bool
			res, hit, err = g.o.Memo.Do(ctx, key, run)
			caseSpan.Event("memo_lookup").SetAttr("hit", strconv.FormatBool(hit))
		} else {
			// A key derivation error is a resolution error; run() surfaces
			// the same failure with the cell's own context attached.
			res, err = run()
		}
		if err != nil {
			caseSpan.SetAttr("error", err.Error())
			caseSpan.End()
			return nil, err
		}
		caseSpan.End()
		if kerr == nil {
			seen[key.Hash] = c.Index
		}
		results[c.Index] = res
	}
	return g.assemble(results)
}

func columnLabels(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Label
	}
	return out
}

// deriveCells fills the row-label columns from the resolved job when the
// case declares no explicit cells. Spec.check has already rejected header
// names this cannot derive.
func deriveCells(js JobSpec, headers []string) []interface{} {
	model, ds, server := js.names()
	out := make([]interface{}, 0, len(headers))
	for _, h := range headers {
		switch h {
		case "dataset":
			out = append(out, ds)
		case "server":
			out = append(out, server)
		default: // "model" (check() rejects anything else)
			out = append(out, model)
		}
	}
	return out
}

// --- registry specs ---

// specRegistry holds the declarative form of every registry experiment that
// is expressible as a Spec; their Run functions execute these very values,
// so a JSON round-trip of the Spec reproduces the experiment byte for byte
// (the speccheck CI gate).
var specRegistry = map[string]*Spec{}

func registerSpec(sp *Spec) *Spec {
	if _, dup := specRegistry[sp.Name]; dup {
		panic("experiments: duplicate spec " + sp.Name)
	}
	specRegistry[sp.Name] = sp
	return sp
}

// Specs returns the declarative specs of the registry's sweep-shaped
// experiments, keyed by experiment ID, in ID order.
func Specs() []*Spec {
	ids := make([]string, 0, len(specRegistry))
	for id := range specRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Spec, 0, len(ids))
	for _, id := range ids {
		out = append(out, specRegistry[id])
	}
	return out
}

// SpecFor returns the declarative form of a registry experiment, or nil if
// that experiment is not expressible as a Spec.
func SpecFor(id string) *Spec { return specRegistry[id] }

// rawStrings builds a string-valued axis value list.
func rawStrings(vs ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// rawInts builds an integer-valued axis value list.
func rawInts(vs ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}
