// Per-case result capture: every cell of a spec's row x sweep grid is
// recorded as a CaseResult — the resolved axis values plus the full
// trainer.Result — so finished sweeps can be interrogated by internal/query
// instead of re-run. The capture also round-trips through the suite JSON
// report (opt-in "cases" arrays) so `runsuite -report saved.json -query ...`
// works offline.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"datastall/internal/trainer"
)

// CaseResult is one finished training run with enough resolved identity to
// be queried: the grid coordinates (Spec/Row/Case, empty for standalone
// jobs), the resolved job parameters, and the run's full result including
// per-epoch stats.
type CaseResult struct {
	// Spec is the spec name or experiment ID; Row and Case are the axis
	// labels ("" Case when the spec has no sweep axis).
	Spec string
	Row  string
	Case string

	// Resolved job identity (defaults filled in).
	Model   string
	Dataset string
	Server  string
	Loader  string
	Servers int
	GPUs    int
	Batch   int
	Epochs  int
	// CacheBytes is the per-server cache capacity the run used.
	CacheBytes float64
	Seed       int64

	// Result is the run's output; Result.Epochs carries per-epoch stats.
	Result *trainer.Result
}

// newCaseResult captures one grid cell. cfg is the pre-default config the
// cell ran with; the resolved form (defaults filled) supplies the numeric
// identity columns.
func newCaseResult(specName, row, caseLabel string, cfg trainer.Config, res *trainer.Result) *CaseResult {
	rc := trainer.FromConfig(cfg).Config()
	return &CaseResult{
		Spec: specName, Row: row, Case: caseLabel,
		Model:   rc.Model.Name,
		Dataset: rc.Dataset.Name,
		Server:  rc.Spec.Name,
		Loader:  rc.Loader.String(),
		Servers: rc.NumServers, GPUs: rc.GPUsPerServer,
		Batch: rc.Batch, Epochs: rc.Epochs,
		CacheBytes: rc.CacheBytes, Seed: rc.Seed,
		Result: res,
	}
}

// CaseFromConfig captures a standalone job (no grid coordinates) — the HTTP
// job service uses it so single-job submissions are queryable alongside
// sweeps. name labels the run (the job ID serves well).
func CaseFromConfig(name string, cfg trainer.Config, res *trainer.Result) *CaseResult {
	return newCaseResult(name, "", "", cfg, res)
}

// MarshalJSON renders the case in its wire form — the same shape the suite
// report's "cases" arrays carry — so embedders (the job service's persist
// snapshots) round-trip captures without reaching into this package.
func (c *CaseResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(toCaseJSON(c))
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *CaseResult) UnmarshalJSON(data []byte) error {
	var cj caseResultJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	*c = *fromCaseJSON(&cj)
	return nil
}

// caseResultJSON is the wire form of a CaseResult: identity, the
// steady-state aggregates, and per-epoch stats. It round-trips losslessly
// enough for querying (traces are dropped).
type caseResultJSON struct {
	Spec       string  `json:"spec,omitempty"`
	Row        string  `json:"row,omitempty"`
	Case       string  `json:"case,omitempty"`
	Model      string  `json:"model"`
	Dataset    string  `json:"dataset"`
	Server     string  `json:"server"`
	Loader     string  `json:"loader"`
	Servers    int     `json:"servers"`
	GPUs       int     `json:"gpus"`
	Batch      int     `json:"batch"`
	Epochs     int     `json:"epochs"`
	CacheBytes float64 `json:"cache_bytes"`
	Seed       int64   `json:"seed"`

	EpochTime      float64 `json:"epoch_time_s"`
	Throughput     float64 `json:"samples_per_s"`
	StallFraction  float64 `json:"stall_fraction"`
	DiskPerEpoch   float64 `json:"disk_bytes_per_epoch"`
	NetPerEpoch    float64 `json:"net_bytes_per_epoch"`
	HitRate        float64 `json:"hit_rate"`
	TotalDiskBytes float64 `json:"total_disk_bytes"`
	TotalNetBytes  float64 `json:"total_net_bytes"`
	TotalTime      float64 `json:"total_time_s"`

	EpochStats []epochStatsJSON `json:"epoch_stats"`
}

type epochStatsJSON struct {
	Duration       float64 `json:"duration_s"`
	ComputeTime    float64 `json:"compute_s"`
	StallTime      float64 `json:"stall_s"`
	DiskBytes      float64 `json:"disk_bytes"`
	NetBytes       float64 `json:"net_bytes"`
	MemBytes       float64 `json:"mem_bytes"`
	DiskReads      int     `json:"disk_reads"`
	Hits           int     `json:"hits"`
	Misses         int     `json:"misses"`
	RemoteHits     int     `json:"remote_hits"`
	Samples        int     `json:"samples"`
	CacheUsedBytes float64 `json:"cache_used_bytes"`
}

func toCaseJSON(c *CaseResult) *caseResultJSON {
	r := c.Result
	out := &caseResultJSON{
		Spec: c.Spec, Row: c.Row, Case: c.Case,
		Model: c.Model, Dataset: c.Dataset, Server: c.Server, Loader: c.Loader,
		Servers: c.Servers, GPUs: c.GPUs, Batch: c.Batch, Epochs: c.Epochs,
		CacheBytes: c.CacheBytes, Seed: c.Seed,
		EpochTime: r.EpochTime, Throughput: r.Throughput,
		StallFraction: r.StallFraction,
		DiskPerEpoch:  r.DiskPerEpoch, NetPerEpoch: r.NetPerEpoch,
		HitRate:        r.HitRate,
		TotalDiskBytes: r.TotalDiskBytes, TotalNetBytes: r.TotalNetBytes,
		TotalTime: r.TotalTime,
	}
	for _, e := range r.Epochs {
		out.EpochStats = append(out.EpochStats, epochStatsJSON{
			Duration: e.Duration, ComputeTime: e.ComputeTime, StallTime: e.StallTime,
			DiskBytes: e.DiskBytes, NetBytes: e.NetBytes, MemBytes: e.MemBytes,
			DiskReads: e.DiskReads, Hits: e.Hits, Misses: e.Misses,
			RemoteHits: e.RemoteHits, Samples: e.Samples,
			CacheUsedBytes: e.CacheUsedBytes,
		})
	}
	return out
}

func fromCaseJSON(cj *caseResultJSON) *CaseResult {
	res := &trainer.Result{
		EpochTime: cj.EpochTime, Throughput: cj.Throughput,
		StallFraction: cj.StallFraction,
		DiskPerEpoch:  cj.DiskPerEpoch, NetPerEpoch: cj.NetPerEpoch,
		HitRate: cj.HitRate, SamplesPerSec: cj.Throughput,
		TotalDiskBytes: cj.TotalDiskBytes, TotalNetBytes: cj.TotalNetBytes,
		TotalTime: cj.TotalTime,
	}
	for _, e := range cj.EpochStats {
		res.Epochs = append(res.Epochs, trainer.EpochStats{
			Duration: e.Duration, ComputeTime: e.ComputeTime, StallTime: e.StallTime,
			DiskBytes: e.DiskBytes, NetBytes: e.NetBytes, MemBytes: e.MemBytes,
			DiskReads: e.DiskReads, Hits: e.Hits, Misses: e.Misses,
			RemoteHits: e.RemoteHits, Samples: e.Samples,
			CacheUsedBytes: e.CacheUsedBytes,
		})
	}
	return &CaseResult{
		Spec: cj.Spec, Row: cj.Row, Case: cj.Case,
		Model: cj.Model, Dataset: cj.Dataset, Server: cj.Server, Loader: cj.Loader,
		Servers: cj.Servers, GPUs: cj.GPUs, Batch: cj.Batch, Epochs: cj.Epochs,
		CacheBytes: cj.CacheBytes, Seed: cj.Seed,
		Result: res,
	}
}

// SuiteCases flattens every successful experiment's captured cases, in
// experiment order — the in-memory feed for the query store after a suite
// run. Experiments that predate case capture (hand-written, non-sweep)
// contribute nothing.
func (r *SuiteResult) SuiteCases() []*CaseResult {
	var out []*CaseResult
	for _, er := range r.Results {
		if er.Report != nil {
			out = append(out, er.Report.Cases...)
		}
	}
	return out
}

// LoadSuiteCases extracts the captured cases from a saved suite JSON report
// (one written with cases included, `runsuite -json out.json -cases`). It
// errors when the report carries no cases — the caller forgot -cases, or
// none of the selected experiments capture per-case results (only runs that
// go through RunSpec do) — so empty query results aren't silently conflated
// with empty reports.
func LoadSuiteCases(data []byte) ([]*CaseResult, error) {
	var rep struct {
		Experiments []struct {
			ID    string            `json:"id"`
			Cases []*caseResultJSON `json:"cases"`
		} `json:"experiments"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("cases: not a suite report: %w", err)
	}
	var out []*CaseResult
	for _, e := range rep.Experiments {
		for _, cj := range e.Cases {
			out = append(out, fromCaseJSON(cj))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cases: the report contains no per-case results; write it with `runsuite -json -cases`, and note only spec-backed experiments (fig5, fig9a, fig18, -spec files) capture cases")
	}
	return out, nil
}
