package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// TestSpecRoundTrip is the speccheck gate: every registry experiment that is
// expressible as a Spec must survive JSON marshal -> unmarshal -> run with
// byte-identical output (table text, values, notes) to the direct registry
// run. This is what makes `runsuite -spec` trustworthy: a spec on disk is
// the experiment, not an approximation of it.
func TestSpecRoundTrip(t *testing.T) {
	specs := Specs()
	if len(specs) == 0 {
		t.Fatal("no registry experiments are registered as Specs")
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			direct, err := Run(context.Background(), sp.Name, Options{})
			if err != nil {
				t.Fatal(err)
			}

			data, err := json.MarshalIndent(sp, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSpec(data)
			if err != nil {
				t.Fatalf("round-tripped spec does not load: %v\n%s", err, data)
			}
			e, err := ByID(sp.Name)
			if err != nil {
				t.Fatal(err)
			}
			viaJSON, err := RunSpec(context.Background(), loaded, Options{}.withDefaults(e.DefaultScale))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := viaJSON.Table.String(), direct.Table.String(); got != want {
				t.Fatalf("table drifted after JSON round-trip:\ngot:\n%s\nwant:\n%s", got, want)
			}
			if !reflect.DeepEqual(viaJSON.Values, direct.Values) {
				t.Fatalf("values drifted after JSON round-trip:\ngot:  %v\nwant: %v", viaJSON.Values, direct.Values)
			}
			if viaJSON.Notes != direct.Notes {
				t.Fatalf("notes drifted: %q vs %q", viaJSON.Notes, direct.Notes)
			}
		})
	}
}

// TestSpecExampleFile runs the committed example scenario — a sweep that
// exists nowhere in compiled code — end to end.
func TestSpecExampleFile(t *testing.T) {
	data, err := os.ReadFile("../../testdata/specs/cache-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := LoadSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if SpecFor(sp.Name) != nil {
		t.Fatalf("example spec %q collides with a registry experiment", sp.Name)
	}
	r, err := RunSpec(context.Background(), sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rows := len(r.Table.Rows); rows != 5 {
		t.Fatalf("cache sweep produced %d rows, want 5", rows)
	}
	// The sweep's physics: CoorDL must beat the page-cache baseline at
	// every cache size (speedup column > 1).
	for frac, sp := range r.Values {
		if sp <= 1 {
			t.Errorf("speedup at %s is %.3f, want > 1", frac, sp)
		}
	}
	if len(r.Values) != 5 {
		t.Fatalf("got %d speedup values, want 5: %v", len(r.Values), r.Values)
	}
}

// TestSpecDeterministic: the same spec twice gives byte-identical tables.
func TestSpecDeterministic(t *testing.T) {
	o := Options{}.withDefaults(0.01)
	a, err := RunSpec(context.Background(), fig5Spec, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(context.Background(), fig5Spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatal("spec runs are not deterministic")
	}
}

// TestLoadSpecRejectsGarbage: typos and structural mistakes fail loudly at
// load time, not as silent zero-valued sweeps at run time.
func TestLoadSpecRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","row_header":["m"],"base":{"modell":"resnet18"},
			"rows":{"param":"loader","values":["coordl"]},
			"columns":[{"label":"s","metric":"epoch_s","of":"coordl"}]}`,
		"no columns": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"loader","values":["coordl"]},"columns":[]}`,
		"empty axis": `{"name":"x","base":{"model":"resnet18"},"rows":{},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		"unknown metric": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"loader","values":["coordl"]},
			"columns":[{"label":"s","metric":"nope","of":"coordl"}]}`,
		"column references missing sweep case": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"cache_fraction","values":[0.5]},
			"sweep":{"param":"loader","values":["coordl"]},
			"columns":[{"label":"s","metric":"epoch_s","of":"dali-shuffle"}]}`,
		"no name": `{"base":{"model":"resnet18"},
			"rows":{"param":"loader","values":["coordl"]},
			"columns":[{"label":"s","metric":"epoch_s","of":"coordl"}]}`,
		// A zero axis value would be swallowed by overlay's zero-means-
		// default rule and the row would silently run the default config.
		"zero axis value": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"cache_fraction","values":[0,0.35]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		"false axis value": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"disable_remote_fetch","values":[false,true]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		// A param with JSON metacharacters must fail as one unknown key,
		// not inject extra fields into the overlay patch.
		"json-injecting param": `{"name":"x","base":{"model":"resnet18"},
			"rows":{"param":"loader\":\"coordl\",\"model","values":["alexnet"]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		// Cases without cells can only derive model/dataset/server headers.
		"underivable row header": `{"name":"x","base":{"model":"resnet18"},
			"row_header":["cache frac"],
			"rows":{"cases":[{"label":"a","set":{"cache_fraction":0.5}}]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		// Cell count must match row_header or table rendering breaks.
		"too many cells": `{"name":"x","base":{"model":"resnet18"},
			"row_header":["model"],
			"rows":{"cases":[{"cells":["a","b"],"set":{"cache_fraction":0.5}}]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
		// Duplicate labels silently overwrite each other's results.
		"duplicate sweep labels": `{"name":"x","base":{"model":"resnet18","scale":0.01},
			"rows":{"cases":[{"cells":["r"],"set":{"cache_fraction":0.5}}]},
			"row_header":["model"],
			"sweep":{"param":"loader","values":["coordl","coordl"]},
			"columns":[{"label":"s","metric":"epoch_s","of":"coordl"}]}`,
		"duplicate row labels": `{"name":"x","base":{"model":"resnet18","scale":0.01},
			"row_header":["model"],
			"rows":{"cases":[{"cells":["r"],"set":{"cache_fraction":0.5}},
				{"cells":["r"],"set":{"cache_fraction":0.8}}]},
			"columns":[{"label":"s","metric":"epoch_s"}]}`,
	}
	for name, src := range cases {
		if _, err := LoadSpec([]byte(src)); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}

// TestSpecUnknownNamesFailAtRun: resolvable-looking specs with unknown
// model/server/loader names error out of build, not panic.
func TestSpecUnknownNamesFailAtRun(t *testing.T) {
	for name, base := range map[string]JobSpec{
		"model":      {Model: "not-a-model"},
		"dataset":    {Model: "resnet18", Dataset: "not-a-dataset"},
		"server":     {Model: "resnet18", Server: "not-a-server"},
		"loader":     {Model: "resnet18", Loader: "not-a-loader"},
		"framework":  {Model: "resnet18", Framework: "not-a-framework"},
		"gpu_prep":   {Model: "resnet18", GPUPrep: "sideways"},
		"fetch_mode": {Model: "resnet18", FetchMode: "psychic"},
		"backend":    {Model: "resnet18", Backend: "quantum"},
		"no model":   {},
	} {
		sp := &Spec{
			Name: "bad-" + name, Base: base, RowHeader: []string{"model"},
			Rows:    Axis{Cases: []Case{{Label: "x", Set: JobSpec{}}}},
			Columns: []Column{{Label: "s", Metric: "epoch_s"}},
		}
		if _, err := RunSpec(context.Background(), sp, Options{Scale: 0.01}); err == nil {
			t.Errorf("%s: ran without error", name)
		}
	}
}

// TestSpecRequiresScale: a user spec with no scale anywhere (neither the
// spec's base nor the Options) refuses to run rather than silently
// launching a paper-size simulation.
func TestSpecRequiresScale(t *testing.T) {
	sp := &Spec{
		Name: "no-scale", Base: JobSpec{Model: "resnet18"},
		RowHeader: []string{"model"},
		Rows:      Axis{Cases: []Case{{Label: "x", Set: JobSpec{}}}},
		Columns:   []Column{{Label: "s", Metric: "epoch_s"}},
	}
	if _, err := RunSpec(context.Background(), sp, Options{}); err == nil {
		t.Fatal("scale-less spec ran without error")
	}
	// The same spec with a scale supplied either way runs fine.
	if _, err := RunSpec(context.Background(), sp, Options{Scale: 0.005}); err != nil {
		t.Fatalf("options scale rejected: %v", err)
	}
	sp.Base.Scale = 0.005
	if _, err := RunSpec(context.Background(), sp, Options{}); err != nil {
		t.Fatalf("base scale rejected: %v", err)
	}
}

// TestSpecJSONStable: marshalling a registry spec twice is byte-stable
// (guards against map-ordered fields sneaking into the schema).
func TestSpecJSONStable(t *testing.T) {
	for _, sp := range Specs() {
		a, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(sp)
		if !bytes.Equal(a, b) {
			t.Fatalf("spec %s marshals unstably", sp.Name)
		}
	}
}
