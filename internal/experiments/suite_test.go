package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datastall/internal/stats"
)

// fakeExp builds an ad-hoc experiment for orchestrator tests.
func fakeExp(id string, run func(context.Context, Options) (*Report, error)) *Experiment {
	return &Experiment{
		ID: id, Title: "fake " + id, Paper: "n/a", DefaultScale: 0.01, Run: run,
	}
}

func okExp(id string, v float64) *Experiment {
	return fakeExp(id, func(_ context.Context, o Options) (*Report, error) {
		r := &Report{Table: &stats.Table{}}
		r.set("v", v*float64(o.Seed))
		return r, nil
	})
}

func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	ids := []string{"fig2", "fig5", "table6"}
	run := func(parallel int) *SuiteResult {
		sel, err := SelectIDs(ids)
		if err != nil {
			t.Fatal(err)
		}
		s := &Suite{Experiments: sel, Options: Options{Seed: 7}, Parallel: parallel}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if res.OK != len(ids) {
			t.Fatalf("parallel=%d: %d ok, want %d", parallel, res.OK, len(ids))
		}
		return res
	}
	serial := run(1)
	fanned := run(8)

	sv, fv := serial.AggregateValues(), fanned.AggregateValues()
	if len(sv) == 0 || len(sv) != len(fv) {
		t.Fatalf("aggregate sizes differ: %d vs %d", len(sv), len(fv))
	}
	for k, v := range sv {
		if fv[k] != v {
			t.Errorf("%s: parallel=1 %v, parallel=8 %v", k, v, fv[k])
		}
	}

	sj, err := serial.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := fanned.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, fj) {
		t.Error("JSON reports differ between parallel=1 and parallel=8")
	}
	if serial.Markdown() != fanned.Markdown() {
		t.Error("markdown reports differ between parallel=1 and parallel=8")
	}
}

func TestSuiteErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	s := &Suite{
		Experiments: []*Experiment{
			okExp("a-ok", 1),
			fakeExp("b-err", func(context.Context, Options) (*Report, error) { return nil, boom }),
			fakeExp("c-panic", func(context.Context, Options) (*Report, error) { panic("kaput") }),
			okExp("d-ok", 2),
		},
		Options:  Options{Seed: 3},
		Parallel: 4,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("a failing experiment must not fail the suite: %v", err)
	}
	if res.OK != 2 || res.Failed != 2 || res.Skipped != 0 {
		t.Fatalf("got %d ok / %d failed / %d skipped, want 2/2/0", res.OK, res.Failed, res.Skipped)
	}
	byID := map[string]*ExperimentResult{}
	for _, er := range res.Results {
		byID[er.ID] = er
	}
	if byID["b-err"].Status != StatusError || !errors.Is(byID["b-err"].Err, boom) {
		t.Errorf("b-err: got %v / %v", byID["b-err"].Status, byID["b-err"].Err)
	}
	if byID["c-panic"].Status != StatusError || !strings.Contains(fmt.Sprint(byID["c-panic"].Err), "panic") {
		t.Errorf("c-panic: got %v / %v", byID["c-panic"].Status, byID["c-panic"].Err)
	}
	for _, id := range []string{"a-ok", "d-ok"} {
		if byID[id].Status != StatusOK || byID[id].Report == nil {
			t.Errorf("%s: got %v, want ok with report", id, byID[id].Status)
		}
	}
}

func TestSuiteTimeoutCancelsCleanly(t *testing.T) {
	var exps []*Experiment
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("slow-%d", i)
		exps = append(exps, fakeExp(id, func(context.Context, Options) (*Report, error) {
			time.Sleep(40 * time.Millisecond)
			return &Report{Table: &stats.Table{}}, nil
		}))
	}
	s := &Suite{Experiments: exps, Parallel: 1, Timeout: 60 * time.Millisecond}
	res, err := s.Run(context.Background())
	if err == nil {
		t.Fatal("want a context error when the deadline skips experiments")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res == nil || len(res.Results) != len(exps) {
		t.Fatal("result must still cover every experiment")
	}
	if res.Skipped == 0 || res.OK == 0 {
		t.Fatalf("want a mix of ok and skipped, got %d ok / %d skipped", res.OK, res.Skipped)
	}
	for i, er := range res.Results {
		if want := fmt.Sprintf("slow-%d", i); er.ID != want {
			t.Errorf("result %d is %s, want %s (ID order)", i, er.ID, want)
		}
	}
}

// TestSuiteTimeoutAbortsInFlight: with ctx plumbed into Experiment.Run, an
// in-flight experiment no longer outlives the deadline — it aborts through
// its context and is classified skipped, not failed.
func TestSuiteTimeoutAbortsInFlight(t *testing.T) {
	aborted := false
	s := &Suite{
		Experiments: []*Experiment{
			fakeExp("in-flight", func(ctx context.Context, _ Options) (*Report, error) {
				<-ctx.Done() // a well-behaved simulation returns ctx.Err()
				aborted = true
				return nil, ctx.Err()
			}),
		},
		Parallel: 1,
		Timeout:  30 * time.Millisecond,
	}
	res, err := s.Run(context.Background())
	if err == nil {
		t.Fatal("want a context error from the interrupted suite")
	}
	if !aborted {
		t.Fatal("the in-flight experiment never saw the cancellation")
	}
	if res.Skipped != 1 || res.Failed != 0 {
		t.Fatalf("got %d skipped / %d failed, want the aborted experiment skipped", res.Skipped, res.Failed)
	}
}

func TestSuiteOrdersAdHocExperimentsByID(t *testing.T) {
	s := &Suite{
		Experiments: []*Experiment{okExp("zz", 1), okExp("aa", 2), okExp("mm", 3)},
		Parallel:    3,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, er := range res.Results {
		got = append(got, er.ID)
	}
	if want := "aa,mm,zz"; strings.Join(got, ",") != want {
		t.Errorf("order %v, want %s", got, want)
	}
}

func TestSuiteProgressSeesEveryCompletion(t *testing.T) {
	var seen []string
	s := &Suite{
		Experiments: []*Experiment{okExp("a", 1), okExp("b", 2)},
		Parallel:    2,
		Progress:    func(er *ExperimentResult) { seen = append(seen, er.ID) },
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Errorf("progress saw %v, want both experiments", seen)
	}
}

func TestSelectIDsUnknown(t *testing.T) {
	if _, err := SelectIDs([]string{"fig2", "nope"}); err == nil {
		t.Error("unknown id should error")
	}
}
