// Machine-readable renderings of a suite run: a JSON report for CI
// artifacts and a markdown report that generates EXPERIMENTS.md.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"datastall/internal/stats"
)

// suiteJSON is the wire form of a SuiteResult. Timing fields are emitted
// only when requested so that the default report is byte-identical across
// runs and worker counts for a given seed. Options are recorded as their
// effective values (seed/epochs defaults filled in); a missing scale means
// each experiment used its own default.
type suiteJSON struct {
	Scale       float64           `json:"scale,omitempty"`
	Epochs      int               `json:"epochs"`
	Seed        int64             `json:"seed"`
	OK          int               `json:"ok"`
	Failed      int               `json:"failed"`
	Skipped     int               `json:"skipped"`
	Parallel    int               `json:"parallel,omitempty"`
	WallSeconds float64           `json:"wall_seconds,omitempty"`
	Experiments []*experimentJSON `json:"experiments"`
}

type experimentJSON struct {
	ID          string             `json:"id"`
	Title       string             `json:"title"`
	Paper       string             `json:"paper"`
	Status      Status             `json:"status"`
	Error       string             `json:"error,omitempty"`
	Notes       string             `json:"notes,omitempty"`
	Values      map[string]float64 `json:"values,omitempty"`
	Table       *stats.TableJSON   `json:"table,omitempty"`
	Cases       []*caseResultJSON  `json:"cases,omitempty"`
	WallSeconds float64            `json:"wall_seconds,omitempty"`
}

// JSON renders the suite as an indented JSON report. With includeTiming
// false the bytes depend only on the experiment set, Options and each
// experiment's determinism — not on Parallel or the wall clock — so two runs
// with the same seed compare byte-for-byte; includeTiming true adds
// per-experiment and total wall seconds plus the worker count.
func (r *SuiteResult) JSON(includeTiming bool) ([]byte, error) {
	return r.JSONWith(includeTiming, false)
}

// JSONWith renders the suite report with optional extras: includeTiming as
// in JSON, and includeCases to additionally emit each experiment's captured
// per-case results ("cases" arrays) so the report can feed `runsuite
// -report saved.json -query ...`. The default report (both false) is
// byte-identical to what JSON always produced.
func (r *SuiteResult) JSONWith(includeTiming, includeCases bool) ([]byte, error) {
	// Record what the experiments actually ran with, not the raw zero
	// options; a zero scale stays omitted (per-experiment defaults).
	eff := r.Options.withDefaults(r.Options.Scale)
	out := &suiteJSON{
		Scale:  eff.Scale,
		Epochs: eff.Epochs,
		Seed:   eff.Seed,
		OK:     r.OK, Failed: r.Failed, Skipped: r.Skipped,
	}
	if includeTiming {
		out.Parallel = r.Parallel
		out.WallSeconds = r.WallSeconds
	}
	for _, er := range r.Results {
		ej := &experimentJSON{
			ID: er.ID, Title: er.Title, Paper: er.Paper, Status: er.Status,
		}
		if er.Err != nil {
			ej.Error = er.Err.Error()
		}
		if er.Report != nil {
			ej.Notes = er.Report.Notes
			ej.Values = er.Report.Values
			ej.Table = er.Report.Table.JSON()
			if includeCases {
				for _, c := range er.Report.Cases {
					ej.Cases = append(ej.Cases, toCaseJSON(c))
				}
			}
		}
		if includeTiming {
			ej.WallSeconds = er.WallSeconds
		}
		out.Experiments = append(out.Experiments, ej)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Markdown renders the suite as an EXPERIMENTS.md document: a status index
// followed by one section per experiment with its paper claim and result
// table. The output is deterministic for a given seed (no timestamps or
// wall times), so the file diffs cleanly across regenerations.
func (r *SuiteResult) Markdown() string {
	var b strings.Builder
	b.WriteString("# Experiments\n\n")
	b.WriteString("Every table and figure of the paper, reproduced by `cmd/runsuite`.\n")
	b.WriteString("Regenerate with `go run ./cmd/runsuite -md EXPERIMENTS.md`")
	fmt.Fprintf(&b, " (%s, %s, %s).\n\n",
		orDefault("scale", r.Options.Scale != 0, fmt.Sprintf("%g", r.Options.Scale)),
		orDefault("epochs", r.Options.Epochs != 0, fmt.Sprintf("%d", r.Options.Epochs)),
		orDefault("seed", r.Options.Seed != 0, fmt.Sprintf("%d", r.Options.Seed)))
	fmt.Fprintf(&b, "%d ok, %d failed, %d skipped.\n\n", r.OK, r.Failed, r.Skipped)
	b.WriteString("These tables are byte-identical however a sweep is executed — serially,\n")
	b.WriteString("fanned across `-parallel` workers, served over HTTP by `stallserved`, or\n")
	b.WriteString("scattered across a worker fleet by a coordinator: every path runs the\n")
	b.WriteString("same per-case simulations and assembles the same report (`make distsmoke`\n")
	b.WriteString("enforces the distributed case against a single-node golden, including\n")
	b.WriteString("with a worker killed mid-sweep). That also holds for memoized runs: with\n")
	b.WriteString("`-memo DIR`, a warm rerun replays every case from the content-addressed\n")
	b.WriteString("result cache without simulating anything, byte-identical to a cold run\n")
	b.WriteString("(`make memosmoke` enforces it on real binaries).\n\n")

	idx := &stats.Table{Columns: []string{"ID", "Status", "Title"}}
	for _, er := range r.Results {
		heading := fmt.Sprintf("%s: %s", er.ID, er.Title)
		idx.AddRow(fmt.Sprintf("[%s](#%s)", er.ID, mdAnchor(heading)), string(er.Status), er.Title)
	}
	b.WriteString(idx.Markdown())
	b.WriteString("\n")

	for _, er := range r.Results {
		fmt.Fprintf(&b, "## %s: %s\n\n", er.ID, er.Title)
		fmt.Fprintf(&b, "**Paper:** %s\n\n", er.Paper)
		switch er.Status {
		case StatusOK:
			b.WriteString(er.Report.Table.Markdown())
			if er.Report.Notes != "" {
				fmt.Fprintf(&b, "\nNotes: %s\n", er.Report.Notes)
			}
		case StatusError:
			fmt.Fprintf(&b, "**Failed:** %v\n", er.Err)
		case StatusSkipped:
			b.WriteString("**Skipped** (suite interrupted before this experiment started).\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// orDefault renders an option value, or "name default" for a zero option
// (each experiment fills its own defaults).
func orDefault(name string, set bool, v string) string {
	if !set {
		return name + " default"
	}
	return name + " " + v
}

// mdAnchor slugifies a heading the way GitHub does: lowercase, spaces to
// dashes, punctuation dropped.
func mdAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteRune(r)
		}
	}
	return b.String()
}
