package experiments

import (
	"strconv"

	"datastall/internal/obs"
	"datastall/internal/trainer"
)

// TraceEpochs records a finished run's per-epoch stall attribution as
// simulation-clock sub-spans of sp: one epoch span per epoch, each split
// into gpu_busy / fetch_stall / prep_stall via EpochStats.PhaseBreakdown
// at the run's configured device bandwidths — the paper's fig-5
// breakdown, drawn on a timeline. Derived from Result.Epochs after the
// run, so the engine's hot path stays tracing-free. No-op on a disabled
// span.
func TraceEpochs(sp obs.Span, cfg trainer.Config, res *trainer.Result) {
	if !sp.Enabled() || res == nil {
		return
	}
	diskBW := cfg.Spec.Disk.SeqBW
	netBW := cfg.Spec.Link.RawBW * cfg.Spec.Link.Efficiency
	var t float64
	for i, e := range res.Epochs {
		ep := sp.Sim("epoch", t, e.Duration)
		ep.SetAttr("epoch", strconv.Itoa(i+1))
		gpu, fetch, prep := e.PhaseBreakdown(diskBW, netBW)
		ep.Sim("gpu_busy", t, gpu)
		ep.Sim("fetch_stall", t+gpu, fetch)
		ep.Sim("prep_stall", t+gpu+fetch, prep)
		t += e.Duration
	}
}
