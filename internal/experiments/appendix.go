package experiments

import (
	"context"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/dsanalyzer"
	"datastall/internal/gpu"
	"datastall/internal/hpsearch"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

func init() {
	register(&Experiment{
		ID:           "table5",
		Title:        "DS-Analyzer predicted vs empirical fetch-bound throughput",
		Paper:        "predictions within 4% of measurements at 25/35/50% cache",
		DefaultScale: 0.06,
		Run:          runTable5,
	})
	register(&Experiment{
		ID:           "fig16",
		Title:        "DS-Analyzer optimal-cache-size recommendation (AlexNet)",
		Paper:        "I/O-bound at small caches; ~55% of the dataset suffices, beyond which CPU binds",
		DefaultScale: 0.06,
		Run:          runFig16,
	})
	register(&Experiment{
		ID:           "fig19",
		Title:        "CPU utilization over time: DALI vs CoorDL (ResNet18/OpenImages)",
		Paper:        "DALI's prep threads sit idle waiting on I/O; CoorDL keeps them busy",
		DefaultScale: 0.004,
		Run:          runFig19,
	})
	register(&Experiment{
		ID:           "fig20",
		Title:        "Memory overhead of coordinated prep (staging area)",
		Paper:        "~5 GB of staging memory; total node memory use unchanged",
		DefaultScale: 0.002,
		Run:          runFig20,
	})
	register(&Experiment{
		ID:           "fig21",
		Title:        "Py-CoorDL (MinIO in the native PyTorch loader) vs PyTorch DL",
		Paper:        "2.1-3.3x on HDD; ~7% on SSD (prep-bound with Pillow decode)",
		DefaultScale: 0.01,
		Run:          runFig21,
	})
	register(&Experiment{
		ID:           "fig22",
		Title:        "Coordinated prep microbenchmark (4 and 8 PyTorch jobs, cached dataset)",
		Paper:        "1.8x per-job speedup for 8 jobs; stalls driven to ~0",
		DefaultScale: 0.004,
		Run:          runFig22,
	})
	register(&Experiment{
		ID:           "fig23",
		Title:        "End-to-end HP search (16 trials, successive halving) on HDD and SSD",
		Paper:        "coordinated prep alone up to 2.5x; with MinIO ~5.5x on HDD; smaller gains on SSD",
		DefaultScale: 0.004,
		Run:          runFig23,
	})
	register(&Experiment{
		ID:           "ablation-cache",
		Title:        "Ablation: cache policy (LRU / two-list / MinIO) on one fetch-bound job",
		Paper:        "design choice behind §4.1: insert-once beats recency policies for DNN access",
		DefaultScale: 0.004,
		Run:          runAblationCache,
	})
	register(&Experiment{
		ID:           "ablation-remote",
		Title:        "Ablation: partitioned caching with and without the remote-fetch path",
		Paper:        "design choice behind §4.2: remote DRAM beats local storage on misses",
		DefaultScale: 0.003,
		Run:          runAblationRemote,
	})
	register(&Experiment{
		ID:           "ablation-staging",
		Title:        "Ablation: coordinated-prep staging capacity",
		Paper:        "design choice behind §4.3: a few GB of staging suffice",
		DefaultScale: 0.002,
		Run:          runAblationStaging,
	})
	register(&Experiment{
		ID:           "ablation-prefetch",
		Title:        "Ablation: prefetch pipeline depth",
		Paper:        "design choice behind §2's pipelined prefetching",
		DefaultScale: 0.004,
		Run:          runAblationPrefetch,
	})
}

func runTable5(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("alexnet")
	d := dataset.ImageNet1K.Scale(o.Scale)
	spec := cluster.ConfigSSDV100()
	p, err := dsanalyzer.Analyze(ctx, trainer.Config{
		Model: m, Dataset: d, Spec: spec, Loader: loader.CoorDL,
		CacheBytes: 0.35 * d.TotalBytes, Epochs: o.Epochs, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{Table: &stats.Table{
		Title:   "Predicted vs empirical training speed (samples/s), AlexNet",
		Columns: []string{"% cached", "predicted", "empirical", "error %"},
	}}
	for _, frac := range []float64{0.25, 0.35, 0.50} {
		pred := p.PredictThroughput(frac)
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: spec, Loader: loader.CoorDL,
			CacheBytes: frac * d.TotalBytes, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		errPct := pct(abs(pred-res.Throughput) / res.Throughput)
		r.Table.AddRow(pct(frac), pred, res.Throughput, errPct)
		r.set("error_pct_"+itoa(int(frac*100)), errPct)
	}
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func runFig16(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("alexnet")
	d := dataset.ImageNet1K.Scale(o.Scale)
	spec := cluster.ConfigSSDV100()
	p, err := dsanalyzer.Analyze(ctx, trainer.Config{
		Model: m, Dataset: d, Spec: spec, Loader: loader.CoorDL,
		CacheBytes: 0.35 * d.TotalBytes, Epochs: o.Epochs, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{Table: &stats.Table{
		Title:   "Predicted throughput and bottleneck vs cache size (AlexNet)",
		Columns: []string{"cache %", "predicted samp/s", "bottleneck"},
	}}
	for _, x := range []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0} {
		r.Table.AddRow(pct(x), p.PredictThroughput(x), p.Bottleneck(x))
	}
	opt := p.OptimalCacheFrac()
	r.set("optimal_cache_pct", pct(opt))
	r.set("g", p.G)
	r.set("p", p.P)
	r.Notes = "recommended cache fraction: " + stats.FormatFloat(pct(opt)) + "%"
	return r, nil
}

func runFig19(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := cacheFor(d, full, 400*stats.GiB)
	spec := cluster.ConfigSSDV100()
	util := func(k loader.Kind) ([]float64, float64, error) {
		res, err := trainer.RunContext(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: spec, Loader: k,
			CacheBytes: cacheBytes, Epochs: 2, Seed: o.Seed,
		}, trainer.CPUTraceObserver())
		if err != nil {
			return nil, 0, err
		}
		h := res.TotalTime
		w := h / 10
		buckets := res.CPUTrace.Bucketize(w, h)
		out := make([]float64, len(buckets))
		for i, b := range buckets {
			out[i] = pct(b / (w * float64(spec.PhysicalCores)))
		}
		return out, res.CPUTrace.Sum() / h / float64(spec.PhysicalCores), nil
	}
	daliU, daliAvg, err := util(loader.DALIShuffle)
	if err != nil {
		return nil, err
	}
	coordlU, coordlAvg, err := util(loader.CoorDL)
	if err != nil {
		return nil, err
	}
	r := &Report{Table: &stats.Table{
		Title:   "CPU utilization % per time window (10 windows per run)",
		Columns: []string{"window", "dali", "coordl"},
	}}
	for i := range daliU {
		r.Table.AddRow(i, daliU[i], coordlU[i])
	}
	r.set("dali_avg_util", pct(daliAvg))
	r.set("coordl_avg_util", pct(coordlAvg))
	return r, nil
}

func runFig20(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("alexnet")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	base := trainer.Config{
		Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
		CacheBytes: cacheFor(d, full, 400*stats.GiB),
		Epochs:     2, Seed: o.Seed, Batch: 128,
	}
	res, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
		Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
		StagingCapBytes: 5 * stats.GiB, TraceStagingMem: true,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{Table: &stats.Table{
		Title:   "Coordinated-prep staging memory",
		Columns: []string{"metric", "value"},
	}}
	r.Table.AddRow("staging peak (GiB)", gib(res.StagingPeakBytes))
	r.Table.AddRow("staging cap (GiB)", 5.0)
	r.Table.AddRow("trace points", float64(res.StagingTrace.Len()))
	r.set("staging_peak_gib", gib(res.StagingPeakBytes))
	r.Notes = "cache budget is reduced by the staging footprint so total node memory stays constant (§5.5)"
	return r, nil
}

func runFig21(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "Py-CoorDL (native PyTorch + MinIO) vs PyTorch DL epoch time (s)",
		Columns: []string{"device", "cache %", "pytorch-dl", "py-coordl", "speedup"},
	}}
	for _, spec := range []cluster.ServerSpec{cluster.ConfigHDD1080Ti(), cluster.ConfigSSDV100()} {
		for _, frac := range []float64{0.35, 0.50, 0.65, 0.80} {
			var times []float64
			for _, k := range []loader.Kind{loader.PyTorchDL, loader.CoorDL} {
				res, err := mustRun(ctx, trainer.Config{
					Model: m, Dataset: d, Spec: spec, Loader: k,
					Framework:  prep.PyTorchNative,
					CacheBytes: frac * d.TotalBytes, Epochs: o.Epochs, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				times = append(times, res.EpochTime)
			}
			r.Table.AddRow(spec.Disk.Name, pct(frac), times[0], times[1], times[0]/times[1])
			r.set("speedup_"+spec.Disk.Name+"_"+itoa(int(frac*100)), times[0]/times[1])
		}
	}
	r.Notes = "HDD gains are large (I/O-bound); SSD gains are small because Pillow prep binds first (Appendix E.2.1)"
	return r, nil
}

func runFig22(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "Coordinated prep microbenchmark (PyTorch prep, dataset cached)",
		Columns: []string{"jobs x workers", "pytorch epoch s", "py-coordl epoch s", "speedup"},
	}}
	for _, sh := range []struct{ jobs, workers int }{{4, 6}, {8, 3}} {
		base := trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Framework: prep.PyTorchNative, FetchMode: trainer.FullyCached,
			ThreadsPerGPU: sh.workers, Epochs: o.Epochs, Seed: o.Seed,
		}
		indep, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: sh.jobs, GPUsPerJob: 1,
		})
		if err != nil {
			return nil, err
		}
		coord, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: sh.jobs, GPUsPerJob: 1, Coordinated: true,
		})
		if err != nil {
			return nil, err
		}
		sp := indep.Jobs[0].EpochTime / coord.Jobs[0].EpochTime
		r.Table.AddRow(itoa(sh.jobs)+"x"+itoa(sh.workers),
			indep.Jobs[0].EpochTime, coord.Jobs[0].EpochTime, sp)
		r.set("speedup_"+itoa(sh.jobs)+"jobs", sp)
	}
	return r, nil
}

func runFig23(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "End-to-end HP search: 16 trials, 8 GPUs, successive halving",
		Columns: []string{"device", "variant", "search time s", "disk TiB", "speedup"},
	}}
	for _, spec := range []cluster.ServerSpec{cluster.ConfigHDD1080Ti(), cluster.ConfigSSDV100()} {
		base := trainer.Config{
			Model: m, Dataset: d, Spec: spec, Framework: prep.PyTorchNative,
			CacheBytes: 0.75 * d.TotalBytes, Seed: o.Seed, Batch: 128,
		}
		variants := []struct {
			name  string
			coord bool
			pgc   bool
		}{
			{"pytorch-dl", false, false},
			{"coordinated prep", true, true}, // coordination without MinIO
			{"py-coordl (coord + minio)", true, false},
		}
		var baseTime float64
		for _, v := range variants {
			// Two epochs per rung: the first wave epoch is cold-cache
			// warmup, so the caching policies differentiate (the paper's
			// long-lived server keeps its cache warm across trials).
			cfg := hpsearch.Config{
				Base: base, NumTrials: 16, ParallelJobs: 8,
				EpochsPerRung: 2,
				Coordinated:   v.coord, Seed: o.Seed,
			}
			var sr *hpsearch.Result
			var err error
			if v.coord && v.pgc {
				sr, err = runSearchWithPageCacheCoord(ctx, cfg)
			} else {
				sr, err = hpsearch.Run(ctx, cfg)
			}
			if err != nil {
				return nil, err
			}
			if baseTime == 0 {
				baseTime = sr.SearchSeconds
			}
			r.Table.AddRow(spec.Disk.Name, v.name, sr.SearchSeconds,
				sr.TotalDiskBytes/stats.TiB, baseTime/sr.SearchSeconds)
			key := "speedup_" + spec.Disk.Name + "_" + keyify(v.name)
			r.set(key, baseTime/sr.SearchSeconds)
		}
	}
	return r, nil
}

func keyify(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	return string(out)
}

// runSearchWithPageCacheCoord runs the "coordinated prep alone" variant:
// coordination through the staging area but fetching via the page cache.
func runSearchWithPageCacheCoord(ctx context.Context, cfg hpsearch.Config) (*hpsearch.Result, error) {
	// hpsearch drives trainer.RunConcurrent; reproduce its waves here
	// with CoordUsePageCache set.
	res := &hpsearch.Result{}
	remaining := cfg.NumTrials
	for remaining > 0 {
		n := cfg.ParallelJobs
		if n > remaining {
			n = remaining
		}
		base := cfg.Base
		base.Epochs = cfg.EpochsPerRung
		if base.Epochs == 0 {
			base.Epochs = 1
		}
		cr, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: n, GPUsPerJob: 1,
			Coordinated: true, CoordUsePageCache: true,
		})
		if err != nil {
			return nil, err
		}
		waveTime := 0.0
		for _, jr := range cr.Jobs {
			if jr.TotalTime > waveTime {
				waveTime = jr.TotalTime
			}
		}
		res.SearchSeconds += waveTime
		res.TotalDiskBytes += cr.TotalDiskBytes
		res.Waves++
		res.TotalEpochs += n
		remaining -= n
	}
	return res, nil
}

func runAblationCache(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("shufflenetv2")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := 0.5 * d.TotalBytes
	r := &Report{Table: &stats.Table{
		Title:   "Cache-policy ablation (ShuffleNet/OpenImages, 50% cache, SSD)",
		Columns: []string{"policy", "hit rate %", "epoch s"},
	}}
	// Page-cache policies via the DALI-shuffle path; MinIO via CoorDL.
	for _, k := range []loader.Kind{loader.DALIShuffle, loader.CoorDL} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: k, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		name := "twolist (page cache)"
		if k == loader.CoorDL {
			name = "minio (insert-once)"
		}
		r.Table.AddRow(name, pct(res.HitRate), res.EpochTime)
		r.set("hit_"+k.String(), pct(res.HitRate))
	}
	r.Notes = "MinIO hits = capacity ratio exactly; recency policies thrash below it"
	return r, nil
}

func runAblationRemote(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := 0.65 * d.TotalBytes
	r := &Report{Table: &stats.Table{
		Title:   "Partitioned caching ablation (2 HDD servers)",
		Columns: []string{"variant", "epoch s", "disk GiB/epoch", "net GiB/epoch"},
	}}
	for _, disable := range []bool{false, true} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigHDD1080Ti(),
			NumServers: 2, Loader: loader.CoorDL, CacheBytes: cacheBytes,
			DisableRemoteFetch: disable, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		name := "partitioned (remote fetch)"
		if disable {
			name = "local MinIO only"
		}
		r.Table.AddRow(name, res.EpochTime, gib(res.DiskPerEpoch), gib(res.NetPerEpoch))
		if disable {
			r.set("local_epoch_s", res.EpochTime)
		} else {
			r.set("remote_epoch_s", res.EpochTime)
		}
	}
	return r, nil
}

func runAblationStaging(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("alexnet")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	base := trainer.Config{
		Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
		CacheBytes: cacheFor(d, full, 400*stats.GiB),
		Epochs:     2, Seed: o.Seed, Batch: 128,
	}
	r := &Report{Table: &stats.Table{
		Title:   "Staging-capacity ablation (8-job coordinated prep)",
		Columns: []string{"cap (GiB)", "per-job epoch s", "peak staged GiB"},
	}}
	for _, capGiB := range []float64{0.5, 1, 2, 5} {
		res, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
			StagingCapBytes: capGiB * stats.GiB,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(capGiB, res.Jobs[0].EpochTime, gib(res.StagingPeakBytes))
		r.set("epoch_s_cap"+itoa(int(capGiB*10)), res.Jobs[0].EpochTime)
	}
	return r, nil
}

func runAblationPrefetch(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("shufflenetv2")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "Prefetch-depth ablation (CoorDL, ShuffleNet/OpenImages)",
		Columns: []string{"depth", "epoch s", "stall %"},
	}}
	for _, depth := range []int{1, 2, 3, 6} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: loader.CoorDL, CacheBytes: 0.65 * d.TotalBytes,
			PrefetchDepth: depth, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(depth, res.EpochTime, pct(res.StallFraction))
		r.set("epoch_s_depth"+itoa(depth), res.EpochTime)
	}
	return r, nil
}
