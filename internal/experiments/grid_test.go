package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"datastall/internal/trainer"
)

// gridTestSpec is a 2-row x 2-case grid at a tiny scale: big enough to have
// real row/sweep structure, small enough to simulate in milliseconds.
func gridTestSpec(t *testing.T) *Spec {
	t.Helper()
	sp, err := LoadSpec([]byte(`{
		"name": "gridtest",
		"title": "grid split fidelity",
		"row_header": ["cache"],
		"base": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.005, "epochs": 2, "seed": 1},
		"rows": {"param": "cache_fraction", "values": [0.25, 0.5]},
		"sweep": {"param": "loader", "values": ["dali-shuffle", "coordl"]},
		"columns": [
			{"label": "dali s", "metric": "epoch_s", "of": "dali-shuffle", "key": "{row}/dali"},
			{"label": "speedup", "metric": "epoch_s", "of": "dali-shuffle", "over": "coordl"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestGridSplitMatchesRunSpec is the scatter/gather contract: running the
// enumerated cells out of order (here: reversed) and assembling by Index
// yields a Report byte-identical to the single-node RunSpec loop.
func TestGridSplitMatchesRunSpec(t *testing.T) {
	sp := gridTestSpec(t)
	o := Options{}
	direct, err := RunSpec(context.Background(), sp, o)
	if err != nil {
		t.Fatal(err)
	}

	cells, err := EnumerateCases(sp, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("enumerated %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Index != i || c.Total != 4 {
			t.Fatalf("cell %d: Index=%d Total=%d", i, c.Index, c.Total)
		}
	}

	// Execute in reverse order, and round-trip each cell's JobSpec through
	// JSON first — exactly what a coordinator shipping cells to remote
	// workers does.
	results := make([]*trainer.Result, len(cells))
	for i := len(cells) - 1; i >= 0; i-- {
		b, err := json.Marshal(cells[i].Job)
		if err != nil {
			t.Fatal(err)
		}
		var js JobSpec
		if err := json.Unmarshal(b, &js); err != nil {
			t.Fatal(err)
		}
		cfg, err := js.Build(o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := trainer.RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[cells[i].Index] = res
	}
	assembled, err := AssembleReport(sp, o, results)
	if err != nil {
		t.Fatal(err)
	}

	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	assembledJSON, err := json.Marshal(assembled)
	if err != nil {
		t.Fatal(err)
	}
	if string(directJSON) != string(assembledJSON) {
		t.Fatalf("assembled report differs from RunSpec:\ndirect:    %s\nassembled: %s", directJSON, assembledJSON)
	}
	if direct.Table.String() != assembled.Table.String() {
		t.Fatalf("rendered tables differ:\n%s\nvs\n%s", direct.Table.String(), assembled.Table.String())
	}
	if len(assembled.Cases) != 4 {
		t.Fatalf("assembled %d cases, want 4", len(assembled.Cases))
	}
}

// TestAssembleReportValidation: result slices that cannot correspond to the
// grid are rejected instead of silently producing a wrong table.
func TestAssembleReportValidation(t *testing.T) {
	sp := gridTestSpec(t)
	if _, err := AssembleReport(sp, Options{}, make([]*trainer.Result, 3)); err == nil {
		t.Fatal("wrong result count accepted")
	}
	if _, err := AssembleReport(sp, Options{}, make([]*trainer.Result, 4)); err == nil {
		t.Fatal("nil results accepted")
	}
}

// TestEnumerateCasesNoSweep: a spec without a sweep axis enumerates one
// cell per row with an empty Case label, matching CaseProgress semantics.
func TestEnumerateCasesNoSweep(t *testing.T) {
	sp, err := LoadSpec([]byte(`{
		"name": "nosweep",
		"row_header": ["model"],
		"base": {"scale": 0.005, "epochs": 1},
		"rows": {"param": "model", "values": ["resnet18", "alexnet"]},
		"columns": [{"label": "s", "metric": "epoch_s"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := EnumerateCases(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Case != "" {
			t.Fatalf("no-sweep cell has Case %q", c.Case)
		}
	}
	if cells[0].Row != "resnet18" || cells[1].Row != "alexnet" {
		t.Fatalf("row labels %q/%q", cells[0].Row, cells[1].Row)
	}
	if cells[0].Job.Model != "resnet18" || cells[1].Job.Model != "alexnet" {
		t.Fatalf("overlaid models %q/%q", cells[0].Job.Model, cells[1].Job.Model)
	}
}
