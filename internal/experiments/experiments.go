// Package experiments reproduces every table and figure of the paper's
// analysis and evaluation. Each experiment has an ID matching DESIGN.md's
// per-experiment index, runs at a configurable dataset scale (ratios are
// scale-invariant; see DESIGN.md §2), and renders a paper-style table plus a
// flat map of key metrics for tests and EXPERIMENTS.md.
//
// There are two ways to run experiments:
//
//   - the registry (ByID/List/Run) holds the paper's tables and figures;
//     every Run takes a context.Context, and cancellation propagates into
//     the underlying simulations, so a timed-out suite aborts in-flight
//     experiments instead of waiting them out;
//   - declarative Specs (spec.go) describe sweep-shaped scenarios — a base
//     job plus parameter axes plus derived columns — as data. The registry's
//     sweep-shaped figures are themselves defined as Specs, and user
//     scenarios load from JSON (`runsuite -spec file.json`) without touching
//     compiled code.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/memo"
	"datastall/internal/obs"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

// Options tunes an experiment run.
type Options struct {
	// Scale shrinks datasets (and caches with them); 1.0 = paper size.
	// Zero selects the experiment's default (fast but stable).
	Scale float64
	// Epochs per training run (0 = experiment default, usually 3).
	Epochs int
	// Seed for all randomized components.
	Seed int64
	// Memo, when non-nil, memoizes every spec-driven case through the
	// content-addressed result cache: cells whose fully-resolved config
	// (CaseKey) is already cached replay their stored trainer.Result
	// instead of simulating, byte-identically. Excluded from JSON — a
	// cache handle is process state, not part of a job's wire identity.
	Memo *memo.Cache `json:"-"`
	// Trace, when enabled, parents a span per spec-driven case (with
	// memo-lookup events and per-epoch stall-attribution sub-spans) under
	// it. Like Memo, it is process state, not wire identity.
	Trace obs.Span `json:"-"`
}

func (o Options) withDefaults(defScale float64) Options {
	if o.Scale == 0 {
		o.Scale = defScale
	}
	if o.Epochs == 0 {
		o.Epochs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report is an experiment's output.
type Report struct {
	ID    string
	Title string
	// Paper summarizes the published result this reproduces.
	Paper string
	// Table is the rendered result.
	Table *stats.Table
	// Values exposes key metrics by name for tests and EXPERIMENTS.md.
	Values map[string]float64
	// Notes records deviations or caveats.
	Notes string
	// Cases holds the per-cell results captured by spec-driven sweeps
	// (RunSpec), the feed for internal/query. Hand-written experiments
	// leave it nil. It is excluded from the default JSON report; pass
	// includeCases to SuiteResult.JSONWith to emit it.
	Cases []*CaseResult
}

func (r *Report) set(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\npaper: %s\n%s", r.ID, r.Title, r.Paper, r.Table.String())
	if r.Notes != "" {
		s += "notes: " + r.Notes + "\n"
	}
	return s
}

// Experiment is a registered table/figure reproduction. Run must honor ctx:
// the simulations it drives return ctx.Err() when the context dies.
type Experiment struct {
	ID    string
	Title string
	Paper string
	// DefaultScale keeps the run fast while preserving ratios.
	DefaultScale float64
	Run          func(context.Context, Options) (*Report, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns a registered experiment.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (try List())", id)
	}
	return e, nil
}

// List returns all experiment IDs in order.
func List() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run looks up and executes an experiment. ctx cancellation propagates into
// the experiment's simulations, so single-experiment runs honor deadlines
// exactly like suite runs.
func Run(ctx context.Context, id string, o Options) (*Report, error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	o = o.withDefaults(e.DefaultScale)
	r, err := e.Run(ctx, o)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", id, err)
	}
	r.ID, r.Title, r.Paper = e.ID, e.Title, e.Paper
	return r, nil
}

// --- shared helpers ---

// scaled returns the model's default dataset at the experiment scale.
func scaled(m *gpu.Model, o Options) *dataset.Dataset {
	d, err := dataset.ByName(m.DefaultDataset)
	if err != nil {
		panic(err)
	}
	return d.Scale(o.Scale)
}

// cacheFor mirrors the paper's setup: the SKU's 400 GiB cache budget as a
// fraction of the (unscaled) dataset, applied to the scaled dataset.
func cacheFor(d *dataset.Dataset, full *dataset.Dataset, budget float64) float64 {
	frac := budget / full.TotalBytes
	if frac > 1 {
		frac = 1
	}
	return frac * d.TotalBytes
}

// mustRun runs a training config under ctx, propagating errors (including
// ctx.Err() on cancellation).
func mustRun(ctx context.Context, cfg trainer.Config) (*trainer.Result, error) {
	return trainer.RunContext(ctx, cfg)
}

func pct(x float64) float64 { return 100 * x }

func gib(x float64) float64 { return x / stats.GiB }
