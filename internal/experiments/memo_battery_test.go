// The memoization property battery: for randomized spec grids, a warm
// rerun against the cold run's cache directory must (a) simulate nothing —
// zero misses, hits equal to the grid's unique resolved cases — and (b)
// produce byte-identical output at every level a user can observe: the
// rendered table, the Values map, and the /v1/query-equivalent NDJSON over
// the captured cases. A corrupted entry must degrade to a counted miss,
// never to different bytes or an error.
//
// External test package: the battery drives internal/query over the
// captured cases, and query imports experiments.
package experiments_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datastall/internal/experiments"
	"datastall/internal/memo"
	"datastall/internal/query"
)

// randomSpecJSON builds a small sweep with randomized axes. Two of the
// three rows are deliberate syntactic variants of the same resolved case:
// one pins prefetch_depth to its default (3), the other pins batch to
// resnet18's V100 default (512) — distinct axis labels, identical
// simulations. The grid is 3 rows x 2 loaders = 6 cells but only 4 unique
// resolved cases, so within-sweep dedupe must collapse 2 cells even cold.
func randomSpecJSON(rng *rand.Rand, trial int) []byte {
	loaders := []string{"dali-shuffle", "coordl", "pytorch-dl", "dali-seq"}
	rng.Shuffle(len(loaders), func(i, j int) { loaders[i], loaders[j] = loaders[j], loaders[i] })
	picked := loaders[:2]
	fracs := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	spec := map[string]interface{}{
		"name":       fmt.Sprintf("memo-battery-%d", trial),
		"title":      "memo property battery grid",
		"row_header": []string{"variant"},
		"base": map[string]interface{}{
			"model":          "resnet18",
			"server":         "config-ssd-v100",
			"cache_fraction": fracs[rng.Intn(len(fracs))],
		},
		"rows": map[string]interface{}{
			"cases": []map[string]interface{}{
				{"label": "defaults-a", "cells": []string{"defaults-a"},
					"set": map[string]interface{}{"prefetch_depth": 3}},
				{"label": "defaults-b", "cells": []string{"defaults-b"},
					"set": map[string]interface{}{"batch": 512}},
				{"label": "half-batch", "cells": []string{"half-batch"},
					"set": map[string]interface{}{"batch": 256}},
			},
		},
		"sweep": map[string]interface{}{
			"param":  "loader",
			"values": picked,
		},
		"columns": []map[string]interface{}{
			{"label": "a s", "metric": "epoch_s", "of": picked[0]},
			{"label": "b s", "metric": "epoch_s", "of": picked[1]},
			{"label": "a stall %", "metric": "stall_pct", "of": picked[0]},
		},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// observed renders everything a user can see from a report: table text,
// values, notes, and the NDJSON a /v1/query-style scan of its cases yields.
func observed(t *testing.T, rep *experiments.Report) string {
	t.Helper()
	vals, err := json.Marshal(rep.Values)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseQuery([]byte(`{"order_by":[{"col":"case_id"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	st := query.NewStore()
	st.AddCases(rep.Cases)
	rows, err := query.New(st).Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var nd bytes.Buffer
	if _, err := query.WriteNDJSON(&nd, rows); err != nil {
		t.Fatal(err)
	}
	return rep.Table.String() + "\n" + string(vals) + "\n" + rep.Notes + "\n" + nd.String()
}

func memoFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".memo") {
			files = append(files, path)
		}
		return nil
	})
	return files
}

func TestMemoColdWarmByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("grid%d", trial), func(t *testing.T) {
			sp, err := experiments.LoadSpec(randomSpecJSON(rng, trial))
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			cold, err := memo.Open(memo.Options{Dir: dir, Salt: "battery"})
			if err != nil {
				t.Fatal(err)
			}
			opts := experiments.Options{Scale: 0.02, Epochs: 2, Memo: cold}
			repCold, err := experiments.RunSpec(ctx, sp, opts)
			if err != nil {
				t.Fatal(err)
			}
			cs := cold.Stats()
			if cs.Hits != 0 {
				t.Fatalf("cold run hit %d times in an empty cache", cs.Hits)
			}
			// The grid has 6 cells but only 4 unique resolved cases (the
			// defaults-a and defaults-b rows resolve identically per loader):
			// within-sweep dedupe must collapse them before the cache ever
			// sees them.
			if cs.Misses != 4 {
				t.Fatalf("cold misses = %d, want 4 (one per unique resolved case)", cs.Misses)
			}
			goldenOut := observed(t, repCold)

			warm, err := memo.Open(memo.Options{Dir: dir, Salt: "battery"})
			if err != nil {
				t.Fatal(err)
			}
			opts.Memo = warm
			repWarm, err := experiments.RunSpec(ctx, sp, opts)
			if err != nil {
				t.Fatal(err)
			}
			ws := warm.Stats()
			if ws.Misses != 0 {
				t.Fatalf("warm run simulated %d case(s), want 0", ws.Misses)
			}
			if ws.Hits != cs.Misses {
				t.Fatalf("warm hits = %d, want %d (every unique case served)", ws.Hits, cs.Misses)
			}
			if got := observed(t, repWarm); got != goldenOut {
				t.Fatalf("warm output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", goldenOut, got)
			}

			// Corrupt one persisted entry: the third run must notice (a
			// counted load error), silently re-simulate that case, and
			// still emit the same bytes.
			files := memoFiles(t, dir)
			if len(files) != 4 {
				t.Fatalf("%d entry files on disk, want 4", len(files))
			}
			b, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0xff
			if err := os.WriteFile(files[0], b, 0o644); err != nil {
				t.Fatal(err)
			}
			third, err := memo.Open(memo.Options{Dir: dir, Salt: "battery"})
			if err != nil {
				t.Fatal(err)
			}
			opts.Memo = third
			repThird, err := experiments.RunSpec(ctx, sp, opts)
			if err != nil {
				t.Fatal(err)
			}
			ts := third.Stats()
			if ts.LoadErrors != 1 {
				t.Fatalf("load errors = %d, want 1 (the corrupted entry)", ts.LoadErrors)
			}
			if ts.Misses != 1 || ts.Hits != 3 {
				t.Fatalf("after corruption hits=%d misses=%d, want 3/1", ts.Hits, ts.Misses)
			}
			if got := observed(t, repThird); got != goldenOut {
				t.Fatal("output after corruption-induced re-simulation differs")
			}
		})
	}
}

// TestMemoSharedAcrossSpecs: overlapping sweeps share work through one
// cache — a second spec whose grid overlaps the first's re-simulates only
// the cells the first never ran.
func TestMemoSharedAcrossSpecs(t *testing.T) {
	ctx := context.Background()
	mk := func(fracs []float64) *experiments.Spec {
		doc := map[string]interface{}{
			"name":       "overlap",
			"title":      "overlap",
			"row_header": []string{"frac"},
			"base":       map[string]interface{}{"model": "resnet18", "server": "config-ssd-v100"},
			"rows":       map[string]interface{}{"param": "cache_fraction", "values": fracs},
			"columns": []map[string]interface{}{
				{"label": "s", "metric": "epoch_s"},
			},
		}
		b, _ := json.Marshal(doc)
		sp, err := experiments.LoadSpec(b)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	cache, err := memo.Open(memo.Options{Dir: t.TempDir(), Salt: "battery"})
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{Scale: 0.02, Epochs: 2, Memo: cache}
	if _, err := experiments.RunSpec(ctx, mk([]float64{0.2, 0.4, 0.6}), opts); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("first sweep hits=%d misses=%d, want 0/3", st.Hits, st.Misses)
	}
	// 2 of 4 values overlap the first sweep.
	if _, err := experiments.RunSpec(ctx, mk([]float64{0.2, 0.4, 0.7, 0.8}), opts); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 5 || st.Hits != 2 {
		t.Fatalf("after overlap hits=%d misses=%d, want 2/5", st.Hits, st.Misses)
	}
}

// TestCaseKeyCollapsesSyntacticVariants: two JobSpecs that resolve to the
// same simulation must share an address; changing any load-bearing knob or
// the salt must rotate it.
func TestCaseKeyCollapsesSyntacticVariants(t *testing.T) {
	o := experiments.Options{Scale: 0.02, Epochs: 2}
	base := experiments.JobSpec{Model: "resnet18"}
	explicit := experiments.JobSpec{Model: "resnet18", Loader: "dali-shuffle", PrefetchDepth: 3}
	k1, err := experiments.CaseKey(base, o, "s")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := experiments.CaseKey(explicit, o, "s")
	if err != nil {
		t.Fatal(err)
	}
	if k1.Hash != k2.Hash {
		t.Fatal("defaulted and explicitly-defaulted spec hash differently")
	}
	k3, err := experiments.CaseKey(experiments.JobSpec{Model: "resnet18", Batch: 2}, o, "s")
	if err != nil {
		t.Fatal(err)
	}
	if k3.Hash == k1.Hash {
		t.Fatal("different batch size did not change the key")
	}
	k4, err := experiments.CaseKey(base, o, "other-salt")
	if err != nil {
		t.Fatal(err)
	}
	if k4.Hash == k1.Hash {
		t.Fatal("salt change did not rotate the key")
	}
}
