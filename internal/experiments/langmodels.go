package experiments

import (
	"context"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/dsanalyzer"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

func init() {
	register(&Experiment{
		ID:           "sec3-lang",
		Title:        "Language models (BERT-Large, GNMT) show no data stalls",
		Paper:        "§3.1: Bert-L and GNMT are GPU compute heavy and do not exhibit data stalls",
		DefaultScale: 0.01,
		Run:          runLangModels,
	})
}

// runLangModels verifies the paper's exclusion criterion: under the same
// 35%-cache SSD-V100 setup where image/audio models stall 30-70%, the two
// language models train GPU-bound because their per-sample input bytes are
// tiny relative to the model's arithmetic.
func runLangModels(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "Data stalls at 35% cache, Config-SSD-V100 (DALI baseline)",
		Columns: []string{"model", "dataset", "fetch stall %", "prep stall %", "total stall %"},
	}}
	models := append([]*gpu.Model{}, gpu.LanguageModels()...)
	models = append(models, gpu.MustByName("resnet18")) // stalled reference
	for _, m := range models {
		full, err := dataset.ByName(m.DefaultDataset)
		if err != nil {
			return nil, err
		}
		d := full.Scale(o.Scale)
		p, err := dsanalyzer.Analyze(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: loader.DALIShuffle, CacheBytes: 0.35 * d.TotalBytes,
			Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		total := p.PrepStallFrac + p.FetchStallFrac
		r.Table.AddRow(m.Name, m.DefaultDataset,
			pct(p.FetchStallFrac), pct(p.PrepStallFrac), pct(total))
		r.set("stall_"+m.Name, pct(total))
	}
	r.Notes = "data stalls may appear for these models if GPUs get faster or their compute shrinks (§3.1)"
	return r, nil
}
