package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Status classifies the outcome of one experiment inside a suite run.
type Status string

// Experiment outcomes.
const (
	// StatusOK means the experiment completed and produced a report.
	StatusOK Status = "ok"
	// StatusError means the experiment ran but returned an error (or
	// panicked); the rest of the suite is unaffected.
	StatusError Status = "error"
	// StatusSkipped means the suite's context expired before the
	// experiment was started.
	StatusSkipped Status = "skipped"
)

// Suite runs a set of experiments across a bounded worker pool. Experiments
// are independent deterministic simulations, so the suite fans them out
// across workers and re-assembles results in ID order: for a given
// Options.Seed the aggregate output is byte-identical for any Parallel.
type Suite struct {
	// Experiments to run; nil means the full registry (List()).
	Experiments []*Experiment
	// Options applies to every experiment (per-experiment defaults still
	// fill zero fields).
	Options Options
	// Parallel bounds the worker pool; <= 0 means runtime.NumCPU().
	Parallel int
	// Timeout, when > 0, bounds the whole run. Experiments not yet
	// started when it expires are marked StatusSkipped; in-flight ones are
	// cancelled through their context (the simulations poll for
	// cancellation) and are likewise marked StatusSkipped.
	Timeout time.Duration
	// Progress, when non-nil, is called from a single goroutine as each
	// experiment finishes, in completion (not ID) order.
	Progress func(*ExperimentResult)
}

// ExperimentResult is one experiment's outcome within a suite.
type ExperimentResult struct {
	ID     string
	Title  string
	Paper  string
	Status Status
	// Report is the experiment output when Status == StatusOK.
	Report *Report
	// Err holds the failure when Status == StatusError.
	Err error
	// WallSeconds is the experiment's real (not simulated) runtime.
	WallSeconds float64
}

// SuiteResult is a completed suite run. Results are in experiment ID order
// regardless of worker count or completion order.
type SuiteResult struct {
	Results []*ExperimentResult
	Options Options
	// Parallel is the worker count actually used.
	Parallel int
	// WallSeconds is the whole suite's real runtime.
	WallSeconds float64
	// OK, Failed and Skipped count experiment outcomes.
	OK, Failed, Skipped int
}

// AggregateValues merges every successful experiment's Values into one map
// keyed "<experiment id>.<value key>". Map iteration aside, the contents are
// deterministic for a given seed: each experiment is seeded independently of
// scheduling.
func (r *SuiteResult) AggregateValues() map[string]float64 {
	out := map[string]float64{}
	for _, er := range r.Results {
		if er.Report == nil {
			continue
		}
		for k, v := range er.Report.Values {
			out[er.ID+"."+k] = v
		}
	}
	return out
}

// Run executes the suite. The returned SuiteResult is always complete (one
// entry per experiment, in ID order); the error is non-nil only when ctx —
// or the Timeout-derived deadline — expired before every experiment started,
// in which case unstarted experiments carry StatusSkipped.
func (s *Suite) Run(ctx context.Context) (*SuiteResult, error) {
	exps := s.Experiments
	if exps == nil {
		exps = List()
	} else {
		exps = append([]*Experiment(nil), exps...)
		sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	}
	workers := s.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) && len(exps) > 0 {
		workers = len(exps)
	}
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}

	start := time.Now()
	results := make([]*ExperimentResult, len(exps))
	indices := make(chan int)
	done := make(chan *ExperimentResult)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				res := runSuiteExperiment(ctx, exps[i], s.Options)
				results[i] = res
				done <- res
			}
		}()
	}

	// Feed indices until the context dies; the remainder are skipped.
	go func() {
		defer close(indices)
		for i := range exps {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	for res := range done {
		if s.Progress != nil {
			s.Progress(res)
		}
	}

	out := &SuiteResult{
		Results:     results,
		Options:     s.Options,
		Parallel:    workers,
		WallSeconds: time.Since(start).Seconds(),
	}
	for i, e := range exps {
		if out.Results[i] == nil {
			out.Results[i] = &ExperimentResult{
				ID: e.ID, Title: e.Title, Paper: e.Paper,
				Status: StatusSkipped,
			}
		}
		switch out.Results[i].Status {
		case StatusOK:
			out.OK++
		case StatusError:
			out.Failed++
		case StatusSkipped:
			out.Skipped++
		}
	}
	if out.Skipped > 0 {
		return out, fmt.Errorf("experiments: suite interrupted, %d of %d experiments skipped: %w",
			out.Skipped, len(exps), ctx.Err())
	}
	return out, nil
}

// runSuiteExperiment executes one experiment, isolating errors and panics so
// a single failure cannot take down the suite or its worker.
func runSuiteExperiment(ctx context.Context, e *Experiment, o Options) (res *ExperimentResult) {
	start := time.Now()
	res = &ExperimentResult{ID: e.ID, Title: e.Title, Paper: e.Paper}
	defer func() {
		if p := recover(); p != nil {
			res.Status = StatusError
			res.Err = fmt.Errorf("experiment %s: panic: %v", e.ID, p)
		}
		res.WallSeconds = time.Since(start).Seconds()
	}()
	if err := ctx.Err(); err != nil {
		res.Status = StatusSkipped
		return res
	}
	o = o.withDefaults(e.DefaultScale)
	rep, err := e.Run(ctx, o)
	if err != nil {
		// An experiment aborted by the suite deadline is "skipped", not
		// "failed": the experiment itself did nothing wrong.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			res.Status = StatusSkipped
			return res
		}
		res.Status = StatusError
		res.Err = fmt.Errorf("experiment %s: %w", e.ID, err)
		return res
	}
	rep.ID, rep.Title, rep.Paper = e.ID, e.Title, e.Paper
	res.Status = StatusOK
	res.Report = rep
	return res
}

// SelectIDs resolves a set of experiment IDs into registry entries, for
// building a Suite over a subset of the registry.
func SelectIDs(ids []string) ([]*Experiment, error) {
	out := make([]*Experiment, 0, len(ids))
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
