package experiments

import (
	"context"
	"datastall/internal/cache"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/dsanalyzer"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/pagecache"
	"datastall/internal/prep"
	"datastall/internal/stats"
	"datastall/internal/storage"
	"datastall/internal/trainer"
)

func init() {
	register(&Experiment{
		ID:           "fig1",
		Title:        "ResNet18 data-pipeline component rates (8xV100, 24 cores)",
		Paper:        "HDD 15, SSD 530, cache-mix 802, CPU prep 735, hybrid prep 1062, GPU demand 2283 MB/s",
		DefaultScale: 1, // analytic: no training run
		Run:          runFig1,
	})
	register(&Experiment{
		ID:           "fig2",
		Title:        "Fetch stalls across 9 DNNs at 35% cache (Config-SSD-V100)",
		Paper:        "DNNs spend 10-70% of epoch time blocked on I/O",
		DefaultScale: 0.004,
		Run:          runFig2,
	})
	register(&Experiment{
		ID:           "fig3",
		Title:        "ResNet18 epoch split vs cache size (compute / ideal fetch / thrashing)",
		Paper:        "page cache fetches ~85% of the dataset at 35% cache (20pp thrashing)",
		DefaultScale: 0.02,
		Run:          runFig3,
	})
	register(&Experiment{
		ID:           "fig4",
		Title:        "Training throughput vs CPU prep threads per GPU",
		Paper:        "ResNet50 masks prep with 3-4 cores/GPU; ResNet18 ~12; AlexNet ~24",
		DefaultScale: 0.01,
		Run:          runFig4,
	})
	register(&Experiment{
		ID:           "fig5",
		Title:        "ResNet18 8-GPU prep stalls: DALI CPU vs GPU prep, V100 vs 1080Ti",
		Paper:        "GPU prep eliminates stalls on 1080Ti but leaves ~50% on V100",
		DefaultScale: 0.01,
		Run:          runFig5,
	})
	register(&Experiment{
		ID:           "fig6",
		Title:        "Prep stalls across DNNs (8 GPUs, 3 cores/GPU, dataset cached)",
		Paper:        "DNNs spend 5-65% of epoch time on blocking prep",
		DefaultScale: 0.004,
		Run:          runFig6,
	})
	register(&Experiment{
		ID:           "table3",
		Title:        "TensorFlow TFRecord data stalls (miss rate, disk I/O, HP read amplification)",
		Paper:        "91-97% cache misses; 6.1-7.3x read amplification for 8-job HP search",
		DefaultScale: 0.02,
		Run:          runTable3,
	})
	register(&Experiment{
		ID:           "fig8",
		Title:        "MinIO vs OS page cache on the worked 4-item example",
		Paper:        "MinIO takes exactly capacity misses/epoch; LRU thrashes between 2-4",
		DefaultScale: 1,
		Run:          runFig8,
	})
	register(&Experiment{
		ID:           "fig12",
		Title:        "ResNet18 prep stall vs vCPUs per GPU (hyperthreading, Appendix B.1)",
		Paper:        "8 vCPUs/GPU still leaves ~37% prep stall; HT adds only ~30%",
		DefaultScale: 0.01,
		Run:          runFig12,
	})
	register(&Experiment{
		ID:           "fig13",
		Title:        "PyTorch DL vs DALI-CPU vs DALI-GPU epoch time (Appendix B.2)",
		Paper:        "DALI dominates PyTorch DL; GPU prep hurts ResNet50/VGG11",
		DefaultScale: 0.01,
		Run:          runFig13,
	})
	register(&Experiment{
		ID:           "fig14",
		Title:        "MobileNetV2 epoch time and prep stall vs batch size (Appendix B.3)",
		Paper:        "larger batches shrink compute but epoch time is pinned by prep",
		DefaultScale: 0.01,
		Run:          runFig14,
	})
}

// runFig1 derives the published pipeline rates from the calibrated component
// models (no simulation needed; this is the calibration anchor).
func runFig1(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K
	avg := d.AvgItemBytes()
	const mb = 1024.0 * 1024

	hdd := storage.HDD.EffectiveRandomBW(avg)
	ssd := storage.SSD.EffectiveRandomBW(avg)
	memBW := cluster.ConfigSSDV100().MemBW
	// Effective fetch rate with 35% of the dataset cached (Fig 1's mix).
	mix := 1 / (0.35/memBW + 0.65/ssd)
	cpuPrep := 24 * m.PrepCPUBytes
	hybrid := cpuPrep + 8*m.PrepGPUBytesV100
	demand := 8 * m.GV100 * avg

	r := &Report{Table: &stats.Table{
		Title:   "Pipeline component rates (MB/s)",
		Columns: []string{"component", "modelled", "paper"},
	}}
	row := func(name string, v, paper float64, key string) {
		r.Table.AddRow(name, v/mb, paper)
		r.set(key, v/mb)
	}
	row("fetch: HDD random", hdd, 15, "hdd_mbps")
	row("fetch: SSD random", ssd, 530, "ssd_mbps")
	row("fetch: 35% cache + SSD", mix, 802, "mix_mbps")
	row("prep: 24-core DALI CPU", cpuPrep, 735, "cpu_prep_mbps")
	row("prep: CPU + 8-GPU hybrid", hybrid, 1062, "hybrid_prep_mbps")
	row("GPU ingestion demand", demand, 2283, "gpu_demand_mbps")
	return r, nil
}

// fig2Models lists the nine models in Table 1 order.
var fig2Models = []string{
	"shufflenetv2", "alexnet", "resnet18", "squeezenet",
	"mobilenetv2", "resnet50", "vgg11", "ssd-res18", "audio-m5",
}

func runFig2(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "Fetch stalls at 35% cache, Config-SSD-V100",
		Columns: []string{"model", "dataset", "fetch stall %", "prep stall %"},
	}}
	for _, name := range fig2Models {
		m := gpu.MustByName(name)
		d := scaled(m, o)
		p, err := dsanalyzer.Analyze(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: loader.DALIShuffle, CacheBytes: 0.35 * d.TotalBytes,
			Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(name, m.DefaultDataset, pct(p.FetchStallFrac), pct(p.PrepStallFrac))
		r.set("fetch_stall_"+name, pct(p.FetchStallFrac))
	}
	return r, nil
}

func runFig3(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K.Scale(o.Scale)
	spec := cluster.ConfigSSDV100()
	r := &Report{Table: &stats.Table{
		Title:   "ResNet18 epoch time split vs cache size",
		Columns: []string{"cache %", "compute s", "ideal fetch stall s", "thrashing s", "% dataset fetched (page cache)"},
	}}
	syn, err := mustRun(ctx, trainer.Config{Model: m, Dataset: d, Spec: spec,
		FetchMode: trainer.Synthetic, Epochs: o.Epochs, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.20, 0.35, 0.50, 0.65, 0.80} {
		cacheBytes := frac * d.TotalBytes
		ideal, err := mustRun(ctx, trainer.Config{Model: m, Dataset: d, Spec: spec,
			Loader: loader.CoorDL, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		pc, err := mustRun(ctx, trainer.Config{Model: m, Dataset: d, Spec: spec,
			Loader: loader.DALIShuffle, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		idealStall := ideal.EpochTime - syn.EpochTime
		if idealStall < 0 {
			idealStall = 0
		}
		thrash := pc.EpochTime - ideal.EpochTime
		if thrash < 0 {
			thrash = 0
		}
		fetched := pct(pc.DiskPerEpoch / d.TotalBytes)
		r.Table.AddRow(pct(frac), syn.EpochTime, idealStall, thrash, fetched)
		if frac == 0.35 {
			r.set("fetched_pct_at_35", fetched)
			r.set("thrash_seconds_at_35", thrash)
		}
	}
	r.Notes = "at 35% cache an ideal cache fetches 65% of the dataset; the page cache fetches more (thrashing, §3.3.1)"
	return r, nil
}

func runFig4(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "Per-GPU throughput (samples/s) vs CPU prep threads, dataset cached",
		Columns: []string{"model", "3", "6", "12", "24", "ingestion rate G"},
	}}
	for _, name := range []string{"resnet50", "mobilenetv2", "resnet18", "alexnet"} {
		m := gpu.MustByName(name)
		d := scaled(m, o)
		row := []interface{}{name}
		for _, cores := range []int{3, 6, 12, 24} {
			res, err := mustRun(ctx, trainer.Config{
				Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
				GPUsPerServer: 1, ThreadsPerGPU: cores,
				FetchMode: trainer.FullyCached, GPUPrep: trainer.GPUPrepOff,
				Epochs: o.Epochs, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, res.Throughput)
			if cores == 3 {
				r.set("throughput3_"+name, res.Throughput)
			}
			if cores == 24 {
				r.set("throughput24_"+name, res.Throughput)
			}
		}
		row = append(row, m.GV100)
		r.Table.AddRow(row...)
	}
	return r, nil
}

// fig5Spec is runFig5 as data: the server axis crossed with the GPU-prep
// sweep. The GPU-prep figure is the canonical small sweep, so it doubles as
// the template for user-authored -spec files.
var fig5Spec = registerSpec(&Spec{
	Name:      "fig5",
	Title:     "ResNet18 8-GPU prep stall %, 3 CPU threads/GPU, dataset cached",
	RowHeader: []string{"server"},
	Base: JobSpec{
		Model: "resnet18", Dataset: "imagenet-1k",
		ThreadsPerGPU: 3, FetchMode: "fully-cached",
	},
	Rows: Axis{Cases: []Case{
		{Cells: []string{"v100"}, Set: JobSpec{Server: "config-ssd-v100"}},
		{Cells: []string{"1080ti"}, Set: JobSpec{Server: "config-hdd-1080ti"}},
	}},
	Sweep: &Axis{Param: "gpu_prep", Values: rawStrings("off", "on")},
	Columns: []Column{
		{Label: "CPU prep", Metric: "stall_pct", Of: "off"},
		{Label: "CPU+GPU prep", Metric: "stall_pct", Of: "on", Key: "prep_stall_gpuprep_{row}"},
	},
})

func runFig5(ctx context.Context, o Options) (*Report, error) {
	return RunSpec(ctx, fig5Spec, o)
}

func runFig6(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "Prep stalls, 8 GPUs x 3 cores, Config-SSD-V100, dataset cached",
		Columns: []string{"model", "prep stall %"},
	}}
	for _, name := range fig2Models {
		m := gpu.MustByName(name)
		d := scaled(m, o)
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(), ThreadsPerGPU: 3,
			FetchMode: trainer.FullyCached, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(name, pct(res.StallFraction))
		r.set("prep_stall_"+name, pct(res.StallFraction))
	}
	return r, nil
}

func runTable3(ctx context.Context, o Options) (*Report, error) {
	// TensorFlow serializes the dataset into ~1000 record files of
	// 100-200 MB and each job visits the records in its own shuffled
	// order (§3.3.3). The cache therefore operates at record granularity:
	// model records as the items of a derived dataset (record sizes scale
	// with o.Scale; the record *count* is what drives cache behaviour).
	records := &dataset.Dataset{
		Name:       "imagenet-1k-tfrecords",
		Task:       "image",
		NumItems:   1000,
		TotalBytes: dataset.ImageNet1K.TotalBytes * o.Scale,
	}
	spec := cluster.ConfigSSDV100()
	m := gpu.MustByName("resnet18")
	r := &Report{Table: &stats.Table{
		Title:   "TFRecord-format data stalls (TensorFlow, §3.3.3)",
		Columns: []string{"% cached", "8-GPU miss %", "HP disk IO (GiB/ep)", "HP read amp", "paper miss %", "paper amp"},
	}}
	paperMiss := map[float64]float64{0.50: 91, 0.35: 94, 0.25: 97}
	paperAmp := map[float64]float64{0.50: 6.14, 0.35: 7.21, 0.25: 7.28}
	for _, frac := range []float64{0.50, 0.35, 0.25} {
		base := trainer.Config{
			Model: m, Dataset: records, Spec: spec,
			Loader: loader.DALIShuffle, Batch: 8, // 8 records per iteration
			CacheBytes: frac * records.TotalBytes, Epochs: o.Epochs, Seed: o.Seed,
		}
		single, err := mustRun(ctx, base)
		if err != nil {
			return nil, err
		}
		missPct := pct(1 - single.HitRate)
		hp, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: 8, GPUsPerJob: 1,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(pct(frac), missPct, gib(hp.DiskPerEpoch),
			hp.ReadAmplification, paperMiss[frac], paperAmp[frac])
		if frac == 0.35 {
			r.set("miss_pct_at_35", missPct)
			r.set("read_amp_at_35", hp.ReadAmplification)
		}
	}
	return r, nil
}

func runFig8(ctx context.Context, o Options) (*Report, error) {
	// The worked example: dataset {A,B,C,D}, cache of 2, two epochs.
	epochs := [][]dataset.ItemID{{2, 1, 0, 3}, {1, 2, 3, 0}}
	minio := cache.NewMinIO(2)
	lru := pagecache.New(pagecache.LRU, 2, o.Seed)
	minio.Insert(3, 1) // warm with D, B as in Fig 8
	minio.Insert(1, 1)
	lru.Insert(3, 1)
	lru.Insert(1, 1)
	r := &Report{Table: &stats.Table{
		Title:   "Cache hits per epoch, 4-item dataset, capacity 2",
		Columns: []string{"epoch", "MinIO hits", "LRU hits"},
	}}
	for e, order := range epochs {
		minio.ResetStats()
		lru.ResetStats()
		for _, id := range order {
			if !minio.Lookup(id) {
				minio.Insert(id, 1)
			}
			if !lru.Lookup(id) {
				lru.Insert(id, 1)
			}
		}
		r.Table.AddRow(e+1, minio.Hits(), lru.Hits())
		r.set(fmt2("minio_hits_epoch", e+1), float64(minio.Hits()))
		r.set(fmt2("lru_hits_epoch", e+1), float64(lru.Hits()))
	}
	return r, nil
}

func fmt2(prefix string, n int) string {
	return prefix + string(rune('0'+n))
}

func runFig12(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	d := dataset.ImageNet1K.Scale(o.Scale)
	spec := cluster.HighCPUV100() // 32 cores / 64 vCPUs (Appendix B.1)
	r := &Report{Table: &stats.Table{
		Title:   "ResNet18 8-GPU prep stall vs vCPUs per GPU (64-vCPU server)",
		Columns: []string{"vCPUs/GPU", "prep stall %", "throughput"},
	}}
	for _, threads := range []int{3, 4, 6, 8} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: spec, ThreadsPerGPU: threads,
			FetchMode: trainer.FullyCached, GPUPrep: trainer.GPUPrepOn,
			Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r.Table.AddRow(threads, pct(res.StallFraction), res.Throughput)
		if threads == 8 {
			r.set("prep_stall_8vcpu", pct(res.StallFraction))
		}
		if threads == 3 {
			r.set("prep_stall_3vcpu", pct(res.StallFraction))
		}
	}
	return r, nil
}

func runFig13(ctx context.Context, o Options) (*Report, error) {
	d := dataset.ImageNet1K.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "Epoch time (s): PyTorch DL vs DALI CPU vs DALI GPU, dataset cached",
		Columns: []string{"model", "pytorch-dl", "dali-cpu", "dali-gpu"},
	}}
	for _, m := range gpu.ImageModels() {
		times := make([]float64, 0, 3)
		for _, variant := range []struct {
			fw   prep.Framework
			mode trainer.GPUPrepMode
		}{
			{prep.PyTorchNative, trainer.GPUPrepOff},
			{prep.DALI, trainer.GPUPrepOff},
			{prep.DALI, trainer.GPUPrepOn},
		} {
			res, err := mustRun(ctx, trainer.Config{
				Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
				ThreadsPerGPU: 3, Framework: variant.fw, GPUPrep: variant.mode,
				FetchMode: trainer.FullyCached, Epochs: o.Epochs, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			times = append(times, res.EpochTime)
		}
		r.Table.AddRow(m.Name, times[0], times[1], times[2])
		r.set("pytorch_over_dali_"+m.Name, times[0]/times[1])
		r.set("dali_gpu_"+m.Name, times[2])
		r.set("dali_cpu_"+m.Name, times[1])
	}
	r.Notes = "GPU prep should win for prep-starved light models but lose for ResNet50/VGG11 (compute interference)"
	return r, nil
}

func runFig14(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("mobilenetv2")
	d, _ := dataset.ByName("openimages")
	d = d.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "MobileNetV2 vs per-GPU batch size, dataset cached (8xV100, 3 cores/GPU)",
		Columns: []string{"batch", "compute s", "epoch s", "prep stall %"},
	}}
	for _, b := range []int{64, 128, 256, 512} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Batch: b, ThreadsPerGPU: 3, FetchMode: trainer.FullyCached,
			Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		compute := res.EpochTime * (1 - res.StallFraction)
		r.Table.AddRow(b, compute, res.EpochTime, pct(res.StallFraction))
		r.set(fmtBatch("epoch_s_b", b), res.EpochTime)
		r.set(fmtBatch("compute_s_b", b), compute)
	}
	r.Notes = "compute shrinks with batch size but epoch time is pinned by prep (Appendix B.3)"
	return r, nil
}

func fmtBatch(prefix string, b int) string {
	return prefix + itoa(b)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
