package experiments

import (
	"context"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/stats"
	"datastall/internal/trainer"
)

func init() {
	register(&Experiment{
		ID:           "fig9a",
		Title:        "Single-server 8-GPU training: CoorDL vs DALI-seq/DALI-shuffle",
		Paper:        "up to 1.8x over DALI-seq on SSD; 2.1x/1.53x on HDD (ResNet50)",
		DefaultScale: 0.01,
		Run:          runFig9a,
	})
	register(&Experiment{
		ID:           "fig9b",
		Title:        "2-server distributed training: partitioned caching vs DALI",
		Paper:        "up to 15x on HDD (AlexNet); 1.3x ShuffleNet/IN22k, 2.9x M5 on SSD",
		DefaultScale: 0.006,
		Run:          runFig9b,
	})
	register(&Experiment{
		ID:           "fig9d",
		Title:        "8-job HP search: coordinated prep vs DALI",
		Paper:        "3x AlexNet/ShuffleNet, 5.6x audio M5, 1.9x ResNet50",
		DefaultScale: 0.002,
		Run:          runFig9d,
	})
	register(&Experiment{
		ID:           "fig9e",
		Title:        "AlexNet HP-search job shapes: 8x1, 4x2, 2x4, 1x8 GPUs",
		Paper:        "coordination helps most with many concurrent jobs; 1 job = MinIO only",
		DefaultScale: 0.002,
		Run:          runFig9e,
	})
	register(&Experiment{
		ID:           "fig10",
		Title:        "ResNet50/ImageNet-1k time to 75.9% top-1 on 2 HDD servers",
		Paper:        "CoorDL reaches target in ~12h vs ~2 days for DALI (4x)",
		DefaultScale: 0.01,
		Run:          runFig10,
	})
	register(&Experiment{
		ID:           "fig11",
		Title:        "Disk I/O pattern over time: DALI vs CoorDL (ResNet18/OpenImages)",
		Paper:        "DALI's hits cluster early then it turns disk-bound; MinIO I/O is uniform and epochs end sooner",
		DefaultScale: 0.004,
		Run:          runFig11,
	})
	register(&Experiment{
		ID:           "table6",
		Title:        "Cache misses and disk I/O: DALI-seq/shuffle vs CoorDL (ShuffleNet/OpenImages)",
		Paper:        "misses 66%/53%/35%; disk I/O 422/340/225 GB",
		DefaultScale: 0.004,
		Run:          runTable6,
	})
	register(&Experiment{
		ID:           "table7",
		Title:        "HP search on fully-cached ImageNet-1k: per-job speedup",
		Paper:        "1.87x AlexNet ... 1.21x ResNet50 (eliminating redundant prep)",
		DefaultScale: 0.004,
		Run:          runTable7,
	})
	register(&Experiment{
		ID:           "fig17",
		Title:        "8-job HP search on ImageNet-22k",
		Paper:        "up to 2.5x speedup across the image models",
		DefaultScale: 0.0008,
		Run:          runFig17,
	})
	register(&Experiment{
		ID:           "fig18",
		Title:        "Partitioned-cache scalability: ResNet50/OpenImages on 1-4 HDD servers",
		Paper:        "DALI stays disk-bound (342/119/70/50 GB per node); CoorDL reads zero disk after epoch 1",
		DefaultScale: 0.002,
		Run:          runFig18,
	})
}

// fig9aSpec is runFig9a as data: the Table 1 model axis crossed with the
// loader sweep, speedups as ratio columns. Cache budget 400 GiB, datasets
// per the registry defaults.
var fig9aSpec = registerSpec(&Spec{
	Name:      "fig9a",
	Title:     "Single-server speedup over DALI baselines (Config-SSD-V100)",
	RowHeader: []string{"model", "dataset"},
	Base:      JobSpec{Server: "config-ssd-v100"},
	Rows: Axis{Cases: []Case{
		{Set: JobSpec{Model: "shufflenetv2"}},
		{Set: JobSpec{Model: "alexnet"}},
		{Set: JobSpec{Model: "resnet18"}},
		{Set: JobSpec{Model: "squeezenet"}},
		{Set: JobSpec{Model: "mobilenetv2"}},
		{Set: JobSpec{Model: "ssd-res18"}},
		{Set: JobSpec{Model: "audio-m5"}},
	}},
	Sweep: &Axis{Param: "loader", Values: rawStrings("dali-seq", "dali-shuffle", "coordl")},
	Columns: []Column{
		{Label: "dali-seq s", Metric: "epoch_s", Of: "dali-seq"},
		{Label: "dali-shuffle s", Metric: "epoch_s", Of: "dali-shuffle"},
		{Label: "coordl s", Metric: "epoch_s", Of: "coordl"},
		{Label: "vs seq", Metric: "epoch_s", Of: "dali-seq", Over: "coordl", Key: "speedup_seq_{row}"},
		{Label: "vs shuffle", Metric: "epoch_s", Of: "dali-shuffle", Over: "coordl", Key: "speedup_shuffle_{row}"},
	},
})

func runFig9a(ctx context.Context, o Options) (*Report, error) {
	return RunSpec(ctx, fig9aSpec, o)
}

func runFig9b(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "2-server distributed training speedup (throughput, CoorDL vs DALI-shuffle)",
		Columns: []string{"model", "dataset", "server", "dali samp/s", "coordl samp/s", "speedup"},
	}}
	// Model/dataset/SKU pairings follow §5.2: AlexNet and ResNet18 on
	// OpenImages over HDD servers (aggregate memory holds the dataset);
	// ShuffleNet/ImageNet-22k and M5/FMA on SSD servers.
	cases := []struct {
		model string
		data  string
		spec  cluster.ServerSpec
	}{
		{"alexnet", "openimages", cluster.ConfigHDD1080Ti()},
		{"resnet18", "openimages", cluster.ConfigHDD1080Ti()},
		{"shufflenetv2", "imagenet-22k", cluster.ConfigSSDV100()},
		{"audio-m5", "fma", cluster.ConfigSSDV100()},
	}
	for _, c := range cases {
		m := gpu.MustByName(c.model)
		full, _ := dataset.ByName(c.data)
		d := full.Scale(o.Scale)
		cacheBytes := cacheFor(d, full, 400*stats.GiB)
		batch := 0
		if m.Task == "image" {
			batch = 128 // keep several iterations per epoch at small scale
		}
		var thr []float64
		for _, k := range []loader.Kind{loader.DALIShuffle, loader.CoorDL} {
			res, err := mustRun(ctx, trainer.Config{
				Model: m, Dataset: d, Spec: c.spec, NumServers: 2, Batch: batch,
				Loader: k, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			thr = append(thr, res.Throughput)
		}
		r.Table.AddRow(c.model, c.data, c.spec.Gen.String(), thr[0], thr[1], thr[1]/thr[0])
		r.set("speedup_"+c.model, thr[1]/thr[0])
	}
	return r, nil
}

// hpSpeedups runs the 8x1-GPU HP-search comparison for the given models on
// their datasets (or a fixed dataset if fixed != nil).
func hpSpeedups(ctx context.Context, o Options, models []string, fixed *dataset.Dataset, fullyCached bool, r *Report) error {
	for _, name := range models {
		m := gpu.MustByName(name)
		var d *dataset.Dataset
		var cacheBytes float64
		if fixed != nil {
			d = fixed
			cacheBytes = d.TotalBytes
		} else {
			full, _ := dataset.ByName(m.DefaultDataset)
			d = full.Scale(o.Scale)
			cacheBytes = cacheFor(d, full, 400*stats.GiB)
		}
		base := trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed,
		}
		if fullyCached {
			base.FetchMode = trainer.FullyCached
		}
		// Keep >= ~8 iterations per job per epoch at small scale without
		// falling into the batch-scaling penalty region.
		b := m.RefBatch(gpu.V100)
		if b > 256 {
			b = 256
		}
		for b > 8 && b > d.NumItems/8 {
			b /= 2
		}
		base.Batch = b
		indep, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: 8, GPUsPerJob: 1,
		})
		if err != nil {
			return err
		}
		coord, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true,
		})
		if err != nil {
			return err
		}
		sp := indep.Jobs[0].EpochTime / coord.Jobs[0].EpochTime
		r.Table.AddRow(name, indep.Jobs[0].SamplesPerSec, coord.Jobs[0].SamplesPerSec, sp,
			gib(indep.DiskPerEpoch), gib(coord.DiskPerEpoch))
		r.set("speedup_"+name, sp)
	}
	return nil
}

func runFig9d(ctx context.Context, o Options) (*Report, error) {
	r := &Report{Table: &stats.Table{
		Title:   "8-job HP search, Config-SSD-V100 (per-job throughput)",
		Columns: []string{"model", "dali samp/s", "coordl samp/s", "speedup", "dali disk GiB/ep", "coordl disk GiB/ep"},
	}}
	models := []string{"alexnet", "shufflenetv2", "resnet18", "resnet50", "audio-m5"}
	if err := hpSpeedups(ctx, o, models, nil, false, r); err != nil {
		return nil, err
	}
	return r, nil
}

func runFig9e(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("alexnet")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := cacheFor(d, full, 400*stats.GiB)
	r := &Report{Table: &stats.Table{
		Title:   "AlexNet/OpenImages HP-search shapes (aggregate samples/s)",
		Columns: []string{"config", "dali", "coordl", "speedup"},
	}}
	base := trainer.Config{
		Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
		CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed, Batch: 128,
	}
	shapes := []struct {
		jobs, gpus int
		label      string
	}{
		{8, 1, "8 jobs x 1 GPU"},
		{4, 2, "4 jobs x 2 GPU"},
		{2, 4, "2 jobs x 4 GPU"},
	}
	for _, sh := range shapes {
		indep, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: sh.jobs, GPUsPerJob: sh.gpus,
		})
		if err != nil {
			return nil, err
		}
		coord, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{
			Base: base, NumJobs: sh.jobs, GPUsPerJob: sh.gpus, Coordinated: true,
		})
		if err != nil {
			return nil, err
		}
		di := aggThroughput(indep)
		co := aggThroughput(coord)
		r.Table.AddRow(sh.label, di, co, co/di)
		r.set("speedup_"+itoa(sh.jobs)+"x"+itoa(sh.gpus), co/di)
	}
	// 1 job x 8 GPUs: coordination is moot; the benefit is MinIO (§5.3).
	single := base
	single.GPUsPerServer = 8
	dali, err := mustRun(ctx, withLoader(single, loader.DALIShuffle))
	if err != nil {
		return nil, err
	}
	coordl, err := mustRun(ctx, withLoader(single, loader.CoorDL))
	if err != nil {
		return nil, err
	}
	r.Table.AddRow("1 job x 8 GPU", dali.Throughput, coordl.Throughput, coordl.Throughput/dali.Throughput)
	r.set("speedup_1x8", coordl.Throughput/dali.Throughput)
	return r, nil
}

func withLoader(cfg trainer.Config, k loader.Kind) trainer.Config {
	cfg.Loader = k
	return cfg
}

func aggThroughput(cr *trainer.ConcurrentResult) float64 {
	t := 0.0
	for _, j := range cr.Jobs {
		t += j.SamplesPerSec
	}
	return t
}

func runFig10(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet50")
	d := dataset.ImageNet1K.Scale(o.Scale)
	spec := cluster.ConfigHDD1080Ti()
	cacheBytes := 0.5 * d.TotalBytes // each server caches 50% (§5.4)
	r := &Report{Table: &stats.Table{
		Title:   "ResNet50 time-to-75.9% top-1, 16 GPUs / 2 HDD servers",
		Columns: []string{"loader", "epoch s (scaled)", "epochs to target", "hours (at paper scale)"},
	}}
	curve := trainer.ResNet50ImageNet
	epochsNeeded, _ := curve.EpochsToAccuracy(0.759)
	var hrs []float64
	for _, k := range []loader.Kind{loader.DALIShuffle, loader.CoorDL} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: spec, NumServers: 2,
			Loader: k, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Epoch time at paper scale = simulated epoch time / scale.
		fullEpoch := res.EpochTime / o.Scale
		h, _ := curve.TimeToAccuracy(fullEpoch, 0.759)
		hrs = append(hrs, h)
		r.Table.AddRow(k.String(), res.EpochTime, epochsNeeded, h)
	}
	r.set("dali_hours", hrs[0])
	r.set("coordl_hours", hrs[1])
	r.set("speedup", hrs[0]/hrs[1])
	return r, nil
}

func runFig11(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("resnet18")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := cacheFor(d, full, 400*stats.GiB)
	type trace struct {
		buckets []float64
		total   float64
		horizon float64
	}
	runT := func(k loader.Kind) (*trace, error) {
		res, err := trainer.RunContext(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: k, CacheBytes: cacheBytes, Epochs: 2,
			Seed: o.Seed,
		}, trainer.DiskTraceObserver())
		if err != nil {
			return nil, err
		}
		h := res.TotalTime
		w := h / 12
		return &trace{buckets: res.DiskTrace.Bucketize(w, h), total: res.TotalDiskBytes, horizon: h}, nil
	}
	dali, err := runT(loader.DALIShuffle)
	if err != nil {
		return nil, err
	}
	coordl, err := runT(loader.CoorDL)
	if err != nil {
		return nil, err
	}
	r := &Report{Table: &stats.Table{
		Title:   "Disk I/O per time window (MiB; 12 windows over each 2-epoch run)",
		Columns: []string{"window", "dali-shuffle", "coordl"},
	}}
	for i := 0; i < 12; i++ {
		r.Table.AddRow(i, dali.buckets[i]/stats.MiB, coordl.buckets[i]/stats.MiB)
	}
	r.set("dali_total_gib", gib(dali.total))
	r.set("coordl_total_gib", gib(coordl.total))
	r.set("coordl_runtime_frac", coordl.horizon/dali.horizon)
	// Uniformity: coefficient of variation of steady-epoch windows.
	r.set("coordl_cv", cv(coordl.buckets[6:]))
	r.set("dali_cv", cv(dali.buckets[6:]))
	r.Notes = "CoorDL's steady-state windows are more uniform and its run ends earlier"
	return r, nil
}

func cv(xs []float64) float64 {
	s := stats.Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - s.Mean) * (x - s.Mean)
	}
	return sqrt(varsum/float64(len(xs))) / s.Mean
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func runTable6(ctx context.Context, o Options) (*Report, error) {
	m := gpu.MustByName("shufflenetv2")
	full, _ := dataset.ByName("openimages")
	d := full.Scale(o.Scale)
	cacheBytes := 0.65 * d.TotalBytes
	r := &Report{Table: &stats.Table{
		Title:   "ShuffleNet/OpenImages, 65% cache, Config-SSD-V100",
		Columns: []string{"loader", "cache miss %", "disk IO (GiB/epoch)", "paper miss %", "paper IO (GB)"},
	}}
	paperMiss := map[loader.Kind]float64{loader.DALISeq: 66, loader.DALIShuffle: 53, loader.CoorDL: 35}
	paperIO := map[loader.Kind]float64{loader.DALISeq: 422, loader.DALIShuffle: 340, loader.CoorDL: 225}
	for _, k := range []loader.Kind{loader.DALISeq, loader.DALIShuffle, loader.CoorDL} {
		res, err := mustRun(ctx, trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			Loader: k, CacheBytes: cacheBytes, Epochs: o.Epochs, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		miss := pct(1 - res.HitRate)
		r.Table.AddRow(k.String(), miss, gib(res.DiskPerEpoch), paperMiss[k], paperIO[k])
		r.set("miss_"+k.String(), miss)
		r.set("diskgib_"+k.String(), gib(res.DiskPerEpoch))
	}
	return r, nil
}

func runTable7(ctx context.Context, o Options) (*Report, error) {
	d := dataset.ImageNet1K.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "8-job HP search, ImageNet-1k fully cached (per-job samples/s)",
		Columns: []string{"model", "dali samp/s", "coordl samp/s", "speedup", "dali disk GiB/ep", "coordl disk GiB/ep"},
	}}
	models := []string{"shufflenetv2", "alexnet", "resnet18", "squeezenet", "mobilenetv2", "resnet50", "vgg11"}
	if err := hpSpeedups(ctx, o, models, d, true, r); err != nil {
		return nil, err
	}
	return r, nil
}

func runFig17(ctx context.Context, o Options) (*Report, error) {
	full := dataset.ImageNet22K
	d := full.Scale(o.Scale)
	r := &Report{Table: &stats.Table{
		Title:   "8-job HP search on ImageNet-22k (35% cache)",
		Columns: []string{"model", "dali samp/s", "coordl samp/s", "speedup", "dali disk GiB/ep", "coordl disk GiB/ep"},
	}}
	for _, name := range []string{"shufflenetv2", "alexnet", "resnet18"} {
		m := gpu.MustByName(name)
		base := trainer.Config{
			Model: m, Dataset: d, Spec: cluster.ConfigSSDV100(),
			CacheBytes: 0.35 * d.TotalBytes, Epochs: o.Epochs, Seed: o.Seed, Batch: 128,
		}
		indep, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{Base: base, NumJobs: 8, GPUsPerJob: 1})
		if err != nil {
			return nil, err
		}
		coord, err := trainer.RunConcurrentContext(ctx, trainer.ConcurrentConfig{Base: base, NumJobs: 8, GPUsPerJob: 1, Coordinated: true})
		if err != nil {
			return nil, err
		}
		sp := indep.Jobs[0].EpochTime / coord.Jobs[0].EpochTime
		r.Table.AddRow(name, indep.Jobs[0].SamplesPerSec, coord.Jobs[0].SamplesPerSec, sp,
			gib(indep.DiskPerEpoch), gib(coord.DiskPerEpoch))
		r.set("speedup_"+name, sp)
	}
	return r, nil
}

// fig18Spec is runFig18 as data: the server-count axis crossed with the
// loader sweep, per-node disk I/O and speedup as derived columns.
var fig18Spec = registerSpec(&Spec{
	Name:      "fig18",
	Title:     "ResNet50/OpenImages across 1-4 HDD servers",
	RowHeader: []string{"servers"},
	Base:      JobSpec{Model: "resnet50", Dataset: "openimages", Server: "config-hdd-1080ti"},
	Rows:      Axis{Param: "servers", Values: rawInts(1, 2, 3, 4)},
	Sweep:     &Axis{Param: "loader", Values: rawStrings("dali-shuffle", "coordl")},
	Columns: []Column{
		{Label: "dali samp/s", Metric: "samples_per_s", Of: "dali-shuffle"},
		{Label: "coordl samp/s", Metric: "samples_per_s", Of: "coordl"},
		{Label: "speedup", Metric: "samples_per_s", Of: "coordl", Over: "dali-shuffle", Key: "speedup_n{row}"},
		{Label: "dali disk GiB/node/ep", Metric: "disk_gib_per_node", Of: "dali-shuffle", Key: "dali_disk_n{row}"},
		{Label: "coordl disk GiB/node/ep", Metric: "disk_gib_per_node", Of: "coordl", Key: "coordl_disk_n{row}"},
	},
	Notes: "DALI per-node disk I/O falls with more nodes but stays disk-bound; CoorDL reads ~zero disk once the aggregate cache holds the dataset",
})

func runFig18(ctx context.Context, o Options) (*Report, error) {
	return RunSpec(ctx, fig18Spec, o)
}
