// The case grid behind a declarative Spec, split into its two halves:
// enumeration (which cells exist, in which order, resolving to which job)
// and assembly (turning one result per cell back into the Report). RunSpec
// is exactly enumerate -> run each cell -> assemble, so any executor that
// produces the same per-cell trainer.Results in cell order — the in-process
// loop, the suite orchestrator, or a stallserved coordinator scattering
// cells across a worker fleet — gathers a Report byte-identical to a
// single-node run by construction.
package experiments

import (
	"fmt"
	"strings"

	"datastall/internal/stats"
	"datastall/internal/trainer"
)

// SpecCase is one resolved cell of a spec's row x sweep grid: its position
// in execution (row-major) order, the axis labels RunSpec would report for
// it, and the fully overlaid JobSpec (base + row overlay + sweep overlay).
// Job.Build with the same Options RunSpec received resolves it into the
// exact trainer.Config the cell runs with, so a remote worker given (Job,
// Options) reproduces the cell bit for bit.
type SpecCase struct {
	// Index is the cell's position in execution order, 0-based; Total is
	// the grid size.
	Index int
	Total int
	// Row and Case are the axis labels ("" Case when the spec has no sweep
	// axis) — the same values CaseProgress carries.
	Row  string
	Case string
	// Job is the fully overlaid job description for this cell.
	Job JobSpec
}

// EnumerateCases expands a spec into its case grid in execution order —
// the scatter half of RunSpec. The cells are independent by construction
// (each resolves to its own trainer.Config), so they may run anywhere in
// any order; AssembleReport puts the results back together.
func EnumerateCases(sp *Spec, o Options) ([]SpecCase, error) {
	g, err := newSpecGrid(sp, o)
	if err != nil {
		return nil, err
	}
	return g.cases(), nil
}

// AssembleReport builds the spec's Report from one trainer.Result per grid
// cell, results[i] belonging to the cell EnumerateCases returns at Index i —
// the gather half of RunSpec. Given results produced by the same
// deterministic simulations RunSpec would run, the returned Report is
// byte-identical to a single-node RunSpec, regardless of where or in what
// order the cells actually executed.
func AssembleReport(sp *Spec, o Options, results []*trainer.Result) (*Report, error) {
	g, err := newSpecGrid(sp, o)
	if err != nil {
		return nil, err
	}
	if len(results) != g.total() {
		return nil, fmt.Errorf("spec %s: %d results for %d grid cells", sp.Name, len(results), g.total())
	}
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("spec %s: missing result for grid cell %d", sp.Name, i)
		}
	}
	return g.assemble(results)
}

// gridRow is one resolved point of the row axis: its label, its row-header
// cells, and the base job with the row overlay applied.
type gridRow struct {
	label string
	cells []interface{}
	job   JobSpec
}

// specGrid is a spec with both axes resolved and row labels settled — the
// shared state of enumeration and assembly.
type specGrid struct {
	sp    *Spec
	o     Options
	rows  []gridRow
	sweep []axisCase
}

// newSpecGrid validates the spec and resolves its axes. Row labels that
// derive from the resolved job (cells-less cases) are settled here, with
// the same uniqueness check RunSpec applied mid-run.
func newSpecGrid(sp *Spec, o Options) (*specGrid, error) {
	if err := sp.check(); err != nil {
		return nil, err
	}
	o = o.withDefaults(o.Scale)
	rows, err := sp.Rows.resolve()
	if err != nil {
		return nil, err
	}
	sweep := []axisCase{{}}
	if sp.Sweep != nil {
		if sweep, err = sp.Sweep.resolve(); err != nil {
			return nil, err
		}
	}
	g := &specGrid{sp: sp, o: o, sweep: sweep}
	seenRows := map[string]bool{}
	for _, row := range rows {
		js := sp.Base.overlay(row.set)
		cells := row.cells
		if cells == nil {
			cells = deriveCells(js, sp.RowHeader)
		}
		label := row.label
		if label == "" && len(cells) > 0 {
			label = cellString(cells[0])
		}
		if seenRows[label] {
			return nil, fmt.Errorf("spec %s: duplicate row label %q (labels key the {row} substitution and must be unique)",
				sp.Name, label)
		}
		seenRows[label] = true
		g.rows = append(g.rows, gridRow{label: label, cells: cells, job: js})
	}
	return g, nil
}

func (g *specGrid) total() int { return len(g.rows) * len(g.sweep) }

// cases flattens the grid in execution (row-major) order.
func (g *specGrid) cases() []SpecCase {
	total := g.total()
	out := make([]SpecCase, 0, total)
	for _, row := range g.rows {
		for _, sc := range g.sweep {
			out = append(out, SpecCase{
				Index: len(out), Total: total,
				Row: row.label, Case: sc.label,
				Job: row.job.overlay(sc.set),
			})
		}
	}
	return out
}

// assemble turns one result per cell (in execution order) into the Report.
// Each cell's config is rebuilt locally — resolution is deterministic and
// costs nothing next to a simulation — so the table's derived columns and
// the per-case capture see exactly what the cell ran with.
func (g *specGrid) assemble(results []*trainer.Result) (*Report, error) {
	sp := g.sp
	r := &Report{
		ID: sp.Name,
		Table: &stats.Table{
			Title:   sp.Title,
			Columns: append(append([]string{}, sp.RowHeader...), columnLabels(sp.Columns)...),
		},
		Notes: sp.Notes,
	}
	i := 0
	for _, row := range g.rows {
		rowResults := make(map[string]*trainer.Result, len(g.sweep))
		servers := make(map[string]int, len(g.sweep))
		cells := append(make([]interface{}, 0, len(row.cells)+len(sp.Columns)), row.cells...)
		for _, sc := range g.sweep {
			cfg, err := row.job.overlay(sc.set).build(g.o)
			if err != nil {
				return nil, err
			}
			res := results[i]
			i++
			rowResults[sc.label] = res
			servers[sc.label] = cfg.NumServers
			r.Cases = append(r.Cases, newCaseResult(sp.Name, row.label, sc.label, cfg, res))
		}
		for _, col := range sp.Columns {
			v := metricValue(col.Metric, rowResults[col.Of], servers[col.Of])
			if col.Over != "" {
				v /= metricValue(col.Metric, rowResults[col.Over], servers[col.Over])
			}
			cells = append(cells, v)
			if col.Key != "" {
				r.set(strings.ReplaceAll(col.Key, "{row}", row.label), v)
			}
		}
		r.Table.AddRow(cells...)
	}
	return r, nil
}
