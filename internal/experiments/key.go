// Canonical case keys for result memoization. A spec cell's cache address
// is the sha256 of a canonical JSON rendering of its *fully resolved*
// identity — the trainer.Config after every default is filled in — plus
// the engine-version salt. Resolution first, hashing second, is what makes
// the cache collapse syntactic variants: a spec that omits `batch` and a
// spec that pins the same model's reference batch hash to the same
// address, because they run the same simulation.
package experiments

import (
	"encoding/json"
	"fmt"

	"datastall/internal/memo"
	"datastall/internal/trainer"
)

// caseKeyJSON is the canonical key preimage. Field order is fixed by this
// struct (encoding/json emits struct fields in declaration order), and
// every field is a resolved scalar — catalog entries are represented by
// name plus the resolved numbers the run actually depends on, never by
// deep-marshalling catalog structs (which carry unexported fields a naive
// marshal would silently drop). Bump V on any change to this layout.
type caseKeyJSON struct {
	V    int    `json:"v"`
	Salt string `json:"salt"`

	Model        string  `json:"model"`
	Dataset      string  `json:"dataset"`
	Items        int     `json:"items"`
	DatasetBytes float64 `json:"dataset_bytes"`
	Server       string  `json:"server"`

	Servers  int `json:"servers"`
	GPUs     int `json:"gpus"`
	Batch    int `json:"batch"`
	Epochs   int `json:"epochs"`
	Threads  int `json:"threads_per_gpu"`
	Prefetch int `json:"prefetch_depth"`

	Framework int `json:"framework"`
	GPUPrep   int `json:"gpu_prep"`
	Loader    int `json:"loader"`
	FetchMode int `json:"fetch_mode"`
	Backend   int `json:"backend"`

	CacheBytes  float64 `json:"cache_bytes"`
	CacheShards int     `json:"cache_shards"`
	RecordBytes float64 `json:"record_bytes"`

	DisableRemoteFetch bool  `json:"disable_remote_fetch"`
	Seed               int64 `json:"seed"`
}

// CaseKey computes the content address of one case: js resolved under o
// (exactly as RunSpec resolves a grid cell), defaults filled by the
// trainer, rendered canonically, salted, and hashed. Two (JobSpec,
// Options) pairs that would run the same simulation produce the same key;
// any engine change rotates salt and with it every address.
func CaseKey(js JobSpec, o Options, salt string) (memo.Key, error) {
	cfg, err := js.Build(o)
	if err != nil {
		return memo.Key{}, err
	}
	rc := trainer.FromConfig(cfg).Config()
	pre := caseKeyJSON{
		V: 1, Salt: salt,
		Model:   rc.Model.Name,
		Dataset: rc.Dataset.Name, Items: rc.Dataset.NumItems, DatasetBytes: rc.Dataset.TotalBytes,
		Server:  rc.Spec.Name,
		Servers: rc.NumServers, GPUs: rc.GPUsPerServer,
		Batch: rc.Batch, Epochs: rc.Epochs,
		Threads: rc.ThreadsPerGPU, Prefetch: rc.PrefetchDepth,
		Framework: int(rc.Framework), GPUPrep: int(rc.GPUPrep),
		Loader: int(rc.Loader), FetchMode: int(rc.FetchMode), Backend: int(rc.Backend),
		CacheBytes: rc.CacheBytes, CacheShards: rc.CacheShards, RecordBytes: rc.RecordBytes,
		DisableRemoteFetch: rc.DisableRemoteFetch, Seed: rc.Seed,
	}
	b, err := json.Marshal(pre)
	if err != nil {
		return memo.Key{}, fmt.Errorf("memo key: %w", err)
	}
	return memo.KeyFromPreimage(b), nil
}
