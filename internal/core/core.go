// Package core implements CoorDL, the paper's coordinated data-loading
// library (§4). Its three techniques are:
//
//   - the MinIO software cache (§4.1), exposed here as MinIOFetcher;
//   - partitioned caching across the servers of a distributed job (§4.2),
//     exposed as PartitionedFetcher;
//   - coordinated prep for concurrent hyper-parameter-search jobs (§4.3),
//     exposed as the StagingArea plus the FailureDetector.
//
// The trainer package wires these into running jobs; this package contains
// the policy and coordination logic.
package core

import (
	"datastall/internal/cache"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// MinIOFetcher fetches through a per-server MinIO cache: items are cached on
// first fetch and never evicted, so every epoch after the first gets exactly
// capacity-many hits and disk I/O drops to the thrashing-free minimum.
type MinIOFetcher struct {
	Dataset *dataset.Dataset
	Cluster *cluster.Cluster
	Caches  []*cache.MinIO // one per server, shared across jobs
}

// NewMinIOFetcher builds MinIO caches of capBytes per server, pre-sized for
// the dataset's dense ID range so inserts never reallocate.
func NewMinIOFetcher(d *dataset.Dataset, c *cluster.Cluster, capBytes float64) *MinIOFetcher {
	f := &MinIOFetcher{Dataset: d, Cluster: c}
	for range c.Servers {
		f.Caches = append(f.Caches, cache.NewMinIOSized(capBytes, d.NumItems))
	}
	return f
}

// CacheUsedBytes reports MinIO occupancy summed across servers (surfaced by
// the trainer's EpochEnded observer events).
func (f *MinIOFetcher) CacheUsedBytes() float64 { return cache.SumUsedBytes(f.Caches) }

// FetchBatch implements loader.Fetcher.
func (f *MinIOFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) loader.FetchResult {
	var r loader.FetchResult
	mc := f.Caches[server]
	for _, id := range items {
		sz := f.Dataset.ItemBytes(id)
		if mc.Lookup(id) {
			r.MemBytes += sz
			r.Hits++
		} else {
			r.DiskBytes += sz
			r.DiskItems++
			r.Misses++
			mc.Insert(id, sz)
		}
	}
	srv := f.Cluster.Servers[server]
	srv.Disk.ReadRandom(p, r.DiskBytes, r.DiskItems)
	srv.Mem.Read(p, r.MemBytes)
	return r
}

// PartitionedFetcher adds partitioned caching on top of MinIO for
// distributed jobs: a local miss is first looked up in the MinIO caches of
// the job's other servers and, if found, fetched over TCP from remote DRAM
// instead of local storage (§4.2).
type PartitionedFetcher struct {
	Dataset *dataset.Dataset
	Cluster *cluster.Cluster
	Part    *cache.Partitioned
}

// NewPartitionedFetcher shards d across the cluster's servers with capBytes
// of MinIO cache each.
func NewPartitionedFetcher(d *dataset.Dataset, c *cluster.Cluster, capBytes float64, seed int64) *PartitionedFetcher {
	return &PartitionedFetcher{
		Dataset: d,
		Cluster: c,
		Part:    cache.NewPartitioned(d, len(c.Servers), capBytes, seed),
	}
}

// OwnerShards returns the static per-server shards used to populate the
// caches in the first epoch ("the dataset is sharded across all servers, and
// each server populates its local MinIO cache with the shard assigned to
// it", §4.2).
func (f *PartitionedFetcher) OwnerShards() []dataset.Shard {
	return f.Part.OwnerShards()
}

// CacheUsedBytes reports aggregate partitioned-cache occupancy.
func (f *PartitionedFetcher) CacheUsedBytes() float64 { return f.Part.AggregateUsedBytes() }

// FetchBatch implements loader.Fetcher: local MinIO hit -> DRAM; remote hit
// -> TCP from the owning server's DRAM; miss -> local storage (cached by the
// owner only).
func (f *PartitionedFetcher) FetchBatch(p *sim.Proc, server int, items []dataset.ItemID) loader.FetchResult {
	var r loader.FetchResult
	// Per-server accumulators, iterated in server order below: remote
	// fetches must hit the NIC queues in a reproducible order or simulated
	// timing varies run to run (map iteration order is randomized).
	remoteBytes := make([]float64, len(f.Cluster.Servers))
	remoteItems := make([]int, len(f.Cluster.Servers))
	for _, id := range items {
		sz := f.Dataset.ItemBytes(id)
		loc, src := f.Part.Lookup(server, id)
		switch loc {
		case cache.LocalHit:
			r.MemBytes += sz
			r.Hits++
		case cache.RemoteHit:
			remoteBytes[src] += sz
			remoteItems[src]++
			r.NetBytes += sz
			r.RemoteHit++
		default:
			r.DiskBytes += sz
			r.DiskItems++
			r.Misses++
			f.Part.Insert(server, id, sz)
		}
	}
	srv := f.Cluster.Servers[server]
	srv.Disk.ReadRandom(p, r.DiskBytes, r.DiskItems)
	for src, bytes := range remoteBytes {
		if bytes > 0 {
			f.Cluster.Fabric.RemoteFetch(p, server, src, bytes, remoteItems[src])
		}
	}
	srv.Mem.Read(p, r.MemBytes)
	return r
}

// Batch is one pre-processed minibatch in the staging area.
type Batch struct {
	// Index is the global batch index within the epoch.
	Index int
	// Owner is the HP-search job that produced it.
	Owner int
	// Items are the raw item IDs (for bookkeeping/tests).
	Items []dataset.ItemID
	// PreparedBytes is the staged tensor size.
	PreparedBytes float64
}

// StagingArea is the cross-job staging region of coordinated prep (§4.3):
// producers expose pre-processed minibatches; each of the nJobs concurrent
// jobs consumes every batch exactly once per epoch; a batch is evicted when
// its use counter reaches nJobs. Capacity is bounded in bytes; producers
// block when the area is full.
type StagingArea struct {
	eng      *sim.Engine
	nJobs    int
	capBytes float64

	slots     map[int]*slot
	dead      map[int]bool
	usedBytes float64
	peakBytes float64
	cond      *sim.Cond
	// epochDone counts live jobs that completed each epoch; producers
	// gate on it so epochs complete "in a synchronized fashion by all HP
	// jobs" (§4.3) and the staging area cannot fill with future-epoch
	// batches while a straggler still needs the current epoch's.
	epochDone map[int]int

	// waitingSince records, per consumer job, when it started waiting for
	// a missing batch (0 = not waiting); the failure detector polls it.
	waitingSince map[int]float64
	waitingFor   map[int]int

	// MemTrace samples staging memory utilization over time (Fig 20).
	MemTrace *stats.TimeSeries

	produced, consumed, evicted int64
}

type slot struct {
	b    *Batch
	uses map[int]bool // jobs that consumed it this epoch
}

// RemoveJob excludes a dead job from the consumption quorum: its pending
// consumptions are forfeited so batches it will never read can be evicted
// (the driver removes killed jobs at recovery time, §4.3).
func (s *StagingArea) RemoveJob(job int) {
	if s.dead == nil {
		s.dead = make(map[int]bool)
	}
	if s.dead[job] {
		return
	}
	s.dead[job] = true
	delete(s.waitingSince, job)
	delete(s.waitingFor, job)
	for idx, sl := range s.slots {
		if s.quorum(sl) {
			s.usedBytes -= sl.b.PreparedBytes
			s.evicted++
			delete(s.slots, idx)
		}
	}
	s.sample()
	s.cond.Broadcast()
}

// quorum reports whether every live job has consumed the slot.
func (s *StagingArea) quorum(sl *slot) bool {
	live := 0
	for j := 0; j < s.nJobs; j++ {
		if s.dead[j] {
			continue
		}
		live++
		if !sl.uses[j] {
			return false
		}
	}
	return live > 0
}

// NewStagingArea returns a staging area for nJobs jobs with the given byte
// capacity (the paper's deployments use ~5 GB, §5.5).
func NewStagingArea(e *sim.Engine, nJobs int, capBytes float64) *StagingArea {
	return &StagingArea{
		eng:          e,
		nJobs:        nJobs,
		capBytes:     capBytes,
		slots:        make(map[int]*slot),
		cond:         sim.NewCond(e),
		waitingSince: make(map[int]float64),
		waitingFor:   make(map[int]int),
		epochDone:    make(map[int]int),
	}
}

// LiveJobs returns the number of jobs still in the consumption quorum.
func (s *StagingArea) LiveJobs() int { return s.nJobs - len(s.dead) }

// JobEpochDone records that a job finished consuming an epoch.
func (s *StagingArea) JobEpochDone(epoch int) {
	s.epochDone[epoch]++
	s.cond.Broadcast()
}

// WaitEpochStart blocks a producer from staging epoch-e batches until every
// live job has finished epoch e-1.
func (s *StagingArea) WaitEpochStart(p *sim.Proc, epoch int) {
	for epoch > 0 && s.epochDone[epoch-1] < s.LiveJobs() {
		s.cond.Wait(p)
	}
}

// GetAny returns any staged batch with index in [lo, hi) that job has not
// yet consumed, preferring the lowest index, blocking until one is
// available. Jobs may consume the epoch's minibatches in any order; each
// exactly once (§4.3).
func (s *StagingArea) GetAny(p *sim.Proc, job, lo, hi int) *Batch {
	for {
		best := -1
		for idx, sl := range s.slots {
			if idx >= lo && idx < hi && !sl.uses[job] {
				if best == -1 || idx < best {
					best = idx
				}
			}
		}
		if best >= 0 {
			return s.take(job, best)
		}
		if _, waiting := s.waitingSince[job]; !waiting {
			s.waitingSince[job] = s.eng.Now()
			s.waitingFor[job] = lo
		}
		s.cond.Wait(p)
	}
}

// take consumes slot index on behalf of job and evicts it at quorum.
func (s *StagingArea) take(job, index int) *Batch {
	sl := s.slots[index]
	sl.uses[job] = true
	s.consumed++
	delete(s.waitingSince, job)
	delete(s.waitingFor, job)
	b := sl.b
	if s.quorum(sl) {
		delete(s.slots, index)
		s.usedBytes -= b.PreparedBytes
		s.evicted++
		s.sample()
		s.cond.Broadcast()
	}
	return b
}

// EnableMemTrace starts sampling memory use.
func (s *StagingArea) EnableMemTrace(name string) {
	s.MemTrace = &stats.TimeSeries{Name: name}
}

func (s *StagingArea) sample() {
	if s.peakBytes < s.usedBytes {
		s.peakBytes = s.usedBytes
	}
	if s.MemTrace != nil {
		s.MemTrace.Add(s.eng.Now(), s.usedBytes)
	}
}

// Put stages a prepared batch, blocking while the area is full.
func (s *StagingArea) Put(p *sim.Proc, b *Batch) {
	for s.usedBytes+b.PreparedBytes > s.capBytes && len(s.slots) > 0 {
		s.cond.Wait(p)
	}
	s.slots[b.Index] = &slot{b: b, uses: make(map[int]bool, s.nJobs)}
	s.usedBytes += b.PreparedBytes
	s.produced++
	s.sample()
	s.cond.Broadcast()
}

// Get returns global batch index for consuming job, blocking until it has
// been produced. Each job may consume each batch exactly once; the batch is
// evicted once all jobs have consumed it.
func (s *StagingArea) Get(p *sim.Proc, job, index int) *Batch {
	for {
		if sl, ok := s.slots[index]; ok && !sl.uses[job] {
			return s.take(job, index)
		}
		if _, waiting := s.waitingSince[job]; !waiting {
			s.waitingSince[job] = s.eng.Now()
			s.waitingFor[job] = index
		}
		s.cond.Wait(p)
	}
}

// UsedBytes returns current staged bytes; PeakBytes the high-water mark.
func (s *StagingArea) UsedBytes() float64 { return s.usedBytes }

// PeakBytes returns the maximum concurrent staging footprint observed.
func (s *StagingArea) PeakBytes() float64 { return s.peakBytes }

// Counters returns (produced, consumed, evicted) batch counts.
func (s *StagingArea) Counters() (produced, consumed, evicted int64) {
	return s.produced, s.consumed, s.evicted
}

// OverdueJobs returns jobs that have been blocked on a missing batch for
// longer than timeout, with the batch index each is waiting for.
func (s *StagingArea) OverdueJobs(timeout float64) map[int]int {
	out := map[int]int{}
	now := s.eng.Now()
	for job, since := range s.waitingSince {
		if now-since > timeout {
			out[job] = s.waitingFor[job]
		}
	}
	return out
}

// FailureDetector monitors coordinated-prep jobs (§4.3): if a consumer waits
// longer than the timeout (10x an iteration) for a batch, the detector
// verifies whether the producing job is alive and, if dead, hands the failed
// job's remaining shard to a recovery producer.
type FailureDetector struct {
	Staging *StagingArea
	// Timeout is the overdue threshold (10x iteration time, §4.4).
	Timeout float64
	// Alive reports whether a job's producer is still alive.
	Alive func(job int) bool
	// Recover is invoked once per dead job to respawn data loading for
	// its shard.
	Recover func(job int)

	// Detected lists jobs the detector declared dead.
	Detected []int

	recovered map[int]bool
}

// Run polls the staging area until the simulation ends. Spawn it with
// eng.Go; it wakes every Timeout/2.
func (fd *FailureDetector) Run(p *sim.Proc, horizon float64) {
	fd.recovered = make(map[int]bool)
	for p.Now() < horizon {
		p.Sleep(fd.Timeout / 2)
		for _, owner := range fd.overdueOwners() {
			if fd.recovered[owner] {
				continue
			}
			if fd.Alive != nil && fd.Alive(owner) {
				continue // spurious: broadcast retry happens via cond
			}
			fd.recovered[owner] = true
			fd.Detected = append(fd.Detected, owner)
			if fd.Recover != nil {
				fd.Recover(owner)
			}
		}
	}
}

// overdueOwners returns candidate failed producers once any consumer is
// overdue: first the owners of the specific batches being waited on, then —
// since a consumer using GetAny only knows its epoch window — every job, so
// the liveness check in Run can identify the dead one (§4.3: jobs can
// deterministically identify which job failed).
func (fd *FailureDetector) overdueOwners() []int {
	overdue := fd.Staging.OverdueJobs(fd.Timeout)
	if len(overdue) == 0 {
		return nil
	}
	var owners []int
	seen := map[int]bool{}
	// Walk waiting jobs in ID order: map iteration order would make the
	// owner candidate list (and recovery timing) nondeterministic.
	for job := 0; job < fd.Staging.nJobs; job++ {
		idx, ok := overdue[job]
		if !ok {
			continue
		}
		owner := idx % fd.Staging.nJobs
		if !seen[owner] {
			seen[owner] = true
			owners = append(owners, owner)
		}
	}
	for j := 0; j < fd.Staging.nJobs; j++ {
		if !seen[j] {
			seen[j] = true
			owners = append(owners, j)
		}
	}
	return owners
}
