package core

import (
	"testing"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// Compile-time checks: CoorDL fetchers satisfy the loader interface.
var (
	_ loader.Fetcher = (*MinIOFetcher)(nil)
	_ loader.Fetcher = (*PartitionedFetcher)(nil)
)

func testDataset(n int) *dataset.Dataset {
	return &dataset.Dataset{Name: "t", NumItems: n, TotalBytes: float64(n) * 1000}
}

func TestMinIOFetcherChargesDevices(t *testing.T) {
	e := sim.New()
	cl := cluster.Build(e, cluster.ConfigSSDV100(), 1)
	d := testDataset(100)
	f := NewMinIOFetcher(d, cl, 50*1000)
	items := []dataset.ItemID{0, 1, 2}
	var r1, r2 loader.FetchResult
	e.Go("x", func(p *sim.Proc) {
		r1 = f.FetchBatch(p, 0, items) // cold: all disk
		r2 = f.FetchBatch(p, 0, items) // warm: all memory
	})
	e.Run()
	if r1.Misses != 3 || r1.DiskBytes != 3000 {
		t.Fatalf("cold fetch: %+v", r1)
	}
	if r2.Hits != 3 || r2.MemBytes != 3000 || r2.DiskBytes != 0 {
		t.Fatalf("warm fetch: %+v", r2)
	}
	if cl.Servers[0].Disk.TotalBytes() != 3000 {
		t.Fatalf("disk bytes %v", cl.Servers[0].Disk.TotalBytes())
	}
}

func TestPartitionedFetcherRemotePath(t *testing.T) {
	e := sim.New()
	cl := cluster.Build(e, cluster.ConfigSSDV100(), 2)
	d := testDataset(1000)
	f := NewPartitionedFetcher(d, cl, d.TotalBytes/2, 1) // aggregate = dataset
	// Warm both caches via owner shards.
	shards := f.OwnerShards()
	e.Go("warm", func(p *sim.Proc) {
		for s, sh := range shards {
			f.FetchBatch(p, s, sh.Items)
		}
	})
	e.Run()

	// Steady state: server 0 fetches random items; no disk traffic.
	e2 := e // same engine state is fine; devices accumulate
	var r loader.FetchResult
	all := make([]dataset.ItemID, 1000)
	for i := range all {
		all[i] = dataset.ItemID(i)
	}
	disk0 := cl.Servers[0].Disk.TotalBytes()
	e2.Go("steady", func(p *sim.Proc) {
		r = f.FetchBatch(p, 0, all)
	})
	e2.Run()
	if r.Misses != 0 {
		t.Fatalf("steady-state misses: %+v", r)
	}
	if r.RemoteHit == 0 || r.Hits == 0 {
		t.Fatalf("expected both local and remote hits: %+v", r)
	}
	if cl.Servers[0].Disk.TotalBytes() != disk0 {
		t.Fatal("steady-state fetch touched local storage")
	}
	if cl.Fabric.NICs[1].TotalBytes() == 0 {
		t.Fatal("remote fetch did not use the serving server's NIC")
	}
}

func TestOwnerShardsCoverDataset(t *testing.T) {
	e := sim.New()
	cl := cluster.Build(e, cluster.ConfigSSDV100(), 3)
	d := testDataset(999)
	f := NewPartitionedFetcher(d, cl, d.TotalBytes, 1)
	total := 0
	for _, sh := range f.OwnerShards() {
		total += len(sh.Items)
	}
	if total != 999 {
		t.Fatalf("owner shards cover %d of 999", total)
	}
}

func TestStagingAreaExactlyOncePerJob(t *testing.T) {
	e := sim.New()
	s := NewStagingArea(e, 2, 1e9)
	var consumed [2][]int
	e.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			s.Put(p, &Batch{Index: i, Owner: 0, PreparedBytes: 10})
		}
	})
	for j := 0; j < 2; j++ {
		j := j
		e.Go("consumer", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				b := s.Get(p, j, i)
				consumed[j] = append(consumed[j], b.Index)
			}
		})
	}
	e.Run()
	for j := 0; j < 2; j++ {
		if len(consumed[j]) != 5 {
			t.Fatalf("job %d consumed %d", j, len(consumed[j]))
		}
	}
	p, c, ev := s.Counters()
	if p != 5 || c != 10 || ev != 5 {
		t.Fatalf("counters: produced=%d consumed=%d evicted=%d", p, c, ev)
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("staging leaked %v bytes", s.UsedBytes())
	}
}

func TestStagingAreaEvictsOnlyAfterAllJobsUse(t *testing.T) {
	e := sim.New()
	s := NewStagingArea(e, 3, 1e9)
	e.Go("p", func(p *sim.Proc) {
		s.Put(p, &Batch{Index: 0, PreparedBytes: 7})
	})
	got := 0
	for j := 0; j < 3; j++ {
		j := j
		e.Go("c", func(p *sim.Proc) {
			p.Sleep(float64(j + 1))
			s.Get(p, j, 0)
			got++
			if j < 2 && s.UsedBytes() == 0 {
				t.Errorf("batch evicted before all jobs consumed it")
			}
		})
	}
	e.Run()
	if got != 3 || s.UsedBytes() != 0 {
		t.Fatalf("got=%d used=%v", got, s.UsedBytes())
	}
}

func TestStagingAreaCapacityBlocksProducer(t *testing.T) {
	e := sim.New()
	s := NewStagingArea(e, 1, 25) // room for 2 batches of 10
	var putTimes []float64
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			s.Put(p, &Batch{Index: i, PreparedBytes: 10})
			putTimes = append(putTimes, p.Now())
		}
	})
	e.Go("c", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			s.Get(p, 0, i)
		}
	})
	e.Run()
	if putTimes[2] != 10 {
		t.Fatalf("third put at %v, want blocked until 10", putTimes[2])
	}
	if s.PeakBytes() > 25 {
		t.Fatalf("peak %v exceeded capacity", s.PeakBytes())
	}
}

func TestStagingMemTrace(t *testing.T) {
	e := sim.New()
	s := NewStagingArea(e, 1, 1e9)
	s.EnableMemTrace("staging")
	e.Go("p", func(p *sim.Proc) {
		s.Put(p, &Batch{Index: 0, PreparedBytes: 10})
		p.Sleep(1)
		s.Get(p, 0, 0)
	})
	e.Run()
	if s.MemTrace.Len() != 2 {
		t.Fatalf("trace points %d, want 2", s.MemTrace.Len())
	}
}

func TestFailureDetectorRecoversDeadJob(t *testing.T) {
	e := sim.New()
	nJobs := 2
	s := NewStagingArea(e, nJobs, 1e9)
	// Job 0 produces even batches; job 1 (owner of odd batches) dies
	// after batch 1. Consumers need batches 0..5.
	dead := false
	e.Go("producer0", func(p *sim.Proc) {
		for i := 0; i < 6; i += 2 {
			p.Sleep(1)
			s.Put(p, &Batch{Index: i, Owner: 0, PreparedBytes: 1})
		}
	})
	e.Go("producer1", func(p *sim.Proc) {
		p.Sleep(1)
		s.Put(p, &Batch{Index: 1, Owner: 1, PreparedBytes: 1})
		dead = true // dies before batch 3
	})
	fd := &FailureDetector{
		Staging: s,
		Timeout: 5,
		Alive:   func(job int) bool { return !(job == 1 && dead) },
		Recover: func(job int) {
			e.Go("recovery", func(p *sim.Proc) {
				for i := 3; i < 6; i += 2 {
					p.Sleep(1)
					s.Put(p, &Batch{Index: i, Owner: job, PreparedBytes: 1})
				}
			})
		},
	}
	e.Go("detector", func(p *sim.Proc) { fd.Run(p, 200) })
	done := make([]bool, nJobs)
	for j := 0; j < nJobs; j++ {
		j := j
		e.Go("consumer", func(p *sim.Proc) {
			for i := 0; i < 6; i++ {
				s.Get(p, j, i)
			}
			done[j] = true
		})
	}
	e.Run()
	if !done[0] || !done[1] {
		t.Fatalf("consumers stuck after producer failure: %v", done)
	}
	if len(fd.Detected) != 1 || fd.Detected[0] != 1 {
		t.Fatalf("detected = %v, want [1]", fd.Detected)
	}
}

func TestFailureDetectorIgnoresAliveJobs(t *testing.T) {
	e := sim.New()
	s := NewStagingArea(e, 2, 1e9)
	fd := &FailureDetector{
		Staging: s,
		Timeout: 2,
		Alive:   func(int) bool { return true }, // just slow, not dead
	}
	e.Go("detector", func(p *sim.Proc) { fd.Run(p, 30) })
	e.Go("slow-producer", func(p *sim.Proc) {
		p.Sleep(20)
		s.Put(p, &Batch{Index: 0, PreparedBytes: 1})
		p.Sleep(1)
		s.Put(p, &Batch{Index: 1, PreparedBytes: 1})
	})
	for j := 0; j < 2; j++ {
		j := j
		e.Go("c", func(p *sim.Proc) {
			s.Get(p, j, 0)
			s.Get(p, j, 1)
		})
	}
	e.Run()
	if len(fd.Detected) != 0 {
		t.Fatalf("false positive: detected %v", fd.Detected)
	}
}

func TestPartitionedFetchOrdersOfMagnitude(t *testing.T) {
	// Remote DRAM over 40GbE must beat local HDD for OpenImages-sized
	// items — the premise of partitioned caching (§4.2).
	e := sim.New()
	spec := cluster.ConfigHDD1080Ti()
	cl := cluster.Build(e, spec, 2)
	d := &dataset.Dataset{Name: "t", NumItems: 100, TotalBytes: 100 * 300 * stats.KiB}
	f := NewPartitionedFetcher(d, cl, d.TotalBytes/2, 1)
	shards := f.OwnerShards()
	e.Go("warm", func(p *sim.Proc) {
		for s, sh := range shards {
			f.FetchBatch(p, s, sh.Items)
		}
	})
	e.Run()

	// Time fetching server 1's shard from server 0 (all remote).
	var remoteT float64
	e.Go("remote", func(p *sim.Proc) {
		start := p.Now()
		f.FetchBatch(p, 0, shards[1].Items)
		remoteT = p.Now() - start
	})
	e.Run()
	diskT := 0.0
	for _, id := range shards[1].Items {
		sz := d.ItemBytes(id)
		diskT += spec.Disk.SeekTime + sz/spec.Disk.SeqBW
	}
	if remoteT >= diskT/3 {
		t.Fatalf("remote fetch %.3fs not clearly faster than HDD %.3fs", remoteT, diskT)
	}
}
