// Package cluster assembles the paper's two server SKUs (Table 2) into
// simulated hardware: GPUs, CPU cores, DRAM, a storage device and a NIC per
// server, plus the fabric connecting servers of a distributed job.
package cluster

import (
	"fmt"

	"datastall/internal/gpu"
	"datastall/internal/network"
	"datastall/internal/sim"
	"datastall/internal/stats"
	"datastall/internal/storage"
)

// ServerSpec describes one server SKU.
type ServerSpec struct {
	Name string
	// NumGPUs and Gen describe the accelerators (8 per server).
	NumGPUs int
	Gen     gpu.Generation
	// PhysicalCores / VCPUs are CPU resources (24 cores in the paper's
	// SKUs; Appendix B.1 also studies a 32-core/64-vCPU server).
	PhysicalCores int
	VCPUs         int
	// DRAMBytes is total memory; CacheBytes is the share available for
	// caching training data (the rest holds the framework, staging, etc.)
	DRAMBytes  float64
	CacheBytes float64
	// MemBW is the DRAM copy bandwidth for cache reads.
	MemBW float64
	// StagingBW is the shared-memory bandwidth for cross-job staging
	// copies (coordinated prep hands prepared batches between processes).
	StagingBW float64
	// Disk and Link describe storage and network.
	Disk storage.DeviceSpec
	Link network.LinkSpec
}

// ConfigSSDV100 returns the paper's Config-SSD-V100 SKU (8xV100, SATA SSD,
// like AWS p3.16xlarge + gp2).
func ConfigSSDV100() ServerSpec {
	return ServerSpec{
		Name:          "config-ssd-v100",
		NumGPUs:       8,
		Gen:           gpu.V100,
		PhysicalCores: 24,
		VCPUs:         48,
		DRAMBytes:     500 * stats.GiB,
		CacheBytes:    400 * stats.GiB,
		MemBW:         10 * stats.GiB,
		StagingBW:     12 * stats.GiB,
		Disk:          storage.SSD,
		Link:          network.Ethernet40G,
	}
}

// ConfigHDD1080Ti returns the paper's Config-HDD-1080Ti SKU (8x1080Ti,
// magnetic st1-style volume, like AWS p2.8xlarge + st1).
func ConfigHDD1080Ti() ServerSpec {
	s := ConfigSSDV100()
	s.Name = "config-hdd-1080ti"
	s.Gen = gpu.GTX1080Ti
	s.Disk = storage.HDD
	return s
}

// HighCPUV100 returns the Appendix B.1 server: 8 V100s with 32 physical
// cores / 64 vCPUs.
func HighCPUV100() ServerSpec {
	s := ConfigSSDV100()
	s.Name = "highcpu-v100"
	s.PhysicalCores = 32
	s.VCPUs = 64
	return s
}

// Server is the runtime instantiation of a ServerSpec in one simulation.
type Server struct {
	Spec  ServerSpec
	Index int

	Disk *storage.Disk
	Mem  *storage.Memory
	// Staging models the shared-memory bus that cross-job staging copies
	// traverse; it is a FIFO bandwidth server so 8 consumers contend.
	Staging *sim.BandwidthServer
}

// Cluster is a set of servers plus the connecting fabric.
type Cluster struct {
	Spec    ServerSpec
	Servers []*Server
	Fabric  *network.Fabric
	eng     *sim.Engine
}

// Build instantiates n identical servers on engine e.
func Build(e *sim.Engine, spec ServerSpec, n int) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("cluster: need >= 1 server, got %d", n))
	}
	c := &Cluster{Spec: spec, Fabric: network.NewFabric(e, n, spec.Link), eng: e}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, &Server{
			Spec:    spec,
			Index:   i,
			Disk:    storage.NewDisk(e, spec.Disk),
			Mem:     storage.NewMemory(spec.MemBW),
			Staging: sim.NewBandwidthServer(e),
		})
	}
	return c
}

// NIC returns server i's NIC.
func (c *Cluster) NIC(i int) *network.NIC { return c.Fabric.NICs[i] }

// TotalDiskBytes sums bytes read from storage across servers.
func (c *Cluster) TotalDiskBytes() float64 {
	t := 0.0
	for _, s := range c.Servers {
		t += s.Disk.TotalBytes()
	}
	return t
}

// TotalGPUs returns the number of GPUs in the cluster.
func (c *Cluster) TotalGPUs() int { return len(c.Servers) * c.Spec.NumGPUs }
