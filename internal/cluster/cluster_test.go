package cluster

import (
	"testing"

	"datastall/internal/gpu"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

func TestSKUsMatchTable2(t *testing.T) {
	ssd := ConfigSSDV100()
	if ssd.NumGPUs != 8 || ssd.PhysicalCores != 24 || ssd.DRAMBytes != 500*stats.GiB {
		t.Fatalf("Config-SSD-V100 mismatch: %+v", ssd)
	}
	if ssd.Gen != gpu.V100 || ssd.Disk.Name != "ssd" {
		t.Fatal("Config-SSD-V100 hardware mismatch")
	}
	hdd := ConfigHDD1080Ti()
	if hdd.Gen != gpu.GTX1080Ti || hdd.Disk.Name != "hdd" {
		t.Fatal("Config-HDD-1080Ti hardware mismatch")
	}
	if hdd.NumGPUs != 8 || hdd.PhysicalCores != 24 {
		t.Fatal("Config-HDD-1080Ti sizing mismatch")
	}
	hc := HighCPUV100()
	if hc.PhysicalCores != 32 || hc.VCPUs != 64 {
		t.Fatal("HighCPU SKU mismatch (Appendix B.1)")
	}
}

func TestBuild(t *testing.T) {
	e := sim.New()
	c := Build(e, ConfigSSDV100(), 3)
	if len(c.Servers) != 3 || c.TotalGPUs() != 24 {
		t.Fatalf("build: %d servers, %d GPUs", len(c.Servers), c.TotalGPUs())
	}
	for i, s := range c.Servers {
		if s.Index != i || s.Disk == nil || s.Mem == nil || s.Staging == nil {
			t.Fatalf("server %d incomplete", i)
		}
	}
	if c.NIC(0) == c.NIC(1) {
		t.Fatal("servers must have distinct NICs")
	}
}

func TestTotalDiskBytes(t *testing.T) {
	e := sim.New()
	c := Build(e, ConfigSSDV100(), 2)
	e.Go("r", func(p *sim.Proc) {
		c.Servers[0].Disk.ReadRandom(p, 100, 1)
		c.Servers[1].Disk.ReadRandom(p, 50, 1)
	})
	e.Run()
	if c.TotalDiskBytes() != 150 {
		t.Fatalf("total disk bytes %v", c.TotalDiskBytes())
	}
}
