package pagecache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datastall/internal/dataset"
)

func access(c *Cache, id dataset.ItemID, size float64) bool {
	if c.Lookup(id) {
		return true
	}
	c.Insert(id, size)
	return false
}

func TestLRUBasic(t *testing.T) {
	c := New(LRU, 2, 1)
	access(c, 1, 1)
	access(c, 2, 1)
	if !c.Lookup(1) {
		t.Fatal("1 should hit")
	}
	access(c, 3, 1) // evicts 2 (1 was just touched)
	if c.Lookup(2) {
		t.Fatal("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 should be resident")
	}
}

func TestLRUScanIsPathological(t *testing.T) {
	// Cyclic scan over N items with capacity C < N: LRU gets zero hits
	// after warmup — the paper's TFRecord pathological case (§3.3.3).
	c := New(LRU, 50, 1)
	n := 100
	for e := 0; e < 3; e++ {
		for i := 0; i < n; i++ {
			access(c, dataset.ItemID(i), 1)
		}
	}
	c.ResetStats()
	for i := 0; i < n; i++ {
		access(c, dataset.ItemID(i), 1)
	}
	if c.Hits() != 0 {
		t.Fatalf("LRU scan got %d hits, want 0", c.Hits())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, pol := range []Policy{LRU, TwoList, Random} {
		c := New(pol, 100, 1)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 10000; i++ {
			id := dataset.ItemID(rng.Intn(500))
			access(c, id, float64(1+rng.Intn(5)))
			if c.UsedBytes() > c.CapBytes() {
				t.Fatalf("%v: used %v > cap %v", pol, c.UsedBytes(), c.CapBytes())
			}
		}
	}
}

func TestOversizeItemNotCached(t *testing.T) {
	c := New(LRU, 10, 1)
	c.Insert(1, 11)
	if c.Contains(1) || c.UsedBytes() != 0 {
		t.Fatal("oversize item cached")
	}
}

func TestInsertIdempotent(t *testing.T) {
	c := New(TwoList, 10, 1)
	c.Insert(1, 4)
	c.Insert(1, 4)
	if c.UsedBytes() != 4 || c.Len() != 1 {
		t.Fatalf("double insert: used=%v len=%d", c.UsedBytes(), c.Len())
	}
}

// permEpochHitRate runs E epochs of uniform random permutation access over n
// unit-size items with capacity c*n and returns the steady-state hit rate.
func permEpochHitRate(pol Policy, n int, capFrac float64, epochs int) float64 {
	c := New(pol, capFrac*float64(n), 3)
	rng := rand.New(rand.NewSource(4))
	for e := 0; e < epochs; e++ {
		if e == 1 {
			c.ResetStats() // first epoch is cold-cache warmup
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			access(c, dataset.ItemID(i), 1)
		}
	}
	return c.HitRate()
}

func TestTwoListThrashesUnderPermutationAccess(t *testing.T) {
	// At 35% capacity an ideal cache yields 35% hits; the paper measures
	// the Linux page cache delivering ~15% (85% of the dataset fetched
	// per epoch, §3.3.1). TwoList must land well below ideal.
	h := permEpochHitRate(TwoList, 4000, 0.35, 4)
	if h >= 0.30 {
		t.Fatalf("TwoList hit rate %.2f, want thrashing (< 0.30)", h)
	}
	if h < 0.05 {
		t.Fatalf("TwoList hit rate %.2f, want some retention (> 0.05)", h)
	}
}

func TestTwoListAt65Percent(t *testing.T) {
	// Table 6: DALI-shuffle at 65% capacity delivered ~47% hits.
	h := permEpochHitRate(TwoList, 4000, 0.65, 4)
	if h < 0.28 || h > 0.60 {
		t.Fatalf("TwoList hit rate %.2f at 65%% cap, want ~0.30-0.50", h)
	}
}

func TestThrashingOrderingAcrossPolicies(t *testing.T) {
	// All OS policies must under-perform the capacity ratio under
	// per-epoch permutation access (the MinIO motivation).
	for _, pol := range []Policy{LRU, TwoList, Random} {
		h := permEpochHitRate(pol, 3000, 0.5, 4)
		if h >= 0.5 {
			t.Fatalf("%v: hit rate %.2f >= capacity ratio 0.5", pol, h)
		}
	}
}

func TestRandomPolicyScanHits(t *testing.T) {
	// Random replacement under cyclic scan follows the fixed point
	// h = exp(-(1-h)/c); at c=0.65 that's ~0.43.
	c := New(Random, 0.65*3000, 5)
	n := 3000
	for e := 0; e < 6; e++ {
		if e == 2 {
			c.ResetStats()
		}
		for i := 0; i < n; i++ {
			access(c, dataset.ItemID(i), 1)
		}
	}
	h := c.HitRate()
	if h < 0.30 || h > 0.55 {
		t.Fatalf("random-policy scan hit rate %.2f, want ~0.43", h)
	}
}

func TestEvictionCountsAndResetStats(t *testing.T) {
	c := New(LRU, 2, 1)
	for i := 0; i < 5; i++ {
		access(c, dataset.ItemID(i), 1)
	}
	if c.Evictions() != 3 {
		t.Fatalf("evictions = %d, want 3", c.Evictions())
	}
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 || c.Evictions() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

// Property: for any access sequence, used bytes never exceed capacity and
// the hit+miss count equals the number of lookups.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ids []uint8, polRaw uint8) bool {
		pol := Policy(int(polRaw) % 3)
		c := New(pol, 20, 9)
		lookups := 0
		for _, raw := range ids {
			id := dataset.ItemID(raw % 64)
			c.Lookup(id)
			lookups++
			c.Insert(id, float64(raw%3+1))
			if c.UsedBytes() > c.CapBytes() {
				return false
			}
		}
		return c.Hits()+c.Misses() == int64(lookups)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains agrees with a shadow set of inserted-minus-evicted items.
func TestResidencyConsistencyProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		c := New(TwoList, 15, 11)
		for _, raw := range ids {
			id := dataset.ItemID(raw % 32)
			access(c, id, 1)
			// After an access the item must be resident (size 1 <= cap).
			if !c.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
