// Package pagecache simulates the OS page cache that DNN frameworks rely on
// for caching raw training data (§3.3.1). It is item-granular (a data item is
// fetched and evicted as a unit) and byte-budgeted.
//
// Three replacement policies are provided:
//
//   - LRU: classic least-recently-used; pathological for cyclic scans.
//   - TwoList: an approximation of Linux's active/inactive list design
//     (promotion on second touch while resident in the inactive list,
//     demotion when the active list exceeds its share). This is the default
//     "Linux" model used in experiments; under per-epoch permutation access
//     it thrashes — delivering well below capacity-ratio hits — which is the
//     paper's key finding (Fig 3, Table 6).
//   - Random: random replacement, included for ablations.
//
// Storage layout: entries live by value in a slab ([]entry) threaded into
// intrusive doubly-linked recency lists via int32 indices, with evicted
// slots recycled through a free list; residency is a dense []int32 indexed
// by ItemID (IDs are dense small integers). Steady-state Lookup and
// Insert-with-eviction therefore allocate nothing — no map operations, no
// container/list element boxes, no per-entry heap objects. Eviction order,
// rng consumption, and every statistic are identical to the original
// map+container/list implementation (pinned by TestSlabMatchesReference).
//
// A Cache is NOT safe for concurrent use: the recency lists cannot be
// lock-striped without changing eviction order (and with it the simulated
// hit rates). The concurrent loader backend shares one per server behind a
// single mutex via cache.Locked instead.
package pagecache

import (
	"math/rand"

	"datastall/internal/dataset"
)

// Policy selects a replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	TwoList
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TwoList:
		return "twolist"
	case Random:
		return "random"
	}
	return "unknown"
}

// nilIdx marks an empty link / absent entry.
const nilIdx = int32(-1)

// entry is one resident item, stored by value in the slab. prev/next thread
// it into the inactive or active list.
type entry struct {
	id         dataset.ItemID
	bytes      float64
	active     bool
	prev, next int32
}

// clist is an intrusive doubly-linked list over slab indices.
// front = most recent.
type clist struct {
	head, tail int32
	n          int
}

// Cache is a simulated page cache.
type Cache struct {
	policy   Policy
	capBytes float64

	slab []entry
	free []int32 // recycled slab slots
	idx  []int32 // ItemID -> slab index, nilIdx = absent; grown on demand

	inactive clist
	active   clist

	usedBytes   float64
	activeBytes float64
	// activeRatio is the maximum fraction of capacity the active list may
	// occupy before demotion (TwoList only).
	activeRatio float64

	// refaultProb is the probability a freshly inserted item is activated
	// directly onto the active list (TwoList only). It models Linux's
	// workingset refault detection plus readahead batch activation: under
	// heavy thrashing, a slice of the incoming stream gets protected,
	// which is why the authors measure nonzero retention even for
	// sequential scans (Table 3, Table 6).
	refaultProb float64

	rng *rand.Rand
	// randKeys mirrors resident items for O(1) random eviction (Random
	// only); positions are recovered through the dense index on eviction.
	randKeys []dataset.ItemID

	hits, misses int64
	evictions    int64
	count        int
}

// New returns a cache with the given byte capacity and policy.
func New(policy Policy, capBytes float64, seed int64) *Cache {
	return &Cache{
		policy:      policy,
		capBytes:    capBytes,
		inactive:    clist{head: nilIdx, tail: nilIdx},
		active:      clist{head: nilIdx, tail: nilIdx},
		activeRatio: 0.62,
		refaultProb: 0.30,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// SetActiveRatio overrides the TwoList active-list share (for ablations).
func (c *Cache) SetActiveRatio(r float64) { c.activeRatio = r }

// SetRefaultProb sets the TwoList refault/readahead activation probability
// (0 disables it, giving the classic strict two-list behaviour).
func (c *Cache) SetRefaultProb(p float64) { c.refaultProb = p }

// CapBytes returns the configured capacity.
func (c *Cache) CapBytes() float64 { return c.capBytes }

// UsedBytes returns the bytes currently cached.
func (c *Cache) UsedBytes() float64 { return c.usedBytes }

// Hits returns the number of lookup hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookup misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// Evictions returns the number of items evicted so far.
func (c *Cache) Evictions() int64 { return c.evictions }

// ResetStats clears hit/miss/eviction counters (e.g. after warmup epoch).
func (c *Cache) ResetStats() { c.hits, c.misses, c.evictions = 0, 0, 0 }

// Len returns the number of cached items.
func (c *Cache) Len() int { return c.count }

// lookupIdx returns id's slab index, or nilIdx if absent.
func (c *Cache) lookupIdx(id dataset.ItemID) int32 {
	if i := int(id); uint(i) < uint(len(c.idx)) {
		return c.idx[i]
	}
	return nilIdx
}

// Contains reports whether id is resident without updating recency.
func (c *Cache) Contains(id dataset.ItemID) bool {
	return c.lookupIdx(id) != nilIdx
}

// pushFront links slab entry e at the front of l.
func (c *Cache) pushFront(l *clist, e int32) {
	en := &c.slab[e]
	en.prev, en.next = nilIdx, l.head
	if l.head != nilIdx {
		c.slab[l.head].prev = e
	} else {
		l.tail = e
	}
	l.head = e
	l.n++
}

// unlink removes slab entry e from l.
func (c *Cache) unlink(l *clist, e int32) {
	en := &c.slab[e]
	if en.prev != nilIdx {
		c.slab[en.prev].next = en.next
	} else {
		l.head = en.next
	}
	if en.next != nilIdx {
		c.slab[en.next].prev = en.prev
	} else {
		l.tail = en.prev
	}
	en.prev, en.next = nilIdx, nilIdx
	l.n--
}

// moveToFront makes e the most recent entry of l.
func (c *Cache) moveToFront(l *clist, e int32) {
	if l.head == e {
		return
	}
	c.unlink(l, e)
	c.pushFront(l, e)
}

// Lookup reports whether id is cached, updating recency/promotion state and
// hit/miss counters.
func (c *Cache) Lookup(id dataset.ItemID) bool {
	e := c.lookupIdx(id)
	if e == nilIdx {
		c.misses++
		return false
	}
	c.hits++
	switch c.policy {
	case LRU:
		c.moveToFront(&c.inactive, e)
	case TwoList:
		if c.slab[e].active {
			c.moveToFront(&c.active, e)
		} else {
			// Second touch while resident on the inactive list:
			// promote to the active list (Linux mark_page_accessed).
			c.unlink(&c.inactive, e)
			c.pushFront(&c.active, e)
			c.slab[e].active = true
			c.activeBytes += c.slab[e].bytes
			c.rebalance()
		}
	case Random:
		// No recency state.
	}
	return true
}

// alloc takes a slab slot (recycling freed ones) and initialises it.
func (c *Cache) alloc(id dataset.ItemID, bytes float64) int32 {
	var e int32
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.slab = append(c.slab, entry{})
		e = int32(len(c.slab) - 1)
	}
	c.slab[e] = entry{id: id, bytes: bytes, prev: nilIdx, next: nilIdx}
	return e
}

// setIdx records id -> e, growing the dense index on demand.
func (c *Cache) setIdx(id dataset.ItemID, e int32) {
	i := int(id)
	if i >= len(c.idx) {
		if i < cap(c.idx) {
			old := len(c.idx)
			c.idx = c.idx[:i+1]
			for k := old; k <= i; k++ {
				c.idx[k] = nilIdx
			}
		} else {
			newCap := 2 * cap(c.idx)
			if newCap < i+1 {
				newCap = i + 1
			}
			if newCap < 64 {
				newCap = 64
			}
			ni := make([]int32, i+1, newCap)
			copy(ni, c.idx)
			for k := len(c.idx); k <= i; k++ {
				ni[k] = nilIdx
			}
			c.idx = ni
		}
	}
	c.idx[i] = e
}

// Insert caches id (typically after a miss fetched it from storage), evicting
// as needed to respect capacity. Items larger than the cache are not cached.
func (c *Cache) Insert(id dataset.ItemID, bytes float64) {
	if id < 0 {
		return
	}
	if c.lookupIdx(id) != nilIdx {
		return
	}
	if bytes > c.capBytes {
		return
	}
	for c.usedBytes+bytes > c.capBytes {
		if !c.evictOne() {
			return
		}
	}
	e := c.alloc(id, bytes)
	switch c.policy {
	case Random:
		c.randKeys = append(c.randKeys, id)
	case TwoList:
		if c.refaultProb > 0 && c.rng.Float64() < c.refaultProb {
			c.pushFront(&c.active, e)
			c.slab[e].active = true
			c.activeBytes += bytes
			c.setIdx(id, e)
			c.count++
			c.usedBytes += bytes
			c.rebalance()
			return
		}
		c.pushFront(&c.inactive, e)
	default:
		c.pushFront(&c.inactive, e)
	}
	c.setIdx(id, e)
	c.count++
	c.usedBytes += bytes
}

// rebalance demotes active-list tails while the active list exceeds its
// share of capacity (TwoList).
func (c *Cache) rebalance() {
	for c.activeBytes > c.activeRatio*c.capBytes && c.active.n > 0 {
		e := c.active.tail
		c.unlink(&c.active, e)
		c.pushFront(&c.inactive, e)
		c.slab[e].active = false
		c.activeBytes -= c.slab[e].bytes
	}
}

// release evicts slab entry e: clears the index, recycles the slot, and
// books the eviction.
func (c *Cache) release(e int32) {
	en := &c.slab[e]
	c.idx[en.id] = nilIdx
	c.usedBytes -= en.bytes
	c.count--
	c.evictions++
	c.free = append(c.free, e)
}

// evictOne removes one item according to the policy; returns false if empty.
func (c *Cache) evictOne() bool {
	switch c.policy {
	case Random:
		if len(c.randKeys) == 0 {
			return false
		}
		i := c.rng.Intn(len(c.randKeys))
		id := c.randKeys[i]
		e := c.idx[id]
		last := len(c.randKeys) - 1
		c.randKeys[i] = c.randKeys[last]
		c.randKeys = c.randKeys[:last]
		c.release(e)
		return true
	case TwoList:
		// Evict from the inactive tail; refill inactive from active if
		// it drained (Linux shrinks the active list under pressure).
		if c.inactive.n == 0 {
			c.rebalanceForce()
		}
		fallthrough
	default:
		e := c.inactive.tail
		if e == nilIdx {
			e = c.active.tail
			if e == nilIdx {
				return false
			}
			c.unlink(&c.active, e)
			c.activeBytes -= c.slab[e].bytes
			c.release(e)
			return true
		}
		c.unlink(&c.inactive, e)
		c.release(e)
		return true
	}
}

// rebalanceForce demotes one active tail into inactive (pressure path).
func (c *Cache) rebalanceForce() {
	e := c.active.tail
	if e == nilIdx {
		return
	}
	c.unlink(&c.active, e)
	c.pushFront(&c.inactive, e)
	c.slab[e].active = false
	c.activeBytes -= c.slab[e].bytes
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
