// Package pagecache simulates the OS page cache that DNN frameworks rely on
// for caching raw training data (§3.3.1). It is item-granular (a data item is
// fetched and evicted as a unit) and byte-budgeted.
//
// Three replacement policies are provided:
//
//   - LRU: classic least-recently-used; pathological for cyclic scans.
//   - TwoList: an approximation of Linux's active/inactive list design
//     (promotion on second touch while resident in the inactive list,
//     demotion when the active list exceeds its share). This is the default
//     "Linux" model used in experiments; under per-epoch permutation access
//     it thrashes — delivering well below capacity-ratio hits — which is the
//     paper's key finding (Fig 3, Table 6).
//   - Random: random replacement, included for ablations.
//
// A Cache is NOT safe for concurrent use: the recency lists cannot be
// lock-striped without changing eviction order (and with it the simulated
// hit rates). The concurrent loader backend shares one per server behind a
// single mutex via cache.Locked instead.
package pagecache

import (
	"container/list"
	"math/rand"

	"datastall/internal/dataset"
)

// Policy selects a replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	TwoList
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TwoList:
		return "twolist"
	case Random:
		return "random"
	}
	return "unknown"
}

type entry struct {
	id     dataset.ItemID
	bytes  float64
	active bool // TwoList: resides on the active list
	elem   *list.Element
}

// Cache is a simulated page cache.
type Cache struct {
	policy   Policy
	capBytes float64

	items    map[dataset.ItemID]*entry
	inactive *list.List // front = most recent
	active   *list.List

	usedBytes   float64
	activeBytes float64
	// activeRatio is the maximum fraction of capacity the active list may
	// occupy before demotion (TwoList only).
	activeRatio float64

	// refaultProb is the probability a freshly inserted item is activated
	// directly onto the active list (TwoList only). It models Linux's
	// workingset refault detection plus readahead batch activation: under
	// heavy thrashing, a slice of the incoming stream gets protected,
	// which is why the authors measure nonzero retention even for
	// sequential scans (Table 3, Table 6).
	refaultProb float64

	rng *rand.Rand
	// randKeys mirrors items for O(1) random eviction (Random only).
	randKeys []dataset.ItemID
	randPos  map[dataset.ItemID]int

	hits, misses int64
	evictions    int64
}

// New returns a cache with the given byte capacity and policy.
func New(policy Policy, capBytes float64, seed int64) *Cache {
	return &Cache{
		policy:      policy,
		capBytes:    capBytes,
		items:       make(map[dataset.ItemID]*entry),
		inactive:    list.New(),
		active:      list.New(),
		activeRatio: 0.62,
		refaultProb: 0.30,
		rng:         rand.New(rand.NewSource(seed)),
		randPos:     make(map[dataset.ItemID]int),
	}
}

// SetActiveRatio overrides the TwoList active-list share (for ablations).
func (c *Cache) SetActiveRatio(r float64) { c.activeRatio = r }

// SetRefaultProb sets the TwoList refault/readahead activation probability
// (0 disables it, giving the classic strict two-list behaviour).
func (c *Cache) SetRefaultProb(p float64) { c.refaultProb = p }

// CapBytes returns the configured capacity.
func (c *Cache) CapBytes() float64 { return c.capBytes }

// UsedBytes returns the bytes currently cached.
func (c *Cache) UsedBytes() float64 { return c.usedBytes }

// Hits returns the number of lookup hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookup misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// Evictions returns the number of items evicted so far.
func (c *Cache) Evictions() int64 { return c.evictions }

// ResetStats clears hit/miss/eviction counters (e.g. after warmup epoch).
func (c *Cache) ResetStats() { c.hits, c.misses, c.evictions = 0, 0, 0 }

// Len returns the number of cached items.
func (c *Cache) Len() int { return len(c.items) }

// Contains reports whether id is resident without updating recency.
func (c *Cache) Contains(id dataset.ItemID) bool {
	_, ok := c.items[id]
	return ok
}

// Lookup reports whether id is cached, updating recency/promotion state and
// hit/miss counters.
func (c *Cache) Lookup(id dataset.ItemID) bool {
	e, ok := c.items[id]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	switch c.policy {
	case LRU:
		c.inactive.MoveToFront(e.elem)
	case TwoList:
		if e.active {
			c.active.MoveToFront(e.elem)
		} else {
			// Second touch while resident on the inactive list:
			// promote to the active list (Linux mark_page_accessed).
			c.inactive.Remove(e.elem)
			e.elem = c.active.PushFront(e)
			e.active = true
			c.activeBytes += e.bytes
			c.rebalance()
		}
	case Random:
		// No recency state.
	}
	return true
}

// Insert caches id (typically after a miss fetched it from storage), evicting
// as needed to respect capacity. Items larger than the cache are not cached.
func (c *Cache) Insert(id dataset.ItemID, bytes float64) {
	if _, ok := c.items[id]; ok {
		return
	}
	if bytes > c.capBytes {
		return
	}
	for c.usedBytes+bytes > c.capBytes {
		if !c.evictOne() {
			return
		}
	}
	e := &entry{id: id, bytes: bytes}
	switch c.policy {
	case Random:
		c.randPos[id] = len(c.randKeys)
		c.randKeys = append(c.randKeys, id)
	case TwoList:
		if c.refaultProb > 0 && c.rng.Float64() < c.refaultProb {
			e.elem = c.active.PushFront(e)
			e.active = true
			c.activeBytes += e.bytes
			c.items[id] = e
			c.usedBytes += bytes
			c.rebalance()
			return
		}
		e.elem = c.inactive.PushFront(e)
	default:
		e.elem = c.inactive.PushFront(e)
	}
	c.items[id] = e
	c.usedBytes += bytes
}

// rebalance demotes active-list tails while the active list exceeds its
// share of capacity (TwoList).
func (c *Cache) rebalance() {
	for c.activeBytes > c.activeRatio*c.capBytes && c.active.Len() > 0 {
		el := c.active.Back()
		e := el.Value.(*entry)
		c.active.Remove(el)
		e.elem = c.inactive.PushFront(e)
		e.active = false
		c.activeBytes -= e.bytes
	}
}

// evictOne removes one item according to the policy; returns false if empty.
func (c *Cache) evictOne() bool {
	switch c.policy {
	case Random:
		if len(c.randKeys) == 0 {
			return false
		}
		i := c.rng.Intn(len(c.randKeys))
		id := c.randKeys[i]
		last := len(c.randKeys) - 1
		c.randKeys[i] = c.randKeys[last]
		c.randPos[c.randKeys[i]] = i
		c.randKeys = c.randKeys[:last]
		delete(c.randPos, id)
		e := c.items[id]
		delete(c.items, id)
		c.usedBytes -= e.bytes
		c.evictions++
		return true
	case TwoList:
		// Evict from the inactive tail; refill inactive from active if
		// it drained (Linux shrinks the active list under pressure).
		if c.inactive.Len() == 0 {
			c.rebalanceForce()
		}
		fallthrough
	default:
		el := c.inactive.Back()
		if el == nil {
			el = c.active.Back()
			if el == nil {
				return false
			}
			e := el.Value.(*entry)
			c.active.Remove(el)
			c.activeBytes -= e.bytes
			delete(c.items, e.id)
			c.usedBytes -= e.bytes
			c.evictions++
			return true
		}
		e := el.Value.(*entry)
		c.inactive.Remove(el)
		delete(c.items, e.id)
		c.usedBytes -= e.bytes
		c.evictions++
		return true
	}
}

// rebalanceForce demotes one active tail into inactive (pressure path).
func (c *Cache) rebalanceForce() {
	el := c.active.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.active.Remove(el)
	e.elem = c.inactive.PushFront(e)
	e.active = false
	c.activeBytes -= e.bytes
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
