package pagecache

import (
	"math/rand"
	"testing"

	"datastall/internal/dataset"
	"datastall/internal/race"
)

// TestSlabMatchesReference replays long random op sequences through the
// slab-backed cache and the frozen map+container/list reference model:
// every policy must produce identical hits, misses, evictions, used bytes,
// and residency at every step — the slab layout is a pure representation
// change, down to rng consumption.
func TestSlabMatchesReference(t *testing.T) {
	for _, pol := range []Policy{LRU, TwoList, Random} {
		c := New(pol, 300, 17)
		ref := newRef(pol, 300, 17)
		rng := rand.New(rand.NewSource(99))
		for op := 0; op < 50000; op++ {
			id := dataset.ItemID(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				if got, want := c.Lookup(id), ref.Lookup(id); got != want {
					t.Fatalf("%v op %d: Lookup(%d) = %v, reference %v", pol, op, id, got, want)
				}
			case 1:
				bytes := float64(1 + rng.Intn(8))
				c.Insert(id, bytes)
				ref.Insert(id, bytes)
			default:
				if got, want := c.Contains(id), ref.Contains(id); got != want {
					t.Fatalf("%v op %d: Contains(%d) = %v, reference %v", pol, op, id, got, want)
				}
			}
			if c.UsedBytes() != ref.usedBytes || c.Len() != len(ref.items) {
				t.Fatalf("%v op %d: used/len %v/%d, reference %v/%d",
					pol, op, c.UsedBytes(), c.Len(), ref.usedBytes, len(ref.items))
			}
			if c.Hits() != ref.hits || c.Misses() != ref.misses || c.Evictions() != ref.evictions {
				t.Fatalf("%v op %d: hits/misses/evictions %d/%d/%d, reference %d/%d/%d",
					pol, op, c.Hits(), c.Misses(), c.Evictions(), ref.hits, ref.misses, ref.evictions)
			}
		}
		// Final residency sweep: every ID agrees.
		for id := dataset.ItemID(0); id < 200; id++ {
			if c.Contains(id) != ref.Contains(id) {
				t.Fatalf("%v: residency of %d diverged", pol, id)
			}
		}
	}
}

// TestSlabFreeListReuse: after the cache reaches capacity, evict+insert
// cycles recycle slab slots instead of growing the slab.
func TestSlabFreeListReuse(t *testing.T) {
	c := New(LRU, 100, 1)
	for i := 0; i < 1000; i++ {
		c.Insert(dataset.ItemID(i), 1)
	}
	if got := len(c.slab); got > 101 {
		t.Fatalf("slab grew to %d entries for a 100-item cache", got)
	}
}

// TestAllocsPagecacheHotPaths is the zero-allocation guard on the page
// cache: steady-state Lookup (including TwoList promotion/demotion churn)
// and Insert-with-eviction must not allocate. Enforced in CI without race
// instrumentation.
func TestAllocsPagecacheHotPaths(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	for _, pol := range []Policy{LRU, TwoList, Random} {
		const n = 512
		c := New(pol, n/2, 7)
		// Warm until the dense index, slab, and randKeys reach their
		// steady-state footprint.
		for e := 0; e < 2; e++ {
			for i := 0; i < n; i++ {
				if !c.Lookup(dataset.ItemID(i)) {
					c.Insert(dataset.ItemID(i), 1)
				}
			}
		}
		i := 0
		step := func() {
			for k := 0; k < 256; k++ {
				id := dataset.ItemID(i & (n - 1))
				if !c.Lookup(id) {
					c.Insert(id, 1)
				}
				i++
			}
		}
		if avg := testing.AllocsPerRun(20, step); avg != 0 {
			t.Fatalf("%v: steady-state lookup+insert allocates %v per 256 accesses, want 0", pol, avg)
		}
	}
}
