package pagecache

// refCache is the pre-slab page-cache implementation (map of *entry +
// container/list recency lists), frozen as the behavioural reference model:
// TestSlabMatchesReference replays identical op sequences through it and
// the slab-backed Cache and requires identical hits, misses, evictions,
// residency and rng consumption at every step. It exists only in tests.

import (
	"container/list"
	"math/rand"

	"datastall/internal/dataset"
)

type refEntry struct {
	id     dataset.ItemID
	bytes  float64
	active bool
	elem   *list.Element
}

type refCache struct {
	policy   Policy
	capBytes float64

	items    map[dataset.ItemID]*refEntry
	inactive *list.List
	active   *list.List

	usedBytes   float64
	activeBytes float64
	activeRatio float64
	refaultProb float64

	rng      *rand.Rand
	randKeys []dataset.ItemID
	randPos  map[dataset.ItemID]int

	hits, misses int64
	evictions    int64
}

func newRef(policy Policy, capBytes float64, seed int64) *refCache {
	return &refCache{
		policy:      policy,
		capBytes:    capBytes,
		items:       make(map[dataset.ItemID]*refEntry),
		inactive:    list.New(),
		active:      list.New(),
		activeRatio: 0.62,
		refaultProb: 0.30,
		rng:         rand.New(rand.NewSource(seed)),
		randPos:     make(map[dataset.ItemID]int),
	}
}

func (c *refCache) Contains(id dataset.ItemID) bool {
	_, ok := c.items[id]
	return ok
}

func (c *refCache) Lookup(id dataset.ItemID) bool {
	e, ok := c.items[id]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	switch c.policy {
	case LRU:
		c.inactive.MoveToFront(e.elem)
	case TwoList:
		if e.active {
			c.active.MoveToFront(e.elem)
		} else {
			c.inactive.Remove(e.elem)
			e.elem = c.active.PushFront(e)
			e.active = true
			c.activeBytes += e.bytes
			c.rebalance()
		}
	case Random:
	}
	return true
}

func (c *refCache) Insert(id dataset.ItemID, bytes float64) {
	if _, ok := c.items[id]; ok {
		return
	}
	if bytes > c.capBytes {
		return
	}
	for c.usedBytes+bytes > c.capBytes {
		if !c.evictOne() {
			return
		}
	}
	e := &refEntry{id: id, bytes: bytes}
	switch c.policy {
	case Random:
		c.randPos[id] = len(c.randKeys)
		c.randKeys = append(c.randKeys, id)
	case TwoList:
		if c.refaultProb > 0 && c.rng.Float64() < c.refaultProb {
			e.elem = c.active.PushFront(e)
			e.active = true
			c.activeBytes += e.bytes
			c.items[id] = e
			c.usedBytes += bytes
			c.rebalance()
			return
		}
		e.elem = c.inactive.PushFront(e)
	default:
		e.elem = c.inactive.PushFront(e)
	}
	c.items[id] = e
	c.usedBytes += bytes
}

func (c *refCache) rebalance() {
	for c.activeBytes > c.activeRatio*c.capBytes && c.active.Len() > 0 {
		el := c.active.Back()
		e := el.Value.(*refEntry)
		c.active.Remove(el)
		e.elem = c.inactive.PushFront(e)
		e.active = false
		c.activeBytes -= e.bytes
	}
}

func (c *refCache) evictOne() bool {
	switch c.policy {
	case Random:
		if len(c.randKeys) == 0 {
			return false
		}
		i := c.rng.Intn(len(c.randKeys))
		id := c.randKeys[i]
		last := len(c.randKeys) - 1
		c.randKeys[i] = c.randKeys[last]
		c.randPos[c.randKeys[i]] = i
		c.randKeys = c.randKeys[:last]
		delete(c.randPos, id)
		e := c.items[id]
		delete(c.items, id)
		c.usedBytes -= e.bytes
		c.evictions++
		return true
	case TwoList:
		if c.inactive.Len() == 0 {
			c.rebalanceForce()
		}
		fallthrough
	default:
		el := c.inactive.Back()
		if el == nil {
			el = c.active.Back()
			if el == nil {
				return false
			}
			e := el.Value.(*refEntry)
			c.active.Remove(el)
			c.activeBytes -= e.bytes
			delete(c.items, e.id)
			c.usedBytes -= e.bytes
			c.evictions++
			return true
		}
		e := el.Value.(*refEntry)
		c.inactive.Remove(el)
		delete(c.items, e.id)
		c.usedBytes -= e.bytes
		c.evictions++
		return true
	}
}

func (c *refCache) rebalanceForce() {
	el := c.active.Back()
	if el == nil {
		return
	}
	e := el.Value.(*refEntry)
	c.active.Remove(el)
	e.elem = c.inactive.PushFront(e)
	e.active = false
	c.activeBytes -= e.bytes
}
